//! Quickstart: simulate the message-passing litmus test under every
//! stock model — the Figs 1–4 walk-through of the paper.
//!
//! Reproduces: Figs 1–4 (the mp litmus test, its candidate executions
//! and per-model verdicts), plus one Fig 8 row (mp+lwsync+addr).
//!
//! Run with: `cargo run --example quickstart`

use herd_core::arch;
use herd_core::event::Fence;
use herd_litmus::corpus::{mp, Dev};
use herd_litmus::isa::Isa;
use herd_litmus::parse::parse;
use herd_litmus::simulate::simulate;

fn main() {
    // Litmus tests can be built programmatically...
    let bare = mp(Isa::Power, Dev::Po, Dev::Po);
    // ...or parsed from the litmus format.
    let fenced = parse(
        r#"PPC mp+lwsync+addr
"Fig 8: lightweight fence + address dependency"
{
0:r2=x; 0:r4=y;
1:r2=y; 1:r4=x;
}
 P0           | P1            ;
 li r1,1      | lwz r1,0(r2)  ;
 stw r1,0(r2) | xor r3,r1,r1  ;
 lwsync       | lwzx r5,r3,r4 ;
 stw r1,0(r4) |               ;
exists (1:r1=1 /\ 1:r5=0)
"#,
    )
    .expect("valid litmus source");

    println!("=== {} ===", bare.name);
    println!("{bare}");
    for name in ["sc", "tso", "cpp-ra", "power", "arm"] {
        let model = arch::by_name(name).expect("stock model");
        let out = simulate(&bare, model.as_ref()).expect("simulation");
        println!(
            "{:8} {:3}  ({} candidates, {} allowed, {} satisfy the condition)",
            model.name(),
            out.verdict_str(),
            out.candidates,
            out.allowed,
            out.positive
        );
    }

    println!("\n=== {} ===", fenced.name);
    let power = arch::by_name("power").expect("stock model");
    let out = simulate(&fenced, power.as_ref()).expect("simulation");
    println!(
        "{:8} {:3}  — the fence and the dependency close the hole",
        power.name(),
        out.verdict_str()
    );
    // The same pattern on ARM needs ARM fences (dmb) and isb.
    let arm_fenced = mp(Isa::Arm, Dev::F(Fence::Dmb), Dev::CtrlCfence);
    let arm = arch::by_name("arm").expect("stock model");
    let out = simulate(&arm_fenced, arm.as_ref()).expect("simulation");
    println!("{:8} {:3}  — {} (dmb + ctrl+isb)", arm.name(), out.verdict_str(), arm_fenced.name);

    // Fences matter per pair: an eieio (write-write barrier) also fixes
    // mp, but cannot fix the store-buffering test.
    let sb = herd_litmus::corpus::sb(Isa::Power, Dev::F(Fence::Eieio), Dev::F(Fence::Eieio));
    let power = arch::by_name("power").unwrap();
    let out = simulate(&sb, power.as_ref()).unwrap();
    println!(
        "\n{} on Power: {} (eieio does not order write-read pairs)",
        sb.name,
        out.verdict_str()
    );
}
