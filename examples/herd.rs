//! A command-line herd: simulate a litmus file against a cat model file.
//!
//! ```text
//! cargo run --example herd -- <test.litmus> [model.cat] [--dot]
//! ```
//!
//! With no model argument, the ISA's default model applies (Power for
//! PPC, the proposed ARM model for ARM, TSO for X86). `--dot` prints a
//! Graphviz digraph per *allowed* execution, in the style of the paper's
//! diagrams.
//!
//! Reproduces: the herd simulator workflow of Sec 4.9 / Sec 8.3 — the
//! model file as an input (Fig 38) — with output in herd's `Ok`/`No`
//! format; the `--dot` diagrams mirror the execution figures (Fig 4).

use herd_cat::CatModel;
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::isa::Isa;
use herd_litmus::parse::parse;
use herd_litmus::simulate::eval_prop;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dot = args.iter().any(|a| a == "--dot");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let Some(litmus_path) = files.first() else {
        eprintln!("usage: herd <test.litmus> [model.cat] [--dot]");
        return ExitCode::FAILURE;
    };

    let source = match std::fs::read_to_string(litmus_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{litmus_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let test = match parse(&source) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{litmus_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Model: explicit cat file, or the ISA default.
    let model_src = match files.get(1) {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match test.isa {
            Isa::Power => herd_cat::stock::POWER.to_owned(),
            Isa::Arm => herd_cat::stock::ARM.to_owned(),
            Isa::X86 => herd_cat::stock::TSO.to_owned(),
        },
    };
    let model = match CatModel::parse(&model_src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("model: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Resolve names and fold constants once; check per candidate.
    let compiled = match model.compile() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("evaluation: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cands = match enumerate(&test, &EnumOptions::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: {e}", test.name);
            return ExitCode::FAILURE;
        }
    };

    println!("Test {} ({})", test.name, model.name().unwrap_or("anonymous model"));
    let mut positive = 0usize;
    let mut negative = 0usize;
    let mut states = std::collections::BTreeSet::new();
    for c in &cands {
        if !compiled.check(&c.exec).allowed() {
            continue;
        }
        if eval_prop(&test.condition.prop, c) {
            positive += 1;
        } else {
            negative += 1;
        }
        let mut state: Vec<String> = c
            .final_regs
            .iter()
            .map(|((t, r), v)| match v {
                herd_litmus::candidates::RegFinal::Int(i) => format!("{t}:{r}={i};"),
                herd_litmus::candidates::RegFinal::Addr(l) => format!("{t}:{r}={l};"),
            })
            .collect();
        state.extend(c.final_mem.iter().map(|(l, v)| format!("{l}={v};")));
        states.insert(state.join(" "));
        if dot {
            println!("{}", c.to_dot());
        }
    }
    println!("States {}", states.len());
    for s in &states {
        println!("  {s}");
    }
    let validated = match test.condition.quantifier {
        herd_litmus::Quantifier::Exists => positive > 0,
        herd_litmus::Quantifier::NotExists => positive == 0,
        herd_litmus::Quantifier::Forall => negative == 0,
    };
    println!("{}", if validated { "Ok" } else { "No" });
    println!("Condition {}", test.condition);
    println!(
        "Observation {} {} {positive} {negative}",
        test.name,
        if positive == 0 {
            "Never"
        } else if negative == 0 {
            "Always"
        } else {
            "Sometimes"
        }
    );
    ExitCode::SUCCESS
}
