//! A command-line mole: mine a program file for weak-memory idioms.
//!
//! ```text
//! cargo run --example mole -- <program.mole> [--witnesses]
//! ```
//!
//! `--witnesses` additionally synthesises one litmus test per mined
//! critical cycle (the mole → diy bridge) and simulates it under the
//! Power model.
//!
//! Reproduces: the mole pipeline of Sec 9 (static critical cycles,
//! Fig 39 reductions, Tab III naming) on a user-supplied program.

use herd_mole::{analyze, parse, witnesses, MoleOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_witnesses = args.iter().any(|a| a == "--witnesses");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: mole <program.mole> [--witnesses]");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = analyze(&program, &MoleOptions::default());
    println!(
        "program {}: {} concurrent group(s), {} static cycle(s)",
        program.name,
        analysis.groups,
        analysis.cycles.len()
    );
    println!("\n{:14} {:>6}", "pattern", "cycles");
    for (pattern, count) in analysis.pattern_histogram() {
        println!("{pattern:14} {count:>6}");
    }
    println!("\n{:16} {:>6}", "axiom", "cycles");
    for (axiom, count) in analysis.axiom_histogram() {
        println!("{axiom:16} {count:>6}");
    }
    if want_witnesses {
        println!("\n== synthesised witnesses (mole → diy → herd) ==");
        let power = herd_core::arch::Power::new();
        for (pattern, test) in witnesses(&analysis, herd_litmus::isa::Isa::Power) {
            match herd_litmus::simulate::simulate(&test, &power) {
                Ok(out) => println!("{pattern:8} {:34} {} on Power", test.name, out.verdict_str()),
                Err(e) => println!("{pattern:8} {:34} error: {e}", test.name),
            }
        }
    }
    ExitCode::SUCCESS
}
