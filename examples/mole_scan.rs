//! The mole experiments of Sec 9: mine the RCU, PostgreSQL and Apache
//! kernels for weak-memory idioms (Tabs XIII/XIV), then scan a synthetic
//! distribution the way the paper scans Debian 7.1.
//!
//! Reproduces: Tab XIII (cycles per codebase, by pattern) and Tab XIV
//! (distribution-wide pattern histogram and axiom attribution).
//!
//! Run with: `cargo run --release --example mole_scan`

use herd_mole::scan::{accumulate, scan_distribution, ScanReport};
use herd_mole::{analyze, corpus, MoleOptions};

fn main() {
    let opts = MoleOptions::default();

    for program in corpus::all() {
        let analysis = analyze(&program, &opts);
        println!("== {} ==", program.name);
        println!("entry groups: {}   cycles: {}", analysis.groups, analysis.cycles.len());
        println!("{:14} {:>6}", "pattern", "cycles");
        for (pattern, count) in analysis.pattern_histogram() {
            println!("{pattern:14} {count:>6}");
        }
        println!("{:16} {:>6}", "axiom", "cycles");
        for (axiom, count) in analysis.axiom_histogram() {
            println!("{axiom:16} {count:>6}");
        }
        println!();
    }

    println!("== synthetic distribution scan (the Debian 7.1 analogue) ==\n");
    let packages = 150;
    let mut report: ScanReport = scan_distribution(packages, 2014, &opts);
    // Fold the real kernels in as three more "packages".
    for program in corpus::all() {
        report.packages += 1;
        accumulate(&mut report, &analyze(&program, &opts));
    }
    println!(
        "packages analysed: {}   with cycles: {}   total cycles: {}\n",
        report.packages, report.packages_with_cycles, report.cycles
    );
    println!("{}", report.pattern_table());
    println!("{:16} {:>8}", "axiom", "cycles");
    for (axiom, count) in &report.axioms {
        println!("{axiom:16} {count:>8}");
    }
}
