//! The herd pitch (Sec 8.3): the model itself is an input. Load the
//! shipped Power model from its cat file, weaken one axiom, and watch the
//! verdicts change — no simulator code modified.
//!
//! Reproduces: the model fine-tuning workflow of Sec 4.9 / Sec 8.3 over
//! the Fig 38 Power model, with verdicts drawn from Figs 7, 8, 13, 14.
//!
//! Run with: `cargo run --example custom_cat_model`

use herd_cat::{stock, CatModel};
use herd_core::event::Fence;
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus::{self, Dev};
use herd_litmus::isa::Isa;
use herd_litmus::simulate::eval_prop;

/// Does `model` validate the test's exists-condition?
fn validated(model: &CatModel, test: &herd_litmus::LitmusTest) -> bool {
    let compiled = model.compile().expect("compilation");
    let cands = enumerate(test, &EnumOptions::default()).expect("enumeration");
    cands.iter().any(|c| compiled.check(&c.exec).allowed() && eval_prop(&test.condition.prop, c))
}

fn main() {
    println!("The stock Power model (models/power.cat):\n{}", stock::POWER);

    let power = stock::load(stock::POWER);
    let tests = [
        corpus::mp(Isa::Power, Dev::F(Fence::Lwsync), Dev::Addr),
        corpus::two_plus_two_w(Isa::Power, Dev::F(Fence::Lwsync), Dev::F(Fence::Lwsync)),
        corpus::lb(Isa::Power, Dev::Addr, Dev::Addr),
        corpus::sb(Isa::Power, Dev::F(Fence::Sync), Dev::F(Fence::Sync)),
    ];

    // Three user variants, written by editing the model text (Sec 4.9:
    // "basic bricks from which one can build a model at will").
    let no_observation =
        CatModel::parse(&stock::POWER.replace("irreflexive fre;prop;hb* as observation", ""))
            .expect("still parses");
    let no_thin_air_off = CatModel::parse(&stock::POWER.replace("acyclic hb as no-thin-air", ""))
        .expect("still parses");
    let llh = stock::load(stock::ARM_LLH);

    println!(
        "{:24} {:>8} {:>10} {:>10} {:>8}",
        "test", "power", "-observ.", "-thin-air", "arm-llh"
    );
    for t in &tests {
        println!(
            "{:24} {:>8} {:>10} {:>10} {:>8}",
            t.name,
            if validated(&power, t) { "Ok" } else { "No" },
            if validated(&no_observation, t) { "Ok" } else { "No" },
            if validated(&no_thin_air_off, t) { "Ok" } else { "No" },
            if validated(&llh, t) { "Ok" } else { "No" },
        );
    }
    println!("\n(mp flips once OBSERVATION is gone; lb flips without NO THIN AIR.)");
}
