//! Regenerates the paper's verdict figures and timing tables in one run:
//! every captioned litmus verdict (Figs 6–20, 29, 32–37), the model
//! comparisons (Tab I's experimental rows), the simulation-cost comparison
//! (Tab IX shape) and the verification comparison (Tab X shape).
//!
//! Reproduces: Figs 6–20, 29, 32–37 (verdicts), Tab I (model comparison
//! rows), Tab IX (simulation cost) and Tab X (verification cost).
//!
//! Run with: `cargo run --release --example paper_report`

use herd_core::arch::{Arm, ArmVariant, Power, Sc, Tso};
use herd_core::model::{check, Architecture};
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus::{self, CorpusEntry};
use herd_litmus::simulate::{judge, simulate};
use herd_machine::{
    check_multi, verify_axiomatic, verify_operational, Machine, MadorHaim, PldiFlawed,
};
use std::time::Instant;

fn verdict_table(title: &str, corpus: &[CorpusEntry], arch: &dyn Architecture) {
    println!("== {title} ==");
    println!("{:34} {:>6} {:>9} {:>9}", "test", "paper", "model", "agree");
    let mut agree = 0;
    for e in corpus {
        let out = simulate(&e.test, arch).expect("simulation");
        let ok = out.validated == e.allowed;
        agree += usize::from(ok);
        println!(
            "{:34} {:>6} {:>9} {:>9}",
            e.test.name,
            if e.allowed { "Allow" } else { "Forbid" },
            if out.validated { "Allow" } else { "Forbid" },
            if ok { "yes" } else { "** NO **" },
        );
    }
    println!("agreement: {agree}/{}\n", corpus.len());
}

fn main() {
    verdict_table("Power verdicts (Figs 6-20, 29, 36, 37)", &corpus::power_corpus(), &Power::new());
    verdict_table(
        "ARM verdicts (Sec 8.1.2, Figs 32/33)",
        &corpus::arm_corpus(),
        &Arm::new(ArmVariant::Proposed),
    );
    verdict_table("x86/TSO verdicts", &corpus::x86_corpus(), &Tso);

    println!("== Tab I experimental rows: model comparisons ==");
    let detour = corpus::mp_addr_po_detour(herd_litmus::isa::Isa::Power);
    let bigdetour = corpus::mp_addr_bigdetour_addr(herd_litmus::isa::Isa::Power);
    for (model, name) in [
        (Box::new(Power::new()) as Box<dyn Architecture>, "this paper"),
        (Box::new(PldiFlawed::new()), "PLDI 2011 (operational)"),
        (Box::new(MadorHaim::new()), "CAV 2012 (multi-event)"),
    ] {
        let d = simulate(&detour, model.as_ref()).unwrap().validated;
        let b = simulate(&bigdetour, model.as_ref()).unwrap().validated;
        println!(
            "{:26} mp+lwsync+addr-po-detour: {:6}  bigdetour: {:6}",
            name,
            if d { "Allow" } else { "Forbid" },
            if b { "Allow" } else { "Forbid" },
        );
    }
    println!("(hardware observes both; only 'this paper' allows both)\n");

    println!("== Tab IX shape: simulation cost per style ==");
    let tests: Vec<CorpusEntry> = corpus::power_corpus();
    let opts = EnumOptions::default();
    let all_cands: Vec<(String, Vec<herd_litmus::Candidate>)> =
        tests.iter().map(|e| (e.test.name.clone(), enumerate(&e.test, &opts).unwrap())).collect();
    let power = Power::new();

    let t0 = Instant::now();
    let mut single = 0usize;
    for (_, cands) in &all_cands {
        for c in cands {
            single += usize::from(check(&power, &c.exec).allowed());
        }
    }
    let t_single = t0.elapsed();

    let t0 = Instant::now();
    let mut multi = 0usize;
    for (_, cands) in &all_cands {
        for c in cands {
            multi += usize::from(check_multi(&c.exec, &power).allowed());
        }
    }
    let t_multi = t0.elapsed();

    let t0 = Instant::now();
    let mut oper = 0usize;
    for (_, cands) in &all_cands {
        for c in cands {
            oper += usize::from(Machine::new(&c.exec, &power).accepts());
        }
    }
    let t_oper = t0.elapsed();

    assert_eq!(single, multi);
    assert_eq!(single, oper);
    let candidates: usize = all_cands.iter().map(|(_, c)| c.len()).sum();
    println!("style                      candidates   time        vs single-event");
    println!("single-event axiomatic     {candidates:>10}   {:>9.2?}   1.0x", t_single);
    println!(
        "multi-event axiomatic      {candidates:>10}   {:>9.2?}   {:.1}x",
        t_multi,
        t_multi.as_secs_f64() / t_single.as_secs_f64()
    );
    println!(
        "operational (machine)      {candidates:>10}   {:>9.2?}   {:.1}x\n",
        t_oper,
        t_oper.as_secs_f64() / t_single.as_secs_f64()
    );

    println!("== Tab X shape: verification cost, axiomatic vs operational ==");
    let t0 = Instant::now();
    for e in &tests {
        let _ = verify_axiomatic(&e.test, &power).unwrap();
    }
    let t_ax = t0.elapsed();
    let t0 = Instant::now();
    for e in &tests {
        let _ = verify_operational(&e.test, &power).unwrap();
    }
    let t_op = t0.elapsed();
    println!("axiomatic encoding      {t_ax:>9.2?}   1.0x");
    println!(
        "operational encoding    {t_op:>9.2?}   {:.1}x\n",
        t_op.as_secs_f64() / t_ax.as_secs_f64()
    );

    println!("== Sec 8.3: model-level simulation of one test ==");
    let mp = corpus::mp(herd_litmus::isa::Isa::Power, corpus::Dev::Po, corpus::Dev::Po);
    let cands = enumerate(&mp, &opts).unwrap();
    for model in [Box::new(Sc) as Box<dyn Architecture>, Box::new(Tso), Box::new(Power::new())] {
        let out = judge(&mp, model.as_ref(), &cands);
        println!("{out}");
    }
}
