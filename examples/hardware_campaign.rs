//! The hardware-testing campaign of Sec 8.1, on the simulated machines:
//! run the corpus plus diy-generated tests on each part, compare against
//! the models, and print the Tab V / Tab VI / Tab VIII analogues.
//!
//! Reproduces: Tab V (invalid/unseen counts per machine vs model),
//! Tab VI (anomaly counts per part) and Tab VIII (violated-axiom
//! classification of invalid observations).
//!
//! Run with: `cargo run --release --example hardware_campaign`

use herd_core::arch::{Arm, ArmVariant, Power};
use herd_hw::{arm_machines, campaign, power_machines};
use herd_litmus::program::LitmusTest;
use herd_litmus::{corpus, isa::Isa};

fn main() {
    let power_tests: Vec<LitmusTest> = corpus::power_corpus()
        .into_iter()
        .map(|e| e.test)
        .chain(herd_diy::generate_tests(&herd_diy::power_pool(), 4, Isa::Power, 60))
        .collect();
    let arm_tests: Vec<LitmusTest> = corpus::arm_corpus()
        .into_iter()
        .map(|e| e.test)
        .chain(herd_diy::generate_tests(&herd_diy::arm_pool(), 4, Isa::Arm, 60))
        .collect();
    const RUNS: u64 = 10_000_000_000; // simulated runs per test

    println!("== Tab V analogue: model validation against hardware ==\n");
    for machine in power_machines() {
        let summary = campaign(&machine, &power_tests, &Power::new(), RUNS, 42).expect("campaign");
        println!("{}", summary.table_row());
    }
    for machine in arm_machines() {
        for reference in [
            Box::new(Arm::new(ArmVariant::PowerArm)) as Box<dyn herd_core::Architecture + Sync>,
            Box::new(Arm::new(ArmVariant::Proposed)),
        ] {
            let summary =
                campaign(&machine, &arm_tests, reference.as_ref(), RUNS, 42).expect("campaign");
            println!("{}", summary.table_row());
        }
    }

    println!("\n== Tab VI analogue: anomaly observation counts ==\n");
    let anomalies = [corpus::co_rr(Isa::Arm), corpus::mp_fri_rfi_ctrlcfence(Isa::Arm)];
    let reference = Arm::new(ArmVariant::PowerArm);
    for machine in arm_machines() {
        for test in &anomalies {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
            let run = herd_hw::run_test(&machine, test, RUNS, &mut rng).expect("run");
            // Full states the reference model allows.
            let allowed: std::collections::BTreeSet<String> =
                herd_litmus::candidates::enumerate(test, &Default::default())
                    .expect("enumerate")
                    .iter()
                    .filter(|c| herd_core::model::check(&reference, &c.exec).allowed())
                    .map(herd_hw::campaign::render_full_state)
                    .collect();
            // Count observations of states the Power-ARM model forbids.
            let bug_count: u64 =
                run.states.iter().filter(|(s, _)| !allowed.contains(*s)).map(|(_, c)| c).sum();
            if bug_count > 0 {
                println!(
                    "{:12} {:28} Forbid  Ok, {}/{}G",
                    machine.name,
                    test.name,
                    human(bug_count),
                    RUNS / 1_000_000_000
                );
            } else {
                println!("{:12} {:28} Forbid  unseen", machine.name, test.name);
            }
        }
    }

    println!("\n== Tab VIII analogue: anomalies classified by violated axioms ==\n");
    println!("(reference model: Power-ARM — the paper's row 'Power-ARM')");
    let reference = Arm::new(ArmVariant::PowerArm);
    let mut total: std::collections::BTreeMap<String, usize> = Default::default();
    for machine in arm_machines() {
        let summary = campaign(&machine, &arm_tests, &reference, RUNS, 42).expect("campaign");
        for (label, count) in summary.classification {
            *total.entry(label).or_insert(0) += count;
        }
    }
    println!("{:6} invalid observations", "axioms");
    for (label, count) in &total {
        println!("{label:6} {count}");
    }
}

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}
