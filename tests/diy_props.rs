//! Property tests for the diy generator: every synthesised test must
//! (a) exhibit its cycle in some candidate execution (the witness is
//! reachable), and (b) be forbidden on SC (critical cycles violate SC by
//! construction, Sec 9.1.2).

use herd_core::arch::Sc;
use herd_diy::{enumerate_cycles, power_pool, synthesize};
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::isa::Isa;
use herd_litmus::simulate::{eval_prop, simulate};
use proptest::prelude::*;

#[test]
fn all_short_power_cycles_synthesise_with_reachable_witnesses() {
    let cycles = enumerate_cycles(&power_pool(), 4);
    assert!(cycles.len() > 50);
    let opts = EnumOptions::default();
    for cycle in &cycles {
        let test = synthesize(cycle, Isa::Power).unwrap_or_else(|e| panic!("{cycle:?}: {e}"));
        let cands = enumerate(&test, &opts).unwrap();
        let witnesses = cands.iter().filter(|c| eval_prop(&test.condition.prop, c)).count();
        assert!(witnesses > 0, "{}: no witness", test.name);
        // Critical cycles violate SC (Sec 9.1.2: a critical cycle violates
        // SC in a minimal way).
        let sc = simulate(&test, &Sc).unwrap();
        assert!(!sc.validated, "{}: SC must forbid the witness", test.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random cycles from the pool (sampled by index) synthesise tests
    /// whose parse/display round-trips.
    #[test]
    fn random_cycles_roundtrip_through_litmus_format(idx in 0usize..1000) {
        let cycles = enumerate_cycles(&power_pool(), 5);
        prop_assume!(idx < cycles.len());
        if let Ok(test) = synthesize(&cycles[idx], Isa::Power) {
            let printed = test.to_string();
            let reparsed = herd_litmus::parse::parse(&printed)
                .unwrap_or_else(|e| panic!("{}:\n{printed}\n{e}", test.name));
            prop_assert_eq!(reparsed, test);
        }
    }
}
