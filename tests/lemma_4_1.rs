//! Lemma 4.1: the SC and TSO instances of the framework coincide with the
//! classical one-axiom formulations — checked on every candidate of every
//! corpus test and on randomly generated programs (proptest).

use herd_core::arch::{Sc, Tso};
use herd_core::enumerate::SkeletonBuilder;
use herd_core::event::{Dir, Fence};
use herd_core::model::{check, sc_per_location, Architecture};
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus;
use proptest::prelude::*;

fn lamport_sc(x: &herd_core::Execution) -> bool {
    x.po().union(x.com()).is_acyclic()
}

fn sparc_tso(x: &herd_core::Execution) -> bool {
    // Uniproc plus the global axiom acyclic(ppo ∪ co ∪ rfe ∪ fr ∪ fences)
    // ([Alglave 2012, Def 23]).
    let tso = Tso;
    let global =
        tso.ppo(x).union(x.co()).union(x.rfe()).union(x.fr()).union(&tso.fences(x)).is_acyclic();
    sc_per_location(x) && global
}

#[test]
fn sc_equivalence_on_all_corpora() {
    let all: Vec<corpus::CorpusEntry> = corpus::power_corpus()
        .into_iter()
        .chain(corpus::arm_corpus())
        .chain(corpus::x86_corpus())
        .collect();
    for entry in all {
        for c in enumerate(&entry.test, &EnumOptions::default()).unwrap() {
            assert_eq!(check(&Sc, &c.exec).allowed(), lamport_sc(&c.exec), "{}", entry.test.name);
        }
    }
}

#[test]
fn tso_equivalence_on_all_corpora() {
    let all: Vec<corpus::CorpusEntry> =
        corpus::power_corpus().into_iter().chain(corpus::x86_corpus()).collect();
    for entry in all {
        for c in enumerate(&entry.test, &EnumOptions::default()).unwrap() {
            assert_eq!(check(&Tso, &c.exec).allowed(), sparc_tso(&c.exec), "{}", entry.test.name);
        }
    }
}

/// A random program shape: up to 3 threads, up to 3 accesses each, over
/// up to 3 locations, with optional fences. Every candidate execution of
/// every such program must satisfy both equivalences.
fn random_program() -> impl Strategy<Value = Vec<Vec<(bool, u8, bool)>>> {
    // (is_write, loc, fence_before_next)
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0u8..3, any::<bool>()), 1..=3),
        1..=3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lemma_4_1_on_random_programs(prog in random_program()) {
        let mut b = SkeletonBuilder::new();
        let locs = ["x", "y", "z"];
        for (tid, thread) in prog.iter().enumerate() {
            let mut prev: Option<usize> = None;
            let mut fence_pending = false;
            for &(is_write, loc, fence_after) in thread {
                let id = if is_write {
                    b.write(tid as u16, locs[loc as usize], i64::from(loc) + 1)
                } else {
                    b.read(tid as u16, locs[loc as usize])
                };
                if let Some(p) = prev {
                    if fence_pending {
                        b.fence(Fence::Mfence, p, id);
                    }
                }
                fence_pending = fence_after;
                prev = Some(id);
            }
        }
        let skeleton = b.build();
        // Bound the candidate explosion.
        prop_assume!(skeleton.candidate_count_saturating() <= 2000);
        for exec in skeleton.candidates() {
            prop_assert_eq!(check(&Sc, &exec).allowed(), lamport_sc(&exec));
            prop_assert_eq!(check(&Tso, &exec).allowed(), sparc_tso(&exec));
            // SC is stronger than TSO (every SC-allowed execution is
            // TSO-allowed).
            if check(&Sc, &exec).allowed() {
                prop_assert!(check(&Tso, &exec).allowed());
            }
        }
    }

    /// fr is derived correctly: (r, w) ∈ fr iff r's source is co-before w.
    #[test]
    fn fr_derivation_on_random_programs(prog in random_program()) {
        let mut b = SkeletonBuilder::new();
        let locs = ["x", "y", "z"];
        for (tid, thread) in prog.iter().enumerate() {
            for &(is_write, loc, _) in thread {
                if is_write {
                    b.write(tid as u16, locs[loc as usize], i64::from(loc) + 1);
                } else {
                    b.read(tid as u16, locs[loc as usize]);
                }
            }
        }
        let skeleton = b.build();
        prop_assume!(skeleton.candidate_count_saturating() <= 500);
        for exec in skeleton.candidates() {
            for (r, w) in exec.fr().iter_pairs() {
                prop_assert_eq!(exec.event(r).dir, Dir::R);
                prop_assert_eq!(exec.event(w).dir, Dir::W);
                let src = exec
                    .rf()
                    .transpose()
                    .succs(r)
                    .next()
                    .expect("every read has a source");
                prop_assert!(exec.co().contains(src, w));
            }
            // Totality of co per location.
            for a in exec.events() {
                for bb in exec.events() {
                    if a.id != bb.id && a.is_write() && bb.is_write() && a.loc == bb.loc {
                        prop_assert!(
                            exec.co().contains(a.id, bb.id) || exec.co().contains(bb.id, a.id)
                        );
                    }
                }
            }
        }
    }
}
