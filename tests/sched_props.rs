//! Property tests for the hierarchical work scheduler (herd-core
//! `sched`): over any [`WorkPlan`] — rf-range-only, co-split, or mixed —
//! the per-unit `emitted + pruned` accounting summed across units must
//! equal [`Skeleton::candidate_count`], and the multiset of
//! (witness, verdict) pairs observed by the sinks must match the
//! single-threaded arena engine exactly.

use herd_core::arch::Power;
use herd_core::arena::RelArena;
use herd_core::enumerate::{CheckedStats, Skeleton, SkeletonBuilder};
use herd_core::exec::ExecFrame;
use herd_core::model::Verdict;
use herd_core::sched::{PlanOpts, WorkPlan};
use proptest::prelude::*;
use std::sync::Mutex;

/// One building step of a random skeleton.
#[derive(Clone, Debug)]
struct Op {
    thread: u16,
    write: bool,
    loc: usize,
    /// Data-depend this write on the thread's latest read (exercises the
    /// thin-air pruning axis inside plans).
    dep: bool,
}

fn build(ops: &[Op]) -> Skeleton {
    let names = ["x", "y"];
    let mut b = SkeletonBuilder::new();
    let mut last_read: [Option<usize>; 3] = [None; 3];
    for (i, op) in ops.iter().enumerate() {
        if op.write {
            let w = b.write(op.thread, names[op.loc], i as i64 + 1);
            if op.dep {
                if let Some(r) = last_read[op.thread as usize] {
                    b.data(r, w);
                }
            }
        } else {
            let r = b.read(op.thread, names[op.loc]);
            last_read[op.thread as usize] = Some(r);
        }
    }
    b.build()
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0..3u16, any::<bool>(), 0..2usize, any::<bool>())
            .prop_map(|(thread, write, loc, dep)| Op { thread, write, loc, dep }),
        2..9,
    )
}

/// The single-threaded reference: every (rf, co, verdict) key plus the
/// whole-space stats.
fn reference(sk: &Skeleton) -> (Vec<String>, CheckedStats) {
    let power = Power::new();
    let mut arena = RelArena::new(0);
    let mut keys = Vec::new();
    let stats = sk.check_stream_arena(&power, &mut arena, &mut |fx, a, v| {
        keys.push(key(fx, a, v));
    });
    keys.sort();
    (keys, stats)
}

fn key(fx: &ExecFrame<'_>, a: &RelArena, v: Verdict) -> String {
    format!("{:?}|{:?}|{v:?}", a.to_relation(fx.rels.rf), a.to_relation(fx.rels.co))
}

/// Runs `sk` through a plan on the stealing executor and checks the
/// accounting and verdict-multiset contracts against the reference.
fn check_plan(sk: &Skeleton, plan: &WorkPlan, workers: usize) {
    let power = Power::new();
    let (ref_keys, whole) = reference(sk);
    let collected: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let out = sk.check_stream_sched(&power, plan, workers, |_| {
        |fx: &ExecFrame<'_>, a: &RelArena, v: Verdict| {
            collected.lock().expect("sink mutex").push(key(fx, a, v));
        }
    });

    // Per-unit stats sum exactly to the whole space.
    let mut summed = CheckedStats::default();
    for s in &out.unit_stats {
        summed.emitted += s.emitted;
        summed.pruned += s.pruned;
        summed.allowed += s.allowed;
    }
    assert_eq!(summed, whole, "per-unit stats must sum to the whole engine's");
    assert_eq!(out.stats, whole, "merged stats must match");
    if let Some(count) = sk.candidate_count() {
        assert_eq!(
            summed.emitted + summed.pruned,
            count,
            "emitted + pruned covers the candidate space exactly"
        );
    }

    // Same candidates, same verdicts — as a multiset.
    let mut keys = collected.into_inner().expect("sink mutex");
    keys.sort();
    assert_eq!(keys, ref_keys, "verdict multiset must match the single-threaded engine");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random skeletons through rf-only, co-splitting and default plans,
    /// with 1 and 3 workers.
    #[test]
    fn plans_partition_random_skeletons_exactly(ops in ops()) {
        let sk = build(&ops);
        prop_assume!(sk.candidate_count_saturating() <= 10_000);
        let power = Power::new();
        let plan_kinds = [
            // rf-range-only (static-style, but still fine-grained).
            PlanOpts { workers: 3, units_per_worker: 2, co_split: false },
            // co-splitting enabled with a high unit target, so small rf
            // spaces force co-level units.
            PlanOpts { workers: 4, units_per_worker: 4, co_split: true },
            // defaults at 2 workers.
            PlanOpts { workers: 2, units_per_worker: 4, co_split: true },
        ];
        for opts in plan_kinds {
            let plan = WorkPlan::for_skeleton(&sk, &power, &opts);
            for workers in [1usize, 3] {
                check_plan(&sk, &plan, workers);
            }
        }
    }
}

/// A co-heavy skeleton (two rf configurations, `(extra + 1)!` coherence
/// orders) plus a coRR observer: some rf configurations are doomed at
/// generation time (rf units), the live ones carry big menus (co units) —
/// the mixed plan shape.
fn mixed_skeleton() -> Skeleton {
    let mut b = SkeletonBuilder::new();
    b.write(0, "z", 1);
    b.read(1, "z");
    b.write(1, "x", 1);
    for i in 0..3 {
        b.write(2 + i, "x", 2 + i as i64);
    }
    b.read(5, "x");
    b.read(5, "x");
    b.build()
}

#[test]
fn mixed_plans_hold_the_partition_contract() {
    let sk = mixed_skeleton();
    let power = Power::new();
    // High unit target so the 50-configuration rf space lands in the
    // co-splitting planner: doomed/small configurations coalesce into rf
    // units, menu-heavy ones split into co units.
    let opts = PlanOpts { workers: 16, units_per_worker: 4, co_split: true };
    let mut plan = WorkPlan::for_skeleton(&sk, &power, &opts);
    assert!(plan.co_units() > 0, "the big menus must split: {:?}", plan.units());
    assert!(plan.co_units() < plan.len(), "doomed configurations must stay rf units");
    for workers in [1usize, 2, 5] {
        check_plan(&sk, &plan, workers);
    }
    // PR 9: reordering by priority steers the steal order only — the
    // partition contract and verdict multiset are unchanged.
    plan.prioritise(|u| u32::from(u.co.is_some()));
    for workers in [1usize, 5] {
        check_plan(&sk, &plan, workers);
    }
}

#[test]
fn co_split_plans_hold_the_partition_contract_on_wrc_like_shapes() {
    // Pure co-heavy: every unit is a co unit.
    let mut b = SkeletonBuilder::new();
    b.write(0, "z", 1);
    b.read(1, "z");
    b.write(1, "x", 1);
    for i in 0..4 {
        b.write(2 + i, "x", 2 + i as i64);
    }
    let sk = b.build();
    let power = Power::new();
    let plan = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(4));
    assert!(plan.co_units() >= 4, "co odometer must fan out: {:?}", plan.units());
    for workers in [1usize, 4] {
        check_plan(&sk, &plan, workers);
    }
}
