//! C++ restricted to release-acquire (Sec 4.8): the paper's instance is
//! slightly *stronger* than the standard — PROPAGATION's
//! `acyclic(co ∪ prop)` versus HBVSMO's `irreflexive(hb+; mo)`. The gap
//! is exactly the `2+2w` family: cycles alternating `prop` and `co` more
//! than once.

use herd_core::arch::{CppRa, CppRaStrength, Sc};
use herd_core::model::check;
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus;

#[test]
fn strong_and_exact_differ_only_on_multi_step_prop_co_cycles() {
    let strong = CppRa::new(CppRaStrength::PaperStrong);
    let exact = CppRa::new(CppRaStrength::StandardExact);
    let all: Vec<corpus::CorpusEntry> = corpus::power_corpus()
        .into_iter()
        .chain(corpus::arm_corpus())
        .chain(corpus::x86_corpus())
        .collect();
    let mut differing_tests = std::collections::BTreeSet::new();
    for entry in &all {
        for c in enumerate(&entry.test, &EnumOptions::default()).unwrap() {
            let s = check(&strong, &c.exec).allowed();
            let e = check(&exact, &c.exec).allowed();
            // Strong is stronger: it can only forbid more.
            assert!(!s || e, "{}: strong allowed but exact forbade", entry.test.name);
            if s != e {
                differing_tests.insert(entry.test.name.clone());
            }
        }
    }
    assert!(
        differing_tests.iter().any(|n| n.starts_with("2+2w")),
        "the canonical witness of the gap is 2+2w: {differing_tests:?}"
    );
    // Everything that differs is a 2+2w or w+rw+2w shape (two co edges).
    for name in &differing_tests {
        assert!(
            name.starts_with("2+2w") || name.starts_with("w+rw+2w"),
            "unexpected divergence on {name}"
        );
    }
}

#[test]
fn cpp_ra_sits_between_sc_and_hardware_models() {
    // Release-acquire forbids mp/wrc/isa2 outright (synchronises-with),
    // allows sb and iriw (no total order over sc-atomics here).
    let ra = CppRa::default();
    for entry in corpus::power_corpus() {
        for c in enumerate(&entry.test, &EnumOptions::default()).unwrap() {
            if check(&Sc, &c.exec).allowed() {
                assert!(
                    check(&ra, &c.exec).allowed(),
                    "{}: SC-allowed must be R-A-allowed",
                    entry.test.name
                );
            }
        }
    }
}
