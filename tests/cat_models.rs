//! The cat-language models must agree with the native architectures on
//! every candidate execution of every corpus test — this is the paper's
//! genericity claim: the model file *is* the model (Sec 8.3, Fig 38).

use herd_cat::{stock, CatModel};
use herd_core::arch::{Arm, ArmVariant, Power, Sc, Tso};
use herd_core::model::{check, Architecture};
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus::{self, CorpusEntry};

fn assert_agreement(corpus: &[CorpusEntry], native: &dyn Architecture, cat: &CatModel) {
    let opts = EnumOptions::default();
    let compiled = cat.compile().expect("stock model compiles");
    let mut candidates = 0usize;
    for entry in corpus {
        let cands = enumerate(&entry.test, &opts).expect("enumeration succeeds");
        for (i, c) in cands.iter().enumerate() {
            let native_allowed = check(native, &c.exec).allowed();
            let cat_verdict = compiled.check(&c.exec);
            assert_eq!(
                native_allowed,
                cat_verdict.allowed(),
                "{} candidate #{i}: native={native_allowed}, cat failed checks {:?}",
                entry.test.name,
                cat_verdict.failed(),
            );
            candidates += 1;
        }
    }
    assert!(candidates > 30, "the corpus should exercise many candidates, got {candidates}");
}

#[test]
fn power_cat_equals_native_power_on_all_candidates() {
    assert_agreement(&corpus::power_corpus(), &Power::new(), &stock::load(stock::POWER));
}

#[test]
fn arm_cat_equals_native_arm_on_all_candidates() {
    assert_agreement(
        &corpus::arm_corpus(),
        &Arm::new(ArmVariant::Proposed),
        &stock::load(stock::ARM),
    );
}

#[test]
fn arm_llh_cat_equals_native_on_all_candidates() {
    assert_agreement(
        &corpus::arm_corpus(),
        &Arm::new(ArmVariant::ProposedLlh),
        &stock::load(stock::ARM_LLH),
    );
}

#[test]
fn sc_cat_equals_native_sc_on_all_candidates() {
    // SC is ISA-agnostic: run it over all three corpora.
    let all: Vec<CorpusEntry> = corpus::power_corpus()
        .into_iter()
        .chain(corpus::arm_corpus())
        .chain(corpus::x86_corpus())
        .collect();
    assert_agreement(&all, &Sc, &stock::load(stock::SC));
}

#[test]
fn tso_cat_equals_native_tso_on_all_candidates() {
    assert_agreement(&corpus::x86_corpus(), &Tso, &stock::load(stock::TSO));
}

mod random_agreement {
    use super::*;
    use herd_core::enumerate::SkeletonBuilder;
    use herd_core::event::Fence;
    use proptest::prelude::*;

    /// (is_write, loc, fence_after: 0=none 1=lwsync 2=sync 3=eieio)
    type ProgOp = (bool, u8, u8);

    fn random_program() -> impl Strategy<Value = Vec<Vec<ProgOp>>> {
        proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), 0u8..2, 0u8..4), 1..=3),
            2..=3,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The cat Power model agrees with the native one on random
        /// programs, not just the corpus.
        #[test]
        fn power_cat_equals_native_on_random_programs(prog in random_program()) {
            let mut b = SkeletonBuilder::new();
            let locs = ["x", "y"];
            for (tid, thread) in prog.iter().enumerate() {
                let mut prev: Option<usize> = None;
                let mut fence = 0u8;
                for &(is_write, loc, fence_after) in thread {
                    let id = if is_write {
                        b.write(tid as u16, locs[loc as usize], i64::from(loc) + 1)
                    } else {
                        b.read(tid as u16, locs[loc as usize])
                    };
                    if let Some(p) = prev {
                        match fence {
                            1 => { b.fence(Fence::Lwsync, p, id); }
                            2 => { b.fence(Fence::Sync, p, id); }
                            3 => { b.fence(Fence::Eieio, p, id); }
                            _ => {}
                        }
                    }
                    fence = fence_after;
                    prev = Some(id);
                }
            }
            let skeleton = b.build();
            prop_assume!(skeleton.candidate_count_saturating() <= 500);
            let native = Power::new();
            let cat = stock::load(stock::POWER);
            for exec in skeleton.candidates() {
                prop_assert_eq!(
                    check(&native, &exec).allowed(),
                    cat.check(&exec).unwrap().allowed()
                );
            }
        }
    }
}

/// The compiled evaluator (slot-indexed, CSE'd, constant-folded) must
/// agree check-for-check with the tree-walking reference on all 7 stock
/// models × every candidate of the full corpus.
#[test]
fn compiled_models_agree_with_tree_walker_on_full_corpus() {
    let all: Vec<CorpusEntry> = corpus::power_corpus()
        .into_iter()
        .chain(corpus::arm_corpus())
        .chain(corpus::x86_corpus())
        .collect();
    let opts = EnumOptions::default();
    let execs: Vec<(String, herd_core::Execution)> = all
        .iter()
        .flat_map(|entry| {
            enumerate(&entry.test, &opts)
                .expect("enumeration succeeds")
                .into_iter()
                .map(|c| (entry.test.name.clone(), c.exec))
        })
        .collect();
    let mut checked = 0usize;
    for (name, src) in stock::ALL {
        let model = herd_cat::parse(src).unwrap();
        let compiled = herd_cat::compile(&model).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (test, exec) in &execs {
            let tree = herd_cat::eval_tree(&model, exec)
                .unwrap_or_else(|e| panic!("{name} × {test}: {e}"));
            assert_eq!(tree, compiled.check(exec), "{name} × {test}");
            checked += 1;
        }
    }
    assert!(checked >= 7 * 400, "7 models × the whole corpus, got {checked}");
}

/// A user-modified model: dropping the OBSERVATION axiom from the Power
/// cat file must start allowing mp+lwsync+addr while everything
/// SC-per-location keeps failing — the "fine-tuning" workflow of Sec 4.9.
#[test]
fn editing_the_model_file_changes_the_model() {
    let src = stock::POWER.replace("irreflexive fre;prop;hb* as observation", "");
    let weakened = CatModel::parse(&src).unwrap();
    let test = corpus::mp(
        herd_litmus::isa::Isa::Power,
        corpus::Dev::F(herd_core::event::Fence::Lwsync),
        corpus::Dev::Addr,
    );
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    let full = stock::load(stock::POWER);
    let weakened_allows_more = cands.iter().any(|c| {
        weakened.check(&c.exec).unwrap().allowed() && !full.check(&c.exec).unwrap().allowed()
    });
    assert!(weakened_allows_more, "removing OBSERVATION must permit the mp witness");
}
