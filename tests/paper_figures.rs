//! Every captioned litmus verdict in the paper, checked end-to-end:
//! assemble the test (real assembly, real dependencies), enumerate its
//! candidate executions, apply the architecture's model, and compare the
//! quantified final condition against the figure's caption.
//!
//! Corpus verdicts live next to the tests in
//! `herd_litmus::corpus::{power_corpus, arm_corpus, x86_corpus}`.

use herd_core::arch::{Arm, ArmVariant, Power, Sc, Tso};
use herd_core::model::Architecture;
use herd_litmus::corpus::{self, CorpusEntry, Dev};
use herd_litmus::isa::Isa;
use herd_litmus::simulate::simulate;

fn check_corpus(corpus: &[CorpusEntry], arch: &dyn Architecture) {
    let mut failures = Vec::new();
    for entry in corpus {
        let out = simulate(&entry.test, arch).expect("simulation succeeds");
        if out.validated != entry.allowed {
            failures.push(format!(
                "{}: expected {}, model says {} (allowed {}/{} candidates)",
                entry.test.name,
                if entry.allowed { "allowed" } else { "forbidden" },
                out.verdict_str(),
                out.allowed,
                out.candidates,
            ));
        }
    }
    assert!(failures.is_empty(), "verdict mismatches on {}:\n{}", arch.name(), failures.join("\n"));
}

#[test]
fn power_corpus_matches_paper_verdicts() {
    check_corpus(&corpus::power_corpus(), &Power::new());
}

#[test]
fn arm_corpus_matches_paper_verdicts() {
    check_corpus(&corpus::arm_corpus(), &Arm::new(ArmVariant::Proposed));
}

#[test]
fn x86_corpus_matches_paper_verdicts() {
    check_corpus(&corpus::x86_corpus(), &Tso);
}

/// Fig 32: the early-commit behaviour separates the Power-ARM model
/// (wrongly forbids) from the proposed ARM model (allows).
#[test]
fn fig32_early_commit_separates_arm_models() {
    let test = corpus::mp_fri_rfi_ctrlcfence(Isa::Arm);
    let power_arm = simulate(&test, &Arm::new(ArmVariant::PowerArm)).unwrap();
    let proposed = simulate(&test, &Arm::new(ArmVariant::Proposed)).unwrap();
    assert!(!power_arm.validated, "Power-ARM forbids mp+dmb+fri-rfi-ctrlisb");
    assert!(proposed.validated, "proposed ARM allows it");
}

/// Fig 33: same for lb+data+fri-rfi-ctrl.
#[test]
fn fig33_lb_fri_rfi_separates_arm_models() {
    let test = corpus::lb_data_fri_rfi_ctrl(Isa::Arm);
    assert!(!simulate(&test, &Arm::new(ArmVariant::PowerArm)).unwrap().validated);
    assert!(simulate(&test, &Arm::new(ArmVariant::Proposed)).unwrap().validated);
}

/// Tab VII: the llh variant tolerates load-load hazards (coRR), the
/// proposed model does not.
#[test]
fn llh_variant_differs_exactly_on_read_read_coherence() {
    let corr = corpus::co_rr(Isa::Arm);
    assert!(!simulate(&corr, &Arm::new(ArmVariant::Proposed)).unwrap().validated);
    assert!(simulate(&corr, &Arm::new(ArmVariant::ProposedLlh)).unwrap().validated);
    // But write-involving coherence stays forbidden under llh.
    for t in [corpus::co_ww(Isa::Arm), corpus::co_wr(Isa::Arm), corpus::co_rw1(Isa::Arm)] {
        assert!(
            !simulate(&t, &Arm::new(ArmVariant::ProposedLlh)).unwrap().validated,
            "{} must stay forbidden",
            t.name
        );
    }
}

/// SC forbids every non-SC pattern in all three corpora (Lemma 4.1 sanity:
/// anything the paper marks forbidden-on-weak-models is certainly
/// forbidden on SC; coherence tests are forbidden too).
#[test]
fn sc_forbids_everything_the_weak_models_forbid() {
    for entry in corpus::power_corpus().iter().filter(|e| !e.allowed) {
        let out = simulate(&entry.test, &Sc).unwrap();
        assert!(!out.validated, "{} should be forbidden on SC", entry.test.name);
    }
}

/// The r+lwsync+sync subtlety (Fig 16 / Sec 9 discussion): earlier models
/// wrongly forbade it; ours allows it while still forbidding r+syncs.
#[test]
fn fig16_r_lwsync_sync_is_the_subtle_allowed_case() {
    use herd_core::event::Fence;
    let power = Power::new();
    let allowed = corpus::r(Isa::Power, Dev::F(Fence::Lwsync), Dev::F(Fence::Sync));
    assert!(simulate(&allowed, &power).unwrap().validated);
    let forbidden = corpus::r(Isa::Power, Dev::F(Fence::Sync), Dev::F(Fence::Sync));
    assert!(!simulate(&forbidden, &power).unwrap().validated);
}

/// Dependencies only order what they reach: mp+lwsync+ctrl is allowed
/// (ctrl does not order read-read) while mp+lwsync+ctrlisync is forbidden.
#[test]
fn control_fences_matter_for_read_read_ordering() {
    use herd_core::event::Fence;
    let power = Power::new();
    let ctrl = corpus::mp(Isa::Power, Dev::F(Fence::Lwsync), Dev::Ctrl);
    assert!(simulate(&ctrl, &power).unwrap().validated);
    let ctrlisync = corpus::mp(Isa::Power, Dev::F(Fence::Lwsync), Dev::CtrlCfence);
    assert!(!simulate(&ctrlisync, &power).unwrap().validated);
}
