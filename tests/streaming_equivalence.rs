//! Streaming enumeration must be a drop-in replacement for the seed's
//! eager generate-then-filter pipeline (paper, Sec 8.3):
//!
//! * the lazy [`Skeleton::stream`] yields exactly the same multiset of
//!   executions as the eager reference (`candidates_eager`);
//! * uniproc pruning is *exact* — `emitted + pruned == candidate_count()`
//!   — and *sound*: the emitted set is precisely the SC-PER-LOCATION
//!   -consistent subset, in both the strict and load-load-hazard variants;
//! * thin-air pruning ([`Architecture::thin_air_base`]) keeps exactly the
//!   model-allowed multiset on architectures vouching for a static base,
//!   and never fires on architectures without one;
//! * sharded enumeration partitions the stream exactly, with merged
//!   `emitted + pruned` counters equal to `candidate_count()`;
//! * the streamed, pruned litmus driver reaches identical verdicts to the
//!   eager judge on the whole corpus, under native and llh architectures.

use herd_core::arch::Power;
use herd_core::enumerate::{Skeleton, SkeletonBuilder};
use herd_core::event::{Dir, Fence};
use herd_core::exec::Execution;
use herd_core::model::{check, sc_per_location, Architecture};
use herd_core::relation::Relation;
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus::CorpusEntry;
use herd_litmus::simulate::{judge, simulate_sharded, simulate_with};
use proptest::prelude::*;

/// Power's axioms without the static-base hook: the default
/// [`Architecture::thin_air_base`] returns `None`, modelling an
/// architecture that does not (or cannot soundly) declare NO THIN AIR for
/// generation-time pruning.
struct NoThinAirHook(Power);

impl Architecture for NoThinAirHook {
    fn name(&self) -> &str {
        "power-no-hook"
    }
    fn ppo(&self, x: &Execution) -> Relation {
        self.0.ppo(x)
    }
    fn fences(&self, x: &Execution) -> Relation {
        self.0.fences(x)
    }
    fn prop(&self, x: &Execution) -> Relation {
        self.0.prop(x)
    }
}

/// A canonical fingerprint of one execution: event values plus the rf/co
/// choice (everything the data-flow enumeration decides).
fn key(x: &Execution) -> String {
    format!("{:?}|{:?}|{:?}", x.events().iter().map(|e| e.val).collect::<Vec<_>>(), x.rf(), x.co())
}

fn sorted_keys<I: IntoIterator<Item = Execution>>(xs: I) -> Vec<String> {
    let mut ks: Vec<String> = xs.into_iter().map(|x| key(&x)).collect();
    ks.sort();
    ks
}

/// SC PER LOCATION with read-read po-loc pairs dropped (the ARM-llh /
/// Sparc-RMO weakening the llh pruning mode must match).
fn sc_per_location_llh(x: &Execution) -> bool {
    let rr = x.dir_restrict(x.po_loc(), Some(Dir::R), Some(Dir::R));
    x.po_loc().minus(&rr).union(x.com()).is_acyclic()
}

/// One op: (is_write, location 0..3, value, fence-after 0..3).
type ProgOp = (bool, u8, i8, u8);

fn random_program() -> impl Strategy<Value = Vec<Vec<ProgOp>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0u8..3, -2i8..3, 0u8..3), 1..=4),
        1..=3,
    )
}

fn build_skeleton(prog: &[Vec<ProgOp>]) -> Skeleton {
    let locs = ["x", "y", "z"];
    let mut b = SkeletonBuilder::new();
    for (tid, thread) in prog.iter().enumerate() {
        let mut prev: Option<usize> = None;
        for &(is_write, loc, val, fence) in thread {
            let id = if is_write {
                b.write(tid as u16, locs[loc as usize], i64::from(val))
            } else {
                b.read(tid as u16, locs[loc as usize])
            };
            if let Some(p) = prev {
                match fence {
                    1 => {
                        b.fence(Fence::Lwsync, p, id);
                    }
                    2 => {
                        b.fence(Fence::Sync, p, id);
                    }
                    _ => {}
                }
            }
            prev = Some(id);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_yields_the_eager_multiset(prog in random_program()) {
        let sk = build_skeleton(&prog);
        prop_assume!(sk.candidate_count_saturating() <= 1500);
        let eager = sorted_keys(sk.candidates_eager());
        let lazy = sorted_keys(sk.stream());
        prop_assert_eq!(eager, lazy);
        // The back-compat entry point is the stream, collected.
        prop_assert_eq!(sk.candidates().len() as u128, sk.candidate_count().unwrap());
    }

    #[test]
    fn pruning_is_exact_and_sound(prog in random_program()) {
        let sk = build_skeleton(&prog);
        prop_assume!(sk.candidate_count_saturating() <= 1500);
        let total = sk.candidate_count().unwrap();
        let all: Vec<Execution> = sk.stream().collect();

        let mut it = sk.stream_pruned();
        let kept = sorted_keys(it.by_ref());
        prop_assert_eq!(it.emitted() + it.pruned(), total,
            "pruned-count + emitted must equal candidate_count()");
        let expected =
            sorted_keys(all.iter().filter(|x| sc_per_location(x)).cloned());
        prop_assert_eq!(kept, expected,
            "pruning keeps exactly the SC-PER-LOCATION-consistent candidates");

        let mut llh_it = sk.stream_pruned_llh();
        let llh_kept = sorted_keys(llh_it.by_ref());
        prop_assert_eq!(llh_it.emitted() + llh_it.pruned(), total);
        let llh_expected =
            sorted_keys(all.iter().filter(|x| sc_per_location_llh(x)).cloned());
        prop_assert_eq!(llh_kept, llh_expected,
            "llh pruning matches the load-load-hazard weakening");
    }

    /// Thin-air pruning may only ever discard model-forbidden candidates:
    /// the *allowed* multiset under Power must match eager enumeration
    /// exactly, with exact accounting — while the same skeleton streamed
    /// for an architecture without a static base prunes nothing beyond
    /// uniproc.
    #[test]
    fn thin_air_pruning_preserves_the_allowed_multiset(prog in random_program()) {
        let sk = build_skeleton(&prog);
        prop_assume!(sk.candidate_count_saturating() <= 1500);
        let power = Power::new();
        let all: Vec<Execution> = sk.stream().collect();
        let allowed_eager =
            sorted_keys(all.iter().filter(|x| check(&power, x).allowed()).cloned());

        let mut it = sk.stream_pruned_for(&power);
        let kept: Vec<Execution> = it.by_ref().collect();
        prop_assert_eq!(it.emitted() + it.pruned(), sk.candidate_count().unwrap(),
            "thin-air + uniproc accounting must stay exact");
        let allowed_pruned =
            sorted_keys(kept.iter().filter(|x| check(&power, x).allowed()).cloned());
        prop_assert_eq!(allowed_pruned, allowed_eager,
            "generation-time thin-air pruning must be invisible to the model");

        // Without the hook, the stream degrades to uniproc-only pruning.
        let mut plain = sk.stream_pruned();
        let uniproc_kept = sorted_keys(plain.by_ref());
        let hookless = sorted_keys(sk.stream_pruned_for(&NoThinAirHook(power)));
        prop_assert_eq!(hookless, uniproc_kept,
            "no static base means no thin-air pruning, ever");
    }

    /// Contiguous rf-odometer shards partition the pruned stream exactly.
    #[test]
    fn sharded_enumeration_partitions_exactly(prog in random_program(), nshards in 2usize..5) {
        let sk = build_skeleton(&prog);
        prop_assume!(sk.candidate_count_saturating() <= 1500);
        let power = Power::new();
        let mut whole: Vec<String> = sk.stream_pruned_for(&power).map(|x| key(&x)).collect();
        whole.sort();

        let mut merged = Vec::new();
        let (mut emitted, mut pruned) = (0u128, 0u128);
        for s in 0..nshards {
            let mut it = sk.stream_pruned_for_shard(&power, s, nshards);
            merged.extend(it.by_ref().map(|x| key(&x)));
            emitted += it.emitted();
            pruned += it.pruned();
        }
        merged.sort();
        prop_assert_eq!(merged, whole, "shards must cover the stream exactly");
        prop_assert_eq!(emitted + pruned, sk.candidate_count().unwrap(),
            "merged shard counters must equal the candidate count");
    }
}

/// The streamed, pruned driver — sequential and sharded — and the eager
/// enumerate-then-judge path must produce identical outcomes for every
/// corpus test.
fn assert_corpus_equivalence<A: Architecture + Sync + ?Sized>(corpus: &[CorpusEntry], arch: &A) {
    let opts = EnumOptions::default();
    for entry in corpus {
        let streamed = simulate_with(&entry.test, arch, &opts).expect("streamed simulation");
        let eager = judge(&entry.test, arch, &enumerate(&entry.test, &opts).expect("enumeration"));
        assert_eq!(streamed.candidates, eager.candidates, "{}", entry.test.name);
        assert_eq!(streamed.allowed, eager.allowed, "{}", entry.test.name);
        assert_eq!(streamed.positive, eager.positive, "{}", entry.test.name);
        assert_eq!(streamed.negative, eager.negative, "{}", entry.test.name);
        assert_eq!(streamed.states, eager.states, "{}", entry.test.name);
        assert_eq!(streamed.validated, eager.validated, "{}", entry.test.name);
        let sharded = simulate_sharded(&entry.test, arch, &opts, 3).expect("sharded simulation");
        assert_eq!(sharded.candidates, streamed.candidates, "{}", entry.test.name);
        assert_eq!(sharded.pruned, streamed.pruned, "{}", entry.test.name);
        assert_eq!(sharded.allowed, streamed.allowed, "{}", entry.test.name);
        assert_eq!(sharded.states, streamed.states, "{}", entry.test.name);
        assert_eq!(sharded.validated, streamed.validated, "{}", entry.test.name);
    }
}

#[test]
fn streamed_verdicts_match_eager_on_the_whole_corpus() {
    use herd_core::arch::{Arm, ArmVariant, Power, Sc, Tso};
    use herd_litmus::corpus;
    assert_corpus_equivalence(&corpus::power_corpus(), &Power::new());
    assert_corpus_equivalence(&corpus::arm_corpus(), &Arm::new(ArmVariant::Proposed));
    // The llh variant exercises the weakened pruning graph end to end.
    assert_corpus_equivalence(&corpus::arm_corpus(), &Arm::new(ArmVariant::ProposedLlh));
    assert_corpus_equivalence(&corpus::x86_corpus(), &Tso);
    assert_corpus_equivalence(&corpus::x86_corpus(), &Sc);
}

/// Silicon models with the load-load-hazard erratum must keep their
/// hazard candidates under the streamed, pruned driver: `Prune::for_arch`
/// has to pick the weakened graph for them, or coRR outcomes the part
/// exhibits on real hardware would be pruned away at generation time.
#[test]
fn erratum_silicon_keeps_hazard_candidates_under_pruning() {
    use herd_hw::silicon::{ArmErrata, ArmSilicon};
    use herd_litmus::{corpus, isa::Isa};
    let tegra2 =
        ArmSilicon::new("Tegra2", ArmErrata { load_load_hazards: true, ..Default::default() });
    assert!(tegra2.tolerates_load_load_hazards());
    let test = corpus::co_rr(Isa::Arm);
    assert_corpus_equivalence(&[CorpusEntry { test, allowed: true }], &tegra2);
}

/// The arena-backed verdict stream against the PR 3 engine, candidate by
/// candidate across the whole corpus: [`stream_arch_verdicts`] judges
/// each candidate in place (no owned `Execution`, relations in a reused
/// arena) and must reproduce exactly the per-candidate verdicts of the
/// owned path (`stream_arch` + `ArchRelations` + `check_with`), along
/// with identical emitted/pruned accounting.
///
/// [`stream_arch_verdicts`]: herd_litmus::candidates::stream_arch_verdicts
#[test]
fn arena_verdict_stream_matches_owned_candidate_stream_corpus_wide() {
    use herd_core::arch::{Arm, ArmVariant, Tso};
    use herd_core::model::{check_with, ArchRelations};
    use herd_litmus::candidates::{stream_arch, stream_arch_verdicts};
    use herd_litmus::corpus;

    let opts = EnumOptions::default();
    let suites: Vec<(Vec<CorpusEntry>, Box<dyn Architecture + Sync>)> = vec![
        (corpus::power_corpus(), Box::new(Power::new())),
        (corpus::arm_corpus(), Box::new(Arm::new(ArmVariant::Proposed))),
        (corpus::x86_corpus(), Box::new(Tso)),
    ];
    for (entries, arch) in &suites {
        for entry in entries {
            // PR 3 engine: owned candidates, owned relation computation.
            let mut owned: Vec<String> = Vec::new();
            let owned_stats = stream_arch(&entry.test, &opts, arch.as_ref(), &mut |c| {
                let rels = ArchRelations::compute(arch.as_ref(), &c.exec);
                let v = check_with(arch.as_ref(), &c.exec, &rels);
                owned.push(format!("{v:?}|{:?}|{:?}", c.final_regs, c.final_mem));
            })
            .expect("corpus streams");
            // Arena engine: verdicts computed in place.
            let mut arena_side: Vec<String> = Vec::new();
            let arena_stats = stream_arch_verdicts(&entry.test, &opts, arch.as_ref(), &mut |vc| {
                arena_side.push(format!("{:?}|{:?}|{:?}", vc.verdict, vc.final_regs, vc.final_mem));
            })
            .expect("corpus streams");
            owned.sort();
            arena_side.sort();
            assert_eq!(owned, arena_side, "{}: per-candidate verdicts differ", entry.test.name);
            assert_eq!(
                owned_stats, arena_stats,
                "{}: emitted/pruned accounting differs",
                entry.test.name
            );
        }
    }
}
