//! Streaming enumeration must be a drop-in replacement for the seed's
//! eager generate-then-filter pipeline (paper, Sec 8.3):
//!
//! * the lazy [`Skeleton::stream`] yields exactly the same multiset of
//!   executions as the eager reference (`candidates_eager`);
//! * uniproc pruning is *exact* — `emitted + pruned == candidate_count()`
//!   — and *sound*: the emitted set is precisely the SC-PER-LOCATION
//!   -consistent subset, in both the strict and load-load-hazard variants;
//! * the streamed, pruned litmus driver reaches identical verdicts to the
//!   eager judge on the whole corpus, under native and llh architectures.

use herd_core::enumerate::{Skeleton, SkeletonBuilder};
use herd_core::event::{Dir, Fence};
use herd_core::exec::Execution;
use herd_core::model::{sc_per_location, Architecture};
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus::CorpusEntry;
use herd_litmus::simulate::{judge, simulate_with};
use proptest::prelude::*;

/// A canonical fingerprint of one execution: event values plus the rf/co
/// choice (everything the data-flow enumeration decides).
fn key(x: &Execution) -> String {
    format!("{:?}|{:?}|{:?}", x.events().iter().map(|e| e.val).collect::<Vec<_>>(), x.rf(), x.co())
}

fn sorted_keys<I: IntoIterator<Item = Execution>>(xs: I) -> Vec<String> {
    let mut ks: Vec<String> = xs.into_iter().map(|x| key(&x)).collect();
    ks.sort();
    ks
}

/// SC PER LOCATION with read-read po-loc pairs dropped (the ARM-llh /
/// Sparc-RMO weakening the llh pruning mode must match).
fn sc_per_location_llh(x: &Execution) -> bool {
    let rr = x.dir_restrict(x.po_loc(), Some(Dir::R), Some(Dir::R));
    x.po_loc().minus(&rr).union(x.com()).is_acyclic()
}

/// One op: (is_write, location 0..3, value, fence-after 0..3).
type ProgOp = (bool, u8, i8, u8);

fn random_program() -> impl Strategy<Value = Vec<Vec<ProgOp>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0u8..3, -2i8..3, 0u8..3), 1..=4),
        1..=3,
    )
}

fn build_skeleton(prog: &[Vec<ProgOp>]) -> Skeleton {
    let locs = ["x", "y", "z"];
    let mut b = SkeletonBuilder::new();
    for (tid, thread) in prog.iter().enumerate() {
        let mut prev: Option<usize> = None;
        for &(is_write, loc, val, fence) in thread {
            let id = if is_write {
                b.write(tid as u16, locs[loc as usize], i64::from(val))
            } else {
                b.read(tid as u16, locs[loc as usize])
            };
            if let Some(p) = prev {
                match fence {
                    1 => {
                        b.fence(Fence::Lwsync, p, id);
                    }
                    2 => {
                        b.fence(Fence::Sync, p, id);
                    }
                    _ => {}
                }
            }
            prev = Some(id);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_yields_the_eager_multiset(prog in random_program()) {
        let sk = build_skeleton(&prog);
        prop_assume!(sk.candidate_count() <= 1500);
        let eager = sorted_keys(sk.candidates_eager());
        let lazy = sorted_keys(sk.stream());
        prop_assert_eq!(eager, lazy);
        // The back-compat entry point is the stream, collected.
        prop_assert_eq!(sk.candidates().len(), sk.candidate_count());
    }

    #[test]
    fn pruning_is_exact_and_sound(prog in random_program()) {
        let sk = build_skeleton(&prog);
        prop_assume!(sk.candidate_count() <= 1500);
        let total = sk.candidate_count();
        let all: Vec<Execution> = sk.stream().collect();

        let mut it = sk.stream_pruned();
        let kept = sorted_keys(it.by_ref());
        prop_assert_eq!(it.emitted() + it.pruned(), total,
            "pruned-count + emitted must equal candidate_count()");
        let expected =
            sorted_keys(all.iter().filter(|x| sc_per_location(x)).cloned());
        prop_assert_eq!(kept, expected,
            "pruning keeps exactly the SC-PER-LOCATION-consistent candidates");

        let mut llh_it = sk.stream_pruned_llh();
        let llh_kept = sorted_keys(llh_it.by_ref());
        prop_assert_eq!(llh_it.emitted() + llh_it.pruned(), total);
        let llh_expected =
            sorted_keys(all.iter().filter(|x| sc_per_location_llh(x)).cloned());
        prop_assert_eq!(llh_kept, llh_expected,
            "llh pruning matches the load-load-hazard weakening");
    }
}

/// The streamed, pruned driver and the eager enumerate-then-judge path
/// must produce identical outcomes for every corpus test.
fn assert_corpus_equivalence<A: Architecture + ?Sized>(corpus: &[CorpusEntry], arch: &A) {
    let opts = EnumOptions::default();
    for entry in corpus {
        let streamed = simulate_with(&entry.test, arch, &opts).expect("streamed simulation");
        let eager = judge(&entry.test, arch, &enumerate(&entry.test, &opts).expect("enumeration"));
        assert_eq!(streamed.candidates, eager.candidates, "{}", entry.test.name);
        assert_eq!(streamed.allowed, eager.allowed, "{}", entry.test.name);
        assert_eq!(streamed.positive, eager.positive, "{}", entry.test.name);
        assert_eq!(streamed.negative, eager.negative, "{}", entry.test.name);
        assert_eq!(streamed.states, eager.states, "{}", entry.test.name);
        assert_eq!(streamed.validated, eager.validated, "{}", entry.test.name);
    }
}

#[test]
fn streamed_verdicts_match_eager_on_the_whole_corpus() {
    use herd_core::arch::{Arm, ArmVariant, Power, Sc, Tso};
    use herd_litmus::corpus;
    assert_corpus_equivalence(&corpus::power_corpus(), &Power::new());
    assert_corpus_equivalence(&corpus::arm_corpus(), &Arm::new(ArmVariant::Proposed));
    // The llh variant exercises the weakened pruning graph end to end.
    assert_corpus_equivalence(&corpus::arm_corpus(), &Arm::new(ArmVariant::ProposedLlh));
    assert_corpus_equivalence(&corpus::x86_corpus(), &Tso);
    assert_corpus_equivalence(&corpus::x86_corpus(), &Sc);
}

/// Silicon models with the load-load-hazard erratum must keep their
/// hazard candidates under the streamed, pruned driver: `Prune::for_arch`
/// has to pick the weakened graph for them, or coRR outcomes the part
/// exhibits on real hardware would be pruned away at generation time.
#[test]
fn erratum_silicon_keeps_hazard_candidates_under_pruning() {
    use herd_hw::silicon::{ArmErrata, ArmSilicon};
    use herd_litmus::{corpus, isa::Isa};
    let tegra2 =
        ArmSilicon::new("Tegra2", ArmErrata { load_load_hazards: true, ..Default::default() });
    assert!(tegra2.tolerates_load_load_hazards());
    let test = corpus::co_rr(Isa::Arm);
    assert_corpus_equivalence(&[CorpusEntry { test, allowed: true }], &tegra2);
}
