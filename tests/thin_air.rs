//! Out-of-thin-air values (Sec 4.4): the genuine `lb+datas` with the
//! *loaded value stored on*, whose read values form a self-justifying
//! cycle. The symbolic enumeration must represent such candidates (free
//! symbols enumerated over the test's value domain), NO THIN AIR must
//! reject them, and removing the axiom from the cat model must let them
//! through — "one can very simply disable the NO THIN AIR check"
//! (Sec 4.9).

use herd_cat::{stock, CatModel};
use herd_core::arch::Power;
use herd_core::model::check;
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::isa::{Addr, Instr, Isa, Reg};
use herd_litmus::program::{CondVal, Condition, InitVal, LitmusTest, Prop, Quantifier};
use herd_litmus::simulate::{eval_prop, judge, simulate_with};
use std::collections::BTreeMap;

/// `T0: r1 = x; y = r1 — T1: r2 = y; x = r2`, with a 1 written nowhere:
/// any non-zero outcome is out of thin air.
fn true_lb() -> LitmusTest {
    let thread = |addr_in: u8, addr_out: u8| {
        vec![
            Instr::Load { dst: Reg(1), addr: Addr::Reg(Reg(addr_in)) },
            Instr::Store { src: Reg(1), addr: Addr::Reg(Reg(addr_out)) },
        ]
    };
    let mut reg_init = BTreeMap::new();
    reg_init.insert((0u16, Reg(2)), InitVal::Loc("x".into()));
    reg_init.insert((0u16, Reg(4)), InitVal::Loc("y".into()));
    reg_init.insert((1u16, Reg(2)), InitVal::Loc("y".into()));
    reg_init.insert((1u16, Reg(4)), InitVal::Loc("x".into()));
    LitmusTest {
        isa: Isa::Power,
        name: "lb+datas-true".into(),
        threads: vec![thread(2, 4), thread(2, 4)],
        reg_init,
        mem_init: BTreeMap::new(),
        condition: Condition {
            quantifier: Quantifier::Exists,
            prop: Prop::and(
                Prop::RegEq { tid: 0, reg: Reg(1), val: CondVal::Int(1) },
                Prop::RegEq { tid: 1, reg: Reg(1), val: CondVal::Int(1) },
            ),
        },
    }
}

#[test]
fn thin_air_candidates_are_representable() {
    let test = true_lb();
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    // The self-justifying candidate exists: both reads return 1 although
    // nobody ever writes a literal 1.
    let witnesses: Vec<_> = cands.iter().filter(|c| eval_prop(&test.condition.prop, c)).collect();
    assert!(!witnesses.is_empty(), "the value domain includes 1; the cycle justifies it");
    // Its data flow is circular: each read reads the other thread's write.
    for w in &witnesses {
        assert_eq!(w.exec.rfe().len(), 2, "both rf edges are external");
    }
}

#[test]
fn no_thin_air_rejects_the_witness_on_power() {
    let test = true_lb();
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    for c in cands.iter().filter(|c| eval_prop(&test.condition.prop, c)) {
        let v = check(&Power::new(), &c.exec);
        assert!(!v.allowed());
        assert!(!v.no_thin_air, "rejected precisely by NO THIN AIR, got {v}");
    }
}

#[test]
fn disabling_the_axiom_admits_thin_air() {
    // Sec 4.9: the axioms are bricks; drop NO THIN AIR from the cat file
    // and the self-justifying execution becomes allowed.
    let weakened = CatModel::parse(&stock::POWER.replace("acyclic hb as no-thin-air", "")).unwrap();
    let test = true_lb();
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    let admitted = cands
        .iter()
        .filter(|c| eval_prop(&test.condition.prop, c))
        .any(|c| weakened.check(&c.exec).unwrap().allowed());
    assert!(admitted);
}

/// Sec 8.3 `-speedcheck`, second axis: the self-justifying rf subtrees of
/// the genuine lb+datas are pruned at *generation* time by the streamed
/// driver (Power vouches for a static `ppo ∪ fences` base, and the cyclic
/// `data ∪ rfe` choice can never satisfy NO THIN AIR) — yet the verdict,
/// allowed counts and states are bit-identical to eager enumerate+judge.
#[test]
fn generation_time_pruning_drops_thin_air_subtrees_but_keeps_verdicts() {
    let test = true_lb();
    let power = Power::new();
    let streamed = simulate_with(&test, &power, &EnumOptions::default()).unwrap();
    let eager = judge(&test, &power, &enumerate(&test, &EnumOptions::default()).unwrap());
    assert!(streamed.pruned > 0, "the self-justifying subtrees must die at generation");
    assert_eq!(streamed.candidates, eager.candidates, "accounting covers pruned candidates");
    assert_eq!(streamed.allowed, eager.allowed);
    assert_eq!(streamed.positive, eager.positive);
    assert_eq!(streamed.negative, eager.negative);
    assert_eq!(streamed.states, eager.states);
    assert_eq!(streamed.validated, eager.validated);
}

#[test]
fn zero_outcomes_stay_sequential() {
    // The non-thin-air outcomes (someone reads 0) are allowed everywhere.
    let test = true_lb();
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    let sequential = cands
        .iter()
        .any(|c| !eval_prop(&test.condition.prop, c) && check(&Power::new(), &c.exec).allowed());
    assert!(sequential);
}

// ---------------------------------------------------------------------------
// The static base's contract, property-tested (the fence-suffix extension):
// `Architecture::thin_air_base` = static ppo ∪ `thin_air_fences`, and the
// whole of it must underapproximate `ppo(x) ∪ fences(x)` on *every*
// candidate — so `base ∪ rfe ⊆ hb` and generation-time pruning is sound.
// Keeping the static fence suffix in the base is also what makes the
// A-cumulativity pairs `rfe; fences` fall out of the tracked closure for
// free: once the rfe edge `(w, r)` is pushed, `(r, c) ∈ fences ⊆ base`
// closes `(w, c)` transitively.
// ---------------------------------------------------------------------------

use herd_core::enumerate::{Skeleton, SkeletonBuilder};
use herd_core::event::Fence;
use herd_core::exec::Execution;
use herd_core::relation::Relation;
use herd_core::thinair::ThinAirTracker;
use proptest::prelude::*;

/// One random op: `(thread, write?, location, value, device)`.
type SkOp = (u8, u8, u8, i8, u8);

/// Builds a small random skeleton: up to three threads over three
/// locations, with occasional fences and read-to-write dependencies.
fn build_skeleton(ops: &[SkOp]) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    let names = ["x", "y", "z"];
    let mut last_read: [Option<usize>; 3] = [None; 3];
    let mut last_ev: [Option<usize>; 3] = [None; 3];
    for &(tid, w, loc, val, dev) in ops {
        let t = (tid % 3) as usize;
        let is_write = w % 2 == 1;
        let loc = names[(loc % 3) as usize];
        let id = if is_write { b.write(t as u16, loc, val as i64) } else { b.read(t as u16, loc) };
        match dev % 6 {
            1 => {
                if let Some(prev) = last_ev[t] {
                    b.fence(Fence::Sync, prev, id);
                }
            }
            2 => {
                if let Some(prev) = last_ev[t] {
                    b.fence(Fence::Lwsync, prev, id);
                }
            }
            3 => {
                if let Some(prev) = last_ev[t] {
                    b.fence(Fence::Mfence, prev, id);
                }
            }
            4 => {
                if is_write {
                    if let Some(r) = last_read[t] {
                        b.data(r, id);
                    }
                }
            }
            5 => {
                if let Some(r) = last_read[t] {
                    if r != id {
                        b.ctrl(r, id);
                    }
                }
            }
            _ => {}
        }
        if !is_write {
            last_read[t] = Some(id);
        }
        last_ev[t] = Some(id);
    }
    b.build()
}

/// A >64-event universe, a sparse random base, and a random op sequence
/// `(kind, from, to, rollback-depth)` for the tracker-vs-eager property.
#[allow(clippy::type_complexity)]
fn wide_tracker_inputs(
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<(u8, usize, usize, u8)>)> {
    proptest::sample::select(vec![65usize, 100, 130]).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..n / 2),
            proptest::collection::vec((0..4u8, 0..n, 0..n, 0..64u8), 1..32),
        )
    })
}

fn small_candidates(sk: &Skeleton) -> Option<Vec<Execution>> {
    let count = sk.candidate_count_saturating();
    (count >= 1 && count <= 256).then(|| sk.stream().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The soundness half: on every candidate of a random skeleton, every
    /// stock architecture's (fence-extended) static base stays under the
    /// candidate's `ppo ∪ fences` — hence under its `hb`.
    #[test]
    fn extended_base_underapproximates_every_candidates_hb(
        ops in proptest::collection::vec((0..3u8, 0..2u8, 0..3u8, 0..4i8, 0..6u8), 1..8)
    ) {
        let sk = build_skeleton(&ops);
        let cands = small_candidates(&sk);
        prop_assume!(cands.is_some());
        let cands = cands.unwrap();
        prop_assume!(!cands.is_empty());
        let core = cands[0].core();
        for arch in herd_core::arch::all() {
            let suffix = arch.thin_air_fences(core);
            if let Some(base) = arch.thin_air_base(core) {
                prop_assert!(
                    suffix.is_subset(&base),
                    "{}: the static fence suffix must sit inside the base",
                    arch.name()
                );
                for x in &cands {
                    let hb_static_part = arch.ppo(x).union(&arch.fences(x));
                    prop_assert!(
                        base.is_subset(&hb_static_part),
                        "{}: base ⊄ ppo ∪ fences on a candidate",
                        arch.name()
                    );
                }
            }
        }
    }

    /// The cumulativity half: with the fence suffix inside the base,
    /// every A-cumulativity pair `rfe; fences` of every candidate is
    /// already reachable in the closed `base ∪ rfe` graph — exactly what
    /// the incremental tracker maintains, so cumulativity-mediated cycles
    /// are caught without per-candidate work.
    #[test]
    fn cumulativity_edges_fall_out_of_the_closed_base(
        ops in proptest::collection::vec((0..3u8, 0..2u8, 0..3u8, 0..4i8, 0..6u8), 1..8)
    ) {
        let sk = build_skeleton(&ops);
        let cands = small_candidates(&sk);
        prop_assume!(cands.is_some());
        let cands = cands.unwrap();
        prop_assume!(!cands.is_empty());
        let core = cands[0].core();
        for arch in herd_core::arch::all() {
            if let Some(base) = arch.thin_air_base(core) {
                for x in &cands {
                    let closure = base.union(x.rfe()).tclosure();
                    let a_cumul = x.rfe().seq(&arch.fences(x));
                    prop_assert!(
                        a_cumul.is_subset(&closure),
                        "{}: an rfe;fences pair escaped the tracked closure",
                        arch.name()
                    );
                }
            }
        }
    }

    /// PR 8, the width-generic tracker: on universes past the old
    /// 64-event ceiling, a random interleaving of pushes, no-edge levels
    /// and rollbacks must agree step by step with eagerly recomputing
    /// "is `base ∪ accepted edges ∪ new edge` acyclic?" from scratch.
    #[test]
    fn wide_tracker_matches_eager_recomputation((n, base_pairs, ops) in wide_tracker_inputs()) {
        let base = Relation::from_pairs(n, base_pairs.clone());
        let mut t = ThinAirTracker::new(&base);
        prop_assert_eq!(t.is_base_cyclic(), !base.is_acyclic());
        // Shadow stack of the tracker's levels (`None` = edgeless level).
        let mut levels: Vec<Option<(usize, usize)>> = Vec::new();
        for (kind, a, b, d) in ops {
            match kind {
                0 | 1 => {
                    let mut pairs = base_pairs.clone();
                    pairs.extend(levels.iter().flatten().copied());
                    pairs.push((a, b));
                    let eager_ok = Relation::from_pairs(n, pairs).is_acyclic();
                    let pushed = t.try_push(0, Some((a, b)));
                    prop_assert_eq!(pushed, eager_ok, "push ({}, {}) at width {}", a, b, n);
                    if pushed {
                        levels.push(Some((a, b)));
                    }
                    prop_assert_eq!(t.depth(), levels.len(), "a rejected push must not push");
                }
                2 => {
                    let pushed = t.try_push(0, None);
                    prop_assert_eq!(pushed, !t.is_base_cyclic());
                    if pushed {
                        levels.push(None);
                    }
                }
                _ => {
                    let d = d as usize % (levels.len() + 1);
                    t.truncate(d);
                    levels.truncate(d);
                }
            }
        }
    }
}
