//! Out-of-thin-air values (Sec 4.4): the genuine `lb+datas` with the
//! *loaded value stored on*, whose read values form a self-justifying
//! cycle. The symbolic enumeration must represent such candidates (free
//! symbols enumerated over the test's value domain), NO THIN AIR must
//! reject them, and removing the axiom from the cat model must let them
//! through — "one can very simply disable the NO THIN AIR check"
//! (Sec 4.9).

use herd_cat::{stock, CatModel};
use herd_core::arch::Power;
use herd_core::model::check;
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::isa::{Addr, Instr, Isa, Reg};
use herd_litmus::program::{CondVal, Condition, InitVal, LitmusTest, Prop, Quantifier};
use herd_litmus::simulate::{eval_prop, judge, simulate_with};
use std::collections::BTreeMap;

/// `T0: r1 = x; y = r1 — T1: r2 = y; x = r2`, with a 1 written nowhere:
/// any non-zero outcome is out of thin air.
fn true_lb() -> LitmusTest {
    let thread = |addr_in: u8, addr_out: u8| {
        vec![
            Instr::Load { dst: Reg(1), addr: Addr::Reg(Reg(addr_in)) },
            Instr::Store { src: Reg(1), addr: Addr::Reg(Reg(addr_out)) },
        ]
    };
    let mut reg_init = BTreeMap::new();
    reg_init.insert((0u16, Reg(2)), InitVal::Loc("x".into()));
    reg_init.insert((0u16, Reg(4)), InitVal::Loc("y".into()));
    reg_init.insert((1u16, Reg(2)), InitVal::Loc("y".into()));
    reg_init.insert((1u16, Reg(4)), InitVal::Loc("x".into()));
    LitmusTest {
        isa: Isa::Power,
        name: "lb+datas-true".into(),
        threads: vec![thread(2, 4), thread(2, 4)],
        reg_init,
        mem_init: BTreeMap::new(),
        condition: Condition {
            quantifier: Quantifier::Exists,
            prop: Prop::and(
                Prop::RegEq { tid: 0, reg: Reg(1), val: CondVal::Int(1) },
                Prop::RegEq { tid: 1, reg: Reg(1), val: CondVal::Int(1) },
            ),
        },
    }
}

#[test]
fn thin_air_candidates_are_representable() {
    let test = true_lb();
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    // The self-justifying candidate exists: both reads return 1 although
    // nobody ever writes a literal 1.
    let witnesses: Vec<_> = cands.iter().filter(|c| eval_prop(&test.condition.prop, c)).collect();
    assert!(!witnesses.is_empty(), "the value domain includes 1; the cycle justifies it");
    // Its data flow is circular: each read reads the other thread's write.
    for w in &witnesses {
        assert_eq!(w.exec.rfe().len(), 2, "both rf edges are external");
    }
}

#[test]
fn no_thin_air_rejects_the_witness_on_power() {
    let test = true_lb();
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    for c in cands.iter().filter(|c| eval_prop(&test.condition.prop, c)) {
        let v = check(&Power::new(), &c.exec);
        assert!(!v.allowed());
        assert!(!v.no_thin_air, "rejected precisely by NO THIN AIR, got {v}");
    }
}

#[test]
fn disabling_the_axiom_admits_thin_air() {
    // Sec 4.9: the axioms are bricks; drop NO THIN AIR from the cat file
    // and the self-justifying execution becomes allowed.
    let weakened = CatModel::parse(&stock::POWER.replace("acyclic hb as no-thin-air", "")).unwrap();
    let test = true_lb();
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    let admitted = cands
        .iter()
        .filter(|c| eval_prop(&test.condition.prop, c))
        .any(|c| weakened.check(&c.exec).unwrap().allowed());
    assert!(admitted);
}

/// Sec 8.3 `-speedcheck`, second axis: the self-justifying rf subtrees of
/// the genuine lb+datas are pruned at *generation* time by the streamed
/// driver (Power vouches for a static `ppo ∪ fences` base, and the cyclic
/// `data ∪ rfe` choice can never satisfy NO THIN AIR) — yet the verdict,
/// allowed counts and states are bit-identical to eager enumerate+judge.
#[test]
fn generation_time_pruning_drops_thin_air_subtrees_but_keeps_verdicts() {
    let test = true_lb();
    let power = Power::new();
    let streamed = simulate_with(&test, &power, &EnumOptions::default()).unwrap();
    let eager = judge(&test, &power, &enumerate(&test, &EnumOptions::default()).unwrap());
    assert!(streamed.pruned > 0, "the self-justifying subtrees must die at generation");
    assert_eq!(streamed.candidates, eager.candidates, "accounting covers pruned candidates");
    assert_eq!(streamed.allowed, eager.allowed);
    assert_eq!(streamed.positive, eager.positive);
    assert_eq!(streamed.negative, eager.negative);
    assert_eq!(streamed.states, eager.states);
    assert_eq!(streamed.validated, eager.validated);
}

#[test]
fn zero_outcomes_stay_sequential() {
    // The non-thin-air outcomes (someone reads 0) are allowed everywhere.
    let test = true_lb();
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    let sequential = cands
        .iter()
        .any(|c| !eval_prop(&test.condition.prop, c) && check(&Power::new(), &c.exec).allowed());
    assert!(sequential);
}
