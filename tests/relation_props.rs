//! Property tests for the relational algebra underlying everything
//! (herd-core): closure laws, composition associativity, transpose
//! involution, acyclicity coherence.

use herd_core::relation::Relation;
use herd_core::set::EventSet;
use proptest::prelude::*;

fn relation(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..n, 0..n), 0..=n * 2)
        .prop_map(move |pairs| Relation::from_pairs(n, pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tclosure_is_idempotent(r in relation(8)) {
        let c = r.tclosure();
        prop_assert_eq!(c.tclosure(), c);
    }

    #[test]
    fn tclosure_is_transitive_and_contains(r in relation(8)) {
        let c = r.tclosure();
        prop_assert!(r.is_subset(&c));
        prop_assert!(c.seq(&c).is_subset(&c));
    }

    #[test]
    fn rtclosure_adds_identity(r in relation(8)) {
        let c = r.rtclosure();
        prop_assert!(Relation::id(8).is_subset(&c));
        prop_assert_eq!(c.clone(), r.tclosure().union(&Relation::id(8)));
    }

    #[test]
    fn seq_is_associative(a in relation(6), b in relation(6), c in relation(6)) {
        prop_assert_eq!(a.seq(&b).seq(&c), a.seq(&b.seq(&c)));
    }

    #[test]
    fn seq_distributes_over_union(a in relation(6), b in relation(6), c in relation(6)) {
        prop_assert_eq!(a.seq(&b.union(&c)), a.seq(&b).union(&a.seq(&c)));
    }

    #[test]
    fn transpose_involution_and_antidistribution(a in relation(7), b in relation(7)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        prop_assert_eq!(a.seq(&b).transpose(), b.transpose().seq(&a.transpose()));
    }

    #[test]
    fn acyclic_iff_topo_sortable(r in relation(8)) {
        prop_assert_eq!(r.is_acyclic(), r.topo_sort().is_some());
        prop_assert_eq!(r.is_acyclic(), r.find_cycle().is_none());
    }

    #[test]
    fn found_cycles_are_real(r in relation(8)) {
        if let Some(cycle) = r.find_cycle() {
            for w in cycle.windows(2) {
                prop_assert!(r.contains(w[0], w[1]));
            }
            prop_assert!(r.contains(*cycle.last().unwrap(), cycle[0]));
        }
    }

    #[test]
    fn irreflexive_union_check(a in relation(8), b in relation(8)) {
        // acyclic(a ∪ b) implies both acyclic(a) and acyclic(b).
        if a.union(&b).is_acyclic() {
            prop_assert!(a.is_acyclic());
            prop_assert!(b.is_acyclic());
        }
    }

    #[test]
    fn restrict_is_intersection_with_product(r in relation(8)) {
        let evens = EventSet::from_indices(8, (0..8).step_by(2));
        let odds = evens.complement();
        let q = r.restrict(&evens, &odds);
        for (x, y) in q.iter_pairs() {
            prop_assert!(evens.contains(x) && odds.contains(y));
            prop_assert!(r.contains(x, y));
        }
        for (x, y) in r.iter_pairs() {
            if evens.contains(x) && odds.contains(y) {
                prop_assert!(q.contains(x, y));
            }
        }
    }

    #[test]
    fn topo_sort_respects_edges(r in relation(8)) {
        if let Some(order) = r.topo_sort() {
            let mut rank = [0usize; 8];
            for (i, &e) in order.iter().enumerate() {
                rank[e] = i;
            }
            for (a, b) in r.iter_pairs() {
                prop_assert!(rank[a] < rank[b]);
            }
        }
    }
}
