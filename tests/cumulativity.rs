//! Cumulativity of fences (Sec 4.5.2, Figs 9–12, 15, 19–20): the
//! A-cumulative (`rfe; fences`) and B-cumulative (`fences; hb*`) parts of
//! `prop-base`, and the strong A-cumulativity reserved to full fences
//! (`com*; prop-base*; ffence; hb*`).

use herd_core::arch::Power;
use herd_core::event::Fence;
use herd_core::fixtures::{self, Device};
use herd_core::model::check;

const LWF: Device = Device::Fence(Fence::Lwsync);
const FF: Device = Device::Fence(Fence::Sync);

/// Fig 11: wrc shows the lightweight fence acting A-cumulatively — the
/// fence on T1 orders T0's write (read by T1) before T1's own write.
#[test]
fn a_cumulativity_wrc() {
    let power = Power::new();
    assert!(!check(&power, &fixtures::wrc(LWF, Device::Addr)).allowed());
    // Without the fence the chain breaks.
    assert!(check(&power, &fixtures::wrc(Device::Addr, Device::Addr)).allowed());
}

/// Fig 12: isa2 shows B-cumulativity — the fence on T0 extends through
/// the hb-chain across T1 to T2.
#[test]
fn b_cumulativity_isa2() {
    let power = Power::new();
    assert!(!check(&power, &fixtures::isa2(LWF, Device::Addr, Device::Addr)).allowed());
    assert!(check(&power, &fixtures::isa2(Device::None, Device::Addr, Device::Addr)).allowed());
}

/// Fig 13(b): w+rw+2w responds to the lightweight fence exactly like 2+2w
/// (the A-cumulative role again, now through PROPAGATION).
#[test]
fn a_cumulativity_w_rw_2w() {
    let power = Power::new();
    assert!(!check(&power, &fixtures::w_rw_2w(LWF, LWF)).allowed());
    assert!(!check(&power, &fixtures::two_plus_two_w(LWF, LWF)).allowed());
}

/// Figs 14/15/20: sb, rwc and iriw are instances of *strong*
/// A-cumulativity: only full fences forbid them.
#[test]
fn strong_a_cumulativity_needs_full_fences() {
    let power = Power::new();
    for (name, lw, ff) in [
        ("sb", fixtures::sb(LWF, LWF), fixtures::sb(FF, FF)),
        ("rwc", fixtures::rwc(LWF, LWF), fixtures::rwc(FF, FF)),
        ("iriw", fixtures::iriw(LWF, LWF), fixtures::iriw(FF, FF)),
    ] {
        assert!(check(&power, &lw).allowed(), "{name}: lwsync too weak");
        assert!(!check(&power, &ff).allowed(), "{name}: sync strong enough");
    }
}

/// Fig 19: eieio orders write-write pairs only, so w+rwc+eieio+addr+sync
/// stays allowed although the same test with sync is forbidden — the
/// hardware observation that proves eieio is not a full fence.
#[test]
fn eieio_is_no_full_fence() {
    let power = Power::new();
    let eieio = fixtures::w_rwc(Device::Fence(Fence::Eieio), Device::Addr, FF);
    assert!(check(&power, &eieio).allowed());
    let sync = fixtures::w_rwc(FF, Device::Addr, FF);
    assert!(!check(&power, &sync).allowed());
    // And within its write-write remit, eieio equals lwsync: mp responds.
    let mp_eieio = fixtures::mp(Device::Fence(Fence::Eieio), Device::Addr);
    assert!(!check(&power, &mp_eieio).allowed());
}

/// The asymmetry of Fig 16: one lightweight fence suffices for s but not
/// for r — co-then-fr (r) needs the strong part of prop, rf-closing (s)
/// does not.
#[test]
fn fig16_s_vs_r_asymmetry() {
    let power = Power::new();
    assert!(!check(&power, &fixtures::s(LWF, Device::Addr)).allowed());
    assert!(check(&power, &fixtures::r(LWF, FF)).allowed());
    assert!(!check(&power, &fixtures::r(FF, FF)).allowed());
}
