//! Workspace smoke test: every crate of the suite is reachable through
//! the `cats` umbrella and does one representative piece of end-to-end
//! work. This is the "did the workspace wiring survive" canary — each
//! check is tiny, but together they cross every crate boundary the
//! manifests declare.

use cats::core::arch::{Power, Sc};
use cats::core::fixtures::{self, Device};
use cats::core::model::check;

/// `cats::core`: the generic four-axiom model — SC forbids the bare
/// message-passing pattern (Fig 21 / Lemma 4.1).
#[test]
fn core_sc_forbids_mp() {
    let mp = fixtures::mp(Device::None, Device::None);
    assert!(!check(&Sc, &mp).allowed(), "SC must forbid bare mp");
    assert!(check(&Power::new(), &mp).allowed(), "Power allows bare mp");
}

/// `cats::litmus`: the shipped `.litmus` corpus parses and the herd-style
/// simulator reproduces each file's recorded verdict.
#[test]
fn litmus_corpus_parses_and_simulates() {
    let tests = cats::litmus::text_corpus::load_all().expect("corpus parses");
    assert_eq!(tests.len(), cats::litmus::text_corpus::ALL.len());
    let entry = &cats::litmus::text_corpus::ALL[0];
    let test = cats::litmus::parse::parse(entry.source).expect("parses");
    let model = cats::core::arch::by_name(entry.model).expect("stock model");
    let out = cats::litmus::simulate::simulate(&test, model.as_ref()).expect("simulates");
    assert_eq!(out.validated, entry.allowed, "{}", entry.file);
}

/// `cats::cat`: the stock Power model file parses, and agrees with the
/// native Power model on the Fig 8 witness.
#[test]
fn cat_stock_model_parses_and_checks() {
    use cats::core::event::Fence;
    let power = cats::cat::stock::load(cats::cat::stock::POWER);
    assert_eq!(power.name(), Some("Power"));
    let witness = fixtures::mp(Device::Fence(Fence::Lwsync), Device::Addr);
    let verdict = power.check(&witness).expect("evaluates");
    assert!(!verdict.allowed(), "mp+lwsync+addr is forbidden");
    assert_eq!(verdict.allowed(), check(&Power::new(), &witness).allowed());
}

/// `cats::machine`: the intermediate machine of Fig 30 agrees with the
/// axiomatic model on a witness (Thm 7.1, one data point).
#[test]
fn machine_agrees_with_axiomatic_model() {
    let x = fixtures::mp(Device::None, Device::None);
    let arch = Power::new();
    assert_eq!(cats::machine::accepts(&x, &arch), check(&arch, &x).allowed());
}

/// `cats::hw`: a tiny campaign on simulated Power silicon produces a
/// summary over the requested tests.
#[test]
fn hw_campaign_runs() {
    let machines = cats::hw::power_machines();
    let tests = [cats::litmus::corpus::power_corpus()[0].test.clone()];
    let summary =
        cats::hw::campaign(&machines[0], &tests, &Power::new(), 50, 7).expect("campaign runs");
    assert_eq!(summary.tests, 1);
}

/// `cats::diy`: one relaxation cycle synthesises the classic mp test
/// (Sec 9 vocabulary).
#[test]
fn diy_generates_a_cycle() {
    use cats::litmus::isa::Isa;
    let test = cats::diy::synthesize_str("LwSyncdWW Rfe DpAddrdR Fre", Isa::Power)
        .expect("cycle synthesises");
    assert!(test.name.starts_with("mp+"), "got {}", test.name);
    assert_eq!(test.threads.len(), 2);
}

/// `cats::mole`: the static miner scans a synthetic distribution and
/// finds critical cycles (Sec 9 / Tabs XIII–XIV).
#[test]
fn mole_scans_a_program() {
    let opts = cats::mole::MoleOptions::default();
    let report = cats::mole::scan_distribution(5, 42, &opts);
    assert_eq!(report.packages, 5);
    let analysis = cats::mole::analyze(&cats::mole::corpus::rcu(), &opts);
    assert!(analysis.pattern_histogram().contains_key("mp"));
}
