//! Differential tests: the polynomial single-execution backend vs the
//! enumeration engine.
//!
//! The backend ([`herd_core::consistency`], surfaced as
//! [`herd_litmus::decide`]) answers "is this outcome allowed?" by placing
//! *one* coherence order through saturation instead of enumerating all of
//! them. Its only correctness contract is agreement with the reference
//! engine, candidate by candidate:
//!
//! * corpus-wide, every probe — each distinct enumerated final state plus
//!   systematically unreachable mutations — must get the same verdict
//!   from [`decide_outcome`] as from enumerate-and-check, on models on
//!   both sides of the tractability frontier;
//! * on the polynomial side (SC/TSO/PSO) the answer must come from the
//!   saturation path — zero counted fallbacks;
//! * past the old frontier (Power/ARM, now `Conditional`) most queries
//!   must resolve definitively through the ppo-envelope bounds, the
//!   small residue through the counted fallback — exact by enumeration
//!   of the forced order's completions, never a silent guess;
//! * the envelope itself must sandwich the exact per-candidate ppo
//!   (`lower ⊆ ppo(c) ⊆ upper`) on every candidate of every random
//!   program, for Power and ARM alike;
//! * randomised programs ([`ProgramShape`]) and randomised outcomes —
//!   including outcomes no interleaving can reach — agree the same way;
//! * the decided simulation driver reproduces the streamed driver's
//!   `validated` bit and rendered state set on the whole corpus;
//! * the u128 `candidate_count` of the scaled families that broke the old
//!   `usize` accounting stays pinned, and the backend answers queries on
//!   one such family without leaving the polynomial path.

use std::collections::{BTreeMap, BTreeSet};

use herd_core::arch::{Arm, ArmVariant, Power, Pso, Sc, Tso};
use herd_core::event::Fence;
use herd_core::fixtures::{probe_value, ProgramShape, ShapeOp};
use herd_core::model::{check, Architecture, Tractability};
use herd_litmus::candidates::{enumerate, Candidate, EnumOptions, RegFinal};
use herd_litmus::corpus::{self, Dev, Op, TestBuilder};
use herd_litmus::decide::{decide_outcome, Outcome, QueryStats};
use herd_litmus::isa::{Isa, Reg};
use herd_litmus::program::{LitmusTest, Prop, Quantifier};
use herd_litmus::simulate::{simulate_decided, simulate_with};
use proptest::prelude::*;

/// Ground truth for a probe: some enumeration-allowed candidate extends
/// it (the probe's constraints are subsets of the candidate's state).
fn reachable(allowed: &[&Candidate], probe: &Outcome) -> bool {
    allowed.iter().any(|c| {
        probe.regs.iter().all(|(k, v)| c.final_regs.get(k) == Some(v))
            && probe.mem.iter().all(|(l, v)| c.final_mem.get(l) == Some(v))
    })
}

/// Probe set for a test: every distinct enumerated final state — allowed
/// or not — plus, per state, each integer observable mutated to `9`, a
/// value no corpus or shape write produces (unreachable by construction).
fn probes_for(cands: &[Candidate]) -> Vec<Outcome> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for c in cands {
        let o = Outcome { regs: c.final_regs.clone(), mem: c.final_mem.clone() };
        if !seen.insert(format!("{:?}|{:?}", o.regs, o.mem)) {
            continue;
        }
        for (key, v) in &o.regs {
            if matches!(v, RegFinal::Int(_)) {
                let mut m = o.clone();
                m.regs.insert(*key, RegFinal::Int(9));
                out.push(m);
            }
        }
        for loc in o.mem.keys() {
            let mut m = o.clone();
            m.mem.insert(loc.clone(), 9);
            out.push(m);
        }
        out.push(o);
    }
    out
}

/// Runs the full differential for one (test, model) pair, accumulating
/// backend counters into `stats`. Panics on the first disagreement.
fn differential(test: &LitmusTest, arch: &dyn Architecture, stats: &mut QueryStats) {
    let cands = enumerate(test, &EnumOptions::default()).expect("reference enumerates");
    let allowed: Vec<&Candidate> =
        cands.iter().filter(|c| check(arch, &c.exec).allowed()).collect();
    for probe in probes_for(&cands) {
        let want = reachable(&allowed, &probe);
        let d =
            decide_outcome(test, arch, &EnumOptions::default(), &probe).expect("backend decides");
        assert_eq!(
            d.allowed,
            want,
            "backend disagrees with enumeration: {} on {}, probe {probe:?}",
            test.name,
            arch.name()
        );
        stats.absorb(&d.stats);
    }
}

#[test]
fn corpus_verdicts_match_enumeration_on_polynomial_models() {
    let tests: Vec<LitmusTest> = corpus::x86_corpus().into_iter().map(|e| e.test).collect();
    let mut stats = QueryStats::default();
    for arch in [&Sc as &dyn Architecture, &Tso, &Pso] {
        assert_eq!(arch.tractability(), Tractability::Polynomial, "{}", arch.name());
        for t in &tests {
            differential(t, arch, &mut stats);
        }
    }
    assert!(stats.backend.queries > 0, "the probes must actually reach the backend");
    // The tractability report: SC/TSO/PSO sit on the polynomial side —
    // every query resolves by saturation, nothing silently enumerates.
    assert_eq!(stats.backend.fallbacks, 0, "polynomial models never fall back on the corpus");
    assert_eq!(
        stats.backend.queries,
        stats.backend.contradictions + stats.backend.witnesses,
        "every query is accounted as a contradiction or a witness"
    );
}

#[test]
fn corpus_verdicts_match_enumeration_past_the_frontier() {
    let power = Power::new();
    assert_eq!(power.tractability(), Tractability::Conditional);
    let mut stats = QueryStats::default();
    for t in [
        corpus::mp(Isa::Power, Dev::Po, Dev::Po),
        corpus::mp(Isa::Power, Dev::F(Fence::Lwsync), Dev::Addr),
        corpus::sb(Isa::Power, Dev::Po, Dev::Po),
        corpus::lb(Isa::Power, Dev::Data, Dev::Data),
        corpus::wrc(Isa::Power, Dev::Po, Dev::Po),
        corpus::two_plus_two_w(Isa::Power, Dev::Po, Dev::Po),
        corpus::co_rr(Isa::Power),
    ] {
        differential(&t, &power, &mut stats);
    }
    // Past the old frontier the ppo envelope settles most queries without
    // enumeration: the fallback is a small *counted* residue, and every
    // definitive verdict above was pinned against enumeration probe by
    // probe by `differential`.
    assert!(stats.backend.queries > 0);
    assert!(
        stats.backend.fallbacks < stats.backend.queries,
        "the envelope must settle queries the old frontier routing enumerated"
    );
    assert!(
        stats.backend.conditional_definitive * 5 >= stats.backend.queries * 4,
        "definitive fraction at least 80%: {} of {}",
        stats.backend.conditional_definitive,
        stats.backend.queries
    );
    assert_eq!(
        stats.backend.fallbacks, stats.backend.envelope_fallbacks,
        "every fallback is an envelope disagreement, never a silent skip"
    );
    assert_eq!(
        stats.backend.queries,
        stats.backend.conditional_definitive + stats.backend.fallbacks,
        "every query is accounted definitive or fallback"
    );
}

#[test]
fn decided_simulation_matches_streamed_simulation_corpus_wide() {
    for e in corpus::x86_corpus() {
        for arch in [&Sc as &dyn Architecture, &Tso, &Pso] {
            let streamed = simulate_with(&e.test, arch, &EnumOptions::default()).unwrap();
            let mut stats = QueryStats::default();
            let decided =
                simulate_decided(&e.test, arch, &EnumOptions::default(), &mut stats).unwrap();
            assert_eq!(decided.validated, streamed.validated, "{} on {}", e.test.name, arch.name());
            assert_eq!(decided.states, streamed.states, "{} on {}", e.test.name, arch.name());
            assert_eq!(stats.backend.fallbacks, 0, "{} on {}", e.test.name, arch.name());
        }
        // The corpus' own TSO expectation, through the backend alone.
        let mut stats = QueryStats::default();
        let decided = simulate_decided(&e.test, &Tso, &EnumOptions::default(), &mut stats).unwrap();
        assert_eq!(decided.validated, e.allowed, "{} under TSO", e.test.name);
    }
    // And past the frontier the decided driver still matches — now mostly
    // through the envelope's definitive verdicts rather than the counted
    // fallback.
    let power = Power::new();
    let mut stats = QueryStats::default();
    for t in [
        corpus::mp(Isa::Power, Dev::Po, Dev::Po),
        corpus::sb(Isa::Power, Dev::F(Fence::Sync), Dev::F(Fence::Sync)),
        corpus::iriw(Isa::Power, Dev::Po, Dev::Po),
    ] {
        let streamed = simulate_with(&t, &power, &EnumOptions::default()).unwrap();
        let decided = simulate_decided(&t, &power, &EnumOptions::default(), &mut stats).unwrap();
        assert_eq!(decided.validated, streamed.validated, "{}", t.name);
        assert_eq!(decided.states, streamed.states, "{}", t.name);
    }
    assert!(stats.backend.queries > 0);
    assert!(
        stats.backend.conditional_definitive > 0,
        "the envelope settles queries on the decided Power path"
    );
    assert!(stats.backend.fallbacks < stats.backend.queries);
}

/// Location names for [`ProgramShape`] indices.
fn loc_name(loc: u8) -> &'static str {
    ["x", "y"][loc as usize]
}

/// Compiles a shape into a litmus test (plain program order, trivially
/// true existential condition) and returns the per-thread read registers.
fn shape_to_test(shape: &ProgramShape) -> (LitmusTest, Vec<Vec<Reg>>) {
    let mut b = TestBuilder::new(Isa::X86, "rand");
    for ops in &shape.threads {
        let tops: Vec<Op> = ops
            .iter()
            .map(|o| match *o {
                ShapeOp::Write { loc, val } => Op::W(loc_name(loc), val),
                ShapeOp::Read { loc } => Op::R(loc_name(loc)),
            })
            .collect();
        let devs = vec![Dev::Po; tops.len() - 1];
        b = b.thread(tops, devs);
    }
    let mut read_regs = Vec::new();
    let test = b.condition(Quantifier::Exists, |rr| {
        read_regs = rr.to_vec();
        Prop::True
    });
    (test, read_regs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random bounded programs, random partial outcomes (register and
    /// memory constraints over `{0, 1, 2, 9}`, where `9` is reachable by
    /// no interleaving): the backend and the enumeration engine agree on
    /// every one, on both sides of the frontier.
    #[test]
    fn random_programs_and_outcomes_agree(
        bytes in proptest::collection::vec(any::<u8>(), 0..16),
        entropy in proptest::collection::vec(any::<u8>(), 8..24),
    ) {
        let shape = ProgramShape::decode(&bytes);
        let (test, read_regs) = shape_to_test(&shape);
        let cands = enumerate(&test, &EnumOptions::default()).unwrap();

        // One random partial outcome decoded from the entropy stream.
        let mut k = 0;
        let mut next = || {
            let b = entropy[k % entropy.len()];
            k += 1;
            b
        };
        let mut random = Outcome::default();
        for (tid, regs) in read_regs.iter().enumerate() {
            for r in regs {
                if next() % 3 != 0 {
                    random.regs.insert((tid as u16, *r), RegFinal::Int(probe_value(next())));
                }
            }
        }
        let locs: BTreeSet<u8> = shape
            .threads
            .iter()
            .flatten()
            .map(|o| match *o {
                ShapeOp::Write { loc, .. } | ShapeOp::Read { loc } => loc,
            })
            .collect();
        for loc in locs {
            if next() % 3 != 0 {
                random.mem.insert(loc_name(loc).to_owned(), probe_value(next()));
            }
        }

        let power = Power::new();
        let arm = Arm::new(ArmVariant::Proposed);
        for arch in [&Sc as &dyn Architecture, &Tso, &power, &arm] {
            let allowed: Vec<&Candidate> =
                cands.iter().filter(|c| check(arch, &c.exec).allowed()).collect();
            let mut probes = probes_for(&cands);
            probes.push(random.clone());
            for probe in probes {
                let want = reachable(&allowed, &probe);
                let d = decide_outcome(&test, arch, &EnumOptions::default(), &probe).unwrap();
                prop_assert_eq!(
                    d.allowed,
                    want,
                    "{:?} on {}, probe {:?}",
                    shape,
                    arch.name(),
                    probe
                );
            }
        }
    }

    /// The ppo envelope's defining property, on random bounded programs:
    /// for Power and ARM, the static lower bound is contained in every
    /// candidate's exact ppo, which is contained in the static upper
    /// bound. This is what makes the conditional verdicts sound.
    #[test]
    fn envelope_sandwiches_random_programs(
        bytes in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let shape = ProgramShape::decode(&bytes);
        let (test, _) = shape_to_test(&shape);
        let cands = enumerate(&test, &EnumOptions::default()).unwrap();
        let power = Power::new();
        let arm = Arm::new(ArmVariant::Proposed);
        for arch in [&power as &dyn Architecture, &arm] {
            for c in &cands {
                let env = arch
                    .ppo_envelope(c.exec.core())
                    .expect("conditional models expose an envelope");
                let upper = env.upper(c.exec.core());
                prop_assert!(env.lower.is_subset(upper), "{:?} on {}", shape, arch.name());
                let exact = arch.ppo(&c.exec);
                prop_assert!(
                    env.lower.is_subset(&exact),
                    "lower bound exceeds exact ppo: {:?} on {}",
                    shape,
                    arch.name()
                );
                prop_assert!(
                    exact.is_subset(upper),
                    "exact ppo exceeds upper bound: {:?} on {}",
                    shape,
                    arch.name()
                );
            }
        }
    }
}

#[test]
fn scaled_family_counts_stay_exact_and_the_backend_stays_polynomial() {
    // wrc+20w: 21 writes of `x` — 21! coherence orders, 2 rf choices.
    // The old `usize` arithmetic wrapped here (21! > u64::MAX); the u128
    // count is exact.
    const FACT_21: u128 = 51_090_942_171_709_440_000;
    assert!(FACT_21 > u128::from(u64::MAX));
    let sk = herd_bench::wrc_scaled(20);
    assert_eq!(sk.candidate_count(), Some(2 * FACT_21));
    assert_eq!(sk.candidate_count_saturating(), 2 * FACT_21);
    // 35 writes: 35! overflows even u128 — `None`, never a silent wrap.
    let big = herd_bench::wrc_scaled(34);
    assert_eq!(big.candidate_count(), None);
    assert_eq!(big.candidate_count_saturating(), u128::MAX);

    // The same family at the litmus level: 2 · 21! candidates is far past
    // anything enumerable, yet single-outcome queries answer through the
    // saturation path without a single fallback.
    let mut b = TestBuilder::new(Isa::X86, "wrc+20w")
        .thread(vec![Op::W("z", 1)], vec![])
        .thread(vec![Op::R("z"), Op::W("x", 1)], vec![Dev::Data]);
    for i in 0..20 {
        b = b.thread(vec![Op::W("x", 2 + i)], vec![]);
    }
    let mut read_regs = Vec::new();
    let test = b.condition(Quantifier::Exists, |rr| {
        read_regs = rr.to_vec();
        Prop::True
    });
    let r_z = read_regs[1][0];

    // Allowed: the read observes T0's write and extra writer #3 (value 5)
    // finishes last — any coherence order ending in it works under SC.
    let probe = Outcome {
        regs: BTreeMap::from([((1, r_z), RegFinal::Int(1))]),
        mem: BTreeMap::from([("x".to_owned(), 5)]),
    };
    let d = decide_outcome(&test, &Sc, &EnumOptions::default(), &probe).unwrap();
    assert!(d.allowed);
    assert_eq!(d.stats.backend.fallbacks, 0, "stays on the polynomial path");
    assert!(d.stats.backend.witnesses >= 1);
    // The register constraint collapses the rf menu before any coherence
    // work: one configuration probed out of the rf space.
    assert_eq!(d.stats.rf_configs, 1);

    // Past the frontier, the same 2 · 21! family answers through the
    // envelope: Power settles the witness definitively, without a single
    // enumeration fallback — 21! completions would never terminate.
    let d = decide_outcome(&test, &Power::new(), &EnumOptions::default(), &probe).unwrap();
    assert!(d.allowed, "what SC allows, Power allows");
    assert!(d.stats.conditional_definitive() >= 1, "the envelope settles the witness");
    assert_eq!(d.stats.backend.fallbacks, 0, "no enumeration over 21! coherence orders");

    // Forbidden: the family's writes store 1..=21, never 99.
    let probe = Outcome { regs: BTreeMap::new(), mem: BTreeMap::from([("x".to_owned(), 99)]) };
    let d = decide_outcome(&test, &Sc, &EnumOptions::default(), &probe).unwrap();
    assert!(!d.allowed);
    assert_eq!(d.stats.backend.fallbacks, 0);
}
