//! The whole architecture zoo over the whole corpus: strength ordering
//! and totality (every stock model judges every candidate without error).
//!
//! The paper's hierarchy: SC is the strongest; TSO relaxes write-read;
//! PSO additionally write-write; RMO keeps only dependencies; Power/ARM
//! are incomparable with the Sparc family but weaker than SC.

use herd_core::arch::{self, Arm, ArmVariant, Power, Pso, Rmo, Sc, Tso};
use herd_core::model::{check, Architecture};
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus::{self, CorpusEntry};

fn all_tests() -> Vec<CorpusEntry> {
    corpus::power_corpus()
        .into_iter()
        .chain(corpus::arm_corpus())
        .chain(corpus::x86_corpus())
        .collect()
}

/// `stronger` allows ⊆ `weaker` allows, on every candidate.
fn assert_stronger(stronger: &dyn Architecture, weaker: &dyn Architecture) {
    for entry in all_tests() {
        for c in enumerate(&entry.test, &EnumOptions::default()).unwrap() {
            if check(stronger, &c.exec).allowed() {
                assert!(
                    check(weaker, &c.exec).allowed(),
                    "{}: {} allows but {} forbids",
                    entry.test.name,
                    stronger.name(),
                    weaker.name(),
                );
            }
        }
    }
}

#[test]
fn sc_is_the_strongest_model() {
    for weaker in arch::all() {
        assert_stronger(&Sc, weaker.as_ref());
    }
    assert_stronger(&Sc, &Pso);
    assert_stronger(&Sc, &Rmo);
}

#[test]
fn sparc_family_orders_tso_pso_rmo() {
    assert_stronger(&Tso, &Pso);
    assert_stronger(&Pso, &Rmo);
}

#[test]
fn power_arm_hierarchy() {
    // The Power-ARM variant (Power ppo with ARM fences) is stronger than
    // the proposed ARM model, which is stronger than the llh variant.
    assert_stronger(&Arm::new(ArmVariant::PowerArm), &Arm::new(ArmVariant::Proposed));
    assert_stronger(&Arm::new(ArmVariant::Proposed), &Arm::new(ArmVariant::ProposedLlh));
}

#[test]
fn every_stock_model_judges_every_candidate() {
    let models: Vec<Box<dyn Architecture>> = vec![
        Box::new(Sc),
        Box::new(Tso),
        Box::new(Pso),
        Box::new(Rmo),
        Box::new(Power::new()),
        Box::new(Power::without_dynamic_ppo()),
        Box::new(Arm::new(ArmVariant::PowerArm)),
        Box::new(Arm::new(ArmVariant::Proposed)),
        Box::new(Arm::new(ArmVariant::ProposedLlh)),
        Box::new(herd_core::arch::CppRa::default()),
    ];
    let mut judged = 0usize;
    for entry in all_tests() {
        for c in enumerate(&entry.test, &EnumOptions::default()).unwrap() {
            for m in &models {
                let v = check(m.as_ref(), &c.exec);
                // The label is consistent with the verdict.
                assert_eq!(v.allowed(), v.violation_label().is_empty());
                judged += 1;
            }
        }
    }
    assert!(judged > 5_000, "{judged}");
}

#[test]
fn static_ppo_is_weaker_than_full_power() {
    // Dropping rdw/detour can only shrink ppo, hence allow more.
    assert_stronger(&Power::new(), &Power::without_dynamic_ppo());
}
