//! PR 9: the memoised query layer — cached verdicts must be
//! bit-identical to fresh computation under arbitrary interleavings of
//! hits, misses and evictions, and the content keys must be stable.
//!
//! The cache under test is deliberately tiny (a handful of entries per
//! shard) so random query sequences exercise all three paths — cold
//! miss, warm hit, and re-miss after LRU eviction — while a reference
//! model recomputes every verdict from scratch.

use cats::cache::{FpHasher, ShardedLru};
use cats::litmus::candidates::EnumOptions;
use cats::litmus::corpus::{self, Dev};
use cats::litmus::decide::{decide_outcome, Outcome};
use cats::litmus::isa::Isa;
use cats::litmus::program::LitmusTest;
use herd_core::arch::{Sc, Tso};
use herd_core::model::Architecture;
use proptest::prelude::*;

/// The query universe: a few tests × a few state rows × two models.
fn universe() -> Vec<(LitmusTest, String)> {
    let rows =
        ["0:r1=0; 1:r1=0", "0:r1=1; 1:r1=0", "0:r1=1; 1:r1=1", "1:r1=1; 1:r2=0", "x=1; y=1", "x=0"];
    let tests = [
        corpus::sb(Isa::X86, Dev::Po, Dev::Po),
        corpus::mp(Isa::X86, Dev::Po, Dev::Po),
        corpus::lb(Isa::X86, Dev::Po, Dev::Po),
    ];
    let mut out = Vec::new();
    for t in &tests {
        for r in &rows {
            out.push((t.clone(), (*r).to_string()));
        }
    }
    out
}

/// The fresh (uncached) answer for query index `q` under model `m`.
fn fresh(universe: &[(LitmusTest, String)], q: usize, m: usize) -> bool {
    let (test, row) = &universe[q];
    let outcome = Outcome::from_state_row(row).unwrap();
    let arch: &dyn Architecture = if m == 0 { &Sc } else { &Tso };
    decide_outcome(test, arch, &EnumOptions::default(), &outcome).unwrap().allowed
}

/// The content key for query index `q` under model `m`.
fn key(universe: &[(LitmusTest, String)], q: usize, m: usize) -> cats::cache::Fingerprint {
    let (test, row) = &universe[q];
    let mut h = FpHasher::new("query-cache-test/v1");
    h.tag("test");
    h.write_str(&test.to_string());
    h.tag("model");
    h.write_str(if m == 0 { "SC" } else { "TSO" });
    h.tag("row");
    h.write_str(row);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of lookups against a cache small enough to
    /// evict constantly: every answer equals the fresh computation.
    #[test]
    fn cached_verdicts_are_bit_identical_to_fresh(
        queries in proptest::collection::vec((0usize..18, 0usize..2), 1..60),
        capacity in 1usize..8,
    ) {
        let uni = universe();
        let cache: ShardedLru<bool> = ShardedLru::new(capacity);
        let mut lookups = 0u64;
        for (q, m) in queries {
            let k = key(&uni, q, m);
            let want = fresh(&uni, q, m);
            let got = cache.get_or_insert_with(k, || fresh(&uni, q, m));
            prop_assert_eq!(got, want, "query {} model {} diverged through the cache", q, m);
            lookups += 1;
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups, "every lookup is counted exactly once");
        prop_assert!(s.insertions <= s.misses, "insertions only follow misses");
        prop_assert!(s.evictions <= s.insertions, "can only evict what was inserted");
        prop_assert!(s.len <= s.capacity.max(1), "the bound holds");
    }

    /// Fingerprints are pure functions of content: recomputing the key
    /// of the same query always lands on the same entry, and distinct
    /// queries get distinct keys across the whole universe.
    #[test]
    fn content_keys_are_stable_and_distinct(q in 0usize..18, m in 0usize..2) {
        let uni = universe();
        prop_assert_eq!(key(&uni, q, m), key(&uni, q, m));
        for q2 in 0..uni.len() {
            for m2 in 0..2 {
                if (q2, m2) != (q, m) {
                    prop_assert_ne!(key(&uni, q, m), key(&uni, q2, m2));
                }
            }
        }
    }
}

/// Concurrent mixed hit/miss/eviction traffic from the executor's worker
/// count never corrupts a verdict (the fill may race; the value may not).
#[test]
fn concurrent_traffic_preserves_verdicts() {
    let uni = universe();
    let cache: ShardedLru<bool> = ShardedLru::new(8);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let (uni, cache) = (&uni, &cache);
            s.spawn(move || {
                for i in 0..uni.len() {
                    let q = (i + t) % uni.len();
                    let m = (i + t) % 2;
                    let got = cache.get_or_insert_with(key(uni, q, m), || fresh(uni, q, m));
                    assert_eq!(got, fresh(uni, q, m));
                }
            });
        }
    });
}
