//! Theorem 7.1, executable: on every candidate execution of every corpus
//! test, the axiomatic model allows iff the intermediate machine accepts.
//!
//! Both proof directions are exercised:
//!
//! - Lemma 7.2 (machine ⊆ axioms): the memoised DFS must reject every
//!   candidate the axioms reject.
//! - Lemma 7.3 (axioms ⊆ machine): for every allowed candidate, the
//!   explicit linearisation of the relation `r` must exist (be acyclic)
//!   and replay successfully through the machine.

use herd_core::arch::{Arm, ArmVariant, Power};
use herd_core::model::{check, Architecture};
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::corpus::{self, CorpusEntry};
use herd_machine::Machine;

fn assert_equivalence(corpus: &[CorpusEntry], arch: &dyn Architecture) {
    let opts = EnumOptions::default();
    let mut allowed_count = 0usize;
    let mut forbidden_count = 0usize;
    for entry in corpus {
        let cands = enumerate(&entry.test, &opts).expect("enumeration succeeds");
        for (i, c) in cands.iter().enumerate() {
            let axiomatic = check(arch, &c.exec).allowed();
            let machine = Machine::new(&c.exec, arch);
            let accepted = machine.accepts();
            assert_eq!(
                axiomatic,
                accepted,
                "{} candidate #{i} on {}: axioms say {axiomatic}, machine says {accepted}",
                entry.test.name,
                arch.name(),
            );
            if axiomatic {
                allowed_count += 1;
                // Lemma 7.3: the constructed path must replay.
                let path = machine.construct_path().unwrap_or_else(|| {
                    panic!(
                        "{} candidate #{i}: relation r is cyclic for an allowed execution",
                        entry.test.name
                    )
                });
                assert!(
                    machine.replay(&path),
                    "{} candidate #{i}: constructed path rejected",
                    entry.test.name
                );
            } else {
                forbidden_count += 1;
            }
        }
    }
    assert!(allowed_count > 0 && forbidden_count > 0, "both verdicts must be exercised");
}

// The paper proves equivalence for the *Power* model (Sec 7); the machine
// mirrors the Power/ARM prop structure, so we also exercise the proposed
// ARM model (same skeleton, different fences/ppo). SC and TSO put bare
// `po`/`fr` inside prop, which has no counterpart in the machine's rules.

#[test]
fn theorem_7_1_on_power() {
    assert_equivalence(&corpus::power_corpus(), &Power::new());
}

#[test]
fn theorem_7_1_on_arm() {
    assert_equivalence(&corpus::arm_corpus(), &Arm::new(ArmVariant::Proposed));
}

mod random_programs {
    use herd_core::arch::Power;
    use herd_core::enumerate::SkeletonBuilder;
    use herd_core::event::Fence;
    use herd_core::model::check;
    use herd_machine::Machine;
    use proptest::prelude::*;

    /// (is_write, loc, fence_after: 0=none 1=lwsync 2=sync, dep_prev_read)
    type ProgOp = (bool, u8, u8, bool);

    fn random_program() -> impl Strategy<Value = Vec<Vec<ProgOp>>> {
        proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), 0u8..2, 0u8..3, any::<bool>()), 1..=3),
            2..=3,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Theorem 7.1 on random programs: for every candidate of every
        /// random program, Power axioms and the machine agree.
        #[test]
        fn theorem_7_1_on_random_programs(prog in random_program()) {
            let mut b = SkeletonBuilder::new();
            let locs = ["x", "y"];
            for (tid, thread) in prog.iter().enumerate() {
                let mut prev: Option<usize> = None;
                let mut prev_read: Option<usize> = None;
                let mut fence = 0u8;
                for &(is_write, loc, fence_after, dep) in thread {
                    let id = if is_write {
                        b.write(tid as u16, locs[loc as usize], i64::from(loc) + 1)
                    } else {
                        b.read(tid as u16, locs[loc as usize])
                    };
                    if let Some(p) = prev {
                        match fence {
                            1 => {
                                b.fence(Fence::Lwsync, p, id);
                            }
                            2 => {
                                b.fence(Fence::Sync, p, id);
                            }
                            _ => {}
                        }
                    }
                    if dep {
                        if let Some(r) = prev_read {
                            if is_write {
                                b.data(r, id);
                            } else {
                                b.addr(r, id);
                            }
                        }
                    }
                    if !is_write {
                        prev_read = Some(id);
                    }
                    fence = fence_after;
                    prev = Some(id);
                }
            }
            let skeleton = b.build();
            prop_assume!(skeleton.candidate_count_saturating() <= 600);
            let power = Power::new();
            for exec in skeleton.candidates() {
                let axiomatic = check(&power, &exec).allowed();
                let machine = Machine::new(&exec, &power);
                prop_assert_eq!(axiomatic, machine.accepts());
                if axiomatic {
                    let path = machine.construct_path();
                    prop_assert!(path.is_some(), "r cyclic for an allowed execution");
                    prop_assert!(machine.replay(&path.unwrap()));
                }
            }
        }
    }
}

/// The machine's operational cost grows with the candidate size while the
/// axiomatic check stays flat — the seed of Tab IX.
#[test]
fn machine_state_space_is_the_expensive_part() {
    let test = corpus::iriw(herd_litmus::isa::Isa::Power, corpus::Dev::Po, corpus::Dev::Po);
    let cands = enumerate(&test, &EnumOptions::default()).unwrap();
    let total_states: usize =
        cands.iter().map(|c| Machine::new(&c.exec, &Power::new()).reachable_states()).sum();
    assert!(
        total_states > 10 * cands.len(),
        "exploration visits many states per candidate ({total_states} for {} candidates)",
        cands.len()
    );
}
