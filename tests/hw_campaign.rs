//! Tab V shapes, asserted: our Power model is never invalidated by the
//! Power machines but leaves behaviours unseen; every ARM part invalidates
//! the Power-ARM model; Tegra3 is the worst offender; x86 is clean.
//!
//! Plus the polynomial-backend routing of log judging: for models on the
//! polynomial side of the tractability frontier, [`herd_hw::model_log`]
//! and [`herd_hw::judge_entry`] answer through single-outcome witness
//! queries — their verdicts must be indistinguishable from the
//! enumerate-and-check reference, row by row.

use herd_core::arch::{Arm, ArmVariant, Power, Sc, Tso};
use herd_hw::{arm_machines, campaign, power_machines, x86_machines};
use herd_litmus::corpus;
use herd_litmus::program::LitmusTest;

const RUNS: u64 = 10_000_000_000;

fn power_tests() -> Vec<LitmusTest> {
    corpus::power_corpus().into_iter().map(|e| e.test).collect()
}

fn arm_tests() -> Vec<LitmusTest> {
    corpus::arm_corpus().into_iter().map(|e| e.test).collect()
}

#[test]
fn tab5_power_row() {
    for machine in power_machines() {
        let s = campaign(&machine, &power_tests(), &Power::new(), RUNS, 42).unwrap();
        assert_eq!(s.invalid, 0, "{}: our Power model is sound w.r.t. the machines", s.machine);
        assert!(s.unseen > 0, "{}: lb stays unseen (not implemented in silicon)", s.machine);
    }
}

#[test]
fn tab5_arm_rows_against_power_arm() {
    let reference = Arm::new(ArmVariant::PowerArm);
    let mut tegra3_invalid = 0;
    let mut others_max = 0;
    for machine in arm_machines() {
        let s = campaign(&machine, &arm_tests(), &reference, RUNS, 42).unwrap();
        assert!(s.invalid > 0, "{}: every part invalidates Power-ARM", s.machine);
        if s.machine == "Tegra3" {
            tegra3_invalid = s.invalid;
        } else {
            others_max = others_max.max(s.invalid);
        }
    }
    assert!(
        tegra3_invalid > others_max,
        "Tegra3 ({tegra3_invalid}) shows more anomalies than any other part ({others_max})"
    );
}

#[test]
fn tab5_proposed_arm_tolerates_early_commit() {
    // Against the *proposed* model, the Qualcomm parts' early-commit
    // behaviours stop counting as invalid; only genuine errata remain.
    let machines = arm_machines();
    let apq = machines.iter().find(|m| m.name == "APQ8060").unwrap();
    let power_arm = campaign(apq, &arm_tests(), &Arm::new(ArmVariant::PowerArm), RUNS, 42).unwrap();
    let proposed = campaign(apq, &arm_tests(), &Arm::new(ArmVariant::Proposed), RUNS, 42).unwrap();
    assert!(
        proposed.invalid < power_arm.invalid,
        "the proposed model explains the early-commit observations ({} < {})",
        proposed.invalid,
        power_arm.invalid
    );
}

#[test]
fn tab5_x86_control_row() {
    let tests: Vec<LitmusTest> = corpus::x86_corpus().into_iter().map(|e| e.test).collect();
    let machine = &x86_machines()[0];
    let s = campaign(machine, &tests, &Tso, RUNS, 42).unwrap();
    assert_eq!((s.invalid, s.unseen), (0, 0), "x86 silicon is exactly TSO");
}

#[test]
fn backend_model_log_matches_the_enumeration_reference() {
    use herd_core::model::{check, Architecture, Tractability};
    use herd_hw::campaign::render_full_state;
    use herd_hw::Log;
    use herd_litmus::candidates::{enumerate, EnumOptions};

    let tests: Vec<LitmusTest> = corpus::x86_corpus().into_iter().map(|e| e.test).collect();
    for model in [&Sc as &(dyn Architecture + Sync), &Tso] {
        // These models sit on the polynomial side: `model_log` routes
        // them through the consistency backend.
        assert_eq!(model.tractability(), Tractability::Polynomial);
        let backend = herd_hw::model_log(&tests, model);
        // The pre-backend reference: enumerate every candidate, keep the
        // allowed ones, render their full states.
        let mut reference = Log::default();
        for t in &tests {
            let states = enumerate(t, &EnumOptions::default())
                .unwrap()
                .iter()
                .filter(|c| check(model, &c.exec).allowed())
                .map(|c| (render_full_state(c), 0))
                .collect();
            reference.insert(&t.name, states);
        }
        assert_eq!(backend, reference, "backend log differs under {}", model.name());
    }

    // Past the old frontier: the conditional models (Power/ARM with ppo
    // envelopes) route through the backend too, and their logs must be
    // indistinguishable from enumerate-and-check as well.
    for (tests, model) in [
        (power_tests(), &Power::new() as &(dyn Architecture + Sync)),
        (arm_tests(), &Arm::new(ArmVariant::Proposed)),
    ] {
        assert_eq!(model.tractability(), Tractability::Conditional);
        let backend = herd_hw::model_log(&tests, model);
        let mut reference = Log::default();
        for t in &tests {
            let states = enumerate(t, &EnumOptions::default())
                .unwrap()
                .iter()
                .filter(|c| check(model, &c.exec).allowed())
                .map(|c| (render_full_state(c), 0))
                .collect();
            reference.insert(&t.name, states);
        }
        assert_eq!(backend, reference, "backend log differs under {}", model.name());
    }
}

#[test]
fn judge_entry_reproduces_the_compare_invalid_sets() {
    // A seeded campaign log judged row by row: a hardware state is in
    // `compare`'s invalid set exactly when the backend forbids it.
    let tests: Vec<LitmusTest> = corpus::x86_corpus().into_iter().map(|e| e.test).collect();
    let machine = &x86_machines()[0];
    let hw = herd_hw::hardware_log(&tests, machine, RUNS, 7);
    // Judge TSO silicon against SC: the write-read reorderings (sb, r,
    // rwc) must show up invalid, so the equivalence below has teeth.
    let model = herd_hw::model_log(&tests, &Sc);
    let cmp = herd_hw::compare(&model, &hw);
    assert!(
        cmp.invalid.values().map(|s| s.len()).sum::<usize>() > 0,
        "TSO silicon must invalidate SC somewhere"
    );
    for (name, entry) in &hw.entries {
        let test = tests.iter().find(|t| &t.name == name).unwrap();
        for state in entry.states.keys() {
            let allowed = herd_hw::judge_entry(test, &Sc, state).unwrap();
            let invalid = cmp.invalid.get(name).is_some_and(|s| s.contains(state));
            assert_eq!(!allowed, invalid, "{name}: backend and mcompare disagree on row '{state}'");
        }
    }
}

#[test]
fn batched_judging_matches_row_at_a_time_and_enumeration() {
    // PR 9: the batch API is the same judge, faster. For every test in a
    // seeded x86 campaign log, `judge_entries` over the whole row set
    // must agree row for row with (a) single-row `judge_entry` calls and
    // (b) the enumerate-every-candidate reference.
    use herd_core::model::{check, Architecture};
    use herd_hw::campaign::render_full_state;
    use herd_litmus::candidates::{enumerate, EnumOptions};
    use std::collections::BTreeSet;

    let tests: Vec<LitmusTest> = corpus::x86_corpus().into_iter().map(|e| e.test).collect();
    let machine = &x86_machines()[0];
    let hw = herd_hw::hardware_log(&tests, machine, RUNS, 7);
    for model in [&Sc as &(dyn Architecture + Sync), &Tso] {
        for (name, entry) in &hw.entries {
            let test = tests.iter().find(|t| &t.name == name).unwrap();
            let rows: Vec<&String> = entry.states.keys().collect();
            let (batch, stats) = herd_hw::judge_entries(test, model, &rows).unwrap();
            assert_eq!(batch.len(), rows.len());
            assert_eq!(stats.rows, rows.len() as u64, "{name}: one stat row per log row");
            assert!(stats.classes <= stats.rows, "{name}: classes cannot exceed rows");

            // The enumeration reference: a full state is allowed exactly
            // when some allowed candidate renders to it.
            let allowed_states: BTreeSet<String> = enumerate(test, &EnumOptions::default())
                .unwrap()
                .iter()
                .filter(|c| check(model, &c.exec).allowed())
                .map(render_full_state)
                .collect();

            for (state, &verdict) in rows.iter().zip(&batch) {
                let single = herd_hw::judge_entry(test, model, state).unwrap();
                assert_eq!(
                    verdict,
                    single,
                    "{name} under {}: batch and row-at-a-time disagree on '{state}'",
                    model.name()
                );
                assert_eq!(
                    verdict,
                    allowed_states.contains(state.as_str()),
                    "{name} under {}: batch and enumeration disagree on '{state}'",
                    model.name()
                );
            }
        }
    }
}

#[test]
fn backend_judged_campaigns_are_worker_count_independent() {
    // Campaign tests fan out over the work-stealing executor with as many
    // workers as the host offers; per-test RNGs are derived from
    // (seed, index), so two runs must agree state for state however the
    // steal order interleaved them — including everything the backend
    // judged.
    let tests: Vec<LitmusTest> = corpus::x86_corpus().into_iter().map(|e| e.test).collect();
    let machine = &x86_machines()[0];
    let a = campaign(machine, &tests, &Tso, RUNS, 42).unwrap();
    let b = campaign(machine, &tests, &Tso, RUNS, 42).unwrap();
    assert_eq!((a.invalid, a.unseen), (b.invalid, b.unseen));
    assert_eq!(a.classification, b.classification);
    assert_eq!(a.reports.len(), b.reports.len());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.name, rb.name);
        assert_eq!(ra.observed, rb.observed, "{}", ra.name);
        assert_eq!(ra.model_allowed, rb.model_allowed, "{}", ra.name);
        assert_eq!(ra.invalid_states, rb.invalid_states, "{}", ra.name);
        assert_eq!(ra.unseen_states, rb.unseen_states, "{}", ra.name);
    }
    // And the raw seeded log is bitwise reproducible, too.
    let h1 = herd_hw::hardware_log(&tests, machine, RUNS, 7);
    let h2 = herd_hw::hardware_log(&tests, machine, RUNS, 7);
    assert_eq!(h1, h2);
}

#[test]
fn tab8_classification_buckets() {
    // The invalid observations classify into the S (llh) and O/P-involving
    // (early commit, isb defeat) buckets, as in the paper's Tab VIII.
    let reference = Arm::new(ArmVariant::PowerArm);
    let mut labels = std::collections::BTreeSet::new();
    for machine in arm_machines() {
        let s = campaign(&machine, &arm_tests(), &reference, RUNS, 42).unwrap();
        labels.extend(s.classification.keys().cloned());
    }
    assert!(labels.contains("S"), "{labels:?}");
    assert!(labels.iter().any(|l| l.contains('O') || l.contains('P')), "{labels:?}");
}
