//! Tab V shapes, asserted: our Power model is never invalidated by the
//! Power machines but leaves behaviours unseen; every ARM part invalidates
//! the Power-ARM model; Tegra3 is the worst offender; x86 is clean.

use herd_core::arch::{Arm, ArmVariant, Power, Tso};
use herd_hw::{arm_machines, campaign, power_machines, x86_machines};
use herd_litmus::corpus;
use herd_litmus::program::LitmusTest;

const RUNS: u64 = 10_000_000_000;

fn power_tests() -> Vec<LitmusTest> {
    corpus::power_corpus().into_iter().map(|e| e.test).collect()
}

fn arm_tests() -> Vec<LitmusTest> {
    corpus::arm_corpus().into_iter().map(|e| e.test).collect()
}

#[test]
fn tab5_power_row() {
    for machine in power_machines() {
        let s = campaign(&machine, &power_tests(), &Power::new(), RUNS, 42).unwrap();
        assert_eq!(s.invalid, 0, "{}: our Power model is sound w.r.t. the machines", s.machine);
        assert!(s.unseen > 0, "{}: lb stays unseen (not implemented in silicon)", s.machine);
    }
}

#[test]
fn tab5_arm_rows_against_power_arm() {
    let reference = Arm::new(ArmVariant::PowerArm);
    let mut tegra3_invalid = 0;
    let mut others_max = 0;
    for machine in arm_machines() {
        let s = campaign(&machine, &arm_tests(), &reference, RUNS, 42).unwrap();
        assert!(s.invalid > 0, "{}: every part invalidates Power-ARM", s.machine);
        if s.machine == "Tegra3" {
            tegra3_invalid = s.invalid;
        } else {
            others_max = others_max.max(s.invalid);
        }
    }
    assert!(
        tegra3_invalid > others_max,
        "Tegra3 ({tegra3_invalid}) shows more anomalies than any other part ({others_max})"
    );
}

#[test]
fn tab5_proposed_arm_tolerates_early_commit() {
    // Against the *proposed* model, the Qualcomm parts' early-commit
    // behaviours stop counting as invalid; only genuine errata remain.
    let machines = arm_machines();
    let apq = machines.iter().find(|m| m.name == "APQ8060").unwrap();
    let power_arm = campaign(apq, &arm_tests(), &Arm::new(ArmVariant::PowerArm), RUNS, 42).unwrap();
    let proposed = campaign(apq, &arm_tests(), &Arm::new(ArmVariant::Proposed), RUNS, 42).unwrap();
    assert!(
        proposed.invalid < power_arm.invalid,
        "the proposed model explains the early-commit observations ({} < {})",
        proposed.invalid,
        power_arm.invalid
    );
}

#[test]
fn tab5_x86_control_row() {
    let tests: Vec<LitmusTest> = corpus::x86_corpus().into_iter().map(|e| e.test).collect();
    let machine = &x86_machines()[0];
    let s = campaign(machine, &tests, &Tso, RUNS, 42).unwrap();
    assert_eq!((s.invalid, s.unseen), (0, 0), "x86 silicon is exactly TSO");
}

#[test]
fn tab8_classification_buckets() {
    // The invalid observations classify into the S (llh) and O/P-involving
    // (early commit, isb defeat) buckets, as in the paper's Tab VIII.
    let reference = Arm::new(ArmVariant::PowerArm);
    let mut labels = std::collections::BTreeSet::new();
    for machine in arm_machines() {
        let s = campaign(&machine, &arm_tests(), &reference, RUNS, 42).unwrap();
        labels.extend(s.classification.keys().cloned());
    }
    assert!(labels.contains("S"), "{labels:?}");
    assert!(labels.iter().any(|l| l.contains('O') || l.contains('P')), "{labels:?}");
}
