//! The dependency examples of Sec 5.2, as the paper writes them — parsed
//! from the exact assembly excerpts and checked against the extracted
//! dependency relations (Figs 22–24).

use herd_core::event::Dir;
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_litmus::parse::parse;

/// Wraps a one-thread excerpt in a minimal litmus harness.
fn one_thread(body_rows: &[&str], init: &[&str]) -> herd_litmus::LitmusTest {
    let mut src = String::from("PPC excerpt\n{\n");
    for i in init {
        src.push_str(&format!("{i};\n"));
    }
    src.push_str("}\n P0 ;\n");
    for row in body_rows {
        src.push_str(&format!(" {row} ;\n"));
    }
    src.push_str("exists (x=0)\n");
    parse(&src).expect("excerpt parses")
}

/// Sec 5.2.1: the address-dependency excerpt
/// `lwz r2,0(r1); xor r9,r2,r2; lwzx r4,r9,r3` — the xor is a false
/// dependency, yet the loads stay ordered by `addr`.
#[test]
fn sec_5_2_1_address_dependency() {
    let t = one_thread(&["lwz r2,0(r1)", "xor r9,r2,r2", "lwzx r4,r9,r3"], &["0:r1=x", "0:r3=y"]);
    let cands = enumerate(&t, &EnumOptions::default()).unwrap();
    assert!(!cands.is_empty());
    for c in &cands {
        assert_eq!(c.exec.deps().addr.len(), 1, "one addr edge");
        let (a, b) = c.exec.deps().addr.iter_pairs().next().unwrap();
        assert_eq!(c.exec.event(a).dir, Dir::R);
        assert_eq!(c.exec.event(b).dir, Dir::R);
        assert!(c.exec.po().contains(a, b));
        assert!(c.exec.deps().data.is_empty());
    }
}

/// Sec 5.2.2: the data-dependency excerpt
/// `lwz r2,0(r1); xor r9,r2,r2; stw r9,0(r4)`.
#[test]
fn sec_5_2_2_data_dependency() {
    let t = one_thread(&["lwz r2,0(r1)", "xor r9,r2,r2", "stw r9,0(r4)"], &["0:r1=x", "0:r4=y"]);
    let cands = enumerate(&t, &EnumOptions::default()).unwrap();
    for c in &cands {
        assert_eq!(c.exec.deps().data.len(), 1, "one data edge");
        let (a, b) = c.exec.deps().data.iter_pairs().next().unwrap();
        assert_eq!(c.exec.event(a).dir, Dir::R);
        assert_eq!(c.exec.event(b).dir, Dir::W);
        // The store writes 0 (the folded xor), yet the dependency holds.
        assert_eq!(c.exec.event(b).val.0, 0);
        assert!(c.exec.deps().addr.is_empty());
    }
}

/// Sec 5.2.3: the control-dependency excerpt
/// `lwz r2,0(r1); cmpwi r2,0; bne L0; stw r3,0(r4); L0:` — the store is
/// ctrl-dependent on the load even though the label follows it.
#[test]
fn sec_5_2_3_control_dependency() {
    let t = one_thread(
        &["lwz r2,0(r1)", "cmpwi r2,0", "bne L0", "stw r3,0(r4)", "L0:"],
        &["0:r1=x", "0:r3=1", "0:r4=y"],
    );
    let cands = enumerate(&t, &EnumOptions::default()).unwrap();
    // x is only ever 0 here, so the branch can never be taken: constraint
    // solving prunes the infeasible path, and every candidate contains
    // the ctrl-dependent store.
    assert!(!cands.is_empty());
    for c in &cands {
        assert!(
            c.exec.events().iter().any(|e| e.is_write() && !e.is_init()),
            "only the fall-through path is feasible"
        );
        assert_eq!(c.exec.deps().ctrl.len(), 1, "ctrl from the load to the store");
        assert!(c.exec.deps().ctrl_cfence.is_empty(), "no isync here");
    }
}

/// Both branch outcomes become feasible once another thread can write a
/// nonzero value — the fork machinery then yields candidates on each
/// path, with the ctrl edge only on the fall-through one.
#[test]
fn branching_explores_both_feasible_paths() {
    let src = r#"PPC both-paths
{
0:r1=x; 0:r3=1; 0:r4=y;
1:r2=x;
}
 P0           | P1           ;
 lwz r2,0(r1) | li r1,1      ;
 cmpwi r2,0   | stw r1,0(r2) ;
 bne L0       |              ;
 stw r3,0(r4) |              ;
 L0:          |              ;
exists (x=1)
"#;
    let t = parse(src).unwrap();
    let cands = enumerate(&t, &EnumOptions::default()).unwrap();
    let with_store = cands
        .iter()
        .filter(|c| c.exec.events().iter().filter(|e| e.is_write() && !e.is_init()).count() == 2)
        .count();
    let without_store = cands.len() - with_store;
    assert!(with_store > 0, "fall-through (read 0) is feasible");
    assert!(without_store > 0, "taken (read 1 from T1) is feasible");
}

/// Sec 5.2.4: the control+cfence excerpt
/// `lwz r2,0(r1); cmpwi r2,0; bne L0; isync; lwz r4,0(r3); L0:`.
#[test]
fn sec_5_2_4_control_cfence_dependency() {
    let t = one_thread(
        &["lwz r2,0(r1)", "cmpwi r2,0", "bne L0", "isync", "lwz r4,0(r3)", "L0:"],
        &["0:r1=x", "0:r3=y"],
    );
    let cands = enumerate(&t, &EnumOptions::default()).unwrap();
    let two_loads: Vec<_> = cands
        .iter()
        .filter(|c| c.exec.events().iter().filter(|e| e.is_read()).count() == 2)
        .collect();
    assert!(!two_loads.is_empty());
    for c in &two_loads {
        assert_eq!(c.exec.deps().ctrl_cfence.len(), 1, "isync seals the branch");
        assert_eq!(c.exec.deps().ctrl.len(), 1, "ctrl+cfence ⊆ ctrl");
        let (a, b) = c.exec.deps().ctrl_cfence.iter_pairs().next().unwrap();
        assert_eq!(c.exec.event(a).dir, Dir::R);
        assert_eq!(c.exec.event(b).dir, Dir::R);
    }
}

/// Footnote 2: a fence relation holds regardless of whether the fence
/// orders the pair — lwsync between a write and a read is *in* the
/// `lwsync` relation, but Power's `lwfence = lwsync \ WR` drops it.
#[test]
fn footnote_2_fence_relations_are_raw() {
    use herd_core::event::Fence;
    let t =
        one_thread(&["li r1,1", "stw r1,0(r2)", "lwsync", "lwz r3,0(r4)"], &["0:r2=x", "0:r4=y"]);
    let cands = enumerate(&t, &EnumOptions::default()).unwrap();
    for c in &cands {
        let lws = c.exec.fence(Fence::Lwsync);
        assert_eq!(lws.len(), 1, "the raw relation holds the WR pair");
        let power = herd_core::arch::Power::new();
        assert!(
            power.lwfence(&c.exec).is_empty(),
            "Power's lwfence drops write-read pairs (Fig 17)"
        );
    }
}
