//! Robustness suite: graceful degradation of the execution stack under
//! budgets, cancellation, and injected faults.
//!
//! Pins the three contracts of the robustness layer:
//!
//! 1. **Exact accounting at any cut point.** Whatever stops an
//!    enumeration — candidate budget, deadline, cancel token — the stats
//!    satisfy `emitted + pruned + remaining == candidate_count`, with
//!    `remaining` recovered from the odometer position, never counted.
//! 2. **Single-unit loss under panics.** A panic injected at unit `k`
//!    loses exactly that unit's range: every sibling's verdicts are
//!    salvaged, the accounting identity still holds, and the salvage is
//!    worker-count independent.
//! 3. **Exact resume.** Completing an interrupted range from its
//!    [`herd_core::enumerate::ResumePoint`] reproduces the uninterrupted
//!    run's verdict multiset and accounting exactly.
//!
//! Fault-injection tests live in the `fault_injection` module, gated on
//! the `fault-injection` feature (armed via `--features fault-injection`;
//! ci.sh runs them with `--test-threads=1`, since the faultpoint harness
//! is process-global).

use herd_core::arch::Power;
use herd_core::arena::RelArena;
use herd_core::enumerate::{Skeleton, SkeletonBuilder};
use herd_core::exec::ExecFrame;
use herd_core::model::Verdict;
use herd_core::sched::{Budget, CancelToken, PlanOpts, StopReason, WorkPlan};
use proptest::prelude::*;
use std::time::Instant;

/// One building step of a random skeleton (same shape as sched_props).
#[derive(Clone, Debug)]
struct Op {
    thread: u16,
    write: bool,
    loc: usize,
    dep: bool,
}

fn build(ops: &[Op]) -> Skeleton {
    let names = ["x", "y"];
    let mut b = SkeletonBuilder::new();
    let mut last_read: [Option<usize>; 3] = [None; 3];
    for (i, op) in ops.iter().enumerate() {
        if op.write {
            let w = b.write(op.thread, names[op.loc], i as i64 + 1);
            if op.dep {
                if let Some(r) = last_read[op.thread as usize] {
                    b.data(r, w);
                }
            }
        } else {
            let r = b.read(op.thread, names[op.loc]);
            last_read[op.thread as usize] = Some(r);
        }
    }
    b.build()
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0..3u16, any::<bool>(), 0..2usize, any::<bool>())
            .prop_map(|(thread, write, loc, dep)| Op { thread, write, loc, dep }),
        2..9,
    )
}

/// A co-heavy skeleton: `extra + 1` cross-thread writes to one location.
fn co_heavy(extra: usize) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    b.write(0, "z", 1);
    b.read(1, "z");
    b.write(1, "x", 1);
    for i in 0..extra {
        b.write(2 + i as u16, "x", 2 + i as i64);
    }
    b.build()
}

/// An rf-heavy skeleton (IRIW): many rf configurations.
fn rf_heavy() -> Skeleton {
    let mut b = SkeletonBuilder::new();
    b.write(0, "x", 1);
    b.write(1, "y", 1);
    b.read(2, "y");
    b.read(2, "x");
    b.read(3, "x");
    b.read(3, "y");
    b.build()
}

fn key(fx: &ExecFrame<'_>, a: &RelArena, v: Verdict) -> String {
    format!("{:?}|{:?}|{v:?}", a.to_relation(fx.rels.rf), a.to_relation(fx.rels.co))
}

/// Uninterrupted single-threaded reference: sorted verdict keys + stats.
fn reference(sk: &Skeleton) -> (Vec<String>, herd_core::enumerate::CheckedStats) {
    let mut arena = RelArena::new(0);
    let mut keys = Vec::new();
    let stats = sk.check_stream_arena(&Power::new(), &mut arena, &mut |fx, a, v| {
        keys.push(key(fx, a, v));
    });
    keys.sort();
    (keys, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Contract 1, candidate-budget axis: any cut point yields
    /// `emitted + pruned + remaining == candidate_count`, never emits
    /// past the bound, and names a stop reason whenever work remains.
    #[test]
    fn any_candidate_budget_cut_keeps_exact_accounting(ops in ops(), cut in 0u64..60) {
        let cut = u128::from(cut);
        let sk = build(&ops);
        prop_assume!(sk.candidate_count_saturating() <= 5_000);
        let space = sk.candidate_count().expect("small space");
        let mut arena = RelArena::new(0);
        let budget = Budget::unlimited().with_max_candidates(cut);
        let stats =
            sk.check_stream_arena_budgeted(&Power::new(), &mut arena, &budget, &mut |_, _, _| {});
        prop_assert_eq!(stats.emitted + stats.pruned + stats.remaining, space);
        prop_assert!(stats.emitted <= cut, "the bound is never exceeded");
        if stats.remaining > 0 {
            prop_assert_eq!(stats.stopped, Some(StopReason::CandidateBudget));
            prop_assert!(stats.resume.is_some(), "an interrupted run names its cut point");
        }
    }

    /// Contract 3: cut anywhere, resume, and the merged run is
    /// indistinguishable from an uninterrupted one — same verdict
    /// multiset, same emitted/pruned/allowed accounting.
    #[test]
    fn resuming_any_cut_reproduces_the_uninterrupted_run(ops in ops(), cut in 1u64..40) {
        let cut = u128::from(cut);
        let sk = build(&ops);
        prop_assume!(sk.candidate_count_saturating() <= 5_000);
        let power = Power::new();
        let (full_keys, full) = reference(&sk);

        let mut arena = RelArena::new(0);
        let mut keys = Vec::new();
        let budget = Budget::unlimited().with_max_candidates(cut);
        let head = sk.check_stream_arena_budgeted(&power, &mut arena, &budget, &mut |fx, a, v| {
            keys.push(key(fx, a, v));
        });
        let (mut emitted, mut pruned, mut allowed) = (head.emitted, head.pruned, head.allowed);
        if let Some(resume) = head.resume {
            let mut arena2 = RelArena::new(0);
            let tail = sk.check_stream_arena_resume(&power, &mut arena2, resume, &mut |fx, a, v| {
                keys.push(key(fx, a, v));
            });
            prop_assert_eq!(tail.stopped, None, "the resumed tail runs unbudgeted");
            prop_assert_eq!(tail.remaining, 0);
            emitted += tail.emitted;
            pruned += tail.pruned;
            allowed += tail.allowed;
        } else {
            prop_assert_eq!(head.remaining, 0, "no resume point means the run completed");
        }
        keys.sort();
        prop_assert_eq!(keys, full_keys, "head + tail replay the exact verdict multiset");
        prop_assert_eq!(emitted, full.emitted);
        prop_assert_eq!(pruned, full.pruned);
        prop_assert_eq!(allowed, full.allowed);
    }
}

/// Contract 1, deadline axis: an already-expired deadline stops the run
/// at its first full budget check, with the identity intact.
#[test]
fn expired_deadline_stops_with_exact_accounting() {
    for sk in [co_heavy(3), rf_heavy()] {
        let space = sk.candidate_count().expect("small space");
        let mut arena = RelArena::new(0);
        let budget = Budget::unlimited().with_deadline(Instant::now());
        let stats =
            sk.check_stream_arena_budgeted(&Power::new(), &mut arena, &budget, &mut |_, _, _| {});
        assert_eq!(stats.emitted + stats.pruned + stats.remaining, space);
        assert_eq!(stats.stopped, Some(StopReason::Deadline));
        assert!(stats.remaining > 0, "nothing was classified before the expired deadline");
    }
}

/// Contract 1, cancellation axis, through the scheduler: a pre-tripped
/// token stops every unit before it emits anything, and the merged
/// accounting still covers the whole space.
#[test]
fn cancelled_sched_run_classifies_everything_as_remaining_or_pruned() {
    let power = Power::new();
    for sk in [co_heavy(3), rf_heavy()] {
        let space = sk.candidate_count().expect("small space");
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let plan = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(3));
        let out =
            sk.check_stream_sched_budgeted(&power, &plan, 3, &budget, |_| |_: &_, _: &_, _| {});
        assert_eq!(out.stats.emitted, 0, "no candidate is emitted after cancellation");
        assert_eq!(out.stats.emitted + out.stats.pruned + out.stats.remaining, space);
        assert_eq!(out.stats.stopped, Some(StopReason::Cancelled));
        assert!(!out.is_complete());
    }
}

/// Contract 1 through the scheduler: per-unit budget cuts still sum to
/// the whole space, for co-split and rf-range plans alike.
#[test]
fn sched_budget_cuts_keep_the_partition_identity() {
    let power = Power::new();
    for sk in [co_heavy(4), rf_heavy()] {
        let space = sk.candidate_count().expect("small space");
        let plan = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(3));
        for cut in [0u128, 1, 7, 50, 1_000_000] {
            let budget = Budget::unlimited().with_max_candidates(cut);
            let out =
                sk.check_stream_sched_budgeted(&power, &plan, 3, &budget, |_| |_: &_, _: &_, _| {});
            assert_eq!(
                out.stats.emitted + out.stats.pruned + out.stats.remaining,
                space,
                "cut {cut}"
            );
            if out.stats.remaining > 0 {
                assert_eq!(out.stats.stopped, Some(StopReason::CandidateBudget));
            }
            let mut summed = 0u128;
            for s in &out.unit_stats {
                summed += s.emitted + s.pruned + s.remaining;
            }
            assert_eq!(summed, space, "per-unit accounting partitions the space (cut {cut})");
        }
    }
}

/// The litmus driver's partial outcome keeps the same identity: whole
/// space counted, judged + pruned + remaining covering it exactly.
#[test]
fn litmus_partial_outcomes_account_for_the_whole_space() {
    use herd_litmus::candidates::{count_candidates, EnumOptions};
    use herd_litmus::corpus;
    use herd_litmus::simulate::simulate_with;
    let entry = &corpus::power_corpus()[0];
    let opts = EnumOptions::default();
    let space = count_candidates(&entry.test, &opts).unwrap();
    for bound in [1usize, 3, 10] {
        let opts_cut = EnumOptions { max_candidates: bound, ..opts };
        let out = simulate_with(&entry.test, &Power::new(), &opts_cut).unwrap();
        if let Some(p) = &out.partial {
            assert_eq!(out.candidates, space, "partial outcomes still count the whole space");
            let judged = (out.positive + out.negative) as u128;
            assert_eq!(judged + out.pruned + p.remaining, space, "bound {bound}");
        } else {
            assert_eq!(out.candidates, space);
        }
    }
}

#[cfg(feature = "fault-injection")]
mod fault_injection {
    use super::*;
    use herd_core::faultpoint::{self, config_key, FaultAction, FaultPlan, FaultPoint};
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Multiset difference `full − part`, asserting `part ⊆ full`.
    fn lost_keys(full: &[String], part: &[String]) -> usize {
        let mut counts: BTreeMap<&str, i64> = BTreeMap::new();
        for k in full {
            *counts.entry(k).or_insert(0) += 1;
        }
        for k in part {
            let c = counts.get_mut(k.as_str()).expect("salvaged verdicts are a subset");
            *c -= 1;
            assert!(*c >= 0, "salvaged verdicts are a sub-multiset of the full run");
        }
        counts.values().map(|&c| c as usize).sum()
    }

    /// Contract 2: a panic at unit `k`'s claim loses exactly that unit's
    /// verdicts. Siblings are salvaged identically at every worker count,
    /// and the merged accounting still covers the whole space.
    #[test]
    fn panic_at_unit_k_loses_exactly_that_unit() {
        let sk = rf_heavy();
        let power = Power::new();
        let (full_keys, _) = reference(&sk);
        let space = sk.candidate_count().expect("small space");
        let plan = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(3));
        let clean = sk.check_stream_sched(&power, &plan, 1, |_| |_: &_, _: &_, _| {});
        for k in [0usize, plan.len() / 2, plan.len() - 1] {
            let mut salvaged_by_workers: Vec<Vec<String>> = Vec::new();
            for workers in [1usize, 2, 4] {
                let _guard = faultpoint::install(FaultPlan {
                    point: FaultPoint::UnitClaim,
                    key: k as u64,
                    action: FaultAction::Panic,
                });
                let collected: Mutex<Vec<String>> = Mutex::new(Vec::new());
                let out = sk.check_stream_sched(&power, &plan, workers, |_| {
                    |fx: &ExecFrame<'_>, a: &RelArena, v: Verdict| {
                        collected.lock().expect("sink mutex").push(key(fx, a, v));
                    }
                });
                assert_eq!(out.poisoned.len(), 1, "exactly one unit is lost");
                assert_eq!(out.poisoned[0].unit, k);
                assert!(out.poisoned[0].payload.contains("faultpoint"));
                assert_eq!(
                    out.stats.emitted + out.stats.pruned + out.stats.remaining,
                    space,
                    "unit {k}, {workers} workers"
                );
                assert_eq!(out.unit_stats[k].emitted, 0, "the lost unit emitted nothing");
                let mut keys = collected.into_inner().expect("sink mutex");
                keys.sort();
                assert_eq!(
                    lost_keys(&full_keys, &keys) as u128,
                    clean.unit_stats[k].emitted,
                    "exactly unit {k}'s verdicts are missing ({workers} workers)"
                );
                salvaged_by_workers.push(keys);
            }
            assert!(
                salvaged_by_workers.windows(2).all(|w| w[0] == w[1]),
                "salvage is worker-count independent (unit {k})"
            );
        }
    }

    /// A panic *inside* a unit (mid-enumeration, at an rf-scope refresh)
    /// never wedges the run: siblings salvage, accounting stays exact.
    #[test]
    fn mid_enumeration_panic_is_isolated_with_exact_accounting() {
        let sk = rf_heavy();
        let power = Power::new();
        let space = sk.candidate_count().expect("small space");
        let rf_total = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(2))
            .units()
            .iter()
            .map(|u| u.rf_end)
            .max()
            .unwrap();
        let plan = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(2));
        let mut fired = false;
        for cfg in 0..rf_total.min(24) {
            let _guard = faultpoint::install(FaultPlan {
                point: FaultPoint::ArenaCheckpoint,
                key: config_key(cfg),
                action: FaultAction::Panic,
            });
            let out = sk.check_stream_sched(&power, &plan, 2, |_| |_: &_, _: &_, _| {});
            assert_eq!(
                out.stats.emitted + out.stats.pruned + out.stats.remaining,
                space,
                "config {cfg}"
            );
            if !out.poisoned.is_empty() {
                fired = true;
                assert_eq!(out.poisoned.len(), 1, "a single fault loses a single unit");
            }
        }
        assert!(fired, "at least one configuration reaches the checkpoint fault");
    }

    /// A delay fault is a straggler, not a failure: the run completes
    /// with the reference stats.
    #[test]
    fn delay_fault_is_a_straggler_not_a_failure() {
        let sk = co_heavy(3);
        let power = Power::new();
        let (_, whole) = reference(&sk);
        let plan = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(2));
        let _guard = faultpoint::install(FaultPlan {
            point: FaultPoint::UnitClaim,
            key: 0,
            action: FaultAction::Delay(Duration::from_millis(30)),
        });
        let out = sk.check_stream_sched(&power, &plan, 2, |_| |_: &_, _: &_, _| {});
        assert!(out.is_complete());
        assert_eq!(out.stats, whole, "a delayed unit still produces its exact results");
    }

    /// A spurious cancellation injected mid-run stops the enumeration
    /// cleanly: stop reason recorded, identity intact, no wedge.
    #[test]
    fn spurious_cancel_fault_stops_with_exact_accounting() {
        let sk = rf_heavy();
        let power = Power::new();
        let space = sk.candidate_count().expect("small space");
        let plan = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(2));
        let mut fired = false;
        for cfg in 0..16u128 {
            let token = CancelToken::new();
            let _guard = faultpoint::install(FaultPlan {
                point: FaultPoint::CoMenuBuild,
                key: config_key(cfg),
                action: FaultAction::Cancel(token.clone()),
            });
            let budget = Budget::unlimited().with_cancel(token.clone());
            let out =
                sk.check_stream_sched_budgeted(&power, &plan, 2, &budget, |_| |_: &_, _: &_, _| {});
            assert_eq!(
                out.stats.emitted + out.stats.pruned + out.stats.remaining,
                space,
                "config {cfg}"
            );
            if let Some(reason) = out.stats.stopped {
                assert_eq!(reason, StopReason::Cancelled);
                assert!(token.is_cancelled());
                assert!(!out.is_complete());
                assert!(out.stats.remaining > 0);
                fired = true;
            } else {
                // Either the fault's configuration was never reached, or
                // the cancel landed after the last unit's work was done —
                // both are complete runs.
                assert_eq!(out.stats.remaining, 0);
            }
        }
        assert!(fired, "at least one configuration's cancel cuts live work");
    }

    /// The litmus sharded driver salvages the siblings of a poisoned
    /// unit into a partial outcome with the whole space still counted.
    #[test]
    fn sharded_simulation_salvages_siblings_of_a_poisoned_unit() {
        use herd_litmus::candidates::EnumOptions;
        use herd_litmus::corpus::{self, Dev};
        use herd_litmus::isa::Isa;
        use herd_litmus::simulate::simulate_sharded;
        let test = corpus::iriw(Isa::Power, Dev::Po, Dev::Po);
        let opts = EnumOptions::default();
        let clean = simulate_sharded(&test, &Power::new(), &opts, 4).unwrap();
        assert!(clean.is_complete());
        let _guard = faultpoint::install(FaultPlan {
            point: FaultPoint::UnitClaim,
            key: 2,
            action: FaultAction::Panic,
        });
        let out = simulate_sharded(&test, &Power::new(), &opts, 4).unwrap();
        let p = out.partial.as_ref().expect("a lost unit degrades the outcome to partial");
        assert_eq!(p.poisoned.len(), 1);
        assert!(p.remaining > 0, "the lost unit's share is unclassified");
        assert_eq!(out.candidates, clean.candidates, "the whole space is still counted");
        let judged = (out.positive + out.negative) as u128;
        assert_eq!(judged + out.pruned + p.remaining, out.candidates, "exact partial accounting");
    }

    /// One poisoned test in a corpus run is isolated: the siblings'
    /// outcomes are bit-identical to an unfaulted run.
    #[test]
    fn corpus_poisoned_test_is_isolated() {
        use herd_litmus::candidates::EnumOptions;
        use herd_litmus::corpus;
        use herd_litmus::simulate::simulate_corpus;
        let tests: Vec<_> = corpus::power_corpus().into_iter().take(3).map(|e| e.test).collect();
        let opts = EnumOptions::default();
        let clean = simulate_corpus(&tests, &Power::new(), &opts).unwrap();
        assert!(clean.is_complete());
        let _guard = faultpoint::install(FaultPlan {
            point: FaultPoint::UnitClaim,
            key: 1,
            action: FaultAction::Panic,
        });
        let out = simulate_corpus(&tests, &Power::new(), &opts).unwrap();
        assert_eq!(out.poisoned.len(), 1);
        assert_eq!(out.poisoned[0].unit, 1, "exactly the faulted test is lost");
        assert_eq!(out.outcomes.len(), 2);
        assert_eq!(format!("{:?}", out.outcomes[0]), format!("{:?}", clean.outcomes[0]));
        assert_eq!(format!("{:?}", out.outcomes[1]), format!("{:?}", clean.outcomes[2]));
    }

    /// A hardware campaign records a poisoned test as lost and keeps
    /// every other report.
    #[test]
    fn campaign_salvages_a_poisoned_test() {
        use herd_core::arch::{Arm, ArmVariant};
        use herd_hw::{arm_machines, campaign_with_workers};
        use herd_litmus::corpus;
        let machines = arm_machines();
        let tests: Vec<_> = corpus::arm_corpus().into_iter().take(4).map(|e| e.test).collect();
        let reference = Arm::new(ArmVariant::Proposed);
        let _guard = faultpoint::install(FaultPlan {
            point: FaultPoint::UnitClaim,
            key: 2,
            action: FaultAction::Panic,
        });
        let summary =
            campaign_with_workers(&machines[0], &tests, &reference, 1_000_000, 5, 2).unwrap();
        assert!(!summary.is_complete());
        assert_eq!(summary.lost.len(), 1);
        assert_eq!(summary.lost[0].name, tests[2].name);
        assert!(summary.lost[0].reason.contains("panicked"), "{}", summary.lost[0].reason);
        assert_eq!(summary.reports.len(), 3, "every sibling's report survives");
    }
}
