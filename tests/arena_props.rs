//! Property tests for the arena-backed relation engine (herd-core
//! `arena`): every in-arena operator must agree with the owned
//! [`Relation`] algebra on random matrices, and checkpoint/rollback must
//! preserve surviving slots while recycling storage.

use herd_core::arena::RelArena;
use herd_core::maskrow::MaskRow;
use herd_core::relation::Relation;
use herd_core::set::EventSet;
use proptest::prelude::*;

fn relation(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..n, 0..n), 0..=n * 2)
        .prop_map(move |pairs| Relation::from_pairs(n, pairs))
}

/// The row widths where multi-word handling can go wrong: one word
/// exactly full, one bit either side, and the same straddle at two words.
const BOUNDARY_WIDTHS: [usize; 6] = [63, 64, 65, 127, 128, 129];

/// A random relation over a universe drawn from [`BOUNDARY_WIDTHS`].
fn boundary_relation() -> impl Strategy<Value = Relation> {
    proptest::sample::select(&BOUNDARY_WIDTHS[..]).prop_flat_map(relation)
}

/// A boundary width plus two random index sets within it.
fn mask_row_inputs() -> impl Strategy<Value = (usize, Vec<usize>, Vec<usize>)> {
    proptest::sample::select(&BOUNDARY_WIDTHS[..]).prop_flat_map(|n| {
        (Just(n), proptest::collection::vec(0..n, 0..n), proptest::collection::vec(0..n, 0..n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arena_binary_ops_match_owned(a in relation(9), b in relation(9)) {
        let mut ar = RelArena::new(9);
        let (ia, ib) = (ar.alloc_from(&a), ar.alloc_from(&b));

        let u = ar.alloc_from(ia);
        ar.union_into(u, ib);
        prop_assert_eq!(ar.to_relation(u), a.union(&b));

        let i = ar.alloc_from(ia);
        ar.intersect_into(i, &b); // external operand flavour
        prop_assert_eq!(ar.to_relation(i), a.intersect(&b));

        let d = ar.alloc_from(&a);
        ar.minus_into(d, ib);
        prop_assert_eq!(ar.to_relation(d), a.minus(&b));

        // seq in all four slot/external operand combinations.
        let expected = a.seq(&b);
        let s = ar.alloc();
        ar.seq_into(s, ia, ib);
        prop_assert_eq!(ar.to_relation(s), expected.clone());
        ar.seq_into(s, &a, ib);
        prop_assert_eq!(ar.to_relation(s), expected.clone());
        ar.seq_into(s, ia, &b);
        prop_assert_eq!(ar.to_relation(s), expected.clone());
        ar.seq_into(s, &a, &b);
        prop_assert_eq!(ar.to_relation(s), expected);

        let t = ar.alloc();
        ar.transpose_into(t, ia);
        prop_assert_eq!(ar.to_relation(t), a.transpose());
    }

    #[test]
    fn arena_closures_and_predicates_match_owned(a in relation(9)) {
        let mut ar = RelArena::new(9);
        let ia = ar.alloc_from(&a);

        let c = ar.alloc();
        ar.tclosure_into(c, ia);
        prop_assert_eq!(ar.to_relation(c), a.tclosure());

        let rc = ar.alloc();
        ar.rtclosure_into(rc, ia);
        prop_assert_eq!(ar.to_relation(rc), a.rtclosure());

        prop_assert_eq!(ar.is_acyclic(ia), a.is_acyclic());
        prop_assert_eq!(ar.is_irreflexive(ia), a.is_irreflexive());
        prop_assert_eq!(ar.is_empty(ia), a.is_empty());
    }

    #[test]
    fn arena_acyclicity_matches_owned_beyond_mask_width(a in relation(70)) {
        // Above 64 events the arena switches from the stack-mask Kahn
        // path to the pooled multi-word rows; both must agree with owned.
        let mut ar = RelArena::new(70);
        let ia = ar.alloc_from(&a);
        prop_assert_eq!(ar.is_acyclic(ia), a.is_acyclic());
        let live = ar.live();
        prop_assert_eq!(live, 1, "acyclicity allocated no temporary slot");
    }

    /// PR 8: masked acyclicity against the owned-closure answer at every
    /// interesting row width — one word exactly full (64), one bit either
    /// side of it (63, 65), and the same straddle at the two-word
    /// boundary (127, 128, 129).
    #[test]
    fn arena_acyclicity_matches_owned_at_word_boundaries(a in boundary_relation()) {
        let n = a.universe();
        let mut ar = RelArena::new(n);
        let ia = ar.alloc_from(&a);
        prop_assert_eq!(ar.is_acyclic(ia), a.is_acyclic(), "width {}", n);
        prop_assert_eq!(ar.live(), 1, "acyclicity allocated no temporary slot");
    }

    /// PR 9: the blocked `seq`/`tclosure` kernels (4-word column chunks
    /// with a register accumulator) against the owned algebra at the
    /// word-boundary widths, where a wrong chunk remainder (`bw < 4`)
    /// would silently drop or duplicate columns.
    #[test]
    fn arena_blocked_composition_matches_owned_at_word_boundaries(
        (a, b) in proptest::sample::select(&BOUNDARY_WIDTHS[..])
            .prop_flat_map(|n| (relation(n), relation(n)))
    ) {
        let n = a.universe();
        let mut ar = RelArena::new(n);
        let (ia, ib) = (ar.alloc_from(&a), ar.alloc_from(&b));

        let s = ar.alloc();
        ar.seq_into(s, ia, ib);
        prop_assert_eq!(ar.to_relation(s), a.seq(&b), "seq at width {}", n);
        ar.seq_into(s, &a, &b); // external operand flavour
        prop_assert_eq!(ar.to_relation(s), a.seq(&b), "ext seq at width {}", n);

        let c = ar.alloc();
        ar.tclosure_into(c, ia);
        prop_assert_eq!(ar.to_relation(c), a.tclosure(), "tclosure at width {}", n);
    }

    /// PR 8: the width-generic [`MaskRow`] kernels (or/and/andnot, set,
    /// test, count, iteration) against the owned [`EventSet`] algebra at
    /// the same boundary widths.
    #[test]
    fn mask_row_ops_match_owned_sets((n, xs, ys) in mask_row_inputs()) {
        let mut a = MaskRow::zero(n);
        let mut b = MaskRow::zero(n);
        let mut sa = EventSet::empty(n);
        let mut sb = EventSet::empty(n);
        for &x in &xs { a.set(x); sa.insert(x); }
        for &y in &ys { b.set(y); sb.insert(y); }
        prop_assert_eq!(a.count(), sa.len());
        prop_assert_eq!(a.is_empty(), sa.is_empty());
        for i in 0..n {
            prop_assert_eq!(a.test(i), sa.contains(i));
        }
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), sa.iter().collect::<Vec<_>>());

        let mut or = a.clone();
        or.or(&b);
        prop_assert_eq!(or.iter().collect::<Vec<_>>(), sa.union(&sb).iter().collect::<Vec<_>>());

        let mut and = a.clone();
        and.and(&b);
        prop_assert_eq!(
            and.iter().collect::<Vec<_>>(),
            sa.intersect(&sb).iter().collect::<Vec<_>>()
        );

        let mut diff = a.clone();
        diff.andnot(&b);
        let mut sdiff = sa.clone();
        sdiff.minus_with(&sb);
        prop_assert_eq!(diff.iter().collect::<Vec<_>>(), sdiff.iter().collect::<Vec<_>>());
    }

    #[test]
    fn arena_restrict_matches_owned(
        a in relation(8),
        srcs in proptest::collection::vec(0..8usize, 0..8),
        dsts in proptest::collection::vec(0..8usize, 0..8),
    ) {
        let (srcs, dsts) = (
            EventSet::from_indices(8, srcs),
            EventSet::from_indices(8, dsts),
        );
        let mut ar = RelArena::new(8);
        let ia = ar.alloc_from(&a);
        let out = ar.alloc();
        ar.restrict_into(out, ia, &srcs, &dsts);
        prop_assert_eq!(ar.to_relation(out), a.restrict(&srcs, &dsts));
    }

    /// Checkpoint/rollback stress: random interleavings of mark, alloc,
    /// release and in-place mutation, mirrored against a vector of owned
    /// relations. Rollbacks must retire exactly the slots above the mark,
    /// survivors must keep their bits, and recycled storage must come
    /// back zeroed.
    #[test]
    fn checkpoint_rollback_stress(ops in proptest::collection::vec((relation(6), 0..4usize), 1..32)) {
        let mut ar = RelArena::new(6);
        let mut live: Vec<(herd_core::arena::RelId, Relation)> = Vec::new();
        let mut marks: Vec<(herd_core::arena::Mark, usize)> = Vec::new();
        for (r, action) in ops {
            match action {
                0 => marks.push((ar.mark(), live.len())),
                1 => live.push((ar.alloc_from(&r), r)),
                2 => {
                    if let Some((m, len)) = marks.pop() {
                        ar.release(m);
                        live.truncate(len);
                    }
                }
                _ => {
                    if let Some((id, model)) = live.last_mut() {
                        ar.union_into(*id, &r);
                        model.union_with(&r);
                    }
                }
            }
            prop_assert_eq!(ar.live(), live.len(), "bump pointer tracks the model stack");
            for (id, model) in &live {
                prop_assert_eq!(&ar.to_relation(*id), model, "a surviving slot changed");
            }
        }
    }
}
