//! Property tests for the arena-backed relation engine (herd-core
//! `arena`): every in-arena operator must agree with the owned
//! [`Relation`] algebra on random matrices, and checkpoint/rollback must
//! preserve surviving slots while recycling storage.

use herd_core::arena::RelArena;
use herd_core::relation::Relation;
use herd_core::set::EventSet;
use proptest::prelude::*;

fn relation(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..n, 0..n), 0..=n * 2)
        .prop_map(move |pairs| Relation::from_pairs(n, pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arena_binary_ops_match_owned(a in relation(9), b in relation(9)) {
        let mut ar = RelArena::new(9);
        let (ia, ib) = (ar.alloc_from(&a), ar.alloc_from(&b));

        let u = ar.alloc_from(ia);
        ar.union_into(u, ib);
        prop_assert_eq!(ar.to_relation(u), a.union(&b));

        let i = ar.alloc_from(ia);
        ar.intersect_into(i, &b); // external operand flavour
        prop_assert_eq!(ar.to_relation(i), a.intersect(&b));

        let d = ar.alloc_from(&a);
        ar.minus_into(d, ib);
        prop_assert_eq!(ar.to_relation(d), a.minus(&b));

        // seq in all four slot/external operand combinations.
        let expected = a.seq(&b);
        let s = ar.alloc();
        ar.seq_into(s, ia, ib);
        prop_assert_eq!(ar.to_relation(s), expected.clone());
        ar.seq_into(s, &a, ib);
        prop_assert_eq!(ar.to_relation(s), expected.clone());
        ar.seq_into(s, ia, &b);
        prop_assert_eq!(ar.to_relation(s), expected.clone());
        ar.seq_into(s, &a, &b);
        prop_assert_eq!(ar.to_relation(s), expected);

        let t = ar.alloc();
        ar.transpose_into(t, ia);
        prop_assert_eq!(ar.to_relation(t), a.transpose());
    }

    #[test]
    fn arena_closures_and_predicates_match_owned(a in relation(9)) {
        let mut ar = RelArena::new(9);
        let ia = ar.alloc_from(&a);

        let c = ar.alloc();
        ar.tclosure_into(c, ia);
        prop_assert_eq!(ar.to_relation(c), a.tclosure());

        let rc = ar.alloc();
        ar.rtclosure_into(rc, ia);
        prop_assert_eq!(ar.to_relation(rc), a.rtclosure());

        prop_assert_eq!(ar.is_acyclic(ia), a.is_acyclic());
        prop_assert_eq!(ar.is_irreflexive(ia), a.is_irreflexive());
        prop_assert_eq!(ar.is_empty(ia), a.is_empty());
    }

    #[test]
    fn arena_acyclicity_matches_owned_beyond_mask_width(a in relation(70)) {
        // Above 64 events the arena falls back from the stack-mask Kahn
        // path to a temporary-closure check; both must agree with owned.
        let mut ar = RelArena::new(70);
        let ia = ar.alloc_from(&a);
        prop_assert_eq!(ar.is_acyclic(ia), a.is_acyclic());
        let live = ar.live();
        prop_assert_eq!(live, 1, "acyclicity released its temporary");
    }

    #[test]
    fn arena_restrict_matches_owned(
        a in relation(8),
        srcs in proptest::collection::vec(0..8usize, 0..8),
        dsts in proptest::collection::vec(0..8usize, 0..8),
    ) {
        let (srcs, dsts) = (
            EventSet::from_indices(8, srcs),
            EventSet::from_indices(8, dsts),
        );
        let mut ar = RelArena::new(8);
        let ia = ar.alloc_from(&a);
        let out = ar.alloc();
        ar.restrict_into(out, ia, &srcs, &dsts);
        prop_assert_eq!(ar.to_relation(out), a.restrict(&srcs, &dsts));
    }

    /// Checkpoint/rollback stress: random interleavings of mark, alloc,
    /// release and in-place mutation, mirrored against a vector of owned
    /// relations. Rollbacks must retire exactly the slots above the mark,
    /// survivors must keep their bits, and recycled storage must come
    /// back zeroed.
    #[test]
    fn checkpoint_rollback_stress(ops in proptest::collection::vec((relation(6), 0..4usize), 1..32)) {
        let mut ar = RelArena::new(6);
        let mut live: Vec<(herd_core::arena::RelId, Relation)> = Vec::new();
        let mut marks: Vec<(herd_core::arena::Mark, usize)> = Vec::new();
        for (r, action) in ops {
            match action {
                0 => marks.push((ar.mark(), live.len())),
                1 => live.push((ar.alloc_from(&r), r)),
                2 => {
                    if let Some((m, len)) = marks.pop() {
                        ar.release(m);
                        live.truncate(len);
                    }
                }
                _ => {
                    if let Some((id, model)) = live.last_mut() {
                        ar.union_into(*id, &r);
                        model.union_with(&r);
                    }
                }
            }
            prop_assert_eq!(ar.live(), live.len(), "bump pointer tracks the model stack");
            for (id, model) in &live {
                prop_assert_eq!(&ar.to_relation(*id), model, "a surviving slot changed");
            }
        }
    }
}
