#!/usr/bin/env bash
# CI for the cats workspace. Run from the repository root.
#
# Mirrors the tier-1 verify command (ROADMAP.md) and adds the
# documentation and hygiene gates:
#
#   1. cargo build --release        — the whole workspace, optimised
#   2. cargo build --examples       — every paper-reproduction example
#   3. cargo bench --no-run         — the 9 harness=false bench targets
#                                     (cargo build/test skip these)
#   4. cargo test  -q               — all unit + integration + doc tests
#   5. perf_pipeline --quick        — the tracked perf bench (eager vs
#                                     streaming vs pruned enumeration,
#                                     compiled cat models, corpus split);
#                                     refreshes BENCH_pr2.json so every PR
#                                     leaves a perf-trajectory data point
#   6. cargo doc   --no-deps        — rustdoc, warnings denied
#   7. cargo fmt   --check          — formatting (rustfmt.toml at root)
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo build --examples
run cargo bench --no-run --workspace
run cargo test -q --workspace
run cargo bench -p herd-bench --bench perf_pipeline -- --quick --json "$PWD/BENCH_pr2.json"
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
run cargo fmt --check

echo "CI OK"
