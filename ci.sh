#!/usr/bin/env bash
# CI for the cats workspace. Run from the repository root.
#
# Mirrors the tier-1 verify command (ROADMAP.md) and adds the
# documentation and hygiene gates:
#
#   1. cargo build --release        — the whole workspace, optimised
#   2. cargo build --examples       — every paper-reproduction example
#   3. cargo bench --no-run         — the 8 harness=false bench targets
#                                     (cargo build/test skip these)
#   4. cargo test  -q               — all unit + integration + doc tests
#   5. cargo doc   --no-deps        — rustdoc, warnings denied
#   6. cargo fmt   --check          — formatting (rustfmt.toml at root)
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo build --examples
run cargo bench --no-run --workspace
run cargo test -q --workspace
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
run cargo fmt --check

echo "CI OK"
