#!/usr/bin/env bash
# CI for the cats workspace. Run from the repository root.
#
# Mirrors the tier-1 verify command (ROADMAP.md) and adds the
# documentation and hygiene gates:
#
#   1. cargo build --release        — the whole workspace, optimised
#   2. cargo build --examples       — every paper-reproduction example
#   3. cargo bench --no-run         — the 9 harness=false bench targets
#                                     (cargo build/test skip these)
#   4. cargo test  -q               — all unit + integration + doc tests
#   4b. consistency_differential    — run by step 4 and repeated here by
#                                     name: the polynomial single-outcome
#                                     backend must agree with the streamed
#                                     enumeration engine on every probe
#                                     (corpus-wide + randomised), with
#                                     fallbacks counted and zero silent
#                                     disagreements
#   4c. robustness (fault-injection)— the deterministic fault-injection
#                                     suite: herd-core's faultpoint
#                                     harness armed (cfg-gated, a no-op in
#                                     every other step), single-threaded
#                                     because the harness is
#                                     process-global. Injected panics,
#                                     delays, and spurious cancels must
#                                     each degrade to partial results with
#                                     exact candidate accounting
#   5. alloc_smoke (alloc-count)    — the zero-allocation contract of the
#                                     arena-backed relation engine: a
#                                     counting global allocator asserts 0
#                                     steady-state heap allocations per
#                                     candidate on iriw+2w
#   6. perf_pipeline --quick --gate — the tracked perf bench (eager vs
#                                     streaming vs pruned vs arena-backed
#                                     enumeration+checking, thin-air
#                                     pruning, single-test sharding,
#                                     compiled cat models, work-stealing
#                                     corpus split); writes
#                                     BENCH_pr<N>.json so every PR leaves
#                                     its own perf-trajectory data point
#                                     (prior PRs' files are kept), and
#                                     FAILS if a heavily-pruning IRIW/2+2W
#                                     row drops below 5x, a heavily-
#                                     cyclic lb+datas row below 2x, or a
#                                     backend query row (SC/TSO on
#                                     iriw+3w / wrc+6w) below 10x over
#                                     the enumeration scan, or a robust
#                                     row (never-firing budget threaded
#                                     through the arena engine) at ≥5%
#                                     overhead, or a batch row (memoised
#                                     query layer, PR 9) below 10x for
#                                     decide_log over row-at-a-time
#                                     judging on a 100k-row log / below
#                                     100x for a warm verdict-cache
#                                     lookup over the cold decide, or a
#                                     frontier row (conditional
#                                     saturation, PR 10) above a 20%
#                                     Power/ARM corpus fallback rate /
#                                     below an 80% definitive fraction /
#                                     below 5x for the envelope path
#                                     over the pure-enumeration-fallback
#                                     baseline on the iriw+3w+syncs and
#                                     wrc+6w+po probes
#   7. perf_pipeline --compare      — reads every BENCH_pr*.json, prints
#                                     the per-family speedup trajectory
#                                     table, and FAILS if the new PR's
#                                     effective pruned row regresses past
#                                     tolerance vs the previous PR's file
#   8. cargo doc   --no-deps        — rustdoc, warnings denied
#   9. cargo fmt   --check          — formatting (rustfmt.toml at root)
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

# The PR number this run benches for: $PR_NUMBER wins; otherwise one past
# the newest "PR <N>:" subject in git history (each session lands exactly
# one such commit, so the in-flight PR is last + 1).
PR="${PR_NUMBER:-}"
if [[ -z "$PR" ]]; then
    # `|| true` rescues the SIGPIPE exit that pipefail would otherwise
    # surface once `head -1` closes the pipe on a long history.
    last=$(git log --pretty=%s 2>/dev/null | sed -n 's/^PR \([0-9][0-9]*\).*/\1/p' | head -1 || true)
    PR=$(( ${last:-0} + 1 ))
fi

run cargo build --release --workspace
run cargo build --examples
run cargo bench --no-run --workspace
run cargo test -q --workspace
run cargo test -q --test consistency_differential
run cargo test -q --test robustness --features fault-injection -- --test-threads=1
run cargo test -p herd-bench --release --features alloc-count --test alloc_smoke
run cargo bench -p herd-bench --bench perf_pipeline -- \
    --quick --gate --pr "$PR" --json "$PWD/BENCH_pr${PR}.json"
run cargo bench -p herd-bench --bench perf_pipeline -- --compare --gate
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
run cargo fmt --check

echo "CI OK"
