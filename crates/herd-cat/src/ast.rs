//! Abstract syntax of the cat model-definition language (Fig 38).

use std::fmt;

/// A relational expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// The empty relation (`0`).
    Empty,
    /// A name: a builtin relation or a `let`-bound one.
    Name(String),
    /// Union `a | b`.
    Union(Box<Expr>, Box<Expr>),
    /// Intersection `a & b`.
    Inter(Box<Expr>, Box<Expr>),
    /// Difference `a \ b`.
    Diff(Box<Expr>, Box<Expr>),
    /// Sequence (composition) `a; b`.
    Seq(Box<Expr>, Box<Expr>),
    /// Transitive closure `a+`.
    TClosure(Box<Expr>),
    /// Reflexive-transitive closure `a*`.
    RtClosure(Box<Expr>),
    /// Reflexive closure `a?` (i.e. `a ∪ id`).
    Opt(Box<Expr>),
    /// Converse `a^-1`.
    Inverse(Box<Expr>),
    /// Direction filter application, e.g. `WW(e)`, `RM(e)` — restricts the
    /// sources/targets of `e` by direction (`R`, `W`, or `M` for either).
    App(String, Box<Expr>),
    /// Partial identity over a direction set: `[W]`, `[R]`, `[M]` — the
    /// modern cat idiom, so `[W];po;[R]` is the write-read part of `po`.
    IdSet(String),
}

impl Expr {
    /// `a | b`.
    pub fn union(a: Expr, b: Expr) -> Expr {
        Expr::Union(Box::new(a), Box::new(b))
    }

    /// `a; b`.
    pub fn seq(a: Expr, b: Expr) -> Expr {
        Expr::Seq(Box::new(a), Box::new(b))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Empty => write!(f, "0"),
            Expr::Name(n) => write!(f, "{n}"),
            Expr::Union(a, b) => write!(f, "({a} | {b})"),
            Expr::Inter(a, b) => write!(f, "({a} & {b})"),
            Expr::Diff(a, b) => write!(f, "({a} \\ {b})"),
            Expr::Seq(a, b) => write!(f, "({a}; {b})"),
            Expr::TClosure(a) => write!(f, "{a}+"),
            Expr::RtClosure(a) => write!(f, "{a}*"),
            Expr::Opt(a) => write!(f, "{a}?"),
            Expr::Inverse(a) => write!(f, "{a}^-1"),
            Expr::App(n, a) => write!(f, "{n}({a})"),
            Expr::IdSet(s) => write!(f, "[{s}]"),
        }
    }
}

/// The kind of a constraint statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckKind {
    /// `acyclic e`.
    Acyclic,
    /// `irreflexive e`.
    Irreflexive,
    /// `empty e`.
    Empty,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::Acyclic => "acyclic",
            CheckKind::Irreflexive => "irreflexive",
            CheckKind::Empty => "empty",
        };
        f.write_str(s)
    }
}

/// One top-level statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `let x = e` or `let rec x = e and y = e ...`.
    Let {
        /// The bindings of the group.
        bindings: Vec<(String, Expr)>,
        /// Whether the group is recursive (fixpoint semantics).
        recursive: bool,
    },
    /// `acyclic e [as name]` and friends.
    Check {
        /// The constraint kind.
        kind: CheckKind,
        /// The constrained expression.
        expr: Expr,
        /// Optional `as` name for reporting.
        name: Option<String>,
    },
}

/// A parsed cat model: an optional header name plus statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    /// The model's name (first bare line of the file, if any).
    pub name: Option<String>,
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_structure() {
        let e = Expr::union(
            Expr::seq(Expr::Name("rfe".into()), Expr::Name("fence".into())),
            Expr::TClosure(Box::new(Expr::Name("hb".into()))),
        );
        assert_eq!(e.to_string(), "((rfe; fence) | hb+)");
    }
}
