//! Evaluation of cat models over candidate executions.
//!
//! Names resolve first in the `let` environment, then among the builtin
//! relations of the execution ([`herd_core::exec::Execution::builtin`]).
//! `let rec` groups are evaluated as least fixpoints, mirroring the
//! `ii/ic/ci/cc` equations of Fig 25. Each constraint statement yields one
//! named check; a candidate is allowed when all checks pass.
//!
//! Two evaluators live here: [`eval`] compiles the model to a slot-indexed
//! program ([`mod@crate::compile`]) and runs it, and [`eval_tree`] is the
//! direct tree-walking reference the compiler is tested against.

use crate::ast::{CheckKind, Expr, Model, Stmt};
use herd_core::event::Dir;
use herd_core::exec::Execution;
use herd_core::relation::Relation;
use std::collections::BTreeMap;
use std::fmt;

/// An evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A name is neither bound nor builtin.
    UnknownName(String),
    /// A function application with an unknown combinator.
    UnknownFunction(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownName(n) => write!(f, "unknown relation '{n}'"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The outcome of one constraint statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckOutcome {
    /// The check's reporting name (`as` name, or `kind expr` rendering).
    pub name: String,
    /// The constraint kind.
    pub kind: CheckKind,
    /// Did the candidate satisfy the constraint?
    pub ok: bool,
}

/// The verdict of a cat model on one candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatVerdict {
    /// Per-check outcomes, in statement order.
    pub checks: Vec<CheckOutcome>,
}

impl CatVerdict {
    /// Allowed iff every check passed.
    pub fn allowed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// Names of failed checks.
    pub fn failed(&self) -> Vec<&str> {
        self.checks.iter().filter(|c| !c.ok).map(|c| c.name.as_str()).collect()
    }
}

/// Evaluates `model` on `exec`.
///
/// A thin wrapper over [`crate::compile::compile`] + run: the model is
/// lowered to a slot-indexed program and executed once. When checking many
/// candidates against one model, compile once with
/// [`crate::compile::compile`] (or [`crate::CatModel::compile`]) and call
/// [`crate::compile::CompiledModel::check_in`] per candidate with one
/// reusable [`crate::compile::CatWorkspace`] — slots bind the execution's
/// builtin relations by reference (never cloned) and computed relations
/// live in a bump arena that stops allocating after the first candidate.
///
/// # Errors
///
/// Returns an [`EvalError`] if a name or combinator cannot be resolved.
pub fn eval(model: &Model, exec: &Execution) -> Result<CatVerdict, EvalError> {
    Ok(crate::compile::compile(model)?.check(exec))
}

/// The reference tree-walking evaluator.
///
/// Resolves names through a string-keyed environment on every use; kept as
/// the executable specification the compiled path
/// ([`crate::compile::CompiledModel`]) is property-tested against, and for
/// one-off evaluations where compilation would not amortise.
///
/// # Errors
///
/// Returns an [`EvalError`] if a name or combinator cannot be resolved.
pub fn eval_tree(model: &Model, exec: &Execution) -> Result<CatVerdict, EvalError> {
    let mut env: BTreeMap<String, Relation> = BTreeMap::new();
    let mut checks = Vec::new();
    for stmt in &model.stmts {
        match stmt {
            Stmt::Let { bindings, recursive: false } => {
                for (name, e) in bindings {
                    let r = eval_expr(e, &env, exec)?;
                    env.insert(name.clone(), r);
                }
            }
            Stmt::Let { bindings, recursive: true } => {
                // Least fixpoint: start all bindings at empty, iterate the
                // equations until stable. Monotonicity of the operators
                // (no complement in the language) guarantees convergence.
                let n = exec.len();
                for (name, _) in bindings {
                    env.insert(name.clone(), Relation::empty(n));
                }
                loop {
                    let mut stable = true;
                    let mut next = Vec::with_capacity(bindings.len());
                    for (name, e) in bindings {
                        let r = eval_expr(e, &env, exec)?;
                        if env.get(name) != Some(&r) {
                            stable = false;
                        }
                        next.push((name.clone(), r));
                    }
                    for (name, r) in next {
                        env.insert(name, r);
                    }
                    if stable {
                        break;
                    }
                }
            }
            Stmt::Check { kind, expr, name } => {
                let r = eval_expr(expr, &env, exec)?;
                let ok = match kind {
                    CheckKind::Acyclic => r.is_acyclic(),
                    CheckKind::Irreflexive => r.is_irreflexive(),
                    CheckKind::Empty => r.is_empty(),
                };
                let name = name.clone().unwrap_or_else(|| format!("{kind} {expr}"));
                checks.push(CheckOutcome { name, kind: *kind, ok });
            }
        }
    }
    Ok(CatVerdict { checks })
}

fn eval_expr(
    e: &Expr,
    env: &BTreeMap<String, Relation>,
    exec: &Execution,
) -> Result<Relation, EvalError> {
    Ok(match e {
        Expr::Empty => Relation::empty(exec.len()),
        Expr::Name(n) => match env.get(n) {
            Some(r) => r.clone(),
            None => exec.builtin(n).ok_or_else(|| EvalError::UnknownName(n.clone()))?,
        },
        Expr::Union(a, b) => eval_expr(a, env, exec)?.union(&eval_expr(b, env, exec)?),
        Expr::Inter(a, b) => eval_expr(a, env, exec)?.intersect(&eval_expr(b, env, exec)?),
        Expr::Diff(a, b) => eval_expr(a, env, exec)?.minus(&eval_expr(b, env, exec)?),
        Expr::Seq(a, b) => eval_expr(a, env, exec)?.seq(&eval_expr(b, env, exec)?),
        Expr::TClosure(a) => eval_expr(a, env, exec)?.tclosure(),
        Expr::RtClosure(a) => eval_expr(a, env, exec)?.rtclosure(),
        Expr::Opt(a) => eval_expr(a, env, exec)?.union(&Relation::id(exec.len())),
        Expr::Inverse(a) => eval_expr(a, env, exec)?.transpose(),
        Expr::App(f, a) => {
            let r = eval_expr(a, env, exec)?;
            let (src, dst) = dir_filter(f).ok_or_else(|| EvalError::UnknownFunction(f.clone()))?;
            exec.dir_restrict(&r, src, dst)
        }
        Expr::IdSet(s) => {
            let id = Relation::id(exec.len());
            let dir = match s.as_str() {
                "W" => Some(Dir::W),
                "R" => Some(Dir::R),
                "M" | "_" => None,
                other => return Err(EvalError::UnknownName(format!("[{other}]"))),
            };
            exec.dir_restrict(&id, dir, dir)
        }
    })
}

fn dir_filter(name: &str) -> Option<(Option<Dir>, Option<Dir>)> {
    let part = |c: u8| match c {
        b'R' => Some(Some(Dir::R)),
        b'W' => Some(Some(Dir::W)),
        b'M' => Some(None),
        _ => None,
    };
    let b = name.as_bytes();
    if b.len() != 2 {
        return None;
    }
    Some((part(b[0])?, part(b[1])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use herd_core::fixtures::{self, Device};

    #[test]
    fn sc_as_a_cat_file() {
        let model = parse("acyclic po | rf | fr | co as sc\n").unwrap();
        let mp = fixtures::mp(Device::None, Device::None);
        let v = eval(&model, &mp).unwrap();
        assert!(!v.allowed(), "the mp witness violates SC");
        assert_eq!(v.failed(), vec!["sc"]);
    }

    #[test]
    fn let_bindings_shadow_builtins() {
        let model = parse("let fr = 0\nempty fr as fr-hidden\n").unwrap();
        let mp = fixtures::mp(Device::None, Device::None);
        let v = eval(&model, &mp).unwrap();
        assert!(v.allowed(), "the let-bound empty fr shadows the builtin");
    }

    #[test]
    fn recursive_groups_reach_fixpoints() {
        // Transitive closure of po by recursion instead of '+'.
        let model = parse("let rec p = po | (p;p)\nacyclic p\n").unwrap();
        let mp = fixtures::mp(Device::None, Device::None);
        let v = eval(&model, &mp).unwrap();
        assert!(v.allowed());
    }

    #[test]
    fn unknown_names_error() {
        let model = parse("acyclic haz\n").unwrap();
        let mp = fixtures::mp(Device::None, Device::None);
        assert_eq!(eval(&model, &mp).unwrap_err(), EvalError::UnknownName("haz".into()));
    }

    #[test]
    fn direction_filters_restrict() {
        let model = parse("empty WW(po) as no-write-pairs\n").unwrap();
        let mp = fixtures::mp(Device::None, Device::None);
        let v = eval(&model, &mp).unwrap();
        assert!(!v.allowed(), "mp's writer thread has a WW po pair");
    }

    #[test]
    fn inverse_builds_fr_from_scratch() {
        let model = parse("let myfr = rf^-1;co\nempty myfr \\ fr as same\n").unwrap();
        let mp = fixtures::mp(Device::None, Device::None);
        assert!(eval(&model, &mp).unwrap().allowed());
    }

    #[test]
    fn bracket_sets_equal_direction_filters() {
        // [W];po;[R] is exactly WR(po), the modern cat idiom.
        let model =
            parse("let a = [W];po;[R]\nlet b = WR(po)\nempty a \\ b as fwd\nempty b \\ a as bwd\n")
                .unwrap();
        let mp = fixtures::mp(Device::None, Device::None);
        assert!(eval(&model, &mp).unwrap().allowed());
        // [M] is the full identity over events.
        let model = parse("empty [M] \\ id as m-is-id\nempty id \\ [M] as id-is-m\n").unwrap();
        assert!(eval(&model, &mp).unwrap().allowed());
    }

    #[test]
    fn unknown_set_errors() {
        let model = parse("acyclic [Q];po\n").unwrap();
        let mp = fixtures::mp(Device::None, Device::None);
        assert!(matches!(
            eval(&model, &mp).unwrap_err(),
            EvalError::UnknownName(n) if n == "[Q]"
        ));
    }
}
