//! Lexer and parser for the cat language.
//!
//! The grammar follows Fig 38's notation:
//!
//! ```text
//! model  := name? stmt*
//! stmt   := 'let' 'rec'? binding ('and' binding)*
//!         | ('acyclic' | 'irreflexive' | 'empty') expr ('as' NAME)?
//! binding:= NAME '=' expr
//! expr   := diff ('|' diff)*          -- union, loosest
//! diff   := inter ('\' inter)*
//! inter  := seq ('&' seq)*
//! seq    := post (';' post)*
//! post   := prim ('+' | '*' | '?' | '^-1')*
//! prim   := '0' | NAME | NAME '(' expr ')' | '(' expr ')'
//! ```
//!
//! Identifiers may contain `-`, `_` and `.` (`po-loc`, `dmb.st`). The
//! paper's `ctrl+isync` / `ctrl+isb` / `ctrl+cfence` names are lexed as
//! single identifiers (the only places a `+` is not postfix closure).
//! `(* ... *)` comments are ignored.

use crate::ast::{CheckKind, Expr, Model, Stmt};
use std::fmt;

/// A cat parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CatParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cat parse error, line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CatParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Name(String),
    Let,
    Rec,
    And,
    As,
    Check(CheckKind),
    Eq,
    Bar,
    Amp,
    Backslash,
    Semi,
    Plus,
    Star,
    Question,
    Inverse,
    LPar,
    RPar,
    LBracket,
    RBracket,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    fn error(&self, message: impl Into<String>) -> CatParseError {
        CatParseError { line: self.line, message: message.into() }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, CatParseError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos] as char;
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                ' ' | '\t' | '\r' => self.pos += 1,
                '(' if self.peek(1) == Some('*') => self.skip_comment()?,
                '(' => self.push1(&mut out, Tok::LPar),
                ')' => self.push1(&mut out, Tok::RPar),
                '[' => self.push1(&mut out, Tok::LBracket),
                ']' => self.push1(&mut out, Tok::RBracket),
                '|' => self.push1(&mut out, Tok::Bar),
                '&' => self.push1(&mut out, Tok::Amp),
                '\\' => self.push1(&mut out, Tok::Backslash),
                ';' => self.push1(&mut out, Tok::Semi),
                '+' => self.push1(&mut out, Tok::Plus),
                '*' => self.push1(&mut out, Tok::Star),
                '?' => self.push1(&mut out, Tok::Question),
                '=' => self.push1(&mut out, Tok::Eq),
                '^' => {
                    if self.peek(1) == Some('-') && self.peek(2) == Some('1') {
                        out.push((self.line, Tok::Inverse));
                        self.pos += 3;
                    } else {
                        return Err(self.error("expected '^-1'"));
                    }
                }
                c if c.is_alphanumeric() || c == '_' => {
                    let t = self.name();
                    out.push((self.line, t));
                }
                other => return Err(self.error(format!("unexpected character '{other}'"))),
            }
        }
        Ok(out)
    }

    fn push1(&mut self, out: &mut Vec<(usize, Tok)>, t: Tok) {
        out.push((self.line, t));
        self.pos += 1;
    }

    fn peek(&self, k: usize) -> Option<char> {
        self.src.get(self.pos + k).map(|&b| b as char)
    }

    fn skip_comment(&mut self) -> Result<(), CatParseError> {
        self.pos += 2;
        while self.pos + 1 < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
            }
            if self.src[self.pos] == b'*' && self.src[self.pos + 1] == b')' {
                self.pos += 2;
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.error("unterminated comment"))
    }

    fn name(&mut self) -> Tok {
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos] as char;
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut word: String =
            std::str::from_utf8(&self.src[start..self.pos]).expect("ascii").to_owned();
        // The ctrl+isync / ctrl+isb / ctrl+cfence quirk: a '+' here is part
        // of the name, not a closure.
        if word == "ctrl" {
            for suffix in ["+isync", "+isb", "+cfence"] {
                if self.src[self.pos..].starts_with(suffix.as_bytes()) {
                    word.push_str(suffix);
                    self.pos += suffix.len();
                    break;
                }
            }
        }
        match word.as_str() {
            "let" => Tok::Let,
            "rec" => Tok::Rec,
            "and" => Tok::And,
            "as" => Tok::As,
            "acyclic" => Tok::Check(CheckKind::Acyclic),
            "irreflexive" => Tok::Check(CheckKind::Irreflexive),
            "empty" => Tok::Check(CheckKind::Empty),
            _ => Tok::Name(word),
        }
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map_or(1, |(l, _)| *l)
    }

    fn error(&self, message: impl Into<String>) -> CatParseError {
        CatParseError { line: self.line(), message: message.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), CatParseError> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            other => Err(self.error(format!("expected {want:?}, found {other:?}"))),
        }
    }

    fn model(&mut self, name: Option<String>) -> Result<Model, CatParseError> {
        let mut stmts = Vec::new();
        while let Some(t) = self.peek() {
            match t {
                Tok::Let => stmts.push(self.let_stmt()?),
                Tok::Check(_) => stmts.push(self.check_stmt()?),
                other => return Err(self.error(format!("expected a statement, found {other:?}"))),
            }
        }
        Ok(Model { name, stmts })
    }

    fn let_stmt(&mut self) -> Result<Stmt, CatParseError> {
        self.expect(&Tok::Let)?;
        let recursive = if self.peek() == Some(&Tok::Rec) {
            self.next();
            true
        } else {
            false
        };
        let mut bindings = vec![self.binding()?];
        while recursive && self.peek() == Some(&Tok::And) {
            self.next();
            bindings.push(self.binding()?);
        }
        Ok(Stmt::Let { bindings, recursive })
    }

    fn binding(&mut self) -> Result<(String, Expr), CatParseError> {
        let name = match self.next() {
            Some(Tok::Name(n)) => n,
            other => return Err(self.error(format!("expected a name, found {other:?}"))),
        };
        self.expect(&Tok::Eq)?;
        let expr = self.expr()?;
        Ok((name, expr))
    }

    fn check_stmt(&mut self) -> Result<Stmt, CatParseError> {
        let kind = match self.next() {
            Some(Tok::Check(k)) => k,
            other => return Err(self.error(format!("expected a check, found {other:?}"))),
        };
        let expr = self.expr()?;
        let name = if self.peek() == Some(&Tok::As) {
            self.next();
            match self.next() {
                Some(Tok::Name(n)) => Some(n),
                other => {
                    return Err(self.error(format!("expected a name after 'as', found {other:?}")))
                }
            }
        } else {
            None
        };
        Ok(Stmt::Check { kind, expr, name })
    }

    /// expr := diff ('|' diff)*
    fn expr(&mut self) -> Result<Expr, CatParseError> {
        let mut acc = self.diff()?;
        while self.peek() == Some(&Tok::Bar) {
            self.next();
            acc = Expr::Union(Box::new(acc), Box::new(self.diff()?));
        }
        Ok(acc)
    }

    /// diff := inter ('\' inter)*
    fn diff(&mut self) -> Result<Expr, CatParseError> {
        let mut acc = self.inter()?;
        while self.peek() == Some(&Tok::Backslash) {
            self.next();
            acc = Expr::Diff(Box::new(acc), Box::new(self.inter()?));
        }
        Ok(acc)
    }

    /// inter := seq ('&' seq)*
    fn inter(&mut self) -> Result<Expr, CatParseError> {
        let mut acc = self.seq()?;
        while self.peek() == Some(&Tok::Amp) {
            self.next();
            acc = Expr::Inter(Box::new(acc), Box::new(self.seq()?));
        }
        Ok(acc)
    }

    /// seq := post (';' post)*
    fn seq(&mut self) -> Result<Expr, CatParseError> {
        let mut acc = self.post()?;
        while self.peek() == Some(&Tok::Semi) {
            self.next();
            acc = Expr::Seq(Box::new(acc), Box::new(self.post()?));
        }
        Ok(acc)
    }

    /// post := prim ('+' | '*' | '?' | '^-1')*
    fn post(&mut self) -> Result<Expr, CatParseError> {
        let mut acc = self.prim()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.next();
                    acc = Expr::TClosure(Box::new(acc));
                }
                Some(Tok::Star) => {
                    self.next();
                    acc = Expr::RtClosure(Box::new(acc));
                }
                Some(Tok::Question) => {
                    self.next();
                    acc = Expr::Opt(Box::new(acc));
                }
                Some(Tok::Inverse) => {
                    self.next();
                    acc = Expr::Inverse(Box::new(acc));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn prim(&mut self) -> Result<Expr, CatParseError> {
        match self.next() {
            Some(Tok::Name(n)) if n == "0" => Ok(Expr::Empty),
            Some(Tok::Name(n)) => {
                // Function application only for the direction filters.
                if is_dir_filter(&n) && self.peek() == Some(&Tok::LPar) {
                    self.next();
                    let arg = self.expr()?;
                    self.expect(&Tok::RPar)?;
                    Ok(Expr::App(n, Box::new(arg)))
                } else {
                    Ok(Expr::Name(n))
                }
            }
            Some(Tok::LPar) => {
                let e = self.expr()?;
                self.expect(&Tok::RPar)?;
                Ok(e)
            }
            Some(Tok::LBracket) => {
                let name = match self.next() {
                    Some(Tok::Name(n)) => n,
                    other => {
                        return Err(self.error(format!("expected a set name, found {other:?}")))
                    }
                };
                self.expect(&Tok::RBracket)?;
                Ok(Expr::IdSet(name))
            }
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }
}

/// Is `name` one of the nine direction-filter combinators?
pub fn is_dir_filter(name: &str) -> bool {
    matches!(name, "RR" | "RW" | "RM" | "WR" | "WW" | "WM" | "MR" | "MW" | "MM")
}

/// Parses a cat model. The first line may be a bare model name (as in
/// herd's format); everything else is statements.
///
/// # Errors
///
/// Returns a [`CatParseError`] for lexical or syntactic problems.
pub fn parse(src: &str) -> Result<Model, CatParseError> {
    // Header: if the first non-comment, non-empty line is a single bare
    // word that is not a statement keyword, treat it as the model name.
    let mut name = None;
    let mut body = src;
    for line in src.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with("(*") {
            continue;
        }
        let first_word = t.split_whitespace().next().unwrap_or("");
        if !["let", "acyclic", "irreflexive", "empty"].contains(&first_word)
            && t.split_whitespace().count() <= 3
            && !t.contains('=')
        {
            name = Some(t.to_owned());
            let off = line.as_ptr() as usize - src.as_ptr() as usize + line.len();
            body = &src[off..];
        }
        break;
    }
    let toks = Lexer::new(body).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    p.model(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_lets_and_checks() {
        let m = parse("let hb = ppo | fence | rfe\nacyclic hb as no-thin-air\n").unwrap();
        assert_eq!(m.stmts.len(), 2);
        match &m.stmts[1] {
            Stmt::Check { kind: CheckKind::Acyclic, name: Some(n), .. } => {
                assert_eq!(n, "no-thin-air");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_seq_tighter_than_union() {
        let m = parse("let x = a;b | c\n").unwrap();
        match &m.stmts[0] {
            Stmt::Let { bindings, .. } => {
                assert_eq!(bindings[0].1.to_string(), "((a; b) | c)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn postfix_closures_bind_tightest() {
        let m = parse("let x = com*;prop-base*;sync;hb*\n").unwrap();
        match &m.stmts[0] {
            Stmt::Let { bindings, .. } => {
                assert_eq!(bindings[0].1.to_string(), "(((com*; prop-base*); sync); hb*)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ctrl_isync_is_one_name() {
        let m = parse("let ci0 = (ctrl+isync)|detour\n").unwrap();
        match &m.stmts[0] {
            Stmt::Let { bindings, .. } => {
                assert_eq!(bindings[0].1.to_string(), "(ctrl+isync | detour)");
            }
            other => panic!("{other:?}"),
        }
        // ...while a closure after another name still lexes as closure.
        let m = parse("let x = ctrl+ | hb+\n").unwrap();
        match &m.stmts[0] {
            Stmt::Let { bindings, .. } => {
                assert_eq!(bindings[0].1.to_string(), "(ctrl+ | hb+)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_rec_groups() {
        let m = parse("let rec ii = ii0|(ii;ii)\nand ic = ii|cc\nand cc = cc0\n").unwrap();
        match &m.stmts[0] {
            Stmt::Let { bindings, recursive: true } => assert_eq!(bindings.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dir_filters_apply() {
        let m = parse("let f = RM(lwsync)|WW(lwsync)|sync\n").unwrap();
        match &m.stmts[0] {
            Stmt::Let { bindings, .. } => {
                assert!(bindings[0].1.to_string().contains("RM(lwsync)"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn header_name_is_recognised() {
        let m = parse("PowerModel\nlet x = po\nacyclic x\n").unwrap();
        assert_eq!(m.name.as_deref(), Some("PowerModel"));
    }

    #[test]
    fn comments_are_skipped() {
        let m = parse("(* sc per location *) acyclic po-loc|com\n").unwrap();
        assert_eq!(m.stmts.len(), 1);
    }

    #[test]
    fn errors_have_lines() {
        let err = parse("let x =\nlet y = po\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
