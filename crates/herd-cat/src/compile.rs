//! Compilation of cat models to a slot-indexed instruction program.
//!
//! The tree-walking evaluator ([`crate::eval::eval_tree`]) re-resolves
//! every name through a string-keyed environment map on each candidate
//! execution. Simulation campaigns check thousands of candidates against
//! one model, so this module performs the name resolution **once per
//! model**: [`compile`] lowers the AST to a straight-line program over
//! dense result slots, with
//!
//! * every `let`-bound and builtin name resolved to a slot or a
//!   [`BuiltinRel`] variant at compile time (zero string lookups per
//!   candidate),
//! * hash-consing (common-subexpression elimination), so a subexpression
//!   like `hb*` that several axioms sequence through is computed once per
//!   candidate,
//! * constant folding of expressions involving the empty relation
//!   (`0 | x = x`, `0; x = 0`, `0* = id`, ...) and other algebraic
//!   identities (`x | x = x`, `(x+)+ = x+`, `(x^-1)^-1 = x`),
//! * hoisting of fixpoint-invariant subexpressions out of `let rec`
//!   iteration bodies: an operand of a recursive equation that does not
//!   depend on the recursively bound names is evaluated once, not once
//!   per fixpoint iteration.
//!
//! [`crate::eval::eval`] is a thin wrapper over compile-then-run; use
//! [`CompiledModel::check`] directly to amortise compilation across a
//! candidate stream.

use crate::ast::{CheckKind, Expr, Model, Stmt};
use crate::eval::{CatVerdict, CheckOutcome, EvalError};
use herd_core::event::{Dir, Fence};
use herd_core::exec::Execution;
use herd_core::relation::Relation;
use std::collections::HashMap;

/// A builtin relation of the candidate execution, resolved from its cat
/// name at compile time (mirrors [`Execution::builtin`] without the string
/// dispatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BuiltinRel {
    /// `po`.
    Po,
    /// `po-loc`.
    PoLoc,
    /// `rf`.
    Rf,
    /// `rfe`.
    Rfe,
    /// `rfi`.
    Rfi,
    /// `co` / `ws`.
    Co,
    /// `coe` / `wse`.
    Coe,
    /// `coi` / `wsi`.
    Coi,
    /// `fr`.
    Fr,
    /// `fre`.
    Fre,
    /// `fri`.
    Fri,
    /// `com`.
    Com,
    /// `addr`.
    Addr,
    /// `data`.
    Data,
    /// `ctrl`.
    Ctrl,
    /// `ctrl+cfence` / `ctrl+isync` / `ctrl+isb`.
    CtrlCfence,
    /// `rdw` (Fig 27).
    Rdw,
    /// `detour` (Fig 28).
    Detour,
    /// `loc` (same-location pairs).
    SameLoc,
    /// `int` (same-thread pairs).
    Int,
    /// `ext` (cross-thread pairs).
    Ext,
    /// `id`.
    Id,
    /// One fence flavour's relation.
    Fence(Fence),
}

impl BuiltinRel {
    /// Resolves a cat name to a builtin, if it is one.
    pub fn resolve(name: &str) -> Option<BuiltinRel> {
        use BuiltinRel::*;
        Some(match name {
            "po" => Po,
            "po-loc" => PoLoc,
            "rf" => Rf,
            "rfe" => Rfe,
            "rfi" => Rfi,
            "co" | "ws" => Co,
            "coe" | "wse" => Coe,
            "coi" | "wsi" => Coi,
            "fr" => Fr,
            "fre" => Fre,
            "fri" => Fri,
            "com" => Com,
            "addr" => Addr,
            "data" => Data,
            "ctrl" => Ctrl,
            "ctrl+cfence" | "ctrl+isync" | "ctrl+isb" => CtrlCfence,
            "rdw" => Rdw,
            "detour" => Detour,
            "loc" => SameLoc,
            "int" => Int,
            "ext" => Ext,
            "id" => Id,
            other => Fence(*herd_core::event::Fence::ALL.iter().find(|f| f.mnemonic() == other)?),
        })
    }

    /// Materialises the builtin on one execution.
    fn fetch(self, x: &Execution) -> Relation {
        use BuiltinRel::*;
        match self {
            Po => x.po().clone(),
            PoLoc => x.po_loc().clone(),
            Rf => x.rf().clone(),
            Rfe => x.rfe().clone(),
            Rfi => x.rfi().clone(),
            Co => x.co().clone(),
            Coe => x.coe().clone(),
            Coi => x.coi().clone(),
            Fr => x.fr().clone(),
            Fre => x.fre().clone(),
            Fri => x.fri().clone(),
            Com => x.com().clone(),
            Addr => x.deps().addr.clone(),
            Data => x.deps().data.clone(),
            Ctrl => x.deps().ctrl.clone(),
            CtrlCfence => x.deps().ctrl_cfence.clone(),
            Rdw => x.rdw().clone(),
            Detour => x.detour().clone(),
            SameLoc => x.same_loc().clone(),
            Int => x.internal().clone(),
            Ext => x.external().clone(),
            Id => Relation::id(x.len()),
            Fence(f) => x.fence(f),
        }
    }
}

/// One relational operation over result slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Op {
    Builtin(BuiltinRel),
    Empty,
    /// `[W]` / `[R]` / `[M]`: partial identity over a direction set.
    DirId(Option<Dir>),
    Union(usize, usize),
    Inter(usize, usize),
    Diff(usize, usize),
    Seq(usize, usize),
    TClosure(usize),
    RtClosure(usize),
    Opt(usize),
    Inverse(usize),
    /// `WW(e)`, `RM(e)`, ... — source/target direction restriction.
    DirRestrict(usize, Option<Dir>, Option<Dir>),
}

/// An instruction: compute `op` into slot `dst`.
#[derive(Clone, Copy, Debug)]
struct Insn {
    dst: usize,
    op: Op,
}

/// One element of the compiled program.
#[derive(Clone, Debug)]
enum Step {
    /// A straight-line instruction.
    Op(Insn),
    /// A `let rec` group run to its least fixpoint.
    Fixpoint {
        /// Slots holding the recursively bound names (start empty).
        rec: Vec<usize>,
        /// Per binding, the slot its recomputed value lands in.
        results: Vec<usize>,
        /// Loop body: only the fixpoint-variant instructions; invariant
        /// subexpressions were hoisted into the enclosing program.
        body: Vec<Insn>,
    },
}

/// One compiled constraint statement.
#[derive(Clone, Debug)]
struct CompiledCheck {
    name: String,
    kind: CheckKind,
    slot: usize,
}

/// A cat model lowered to a slot-indexed program; see the module docs.
#[derive(Clone, Debug)]
pub struct CompiledModel {
    name: Option<String>,
    prog: Vec<Step>,
    checks: Vec<CompiledCheck>,
    n_slots: usize,
}

impl CompiledModel {
    /// The model's declared name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Number of result slots (compile-time statistic).
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// Number of straight-line instructions plus fixpoint-body
    /// instructions (compile-time statistic).
    pub fn insn_count(&self) -> usize {
        self.prog
            .iter()
            .map(|s| match s {
                Step::Op(_) => 1,
                Step::Fixpoint { body, .. } => body.len(),
            })
            .sum()
    }

    /// Checks one candidate execution against the compiled model.
    ///
    /// Infallible: every name was resolved at compile time.
    pub fn check(&self, exec: &Execution) -> CatVerdict {
        let mut slots: Vec<Option<Relation>> = vec![None; self.n_slots];
        for step in &self.prog {
            match step {
                Step::Op(insn) => {
                    slots[insn.dst] = Some(run_op(insn.op, &slots, exec));
                }
                Step::Fixpoint { rec, results, body } => {
                    let n = exec.len();
                    for &r in rec {
                        slots[r] = Some(Relation::empty(n));
                    }
                    loop {
                        for insn in body {
                            slots[insn.dst] = Some(run_op(insn.op, &slots, exec));
                        }
                        let stable = rec.iter().zip(results).all(|(&r, &s)| slots[r] == slots[s]);
                        for (&r, &s) in rec.iter().zip(results) {
                            if r != s {
                                slots[r] = slots[s].clone();
                            }
                        }
                        if stable {
                            break;
                        }
                    }
                }
            }
        }
        let checks = self
            .checks
            .iter()
            .map(|c| {
                let r = slots[c.slot].as_ref().expect("check slot computed");
                let ok = match c.kind {
                    CheckKind::Acyclic => r.is_acyclic(),
                    CheckKind::Irreflexive => r.is_irreflexive(),
                    CheckKind::Empty => r.is_empty(),
                };
                CheckOutcome { name: c.name.clone(), kind: c.kind, ok }
            })
            .collect();
        CatVerdict { checks }
    }
}

fn run_op(op: Op, slots: &[Option<Relation>], x: &Execution) -> Relation {
    let s = |i: usize| slots[i].as_ref().expect("operand slot computed");
    match op {
        Op::Builtin(b) => b.fetch(x),
        Op::Empty => Relation::empty(x.len()),
        Op::DirId(d) => {
            let id = Relation::id(x.len());
            x.dir_restrict(&id, d, d)
        }
        Op::Union(a, b) => s(a).union(s(b)),
        Op::Inter(a, b) => s(a).intersect(s(b)),
        Op::Diff(a, b) => s(a).minus(s(b)),
        Op::Seq(a, b) => s(a).seq(s(b)),
        Op::TClosure(a) => s(a).tclosure(),
        Op::RtClosure(a) => s(a).rtclosure(),
        Op::Opt(a) => s(a).union(&Relation::id(s(a).universe())),
        Op::Inverse(a) => s(a).transpose(),
        Op::DirRestrict(a, src, dst) => x.dir_restrict(s(a), src, dst),
    }
}

/// Compiles a model.
///
/// # Errors
///
/// Returns the same [`EvalError`]s the tree-walking evaluator would raise
/// lazily: unknown names and unknown combinators.
pub fn compile(model: &Model) -> Result<CompiledModel, EvalError> {
    let mut c = Compiler::default();
    for stmt in &model.stmts {
        match stmt {
            Stmt::Let { bindings, recursive: false } => {
                for (name, e) in bindings {
                    let slot = c.lower(e)?;
                    c.env.insert(name.clone(), slot);
                }
            }
            Stmt::Let { bindings, recursive: true } => c.lower_rec(bindings)?,
            Stmt::Check { kind, expr, name } => {
                let slot = c.lower(expr)?;
                let name = name.clone().unwrap_or_else(|| format!("{kind} {expr}"));
                c.checks.push(CompiledCheck { name, kind: *kind, slot });
            }
        }
    }
    Ok(CompiledModel {
        name: model.name.clone(),
        prog: c.prog,
        checks: c.checks,
        n_slots: c.n_slots,
    })
}

#[derive(Default)]
struct Compiler {
    prog: Vec<Step>,
    checks: Vec<CompiledCheck>,
    env: HashMap<String, usize>,
    /// Hash-consing: op (over slot ids) → slot already computing it.
    memo: HashMap<Op, usize>,
    n_slots: usize,
    /// Slots whose value changes across the current fixpoint's iterations.
    variant: Vec<bool>,
    /// Body of the fixpoint currently being lowered, if any.
    rec_body: Option<Vec<Insn>>,
    /// The slot holding the empty relation, if one was emitted.
    empty_slot: Option<usize>,
}

impl Compiler {
    fn fresh(&mut self) -> usize {
        let s = self.n_slots;
        self.n_slots += 1;
        self.variant.push(false);
        s
    }

    /// Emits `op` (or reuses a previous slot via CSE / folding).
    fn emit(&mut self, op: Op) -> usize {
        if let Some(folded) = self.fold(op) {
            return folded;
        }
        let variant = self.op_is_variant(op);
        // CSE: reuse only when the cached slot is certain to hold the same
        // value here — invariant ops always do; variant ops only while the
        // same fixpoint body is being built (they are recomputed each
        // iteration in order).
        if let Some(&slot) = self.memo.get(&op) {
            if self.variant[slot] == variant {
                return slot;
            }
        }
        let dst = self.fresh();
        self.variant[dst] = variant;
        let insn = Insn { dst, op };
        if variant {
            self.rec_body.as_mut().expect("variant op outside fixpoint").push(insn);
        } else {
            self.prog.push(Step::Op(insn));
        }
        self.memo.insert(op, dst);
        if op == Op::Empty {
            self.empty_slot = Some(dst);
        }
        dst
    }

    fn op_is_variant(&self, op: Op) -> bool {
        let v = |s: usize| self.variant[s];
        match op {
            Op::Builtin(_) | Op::Empty | Op::DirId(_) => false,
            Op::Union(a, b) | Op::Inter(a, b) | Op::Diff(a, b) | Op::Seq(a, b) => v(a) || v(b),
            Op::TClosure(a)
            | Op::RtClosure(a)
            | Op::Opt(a)
            | Op::Inverse(a)
            | Op::DirRestrict(a, _, _) => v(a),
        }
    }

    /// Algebraic folds; returns the slot that already holds the result.
    fn fold(&mut self, op: Op) -> Option<usize> {
        let empty = |s: usize| self.empty_slot == Some(s);
        match op {
            Op::Union(a, b) if a == b => Some(a),
            Op::Union(a, b) if empty(a) => Some(b),
            Op::Union(a, b) if empty(b) => Some(a),
            Op::Inter(a, b) if a == b => Some(a),
            Op::Inter(a, b) | Op::Seq(a, b) if empty(a) || empty(b) => {
                Some(if empty(a) { a } else { b })
            }
            Op::Diff(a, b) if empty(b) => Some(a),
            Op::Diff(a, b) if a == b || empty(a) => Some(self.emit(Op::Empty)),
            Op::TClosure(a) | Op::Inverse(a) | Op::DirRestrict(a, _, _) if empty(a) => Some(a),
            Op::RtClosure(a) | Op::Opt(a) if empty(a) => {
                Some(self.emit(Op::Builtin(BuiltinRel::Id)))
            }
            // (x*)+ = (x*)* = x* and (x+)+ = x+.
            Op::TClosure(a) | Op::RtClosure(a)
                if matches!(self.memo_of(a), Some(Op::RtClosure(_))) =>
            {
                Some(a)
            }
            Op::TClosure(a) if matches!(self.memo_of(a), Some(Op::TClosure(_))) => Some(a),
            Op::Inverse(a) => match self.memo_of(a) {
                Some(Op::Inverse(inner)) => Some(inner),
                _ => None,
            },
            _ => None,
        }
    }

    /// The op that computed `slot`, if it is a straight-line CSE'd one.
    fn memo_of(&self, slot: usize) -> Option<Op> {
        self.memo.iter().find(|&(_, &s)| s == slot).map(|(&op, _)| op)
    }

    fn lower(&mut self, e: &Expr) -> Result<usize, EvalError> {
        Ok(match e {
            Expr::Empty => self.emit(Op::Empty),
            Expr::Name(n) => match self.env.get(n) {
                Some(&slot) => slot,
                None => match BuiltinRel::resolve(n) {
                    Some(b) => self.emit(Op::Builtin(b)),
                    None => return Err(EvalError::UnknownName(n.clone())),
                },
            },
            Expr::Union(a, b) => {
                let (a, b) = (self.lower(a)?, self.lower(b)?);
                self.emit(Op::Union(a, b))
            }
            Expr::Inter(a, b) => {
                let (a, b) = (self.lower(a)?, self.lower(b)?);
                self.emit(Op::Inter(a, b))
            }
            Expr::Diff(a, b) => {
                let (a, b) = (self.lower(a)?, self.lower(b)?);
                self.emit(Op::Diff(a, b))
            }
            Expr::Seq(a, b) => {
                let (a, b) = (self.lower(a)?, self.lower(b)?);
                self.emit(Op::Seq(a, b))
            }
            Expr::TClosure(a) => {
                let a = self.lower(a)?;
                self.emit(Op::TClosure(a))
            }
            Expr::RtClosure(a) => {
                let a = self.lower(a)?;
                self.emit(Op::RtClosure(a))
            }
            Expr::Opt(a) => {
                let a = self.lower(a)?;
                self.emit(Op::Opt(a))
            }
            Expr::Inverse(a) => {
                let a = self.lower(a)?;
                self.emit(Op::Inverse(a))
            }
            Expr::App(f, a) => {
                let (src, dst) =
                    dir_filter(f).ok_or_else(|| EvalError::UnknownFunction(f.clone()))?;
                let a = self.lower(a)?;
                self.emit(Op::DirRestrict(a, src, dst))
            }
            Expr::IdSet(s) => {
                let dir = match s.as_str() {
                    "W" => Some(Dir::W),
                    "R" => Some(Dir::R),
                    "M" | "_" => None,
                    other => return Err(EvalError::UnknownName(format!("[{other}]"))),
                };
                match dir {
                    None => self.emit(Op::Builtin(BuiltinRel::Id)),
                    d => self.emit(Op::DirId(d)),
                }
            }
        })
    }

    fn lower_rec(&mut self, bindings: &[(String, Expr)]) -> Result<(), EvalError> {
        // Allocate the recursion slots first: every binding sees every
        // other (and itself) while lowering, as in the Fig 25 equations.
        let rec: Vec<usize> = bindings
            .iter()
            .map(|(name, _)| {
                let slot = self.fresh();
                self.variant[slot] = true;
                self.env.insert(name.clone(), slot);
                slot
            })
            .collect();
        let prev_body = self.rec_body.replace(Vec::new());
        let mut results = Vec::with_capacity(bindings.len());
        for (_, e) in bindings {
            results.push(self.lower(e)?);
        }
        let body = self.rec_body.take().expect("rec body present");
        self.rec_body = prev_body;
        // Once the loop has converged, the rec slots and the body's
        // intermediate slots all hold their stable fixpoint values, so
        // everything computed from them afterwards is invariant again —
        // and the memo entries of body ops stay valid for CSE.
        for &r in &rec {
            self.variant[r] = false;
        }
        for insn in &body {
            self.variant[insn.dst] = false;
        }
        self.prog.push(Step::Fixpoint { rec, results, body });
        Ok(())
    }
}

fn dir_filter(name: &str) -> Option<(Option<Dir>, Option<Dir>)> {
    let part = |c: u8| match c {
        b'R' => Some(Some(Dir::R)),
        b'W' => Some(Some(Dir::W)),
        b'M' => Some(None),
        _ => None,
    };
    let b = name.as_bytes();
    if b.len() != 2 {
        return None;
    }
    Some((part(b[0])?, part(b[1])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_tree;
    use crate::parse::parse;
    use herd_core::fixtures::{self, Device};

    fn agree(src: &str) {
        let model = parse(src).unwrap();
        let compiled = compile(&model).unwrap();
        for x in [
            fixtures::mp(Device::None, Device::None),
            fixtures::mp(Device::Fence(herd_core::event::Fence::Lwsync), Device::Addr),
            fixtures::sb(Device::None, Device::None),
            fixtures::iriw(Device::None, Device::None),
        ] {
            assert_eq!(compiled.check(&x), eval_tree(&model, &x).unwrap(), "{src}");
        }
    }

    #[test]
    fn compiled_agrees_with_tree_walker() {
        agree("acyclic po | rf | fr | co as sc\n");
        agree("let fr2 = rf^-1;co\nempty fr2 \\ fr as same\n");
        agree("let rec p = po | (p;p)\nacyclic p\n");
        agree("empty WW(po) as ww\nirreflexive fre;po as obs\n");
        agree("let a = [W];po;[R]\nempty a \\ WR(po) as fwd\n");
    }

    #[test]
    fn stock_models_compile_and_agree() {
        for (name, src) in crate::stock::ALL {
            let model = parse(src).unwrap();
            let compiled = compile(&model).unwrap_or_else(|e| panic!("{name}: {e}"));
            let x = fixtures::mp(Device::Addr, Device::Addr);
            assert_eq!(compiled.check(&x), eval_tree(&model, &x).unwrap(), "{name}");
        }
    }

    #[test]
    fn cse_computes_shared_subexpressions_once() {
        // hb* appears twice; CSE must emit one RtClosure instruction.
        let model =
            parse("let hb = po | rfe\nirreflexive fre;hb* as a\nacyclic co;hb* as b\n").unwrap();
        let compiled = compile(&model).unwrap();
        let rt = compiled
            .prog
            .iter()
            .filter(|s| matches!(s, Step::Op(Insn { op: Op::RtClosure(_), .. })))
            .count();
        assert_eq!(rt, 1, "hb* computed once");
    }

    #[test]
    fn empty_folds_away() {
        let model = parse("let fences = 0\nlet prop = po | fences\nacyclic prop\n").unwrap();
        let compiled = compile(&model).unwrap();
        // `po | 0` folds to `po`: no Union instruction at all.
        assert!(!compiled
            .prog
            .iter()
            .any(|s| matches!(s, Step::Op(Insn { op: Op::Union(_, _), .. }))));
    }

    #[test]
    fn fixpoint_invariant_operands_are_hoisted() {
        let model = parse("let rec ii = (addr | data) | (ii;ii)\nacyclic ii\n").unwrap();
        let compiled = compile(&model).unwrap();
        let Step::Fixpoint { body, .. } = compiled
            .prog
            .iter()
            .find(|s| matches!(s, Step::Fixpoint { .. }))
            .expect("has a fixpoint")
        else {
            unreachable!()
        };
        // The loop body recomputes only ii;ii and the outer union —
        // `addr | data` runs once, outside.
        assert_eq!(body.len(), 2, "invariant union hoisted out of the loop");
    }

    #[test]
    fn unknown_names_error_at_compile_time() {
        let model = parse("acyclic haz\n").unwrap();
        assert_eq!(compile(&model).unwrap_err(), EvalError::UnknownName("haz".into()));
    }
}
