//! Compilation of cat models to a slot-indexed instruction program.
//!
//! The tree-walking evaluator ([`crate::eval::eval_tree`]) re-resolves
//! every name through a string-keyed environment map on each candidate
//! execution. Simulation campaigns check thousands of candidates against
//! one model, so this module performs the name resolution **once per
//! model**: [`compile`] lowers the AST to a straight-line program over
//! dense result slots, with
//!
//! * every `let`-bound and builtin name resolved to a slot or a
//!   [`BuiltinRel`] variant at compile time (zero string lookups per
//!   candidate),
//! * hash-consing (common-subexpression elimination), so a subexpression
//!   like `hb*` that several axioms sequence through is computed once per
//!   candidate,
//! * constant folding of expressions involving the empty relation
//!   (`0 | x = x`, `0; x = 0`, `0* = id`, ...) and other algebraic
//!   identities (`x | x = x`, `(x+)+ = x+`, `(x^-1)^-1 = x`),
//! * hoisting of fixpoint-invariant subexpressions out of `let rec`
//!   iteration bodies: an operand of a recursive equation that does not
//!   depend on the recursively bound names is evaluated once, not once
//!   per fixpoint iteration.
//!
//! [`crate::eval::eval`] is a thin wrapper over compile-then-run; use
//! [`CompiledModel::check`] directly to amortise compilation across a
//! candidate stream.

use crate::ast::{CheckKind, Expr, Model, Stmt};
use crate::eval::{CatVerdict, CheckOutcome, EvalError};
use herd_core::arena::{RelArena, RelId, RelSrc};
use herd_core::event::{Dir, Fence};
use herd_core::exec::Execution;
use herd_core::relation::Relation;
use std::collections::HashMap;

/// A builtin relation of the candidate execution, resolved from its cat
/// name at compile time (mirrors [`Execution::builtin`] without the string
/// dispatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BuiltinRel {
    /// `po`.
    Po,
    /// `po-loc`.
    PoLoc,
    /// `rf`.
    Rf,
    /// `rfe`.
    Rfe,
    /// `rfi`.
    Rfi,
    /// `co` / `ws`.
    Co,
    /// `coe` / `wse`.
    Coe,
    /// `coi` / `wsi`.
    Coi,
    /// `fr`.
    Fr,
    /// `fre`.
    Fre,
    /// `fri`.
    Fri,
    /// `com`.
    Com,
    /// `addr`.
    Addr,
    /// `data`.
    Data,
    /// `ctrl`.
    Ctrl,
    /// `ctrl+cfence` / `ctrl+isync` / `ctrl+isb`.
    CtrlCfence,
    /// `rdw` (Fig 27).
    Rdw,
    /// `detour` (Fig 28).
    Detour,
    /// `loc` (same-location pairs).
    SameLoc,
    /// `int` (same-thread pairs).
    Int,
    /// `ext` (cross-thread pairs).
    Ext,
    /// `id`.
    Id,
    /// One fence flavour's relation.
    Fence(Fence),
}

impl BuiltinRel {
    /// Resolves a cat name to a builtin, if it is one.
    pub fn resolve(name: &str) -> Option<BuiltinRel> {
        use BuiltinRel::*;
        Some(match name {
            "po" => Po,
            "po-loc" => PoLoc,
            "rf" => Rf,
            "rfe" => Rfe,
            "rfi" => Rfi,
            "co" | "ws" => Co,
            "coe" | "wse" => Coe,
            "coi" | "wsi" => Coi,
            "fr" => Fr,
            "fre" => Fre,
            "fri" => Fri,
            "com" => Com,
            "addr" => Addr,
            "data" => Data,
            "ctrl" => Ctrl,
            "ctrl+cfence" | "ctrl+isync" | "ctrl+isb" => CtrlCfence,
            "rdw" => Rdw,
            "detour" => Detour,
            "loc" => SameLoc,
            "int" => Int,
            "ext" => Ext,
            "id" => Id,
            other => Fence(*herd_core::event::Fence::ALL.iter().find(|f| f.mnemonic() == other)?),
        })
    }

    /// Borrows the builtin from one execution — **no copy**: every
    /// variant, including `id` and absent fence flavours, resolves to a
    /// relation the execution (or its shared core) already holds. This is
    /// what lets compiled evaluation keep builtins by reference in its
    /// slots; the old `fetch` that `clone()`d each builtin per evaluation
    /// is gone, and [`EvalStats::builtin_copies`] pins the invariant.
    fn fetch_ref(self, x: &Execution) -> &Relation {
        use BuiltinRel::*;
        match self {
            Po => x.po(),
            PoLoc => x.po_loc(),
            Rf => x.rf(),
            Rfe => x.rfe(),
            Rfi => x.rfi(),
            Co => x.co(),
            Coe => x.coe(),
            Coi => x.coi(),
            Fr => x.fr(),
            Fre => x.fre(),
            Fri => x.fri(),
            Com => x.com(),
            Addr => &x.deps().addr,
            Data => &x.deps().data,
            Ctrl => &x.deps().ctrl,
            CtrlCfence => &x.deps().ctrl_cfence,
            Rdw => x.rdw(),
            Detour => x.detour(),
            SameLoc => x.same_loc(),
            Int => x.internal(),
            Ext => x.external(),
            Id => x.core().id_rel(),
            Fence(f) => x.core().fence_ref(f),
        }
    }
}

/// One relational operation over result slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Op {
    Builtin(BuiltinRel),
    Empty,
    /// `[W]` / `[R]` / `[M]`: partial identity over a direction set.
    DirId(Option<Dir>),
    Union(usize, usize),
    Inter(usize, usize),
    Diff(usize, usize),
    Seq(usize, usize),
    TClosure(usize),
    RtClosure(usize),
    Opt(usize),
    Inverse(usize),
    /// `WW(e)`, `RM(e)`, ... — source/target direction restriction.
    DirRestrict(usize, Option<Dir>, Option<Dir>),
}

/// An instruction: compute `op` into slot `dst`.
#[derive(Clone, Copy, Debug)]
struct Insn {
    dst: usize,
    op: Op,
}

/// One element of the compiled program.
#[derive(Clone, Debug)]
enum Step {
    /// A straight-line instruction.
    Op(Insn),
    /// A `let rec` group run to its least fixpoint.
    Fixpoint {
        /// Slots holding the recursively bound names (start empty).
        rec: Vec<usize>,
        /// Per binding, the slot its recomputed value lands in.
        results: Vec<usize>,
        /// Loop body: only the fixpoint-variant instructions; invariant
        /// subexpressions were hoisted into the enclosing program.
        body: Vec<Insn>,
    },
}

/// One compiled constraint statement.
#[derive(Clone, Debug)]
struct CompiledCheck {
    name: String,
    kind: CheckKind,
    slot: usize,
}

/// A cat model lowered to a slot-indexed program; see the module docs.
#[derive(Clone, Debug)]
pub struct CompiledModel {
    name: Option<String>,
    prog: Vec<Step>,
    checks: Vec<CompiledCheck>,
    n_slots: usize,
}

impl CompiledModel {
    /// The model's declared name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Number of result slots (compile-time statistic).
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// Number of straight-line instructions plus fixpoint-body
    /// instructions (compile-time statistic).
    pub fn insn_count(&self) -> usize {
        self.prog
            .iter()
            .map(|s| match s {
                Step::Op(_) => 1,
                Step::Fixpoint { body, .. } => body.len(),
            })
            .sum()
    }

    /// Checks one candidate execution against the compiled model.
    ///
    /// Infallible: every name was resolved at compile time. Convenience
    /// wrapper creating a throwaway [`CatWorkspace`]; when checking a
    /// stream of candidates, hold one workspace and call
    /// [`CompiledModel::check_in`] so the arena amortises to zero heap
    /// allocations per candidate.
    pub fn check(&self, exec: &Execution) -> CatVerdict {
        self.check_in(exec, &mut CatWorkspace::new())
    }

    /// Checks one candidate against the compiled model using a reusable
    /// [`CatWorkspace`].
    ///
    /// Slot values are either *borrowed builtins* (references into the
    /// execution and its shared core — never copied) or computed
    /// relations bump-allocated in the workspace arena; the arena's pool
    /// is kept across calls, so steady-state evaluation performs no heap
    /// allocation beyond the returned verdict's check names.
    pub fn check_in(&self, exec: &Execution, ws: &mut CatWorkspace) -> CatVerdict {
        ws.begin(exec.len(), self.n_slots);
        for step in &self.prog {
            match step {
                Step::Op(insn) => ws.run_insn(*insn, exec),
                Step::Fixpoint { rec, results, body } => {
                    for &r in rec {
                        ws.slots[r] = Slot::Empty;
                    }
                    loop {
                        ws.stats.fixpoint_iters += 1;
                        for insn in body {
                            ws.run_insn(*insn, exec);
                        }
                        let stable = rec
                            .iter()
                            .zip(results)
                            .all(|(&r, &s)| r == s || ws.slots_equal(r, s, exec));
                        for (&r, &s) in rec.iter().zip(results) {
                            if r != s {
                                ws.assign(r, s);
                            }
                        }
                        if stable {
                            break;
                        }
                    }
                }
            }
        }
        // Regression accounting: a Builtin instruction whose slot ended up
        // materialised (owned storage) would mean the borrow discipline
        // broke — see [`EvalStats::builtin_copies`].
        for step in &self.prog {
            if let Step::Op(Insn { dst, op: Op::Builtin(_) }) = step {
                if matches!(ws.slots[*dst], Slot::Owned(_)) {
                    ws.stats.builtin_copies += 1;
                }
            }
        }
        let checks = self
            .checks
            .iter()
            .map(|c| {
                let ok = match c.kind {
                    CheckKind::Acyclic => {
                        let src = resolve(&ws.slots, c.slot, exec);
                        ws.arena.is_acyclic(src)
                    }
                    CheckKind::Irreflexive => {
                        ws.arena.is_irreflexive(resolve(&ws.slots, c.slot, exec))
                    }
                    CheckKind::Empty => ws.arena.is_empty(resolve(&ws.slots, c.slot, exec)),
                };
                CheckOutcome { name: c.name.clone(), kind: c.kind, ok }
            })
            .collect();
        CatVerdict { checks }
    }
}

/// One slot value during compiled evaluation: builtins stay *borrowed*
/// (resolved to a reference on demand), computed results live in the
/// workspace arena.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// Not yet computed (program order guarantees no reads).
    Unset,
    /// A builtin of the execution, held by name — resolved to a borrow at
    /// each use, never copied.
    Builtin(BuiltinRel),
    /// The empty relation (resolved to the core's cached instance).
    Empty,
    /// A computed relation in the workspace arena.
    Owned(RelId),
}

/// Runtime statistics of one [`CompiledModel::check_in`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// `Op::Builtin` instructions executed (slots bound by reference).
    pub builtin_loads: u64,
    /// Builtin relations that were deep-copied into owned storage to
    /// satisfy a builtin load — **always 0** with the arena evaluator;
    /// the regression test in this crate asserts it stays that way.
    pub builtin_copies: u64,
    /// Total `let rec` fixpoint iterations run.
    pub fixpoint_iters: u64,
}

/// Reusable evaluation state for [`CompiledModel::check_in`]: the slot
/// table and the relation arena, both of which keep their storage across
/// candidates.
pub struct CatWorkspace {
    arena: RelArena,
    slots: Vec<Slot>,
    stats: EvalStats,
}

impl Default for CatWorkspace {
    fn default() -> Self {
        CatWorkspace::new()
    }
}

impl CatWorkspace {
    /// A fresh workspace (the arena grows to the model × execution
    /// high-water mark on first use and is then flat).
    pub fn new() -> Self {
        CatWorkspace { arena: RelArena::new(0), slots: Vec::new(), stats: EvalStats::default() }
    }

    /// Statistics of the most recent [`CompiledModel::check_in`] call.
    pub fn last_stats(&self) -> EvalStats {
        self.stats
    }

    fn begin(&mut self, universe: usize, n_slots: usize) {
        self.arena.reset(universe);
        self.slots.clear();
        self.slots.resize(n_slots, Slot::Unset);
        self.stats = EvalStats::default();
    }

    /// The arena slot backing `i`, allocated on first write.
    fn owned(&mut self, i: usize) -> RelId {
        if let Slot::Owned(id) = self.slots[i] {
            return id;
        }
        let id = self.arena.alloc();
        self.slots[i] = Slot::Owned(id);
        id
    }

    /// `slots[r] = value of slots[s]` (fixpoint result propagation):
    /// borrowed values propagate as borrows, owned ones copy rows in the
    /// arena — never a heap allocation after warm-up.
    fn assign(&mut self, r: usize, s: usize) {
        match self.slots[s] {
            Slot::Owned(sid) => {
                let rid = self.owned(r);
                self.arena.copy_into(rid, sid);
            }
            other => self.slots[r] = other,
        }
    }

    /// Bitwise equality of two slots' values.
    fn slots_equal(&self, a: usize, b: usize, x: &Execution) -> bool {
        self.arena.eq(resolve(&self.slots, a, x), resolve(&self.slots, b, x))
    }

    fn run_insn(&mut self, insn: Insn, x: &Execution) {
        let Insn { dst, op } = insn;
        match op {
            Op::Builtin(b) => {
                self.stats.builtin_loads += 1;
                self.slots[dst] = Slot::Builtin(b);
            }
            Op::Empty => self.slots[dst] = Slot::Empty,
            Op::DirId(d) => {
                let id = self.owned(dst);
                x.core().dir_restrict_arena(&mut self.arena, id, x.core().id_rel(), d, d);
            }
            Op::Union(a, b) => self.binop(dst, a, b, x, BinKind::Union),
            Op::Inter(a, b) => self.binop(dst, a, b, x, BinKind::Inter),
            Op::Diff(a, b) => self.binop(dst, a, b, x, BinKind::Diff),
            Op::Seq(a, b) => {
                let id = self.owned(dst);
                let (sa, sb) = (resolve(&self.slots, a, x), resolve(&self.slots, b, x));
                self.arena.seq_into(id, sa, sb);
            }
            Op::TClosure(a) => {
                let id = self.owned(dst);
                let sa = resolve(&self.slots, a, x);
                self.arena.tclosure_into(id, sa);
            }
            Op::RtClosure(a) => {
                let id = self.owned(dst);
                let sa = resolve(&self.slots, a, x);
                self.arena.rtclosure_into(id, sa);
            }
            Op::Opt(a) => {
                let id = self.owned(dst);
                let sa = resolve(&self.slots, a, x);
                self.arena.copy_into(id, sa);
                self.arena.union_id(id);
            }
            Op::Inverse(a) => {
                let id = self.owned(dst);
                let sa = resolve(&self.slots, a, x);
                self.arena.transpose_into(id, sa);
            }
            Op::DirRestrict(a, src, tgt) => {
                let id = self.owned(dst);
                let sa = resolve(&self.slots, a, x);
                x.core().dir_restrict_arena(&mut self.arena, id, sa, src, tgt);
            }
        }
    }

    /// `dst = a ⟨op⟩ b` for the copy-then-combine operators.
    fn binop(&mut self, dst: usize, a: usize, b: usize, x: &Execution, kind: BinKind) {
        let id = self.owned(dst);
        let (sa, sb) = (resolve(&self.slots, a, x), resolve(&self.slots, b, x));
        self.arena.copy_into(id, sa);
        match kind {
            BinKind::Union => self.arena.union_into(id, sb),
            BinKind::Inter => self.arena.intersect_into(id, sb),
            BinKind::Diff => self.arena.minus_into(id, sb),
        }
    }
}

/// The three copy-then-combine binary operators of [`CatWorkspace::binop`].
#[derive(Clone, Copy)]
enum BinKind {
    Union,
    Inter,
    Diff,
}

/// Resolves a slot to an arena operand: owned slots by id, builtins and
/// the empty relation as borrows into the execution's shared core.
fn resolve<'x>(slots: &[Slot], i: usize, x: &'x Execution) -> RelSrc<'x> {
    match slots[i] {
        Slot::Owned(id) => RelSrc::Slot(id),
        Slot::Builtin(b) => RelSrc::Ext(b.fetch_ref(x)),
        Slot::Empty => RelSrc::Ext(x.core().empty_rel()),
        Slot::Unset => unreachable!("slot {i} read before being computed"),
    }
}

/// Compiles a model.
///
/// # Errors
///
/// Returns the same [`EvalError`]s the tree-walking evaluator would raise
/// lazily: unknown names and unknown combinators.
pub fn compile(model: &Model) -> Result<CompiledModel, EvalError> {
    let mut c = Compiler::default();
    for stmt in &model.stmts {
        match stmt {
            Stmt::Let { bindings, recursive: false } => {
                for (name, e) in bindings {
                    let slot = c.lower(e)?;
                    c.env.insert(name.clone(), slot);
                }
            }
            Stmt::Let { bindings, recursive: true } => c.lower_rec(bindings)?,
            Stmt::Check { kind, expr, name } => {
                let slot = c.lower(expr)?;
                let name = name.clone().unwrap_or_else(|| format!("{kind} {expr}"));
                c.checks.push(CompiledCheck { name, kind: *kind, slot });
            }
        }
    }
    Ok(CompiledModel {
        name: model.name.clone(),
        prog: c.prog,
        checks: c.checks,
        n_slots: c.n_slots,
    })
}

#[derive(Default)]
struct Compiler {
    prog: Vec<Step>,
    checks: Vec<CompiledCheck>,
    env: HashMap<String, usize>,
    /// Hash-consing: op (over slot ids) → slot already computing it.
    memo: HashMap<Op, usize>,
    n_slots: usize,
    /// Slots whose value changes across the current fixpoint's iterations.
    variant: Vec<bool>,
    /// Body of the fixpoint currently being lowered, if any.
    rec_body: Option<Vec<Insn>>,
    /// The slot holding the empty relation, if one was emitted.
    empty_slot: Option<usize>,
}

impl Compiler {
    fn fresh(&mut self) -> usize {
        let s = self.n_slots;
        self.n_slots += 1;
        self.variant.push(false);
        s
    }

    /// Emits `op` (or reuses a previous slot via CSE / folding).
    fn emit(&mut self, op: Op) -> usize {
        if let Some(folded) = self.fold(op) {
            return folded;
        }
        let variant = self.op_is_variant(op);
        // CSE: reuse only when the cached slot is certain to hold the same
        // value here — invariant ops always do; variant ops only while the
        // same fixpoint body is being built (they are recomputed each
        // iteration in order).
        if let Some(&slot) = self.memo.get(&op) {
            if self.variant[slot] == variant {
                return slot;
            }
        }
        let dst = self.fresh();
        self.variant[dst] = variant;
        let insn = Insn { dst, op };
        if variant {
            self.rec_body.as_mut().expect("variant op outside fixpoint").push(insn);
        } else {
            self.prog.push(Step::Op(insn));
        }
        self.memo.insert(op, dst);
        if op == Op::Empty {
            self.empty_slot = Some(dst);
        }
        dst
    }

    fn op_is_variant(&self, op: Op) -> bool {
        let v = |s: usize| self.variant[s];
        match op {
            Op::Builtin(_) | Op::Empty | Op::DirId(_) => false,
            Op::Union(a, b) | Op::Inter(a, b) | Op::Diff(a, b) | Op::Seq(a, b) => v(a) || v(b),
            Op::TClosure(a)
            | Op::RtClosure(a)
            | Op::Opt(a)
            | Op::Inverse(a)
            | Op::DirRestrict(a, _, _) => v(a),
        }
    }

    /// Algebraic folds; returns the slot that already holds the result.
    fn fold(&mut self, op: Op) -> Option<usize> {
        let empty = |s: usize| self.empty_slot == Some(s);
        match op {
            Op::Union(a, b) if a == b => Some(a),
            Op::Union(a, b) if empty(a) => Some(b),
            Op::Union(a, b) if empty(b) => Some(a),
            Op::Inter(a, b) if a == b => Some(a),
            Op::Inter(a, b) | Op::Seq(a, b) if empty(a) || empty(b) => {
                Some(if empty(a) { a } else { b })
            }
            Op::Diff(a, b) if empty(b) => Some(a),
            Op::Diff(a, b) if a == b || empty(a) => Some(self.emit(Op::Empty)),
            Op::TClosure(a) | Op::Inverse(a) | Op::DirRestrict(a, _, _) if empty(a) => Some(a),
            Op::RtClosure(a) | Op::Opt(a) if empty(a) => {
                Some(self.emit(Op::Builtin(BuiltinRel::Id)))
            }
            // (x*)+ = (x*)* = x* and (x+)+ = x+.
            Op::TClosure(a) | Op::RtClosure(a)
                if matches!(self.memo_of(a), Some(Op::RtClosure(_))) =>
            {
                Some(a)
            }
            Op::TClosure(a) if matches!(self.memo_of(a), Some(Op::TClosure(_))) => Some(a),
            Op::Inverse(a) => match self.memo_of(a) {
                Some(Op::Inverse(inner)) => Some(inner),
                _ => None,
            },
            _ => None,
        }
    }

    /// The op that computed `slot`, if it is a straight-line CSE'd one.
    fn memo_of(&self, slot: usize) -> Option<Op> {
        self.memo.iter().find(|&(_, &s)| s == slot).map(|(&op, _)| op)
    }

    fn lower(&mut self, e: &Expr) -> Result<usize, EvalError> {
        Ok(match e {
            Expr::Empty => self.emit(Op::Empty),
            Expr::Name(n) => match self.env.get(n) {
                Some(&slot) => slot,
                None => match BuiltinRel::resolve(n) {
                    Some(b) => self.emit(Op::Builtin(b)),
                    None => return Err(EvalError::UnknownName(n.clone())),
                },
            },
            Expr::Union(a, b) => {
                let (a, b) = (self.lower(a)?, self.lower(b)?);
                self.emit(Op::Union(a, b))
            }
            Expr::Inter(a, b) => {
                let (a, b) = (self.lower(a)?, self.lower(b)?);
                self.emit(Op::Inter(a, b))
            }
            Expr::Diff(a, b) => {
                let (a, b) = (self.lower(a)?, self.lower(b)?);
                self.emit(Op::Diff(a, b))
            }
            Expr::Seq(a, b) => {
                let (a, b) = (self.lower(a)?, self.lower(b)?);
                self.emit(Op::Seq(a, b))
            }
            Expr::TClosure(a) => {
                let a = self.lower(a)?;
                self.emit(Op::TClosure(a))
            }
            Expr::RtClosure(a) => {
                let a = self.lower(a)?;
                self.emit(Op::RtClosure(a))
            }
            Expr::Opt(a) => {
                let a = self.lower(a)?;
                self.emit(Op::Opt(a))
            }
            Expr::Inverse(a) => {
                let a = self.lower(a)?;
                self.emit(Op::Inverse(a))
            }
            Expr::App(f, a) => {
                let (src, dst) =
                    dir_filter(f).ok_or_else(|| EvalError::UnknownFunction(f.clone()))?;
                let a = self.lower(a)?;
                self.emit(Op::DirRestrict(a, src, dst))
            }
            Expr::IdSet(s) => {
                let dir = match s.as_str() {
                    "W" => Some(Dir::W),
                    "R" => Some(Dir::R),
                    "M" | "_" => None,
                    other => return Err(EvalError::UnknownName(format!("[{other}]"))),
                };
                match dir {
                    None => self.emit(Op::Builtin(BuiltinRel::Id)),
                    d => self.emit(Op::DirId(d)),
                }
            }
        })
    }

    fn lower_rec(&mut self, bindings: &[(String, Expr)]) -> Result<(), EvalError> {
        // Allocate the recursion slots first: every binding sees every
        // other (and itself) while lowering, as in the Fig 25 equations.
        let rec: Vec<usize> = bindings
            .iter()
            .map(|(name, _)| {
                let slot = self.fresh();
                self.variant[slot] = true;
                self.env.insert(name.clone(), slot);
                slot
            })
            .collect();
        let prev_body = self.rec_body.replace(Vec::new());
        let mut results = Vec::with_capacity(bindings.len());
        for (_, e) in bindings {
            results.push(self.lower(e)?);
        }
        let body = self.rec_body.take().expect("rec body present");
        self.rec_body = prev_body;
        // Once the loop has converged, the rec slots and the body's
        // intermediate slots all hold their stable fixpoint values, so
        // everything computed from them afterwards is invariant again —
        // and the memo entries of body ops stay valid for CSE.
        for &r in &rec {
            self.variant[r] = false;
        }
        for insn in &body {
            self.variant[insn.dst] = false;
        }
        self.prog.push(Step::Fixpoint { rec, results, body });
        Ok(())
    }
}

fn dir_filter(name: &str) -> Option<(Option<Dir>, Option<Dir>)> {
    let part = |c: u8| match c {
        b'R' => Some(Some(Dir::R)),
        b'W' => Some(Some(Dir::W)),
        b'M' => Some(None),
        _ => None,
    };
    let b = name.as_bytes();
    if b.len() != 2 {
        return None;
    }
    Some((part(b[0])?, part(b[1])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_tree;
    use crate::parse::parse;
    use herd_core::fixtures::{self, Device};

    fn agree(src: &str) {
        let model = parse(src).unwrap();
        let compiled = compile(&model).unwrap();
        for x in [
            fixtures::mp(Device::None, Device::None),
            fixtures::mp(Device::Fence(herd_core::event::Fence::Lwsync), Device::Addr),
            fixtures::sb(Device::None, Device::None),
            fixtures::iriw(Device::None, Device::None),
        ] {
            assert_eq!(compiled.check(&x), eval_tree(&model, &x).unwrap(), "{src}");
        }
    }

    #[test]
    fn compiled_agrees_with_tree_walker() {
        agree("acyclic po | rf | fr | co as sc\n");
        agree("let fr2 = rf^-1;co\nempty fr2 \\ fr as same\n");
        agree("let rec p = po | (p;p)\nacyclic p\n");
        agree("empty WW(po) as ww\nirreflexive fre;po as obs\n");
        agree("let a = [W];po;[R]\nempty a \\ WR(po) as fwd\n");
    }

    /// The satellite regression assert: compiled evaluation must never
    /// copy a builtin relation — slots bind builtins by reference, and a
    /// reused workspace's arena stops growing after the first candidate.
    #[test]
    fn compiled_evaluation_copies_zero_builtins() {
        let mut ws = CatWorkspace::new();
        for (name, src) in crate::stock::ALL {
            let compiled = compile(&parse(src).unwrap()).unwrap();
            for x in [
                fixtures::mp(Device::Addr, Device::Addr),
                fixtures::iriw(Device::Fence(herd_core::event::Fence::Sync), Device::Addr),
                fixtures::sb(Device::None, Device::None),
            ] {
                let tree = eval_tree(&parse(src).unwrap(), &x).unwrap();
                let v = compiled.check_in(&x, &mut ws);
                assert_eq!(v, tree, "{name}");
                let stats = ws.last_stats();
                assert!(stats.builtin_loads > 0, "{name}: models do load builtins");
                assert_eq!(stats.builtin_copies, 0, "{name}: a builtin was materialised");
            }
        }
        // Steady state: re-checking with the warmed workspace must not
        // grow the arena pool.
        let compiled = compile(&parse(crate::stock::ALL[0].1).unwrap()).unwrap();
        let x = fixtures::mp(Device::Addr, Device::Addr);
        compiled.check_in(&x, &mut ws);
        let hw = ws.arena.high_water_words();
        for _ in 0..16 {
            compiled.check_in(&x, &mut ws);
        }
        assert_eq!(ws.arena.high_water_words(), hw, "workspace pool grew in steady state");
    }

    #[test]
    fn stock_models_compile_and_agree() {
        for (name, src) in crate::stock::ALL {
            let model = parse(src).unwrap();
            let compiled = compile(&model).unwrap_or_else(|e| panic!("{name}: {e}"));
            let x = fixtures::mp(Device::Addr, Device::Addr);
            assert_eq!(compiled.check(&x), eval_tree(&model, &x).unwrap(), "{name}");
        }
    }

    #[test]
    fn cse_computes_shared_subexpressions_once() {
        // hb* appears twice; CSE must emit one RtClosure instruction.
        let model =
            parse("let hb = po | rfe\nirreflexive fre;hb* as a\nacyclic co;hb* as b\n").unwrap();
        let compiled = compile(&model).unwrap();
        let rt = compiled
            .prog
            .iter()
            .filter(|s| matches!(s, Step::Op(Insn { op: Op::RtClosure(_), .. })))
            .count();
        assert_eq!(rt, 1, "hb* computed once");
    }

    #[test]
    fn empty_folds_away() {
        let model = parse("let fences = 0\nlet prop = po | fences\nacyclic prop\n").unwrap();
        let compiled = compile(&model).unwrap();
        // `po | 0` folds to `po`: no Union instruction at all.
        assert!(!compiled
            .prog
            .iter()
            .any(|s| matches!(s, Step::Op(Insn { op: Op::Union(_, _), .. }))));
    }

    #[test]
    fn fixpoint_invariant_operands_are_hoisted() {
        let model = parse("let rec ii = (addr | data) | (ii;ii)\nacyclic ii\n").unwrap();
        let compiled = compile(&model).unwrap();
        let Step::Fixpoint { body, .. } = compiled
            .prog
            .iter()
            .find(|s| matches!(s, Step::Fixpoint { .. }))
            .expect("has a fixpoint")
        else {
            unreachable!()
        };
        // The loop body recomputes only ii;ii and the outer union —
        // `addr | data` runs once, outside.
        assert_eq!(body.len(), 2, "invariant union hoisted out of the loop");
    }

    #[test]
    fn unknown_names_error_at_compile_time() {
        let model = parse("acyclic haz\n").unwrap();
        assert_eq!(compile(&model).unwrap_err(), EvalError::UnknownName("haz".into()));
    }
}
