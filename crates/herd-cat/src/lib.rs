//! # herd-cat — the cat model-definition language
//!
//! The paper's herd simulator takes the *model itself* as input: a short
//! text file defining relations with `let`/`let rec` and constraining them
//! with `acyclic`/`irreflexive`/`empty` (Fig 38 shows the whole Power
//! model in under a page). This crate implements that language: a lexer
//! and parser ([`parse()`]), an evaluator over candidate executions
//! ([`eval()`]), and the stock model files ([`stock`]).
//!
//! ## Example
//!
//! ```
//! use herd_cat::CatModel;
//! use herd_core::fixtures::{mp, Device};
//!
//! let sc = CatModel::parse("acyclic po | rf | fr | co as sc").unwrap();
//! let witness = mp(Device::None, Device::None);
//! assert!(!sc.check(&witness).unwrap().allowed());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod compile;
pub mod eval;
pub mod parse;

pub use ast::{CheckKind, Expr, Model, Stmt};
pub use compile::{compile, BuiltinRel, CatWorkspace, CompiledModel, EvalStats};
pub use eval::{eval, eval_tree, CatVerdict, CheckOutcome, EvalError};
pub use parse::{parse, CatParseError};

use herd_core::exec::Execution;
use std::fmt;

/// A parsed, ready-to-run cat model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatModel {
    model: Model,
}

/// Errors from parsing or evaluating a cat model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatError {
    /// Syntax error.
    Parse(CatParseError),
    /// Evaluation error.
    Eval(EvalError),
}

impl fmt::Display for CatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatError::Parse(e) => e.fmt(f),
            CatError::Eval(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CatError {}

impl From<CatParseError> for CatError {
    fn from(e: CatParseError) -> Self {
        CatError::Parse(e)
    }
}

impl From<EvalError> for CatError {
    fn from(e: EvalError) -> Self {
        CatError::Eval(e)
    }
}

impl CatModel {
    /// Parses a model from cat source.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its line number.
    pub fn parse(src: &str) -> Result<Self, CatError> {
        Ok(CatModel { model: parse(src)? })
    }

    /// The model's declared name, if any.
    pub fn name(&self) -> Option<&str> {
        self.model.name.as_deref()
    }

    /// The underlying AST.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Checks one candidate execution against the model.
    ///
    /// Compiles on every call; for candidate streams, [`CatModel::compile`]
    /// once and use [`CompiledModel::check`] per candidate.
    ///
    /// # Errors
    ///
    /// Returns an error when a relation name cannot be resolved.
    pub fn check(&self, exec: &Execution) -> Result<CatVerdict, CatError> {
        Ok(eval(&self.model, exec)?)
    }

    /// Compiles the model to its slot-indexed form (name resolution,
    /// common-subexpression elimination and constant folding done once).
    ///
    /// # Errors
    ///
    /// Returns an error when a relation name cannot be resolved.
    pub fn compile(&self) -> Result<CompiledModel, CatError> {
        Ok(compile::compile(&self.model)?)
    }
}

/// A content-addressed store of compiled cat models, keyed by the
/// fingerprint of their source text — see [`compile_cached`].
pub type ModelCache = herd_cache::ShardedLru<std::sync::Arc<CompiledModel>>;

/// The content key of a cat model: a structural fingerprint of its
/// source text (the model *is* its text — same source, same key).
pub fn model_fingerprint(src: &str) -> herd_cache::Fingerprint {
    let mut h = herd_cache::FpHasher::new("cat-model/v1");
    h.tag("src");
    h.write_str(src);
    h.finish()
}

/// Parses and compiles cat source, memoised by content in `cache`: the
/// same source text never lexes, parses, resolves or folds twice. The
/// returned [`CompiledModel`] is shared behind an [`std::sync::Arc`], so
/// warm calls are one fingerprint plus one shard probe — the compiled
/// half of the memoised query layer (the verdict half lives in
/// `herd-hw`/`herd-machine`).
///
/// # Errors
///
/// As [`CatModel::parse`] + [`CatModel::compile`]; failures are returned
/// fresh every time, never cached.
pub fn compile_cached(
    src: &str,
    cache: &ModelCache,
) -> Result<std::sync::Arc<CompiledModel>, CatError> {
    let key = model_fingerprint(src);
    if let Some(m) = cache.get(key) {
        return Ok(m);
    }
    let compiled = std::sync::Arc::new(CatModel::parse(src)?.compile()?);
    cache.insert(key, compiled.clone());
    Ok(compiled)
}

/// The stock model files shipped with the repository (`models/*.cat`).
pub mod stock {
    use super::CatModel;

    /// Source of `models/power.cat` (Fig 38 + `eieio`).
    pub const POWER: &str = include_str!("../../../models/power.cat");
    /// Source of `models/arm.cat` (the proposed ARM model).
    pub const ARM: &str = include_str!("../../../models/arm.cat");
    /// Source of `models/arm-llh.cat` (load-load hazards tolerated).
    pub const ARM_LLH: &str = include_str!("../../../models/arm-llh.cat");
    /// Source of `models/sc.cat`.
    pub const SC: &str = include_str!("../../../models/sc.cat");
    /// Source of `models/tso.cat`.
    pub const TSO: &str = include_str!("../../../models/tso.cat");
    /// Source of `models/cppra.cat` (paper-strong C++ R-A).
    pub const CPPRA: &str = include_str!("../../../models/cppra.cat");
    /// Source of `models/cppra-exact.cat` (HBVSMO variant).
    pub const CPPRA_EXACT: &str = include_str!("../../../models/cppra-exact.cat");

    /// `(file name, source)` for every stock model.
    pub const ALL: [(&str, &str); 7] = [
        ("power.cat", POWER),
        ("arm.cat", ARM),
        ("arm-llh.cat", ARM_LLH),
        ("sc.cat", SC),
        ("tso.cat", TSO),
        ("cppra.cat", CPPRA),
        ("cppra-exact.cat", CPPRA_EXACT),
    ];

    /// Parses one stock model.
    ///
    /// # Panics
    ///
    /// Panics if the shipped file fails to parse (a build defect, covered
    /// by tests).
    pub fn load(src: &str) -> CatModel {
        CatModel::parse(src).expect("stock model parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herd_core::fixtures::{self, Device};

    #[test]
    fn all_stock_models_parse() {
        for (name, src) in stock::ALL {
            let m = CatModel::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(m.name().is_some(), "{name} has a header");
            assert!(
                m.model().stmts.iter().filter(|s| matches!(s, Stmt::Check { .. })).count() >= 4,
                "{name} has the four axioms"
            );
        }
    }

    #[test]
    fn stock_power_reproduces_fig8_and_fig16() {
        use herd_core::event::Fence;
        let power = stock::load(stock::POWER);
        // mp+lwsync+addr forbidden (observation fails).
        let x = fixtures::mp(Device::Fence(Fence::Lwsync), Device::Addr);
        let v = power.check(&x).unwrap();
        assert!(!v.allowed());
        assert_eq!(v.failed(), vec!["observation"]);
        // r+lwsync+sync allowed.
        let x = fixtures::r(Device::Fence(Fence::Lwsync), Device::Fence(Fence::Sync));
        assert!(power.check(&x).unwrap().allowed());
        // r+syncs forbidden by propagation.
        let x = fixtures::r(Device::Fence(Fence::Sync), Device::Fence(Fence::Sync));
        let v = power.check(&x).unwrap();
        assert_eq!(v.failed(), vec!["propagation"]);
    }

    #[test]
    fn stock_sc_forbids_every_bare_pattern() {
        let sc = stock::load(stock::SC);
        for x in [
            fixtures::mp(Device::None, Device::None),
            fixtures::sb(Device::None, Device::None),
            fixtures::lb(Device::None, Device::None),
            fixtures::iriw(Device::None, Device::None),
        ] {
            assert!(!sc.check(&x).unwrap().allowed());
        }
    }

    #[test]
    fn stock_tso_allows_sb_only() {
        let tso = stock::load(stock::TSO);
        assert!(tso.check(&fixtures::sb(Device::None, Device::None)).unwrap().allowed());
        assert!(!tso.check(&fixtures::mp(Device::None, Device::None)).unwrap().allowed());
    }

    #[test]
    fn stock_arm_llh_allows_corr() {
        let llh = stock::load(stock::ARM_LLH);
        assert!(llh.check(&fixtures::co_rr()).unwrap().allowed());
        assert!(!llh.check(&fixtures::co_ww()).unwrap().allowed());
        let arm = stock::load(stock::ARM);
        assert!(!arm.check(&fixtures::co_rr()).unwrap().allowed());
    }

    #[test]
    fn cached_compilation_is_content_addressed() {
        let cache = ModelCache::new(32);
        let fresh = stock::load(stock::TSO).compile().unwrap();
        let a = compile_cached(stock::TSO, &cache).unwrap();
        let b = compile_cached(stock::TSO, &cache).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "warm compile is the same object");
        // Same verdicts as a fresh compile on a witness either way.
        let sb = fixtures::sb(Device::None, Device::None);
        assert_eq!(a.check(&sb).allowed(), fresh.check(&sb).allowed());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // A different model is a different key; a parse error caches
        // nothing.
        let _ = compile_cached(stock::SC, &cache).unwrap();
        assert_eq!(cache.stats().len, 2);
        assert!(compile_cached("let rec broken", &cache).is_err());
        assert_eq!(cache.stats().len, 2);
    }
}
