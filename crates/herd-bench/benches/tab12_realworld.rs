//! Tab XII: verification of the real-world kernels (PgSQL, RCU, Apache).
//!
//! The pipeline: mole mines each kernel's critical cycles, the bridge
//! synthesises one litmus witness per cycle, and both verification
//! encodings (axiomatic in-tool vs operational instrumentation) decide
//! reachability. The paper reports identical times across axiomatic
//! models on these examples (1.6 s / 0.5 s / 2.0 s); here we measure both
//! encodings per kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use herd_core::arch::Power;
use herd_litmus::program::LitmusTest;
use herd_machine::{verify_axiomatic, verify_operational};
use herd_mole::{analyze, corpus, witnesses, MoleOptions};
use std::hint::black_box;

fn kernel_witnesses() -> Vec<(String, Vec<LitmusTest>)> {
    let opts = MoleOptions::default();
    corpus::all()
        .into_iter()
        .map(|p| {
            let analysis = analyze(&p, &opts);
            let tests = witnesses(&analysis, herd_litmus::isa::Isa::Power)
                .into_iter()
                .map(|(_, t)| t)
                .take(12)
                .collect();
            (p.name.clone(), tests)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let kernels = kernel_witnesses();
    for (name, tests) in &kernels {
        println!("{name}: {} mined witnesses", tests.len());
    }
    let power = Power::new();
    let mut g = c.benchmark_group("tab12_realworld");
    g.sample_size(10);
    for (name, tests) in &kernels {
        g.bench_function(format!("{name}_axiomatic"), |b| {
            b.iter(|| {
                for t in tests {
                    black_box(verify_axiomatic(t, &power).expect("verifies"));
                }
            })
        });
        g.bench_function(format!("{name}_operational"), |b| {
            b.iter(|| {
                for t in tests {
                    black_box(verify_operational(t, &power).expect("verifies"));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
