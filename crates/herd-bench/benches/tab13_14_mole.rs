//! Tabs XII/XIII/XIV: mole over the real-world kernels (PostgreSQL, RCU,
//! Apache) and the distribution scan of Sec 9.2. Pattern histograms are
//! printed once; the bench measures analysis cost.

use criterion::{criterion_group, criterion_main, Criterion};
use herd_mole::{analyze, corpus, scan_distribution, MoleOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let opts = MoleOptions::default();

    for p in corpus::all() {
        let a = analyze(&p, &opts);
        println!("{}: {} cycles, patterns {:?}", p.name, a.cycles.len(), a.pattern_histogram());
    }

    let mut g = c.benchmark_group("tab13_14_mole");
    g.sample_size(10);
    for p in corpus::all() {
        g.bench_function(format!("analyze_{}", p.name), |b| {
            b.iter(|| black_box(analyze(&p, &opts)))
        });
    }
    g.bench_function("scan_50_packages", |b| {
        b.iter(|| black_box(scan_distribution(50, 2014, &opts)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
