//! Tab XI: verification times comparing this paper's model with the
//! CAV 2012 (multi-event) model on the litmus corpus — the paper reports
//! ours ~2x faster (1041s vs 1944s over 4450 tests).

use criterion::{criterion_group, criterion_main, Criterion};
use herd_bench::{diy_corpus, power_tests};
use herd_core::arch::Power;
use herd_core::model::check;
use herd_litmus::candidates::{enumerate, EnumOptions};
use herd_machine::{check_multi, MadorHaim};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut tests = power_tests();
    tests.extend(diy_corpus(80));
    let opts = EnumOptions::default();
    let cands: Vec<_> =
        tests.iter().flat_map(|t| enumerate(t, &opts).expect("enumerates")).collect();
    let mut g = c.benchmark_group("tab11_verify_models");
    g.sample_size(10);

    g.bench_function("this_model", |b| {
        let power = Power::new();
        b.iter(|| {
            let n: usize =
                cands.iter().filter(|x| check(&power, black_box(&x.exec)).allowed()).count();
            black_box(n)
        })
    });

    g.bench_function("cav12_surrogate", |b| {
        let cav = MadorHaim::new();
        b.iter(|| {
            let n: usize =
                cands.iter().filter(|x| check(&cav, black_box(&x.exec)).allowed()).count();
            black_box(n)
        })
    });

    g.bench_function("cav12_multi_event_representation", |b| {
        let power = Power::new();
        b.iter(|| {
            let n: usize =
                cands.iter().filter(|x| check_multi(black_box(&x.exec), &power).allowed()).count();
            black_box(n)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
