//! Tab IX: simulation cost per modelling style, on the same candidates.
//!
//! The paper: operational (ppcmem) ≫ multi-event axiomatic ≫ single-event
//! axiomatic (herd), with multi-event ~9x slower than single-event and the
//! operational style orders of magnitude slower still.

use criterion::{criterion_group, criterion_main, Criterion};
use herd_bench::{enumerate_all, power_tests};
use herd_core::arch::Power;
use herd_core::model::check;
use herd_machine::{check_multi, Machine};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cands = enumerate_all(&power_tests());
    let power = Power::new();
    let mut g = c.benchmark_group("tab9_simulation");
    g.sample_size(10);

    g.bench_function("single_event_axiomatic", |b| {
        b.iter(|| {
            let allowed: usize =
                cands.iter().filter(|cand| check(&power, black_box(&cand.exec)).allowed()).count();
            black_box(allowed)
        })
    });

    g.bench_function("multi_event_axiomatic", |b| {
        b.iter(|| {
            let allowed: usize = cands
                .iter()
                .filter(|cand| check_multi(black_box(&cand.exec), &power).allowed())
                .count();
            black_box(allowed)
        })
    });

    g.bench_function("operational_machine", |b| {
        b.iter(|| {
            let allowed: usize = cands
                .iter()
                .filter(|cand| Machine::new(black_box(&cand.exec), &power).accepts())
                .count();
            black_box(allowed)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
