//! Ablations of design choices called out in DESIGN.md:
//!
//! - Sec 8.2's "more static" preserved program order (no `rdw`/`detour`):
//!   cost and verdict drift;
//! - the `.st`-fences-as-lightweight alternative of Sec 4.7;
//! - the cat interpreter against the native Power model (the price of
//!   genericity).

use criterion::{criterion_group, criterion_main, Criterion};
use herd_bench::{enumerate_all, power_tests};
use herd_cat::stock;
use herd_core::arch::{Arm, ArmVariant, Power};
use herd_core::model::check;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cands = enumerate_all(&power_tests());

    // Report verdict drift of the static ppo once.
    let full = Power::new();
    let static_ppo = Power::without_dynamic_ppo();
    let drift = cands
        .iter()
        .filter(|x| check(&full, &x.exec).allowed() != check(&static_ppo, &x.exec).allowed())
        .count();
    println!(
        "static-ppo ablation: {} of {} candidates change verdict (paper: 24 tests of 8117)",
        drift,
        cands.len()
    );

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    g.bench_function("power_full_ppo", |b| {
        b.iter(|| {
            let n: usize =
                cands.iter().filter(|x| check(&full, black_box(&x.exec)).allowed()).count();
            black_box(n)
        })
    });

    g.bench_function("power_static_ppo", |b| {
        b.iter(|| {
            let n: usize =
                cands.iter().filter(|x| check(&static_ppo, black_box(&x.exec)).allowed()).count();
            black_box(n)
        })
    });

    g.bench_function("arm_st_fences_full_vs_lightweight", |b| {
        let full_st = Arm::new(ArmVariant::Proposed);
        let light_st = Arm::with_lightweight_st_fences(ArmVariant::Proposed);
        b.iter(|| {
            let n: usize = cands
                .iter()
                .filter(|x| {
                    check(&full_st, &x.exec).allowed() == check(&light_st, &x.exec).allowed()
                })
                .count();
            black_box(n)
        })
    });

    g.bench_function("cat_interpreter_power", |b| {
        let cat = stock::load(stock::POWER);
        b.iter(|| {
            let n: usize = cands
                .iter()
                .filter(|x| cat.check(black_box(&x.exec)).expect("evaluates").allowed())
                .count();
            black_box(n)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
