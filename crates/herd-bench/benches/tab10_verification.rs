//! Tab X: bounded verification with the axiomatic model inside the tool
//! versus the operational-instrumentation approach. The paper reports the
//! axiomatic encoding two orders of magnitude faster
//! (goto-instrument+CBMC 2511.6s vs CBMC-Power 14.3s over 555 tests).

use criterion::{criterion_group, criterion_main, Criterion};
use herd_bench::power_tests;
use herd_core::arch::Power;
use herd_machine::{verify_axiomatic, verify_operational};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let tests = power_tests();
    let power = Power::new();
    let mut g = c.benchmark_group("tab10_verification");
    g.sample_size(10);

    g.bench_function("axiomatic_encoding", |b| {
        b.iter(|| {
            for t in &tests {
                black_box(verify_axiomatic(t, &power).expect("verifies"));
            }
        })
    });

    g.bench_function("operational_encoding", |b| {
        b.iter(|| {
            for t in &tests {
                black_box(verify_operational(t, &power).expect("verifies"));
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
