//! Per-figure verdict benchmarks: the cost of one herd-style check for
//! each canonical pattern of the paper (Figs 6–20), on the witness
//! executions. This is the "herd processes all 8117 tests in 321 s"
//! granularity of Tab IX, per pattern.

use criterion::{criterion_group, criterion_main, Criterion};
use herd_core::arch::Power;
use herd_core::event::Fence;
use herd_core::fixtures::{self, Device};
use herd_core::model::check;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lwf = Device::Fence(Fence::Lwsync);
    let ff = Device::Fence(Fence::Sync);
    let witnesses = vec![
        ("fig6_coRR", fixtures::co_rr()),
        ("fig7_lb+addrs", fixtures::lb(Device::Addr, Device::Addr)),
        ("fig8_mp+lwsync+addr", fixtures::mp(lwf, Device::Addr)),
        ("fig11_wrc+lwsync+addr", fixtures::wrc(lwf, Device::Addr)),
        ("fig12_isa2+lwsync+addrs", fixtures::isa2(lwf, Device::Addr, Device::Addr)),
        ("fig13_2+2w+lwsyncs", fixtures::two_plus_two_w(lwf, lwf)),
        ("fig14_sb+syncs", fixtures::sb(ff, ff)),
        ("fig15_rwc+syncs", fixtures::rwc(ff, ff)),
        ("fig16_r+lwsync+sync", fixtures::r(lwf, ff)),
        ("fig16_s+lwsync+addr", fixtures::s(lwf, Device::Addr)),
        ("fig19_w+rwc+eieio", fixtures::w_rwc(Device::Fence(Fence::Eieio), Device::Addr, ff)),
        ("fig20_iriw+syncs", fixtures::iriw(ff, ff)),
    ];
    let power = Power::new();
    let mut g = c.benchmark_group("figures");
    for (name, x) in &witnesses {
        g.bench_function(*name, |b| b.iter(|| black_box(check(&power, black_box(x)))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
