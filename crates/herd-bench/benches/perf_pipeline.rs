//! perf_pipeline: the enumeration→check pipeline, eager vs streaming vs
//! pruned (paper, Sec 8.3 / Tab IX).
//!
//! Measures three generations of the hottest path in the repo on the
//! IRIW / 2+2W skeleton family:
//!
//! * **eager** — the seed's generate-then-filter: materialise every
//!   candidate (per-location permutation tables, deep-cloned po/deps/
//!   fences), then check each against the model;
//! * **stream** — lazy odometer enumeration sharing one `Arc`'d core;
//! * **pruned** — streaming with SC-PER-LOCATION subtrees skipped at
//!   generation time (uniproc-first pruning, Sec 8.3).
//!
//! Also measures compiled-vs-tree cat-model checking throughput on the
//! corpus and the scoped-thread corpus simulation split.
//!
//! Usage (the driver `ci.sh` runs the quick mode):
//!
//! ```text
//! cargo bench -p herd-bench --bench perf_pipeline -- [--quick] [--json PATH]
//! ```

use herd_bench::{iriw_scaled, power_tests, two_plus_two_w_scaled};
use herd_core::arch::Power;
use herd_core::enumerate::Skeleton;
use herd_core::model::check;
use herd_litmus::candidates::EnumOptions;
use herd_litmus::corpus;
use herd_litmus::simulate::{simulate_corpus, simulate_with};
use std::time::Instant;

/// Wall-clock of the best of `reps` runs of `f`, in nanoseconds, plus the
/// last result.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (u128, R) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos());
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

struct PipelineRow {
    name: String,
    candidates: usize,
    emitted: usize,
    pruned: usize,
    allowed: usize,
    eager_ns: u128,
    stream_ns: u128,
    pruned_ns: u128,
}

impl PipelineRow {
    fn speedup_stream(&self) -> f64 {
        self.eager_ns as f64 / self.stream_ns.max(1) as f64
    }
    fn speedup_pruned(&self) -> f64 {
        self.eager_ns as f64 / self.pruned_ns.max(1) as f64
    }
    fn pruned_fraction(&self) -> f64 {
        self.pruned as f64 / self.candidates.max(1) as f64
    }
}

fn bench_pipeline(name: &str, sk: &Skeleton, reps: usize) -> PipelineRow {
    let power = Power::new();
    let (eager_ns, eager_allowed) = best_of(reps, || {
        sk.candidates_eager().iter().filter(|x| check(&power, x).allowed()).count()
    });
    let (stream_ns, stream_allowed) =
        best_of(reps, || sk.stream().filter(|x| check(&power, x).allowed()).count());
    let mut emitted = 0;
    let mut pruned = 0;
    let (pruned_ns, pruned_allowed) = best_of(reps, || {
        let mut it = sk.stream_pruned();
        let allowed = it.by_ref().filter(|x| check(&power, x).allowed()).count();
        emitted = it.emitted();
        pruned = it.pruned();
        allowed
    });
    assert_eq!(eager_allowed, stream_allowed, "{name}: streaming changed the verdict");
    assert_eq!(eager_allowed, pruned_allowed, "{name}: pruning changed the verdict");
    let candidates = sk.candidate_count();
    assert_eq!(emitted + pruned, candidates, "{name}: pruning accounting is exact");
    PipelineRow {
        name: name.to_owned(),
        candidates,
        emitted,
        pruned,
        allowed: eager_allowed,
        eager_ns,
        stream_ns,
        pruned_ns,
    }
}

struct ModelRow {
    model: String,
    execs: usize,
    tree_ns: u128,
    compiled_ns: u128,
}

impl ModelRow {
    fn speedup(&self) -> f64 {
        self.tree_ns as f64 / self.compiled_ns.max(1) as f64
    }
    fn checks_per_sec(&self) -> f64 {
        self.execs as f64 / (self.compiled_ns as f64 / 1e9)
    }
}

fn bench_models(reps: usize) -> Vec<ModelRow> {
    let cands = herd_bench::enumerate_all(&power_tests());
    let mut rows = Vec::new();
    for (name, src) in herd_cat::stock::ALL {
        let model = herd_cat::parse(src).expect("stock model parses");
        let compiled = herd_cat::compile(&model).expect("stock model compiles");
        let (tree_ns, tree_allowed) = best_of(reps, || {
            cands.iter().filter(|c| herd_cat::eval_tree(&model, &c.exec).unwrap().allowed()).count()
        });
        let (compiled_ns, compiled_allowed) =
            best_of(reps, || cands.iter().filter(|c| compiled.check(&c.exec).allowed()).count());
        assert_eq!(tree_allowed, compiled_allowed, "{name}: compilation changed the verdict");
        rows.push(ModelRow { model: name.to_owned(), execs: cands.len(), tree_ns, compiled_ns });
    }
    rows
}

struct CorpusRow {
    tests: usize,
    candidates: usize,
    pruned: usize,
    sequential_ns: u128,
    parallel_ns: u128,
    threads: usize,
}

impl CorpusRow {
    fn candidates_per_sec(&self) -> f64 {
        self.candidates as f64 / (self.parallel_ns as f64 / 1e9)
    }
}

fn bench_corpus(reps: usize) -> CorpusRow {
    let mut tests: Vec<_> = corpus::power_corpus().into_iter().map(|e| e.test).collect();
    tests.extend(corpus::arm_corpus().into_iter().map(|e| e.test));
    tests.extend(corpus::x86_corpus().into_iter().map(|e| e.test));
    let power = Power::new();
    let opts = EnumOptions::default();
    let (sequential_ns, _) = best_of(reps, || {
        tests
            .iter()
            .map(|t| simulate_with(t, &power, &opts).expect("corpus simulates").candidates)
            .sum::<usize>()
    });
    let (parallel_ns, outs) =
        best_of(reps, || simulate_corpus(&tests, &power, &opts).expect("corpus simulates"));
    CorpusRow {
        tests: tests.len(),
        candidates: outs.iter().map(|o| o.candidates).sum(),
        pruned: outs.iter().map(|o| o.pruned).sum(),
        sequential_ns,
        parallel_ns,
        threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(
    path: &str,
    mode: &str,
    pipeline: &[PipelineRow],
    models: &[ModelRow],
    corpus: &CorpusRow,
) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"pr\": 2,\n  \"bench\": \"perf_pipeline\",\n");
    j.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    j.push_str("  \"pipeline\": [\n");
    for (i, r) in pipeline.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"candidates\": {}, \"emitted\": {}, \"pruned\": {}, \
             \"pruned_fraction\": {:.4}, \"allowed\": {}, \"eager_ns\": {}, \"stream_ns\": {}, \
             \"pruned_ns\": {}, \"speedup_stream\": {:.2}, \"speedup_pruned\": {:.2}}}{}\n",
            json_escape(&r.name),
            r.candidates,
            r.emitted,
            r.pruned,
            r.pruned_fraction(),
            r.allowed,
            r.eager_ns,
            r.stream_ns,
            r.pruned_ns,
            r.speedup_stream(),
            r.speedup_pruned(),
            if i + 1 < pipeline.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n  \"models\": [\n");
    for (i, r) in models.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"model\": \"{}\", \"execs\": {}, \"tree_ns\": {}, \"compiled_ns\": {}, \
             \"speedup\": {:.2}, \"checks_per_sec\": {:.0}}}{}\n",
            json_escape(&r.model),
            r.execs,
            r.tree_ns,
            r.compiled_ns,
            r.speedup(),
            r.checks_per_sec(),
            if i + 1 < models.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"corpus\": {{\"tests\": {}, \"candidates\": {}, \"pruned\": {}, \
         \"sequential_ns\": {}, \"parallel_ns\": {}, \"threads\": {}, \
         \"candidates_per_sec\": {:.0}}}\n",
        corpus.tests,
        corpus.candidates,
        corpus.pruned,
        corpus.sequential_ns,
        corpus.parallel_ns,
        corpus.threads,
        corpus.candidates_per_sec(),
    ));
    j.push_str("}\n");
    std::fs::write(path, j).expect("write bench JSON");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let reps = if quick { 1 } else { 3 };

    // Same workload set in both modes (so the refreshed BENCH_pr2.json
    // rows stay comparable PR over PR); quick mode only drops repetitions.
    let workloads: Vec<(String, Skeleton)> = vec![
        ("iriw".into(), iriw_scaled(1)),
        ("iriw+2w".into(), iriw_scaled(2)),
        ("2+2w".into(), two_plus_two_w_scaled(1)),
        ("2+2w+2w".into(), two_plus_two_w_scaled(2)),
        ("iriw+3w".into(), iriw_scaled(3)),
    ];

    println!(
        "{:<10} {:>10} {:>8} {:>7} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "test", "cands", "pruned%", "allowed", "eager", "stream", "pruned", "xstream", "xpruned"
    );
    let mut pipeline = Vec::new();
    for (name, sk) in &workloads {
        let row = bench_pipeline(name, sk, reps);
        println!(
            "{:<10} {:>10} {:>7.1}% {:>7} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>7.1}x {:>7.1}x",
            row.name,
            row.candidates,
            100.0 * row.pruned_fraction(),
            row.allowed,
            row.eager_ns as f64 / 1e6,
            row.stream_ns as f64 / 1e6,
            row.pruned_ns as f64 / 1e6,
            row.speedup_stream(),
            row.speedup_pruned(),
        );
        pipeline.push(row);
    }

    println!(
        "\n{:<16} {:>7} {:>12} {:>12} {:>8} {:>14}",
        "model", "execs", "tree", "compiled", "x", "checks/s"
    );
    let models = bench_models(reps);
    for r in &models {
        println!(
            "{:<16} {:>7} {:>10.2}ms {:>10.2}ms {:>7.1}x {:>14.0}",
            r.model,
            r.execs,
            r.tree_ns as f64 / 1e6,
            r.compiled_ns as f64 / 1e6,
            r.speedup(),
            r.checks_per_sec(),
        );
    }

    let corpus = bench_corpus(reps);
    println!(
        "\ncorpus: {} tests, {} candidates ({} pruned), sequential {:.2}ms, \
         parallel {:.2}ms on {} threads ({:.0} candidates/s)",
        corpus.tests,
        corpus.candidates,
        corpus.pruned,
        corpus.sequential_ns as f64 / 1e6,
        corpus.parallel_ns as f64 / 1e6,
        corpus.threads,
        corpus.candidates_per_sec(),
    );

    if let Some(path) = json {
        emit_json(&path, if quick { "quick" } else { "full" }, &pipeline, &models, &corpus);
    }
}
