//! perf_pipeline: the enumeration→check pipeline, eager vs streaming vs
//! pruned (paper, Sec 8.3 / Tab IX).
//!
//! Measures the generations of the hottest path in the repo:
//!
//! * **eager** — the seed's generate-then-filter: materialise every
//!   candidate (per-location permutation tables, deep-cloned po/deps/
//!   fences), then check each against the model;
//! * **stream** — lazy odometer enumeration sharing one `Arc`'d core;
//! * **pruned** — streaming with SC-PER-LOCATION subtrees skipped at
//!   generation time (uniproc-first pruning, Sec 8.3);
//! * **thinair** — the second `-speedcheck` axis on the lb+datas family:
//!   rf subtrees whose partial `hb` is already cyclic die before any
//!   coherence work, on top of uniproc pruning;
//! * **wide** (PR 8) — the same two pruning axes on event universes past
//!   the old 64-event mask ceiling (`lb+68ev` at 2-word rows, `lb+132ev`
//!   at 3-word rows): the per-location graphs must build with no
//!   oversized fallback and thin-air must still cut below the
//!   uniproc-only count, both on multi-word `herd_core::maskrow` rows;
//! * **sharded** — a single test's rf×co space split over scoped threads
//!   by rf-odometer prefix range, with exactly merged counters;
//! * **sched** — the hierarchical work scheduler (`herd_core::sched`) on
//!   the co-heavy `wrc+Nw` family: co-level `WorkUnit`s within single rf
//!   configurations vs the static rf-prefix split, reporting the
//!   load-balance speedups on ≥4 planned workers (the static split can
//!   fill at most 2 of them on `wrc+Nw`) and measured wall-clock when
//!   real cores exist — a 1-core "parallel" time is not reported, same
//!   discipline as the other parallel sections.
//!
//! Also measures compiled-vs-tree cat-model checking throughput on the
//! corpus, the work-stealing corpus simulation split, (**query**) the
//! polynomial single-outcome backend against the full enumeration scan on
//! the scaled families' litmus-level twins — SC/TSO rows gated at ≥10x
//! with zero counted fallbacks — and (**robust**, PR 7) the budget-check
//! overhead: the arena engine armed with a never-firing [`Budget`]
//! (far-future deadline + huge candidate cap + untripped cancel token)
//! against the unbudgeted engine on `iriw+3w` and `wrc+6w`, gated at
//! < 5% overhead — and (**batch**, PR 9) the memoised query layer: a
//! synthetic 100k-row campaign log judged by `decide_log` against
//! row-at-a-time `judge_entry` (gated ≥ 10x), plus the content-addressed
//! verdict cache's warm lookup against the cold uncached decide (gated
//! ≥ 100x per verdict on an expensive `wrc+8w` family) — and
//! (**frontier**, PR 10) conditional saturation past the tractability
//! frontier: the whole checked-in Power and ARM corpus decided through
//! `simulate_decided`, reporting how many queries the ppo envelope
//! settles without enumeration (fallback rate gated ≤ 20%, definitive
//! fraction gated ≥ 80%), plus envelope-vs-pure-fallback probes on
//! `iriw+3w+syncs` and `wrc+6w+po` against a `Power`-delegating baseline
//! stripped of its envelope (gated ≥ 5x).
//!
//! Usage (the driver `ci.sh` runs quick mode with a derived PR number):
//!
//! ```text
//! cargo bench -p herd-bench --bench perf_pipeline -- \
//!     [--quick] [--json PATH] [--pr N] [--gate]
//! ```
//!
//! `--gate` turns the regression thresholds into a hard failure: any
//! heavily-pruning IRIW/2+2W row (pruned fraction ≥ 0.9) below 5x, or any
//! heavily-thin-air row (≥ half the uniproc-kept candidates cyclic)
//! below 2x, exits non-zero.

use herd_bench::{
    iriw_scaled, lb_ballast_scaled, lb_datas_scaled, power_tests, two_plus_two_w_scaled, wrc_scaled,
};
use herd_core::arch::{Arm, ArmVariant, Power, Sc, Tso};
use herd_core::arena::RelArena;
use herd_core::enumerate::{CheckedStats, Skeleton};
use herd_core::event::Fence;
use herd_core::exec::{ExecCore, ExecFrame, Execution};
use herd_core::model::{check, Architecture, ArenaArchRels, PropagationCheck, Verdict};
use herd_core::relation::Relation;
use herd_core::sched::{Budget, CancelToken, PlanOpts, WorkPlan};
use herd_core::uniproc::{EventShape, LocGraphs};
use herd_litmus::candidates::{stream_arch_verdicts, EnumOptions, RegFinal};
use herd_litmus::corpus::{self, Dev, Op, TestBuilder};
use herd_litmus::decide::{decide_outcome, Outcome, QueryStats};
use herd_litmus::isa::Isa;
use herd_litmus::program::{LitmusTest, Prop, Quantifier};
use herd_litmus::simulate::{simulate_corpus, simulate_decided, simulate_with};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Wall-clock of the best of `reps` runs of `f`, in nanoseconds, plus the
/// last result. Fast workloads keep sampling past `reps` until a modest
/// floor of total measurement time is met, so quick mode (one rep) does
/// not gate a family on a single noisy scheduler slice; anything that
/// takes longer than the floor in one run pays nothing extra.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (u128, R) {
    const SAMPLE_FLOOR: Duration = Duration::from_millis(150);
    const MAX_RUNS: usize = 32;
    let mut best = u128::MAX;
    let mut out = None;
    let started = Instant::now();
    let mut runs = 0;
    while runs < reps.max(1) || (started.elapsed() < SAMPLE_FLOOR && runs < MAX_RUNS) {
        let t = Instant::now();
        let r = std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos());
        out = Some(r);
        runs += 1;
    }
    (best, out.expect("at least one rep"))
}

struct PipelineRow {
    name: String,
    candidates: u128,
    emitted: u128,
    pruned: u128,
    allowed: usize,
    eager_ns: u128,
    stream_ns: u128,
    pruned_ns: u128,
    /// The arena-backed checked stream (`Skeleton::check_stream_arena`):
    /// same pruned workload, zero allocations per candidate.
    arena_ns: u128,
}

impl PipelineRow {
    fn speedup_stream(&self) -> f64 {
        self.eager_ns as f64 / self.stream_ns.max(1) as f64
    }
    fn speedup_pruned(&self) -> f64 {
        self.eager_ns as f64 / self.pruned_ns.max(1) as f64
    }
    fn speedup_arena(&self) -> f64 {
        self.eager_ns as f64 / self.arena_ns.max(1) as f64
    }
    /// The arena engine against the PR 3 pruned stream — the per-PR
    /// acceptance figure.
    fn arena_vs_pruned(&self) -> f64 {
        self.pruned_ns as f64 / self.arena_ns.max(1) as f64
    }
    fn pruned_fraction(&self) -> f64 {
        self.pruned as f64 / self.candidates.max(1) as f64
    }
}

fn bench_pipeline(name: &str, sk: &Skeleton, reps: usize) -> PipelineRow {
    let power = Power::new();
    let (eager_ns, eager_allowed) = best_of(reps, || {
        sk.candidates_eager().iter().filter(|x| check(&power, x).allowed()).count()
    });
    let (stream_ns, stream_allowed) =
        best_of(reps, || sk.stream().filter(|x| check(&power, x).allowed()).count());
    let mut emitted = 0;
    let mut pruned = 0;
    let (pruned_ns, pruned_allowed) = best_of(reps, || {
        let mut it = sk.stream_pruned();
        let allowed = it.by_ref().filter(|x| check(&power, x).allowed()).count();
        emitted = it.emitted();
        pruned = it.pruned();
        allowed
    });
    // The arena-backed engine: same pruned semantics, candidates checked
    // in place (no Execution materialisation, no per-candidate allocs).
    let mut arena = RelArena::new(0);
    let (arena_ns, arena_stats) =
        best_of(reps, || sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {}));
    assert_eq!(eager_allowed, stream_allowed, "{name}: streaming changed the verdict");
    assert_eq!(eager_allowed, pruned_allowed, "{name}: pruning changed the verdict");
    assert_eq!(
        arena_stats.allowed, eager_allowed as u128,
        "{name}: the arena engine changed the verdict"
    );
    let candidates = sk.candidate_count().expect("bench skeletons count in u128");
    assert_eq!(emitted + pruned, candidates, "{name}: pruning accounting is exact");
    assert_eq!(
        arena_stats.emitted + arena_stats.pruned,
        candidates,
        "{name}: arena accounting is exact"
    );
    PipelineRow {
        name: name.to_owned(),
        candidates,
        emitted,
        pruned,
        allowed: eager_allowed,
        eager_ns,
        stream_ns,
        pruned_ns,
        arena_ns,
    }
}

struct ThinAirRow {
    name: String,
    candidates: u128,
    /// Candidate executions emitted by uniproc-only pruning.
    emitted_uniproc: u128,
    /// Candidate executions surviving uniproc + thin-air pruning.
    emitted_thinair: u128,
    pruned_thinair: u128,
    allowed: usize,
    uniproc_ns: u128,
    thinair_ns: u128,
}

impl ThinAirRow {
    fn speedup(&self) -> f64 {
        self.uniproc_ns as f64 / self.thinair_ns.max(1) as f64
    }
    /// Fraction of the uniproc-surviving *candidates* that thin air
    /// removes (weighted by each rf configuration's coherence count — on
    /// the lb+datas rings every surviving configuration keeps exactly one
    /// coherence order, so this coincides with the rf-config fraction).
    fn thinair_fraction(&self) -> f64 {
        1.0 - self.emitted_thinair as f64 / self.emitted_uniproc.max(1) as f64
    }
}

fn bench_thinair(name: &str, sk: &Skeleton, reps: usize) -> ThinAirRow {
    let power = Power::new();
    let mut emitted_uniproc = 0;
    let (uniproc_ns, uniproc_allowed) = best_of(reps, || {
        let mut it = sk.stream_pruned();
        let allowed = it.by_ref().filter(|x| check(&power, x).allowed()).count();
        emitted_uniproc = it.emitted();
        allowed
    });
    let mut emitted_thinair = 0;
    let mut pruned_thinair = 0;
    let (thinair_ns, thinair_allowed) = best_of(reps, || {
        let mut it = sk.stream_pruned_for(&power);
        let allowed = it.by_ref().filter(|x| check(&power, x).allowed()).count();
        emitted_thinair = it.emitted();
        pruned_thinair = it.pruned();
        allowed
    });
    assert_eq!(uniproc_allowed, thinair_allowed, "{name}: thin-air pruning changed the verdict");
    let candidates = sk.candidate_count().expect("bench skeletons count in u128");
    assert_eq!(
        emitted_thinair + pruned_thinair,
        candidates,
        "{name}: thin-air accounting is exact"
    );
    assert!(emitted_thinair < emitted_uniproc, "{name}: thin air must actually cut deeper");
    ThinAirRow {
        name: name.to_owned(),
        candidates,
        emitted_uniproc,
        emitted_thinair,
        pruned_thinair,
        allowed: uniproc_allowed,
        uniproc_ns,
        thinair_ns,
    }
}

/// One width-generic row (PR 8): a family whose event universe exceeds
/// the old 64-event mask ceiling, proving both generation-time pruning
/// axes still fire on multi-word rows.
struct WideRow {
    name: String,
    /// Event-universe size (≥ 128 on the headline row).
    events: usize,
    /// `u64` words per reachability/adjacency row.
    words_per_row: usize,
    candidates: u128,
    /// Candidates surviving uniproc-only pruning.
    emitted_uniproc: u128,
    /// Candidates surviving uniproc + thin-air (the arena engine).
    emitted: u128,
    pruned: u128,
    allowed: u128,
    /// Locations past the member cap (must be 0: nothing falls back).
    unpruned_locations: usize,
    uniproc_ns: u128,
    arena_ns: u128,
}

impl WideRow {
    /// Fraction of the uniproc-surviving candidates thin air removes.
    fn thinair_fraction(&self) -> f64 {
        1.0 - self.emitted as f64 / self.emitted_uniproc.max(1) as f64
    }
}

fn bench_wide(name: &str, sk: &Skeleton, reps: usize) -> WideRow {
    let power = Power::new();
    let events = sk.events.len();
    let words_per_row = events.div_ceil(64);
    // Axis 1, uniproc: the per-location graphs must build for every
    // location — no oversized fallback anywhere in the universe.
    let shape: Vec<EventShape> = sk
        .events
        .iter()
        .map(|e| EventShape { dir: e.dir, loc: e.loc, init: e.thread.is_none() })
        .collect();
    let graphs = LocGraphs::new(&shape, &sk.po, power.tolerates_load_load_hazards());
    let unpruned_locations = graphs.oversized().len();
    assert!(
        graphs.oversized().is_empty(),
        "{name}: {} location(s) fell back to unpruned streaming at {events} events",
        unpruned_locations
    );
    let candidates = sk.candidate_count().expect("bench skeletons count in u128");
    let mut emitted_uniproc = 0;
    let (uniproc_ns, _) = best_of(reps, || {
        let mut it = sk.stream_pruned();
        let drained = it.by_ref().count();
        emitted_uniproc = it.emitted();
        assert_eq!(emitted_uniproc, drained as u128, "{name}: uniproc emitted count drifts");
        assert_eq!(emitted_uniproc + it.pruned(), candidates, "{name}: uniproc accounting");
        drained
    });
    // Axis 2, thin air, through the arena engine (which arms the tracker
    // whenever the architecture vouches for a static base — previously
    // impossible past 64 events).
    let mut arena = RelArena::new(0);
    let (arena_ns, stats) =
        best_of(reps, || sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {}));
    assert_eq!(stats.emitted + stats.pruned, candidates, "{name}: arena accounting is exact");
    assert!(
        stats.emitted < emitted_uniproc,
        "{name}: thin air must cut below uniproc-only past 64 events \
         ({} vs {emitted_uniproc})",
        stats.emitted
    );
    WideRow {
        name: name.to_owned(),
        events,
        words_per_row,
        candidates,
        emitted_uniproc,
        emitted: stats.emitted,
        pruned: stats.pruned,
        allowed: stats.allowed,
        unpruned_locations,
        uniproc_ns,
        arena_ns,
    }
}

struct ShardRow {
    name: String,
    candidates: u128,
    workers: usize,
    single_ns: u128,
    /// `None` when only one worker is available: a "parallel" number
    /// measured on one thread would be meaningless, so none is reported.
    sharded_ns: Option<u128>,
}

impl ShardRow {
    fn speedup(&self) -> Option<f64> {
        self.sharded_ns.map(|ns| self.single_ns as f64 / ns.max(1) as f64)
    }
}

fn bench_sharded(name: &str, sk: &Skeleton, reps: usize) -> ShardRow {
    let power = Power::new();
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    let candidates = sk.candidate_count().expect("bench skeletons count in u128");

    let (single_ns, single_allowed) = best_of(reps, || {
        let mut it = sk.stream_pruned_for(&power);
        let allowed = it.by_ref().filter(|x| check(&power, x).allowed()).count();
        assert_eq!(it.emitted() + it.pruned(), candidates, "{name}: single-shard accounting");
        allowed
    });

    // Run the sharded drain at least once (2 shards even on one core) to
    // hold the exact-merge invariant; only time it when >1 worker exists.
    let nshards = workers.max(2);
    let drain = || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nshards)
                .map(|s| {
                    let (sk, power) = (&sk, &power);
                    scope.spawn(move || {
                        let mut it = sk.stream_pruned_for_shard(power, s, nshards);
                        let allowed = it.by_ref().filter(|x| check(power, x).allowed()).count();
                        (allowed, it.emitted(), it.pruned())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .fold((0usize, 0u128, 0u128), |(a, e, p), (a2, e2, p2)| (a + a2, e + e2, p + p2))
        })
    };
    let (sharded_ns, (allowed, emitted, pruned)) = best_of(reps, drain);
    assert_eq!(allowed, single_allowed, "{name}: sharding changed the verdict");
    assert_eq!(emitted + pruned, candidates, "{name}: merged shard counters are exact");

    ShardRow {
        name: name.to_owned(),
        candidates,
        workers,
        single_ns,
        sharded_ns: (workers > 1).then_some(sharded_ns),
    }
}

/// One hierarchical-scheduler row: the co-level work-stealing plan
/// against the static rf-prefix split of the same workload.
struct SchedRow {
    name: String,
    candidates: u128,
    /// Workers the plans are sized for (≥ 4: the co-heavy acceptance
    /// shape), whatever the machine offers.
    plan_workers: usize,
    /// Cores actually available for the measured numbers.
    cores: usize,
    units: usize,
    co_units: usize,
    /// Load-balance speedup of the static rf-prefix split on
    /// `plan_workers` workers: total checks / biggest shard.
    static_speedup: f64,
    /// Load-balance speedup of the stealing plan: total checks / LPT
    /// makespan of the per-unit check counts.
    sched_speedup: f64,
    /// Measured wall-clock (static scoped-thread shards), `None` on one
    /// core — a 1-thread "parallel" number is not a parallel number.
    static_ns: Option<u128>,
    /// Measured wall-clock of the work-stealing executor, same rule.
    sched_ns: Option<u128>,
}

impl SchedRow {
    /// Parallel efficiency of the scheduler plan: balance speedup over
    /// worker count (1.0 = perfectly even units).
    fn efficiency(&self) -> f64 {
        self.sched_speedup / self.plan_workers as f64
    }
    /// How much better the scheduler balances than the static split.
    fn balance_ratio(&self) -> f64 {
        self.sched_speedup / self.static_speedup.max(f64::MIN_POSITIVE)
    }
    fn measured_ratio(&self) -> Option<f64> {
        match (self.static_ns, self.sched_ns) {
            (Some(s), Some(w)) => Some(s as f64 / w.max(1) as f64),
            _ => None,
        }
    }
}

/// A no-op scheduler sink (one per worker).
fn null_sink(_w: usize) -> impl FnMut(&ExecFrame<'_>, &RelArena, Verdict) + Send {
    |_, _, _| {}
}

fn bench_sched(name: &str, sk: &Skeleton, reps: usize) -> SchedRow {
    let power = Power::new();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Plan for at least 4 workers: the shape the co-heavy acceptance
    // figure is defined on; the balance numbers are analytic (exact
    // per-shard / per-unit check counts), so they do not need 4 cores.
    let plan_workers = cores.max(4);
    let candidates = sk.candidate_count().expect("bench skeletons count in u128");

    // The static rf-prefix split (the PR 4 scheme): per-shard check
    // counts give its balance; the biggest shard is its makespan.
    let mut arena = RelArena::new(0);
    let mut shard_emitted = Vec::new();
    let mut whole = CheckedStats::default();
    for s in 0..plan_workers {
        let st =
            sk.check_stream_arena_shard(&power, &mut arena, s, plan_workers, &mut |_, _, _| {});
        shard_emitted.push(st.emitted);
        whole.emitted += st.emitted;
        whole.pruned += st.pruned;
        whole.allowed += st.allowed;
    }
    assert_eq!(whole.emitted + whole.pruned, candidates, "{name}: static shard accounting");

    // The hierarchical plan: per-unit stats give the stealing balance.
    let plan = WorkPlan::for_skeleton(sk, &power, &PlanOpts::for_workers(plan_workers));
    let out = sk.check_stream_sched(&power, &plan, cores, null_sink);
    assert_eq!(out.stats, whole, "{name}: the scheduler changed the workload");

    let static_makespan = shard_emitted.iter().copied().max().unwrap_or(0).max(1);
    // The stealing executor approximates LPT (largest units first, next
    // unit to the first free worker): greedy-assign the exact per-unit
    // check counts to `plan_workers` bins.
    let mut bins = vec![0u128; plan_workers];
    let mut unit_emitted: Vec<u128> = out.unit_stats.iter().map(|s| s.emitted).collect();
    unit_emitted.sort_unstable_by(|a, b| b.cmp(a));
    for e in unit_emitted {
        *bins.iter_mut().min().expect("bins not empty") += e;
    }
    let sched_makespan = bins.iter().copied().max().unwrap_or(0).max(1);
    let static_speedup = whole.emitted as f64 / static_makespan as f64;
    let sched_speedup = whole.emitted as f64 / sched_makespan as f64;

    // Measured wall-clock only with real parallelism.
    let (static_ns, sched_ns) = if cores > 1 {
        let (s_ns, static_emitted) = best_of(reps, || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..cores)
                    .map(|s| {
                        let (sk, power) = (&sk, &power);
                        scope.spawn(move || {
                            let mut arena = RelArena::new(0);
                            sk.check_stream_arena_shard(
                                power,
                                &mut arena,
                                s,
                                cores,
                                &mut |_, _, _| {},
                            )
                            .emitted
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).sum::<u128>()
            })
        });
        let run_plan = WorkPlan::for_skeleton(sk, &power, &PlanOpts::for_workers(cores));
        let (w_ns, sched_emitted) = best_of(reps, || {
            sk.check_stream_sched(&power, &run_plan, cores, null_sink).stats.emitted
        });
        assert_eq!(static_emitted, sched_emitted, "{name}: measured runs disagree");
        (Some(s_ns), Some(w_ns))
    } else {
        (None, None)
    };

    SchedRow {
        name: name.to_owned(),
        candidates,
        plan_workers,
        cores,
        units: plan.len(),
        co_units: plan.co_units(),
        static_speedup,
        sched_speedup,
        static_ns,
        sched_ns,
    }
}

struct ModelRow {
    model: String,
    execs: usize,
    tree_ns: u128,
    compiled_ns: u128,
}

impl ModelRow {
    fn speedup(&self) -> f64 {
        self.tree_ns as f64 / self.compiled_ns.max(1) as f64
    }
    fn checks_per_sec(&self) -> f64 {
        self.execs as f64 / (self.compiled_ns as f64 / 1e9)
    }
}

fn bench_models(reps: usize) -> Vec<ModelRow> {
    let cands = herd_bench::enumerate_all(&power_tests());
    let mut rows = Vec::new();
    for (name, src) in herd_cat::stock::ALL {
        let model = herd_cat::parse(src).expect("stock model parses");
        let compiled = herd_cat::compile(&model).expect("stock model compiles");
        let (tree_ns, tree_allowed) = best_of(reps, || {
            cands.iter().filter(|c| herd_cat::eval_tree(&model, &c.exec).unwrap().allowed()).count()
        });
        // One workspace across the whole candidate stream: slots bind
        // builtins by reference and the arena pool amortises to zero
        // allocations per check.
        let mut ws = herd_cat::CatWorkspace::new();
        let (compiled_ns, compiled_allowed) = best_of(reps, || {
            cands.iter().filter(|c| compiled.check_in(&c.exec, &mut ws).allowed()).count()
        });
        assert_eq!(tree_allowed, compiled_allowed, "{name}: compilation changed the verdict");
        rows.push(ModelRow { model: name.to_owned(), execs: cands.len(), tree_ns, compiled_ns });
    }
    rows
}

struct CorpusRow {
    tests: usize,
    candidates: u128,
    pruned: u128,
    sequential_ns: u128,
    /// `None` when only one worker ran (a 1-thread "parallel" figure is
    /// not a parallel figure).
    parallel_ns: Option<u128>,
    workers: usize,
}

impl CorpusRow {
    fn candidates_per_sec(&self) -> f64 {
        let ns = self.parallel_ns.unwrap_or(self.sequential_ns);
        self.candidates as f64 / (ns as f64 / 1e9)
    }
}

fn bench_corpus(reps: usize) -> CorpusRow {
    let mut tests: Vec<_> = corpus::power_corpus().into_iter().map(|e| e.test).collect();
    tests.extend(corpus::arm_corpus().into_iter().map(|e| e.test));
    tests.extend(corpus::x86_corpus().into_iter().map(|e| e.test));
    let power = Power::new();
    let opts = EnumOptions::default();
    let (sequential_ns, (candidates, pruned)) = best_of(reps, || {
        tests
            .iter()
            .map(|t| {
                let o = simulate_with(t, &power, &opts).expect("corpus simulates");
                (o.candidates, o.pruned)
            })
            .fold((0u128, 0u128), |(c, p), (c2, p2)| (c + c2, p + p2))
    });
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(tests.len());
    let parallel_ns = (workers > 1).then(|| {
        best_of(reps, || {
            let out = simulate_corpus(&tests, &power, &opts).expect("corpus simulates");
            assert!(out.is_complete(), "bench corpus must simulate with no lost units");
            out
        })
        .0
    });
    CorpusRow { tests: tests.len(), candidates, pruned, sequential_ns, parallel_ns, workers }
}

/// One budget-overhead row: the arena engine with no budget against the
/// budgeted engine armed with a budget that never fires (far-future
/// deadline, `u128::MAX` candidate cap, untripped cancel token) — the
/// pure cost of the per-candidate robustness checks on a run that never
/// needs them.
struct RobustRow {
    name: String,
    candidates: u128,
    plain_ns: u128,
    budgeted_ns: u128,
}

impl RobustRow {
    /// `budgeted / plain`: 1.00 = free, 1.05 = the 5% gate.
    fn overhead(&self) -> f64 {
        self.budgeted_ns as f64 / self.plain_ns.max(1) as f64
    }
}

fn bench_robust(name: &str, sk: &Skeleton, reps: usize) -> RobustRow {
    // The gate is a ratio of two close timings: quick mode's single rep
    // is far too noisy for it, and even back-to-back best-of loops pick
    // up frequency drift between the two engines. Take many samples,
    // alternating engines within each round so drift cancels, and gate
    // on the per-engine minima.
    let rounds = reps.max(12);
    let power = Power::new();
    let mut arena = RelArena::new(0);
    let budget = Budget::unlimited()
        .with_timeout(Duration::from_secs(86_400))
        .with_max_candidates(u128::MAX)
        .with_cancel(CancelToken::new());
    let mut plain_ns = u128::MAX;
    let mut budgeted_ns = u128::MAX;
    let mut plain_stats = None;
    let mut budgeted_stats = None;
    for _ in 0..rounds {
        let (ns, stats) =
            best_of(1, || sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {}));
        plain_ns = plain_ns.min(ns);
        plain_stats = Some(stats);
        let (ns, stats) = best_of(1, || {
            sk.check_stream_arena_budgeted(&power, &mut arena, &budget, &mut |_, _, _| {})
        });
        budgeted_ns = budgeted_ns.min(ns);
        budgeted_stats = Some(stats);
    }
    let plain_stats = plain_stats.expect("at least one round");
    let budgeted_stats = budgeted_stats.expect("at least one round");
    assert!(budgeted_stats.stopped.is_none(), "{name}: the never-firing budget fired");
    assert_eq!(budgeted_stats.remaining, 0, "{name}: the budgeted run must complete");
    assert_eq!(
        (budgeted_stats.emitted, budgeted_stats.pruned, budgeted_stats.allowed),
        (plain_stats.emitted, plain_stats.pruned, plain_stats.allowed),
        "{name}: the budget changed the verdict"
    );
    let candidates = sk.candidate_count().expect("bench skeletons count in u128");
    RobustRow { name: name.to_owned(), candidates, plain_ns, budgeted_ns }
}

/// One single-outcome query row: the polynomial backend against the full
/// streamed-enumeration scan answering the same "is this final state
/// allowed?" question.
struct QueryRow {
    /// `family/outcome` label.
    name: String,
    arch: String,
    allowed: bool,
    /// Full scan over `stream_arch_verdicts` (generation-time pruning
    /// included) looking for an allowed candidate matching the outcome.
    enum_ns: u128,
    /// `decide_outcome` through the consistency backend.
    backend_ns: u128,
    /// rf configurations of the whole space vs the ones the backend's
    /// register screening actually probed.
    rf_space: u128,
    rf_configs: u64,
    /// Counted enumeration fallbacks (must be 0 on SC/TSO rows).
    fallbacks: usize,
}

impl QueryRow {
    fn speedup(&self) -> f64 {
        self.enum_ns as f64 / self.backend_ns.max(1) as f64
    }
}

/// The litmus-level `iriw+3w` family (the skeleton benches' `iriw_scaled(3)`
/// with real instruction semantics) plus its classic forbidden outcome:
/// both readers observe the two locations in opposite orders.
fn query_iriw_3w() -> (LitmusTest, Outcome) {
    let test = TestBuilder::new(Isa::X86, "iriw+3w")
        .thread(vec![Op::W("x", 1), Op::W("x", 2), Op::W("x", 3)], vec![Dev::Po, Dev::Po])
        .thread(vec![Op::W("y", 1), Op::W("y", 2), Op::W("y", 3)], vec![Dev::Po, Dev::Po])
        .thread(vec![Op::R("y"), Op::R("x")], vec![Dev::Po])
        .thread(vec![Op::R("x"), Op::R("y")], vec![Dev::Po])
        .condition(Quantifier::Exists, |_| Prop::True);
    let outcome = Outcome {
        regs: BTreeMap::from([
            ((2, herd_litmus::Reg(1)), RegFinal::Int(3)),
            ((2, herd_litmus::Reg(2)), RegFinal::Int(0)),
            ((3, herd_litmus::Reg(1)), RegFinal::Int(3)),
            ((3, herd_litmus::Reg(2)), RegFinal::Int(0)),
        ]),
        mem: BTreeMap::new(),
    };
    (test, outcome)
}

/// The litmus-level `wrc+6w` family (`wrc_scaled(6)`: one contended
/// location with 7 unordered writers) plus an allowed outcome pinning a
/// mid-chain write as coherence-last.
fn query_wrc_6w() -> (LitmusTest, Outcome) {
    let mut b = TestBuilder::new(Isa::X86, "wrc+6w")
        .thread(vec![Op::W("z", 1)], vec![])
        .thread(vec![Op::R("z"), Op::W("x", 1)], vec![Dev::Data]);
    for i in 0..6 {
        b = b.thread(vec![Op::W("x", 2 + i)], vec![]);
    }
    let test = b.condition(Quantifier::Exists, |_| Prop::True);
    let outcome = Outcome {
        regs: BTreeMap::from([((1, herd_litmus::Reg(1)), RegFinal::Int(1))]),
        mem: BTreeMap::from([("x".to_owned(), 5)]),
    };
    (test, outcome)
}

fn bench_query(
    name: &str,
    test: &LitmusTest,
    probe: &Outcome,
    arch: &dyn Architecture,
    reps: usize,
) -> QueryRow {
    let opts = EnumOptions::default();
    let (enum_ns, enum_reachable) = best_of(reps, || {
        let mut hit = false;
        stream_arch_verdicts(test, &opts, arch, &mut |vc| {
            if !hit && vc.verdict.allowed() {
                hit = probe.regs.iter().all(|(k, v)| vc.final_regs.get(k) == Some(v))
                    && probe.mem.iter().all(|(l, v)| vc.final_mem.get(l) == Some(v));
            }
        })
        .expect("query family streams");
        hit
    });
    let (backend_ns, decision) =
        best_of(reps, || decide_outcome(test, arch, &opts, probe).expect("query family decides"));
    assert_eq!(
        decision.allowed,
        enum_reachable,
        "{name} on {}: backend and enumeration disagree",
        arch.name()
    );
    QueryRow {
        name: name.to_owned(),
        arch: arch.name().to_owned(),
        allowed: decision.allowed,
        enum_ns,
        backend_ns,
        rf_space: decision.stats.rf_space,
        rf_configs: decision.stats.rf_configs,
        fallbacks: decision.stats.backend.fallbacks,
    }
}

fn bench_queries(reps: usize) -> Vec<QueryRow> {
    let (iriw, iriw_probe) = query_iriw_3w();
    let (wrc, wrc_probe) = query_wrc_6w();
    let mut rows = Vec::new();
    for arch in [&Sc as &dyn Architecture, &Tso] {
        rows.push(bench_query("iriw+3w/forbidden", &iriw, &iriw_probe, arch, reps));
        rows.push(bench_query("wrc+6w/allowed", &wrc, &wrc_probe, arch, reps));
    }
    rows
}

/// One batched-judging row (PR 9): a synthetic hardware log — ≥100k rows
/// cycling a small distinct-outcome set, the shape of a real Sec 11
/// campaign log — judged through the memoised query layer.
struct BatchRow {
    name: String,
    arch: String,
    /// Total log rows judged.
    rows: usize,
    /// Distinct outcomes in the log.
    distinct: usize,
    /// Row-at-a-time `judge_entry` over the whole log — the pre-PR 9
    /// pathology. `None` on the cache rows (an expensive family at log
    /// scale is exactly the workload nobody should wait for twice).
    perrow_ns: Option<u128>,
    /// One `judge_entries` (`decide_log`) call over the whole log.
    batch_ns: u128,
    /// Uncached single-row decides over the distinct rows: the cold unit
    /// of work a cache miss pays.
    cold_ns: u128,
    /// Warm `judge_log_cached` pass over the whole log (all hits): parse
    /// + fingerprint + shard probe per row.
    warm_ns: u128,
    /// `BatchStats` of the batch call, plus the cache counters after the
    /// warm pass.
    classes: u64,
    saturations: u64,
    reused: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_insertions: u64,
    cache_evictions: u64,
}

impl BatchRow {
    fn batch_speedup(&self) -> Option<f64> {
        self.perrow_ns.map(|p| p as f64 / self.batch_ns.max(1) as f64)
    }
    /// Cold cost of one verdict (a full uncached decide).
    fn cold_row_ns(&self) -> f64 {
        self.cold_ns as f64 / self.distinct.max(1) as f64
    }
    /// Warm cost of one verdict.
    fn warm_row_ns(&self) -> f64 {
        self.warm_ns as f64 / self.rows.max(1) as f64
    }
    /// Per-verdict warm-over-cold speedup of the content-addressed cache.
    fn warm_speedup(&self) -> f64 {
        self.cold_row_ns() / self.warm_row_ns().max(f64::MIN_POSITIVE)
    }
}

fn bench_batch(
    name: &str,
    test: &LitmusTest,
    arch: &dyn Architecture,
    distinct: &[String],
    nrows: usize,
    measure_perrow: bool,
    reps: usize,
) -> BatchRow {
    let log: Vec<String> = (0..nrows).map(|i| distinct[i % distinct.len()].clone()).collect();
    let (batch_ns, (verdicts, stats)) =
        best_of(reps, || herd_hw::judge_entries(test, arch, &log).expect("batch judges"));
    // Differential pin: batch ≡ per-row on every distinct outcome.
    for (i, d) in distinct.iter().enumerate() {
        let single = herd_hw::judge_entry(test, arch, d).expect("row judges");
        assert_eq!(verdicts[i], single, "{name}: batch and per-row disagree on '{d}'");
    }
    let perrow_ns = measure_perrow.then(|| {
        best_of(reps, || {
            log.iter().filter(|s| herd_hw::judge_entry(test, arch, s).expect("row judges")).count()
        })
        .0
    });
    let (cold_ns, _) = best_of(reps, || {
        distinct.iter().filter(|s| herd_hw::judge_entry(test, arch, s).expect("row judges")).count()
    });
    let cache = herd_hw::VerdictCache::new(4096);
    let primed = herd_hw::judge_log_cached(test, arch, &log, &cache).expect("cold pass judges");
    assert_eq!(primed, verdicts, "{name}: the cached path changed a verdict");
    let (warm_ns, warm) =
        best_of(reps, || herd_hw::judge_log_cached(test, arch, &log, &cache).expect("warm judges"));
    assert_eq!(warm, verdicts, "{name}: a warm hit changed a verdict");
    let cs = cache.stats();
    assert_eq!(cs.len as usize, distinct.len(), "{name}: one cache entry per distinct row");
    BatchRow {
        name: name.to_owned(),
        arch: arch.name().to_owned(),
        rows: log.len(),
        distinct: distinct.len(),
        perrow_ns,
        batch_ns,
        cold_ns,
        warm_ns,
        classes: stats.classes,
        saturations: stats.saturations,
        reused: stats.reused,
        cache_hits: cs.hits,
        cache_misses: cs.misses,
        cache_insertions: cs.insertions,
        cache_evictions: cs.evictions,
    }
}

fn bench_batches(reps: usize) -> Vec<BatchRow> {
    const LOG_ROWS: usize = 100_000;
    // The iriw+3w twin: a moderately expensive per-row decide, so the
    // 100k-row per-row scan is measurable (≈ 1s) without being absurd —
    // this row carries the batch-vs-per-row gate.
    let (iriw, _) = query_iriw_3w();
    let mut iriw_states = Vec::new();
    for a in [0i64, 3] {
        for b in [0i64, 3] {
            for c in [0i64, 3] {
                for d in [0i64, 3] {
                    iriw_states.push(format!("2:r1={a}; 2:r2={b}; 3:r1={c}; 3:r2={d}"));
                }
            }
        }
    }
    // A wrc+8w twin: 9 unordered same-location writers make each cold
    // decide an expensive coherence saturation, so the cold-vs-warm
    // contrast is the real cache story — this row carries the
    // warm-lookup gate.
    let mut b = TestBuilder::new(Isa::X86, "wrc+8w")
        .thread(vec![Op::W("z", 1)], vec![])
        .thread(vec![Op::R("z"), Op::W("x", 1)], vec![Dev::Data]);
    for i in 0..8 {
        b = b.thread(vec![Op::W("x", 2 + i)], vec![]);
    }
    let wrc = b.condition(Quantifier::Exists, |_| Prop::True);
    let wrc_states: Vec<String> =
        [(1, 5), (0, 2), (1, 9), (0, 4)].iter().map(|&(r, x)| format!("1:r1={r}; x={x}")).collect();
    vec![
        bench_batch("iriw+3w/100k", &iriw, &Tso, &iriw_states, LOG_ROWS, true, reps),
        bench_batch("wrc+8w/100k", &wrc, &Tso, &wrc_states, LOG_ROWS, false, reps),
    ]
}

/// The pure-counted-fallback baseline for the frontier rows (PR 10): the
/// Power model verbatim, minus its `Tractability::Conditional`
/// declaration and ppo envelope — i.e. exactly the pre-envelope routing,
/// where every Power query takes the enumeration fallback. Delegates
/// every relation to the real model so the two paths answer the same
/// question; only the saturation strategy differs.
struct FallbackPower(Power);

impl Architecture for FallbackPower {
    fn name(&self) -> &str {
        "Power-fallback"
    }
    fn ppo(&self, x: &Execution) -> Relation {
        self.0.ppo(x)
    }
    fn fences(&self, x: &Execution) -> Relation {
        self.0.fences(x)
    }
    fn prop(&self, x: &Execution) -> Relation {
        self.0.prop(x)
    }
    fn tolerates_load_load_hazards(&self) -> bool {
        self.0.tolerates_load_load_hazards()
    }
    fn propagation_check(&self) -> PropagationCheck {
        self.0.propagation_check()
    }
    fn thin_air_fences(&self, core: &ExecCore) -> Relation {
        self.0.thin_air_fences(core)
    }
    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        self.0.thin_air_base(core)
    }
    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        self.0.arch_rels_arena(fx, arena)
    }
}

/// Corpus-wide conditional-saturation accounting for one architecture
/// (PR 10): every checked-in corpus test's distinct final states decided
/// through `simulate_decided`, with the consistency backend's envelope
/// counters accumulated across the sweep.
struct FrontierCorpusRow {
    arch: String,
    tests: usize,
    queries: usize,
    /// Queries the envelope settled without enumeration (lower-bound
    /// contradiction or exactly-rechecked optimistic witness).
    definitive: usize,
    /// Queries where the bounds genuinely disagreed.
    envelope_fallbacks: usize,
    /// All counted fallbacks (must equal `envelope_fallbacks` here: on a
    /// Conditional model nothing else reaches the fallback).
    fallbacks: usize,
    decide_ns: u128,
}

impl FrontierCorpusRow {
    fn fallback_rate(&self) -> f64 {
        self.fallbacks as f64 / self.queries.max(1) as f64
    }
    fn definitive_fraction(&self) -> f64 {
        self.definitive as f64 / self.queries.max(1) as f64
    }
}

fn bench_frontier_corpus(reps: usize) -> Vec<FrontierCorpusRow> {
    let power_suite: Vec<LitmusTest> = corpus::power_corpus().into_iter().map(|e| e.test).collect();
    let arm_suite: Vec<LitmusTest> = corpus::arm_corpus().into_iter().map(|e| e.test).collect();
    let power = Power::new();
    let arm = Arm::new(ArmVariant::Proposed);
    let opts = EnumOptions::default();
    let mut rows = Vec::new();
    for (suite, arch) in [(&power_suite, &power as &dyn Architecture), (&arm_suite, &arm)] {
        let (decide_ns, stats) = best_of(reps, || {
            let mut stats = QueryStats::default();
            for t in suite.iter() {
                simulate_decided(t, arch, &opts, &mut stats).expect("corpus test decides");
            }
            stats
        });
        assert_eq!(
            stats.backend.fallbacks,
            stats.backend.envelope_fallbacks,
            "{}: a fallback bypassed the envelope on a Conditional model",
            arch.name()
        );
        rows.push(FrontierCorpusRow {
            arch: arch.name().to_owned(),
            tests: suite.len(),
            queries: stats.backend.queries,
            definitive: stats.backend.conditional_definitive,
            envelope_fallbacks: stats.backend.envelope_fallbacks,
            fallbacks: stats.backend.fallbacks,
            decide_ns,
        });
    }
    rows
}

/// One envelope-vs-fallback timing row (PR 10): the same outcome query
/// decided under the real Conditional Power model and under
/// [`FallbackPower`], its pre-envelope twin.
struct FrontierSpeedRow {
    name: String,
    allowed: bool,
    /// `decide_outcome` under the pure-fallback baseline.
    fallback_ns: u128,
    /// `decide_outcome` under the envelope path.
    envelope_ns: u128,
    /// Envelope-settled queries in the envelope run.
    definitive: usize,
    /// Counted fallbacks left in the envelope run.
    residue: usize,
    /// Whether the ≥5x gate applies (the forbidden probes, where the
    /// baseline must exhaust every coherence completion).
    gated: bool,
}

impl FrontierSpeedRow {
    fn speedup(&self) -> f64 {
        self.fallback_ns as f64 / self.envelope_ns.max(1) as f64
    }
}

/// `iriw+3w` with `sync` between each reader's two loads — the classic
/// `iriw+syncs` shape the paper forbids on Power (Fig 20), scaled to 3
/// writes per location. The envelope's frozen lower bound already carries
/// the fences, so the pessimistic pass contradicts on its base check; the
/// fallback baseline grinds through every coherence completion of the
/// 3-write chains (po-loc seeding is part of the saturation path it
/// skipped) before conceding.
fn query_iriw_3w_syncs() -> (LitmusTest, Outcome) {
    let test = TestBuilder::new(Isa::Power, "iriw+3w+syncs")
        .thread(vec![Op::W("x", 1), Op::W("x", 2), Op::W("x", 3)], vec![Dev::Po, Dev::Po])
        .thread(vec![Op::W("y", 1), Op::W("y", 2), Op::W("y", 3)], vec![Dev::Po, Dev::Po])
        .thread(vec![Op::R("y"), Op::R("x")], vec![Dev::F(Fence::Sync)])
        .thread(vec![Op::R("x"), Op::R("y")], vec![Dev::F(Fence::Sync)])
        .condition(Quantifier::Exists, |_| Prop::True);
    let outcome = Outcome {
        regs: BTreeMap::from([
            ((2, herd_litmus::Reg(1)), RegFinal::Int(3)),
            ((2, herd_litmus::Reg(2)), RegFinal::Int(0)),
            ((3, herd_litmus::Reg(1)), RegFinal::Int(3)),
            ((3, herd_litmus::Reg(2)), RegFinal::Int(0)),
        ]),
        mem: BTreeMap::new(),
    };
    (test, outcome)
}

/// `wrc+6w` with the 6 ballast writes po-ordered on one thread and a
/// probe pinning the po-earliest of them coherence-last — forbidden by
/// SC PER LOCATION alone. The envelope path's po-loc write seeding makes
/// the forced order cyclic, so the frozen base check contradicts
/// immediately; the fallback baseline (no seeding) enumerates the
/// remaining writes' 6! completions and checks every one.
fn query_wrc_6w_po() -> (LitmusTest, Outcome) {
    let test = TestBuilder::new(Isa::Power, "wrc+6w+po")
        .thread(vec![Op::W("z", 1)], vec![])
        .thread(vec![Op::R("z"), Op::W("x", 1)], vec![Dev::Data])
        .thread(
            vec![
                Op::W("x", 2),
                Op::W("x", 3),
                Op::W("x", 4),
                Op::W("x", 5),
                Op::W("x", 6),
                Op::W("x", 7),
            ],
            vec![Dev::Po; 5],
        )
        .condition(Quantifier::Exists, |_| Prop::True);
    let outcome = Outcome {
        regs: BTreeMap::from([((1, herd_litmus::Reg(1)), RegFinal::Int(1))]),
        mem: BTreeMap::from([("x".to_owned(), 2)]),
    };
    (test, outcome)
}

fn bench_frontier_speed(
    name: &str,
    test: &LitmusTest,
    probe: &Outcome,
    gated: bool,
    reps: usize,
) -> FrontierSpeedRow {
    let opts = EnumOptions::default();
    let power = Power::new();
    let baseline = FallbackPower(Power::new());
    let (fallback_ns, base) =
        best_of(reps, || decide_outcome(test, &baseline, &opts, probe).expect("baseline decides"));
    let (envelope_ns, decision) =
        best_of(reps, || decide_outcome(test, &power, &opts, probe).expect("envelope decides"));
    // Differential pin: the envelope never changes an answer, and the
    // baseline really took the enumeration road.
    assert_eq!(decision.allowed, base.allowed, "{name}: envelope changed the verdict");
    assert!(base.stats.backend.fallbacks > 0, "{name}: the baseline never fell back");
    assert_eq!(
        base.stats.backend.conditional_definitive, 0,
        "{name}: the baseline has no envelope"
    );
    FrontierSpeedRow {
        name: name.to_owned(),
        allowed: decision.allowed,
        fallback_ns,
        envelope_ns,
        definitive: decision.stats.backend.conditional_definitive,
        residue: decision.stats.backend.fallbacks,
        gated,
    }
}

fn bench_frontier_speeds(reps: usize) -> Vec<FrontierSpeedRow> {
    let (iriw_syncs, iriw_syncs_probe) = query_iriw_3w_syncs();
    let (wrc_po, wrc_po_probe) = query_wrc_6w_po();
    vec![
        bench_frontier_speed("iriw+3w+syncs/forbidden", &iriw_syncs, &iriw_syncs_probe, true, reps),
        bench_frontier_speed("wrc+6w+po/forbidden", &wrc_po, &wrc_po_probe, true, reps),
    ]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_opt(v: Option<u128>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| x.to_string())
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    pr: u64,
    mode: &str,
    pipeline: &[PipelineRow],
    thinair: &[ThinAirRow],
    wide: &[WideRow],
    sharded: &ShardRow,
    sched: &[SchedRow],
    models: &[ModelRow],
    corpus: &CorpusRow,
    queries: &[QueryRow],
    robust: &[RobustRow],
    batch: &[BatchRow],
    frontier_corpus: &[FrontierCorpusRow],
    frontier_speed: &[FrontierSpeedRow],
) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"pr\": {pr},\n  \"bench\": \"perf_pipeline\",\n"));
    j.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    j.push_str("  \"pipeline\": [\n");
    for (i, r) in pipeline.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"candidates\": {}, \"emitted\": {}, \"pruned\": {}, \
             \"pruned_fraction\": {:.4}, \"allowed\": {}, \"eager_ns\": {}, \"stream_ns\": {}, \
             \"pruned_ns\": {}, \"arena_ns\": {}, \"speedup_stream\": {:.2}, \
             \"speedup_pruned\": {:.2}, \"speedup_arena\": {:.2}, \"arena_vs_pruned\": {:.2}}}{}\n",
            json_escape(&r.name),
            r.candidates,
            r.emitted,
            r.pruned,
            r.pruned_fraction(),
            r.allowed,
            r.eager_ns,
            r.stream_ns,
            r.pruned_ns,
            r.arena_ns,
            r.speedup_stream(),
            r.speedup_pruned(),
            r.speedup_arena(),
            r.arena_vs_pruned(),
            if i + 1 < pipeline.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n  \"thinair\": [\n");
    for (i, r) in thinair.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"candidates\": {}, \"emitted_uniproc\": {}, \
             \"emitted_thinair\": {}, \"pruned_thinair\": {}, \"thinair_fraction\": {:.4}, \
             \"allowed\": {}, \"uniproc_ns\": {}, \"thinair_ns\": {}, \
             \"speedup_thinair\": {:.2}}}{}\n",
            json_escape(&r.name),
            r.candidates,
            r.emitted_uniproc,
            r.emitted_thinair,
            r.pruned_thinair,
            r.thinair_fraction(),
            r.allowed,
            r.uniproc_ns,
            r.thinair_ns,
            r.speedup(),
            if i + 1 < thinair.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    // The width-generic section (PR 8): like "query" and "robust",
    // invisible to the `--compare` parser, so older BENCH files stay
    // comparable. (The wide thin-air families also appear in the
    // "thinair" section above, which compare gates from PR 9 on.)
    j.push_str("  \"wide\": [\n");
    for (i, r) in wide.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"words_per_row\": {}, \
             \"candidates\": {}, \"emitted_uniproc\": {}, \"emitted\": {}, \"pruned\": {}, \
             \"allowed\": {}, \"unpruned_locations\": {}, \"thinair_fraction\": {:.4}, \
             \"uniproc_ns\": {}, \"arena_ns\": {}}}{}\n",
            json_escape(&r.name),
            r.events,
            r.words_per_row,
            r.candidates,
            r.emitted_uniproc,
            r.emitted,
            r.pruned,
            r.allowed,
            r.unpruned_locations,
            r.thinair_fraction(),
            r.uniproc_ns,
            r.arena_ns,
            if i + 1 < wide.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"sharded\": {{\"name\": \"{}\", \"candidates\": {}, \"workers\": {}, \
         \"single_ns\": {}, \"sharded_ns\": {}, \"speedup\": {}}},\n",
        json_escape(&sharded.name),
        sharded.candidates,
        sharded.workers,
        sharded.single_ns,
        json_opt(sharded.sharded_ns),
        sharded.speedup().map_or_else(|| "null".to_owned(), |s| format!("{s:.2}")),
    ));
    j.push_str("  \"sched\": [\n");
    for (i, r) in sched.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"candidates\": {}, \"plan_workers\": {}, \"cores\": {}, \
             \"units\": {}, \"co_units\": {}, \"static_speedup\": {:.2}, \
             \"sched_speedup\": {:.2}, \"efficiency\": {:.3}, \"static_ns\": {}, \
             \"sched_ns\": {}}}{}\n",
            json_escape(&r.name),
            r.candidates,
            r.plan_workers,
            r.cores,
            r.units,
            r.co_units,
            r.static_speedup,
            r.sched_speedup,
            r.efficiency(),
            json_opt(r.static_ns),
            json_opt(r.sched_ns),
            if i + 1 < sched.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"models\": [\n");
    for (i, r) in models.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"model\": \"{}\", \"execs\": {}, \"tree_ns\": {}, \"compiled_ns\": {}, \
             \"speedup\": {:.2}, \"checks_per_sec\": {:.0}}}{}\n",
            json_escape(&r.model),
            r.execs,
            r.tree_ns,
            r.compiled_ns,
            r.speedup(),
            r.checks_per_sec(),
            if i + 1 < models.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    // The single-outcome query section (PR 6): the `--compare` parser
    // only reads the "pipeline" and "thinair" sections, so this addition
    // is compare-safe against every earlier BENCH file.
    j.push_str("  \"query\": [\n");
    for (i, r) in queries.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"arch\": \"{}\", \"allowed\": {}, \"enum_ns\": {}, \
             \"backend_ns\": {}, \"speedup\": {:.2}, \"rf_space\": {}, \"rf_configs\": {}, \
             \"fallbacks\": {}}}{}\n",
            json_escape(&r.name),
            json_escape(&r.arch),
            r.allowed,
            r.enum_ns,
            r.backend_ns,
            r.speedup(),
            r.rf_space,
            r.rf_configs,
            r.fallbacks,
            if i + 1 < queries.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    // The budget-overhead section (PR 7): like "query", invisible to the
    // `--compare` parser, so older BENCH files stay comparable.
    j.push_str("  \"robust\": [\n");
    for (i, r) in robust.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"candidates\": {}, \"plain_ns\": {}, \
             \"budgeted_ns\": {}, \"overhead\": {:.4}}}{}\n",
            json_escape(&r.name),
            r.candidates,
            r.plain_ns,
            r.budgeted_ns,
            r.overhead(),
            if i + 1 < robust.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    // The batched-judging section (PR 9): like "query" and "robust",
    // invisible to the `--compare` parser, so older BENCH files stay
    // comparable.
    j.push_str("  \"batch\": [\n");
    for (i, r) in batch.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"arch\": \"{}\", \"rows\": {}, \"distinct\": {}, \
             \"perrow_ns\": {}, \"batch_ns\": {}, \"batch_speedup\": {}, \"cold_ns\": {}, \
             \"warm_ns\": {}, \"cold_row_ns\": {:.0}, \"warm_row_ns\": {:.0}, \
             \"warm_speedup\": {:.2}, \"classes\": {}, \"saturations\": {}, \"reused\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_insertions\": {}, \
             \"cache_evictions\": {}}}{}\n",
            json_escape(&r.name),
            json_escape(&r.arch),
            r.rows,
            r.distinct,
            json_opt(r.perrow_ns),
            r.batch_ns,
            r.batch_speedup().map_or_else(|| "null".to_owned(), |s| format!("{s:.2}")),
            r.cold_ns,
            r.warm_ns,
            r.cold_row_ns(),
            r.warm_row_ns(),
            r.warm_speedup(),
            r.classes,
            r.saturations,
            r.reused,
            r.cache_hits,
            r.cache_misses,
            r.cache_insertions,
            r.cache_evictions,
            if i + 1 < batch.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    // The conditional-saturation section (PR 10): like "query", "robust"
    // and "batch", invisible to the `--compare` parser, so older BENCH
    // files stay comparable. Records the corpus-wide frontier fallback
    // rate per architecture and the envelope-vs-pure-fallback timings.
    j.push_str("  \"frontier\": [\n");
    for (i, r) in frontier_corpus.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"arch\": \"{}\", \"tests\": {}, \"queries\": {}, \"definitive\": {}, \
             \"envelope_fallbacks\": {}, \"fallbacks\": {}, \"fallback_rate\": {:.4}, \
             \"definitive_fraction\": {:.4}, \"decide_ns\": {}}}{}\n",
            json_escape(&r.arch),
            r.tests,
            r.queries,
            r.definitive,
            r.envelope_fallbacks,
            r.fallbacks,
            r.fallback_rate(),
            r.definitive_fraction(),
            r.decide_ns,
            if i + 1 < frontier_corpus.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"frontier_speed\": [\n");
    for (i, r) in frontier_speed.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"allowed\": {}, \"fallback_ns\": {}, \"envelope_ns\": {}, \
             \"speedup\": {:.2}, \"definitive\": {}, \"residue_fallbacks\": {}, \
             \"gated\": {}}}{}\n",
            json_escape(&r.name),
            r.allowed,
            r.fallback_ns,
            r.envelope_ns,
            r.speedup(),
            r.definitive,
            r.residue,
            r.gated,
            if i + 1 < frontier_speed.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"corpus\": {{\"tests\": {}, \"candidates\": {}, \"pruned\": {}, \
         \"sequential_ns\": {}, \"parallel_ns\": {}, \"workers\": {}, \
         \"candidates_per_sec\": {:.0}}}\n",
        corpus.tests,
        corpus.candidates,
        corpus.pruned,
        corpus.sequential_ns,
        json_opt(corpus.parallel_ns),
        corpus.workers,
        corpus.candidates_per_sec(),
    ));
    j.push_str("}\n");
    std::fs::write(path, j).expect("write bench JSON");
    println!("\nwrote {path}");
}

/// Regression thresholds (ROADMAP): heavily-pruning IRIW/2+2W rows must
/// hold 5x over eager, heavily-cyclic lb+datas rows must hold 2x over
/// uniproc-only pruning, and on co-heavy (co-split) scheduler rows the
/// hierarchical plan must balance ≥1.5x better than the static rf-prefix
/// split — measured wall-clock included whenever ≥4 real cores exist —
/// and a never-firing budget must cost < 5% over the unbudgeted arena
/// engine. The wide rows (PR 8) must keep both pruning axes live past
/// the old 64-event ceiling: no unpruned locations, thin air strictly
/// below the uniproc-only count, and at least one row at ≥ 128 events.
/// The batch rows (PR 9) must hold `decide_log` ≥ 10x over row-at-a-time
/// judging on a ≥ 100k-row log, and some cache row must show a warm
/// verdict lookup ≥ 100x cheaper than the cold decide. The frontier rows
/// (PR 10) must keep the Power/ARM corpus fallback rate ≤ 20% with a
/// definitive fraction ≥ 80%, and the gated envelope-vs-fallback probes
/// must hold ≥ 5x over the pure-enumeration baseline. Returns the
/// violations.
#[allow(clippy::too_many_arguments)]
fn gate_violations(
    pipeline: &[PipelineRow],
    thinair: &[ThinAirRow],
    wide: &[WideRow],
    sched: &[SchedRow],
    queries: &[QueryRow],
    robust: &[RobustRow],
    batch: &[BatchRow],
    frontier_corpus: &[FrontierCorpusRow],
    frontier_speed: &[FrontierSpeedRow],
) -> Vec<String> {
    let mut bad = Vec::new();
    for r in frontier_corpus {
        if r.fallbacks >= r.queries {
            bad.push(format!(
                "frontier {}: every query fell back ({}/{})",
                r.arch, r.fallbacks, r.queries
            ));
        }
        if r.fallback_rate() > 0.20 {
            bad.push(format!(
                "frontier {}: corpus fallback rate {:.1}% (> 20%)",
                r.arch,
                100.0 * r.fallback_rate()
            ));
        }
        if r.definitive_fraction() < 0.80 {
            bad.push(format!(
                "frontier {}: envelope settled only {:.1}% of queries (< 80%)",
                r.arch,
                100.0 * r.definitive_fraction()
            ));
        }
    }
    for r in frontier_speed {
        if r.gated && r.speedup() < 5.0 {
            bad.push(format!(
                "frontier {}: envelope only {:.2}x over the pure-fallback baseline (< 5x)",
                r.name,
                r.speedup()
            ));
        }
    }
    for r in batch {
        if r.rows < 100_000 {
            bad.push(format!("{}: synthetic log has {} rows (< 100k)", r.name, r.rows));
        }
        if let Some(s) = r.batch_speedup() {
            if s < 10.0 {
                bad.push(format!(
                    "{}: decide_log only {s:.2}x over row-at-a-time judging (< 10x)",
                    r.name
                ));
            }
        }
    }
    if !batch.is_empty() && !batch.iter().any(|r| r.warm_speedup() >= 100.0) {
        bad.push(format!(
            "batch: no row reaches 100x warm-over-cold verdict lookup (best {:.1}x)",
            batch.iter().map(BatchRow::warm_speedup).fold(0.0, f64::max)
        ));
    }
    if !wide.iter().any(|r| r.events >= 128) {
        bad.push("wide: no family reaches 128 events — the ceiling row is missing".to_owned());
    }
    for r in wide {
        if r.unpruned_locations != 0 {
            bad.push(format!(
                "{}: {} location(s) streamed unpruned at {} events",
                r.name, r.unpruned_locations, r.events
            ));
        }
        if r.emitted >= r.emitted_uniproc {
            bad.push(format!(
                "{}: thin air did not cut below uniproc-only ({} vs {}) at {} events",
                r.name, r.emitted, r.emitted_uniproc, r.events
            ));
        }
    }
    for r in robust {
        if r.overhead() >= 1.05 {
            bad.push(format!(
                "{}: budget checks cost {:.1}% over the unbudgeted arena engine (>= 5%)",
                r.name,
                100.0 * (r.overhead() - 1.0)
            ));
        }
    }
    for r in queries {
        // Every query row runs a polynomial-side model (SC/TSO): the
        // backend must beat the full enumeration scan by 10x and never
        // leave the saturation path.
        if r.speedup() < 10.0 {
            bad.push(format!(
                "{} on {}: backend query only {:.2}x over the enumeration scan (< 10x)",
                r.name,
                r.arch,
                r.speedup()
            ));
        }
        if r.fallbacks != 0 {
            bad.push(format!(
                "{} on {}: {} enumeration fallbacks on a polynomial-side model",
                r.name, r.arch, r.fallbacks
            ));
        }
    }
    for r in sched {
        if r.co_units == 0 {
            continue; // rf-heavy control rows: both schemes balance
        }
        if r.balance_ratio() < 1.5 {
            bad.push(format!(
                "{}: scheduler balance {:.2}x static {:.2}x — ratio {:.2} < 1.5 on a co-heavy \
                 workload",
                r.name,
                r.sched_speedup,
                r.static_speedup,
                r.balance_ratio()
            ));
        }
        if r.cores >= 4 {
            if let Some(ratio) = r.measured_ratio() {
                if ratio < 1.5 {
                    bad.push(format!(
                        "{}: measured sched wall-clock only {ratio:.2}x over static sharding on \
                         {} cores (< 1.5x)",
                        r.name, r.cores
                    ));
                }
            }
        }
    }
    for r in pipeline {
        if r.pruned_fraction() >= 0.9 && r.speedup_pruned() < 5.0 {
            bad.push(format!(
                "{}: speedup_pruned {:.2}x < 5x at {:.0}% pruned",
                r.name,
                r.speedup_pruned(),
                100.0 * r.pruned_fraction()
            ));
        }
    }
    for r in thinair {
        if r.thinair_fraction() >= 0.5 && r.speedup() < 2.0 {
            bad.push(format!(
                "{}: speedup_thinair {:.2}x < 2x at {:.0}% of uniproc-kept candidates cyclic",
                r.name,
                r.speedup(),
                100.0 * r.thinair_fraction()
            ));
        }
    }
    bad
}

/// One parsed `BENCH_pr<N>.json`, reduced to what `--compare` consumes.
struct BenchFile {
    pr: u64,
    /// Pipeline rows: `(family, pruned_ns, arena_ns)` — `arena_ns` is
    /// absent in pre-arena files (PR ≤ 3).
    pipeline: Vec<(String, u128, Option<u128>)>,
    /// Thin-air rows: `(family, thinair_ns)`.
    thinair: Vec<(String, u128)>,
}

impl BenchFile {
    /// The family's *effective pruned-stream* time: the arena engine when
    /// the file records one, the pre-arena pruned stream otherwise — the
    /// series the cross-PR regression gate runs on.
    fn effective(&self, family: &str) -> Option<u128> {
        self.pipeline
            .iter()
            .find(|(n, _, _)| n == family)
            .map(|&(_, pruned, arena)| arena.unwrap_or(pruned))
    }

    fn thinair_ns(&self, family: &str) -> Option<u128> {
        self.thinair.iter().find(|(n, _)| n == family).map(|&(_, ns)| ns)
    }
}

/// Extracts `"key": 123` from one emitted JSON line.
fn field_u128(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\": ");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "value"` from one emitted JSON line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// Parses one bench JSON by the line discipline `emit_json` writes (one
/// row object per line, section headers on their own lines) — the same
/// shape every `BENCH_pr*.json` since PR 2 has.
fn parse_bench(path: &std::path::Path) -> Option<BenchFile> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Pipeline,
        Thinair,
    }
    let text = std::fs::read_to_string(path).ok()?;
    let pr = u64::try_from(field_u128(&text, "pr")?).ok()?;
    let mut section = Section::None;
    let mut pipeline = Vec::new();
    let mut thinair = Vec::new();
    for line in text.lines() {
        if line.contains("\"pipeline\": [") {
            section = Section::Pipeline;
            continue;
        }
        if line.contains("\"thinair\": [") {
            section = Section::Thinair;
            continue;
        }
        if line.trim_start().starts_with(']') {
            section = Section::None;
            continue;
        }
        match section {
            Section::Pipeline => {
                if let (Some(name), Some(pruned)) =
                    (field_str(line, "name"), field_u128(line, "pruned_ns"))
                {
                    pipeline.push((name, pruned, field_u128(line, "arena_ns")));
                }
            }
            Section::Thinair => {
                if let (Some(name), Some(ns)) =
                    (field_str(line, "name"), field_u128(line, "thinair_ns"))
                {
                    thinair.push((name, ns));
                }
            }
            Section::None => {}
        }
    }
    Some(BenchFile { pr, pipeline, thinair })
}

/// Cross-PR regression tolerance for the effective pruned-stream series:
/// quick-mode single-rep timings are noisy, so only a slowdown beyond
/// this factor counts as a regression.
const COMPARE_TOLERANCE: f64 = 1.35;

/// `--compare`: reads every `BENCH_pr*.json` in the working directory,
/// prints the per-family speedup trajectory across PRs, and (with
/// `--gate`) fails on an effective pruned-row regression between the two
/// newest files.
fn run_compare(gate: bool) {
    let scan = |dir: &std::path::Path| -> Vec<BenchFile> {
        std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .filter_map(|e| {
                let e = e.ok()?;
                let name = e.file_name().into_string().ok()?;
                (name.starts_with("BENCH_pr") && name.ends_with(".json"))
                    .then(|| parse_bench(&e.path()))
                    .flatten()
            })
            .collect()
    };
    // Cargo runs bench binaries with the package as working directory;
    // the BENCH files live at the workspace root. Try the cwd first (so
    // direct invocations from the root work), then hop up from the
    // manifest.
    let mut files = scan(std::path::Path::new("."));
    if files.is_empty() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            files = scan(&std::path::Path::new(&manifest).join("..").join(".."));
        }
    }
    files.sort_by_key(|f| f.pr);
    if files.is_empty() {
        eprintln!("--compare: no BENCH_pr*.json files found");
        std::process::exit(1);
    }

    // Family order: first appearance across the PR series.
    let mut families: Vec<String> = Vec::new();
    for f in &files {
        for (name, _, _) in &f.pipeline {
            if !families.contains(name) {
                families.push(name.clone());
            }
        }
    }

    println!("perf trajectory — effective pruned-stream time per family (arena engine once");
    println!("a file records one, the pre-arena pruned stream before); ×N is the speedup");
    println!("over the previous PR's file.\n");
    print!("{:<12}", "family");
    for f in &files {
        print!(" {:>16}", format!("PR {}", f.pr));
    }
    println!();
    for family in &families {
        print!("{family:<12}");
        let mut prev: Option<u128> = None;
        for f in &files {
            match f.effective(family) {
                Some(ns) => {
                    let cell = match prev {
                        Some(p) if ns > 0 => {
                            format!(
                                "{:.2}ms {:>5}",
                                ns as f64 / 1e6,
                                format!("×{:.1}", p as f64 / ns as f64)
                            )
                        }
                        _ => format!("{:.2}ms", ns as f64 / 1e6),
                    };
                    print!(" {cell:>16}");
                    prev = Some(ns);
                }
                None => print!(" {:>16}", "—"),
            }
        }
        println!();
    }

    // Thin-air families, same discipline.
    let mut ta_families: Vec<String> = Vec::new();
    for f in &files {
        for (name, _) in &f.thinair {
            if !ta_families.contains(name) {
                ta_families.push(name.clone());
            }
        }
    }
    if !ta_families.is_empty() {
        println!();
        for family in &ta_families {
            print!("{family:<12}");
            let mut prev: Option<u128> = None;
            for f in &files {
                match f.thinair_ns(family) {
                    Some(ns) => {
                        let cell = match prev {
                            Some(p) if ns > 0 => format!(
                                "{:.2}ms {:>5}",
                                ns as f64 / 1e6,
                                format!("×{:.1}", p as f64 / ns as f64)
                            ),
                            _ => format!("{:.2}ms", ns as f64 / 1e6),
                        };
                        print!(" {cell:>16}");
                        prev = Some(ns);
                    }
                    None => print!(" {:>16}", "—"),
                }
            }
            println!();
        }
    }

    // Gate: the newest file must not regress the effective pruned series
    // against its predecessor on any family both record.
    if files.len() < 2 {
        println!("\nonly one data point: nothing to gate against");
        return;
    }
    let (prev, last) = (&files[files.len() - 2], &files[files.len() - 1]);
    let mut violations = Vec::new();
    for family in &families {
        if let (Some(p), Some(l)) = (prev.effective(family), last.effective(family)) {
            if (l as f64) > (p as f64) * COMPARE_TOLERANCE {
                violations.push(format!(
                    "{family}: effective pruned {:.2}ms (PR {}) -> {:.2}ms (PR {}) exceeds the \
                     {COMPARE_TOLERANCE}x tolerance",
                    p as f64 / 1e6,
                    prev.pr,
                    l as f64 / 1e6,
                    last.pr
                ));
            }
        }
    }
    if violations.is_empty() {
        println!("\ncompare gate: PR {} holds every family of PR {}", last.pr, prev.pr);
        return;
    }
    eprintln!("\ncompare gate (PR {} vs PR {}):", last.pr, prev.pr);
    for v in &violations {
        eprintln!("  FAIL {v}");
    }
    if gate {
        std::process::exit(1);
    }
    eprintln!("  (--gate not set: not failing the run)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    if args.iter().any(|a| a == "--compare") {
        run_compare(gate);
        return;
    }
    let json = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let pr: u64 = args
        .iter()
        .position(|a| a == "--pr")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("PR_NUMBER").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let reps = if quick { 1 } else { 3 };

    // Same workload set in both modes (so the refreshed BENCH_pr<N>.json
    // rows stay comparable PR over PR); quick mode only drops repetitions.
    let workloads: Vec<(String, Skeleton)> = vec![
        ("iriw".into(), iriw_scaled(1)),
        ("iriw+2w".into(), iriw_scaled(2)),
        ("2+2w".into(), two_plus_two_w_scaled(1)),
        ("2+2w+2w".into(), two_plus_two_w_scaled(2)),
        ("iriw+3w".into(), iriw_scaled(3)),
        ("wrc+6w".into(), wrc_scaled(6)),
    ];

    println!(
        "{:<10} {:>10} {:>8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>9}",
        "test",
        "cands",
        "pruned%",
        "allowed",
        "eager",
        "stream",
        "pruned",
        "arena",
        "xpruned",
        "xarena",
        "ar/pr"
    );
    let mut pipeline = Vec::new();
    for (name, sk) in &workloads {
        let row = bench_pipeline(name, sk, reps);
        println!(
            "{:<10} {:>10} {:>7.1}% {:>7} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>7.1}x \
             {:>7.1}x {:>8.2}x",
            row.name,
            row.candidates,
            100.0 * row.pruned_fraction(),
            row.allowed,
            row.eager_ns as f64 / 1e6,
            row.stream_ns as f64 / 1e6,
            row.pruned_ns as f64 / 1e6,
            row.arena_ns as f64 / 1e6,
            row.speedup_pruned(),
            row.speedup_arena(),
            row.arena_vs_pruned(),
        );
        pipeline.push(row);
    }

    // The thin-air axis: lb+datas rings whose all-non-init rf choices are
    // hb-cyclic, compared against uniproc-only pruning.
    let ta_workloads: Vec<(String, Skeleton)> = vec![
        ("lb+datas".into(), lb_datas_scaled(3, 2)),
        ("lb+datas+6w".into(), lb_datas_scaled(3, 6)),
        // The width-generic families (PR 8): same thin-air discipline on
        // 2-word and 3-word event universes — these rows join the
        // cross-PR compare series from this file on.
        ("lb+68ev".into(), lb_ballast_scaled(14)),
        ("lb+132ev".into(), lb_ballast_scaled(30)),
    ];
    println!(
        "\n{:<12} {:>16} {:>8} {:>8} {:>12} {:>12} {:>8}",
        "test", "cands", "uni-emit", "ta-emit", "uniproc", "thinair", "xthinair"
    );
    let mut thinair = Vec::new();
    for (name, sk) in &ta_workloads {
        let row = bench_thinair(name, sk, reps);
        println!(
            "{:<12} {:>16} {:>8} {:>8} {:>10.2}ms {:>10.2}ms {:>7.1}x",
            row.name,
            row.candidates,
            row.emitted_uniproc,
            row.emitted_thinair,
            row.uniproc_ns as f64 / 1e6,
            row.thinair_ns as f64 / 1e6,
            row.speedup(),
        );
        thinair.push(row);
    }

    // The width-generic rows: both pruning axes past the 64-event mask
    // ceiling, on the same lb+ballast universes the thin-air table just
    // timed (68 events = 2-word rows, 132 = 3-word).
    let wide_workloads: Vec<(String, Skeleton)> =
        vec![("lb+68ev".into(), lb_ballast_scaled(14)), ("lb+132ev".into(), lb_ballast_scaled(30))];
    println!(
        "\n{:<10} {:>6} {:>5} {:>22} {:>8} {:>8} {:>7} {:>12} {:>12}",
        "wide", "events", "words", "cands", "uni-emit", "emitted", "allowed", "uniproc", "arena"
    );
    let mut wide = Vec::new();
    for (name, sk) in &wide_workloads {
        let row = bench_wide(name, sk, reps);
        println!(
            "{:<10} {:>6} {:>5} {:>22} {:>8} {:>8} {:>7} {:>10.2}ms {:>10.2}ms",
            row.name,
            row.events,
            row.words_per_row,
            row.candidates,
            row.emitted_uniproc,
            row.emitted,
            row.allowed,
            row.uniproc_ns as f64 / 1e6,
            row.arena_ns as f64 / 1e6,
        );
        wide.push(row);
    }

    // Single-test sharding on the biggest pipeline workload.
    let sharded = bench_sharded("iriw+3w", &iriw_scaled(3), reps);
    match sharded.sharded_ns {
        Some(ns) => println!(
            "\nsharded {}: single {:.2}ms, {} shards {:.2}ms ({:.2}x)",
            sharded.name,
            sharded.single_ns as f64 / 1e6,
            sharded.workers,
            ns as f64 / 1e6,
            sharded.speedup().expect("sharded_ns implies a speedup"),
        ),
        None => println!(
            "\nsharded {}: single {:.2}ms; 1 worker available, no parallel number to report",
            sharded.name,
            sharded.single_ns as f64 / 1e6,
        ),
    }

    // The hierarchical scheduler vs the static rf-prefix split: wrc+Nw is
    // the co-heavy family the scheduler exists for (static sharding can
    // fill at most 2 workers there), iriw+3w the rf-heavy control where
    // both schemes balance.
    let sched_rows = vec![
        bench_sched("wrc+6w", &wrc_scaled(6), reps),
        bench_sched("iriw+3w", &iriw_scaled(3), reps),
    ];
    println!(
        "\n{:<10} {:>8} {:>6} {:>9} {:>3} {:>9} {:>9} {:>6}  measured",
        "scheduler", "cands", "units", "co-units", "w", "static-x", "sched-x", "eff"
    );
    for r in &sched_rows {
        let measured = match (r.static_ns, r.sched_ns) {
            (Some(s), Some(w)) => format!(
                "static {:.2}ms / sched {:.2}ms ({:.2}x) on {} cores",
                s as f64 / 1e6,
                w as f64 / 1e6,
                r.measured_ratio().expect("both measured"),
                r.cores
            ),
            _ => "1 core: no wall-clock to report".to_owned(),
        };
        println!(
            "{:<10} {:>8} {:>6} {:>9} {:>3} {:>8.2}x {:>8.2}x {:>6.2}  {measured}",
            r.name,
            r.candidates,
            r.units,
            r.co_units,
            r.plan_workers,
            r.static_speedup,
            r.sched_speedup,
            r.efficiency(),
        );
    }

    println!(
        "\n{:<16} {:>7} {:>12} {:>12} {:>8} {:>14}",
        "model", "execs", "tree", "compiled", "x", "checks/s"
    );
    let models = bench_models(reps);
    for r in &models {
        println!(
            "{:<16} {:>7} {:>10.2}ms {:>10.2}ms {:>7.1}x {:>14.0}",
            r.model,
            r.execs,
            r.tree_ns as f64 / 1e6,
            r.compiled_ns as f64 / 1e6,
            r.speedup(),
            r.checks_per_sec(),
        );
    }

    // Single-outcome queries: the consistency backend against the full
    // enumeration scan, on the scaled families' litmus-level twins.
    let queries = bench_queries(reps);
    println!(
        "\n{:<20} {:<6} {:>8} {:>12} {:>12} {:>8} {:>9} {:>4}",
        "query", "arch", "allowed", "enum", "backend", "x", "rf-space", "rf"
    );
    for r in &queries {
        println!(
            "{:<20} {:<6} {:>8} {:>10.3}ms {:>10.3}ms {:>7.1}x {:>9} {:>4}",
            r.name,
            r.arch,
            r.allowed,
            r.enum_ns as f64 / 1e6,
            r.backend_ns as f64 / 1e6,
            r.speedup(),
            r.rf_space,
            r.rf_configs,
        );
    }

    // Budget-check overhead on the two biggest families: a never-firing
    // budget threaded through the arena engine must be nearly free.
    let robust_rows = vec![
        bench_robust("iriw+3w", &iriw_scaled(3), reps),
        bench_robust("wrc+6w", &wrc_scaled(6), reps),
    ];
    println!(
        "\n{:<10} {:>10} {:>12} {:>12} {:>9}",
        "robust", "cands", "plain", "budgeted", "overhead"
    );
    for r in &robust_rows {
        println!(
            "{:<10} {:>10} {:>10.2}ms {:>10.2}ms {:>+8.1}%",
            r.name,
            r.candidates,
            r.plain_ns as f64 / 1e6,
            r.budgeted_ns as f64 / 1e6,
            100.0 * (r.overhead() - 1.0),
        );
    }

    // Batched log judging + the verdict cache: a synthetic 100k-row
    // campaign log through the memoised query layer.
    let batch_rows = bench_batches(reps);
    println!(
        "\n{:<14} {:<5} {:>7} {:>4} {:>10} {:>10} {:>7} {:>9} {:>9} {:>8} {:>4} {:>4} {:>6}",
        "batch",
        "arch",
        "rows",
        "dis",
        "perrow",
        "batch",
        "xbatch",
        "cold/row",
        "warm/row",
        "xwarm",
        "cls",
        "sat",
        "reuse"
    );
    for r in &batch_rows {
        println!(
            "{:<14} {:<5} {:>7} {:>4} {:>10} {:>8.2}ms {:>7} {:>7.1}µs {:>7.2}µs {:>7.1}x \
             {:>4} {:>4} {:>6}",
            r.name,
            r.arch,
            r.rows,
            r.distinct,
            r.perrow_ns.map_or_else(|| "—".to_owned(), |ns| format!("{:.2}ms", ns as f64 / 1e6)),
            r.batch_ns as f64 / 1e6,
            r.batch_speedup().map_or_else(|| "—".to_owned(), |s| format!("{s:.1}x")),
            r.cold_row_ns() / 1e3,
            r.warm_row_ns() / 1e3,
            r.warm_speedup(),
            r.classes,
            r.saturations,
            r.reused,
        );
    }

    // The tractability frontier (PR 10): conditional saturation on the
    // Power/ARM corpus (how much of the weak-model workload the ppo
    // envelope settles without enumeration) and the envelope-vs-fallback
    // probes against the pre-envelope Power routing.
    let frontier_corpus = bench_frontier_corpus(reps);
    println!(
        "\n{:<18} {:>6} {:>8} {:>11} {:>9} {:>10} {:>9} {:>12}",
        "frontier", "tests", "queries", "definitive", "fallback", "rate", "def%", "decide"
    );
    for r in &frontier_corpus {
        println!(
            "{:<18} {:>6} {:>8} {:>11} {:>9} {:>9.1}% {:>8.1}% {:>10.2}ms",
            r.arch,
            r.tests,
            r.queries,
            r.definitive,
            r.fallbacks,
            100.0 * r.fallback_rate(),
            100.0 * r.definitive_fraction(),
            r.decide_ns as f64 / 1e6,
        );
    }
    let frontier_speed = bench_frontier_speeds(reps);
    println!(
        "\n{:<24} {:>8} {:>12} {:>12} {:>8} {:>11} {:>8}",
        "frontier speed", "allowed", "fallback", "envelope", "x", "definitive", "residue"
    );
    for r in &frontier_speed {
        println!(
            "{:<24} {:>8} {:>10.3}ms {:>10.3}ms {:>7.1}x {:>11} {:>8}",
            r.name,
            r.allowed,
            r.fallback_ns as f64 / 1e6,
            r.envelope_ns as f64 / 1e6,
            r.speedup(),
            r.definitive,
            r.residue,
        );
    }

    let corpus = bench_corpus(reps);
    match corpus.parallel_ns {
        Some(par) => println!(
            "\ncorpus: {} tests, {} candidates ({} pruned), sequential {:.2}ms, \
             parallel {:.2}ms on {} workers ({:.0} candidates/s)",
            corpus.tests,
            corpus.candidates,
            corpus.pruned,
            corpus.sequential_ns as f64 / 1e6,
            par as f64 / 1e6,
            corpus.workers,
            corpus.candidates_per_sec(),
        ),
        None => println!(
            "\ncorpus: {} tests, {} candidates ({} pruned), sequential {:.2}ms on 1 worker \
             ({:.0} candidates/s); no parallel number to report",
            corpus.tests,
            corpus.candidates,
            corpus.pruned,
            corpus.sequential_ns as f64 / 1e6,
            corpus.candidates_per_sec(),
        ),
    }

    if let Some(path) = json {
        emit_json(
            &path,
            pr,
            if quick { "quick" } else { "full" },
            &pipeline,
            &thinair,
            &wide,
            &sharded,
            &sched_rows,
            &models,
            &corpus,
            &queries,
            &robust_rows,
            &batch_rows,
            &frontier_corpus,
            &frontier_speed,
        );
    }

    let violations = gate_violations(
        &pipeline,
        &thinair,
        &wide,
        &sched_rows,
        &queries,
        &robust_rows,
        &batch_rows,
        &frontier_corpus,
        &frontier_speed,
    );
    if !violations.is_empty() {
        eprintln!("\nperf regression gate:");
        for v in &violations {
            eprintln!("  FAIL {v}");
        }
        if gate {
            std::process::exit(1);
        }
        eprintln!("  (--gate not set: not failing the run)");
    }
}
