//! Tabs V/VI/VIII: the hardware-testing campaigns on the simulated
//! machines — invalid/unseen classification against reference models,
//! anomaly counts and violated-axiom classification. The bench measures
//! campaign throughput; the table content itself is printed once at
//! startup (see also `examples/hardware_campaign.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use herd_bench::{arm_tests, power_tests};
use herd_core::arch::{Arm, ArmVariant, Power};
use herd_hw::{arm_machines, campaign, power_machines};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    const RUNS: u64 = 10_000_000_000;
    let ptests = power_tests();
    let atests = arm_tests();

    // Print the Tab V rows once, so bench logs double as the table.
    for m in power_machines() {
        let s = campaign(&m, &ptests, &Power::new(), RUNS, 42).expect("campaign");
        println!("{}", s.table_row());
    }
    for m in arm_machines() {
        let s = campaign(&m, &atests, &Arm::new(ArmVariant::PowerArm), RUNS, 42).expect("campaign");
        println!("{}   classes {:?}", s.table_row(), s.classification);
    }

    let mut g = c.benchmark_group("tab5_campaign");
    g.sample_size(10);
    g.bench_function("power7_full_campaign", |b| {
        let m = &power_machines()[1];
        b.iter(|| black_box(campaign(m, &ptests, &Power::new(), RUNS, 42).expect("campaign")))
    });
    g.bench_function("tegra3_full_campaign", |b| {
        let machines = arm_machines();
        let m = machines.iter().find(|m| m.name == "Tegra3").expect("machine");
        b.iter(|| {
            black_box(
                campaign(m, &atests, &Arm::new(ArmVariant::PowerArm), RUNS, 42).expect("campaign"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
