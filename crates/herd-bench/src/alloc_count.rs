//! A counting global allocator for allocation-freedom smoke tests.
//!
//! The arena-backed relation engine's contract is *zero heap allocations
//! per candidate in the steady state*; benchmarks can only show the
//! symptom (throughput), so `tests/alloc_smoke.rs` pins the cause by
//! installing [`CountingAllocator`] as the global allocator and reading
//! [`allocation_count`] around the hot loop. Behind the `alloc-count`
//! feature because a counting allocator taxes every build that links it.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The system allocator with an allocation-event counter in front.
///
/// Counts `alloc`, `alloc_zeroed` and `realloc` calls (frees are not
/// counted: the contract under test is "no new memory per candidate").
/// Install in a test binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: herd_bench::alloc_count::CountingAllocator =
///     herd_bench::alloc_count::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: delegates verbatim to `System`, which upholds the GlobalAlloc
// contract; the counter is a side effect with no aliasing implications.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocation events since process start (monotone).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
