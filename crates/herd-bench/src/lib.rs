//! # herd-bench — benchmark harness shared helpers
//!
//! Criterion benches live in `benches/`; this library hosts the helpers
//! they share. Each bench target regenerates one table or figure of the
//! paper — see `DESIGN.md` for the index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes.

#![warn(missing_docs)]
// The `alloc-count` feature installs a counting global allocator, whose
// `GlobalAlloc` impl is necessarily `unsafe`; everything else stays
// forbidden.
#![cfg_attr(not(feature = "alloc-count"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-count", deny(unsafe_code))]

#[cfg(feature = "alloc-count")]
pub mod alloc_count;

use herd_core::enumerate::{Skeleton, SkeletonBuilder};
use herd_litmus::candidates::{enumerate, Candidate, EnumOptions};
use herd_litmus::corpus::{self, CorpusEntry};
use herd_litmus::program::LitmusTest;

/// The Power corpus tests (without verdicts).
pub fn power_tests() -> Vec<LitmusTest> {
    corpus::power_corpus().into_iter().map(|e| e.test).collect()
}

/// The ARM corpus tests.
pub fn arm_tests() -> Vec<LitmusTest> {
    corpus::arm_corpus().into_iter().map(|e| e.test).collect()
}

/// The annotated Power corpus.
pub fn power_corpus() -> Vec<CorpusEntry> {
    corpus::power_corpus()
}

/// Pre-enumerated candidates for a set of tests (so benches measure model
/// checking, not enumeration).
pub fn enumerate_all(tests: &[LitmusTest]) -> Vec<Candidate> {
    let opts = EnumOptions::default();
    tests.iter().flat_map(|t| enumerate(t, &opts).expect("corpus tests enumerate")).collect()
}

/// A larger generated corpus (diy cycles of length ≤ 5).
pub fn diy_corpus(cap: usize) -> Vec<LitmusTest> {
    herd_diy::generate_tests(&herd_diy::power_pool(), 5, herd_litmus::isa::Isa::Power, cap)
}

/// The IRIW skeleton scaled up: each writer thread performs `k` coherent
/// writes to its location instead of one, and two reader threads observe
/// both locations (paper, Fig 31 at `k = 1`).
///
/// Scaling `k` blows the data-flow space up factorially — `(k+1)^4` rf
/// choices × `(k!)^2` coherence orders — while `po-loc` pins each writer's
/// coherence order, so uniproc-first pruning collapses the co dimension
/// entirely. This is the family Sec 8.3's generate-and-prune argument is
/// about.
pub fn iriw_scaled(k: usize) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    for i in 0..k {
        b.write(0, "x", i as i64 + 1);
        b.write(1, "y", i as i64 + 1);
    }
    b.read(2, "y");
    b.read(2, "x");
    b.read(3, "x");
    b.read(3, "y");
    b.build()
}

/// The lb+datas ring scaled: `threads` threads, thread `i` reading
/// location `i` and then writing location `i+1 (mod threads)` `writes`
/// times, each write data-dependent on the read — the genuine
/// load-buffering shape of paper Fig 7 / Sec 4.3.
///
/// Every rf configuration in which *all* reads pick a non-init write
/// closes a `data ∪ rfe` cycle, i.e. violates NO THIN AIR whatever the
/// coherence orders do: `writes^threads` of the `(writes+1)^threads` rf
/// subtrees die before any of the `(writes!)^threads` coherence work —
/// the family the thin-air pruning axis (`-speedcheck`'s second cut) is
/// measured on.
pub fn lb_datas_scaled(threads: usize, writes: usize) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    let names: Vec<String> = (0..threads).map(|i| format!("x{i}")).collect();
    let mut reads = Vec::new();
    for t in 0..threads {
        reads.push(b.read(t as u16, &names[t]));
    }
    for t in 0..threads {
        for j in 0..writes {
            let w = b.write(t as u16, &names[(t + 1) % threads], j as i64 + 1);
            b.data(reads[t], w);
        }
    }
    b.build()
}

/// The lb+datas ring of [`lb_datas_scaled`]`(3, 2)` padded with `ballast`
/// extra threads, each performing three po-ordered coherent writes to its
/// own private location — a family whose *event universe* scales far past
/// the old 64-event mask ceiling while its surviving candidate space
/// stays tiny.
///
/// Universe size is `12 + 4 * ballast` events (ring reads + ring writes +
/// ballast writes + one init per location): `ballast = 14` gives 68
/// events (2-word rows), `ballast = 30` gives 132 (3-word rows). The
/// pruning structure is unchanged by the ballast: thin-air kills the
/// `2^3` all-non-init rf subtrees of the ring, and `po-loc` pins every
/// ballast location's `3!` coherence permutations down to exactly one —
/// so both pruning axes must fire *past 64 events* for the family to
/// enumerate in reasonable time. Before width-generic rows, neither did:
/// `ThinAirTracker::new` returned `None` and these events had no
/// thin-air pruning at all.
pub fn lb_ballast_scaled(ballast: usize) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    let names: Vec<String> = (0..3).map(|i| format!("x{i}")).collect();
    let mut reads = Vec::new();
    for t in 0..3u16 {
        reads.push(b.read(t, &names[t as usize]));
    }
    for t in 0..3usize {
        for j in 0..2 {
            let w = b.write(t as u16, &names[(t + 1) % 3], j as i64 + 1);
            b.data(reads[t], w);
        }
    }
    for t in 0..ballast {
        let loc = format!("b{t}");
        for j in 0..3 {
            b.write(3 + t as u16, &loc, j as i64 + 1);
        }
    }
    b.build()
}

/// The co-heavy `wrc+Nw` family: a write-to-read causality chain into a
/// contended location. T0 writes `z`; T1 reads `z` and (data-dependently)
/// writes `x`; `extra` further threads each write `x` once. The rf space
/// is *constant* — two configurations, the lone read's two sources —
/// while `x`'s coherence odometer is `(extra + 1)!` cross-thread orders
/// that no `po-loc` edge pins, so uniproc pruning keeps them all.
///
/// This is the workload whose co space dwarfs its rf space (ROADMAP's
/// "shard within one rf configuration's co odometer"): static rf-prefix
/// sharding can hand out at most 2 non-empty shards whatever the worker
/// count, while the hierarchical scheduler's co-level [`WorkUnit`]s split
/// the `(extra + 1)!` orders evenly across every worker.
///
/// [`WorkUnit`]: herd_core::sched::WorkUnit
pub fn wrc_scaled(extra: usize) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    b.write(0, "z", 1);
    let r = b.read(1, "z");
    let w = b.write(1, "x", 1);
    b.data(r, w);
    for i in 0..extra {
        b.write(2 + i as u16, "x", 2 + i as i64);
    }
    b.build()
}

/// The 2+2W skeleton scaled up: two threads each write both locations `k`
/// times in opposite orders, so every location carries `2k` writes from
/// two threads — `((2k)!)^2` coherence orders of which only the po-loc
/// -respecting interleavings survive pruning.
pub fn two_plus_two_w_scaled(k: usize) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    for i in 0..k {
        b.write(0, "x", 2 * i as i64 + 1);
        b.write(0, "y", 2 * i as i64 + 2);
        b.write(1, "y", 100 + 2 * i as i64 + 1);
        b.write(1, "x", 100 + 2 * i as i64 + 2);
    }
    b.build()
}
