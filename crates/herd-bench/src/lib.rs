//! # herd-bench — benchmark harness shared helpers
//!
//! Criterion benches live in `benches/`; this library hosts the helpers
//! they share. Each bench target regenerates one table or figure of the
//! paper — see `DESIGN.md` for the index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use herd_litmus::candidates::{enumerate, Candidate, EnumOptions};
use herd_litmus::corpus::{self, CorpusEntry};
use herd_litmus::program::LitmusTest;

/// The Power corpus tests (without verdicts).
pub fn power_tests() -> Vec<LitmusTest> {
    corpus::power_corpus().into_iter().map(|e| e.test).collect()
}

/// The ARM corpus tests.
pub fn arm_tests() -> Vec<LitmusTest> {
    corpus::arm_corpus().into_iter().map(|e| e.test).collect()
}

/// The annotated Power corpus.
pub fn power_corpus() -> Vec<CorpusEntry> {
    corpus::power_corpus()
}

/// Pre-enumerated candidates for a set of tests (so benches measure model
/// checking, not enumeration).
pub fn enumerate_all(tests: &[LitmusTest]) -> Vec<Candidate> {
    let opts = EnumOptions::default();
    tests.iter().flat_map(|t| enumerate(t, &opts).expect("corpus tests enumerate")).collect()
}

/// A larger generated corpus (diy cycles of length ≤ 5).
pub fn diy_corpus(cap: usize) -> Vec<LitmusTest> {
    herd_diy::generate_tests(&herd_diy::power_pool(), 5, herd_litmus::isa::Isa::Power, cap)
}
