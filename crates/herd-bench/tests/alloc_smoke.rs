//! Allocation-freedom smoke test for the arena-backed relation engine
//! (run with `cargo test -p herd-bench --features alloc-count --test
//! alloc_smoke`).
//!
//! The engine's contract: once the per-worker [`RelArena`] has warmed to
//! its high-water mark, streaming-and-checking a candidate performs
//! **zero** heap allocations — enumeration state, the witness relations,
//! the Power ppo fixpoint, the axiom temporaries and the pruning
//! machinery all live in reused storage. A counting global allocator
//! turns that claim into an assert on the `iriw+2w` family.
//!
//! [`RelArena`]: herd_core::arena::RelArena
#![cfg(feature = "alloc-count")]

use herd_bench::alloc_count::{allocation_count, CountingAllocator};
use herd_bench::iriw_scaled;
use herd_core::arch::Power;
use herd_core::arena::RelArena;
use std::sync::Mutex;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The counting allocator is process-global, so the two tests must not
/// run on parallel harness threads: one test's warm-up allocations would
/// show up in the other's per-candidate deltas.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn iriw_2w_steady_state_allocates_zero_per_candidate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let sk = iriw_scaled(2);
    let power = Power::new();
    let mut arena = RelArena::new(0);

    // Pre-size the observation buffer so the sink itself cannot allocate.
    let mut counts: Vec<u64> = Vec::with_capacity(4096);
    let stats = sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {
        counts.push(allocation_count());
    });
    assert!(stats.emitted > 16, "iriw+2w must stream a meaningful candidate count");
    assert!(counts.len() < 4096, "observation buffer must not have grown");

    // Warm-up: the first candidates grow the arena pool, the coherence
    // menus and the thin-air level pool to their high-water marks. After
    // a quarter of the stream everything must be steady: the allocation
    // counter may no longer move between candidates.
    let warmup = counts.len() / 4;
    let steady = &counts[warmup..];
    let per_candidate: Vec<u64> = steady.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        per_candidate.iter().all(|&d| d == 0),
        "steady-state candidates allocated: deltas {per_candidate:?}"
    );

    // And the whole steady-state tail together allocated nothing either
    // (guards against allocations between the sampled sink calls).
    assert_eq!(
        steady.first().copied(),
        steady.last().copied(),
        "allocation counter moved across the steady-state window"
    );
}

/// The same engine must also be allocation-free across *rf-scope*
/// boundaries once warm, not just inside one coherence scope: run the
/// whole stream twice and require the second pass to allocate nothing at
/// all (every buffer, menu and arena slot is reused).
#[test]
fn second_pass_over_iriw_2w_allocates_nothing_in_the_arena() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let sk = iriw_scaled(2);
    let power = Power::new();
    let mut arena = RelArena::new(0);
    sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {});
    let high_water = arena.high_water_words();
    sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {});
    assert_eq!(
        arena.high_water_words(),
        high_water,
        "second pass grew the arena past the first pass's high-water mark"
    );
}
