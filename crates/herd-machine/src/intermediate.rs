//! The intermediate operational machine of Fig 30, equivalent to the
//! axiomatic model (Thm 7.1).
//!
//! The machine consumes a path of labels — commit write `c(w)`, write
//! reaches coherence point `cp(w)`, satisfy read `s(w,r)`, commit read
//! `c(w,r)` — and maintains the state `(cw, cpw, sr, cr)`. Here the
//! machine is used to *decide* a given candidate execution: the read-from
//! map fixes the `s`/`c` read labels, and `cp` labels are constrained to
//! follow the candidate's coherence order, so the machine accepts the
//! candidate iff some interleaving of its labels satisfies every rule
//! premise.
//!
//! Two entry points mirror the two directions of the equivalence proof:
//!
//! - [`accepts`] searches all label interleavings (memoised DFS) —
//!   Lemma 7.2's direction is tested by checking that acceptance implies
//!   the axioms hold;
//! - [`Machine::construct_path`] builds the explicit linearisation of
//!   Lemma 7.3's relation `r` from a *valid* axiomatic execution, and
//!   [`Machine::replay`] runs the machine down that path — the executable
//!   content of Lemma 7.3.
//!
//! The machine implements the coRR-extended visibility check (end of
//! Sec 7.1), matching the axiomatic SC PER LOCATION exactly, and requires
//! the standard `acyclic(co ∪ prop)` PROPAGATION axiom (the C++ R-A
//! weakening has no operational counterpart in the paper).

use herd_core::exec::Execution;
use herd_core::model::{ArchRelations, Architecture, PropagationCheck};
use herd_core::relation::Relation;
use std::collections::HashSet;
use std::fmt;

/// A machine label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Label {
    /// `c(w)`: the write becomes available to other threads.
    CommitWrite(usize),
    /// `cp(w)`: the write takes its final coherence position.
    CoherencePoint(usize),
    /// `s(w, r)`: the read binds its value (from its rf source).
    SatisfyRead(usize),
    /// `c(w, r)`: the read becomes irrevocable.
    CommitRead(usize),
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::CommitWrite(w) => write!(f, "c(w{w})"),
            Label::CoherencePoint(w) => write!(f, "cp(w{w})"),
            Label::SatisfyRead(r) => write!(f, "s(r{r})"),
            Label::CommitRead(r) => write!(f, "c(r{r})"),
        }
    }
}

/// The machine specialised to one candidate execution and architecture.
pub struct Machine<'a> {
    exec: &'a Execution,
    /// Program-thread events that need labels (init writes are implicit:
    /// committed and at coherence point from the start).
    writes: Vec<usize>,
    reads: Vec<usize>,
    /// rf source per read id.
    rf_src: Vec<usize>,
    /// `ppo ∪ fences` of the architecture.
    ppo_fences: Relation,
    /// The architecture's `prop`.
    prop: Relation,
    /// `prop; hb*`, for the SR: OBSERVATION premise.
    prop_hb_star: Relation,
    /// The architecture's `fences`.
    fences: Relation,
}

/// Machine state: four bitmasks over event ids (≤ 64 events).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct State {
    cw: u64,
    cpw: u64,
    sr: u64,
    cr: u64,
}

impl State {
    fn contains(mask: u64, e: usize) -> bool {
        mask >> e & 1 == 1
    }
}

impl<'a> Machine<'a> {
    /// Builds the machine for one candidate under one architecture.
    ///
    /// # Panics
    ///
    /// Panics if the execution has more than 64 events (litmus tests are
    /// far smaller) or the architecture uses a non-standard PROPAGATION
    /// check.
    pub fn new<A: Architecture + ?Sized>(exec: &'a Execution, arch: &A) -> Self {
        assert!(exec.len() <= 64, "machine states are 64-bit masks");
        assert_eq!(
            arch.propagation_check(),
            PropagationCheck::Acyclic,
            "the intermediate machine models the standard PROPAGATION axiom"
        );
        let rels = ArchRelations::compute(arch, exec);
        let prop_hb_star = rels.prop.seq(&rels.hb_star);
        let mut rf_src = vec![usize::MAX; exec.len()];
        for (w, r) in exec.rf().iter_pairs() {
            rf_src[r] = w;
        }
        let writes =
            exec.events().iter().filter(|e| e.is_write() && !e.is_init()).map(|e| e.id).collect();
        let reads = exec.events().iter().filter(|e| e.is_read()).map(|e| e.id).collect();
        Machine {
            exec,
            writes,
            reads,
            rf_src,
            ppo_fences: rels.ppo.union(&rels.fences),
            prop: rels.prop,
            prop_hb_star,
            fences: rels.fences,
        }
    }

    fn initial(&self) -> State {
        // Initial writes are committed and at coherence point from the
        // start (they are co-minimal by construction).
        let mut cw = 0u64;
        let mut cpw = 0u64;
        for e in self.exec.events() {
            if e.is_init() {
                cw |= 1 << e.id;
                cpw |= 1 << e.id;
            }
        }
        State { cw, cpw, sr: 0, cr: 0 }
    }

    fn done(&self, st: &State) -> bool {
        self.writes.iter().all(|&w| State::contains(st.cpw, w))
            && self.reads.iter().all(|&r| State::contains(st.cr, r))
    }

    /// All labels enabled in `st`.
    fn enabled(&self, st: &State) -> Vec<Label> {
        let mut out = Vec::new();
        for &w in &self.writes {
            if !State::contains(st.cw, w) && self.can_commit_write(st, w) {
                out.push(Label::CommitWrite(w));
            }
            if State::contains(st.cw, w)
                && !State::contains(st.cpw, w)
                && self.can_reach_coherence_point(st, w)
            {
                out.push(Label::CoherencePoint(w));
            }
        }
        for &r in &self.reads {
            if !State::contains(st.sr, r) && self.can_satisfy_read(st, r) {
                out.push(Label::SatisfyRead(r));
            }
            if State::contains(st.sr, r)
                && !State::contains(st.cr, r)
                && self.can_commit_read(st, r)
            {
                out.push(Label::CommitRead(r));
            }
        }
        out
    }

    /// Has `e`'s "global point" fired — commit for writes, satisfaction
    /// for reads? The propagation order constrains these points: `x` is
    /// prop-before `y` means `x` fires before `y` (cf. the strong
    /// A-cumulativity chains of Sec 4.6, whose endpoints may be reads).
    fn fired(&self, st: &State, e: usize) -> bool {
        if self.exec.event(e).is_read() {
            State::contains(st.sr, e)
        } else {
            State::contains(st.cw, e)
        }
    }

    /// COMMIT WRITE premises (Fig 30). The (CW: PROPAGATION) premise is
    /// generalised to *all* prop successors, reads included: the paper's
    /// write-only statement misses pure-`prop` cycles through reads (e.g.
    /// the sb+syncs and iriw+syncs cycles built by strong A-cumulativity),
    /// which the axiomatic PROPAGATION axiom does reject.
    fn can_commit_write(&self, st: &State, w: usize) -> bool {
        let n = self.exec.len();
        for e in 0..n {
            // (CW: SC PER LOCATION/coWW).
            if State::contains(st.cw, e) && self.exec.po_loc().contains(w, e) {
                return false;
            }
            // (CW: PROPAGATION), generalised.
            if self.prop.contains(w, e) && self.fired(st, e) {
                return false;
            }
            // (CW: fences ∩ WR).
            if State::contains(st.sr, e) && self.fences.contains(w, e) {
                return false;
            }
        }
        true
    }

    /// WRITE REACHES COHERENCE POINT premises, plus agreement with the
    /// candidate's coherence order.
    fn can_reach_coherence_point(&self, st: &State, w: usize) -> bool {
        let n = self.exec.len();
        for e in 0..n {
            // Candidate-co agreement: all co-predecessors first.
            if self.exec.co().contains(e, w) && !State::contains(st.cpw, e) {
                return false;
            }
            // (CPW: po-loc AND cpw ARE IN ACCORD) and (CPW: PROPAGATION).
            if State::contains(st.cpw, e)
                && (self.exec.po_loc().contains(w, e) || self.prop.contains(w, e))
            {
                return false;
            }
        }
        true
    }

    /// SATISFY READ premises.
    fn can_satisfy_read(&self, st: &State, r: usize) -> bool {
        let w = self.rf_src[r];
        // (SR: WRITE IS EITHER LOCAL OR COMMITTED).
        let local = self.exec.po_loc().contains(w, r);
        if !local && !State::contains(st.cw, w) {
            return false;
        }
        let n = self.exec.len();
        for e in 0..n {
            // (SR: PPO/ii0 ∩ RR).
            if State::contains(st.sr, e) && self.ppo_fences.contains(r, e) {
                return false;
            }
            // (SR: PROPAGATION on read sources) — the same generalisation
            // as in COMMIT WRITE, for prop edges whose source is a read.
            if self.prop.contains(r, e) && self.fired(st, e) {
                return false;
            }
        }
        // (SR: OBSERVATION): no w' co-after w with (w', r) ∈ prop; hb*.
        for wp in self.exec.co().succs(w) {
            if self.prop_hb_star.contains(wp, r) {
                return false;
            }
        }
        true
    }

    /// COMMIT READ premises, with the coRR-extended visibility check.
    fn can_commit_read(&self, st: &State, r: usize) -> bool {
        let w = self.rf_src[r];
        if !self.visible(st, w, r) {
            return false;
        }
        let n = self.exec.len();
        for e in 0..n {
            // (CR: PPO/cc0 ∩ RW).
            if State::contains(st.cw, e) && self.ppo_fences.contains(r, e) {
                return false;
            }
            // (CR: PPO/(ci0 ∪ cc0) ∩ RR).
            if State::contains(st.sr, e)
                && e != r
                && self.exec.event(e).is_read()
                && self.ppo_fences.contains(r, e)
            {
                return false;
            }
        }
        true
    }

    /// Is `w` visible to `r` (Sec 7.1)? `w` must lie between the last
    /// po-loc-previous write `wb` and the first po-loc-subsequent write
    /// `wa` of `r`, in coherence; the extension for coRR additionally
    /// rejects a source co-before the source of an already-committed
    /// po-loc-earlier read.
    fn visible(&self, st: &State, w: usize, r: usize) -> bool {
        if self.exec.event(w).loc != self.exec.event(r).loc {
            return false;
        }
        let co = self.exec.co();
        let po_loc = self.exec.po_loc();
        // wb: the last (in program order) write to r's location before r.
        // po-loc pairs live on one thread, so po_index orders them.
        let wb = self
            .exec
            .events()
            .iter()
            .filter(|e| e.is_write() && po_loc.contains(e.id, r))
            .max_by_key(|e| e.po_index)
            .map(|e| e.id);
        if let Some(wb) = wb {
            if w != wb && !co.contains(wb, w) {
                return false;
            }
        }
        // wa: the first (in program order) write to r's location after r.
        let wa = self
            .exec
            .events()
            .iter()
            .filter(|e| e.is_write() && po_loc.contains(r, e.id))
            .min_by_key(|e| e.po_index)
            .map(|e| e.id);
        let local = po_loc.contains(w, r);
        if let Some(wa) = wa {
            if !local && !co.contains(w, wa) {
                return false;
            }
        }
        // coRR extension: no committed po-loc-earlier read took its value
        // from a co-later write.
        for &rp in &self.reads {
            if State::contains(st.cr, rp) && po_loc.contains(rp, r) {
                let wp = self.rf_src[rp];
                if co.contains(w, wp) {
                    return false;
                }
            }
        }
        // ...and symmetrically, no committed po-loc-later read reads from
        // a co-earlier write (commits may happen out of po order).
        for &rp in &self.reads {
            if State::contains(st.cr, rp) && po_loc.contains(r, rp) {
                let wp = self.rf_src[rp];
                if co.contains(wp, w) && wp != w {
                    return false;
                }
            }
        }
        true
    }

    /// Applies `label` to `st` (no premise checks).
    fn apply(&self, st: &State, label: Label) -> State {
        let mut next = *st;
        match label {
            Label::CommitWrite(w) => next.cw |= 1 << w,
            Label::CoherencePoint(w) => next.cpw |= 1 << w,
            Label::SatisfyRead(r) => next.sr |= 1 << r,
            Label::CommitRead(r) => next.cr |= 1 << r,
        }
        next
    }

    /// Does some interleaving of the labels drive the machine to the
    /// final state? Memoised DFS over reachable states.
    pub fn accepts(&self) -> bool {
        let mut seen: HashSet<State> = HashSet::new();
        let mut stack = vec![self.initial()];
        while let Some(st) = stack.pop() {
            if self.done(&st) {
                return true;
            }
            if !seen.insert(st) {
                continue;
            }
            for label in self.enabled(&st) {
                let next = self.apply(&st, label);
                if !seen.contains(&next) {
                    stack.push(next);
                }
            }
        }
        false
    }

    /// Counts reachable states (the operational "state explosion" of
    /// Tab IX — compare with the axiomatic checks' constant footprint).
    pub fn reachable_states(&self) -> usize {
        let mut seen: HashSet<State> = HashSet::new();
        let mut stack = vec![self.initial()];
        while let Some(st) = stack.pop() {
            if !seen.insert(st) {
                continue;
            }
            for label in self.enabled(&st) {
                let next = self.apply(&st, label);
                if !seen.contains(&next) {
                    stack.push(next);
                }
            }
        }
        seen.len()
    }

    /// Replays an explicit label path; `true` iff every step's premises
    /// hold and the final state is complete.
    pub fn replay(&self, path: &[Label]) -> bool {
        let mut st = self.initial();
        for &label in path {
            let ok = match label {
                Label::CommitWrite(w) => {
                    !State::contains(st.cw, w) && self.can_commit_write(&st, w)
                }
                Label::CoherencePoint(w) => {
                    State::contains(st.cw, w)
                        && !State::contains(st.cpw, w)
                        && self.can_reach_coherence_point(&st, w)
                }
                Label::SatisfyRead(r) => {
                    !State::contains(st.sr, r) && self.can_satisfy_read(&st, r)
                }
                Label::CommitRead(r) => {
                    State::contains(st.sr, r)
                        && !State::contains(st.cr, r)
                        && self.can_commit_read(&st, r)
                }
            };
            if !ok {
                return false;
            }
            st = self.apply(&st, label);
        }
        self.done(&st)
    }

    /// Lemma 7.3's construction: linearises the relation `r` over labels
    /// (satisfy-before-commit, commit-before-coherence-point, fences,
    /// external read-from, coherence, preserved program order, propagation,
    /// and the fifo condition of footnote 8). Returns `None` when `r` is
    /// cyclic — which the proof shows cannot happen for an execution valid
    /// in the axiomatic model.
    pub fn construct_path(&self) -> Option<Vec<Label>> {
        // Label indexing: 4 slots per event id.
        let n = self.exec.len();
        let idx = |l: Label| -> usize {
            match l {
                Label::CommitWrite(w) => 4 * w,
                Label::CoherencePoint(w) => 4 * w + 1,
                Label::SatisfyRead(r) => 4 * r + 2,
                Label::CommitRead(r) => 4 * r + 3,
            }
        };
        let mut order = Relation::empty(4 * n);

        for &r in &self.reads {
            order.add(idx(Label::SatisfyRead(r)), idx(Label::CommitRead(r)));
        }
        for &w in &self.writes {
            order.add(idx(Label::CommitWrite(w)), idx(Label::CoherencePoint(w)));
        }
        // Fenced write-read pairs: commit the write before satisfying the
        // read.
        for (a, b) in self.fences.iter_pairs() {
            if self.exec.event(a).is_write() && self.exec.event(b).is_read() {
                order.add(idx(Label::CommitWrite(a)), idx(Label::SatisfyRead(b)));
            }
        }
        // External read-from: commit the write before satisfying the read.
        for (w, r) in self.exec.rfe().iter_pairs() {
            if !self.exec.event(w).is_init() {
                order.add(idx(Label::CommitWrite(w)), idx(Label::SatisfyRead(r)));
            }
        }
        // ppo ∪ fences from a read: commit the read before processing the
        // target.
        for (r, e) in self.ppo_fences.iter_pairs() {
            if self.exec.event(r).is_read() {
                let tgt = if self.exec.event(e).is_read() {
                    idx(Label::SatisfyRead(e))
                } else {
                    idx(Label::CommitWrite(e))
                };
                order.add(idx(Label::CommitRead(r)), tgt);
            }
        }
        // co (plus prop between writes) orders coherence points; prop
        // orders the "firing" labels (satisfy for reads, commit for
        // writes) — matching the machine's (CW/SR/CPW: PROPAGATION)
        // premises. Commits of same-location same-thread writes follow
        // program order (the CW: coWW premise); commits are otherwise free
        // to disagree with co, which is essential: Power allows executions
        // whose commit order must contradict co across threads.
        let fire = |e: usize| -> Option<usize> {
            let ev = self.exec.event(e);
            if ev.is_init() {
                None
            } else if ev.is_read() {
                Some(idx(Label::SatisfyRead(e)))
            } else {
                Some(idx(Label::CommitWrite(e)))
            }
        };
        for (e1, e2) in self.exec.co().iter_pairs() {
            if !self.exec.event(e1).is_init() && !self.exec.event(e2).is_init() {
                order.add(idx(Label::CoherencePoint(e1)), idx(Label::CoherencePoint(e2)));
            }
        }
        for (e1, e2) in self.prop.iter_pairs() {
            let (v1, v2) = (self.exec.event(e1), self.exec.event(e2));
            if v1.is_write() && v2.is_write() && !v1.is_init() && !v2.is_init() {
                order.add(idx(Label::CoherencePoint(e1)), idx(Label::CoherencePoint(e2)));
            }
            if let (Some(f1), Some(f2)) = (fire(e1), fire(e2)) {
                order.add(f1, f2);
            }
        }
        for (w1, w2) in self.exec.po_loc().iter_pairs() {
            if self.exec.event(w1).is_write() && self.exec.event(w2).is_write() {
                order.add(idx(Label::CommitWrite(w1)), idx(Label::CommitWrite(w2)));
            }
        }

        let sorted = order.topo_sort()?;
        let valid: HashSet<usize> = self
            .writes
            .iter()
            .flat_map(|&w| [4 * w, 4 * w + 1])
            .chain(self.reads.iter().flat_map(|&r| [4 * r + 2, 4 * r + 3]))
            .collect();
        Some(
            sorted
                .into_iter()
                .filter(|i| valid.contains(i))
                .map(|i| match i % 4 {
                    0 => Label::CommitWrite(i / 4),
                    1 => Label::CoherencePoint(i / 4),
                    2 => Label::SatisfyRead(i / 4),
                    _ => Label::CommitRead(i / 4),
                })
                .collect(),
        )
    }
}

/// Convenience: does the machine accept the candidate under `arch`?
pub fn accepts<A: Architecture + ?Sized>(exec: &Execution, arch: &A) -> bool {
    Machine::new(exec, arch).accepts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use herd_core::arch::{Power, Sc};
    use herd_core::event::Fence;
    use herd_core::fixtures::{self, Device};
    use herd_core::model::check;

    #[test]
    fn machine_rejects_what_power_forbids() {
        for (name, x) in [
            ("mp+lwsync+addr", fixtures::mp(Device::Fence(Fence::Lwsync), Device::Addr)),
            ("sb+syncs", fixtures::sb(Device::Fence(Fence::Sync), Device::Fence(Fence::Sync))),
            ("lb+addrs", fixtures::lb(Device::Addr, Device::Addr)),
            (
                "2+2w+lwsyncs",
                fixtures::two_plus_two_w(
                    Device::Fence(Fence::Lwsync),
                    Device::Fence(Fence::Lwsync),
                ),
            ),
            ("coWW", fixtures::co_ww()),
            ("coRR", fixtures::co_rr()),
            ("coWR", fixtures::co_wr()),
        ] {
            assert!(!check(&Power::new(), &x).allowed(), "{name} sanity");
            assert!(!accepts(&x, &Power::new()), "{name}: machine must reject");
        }
    }

    #[test]
    fn machine_accepts_what_power_allows() {
        for (name, x) in [
            ("mp", fixtures::mp(Device::None, Device::None)),
            (
                "sb+lwsyncs",
                fixtures::sb(Device::Fence(Fence::Lwsync), Device::Fence(Fence::Lwsync)),
            ),
            (
                "r+lwsync+sync",
                fixtures::r(Device::Fence(Fence::Lwsync), Device::Fence(Fence::Sync)),
            ),
            (
                "iriw+lwsyncs",
                fixtures::iriw(Device::Fence(Fence::Lwsync), Device::Fence(Fence::Lwsync)),
            ),
        ] {
            assert!(check(&Power::new(), &x).allowed(), "{name} sanity");
            assert!(accepts(&x, &Power::new()), "{name}: machine must accept");
        }
    }

    #[test]
    fn constructed_path_replays_for_allowed_executions() {
        let x = fixtures::mp(Device::None, Device::None);
        let m = Machine::new(&x, &Power::new());
        let path = m.construct_path().expect("r is acyclic for allowed executions");
        assert!(m.replay(&path), "Lemma 7.3: the constructed path is accepted");
    }

    #[test]
    fn sc_machine_equals_sc_model_on_fixtures() {
        for x in [
            fixtures::mp(Device::None, Device::None),
            fixtures::sb(Device::None, Device::None),
            fixtures::lb(Device::None, Device::None),
        ] {
            assert_eq!(check(&Sc, &x).allowed(), accepts(&x, &Sc));
        }
    }

    #[test]
    fn reachable_state_count_grows_with_events() {
        let small = fixtures::mp(Device::None, Device::None);
        let big = fixtures::iriw(Device::None, Device::None);
        let m1 = Machine::new(&small, &Power::new()).reachable_states();
        let m2 = Machine::new(&big, &Power::new()).reachable_states();
        assert!(m2 > m1, "more events, more states ({m1} vs {m2})");
    }
}
