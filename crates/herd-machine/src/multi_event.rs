//! A multi-event representation of candidate executions (Sec 2, Sec 8.3).
//!
//! The models of Mador-Haim et al. use *several* events per store — one
//! propagation subevent per thread — mimicking the PLDI machine's
//! transitions. The paper's measurements (Tab IX) attribute an order of
//! magnitude of simulation time to this representational choice alone.
//!
//! This module reproduces the representation: every non-init write `w` is
//! exploded into its base (commit) node plus one propagation node per
//! thread, relations are lifted onto the enlarged universe (external
//! read-from routes through the reader thread's propagation node,
//! coherence orders propagation nodes per thread), and the four axioms are
//! evaluated on the lifted relations. The verdict is provably identical to
//! the single-event check — collapsing every propagation node onto its
//! base write projects any lifted cycle onto a single-event cycle and vice
//! versa — so the comparison isolates exactly the representation cost.

use herd_core::exec::Execution;
use herd_core::model::{ArchRelations, Architecture, Verdict};
use herd_core::relation::Relation;

/// The lifted (multi-event) form of one candidate.
pub struct MultiEventExec {
    /// Number of nodes in the enlarged universe.
    pub nodes: usize,
    /// Lifted communications `co ∪ rf ∪ fr`.
    pub com: Relation,
    /// Lifted `po-loc`.
    pub po_loc: Relation,
    /// Lifted happens-before.
    pub hb: Relation,
    /// Lifted `fre`.
    pub fre: Relation,
    /// Lifted propagation order.
    pub prop: Relation,
    /// Lifted coherence.
    pub co: Relation,
}

/// Explodes `exec` into the multi-event representation under `arch`.
pub fn lift<A: Architecture + ?Sized>(exec: &Execution, arch: &A) -> MultiEventExec {
    let n = exec.len();
    let threads: Vec<u16> = {
        let mut t: Vec<u16> = exec.events().iter().filter_map(|e| e.thread.map(|t| t.0)).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let tcount = threads.len().max(1);
    let writes: Vec<usize> =
        exec.events().iter().filter(|e| e.is_write() && !e.is_init()).map(|e| e.id).collect();
    // Node layout: [0, n) base events, then per non-init write one
    // propagation node per thread.
    let nodes = n + writes.len() * tcount;
    let prop_node = |w: usize, t: u16| -> usize {
        let wi = writes.iter().position(|&x| x == w).expect("write index");
        let ti = threads.iter().position(|&x| x == t).expect("thread index");
        n + wi * tcount + ti
    };

    let rels = ArchRelations::compute(arch, exec);
    let lift_base = |r: &Relation| -> Relation {
        let mut out = Relation::empty(nodes);
        for (a, b) in r.iter_pairs() {
            out.add(a, b);
        }
        out
    };

    // Base-to-propagation skeleton: a write reaches each thread after its
    // base (commit) node.
    let mut skeleton = Relation::empty(nodes);
    for &w in &writes {
        for &t in &threads {
            skeleton.add(w, prop_node(w, t));
        }
    }

    // rf: external edges route through the reader's propagation node;
    // internal (and init) edges stay base-to-base.
    let mut rf = Relation::empty(nodes);
    for (w, r) in exec.rf().iter_pairs() {
        let reader_thread = exec.event(r).thread.expect("reads have threads").0;
        if exec.rfe().contains(w, r) && !exec.event(w).is_init() {
            rf.add(w, prop_node(w, reader_thread));
            rf.add(prop_node(w, reader_thread), r);
        } else {
            rf.add(w, r);
        }
    }

    // co: base order plus per-thread propagation order.
    let mut co = lift_base(exec.co());
    for (w1, w2) in exec.co().iter_pairs() {
        if !exec.event(w1).is_init() && !exec.event(w2).is_init() {
            for &t in &threads {
                co.add(prop_node(w1, t), prop_node(w2, t));
            }
        }
    }

    // fr stays base-to-base (a read overtakes the base write).
    let fr = lift_base(exec.fr());
    let com = co.union(&rf).union(&fr).union(&skeleton);

    let hb = lift_base(&rels.hb).union(&rf).union(&skeleton);
    // prop stays base-to-base: a skeleton hop inside prop would act as a
    // phantom propagation step (fre; skeleton; rf ≠ fre; prop).
    let prop = lift_base(&rels.prop);
    let po_loc = lift_base(exec.po_loc());
    let fre = lift_base(exec.fre());

    MultiEventExec { nodes, com, po_loc, hb, fre, prop, co }
}

/// Runs the four axioms on the lifted representation.
pub fn check_multi<A: Architecture + ?Sized>(exec: &Execution, arch: &A) -> Verdict {
    let m = lift(exec, arch);
    let sc_per_location = m.po_loc.union(&m.com).is_acyclic();
    let no_thin_air = m.hb.is_acyclic();
    let hb_star = m.hb.rtclosure();
    let observation = m.fre.seq(&m.prop).seq(&hb_star).is_irreflexive();
    let propagation = m.co.union(&m.prop).is_acyclic();
    Verdict { sc_per_location, no_thin_air, observation, propagation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herd_core::arch::Power;
    use herd_core::event::Fence;
    use herd_core::fixtures::{self, Device};
    use herd_core::model::check;

    #[test]
    fn multi_event_verdicts_equal_single_event() {
        let lwf = Device::Fence(Fence::Lwsync);
        let ff = Device::Fence(Fence::Sync);
        for x in [
            fixtures::mp(Device::None, Device::None),
            fixtures::mp(lwf, Device::Addr),
            fixtures::sb(ff, ff),
            fixtures::sb(lwf, lwf),
            fixtures::lb(Device::Addr, Device::Addr),
            fixtures::r(lwf, ff),
            fixtures::r(ff, ff),
            fixtures::two_plus_two_w(lwf, lwf),
            fixtures::iriw(ff, ff),
            fixtures::iriw(lwf, lwf),
            fixtures::wrc(lwf, Device::Addr),
            fixtures::co_rr(),
            fixtures::co_wr(),
        ] {
            let single = check(&Power::new(), &x);
            let multi = check_multi(&x, &Power::new());
            assert_eq!(single.allowed(), multi.allowed());
        }
    }

    #[test]
    fn lifted_universe_is_larger() {
        let x = fixtures::iriw(Device::None, Device::None);
        let m = lift(&x, &Power::new());
        assert!(m.nodes > x.len(), "{} > {}", m.nodes, x.len());
        // iriw: 8 program events + 2 init, 2 non-init writes × 4 threads.
        assert_eq!(m.nodes, x.len() + 2 * 4);
    }
}
