//! # herd-machine — operational models and comparisons
//!
//! The operational side of the *Herding Cats* reproduction:
//!
//! - [`intermediate`]: the machine of Fig 30, provably equivalent to the
//!   axiomatic model (Thm 7.1). Both proof directions are executable:
//!   exhaustive acceptance search and the Lemma 7.3 path construction.
//! - [`compare`]: surrogates for the PLDI 2011 operational model (with its
//!   documented flaw on `mp+lwsync+addr-po-detour`) and the CAV 2012
//!   multi-event model (with its `bigdetour` divergence), plus
//!   [`compare_models`] — the streamed comparison that judges both models
//!   per candidate on one shared set of arena relations.
//! - [`multi_event`]: the multi-event *representation* (one propagation
//!   node per thread per write), verdict-preserving, used to measure the
//!   representational cost the paper reports in Tab IX.
//! - [`verify`]: bounded verification in both the axiomatic and the
//!   operational style (Tabs X–XII).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod intermediate;
pub mod multi_event;
pub mod verify;

pub use compare::{compare_models, MadorHaim, ModelComparison, PldiFlawed};
pub use intermediate::{accepts, Label, Machine};
pub use multi_event::check_multi;
pub use verify::{verify_axiomatic, verify_operational, VerifyOutcome};
