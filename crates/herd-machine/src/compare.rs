//! Surrogates for the two prior Power models the paper compares against
//! (Tab I, Sec 8.2).
//!
//! The originals are a large operational machine (Sarkar et al., PLDI
//! 2011) and a multi-event axiomatic model (Mador-Haim et al., CAV 2012);
//! we reproduce the *verdict differences the paper documents* as minimal
//! strengthenings of our Power model, so the comparison experiments
//! (Fig 36, Fig 37, Tab IX) exercise the same divergences:
//!
//! - [`PldiFlawed`] additionally preserves `addr; po` between reads
//!   (read-to-read chains restart reads in the PLDI machine). It therefore
//!   wrongly forbids `mp+lwsync+addr-po-detour`, the behaviour observed on
//!   Power hardware that invalidated the PLDI model
//!   (<http://diy.inria.fr/cats/pldi-power/#lessvs>).
//! - [`MadorHaim`] additionally preserves program order between two reads
//!   when the first reads a write coherence-before a write whose
//!   propagation is fence-ordered into the second read's source (the
//!   per-thread write-propagation subevents of the CAV model enforce this
//!   order). It therefore forbids `mp+lwsync+addr-bigdetour-addr`, the
//!   counter-example to the CAV/PLDI equivalence proof.

use herd_core::arch::Power;
use herd_core::event::Dir;
use herd_core::exec::Execution;
use herd_core::model::Architecture;
use herd_core::relation::Relation;
use herd_litmus::candidates::{self, CandidateError, EnumOptions};
use herd_litmus::program::LitmusTest;
use std::collections::BTreeSet;

/// The streamed divergence report between two models on one test — what
/// the Fig 36/37 comparison experiments aggregate. Produced by
/// [`compare_models`] from the arena verdict stream: both models judge
/// each candidate from one shared set of arena relations in a single
/// enumeration pass (no owned `Execution`, no per-model `check` call).
#[derive(Clone, Debug)]
pub struct ModelComparison {
    /// Test name.
    pub test: String,
    /// Candidates both models judged (post-pruning; pruned candidates are
    /// forbidden by both models' first axiom, so they can never diverge).
    pub checked: u128,
    /// Candidates where the two verdicts disagree.
    pub diverging: u128,
    /// Final states of diverging candidates that `a` allows and `b`
    /// forbids.
    pub only_a: BTreeSet<String>,
    /// Final states of diverging candidates that `b` allows and `a`
    /// forbids.
    pub only_b: BTreeSet<String>,
    /// `Some(n)` when the enumeration was cut by the candidate budget:
    /// `n` candidates were never compared, and the counts above are exact
    /// over the compared prefix only (so `diverging` is a lower bound for
    /// the whole space). `None`: the whole space was compared.
    pub uncompared: Option<u128>,
}

impl ModelComparison {
    /// Do the models agree on every candidate of this test?
    ///
    /// On a partial comparison this speaks only for the compared prefix;
    /// check [`ModelComparison::is_complete`] before treating agreement
    /// as a whole-space statement.
    pub fn agrees(&self) -> bool {
        self.diverging == 0
    }

    /// Was the whole candidate space compared?
    pub fn is_complete(&self) -> bool {
        self.uncompared.is_none()
    }
}

/// Streams the comparison of two models over one test's candidate space:
/// one enumeration pass, both verdicts per candidate computed on shared
/// arena relations ([`candidates::stream_multi_verdicts`]).
///
/// A candidate-budget trip does not discard the comparison: the report
/// degrades to a partial one — every candidate compared before the cut
/// keeps its verdict pair, and [`ModelComparison::uncompared`] records
/// exactly how much of the space was never reached (recovered from the
/// interruption's emitted/pruned accounting plus the exact space count).
///
/// # Errors
///
/// Propagates thread-semantics failures. Budget trips are *not* errors.
pub fn compare_models(
    test: &LitmusTest,
    a: &dyn Architecture,
    b: &dyn Architecture,
    opts: &EnumOptions,
) -> Result<ModelComparison, CandidateError> {
    let mut out = ModelComparison {
        test: test.name.clone(),
        checked: 0,
        diverging: 0,
        only_a: BTreeSet::new(),
        only_b: BTreeSet::new(),
        uncompared: None,
    };
    let streamed = candidates::stream_multi_verdicts(test, opts, &[a, b], &mut |mc| {
        out.checked += 1;
        let (va, vb) = (mc.verdicts[0].allowed(), mc.verdicts[1].allowed());
        if va == vb {
            return;
        }
        out.diverging += 1;
        let state = format!("{:?} {:?}", mc.final_regs, mc.final_mem);
        if va {
            out.only_a.insert(state);
        } else {
            out.only_b.insert(state);
        }
    });
    match streamed {
        Ok(_) => {}
        Err(CandidateError::TooManyCandidates { emitted, pruned, .. }) => {
            let space = candidates::count_candidates(test, opts)?;
            out.uncompared = Some(space.saturating_sub(emitted + pruned));
        }
        Err(e) => return Err(e),
    }
    Ok(out)
}

/// Surrogate for the operational Power model of PLDI 2011 (flawed: too
/// strong on `addr; po` read chains).
#[derive(Clone, Copy, Debug, Default)]
pub struct PldiFlawed {
    inner: Power,
}

impl PldiFlawed {
    /// Builds the surrogate.
    pub fn new() -> Self {
        PldiFlawed { inner: Power::new() }
    }
}

impl Architecture for PldiFlawed {
    fn name(&self) -> &str {
        "Power-PLDI11"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        // The PLDI machine restarts po-later reads when an address
        // dependency feeds an intervening access: addr; po between reads
        // is preserved (our model keeps it commit-to-commit only).
        let extra = x.dir_restrict(&x.deps().addr.seq(x.po()), Some(Dir::R), Some(Dir::R));
        self.inner.ppo(x).union(&extra)
    }

    fn fences(&self, x: &Execution) -> Relation {
        self.inner.fences(x)
    }

    fn prop(&self, x: &Execution) -> Relation {
        // Fig 18's prop, but over this model's (stronger) ppo.
        herd_core::arch::prop_power_arm(x, &self.ppo(x), &self.fences(x), &self.inner.ffence(x))
    }
}

/// Surrogate for the multi-event axiomatic Power model of CAV 2012
/// (stronger than ours on fence-ordered write propagation chains).
#[derive(Clone, Copy, Debug, Default)]
pub struct MadorHaim {
    inner: Power,
}

impl MadorHaim {
    /// Builds the surrogate.
    pub fn new() -> Self {
        MadorHaim { inner: Power::new() }
    }
}

impl Architecture for MadorHaim {
    fn name(&self) -> &str {
        "Power-CAV12"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        // Per-thread propagation subevents order two po-ordered reads when
        // the first overtakes (fre) a write whose propagation is
        // fence-ordered (prop-base) before the second's source (rfe):
        // po ∩ (fre; prop-base; rfe).
        let base_ppo = self.inner.ppo(x);
        let fences = self.inner.fences(x);
        let hb = base_ppo.union(&fences).union(x.rfe());
        let a_cumul = x.rfe().seq(&fences);
        let prop_base = fences.union(&a_cumul).seq(&hb.rtclosure());
        let chain = x.fre().seq(&prop_base).seq(x.rfe());
        base_ppo.union(&x.po().intersect(&chain))
    }

    fn fences(&self, x: &Execution) -> Relation {
        self.inner.fences(x)
    }

    fn prop(&self, x: &Execution) -> Relation {
        herd_core::arch::prop_power_arm(x, &self.ppo(x), &self.fences(x), &self.inner.ffence(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herd_core::model::check;
    use herd_litmus::candidates::{enumerate, EnumOptions};
    use herd_litmus::corpus;
    use herd_litmus::simulate::simulate;

    #[test]
    fn pldi_wrongly_forbids_the_detour_test() {
        let test = corpus::mp_addr_po_detour(herd_litmus::isa::Isa::Power);
        let ours = simulate(&test, &Power::new()).unwrap();
        let pldi = simulate(&test, &PldiFlawed::new()).unwrap();
        assert!(ours.validated, "our model allows the hardware-observed behaviour");
        assert!(!pldi.validated, "the PLDI surrogate forbids it (the documented flaw)");
    }

    #[test]
    fn cav_wrongly_forbids_the_bigdetour_test() {
        let test = corpus::mp_addr_bigdetour_addr(herd_litmus::isa::Isa::Power);
        let ours = simulate(&test, &Power::new()).unwrap();
        let cav = simulate(&test, &MadorHaim::new()).unwrap();
        assert!(ours.validated, "our model allows mp+lwsync+addr-bigdetour-addr");
        assert!(!cav.validated, "the CAV surrogate forbids it (Fig 37)");
    }

    #[test]
    fn cav_allows_the_plain_detour_test_like_us() {
        // The CAV model does NOT forbid mp+lwsync+addr-po-detour — that is
        // the counter-example to the CAV/PLDI equivalence proof (Tab I).
        let test = corpus::mp_addr_po_detour(herd_litmus::isa::Isa::Power);
        let cav = simulate(&test, &MadorHaim::new()).unwrap();
        assert!(cav.validated);
    }

    #[test]
    fn surrogates_agree_with_power_on_the_rest_of_the_corpus() {
        let skip = ["mp+addr-po-detour", "mp+addr-bigdetour-addr"];
        let opts = EnumOptions::default();
        for entry in corpus::power_corpus() {
            if skip.iter().any(|s| entry.test.name.contains(s)) {
                continue;
            }
            let pldi =
                compare_models(&entry.test, &Power::new(), &PldiFlawed::new(), &opts).unwrap();
            assert!(pldi.agrees(), "{}: PLDI surrogate diverged: {pldi:?}", entry.test.name);
            let cav = compare_models(&entry.test, &Power::new(), &MadorHaim::new(), &opts).unwrap();
            assert!(cav.agrees(), "{}: CAV surrogate diverged: {cav:?}", entry.test.name);
        }
    }

    /// The streamed comparison must count exactly the divergences the
    /// pre-refactor owned enumerate-then-check loop counts, corpus-wide
    /// (including the two tests where the surrogates genuinely diverge).
    #[test]
    fn streamed_comparison_matches_owned_checks() {
        let opts = EnumOptions::default();
        for entry in corpus::power_corpus() {
            for surrogate in
                [&PldiFlawed::new() as &dyn Architecture, &MadorHaim::new() as &dyn Architecture]
            {
                let mut owned_div = 0u128;
                for c in enumerate(&entry.test, &opts).unwrap() {
                    let ours = check(&Power::new(), &c.exec);
                    let theirs = check(&surrogate, &c.exec);
                    if ours.allowed() != theirs.allowed() {
                        owned_div += 1;
                    }
                }
                let streamed =
                    compare_models(&entry.test, &Power::new(), surrogate, &opts).unwrap();
                assert_eq!(
                    streamed.diverging,
                    owned_div,
                    "{}: streamed divergence count != owned ({})",
                    entry.test.name,
                    surrogate.name()
                );
            }
        }
    }

    /// A candidate-budget trip degrades the comparison instead of
    /// discarding it: exact accounting of the uncompared tail, verdicts
    /// of the compared prefix intact.
    #[test]
    fn budget_trip_yields_a_partial_comparison_with_exact_accounting() {
        use herd_litmus::candidates::count_candidates;
        let test = corpus::mp_addr_po_detour(herd_litmus::isa::Isa::Power);
        let full =
            compare_models(&test, &Power::new(), &PldiFlawed::new(), &EnumOptions::default())
                .unwrap();
        assert!(full.is_complete() && full.uncompared.is_none());
        let space = count_candidates(&test, &EnumOptions::default()).unwrap();
        let cut_opts = EnumOptions { max_candidates: 2, ..EnumOptions::default() };
        let cut = compare_models(&test, &Power::new(), &PldiFlawed::new(), &cut_opts).unwrap();
        assert!(!cut.is_complete());
        assert_eq!(cut.checked, 3, "the bound plus the tripping candidate were compared");
        let uncompared = cut.uncompared.unwrap();
        assert!(uncompared > 0);
        // checked + pruned + uncompared == space; pruned is implicit, so
        // pin the two ends we can see directly.
        assert!(cut.checked + uncompared <= space);
        assert!(cut.diverging <= full.diverging, "prefix divergences are a lower bound");
    }

    /// The documented flaw shows up in the streamed report: the PLDI
    /// surrogate forbids candidates of the detour test our model allows.
    #[test]
    fn streamed_comparison_surfaces_the_pldi_flaw() {
        let test = corpus::mp_addr_po_detour(herd_litmus::isa::Isa::Power);
        let cmp = compare_models(&test, &Power::new(), &PldiFlawed::new(), &EnumOptions::default())
            .unwrap();
        assert!(!cmp.agrees(), "the detour test must diverge");
        assert!(!cmp.only_a.is_empty(), "our model allows states the PLDI surrogate forbids");
        assert!(cmp.only_b.is_empty(), "the flaw is one-sided: PLDI is too strong");
    }
}
