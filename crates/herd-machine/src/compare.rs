//! Surrogates for the two prior Power models the paper compares against
//! (Tab I, Sec 8.2).
//!
//! The originals are a large operational machine (Sarkar et al., PLDI
//! 2011) and a multi-event axiomatic model (Mador-Haim et al., CAV 2012);
//! we reproduce the *verdict differences the paper documents* as minimal
//! strengthenings of our Power model, so the comparison experiments
//! (Fig 36, Fig 37, Tab IX) exercise the same divergences:
//!
//! - [`PldiFlawed`] additionally preserves `addr; po` between reads
//!   (read-to-read chains restart reads in the PLDI machine). It therefore
//!   wrongly forbids `mp+lwsync+addr-po-detour`, the behaviour observed on
//!   Power hardware that invalidated the PLDI model
//!   (<http://diy.inria.fr/cats/pldi-power/#lessvs>).
//! - [`MadorHaim`] additionally preserves program order between two reads
//!   when the first reads a write coherence-before a write whose
//!   propagation is fence-ordered into the second read's source (the
//!   per-thread write-propagation subevents of the CAV model enforce this
//!   order). It therefore forbids `mp+lwsync+addr-bigdetour-addr`, the
//!   counter-example to the CAV/PLDI equivalence proof.

use herd_core::arch::Power;
use herd_core::event::Dir;
use herd_core::exec::Execution;
use herd_core::model::Architecture;
use herd_core::relation::Relation;

/// Surrogate for the operational Power model of PLDI 2011 (flawed: too
/// strong on `addr; po` read chains).
#[derive(Clone, Copy, Debug, Default)]
pub struct PldiFlawed {
    inner: Power,
}

impl PldiFlawed {
    /// Builds the surrogate.
    pub fn new() -> Self {
        PldiFlawed { inner: Power::new() }
    }
}

impl Architecture for PldiFlawed {
    fn name(&self) -> &str {
        "Power-PLDI11"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        // The PLDI machine restarts po-later reads when an address
        // dependency feeds an intervening access: addr; po between reads
        // is preserved (our model keeps it commit-to-commit only).
        let extra = x.dir_restrict(&x.deps().addr.seq(x.po()), Some(Dir::R), Some(Dir::R));
        self.inner.ppo(x).union(&extra)
    }

    fn fences(&self, x: &Execution) -> Relation {
        self.inner.fences(x)
    }

    fn prop(&self, x: &Execution) -> Relation {
        // Fig 18's prop, but over this model's (stronger) ppo.
        herd_core::arch::prop_power_arm(x, &self.ppo(x), &self.fences(x), &self.inner.ffence(x))
    }
}

/// Surrogate for the multi-event axiomatic Power model of CAV 2012
/// (stronger than ours on fence-ordered write propagation chains).
#[derive(Clone, Copy, Debug, Default)]
pub struct MadorHaim {
    inner: Power,
}

impl MadorHaim {
    /// Builds the surrogate.
    pub fn new() -> Self {
        MadorHaim { inner: Power::new() }
    }
}

impl Architecture for MadorHaim {
    fn name(&self) -> &str {
        "Power-CAV12"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        // Per-thread propagation subevents order two po-ordered reads when
        // the first overtakes (fre) a write whose propagation is
        // fence-ordered (prop-base) before the second's source (rfe):
        // po ∩ (fre; prop-base; rfe).
        let base_ppo = self.inner.ppo(x);
        let fences = self.inner.fences(x);
        let hb = base_ppo.union(&fences).union(x.rfe());
        let a_cumul = x.rfe().seq(&fences);
        let prop_base = fences.union(&a_cumul).seq(&hb.rtclosure());
        let chain = x.fre().seq(&prop_base).seq(x.rfe());
        base_ppo.union(&x.po().intersect(&chain))
    }

    fn fences(&self, x: &Execution) -> Relation {
        self.inner.fences(x)
    }

    fn prop(&self, x: &Execution) -> Relation {
        herd_core::arch::prop_power_arm(x, &self.ppo(x), &self.fences(x), &self.inner.ffence(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herd_core::model::check;
    use herd_litmus::candidates::{enumerate, EnumOptions};
    use herd_litmus::corpus;
    use herd_litmus::simulate::simulate;

    #[test]
    fn pldi_wrongly_forbids_the_detour_test() {
        let test = corpus::mp_addr_po_detour(herd_litmus::isa::Isa::Power);
        let ours = simulate(&test, &Power::new()).unwrap();
        let pldi = simulate(&test, &PldiFlawed::new()).unwrap();
        assert!(ours.validated, "our model allows the hardware-observed behaviour");
        assert!(!pldi.validated, "the PLDI surrogate forbids it (the documented flaw)");
    }

    #[test]
    fn cav_wrongly_forbids_the_bigdetour_test() {
        let test = corpus::mp_addr_bigdetour_addr(herd_litmus::isa::Isa::Power);
        let ours = simulate(&test, &Power::new()).unwrap();
        let cav = simulate(&test, &MadorHaim::new()).unwrap();
        assert!(ours.validated, "our model allows mp+lwsync+addr-bigdetour-addr");
        assert!(!cav.validated, "the CAV surrogate forbids it (Fig 37)");
    }

    #[test]
    fn cav_allows_the_plain_detour_test_like_us() {
        // The CAV model does NOT forbid mp+lwsync+addr-po-detour — that is
        // the counter-example to the CAV/PLDI equivalence proof (Tab I).
        let test = corpus::mp_addr_po_detour(herd_litmus::isa::Isa::Power);
        let cav = simulate(&test, &MadorHaim::new()).unwrap();
        assert!(cav.validated);
    }

    #[test]
    fn surrogates_agree_with_power_on_the_rest_of_the_corpus() {
        let skip = ["mp+addr-po-detour", "mp+addr-bigdetour-addr"];
        let opts = EnumOptions::default();
        for entry in corpus::power_corpus() {
            if skip.iter().any(|s| entry.test.name.contains(s)) {
                continue;
            }
            for c in enumerate(&entry.test, &opts).unwrap() {
                let ours = check(&Power::new(), &c.exec).allowed();
                let pldi = check(&PldiFlawed::new(), &c.exec).allowed();
                let cav = check(&MadorHaim::new(), &c.exec).allowed();
                assert_eq!(ours, pldi, "{}: PLDI surrogate diverged", entry.test.name);
                assert_eq!(ours, cav, "{}: CAV surrogate diverged", entry.test.name);
            }
        }
    }
}
