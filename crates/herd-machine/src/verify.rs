//! Bounded verification of litmus programs (Sec 8.4, Tabs X–XII).
//!
//! The paper implements its model inside the bounded model checker CBMC
//! and compares (a) the axiomatic encoding inside the tool against (b) an
//! instrumentation-based approach running an *operational* model. Our
//! stand-ins keep the same two shapes over the same reachability question
//! ("is the final condition's proposition reachable under the model?"):
//!
//! - [`verify_axiomatic`] enumerates candidate executions and filters by
//!   the axioms — the in-tool encoding;
//! - [`verify_operational`] additionally drives every candidate through
//!   the intermediate machine's exhaustive state search — the
//!   instrumentation-style cost profile (state explosion included).
//!
//! Both return the same verdicts (Thm 7.1 guarantees it); the benches
//! record the time gap (the paper reports two orders of magnitude).

use crate::intermediate::Machine;
use herd_core::model::Architecture;
use herd_litmus::candidates::{enumerate, stream_arch_verdicts, CandidateError, EnumOptions};
use herd_litmus::program::LitmusTest;
use herd_litmus::simulate::{eval_prop, eval_prop_parts};

/// The verification verdict for a litmus program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Is the condition's proposition reachable in some allowed execution?
    pub reachable: bool,
    /// Allowed executions inspected.
    pub allowed: usize,
    /// Total candidate executions covered. A `u128` like the simulation
    /// drivers' counters: generation-time pruning counts subtrees it
    /// never visits, so the tally can exceed anything enumerable.
    pub candidates: u128,
}

/// Axiomatic bounded verification: stream candidates through the arena
/// verdict engine (generation-time pruning included — pruned candidates
/// are axiom-forbidden, so they can never witness reachability) and test
/// the proposition on the allowed ones. No owned `Execution` is ever
/// materialised; `candidates` still counts the whole space, exactly as
/// the pre-streaming enumerate-then-check path did.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn verify_axiomatic(
    test: &LitmusTest,
    arch: &dyn Architecture,
) -> Result<VerifyOutcome, CandidateError> {
    let mut allowed = 0;
    let mut reachable = false;
    let stats = stream_arch_verdicts(test, &EnumOptions::default(), arch, &mut |vc| {
        if vc.verdict.allowed() {
            allowed += 1;
            reachable |= eval_prop_parts(&test.condition.prop, vc.final_regs, vc.final_mem);
        }
    })?;
    Ok(VerifyOutcome { reachable, allowed, candidates: stats.total() })
}

/// The bare reachability question, answered through the polynomial
/// consistency backend instead of candidate enumeration: the distinct
/// final states are decided one witness query at a time
/// ([`herd_litmus::simulate::simulate_decided`]), so for
/// SC/TSO/PSO-class models
/// ([`herd_core::model::Tractability::Polynomial`]) the per-outcome cost
/// drops from `Π |writes(l)|!` coherence checks to a saturation pass,
/// Power/ARM-class models
/// ([`herd_core::model::Tractability::Conditional`]) resolve most
/// outcomes through their ppo-envelope bounds, and the residue takes the
/// backend's counted fallback, which keeps the answer exact.
///
/// Returns the same `reachable` bit as [`verify_axiomatic`] (whose
/// candidate accounting it deliberately does not reproduce — outcomes,
/// not candidates, are what get decided).
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn verify_reachable(
    test: &LitmusTest,
    arch: &dyn Architecture,
) -> Result<bool, CandidateError> {
    let mut stats = herd_litmus::decide::QueryStats::default();
    let out =
        herd_litmus::simulate::simulate_decided(test, arch, &EnumOptions::default(), &mut stats)?;
    Ok(out.positive > 0)
}

/// A content-addressed store of reachability verdicts, keyed by
/// `(test, model, opts)` fingerprints — see [`verify_reachable_cached`].
pub type ReachabilityCache = herd_cache::ShardedLru<bool>;

/// The memoised variant of [`verify_reachable`]: the bit is stored in
/// the content-addressed `cache` under the `(test, model, opts)`
/// fingerprint, so repeated verification sweeps over the same corpus —
/// model-comparison loops, CI reruns — answer warm queries with one
/// hash lookup instead of a decision walk.
///
/// # Errors
///
/// Propagates enumeration failures (errors are not cached).
pub fn verify_reachable_cached(
    test: &LitmusTest,
    arch: &dyn Architecture,
    cache: &ReachabilityCache,
) -> Result<bool, CandidateError> {
    let mut h = herd_core::fingerprint::FpHasher::from(herd_litmus::decide::query_fingerprint(
        test,
        arch.name(),
        &EnumOptions::default(),
    ));
    h.tag("reachable");
    let key = h.finish();
    if let Some(v) = cache.get(key) {
        return Ok(v);
    }
    let v = verify_reachable(test, arch)?;
    cache.insert(key, v);
    Ok(v)
}

/// Operational bounded verification: like [`verify_axiomatic`] but each
/// candidate is validated by exhaustively exploring the intermediate
/// machine instead of evaluating the axioms.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn verify_operational(
    test: &LitmusTest,
    arch: &dyn Architecture,
) -> Result<VerifyOutcome, CandidateError> {
    let cands = enumerate(test, &EnumOptions::default())?;
    let mut allowed = 0;
    let mut reachable = false;
    for c in &cands {
        if Machine::new(&c.exec, arch).accepts() {
            allowed += 1;
            reachable |= eval_prop(&test.condition.prop, c);
        }
    }
    Ok(VerifyOutcome { reachable, allowed, candidates: cands.len() as u128 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use herd_core::arch::Power;
    use herd_core::event::Fence;
    use herd_litmus::corpus::{self, Dev};
    use herd_litmus::isa::Isa;

    #[test]
    fn both_encodings_agree_on_mp_variants() {
        let power = Power::new();
        for test in [
            corpus::mp(Isa::Power, Dev::Po, Dev::Po),
            corpus::mp(Isa::Power, Dev::F(Fence::Lwsync), Dev::Addr),
            corpus::sb(Isa::Power, Dev::F(Fence::Sync), Dev::F(Fence::Sync)),
            corpus::lb(Isa::Power, Dev::Data, Dev::Data),
        ] {
            let ax = verify_axiomatic(&test, &power).unwrap();
            let op = verify_operational(&test, &power).unwrap();
            assert_eq!(ax, op, "{}", test.name);
        }
    }

    #[test]
    fn decided_reachability_agrees_with_both_encodings() {
        use herd_core::arch::{Sc, Tso};
        let cache = ReachabilityCache::new(64);
        for test in [
            corpus::mp(Isa::X86, Dev::Po, Dev::Po),
            corpus::sb(Isa::X86, Dev::Po, Dev::Po),
            corpus::sb(Isa::X86, Dev::F(Fence::Mfence), Dev::F(Fence::Mfence)),
            corpus::iriw(Isa::X86, Dev::Po, Dev::Po),
        ] {
            for arch in [&Sc as &dyn Architecture, &Tso] {
                let ax = verify_axiomatic(&test, arch).unwrap();
                let decided = verify_reachable(&test, arch).unwrap();
                assert_eq!(decided, ax.reachable, "{} on {}", test.name, arch.name());
                // The memoised path returns the same bit cold and warm.
                for _ in 0..2 {
                    let c = verify_reachable_cached(&test, arch, &cache).unwrap();
                    assert_eq!(c, decided, "{} on {} (cached)", test.name, arch.name());
                }
            }
        }
        let s = cache.stats();
        assert_eq!(s.misses, 8, "one cold miss per (test, model) pair");
        assert_eq!(s.hits, 8, "every warm repeat is a hit");
    }
}
