//! # herd-hw — simulated hardware testbeds
//!
//! The paper validates its models against Power and ARM machines
//! (Sec 8.1). This crate substitutes configurable *silicon behaviour
//! models* for the physical hardware: each tested part is an
//! architecture describing what its silicon can produce — including the
//! acknowledged bugs (load-load hazards, early commit, isb defeat) — and
//! randomised campaigns reproduce the observation methodology: observed
//! final states with realistic rarity, compared against a reference
//! model to produce the *invalid*/*unseen* columns of Tab V, the anomaly
//! counts of Tab VI, and the axiom classification of Tab VIII.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod flaky;
pub mod log;
pub mod silicon;
pub mod silicon_tso;

pub use campaign::{
    campaign, campaign_flaky, campaign_with_workers, run_test, run_test_retry, CampaignSummary,
    LostTest, RetriedRun, RunOutcome, TestReport,
};
pub use flaky::{Flake, FlakyMachine};
pub use log::{
    compare, hardware_log, judge_entries, judge_entry, judge_entry_cached, judge_log_cached,
    model_log, model_log_cached, Comparison, Log, ModelLogCache, VerdictCache,
};
pub use silicon::{
    arm_machines, power_machines, x86_machines, ArmErrata, ArmSilicon, Machine, PowerSilicon,
};
pub use silicon_tso::TsoSilicon;
