//! Fault-injected machines: a seeded flake schedule over a real [`Machine`].
//!
//! Real testbeds are not reliable: boards drop off the network mid-run,
//! harnesses crash, and a wedged kernel occasionally reports garbage. The
//! paper's campaigns cope by re-running (Sec 8.1's experiments are the
//! union of many partially-failed sessions). [`FlakyMachine`] reproduces
//! that failure mode deterministically so the campaign driver's bounded
//! retry-with-reseed path can be exercised in tests: a wrapped machine
//! fails or misreports on a schedule derived purely from
//! `(fault_seed, test name, attempt)` — never from hit order or thread
//! identity — so a flaky campaign's outcome is identical whatever the
//! worker count.

use crate::silicon::Machine;

/// What a flaky attempt does instead of running honestly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flake {
    /// The harness crashes before producing any observations (board hang,
    /// lost connection): the attempt yields nothing and must be retried.
    Abort,
    /// The harness completes but reports garbage — only the modal state
    /// survives, rare outcomes are silently dropped. A misreported
    /// attempt must be discarded and retried like an abort.
    Misreport,
}

/// A [`Machine`] wrapped with a deterministic flake schedule.
///
/// Which tests flake, on which attempts, and how, is a pure function of
/// `(fault_seed, test name, attempt)`. Selected tests fail their first
/// `failures` attempts and then run honestly, so a retry budget of
/// `failures + 1` attempts always recovers every test — the property the
/// bounded-retry tests pin.
pub struct FlakyMachine<'m> {
    inner: &'m Machine,
    fault_seed: u64,
    /// One in this many tests is flaky (by name hash); `0` disables.
    flaky_one_in: u64,
    /// How many consecutive attempts fail on a selected test.
    failures: u32,
}

impl<'m> FlakyMachine<'m> {
    /// Wraps `inner` with the default schedule: one test in three flakes,
    /// failing its first two attempts.
    pub fn new(inner: &'m Machine, fault_seed: u64) -> Self {
        FlakyMachine { inner, fault_seed, flaky_one_in: 3, failures: 2 }
    }

    /// Overrides the schedule: one test in `flaky_one_in` flakes
    /// (`0` = never), failing its first `failures` attempts.
    pub fn with_schedule(mut self, flaky_one_in: u64, failures: u32) -> Self {
        self.flaky_one_in = flaky_one_in;
        self.failures = failures;
        self
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &'m Machine {
        self.inner
    }

    /// Smallest retry budget that recovers every test on this schedule.
    pub fn attempts_to_recover(&self) -> u32 {
        self.failures + 1
    }

    /// FNV-1a over the seed and the test name: stable, order-free.
    fn mix(&self, test_name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.fault_seed;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Final avalanche so the low bits used for selection are well
        // mixed even for short names.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }

    /// Does attempt `attempt` of `test_name` flake, and how?
    ///
    /// Deterministic in `(fault_seed, test name, attempt)` only.
    pub fn flake(&self, test_name: &str, attempt: u32) -> Option<Flake> {
        if self.flaky_one_in == 0 || attempt >= self.failures {
            return None;
        }
        let h = self.mix(test_name);
        if h % self.flaky_one_in != 0 {
            return None;
        }
        // The flake kind alternates per attempt so both recovery paths
        // (nothing observed, garbage observed) get exercised.
        Some(if (h >> 32).wrapping_add(u64::from(attempt)) & 1 == 0 {
            Flake::Abort
        } else {
            Flake::Misreport
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silicon::arm_machines;

    #[test]
    fn schedule_is_deterministic_and_recovers() {
        let machines = arm_machines();
        let flaky = FlakyMachine::new(&machines[0], 42);
        let names = ["mp", "sb", "iriw", "wrc", "lb", "2+2w", "r", "s"];
        let mut saw_flake = false;
        for name in names {
            for attempt in 0..flaky.attempts_to_recover() + 2 {
                let a = flaky.flake(name, attempt);
                let b = flaky.flake(name, attempt);
                assert_eq!(a, b, "schedule is a pure function");
                if a.is_some() {
                    saw_flake = true;
                }
            }
            // Past the failure budget every test runs honestly.
            assert_eq!(flaky.flake(name, flaky.attempts_to_recover()), None);
        }
        assert!(saw_flake, "the default schedule selects some tests");
    }

    #[test]
    fn disabled_schedule_never_flakes() {
        let machines = arm_machines();
        let flaky = FlakyMachine::new(&machines[0], 7).with_schedule(0, 3);
        for name in ["mp", "sb", "iriw"] {
            for attempt in 0..4 {
                assert_eq!(flaky.flake(name, attempt), None);
            }
        }
    }

    #[test]
    fn seeds_select_different_tests() {
        let machines = arm_machines();
        let names =
            ["mp", "sb", "iriw", "wrc", "lb", "2+2w", "r", "s", "isa2", "rwc", "w+rr", "3.2w"];
        let pick = |seed: u64| -> Vec<&str> {
            let f = FlakyMachine::new(&machines[0], seed);
            names.iter().copied().filter(|n| f.flake(n, 0).is_some()).collect()
        };
        let some_differ = (1..20u64).any(|s| pick(s) != pick(0));
        assert!(some_differ, "the seed drives test selection");
    }
}
