//! x86 silicon: the shipped parts implement TSO faithfully (Sec 2: Owens
//! et al.'s x86-TSO), so the silicon model *is* the architecture model —
//! the control case for the campaign machinery.

use herd_core::arch::Tso;
use herd_core::exec::Execution;
use herd_core::model::Architecture;
use herd_core::relation::Relation;

/// A TSO-faithful x86 part.
#[derive(Clone, Copy, Debug, Default)]
pub struct TsoSilicon;

impl Architecture for TsoSilicon {
    fn name(&self) -> &str {
        "x86-silicon"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        Tso.ppo(x)
    }

    fn fences(&self, x: &Execution) -> Relation {
        Tso.fences(x)
    }

    fn prop(&self, x: &Execution) -> Relation {
        Tso.prop(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::campaign;
    use crate::silicon::x86_machines;
    use herd_litmus::corpus;

    #[test]
    fn x86_campaign_is_clean_against_tso() {
        let tests: Vec<_> = corpus::x86_corpus().into_iter().map(|e| e.test).collect();
        let machine = &x86_machines()[0];
        let summary = campaign(machine, &tests, &Tso, 10_000_000_000, 3).expect("campaign");
        assert_eq!(summary.invalid, 0, "x86 silicon never contradicts TSO");
        // With billions of runs every allowed state shows up.
        assert_eq!(
            summary.unseen,
            0,
            "{:?}",
            summary
                .reports
                .iter()
                .filter(|r| r.has_unseen())
                .map(|r| (&r.name, &r.unseen_states))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn silicon_equals_model() {
        use herd_core::model::check;
        use herd_litmus::candidates::{enumerate, EnumOptions};
        for entry in corpus::x86_corpus() {
            for c in enumerate(&entry.test, &EnumOptions::default()).unwrap() {
                assert_eq!(check(&TsoSilicon, &c.exec).allowed(), check(&Tso, &c.exec).allowed());
            }
        }
    }
}
