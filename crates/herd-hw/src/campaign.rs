//! Randomised litmus campaigns against simulated machines (Sec 8.1).
//!
//! The paper's methodology: run each test a huge number of times on the
//! machine, log the observed final states, then compare against the
//! model's allowed states. A state observed but forbidden makes the test
//! **invalid** (model too strong, or hardware bug); a state allowed but
//! never observed leaves the test **unseen** (model too weak, or the
//! relaxation is simply not implemented) — the two columns of Tab V.
//!
//! Observation counts follow the paper's reality: SC-consistent outcomes
//! dominate, architectural relaxations are thousands of times rarer, and
//! erratum-only outcomes show up a handful of times per billions of runs
//! (the `10M/95G`-style entries of Tab VI). Counts are sampled from a
//! Poisson approximation of per-run multinomial draws, so a campaign of
//! billions of simulated runs costs microseconds.
//!
//! Candidate judging streams through the arena engine
//! ([`herd_litmus::candidates::stream_multi_verdicts`]): each candidate's
//! silicon / SC / clean (resp. reference / silicon) verdicts are computed
//! from one shared set of arena relations in a single enumeration pass,
//! instead of the three materialising `check` calls per candidate the
//! owned path paid. Campaigns fan their tests out over the
//! [`herd_core::sched`] work-stealing executor with one
//! deterministically-derived RNG per test.
//!
//! Campaigns degrade instead of crashing: a test whose judging unit
//! panics is isolated by the executor and recorded in
//! [`CampaignSummary::lost`] while every sibling's verdict is salvaged,
//! and tests on a [`FlakyMachine`] get bounded reseeded retries
//! ([`run_test_retry`]) whose schedule depends only on
//! `(seed, test name, attempt)` — never on worker count or steal order.

use crate::flaky::{Flake, FlakyMachine};
use crate::silicon::{Machine, Rarity};
use herd_core::arch::Sc;
use herd_core::model::Architecture;
use herd_core::sched::{self, UnitResult};
use herd_litmus::candidates::{self, Candidate, CandidateError, EnumOptions, RegFinal};
use herd_litmus::isa::Reg;
use herd_litmus::program::LitmusTest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Renders a candidate's complete final state canonically.
pub fn render_full_state(c: &Candidate) -> String {
    render_full_state_parts(&c.final_regs, &c.final_mem)
}

/// [`render_full_state`] over bare observables — what the arena verdict
/// stream hands out (no owned [`Candidate`] exists on that path).
pub fn render_full_state_parts(
    final_regs: &BTreeMap<(u16, Reg), RegFinal>,
    final_mem: &BTreeMap<String, i64>,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    for ((tid, reg), v) in final_regs {
        let v = match v {
            RegFinal::Int(i) => i.to_string(),
            RegFinal::Addr(l) => l.clone(),
        };
        parts.push(format!("{tid}:{reg}={v}"));
    }
    for (loc, v) in final_mem {
        parts.push(format!("{loc}={v}"));
    }
    parts.join("; ")
}

/// The outcome of running one test many times on one machine.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Observed final states with their observation counts.
    pub states: BTreeMap<String, u64>,
    /// Simulated number of runs.
    pub iterations: u64,
}

/// Runs `test` `iterations` times on `machine` (simulated).
///
/// # Errors
///
/// Propagates candidate-enumeration failures.
pub fn run_test(
    machine: &Machine,
    test: &LitmusTest,
    iterations: u64,
    rng: &mut StdRng,
) -> Result<RunOutcome, CandidateError> {
    // One enumeration pass: silicon / SC / clean verdicts per candidate
    // come from the same arena relations (no owned Execution, no three
    // materialising `check` calls). Group silicon-allowed candidates by
    // final state, grading each state by its most likely (least buggy)
    // producing candidate.
    let mut weights: BTreeMap<String, f64> = BTreeMap::new();
    let archs: [&dyn Architecture; 3] = [machine.silicon.as_ref(), &Sc, machine.clean.as_ref()];
    candidates::stream_multi_verdicts(test, &EnumOptions::default(), &archs, &mut |mc| {
        if !mc.verdicts[0].allowed() {
            return;
        }
        let rarity = if mc.verdicts[1].allowed() {
            Rarity::Common
        } else if mc.verdicts[2].allowed() {
            Rarity::Weak
        } else {
            Rarity::BugOnly
        };
        let state = render_full_state_parts(mc.final_regs, mc.final_mem);
        let w = weights.entry(state).or_insert(0.0);
        *w = w.max(rarity.weight());
    })?;
    let total: f64 = weights.values().sum();
    let mut states = BTreeMap::new();
    for (state, w) in weights {
        let expected = iterations as f64 * w / total;
        let count = sample_poissonish(expected, rng);
        if count > 0 {
            states.insert(state, count);
        }
    }
    Ok(RunOutcome { states, iterations })
}

/// The RNG of one retry attempt: attempt 0 reproduces [`test_rng`]
/// bit-for-bit (so a never-flaky machine yields the plain campaign's
/// outcome exactly), later attempts reseed with an attempt-derived salt.
fn attempt_rng(seed: u64, index: usize, attempt: u32) -> StdRng {
    test_rng(seed ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407), index)
}

/// One test's bounded-retry outcome on a flaky machine.
#[derive(Clone, Debug)]
pub struct RetriedRun {
    /// The first honest run, or `None` when every attempt flaked.
    pub outcome: Option<RunOutcome>,
    /// Attempts consumed, the successful one included.
    pub attempts: u32,
    /// What each failed attempt did, in attempt order.
    pub flakes: Vec<Flake>,
}

/// Runs `test` on a flaky machine with up to `max_attempts` attempts,
/// reseeding the RNG per attempt.
///
/// Every retry decision derives from `(seed, test name, attempt)` — never
/// from scheduling order — so campaigns over flaky machines stay
/// worker-count independent. An aborted attempt yields nothing; a
/// misreporting attempt produces a garbage report (checked against the
/// schedule and discarded). When the budget runs out the test is reported
/// lost (`outcome: None`), not a hard error.
///
/// # Errors
///
/// Propagates candidate-enumeration failures.
pub fn run_test_retry(
    flaky: &FlakyMachine,
    test: &LitmusTest,
    iterations: u64,
    seed: u64,
    index: usize,
    max_attempts: u32,
) -> Result<RetriedRun, CandidateError> {
    let budget = max_attempts.max(1);
    let mut flakes = Vec::new();
    for attempt in 0..budget {
        let mut rng = attempt_rng(seed, index, attempt);
        match flaky.flake(&test.name, attempt) {
            Some(f @ Flake::Abort) => flakes.push(f),
            Some(f @ Flake::Misreport) => {
                // The harness ran but reported garbage: only the modal
                // state survives. The schedule tells us the attempt is
                // tainted, so the report is dropped and the test retried.
                let honest = run_test(flaky.machine(), test, iterations, &mut rng)?;
                let garbage = misreport(&honest);
                debug_assert!(garbage.states.len() <= 1);
                flakes.push(f);
            }
            None => {
                let outcome = run_test(flaky.machine(), test, iterations, &mut rng)?;
                return Ok(RetriedRun { outcome: Some(outcome), attempts: attempt + 1, flakes });
            }
        }
    }
    Ok(RetriedRun { outcome: None, attempts: budget, flakes })
}

/// What a misreporting harness hands back: the modal state only, every
/// rare outcome silently dropped (the worst kind of testbed lie — it
/// looks like a clean SC run).
fn misreport(honest: &RunOutcome) -> RunOutcome {
    let modal = honest
        .states
        .iter()
        .max_by_key(|(_, c)| **c)
        .map(|(s, c)| (s.clone(), honest.iterations.max(*c)));
    RunOutcome { states: modal.into_iter().collect(), iterations: honest.iterations }
}

/// Samples a count with mean `expected`: exact Poisson for small means,
/// normal approximation above.
fn sample_poissonish(expected: f64, rng: &mut StdRng) -> u64 {
    if expected <= 0.0 {
        0
    } else if expected < 30.0 {
        // Knuth's Poisson sampler.
        let l = (-expected).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 1_000 {
                return k;
            }
        }
    } else {
        // Normal approximation, clamped at zero.
        let u: f64 = rng.gen_range(-1.0f64..1.0);
        let jitter = u * expected.sqrt() * 1.5;
        (expected + jitter).max(0.0).round() as u64
    }
}

/// Per-test comparison of hardware observations against a model.
#[derive(Clone, Debug)]
pub struct TestReport {
    /// Test name.
    pub name: String,
    /// Observed states with counts.
    pub observed: BTreeMap<String, u64>,
    /// States the reference model allows.
    pub model_allowed: BTreeSet<String>,
    /// Observed states the model forbids (→ the test is *invalid*).
    pub invalid_states: Vec<String>,
    /// Model-allowed states never observed (→ the test is *unseen*).
    pub unseen_states: Vec<String>,
    /// Tab VIII classification: violated-axiom labels (`S`, `T`, `O`, `P`
    /// combinations) of the invalid observations, most charitable
    /// candidate first.
    pub invalid_axioms: BTreeSet<String>,
}

impl TestReport {
    /// Does the machine exhibit something the model forbids?
    pub fn is_invalid(&self) -> bool {
        !self.invalid_states.is_empty()
    }

    /// Does the model allow something the machine never showed?
    pub fn has_unseen(&self) -> bool {
        !self.unseen_states.is_empty()
    }
}

/// A test that produced no verdict: its judging unit panicked (and was
/// isolated, every sibling salvaged), or it exhausted its retry budget on
/// a flaky machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LostTest {
    /// Test name.
    pub name: String,
    /// Why the test was lost, human-readable.
    pub reason: String,
}

/// A whole campaign: many tests, one machine, one reference model
/// (Tab V's rows).
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// Machine name.
    pub machine: String,
    /// Reference model name.
    pub model: String,
    /// Number of tests run.
    pub tests: usize,
    /// Tests with model-forbidden observations (Tab V "invalid").
    pub invalid: usize,
    /// Tests with unobserved model-allowed states (Tab V "unseen").
    pub unseen: usize,
    /// Tab VIII: axiom-set label → number of invalid observations.
    pub classification: BTreeMap<String, usize>,
    /// Per-test details (lost tests excluded).
    pub reports: Vec<TestReport>,
    /// Tests that produced no verdict (panicked unit, exhausted retries).
    /// The rest of the summary covers every test *not* listed here.
    pub lost: Vec<LostTest>,
}

impl CampaignSummary {
    /// Did every test produce a verdict?
    pub fn is_complete(&self) -> bool {
        self.lost.is_empty()
    }

    /// Renders the Tab V row.
    pub fn table_row(&self) -> String {
        format!(
            "{:12} vs {:12}  # tests {:5}  invalid {:4}  unseen {:4}{}",
            self.machine,
            self.model,
            self.tests,
            self.invalid,
            self.unseen,
            if self.lost.is_empty() {
                String::new()
            } else {
                format!("  lost {:4}", self.lost.len())
            }
        )
    }
}

/// The RNG of one campaign test: derived deterministically from the
/// campaign seed and the test's index, so the campaign's outcome does not
/// depend on scheduling order or worker count.
fn test_rng(seed: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Judges one campaign test: simulated observations plus the streamed
/// reference/silicon comparison (one arena pass per candidate).
fn campaign_test(
    machine: &Machine,
    test: &LitmusTest,
    reference: &(dyn Architecture + Sync),
    run: RunOutcome,
) -> Result<(TestReport, Vec<String>), CandidateError> {
    let mut model_allowed = BTreeSet::new();
    // For classification: per state, remember the reference verdicts of
    // the silicon-allowed candidates producing it.
    let mut state_labels: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let archs: [&dyn Architecture; 2] = [reference, machine.silicon.as_ref()];
    candidates::stream_multi_verdicts(test, &EnumOptions::default(), &archs, &mut |mc| {
        let state = render_full_state_parts(mc.final_regs, mc.final_mem);
        let verdict = mc.verdicts[0];
        if verdict.allowed() {
            model_allowed.insert(state);
        } else if mc.verdicts[1].allowed() {
            state_labels.entry(state).or_default().insert(verdict.violation_label());
        }
    })?;
    let invalid_states: Vec<String> =
        run.states.keys().filter(|s| !model_allowed.contains(*s)).cloned().collect();
    let unseen_states: Vec<String> =
        model_allowed.iter().filter(|s| !run.states.contains_key(*s)).cloned().collect();
    let mut invalid_axioms = BTreeSet::new();
    // One classification entry per invalid *state* (Tab VIII counts
    // observations, not distinct labels).
    let mut state_best_labels = Vec::new();
    for s in &invalid_states {
        if let Some(labels) = state_labels.get(s) {
            // Most charitable: the shortest violation label.
            if let Some(best) = labels.iter().min_by_key(|l| l.len()) {
                invalid_axioms.insert(best.clone());
                state_best_labels.push(best.clone());
            }
        }
    }
    let report = TestReport {
        name: test.name.clone(),
        observed: run.states,
        model_allowed,
        invalid_states,
        unseen_states,
        invalid_axioms,
    };
    Ok((report, state_best_labels))
}

/// Runs a campaign of `tests` on `machine`, judging against `reference`.
///
/// Tests fan out over the [`herd_core::sched`] work-stealing executor
/// (every core busy until the queue drains); each test's RNG is derived
/// from `(seed, index)`, so the summary is identical whatever the worker
/// count or steal order. A test whose judging unit panics is isolated —
/// it lands in [`CampaignSummary::lost`] while every other test's verdict
/// is salvaged.
///
/// # Errors
///
/// Propagates candidate-enumeration failures.
pub fn campaign(
    machine: &Machine,
    tests: &[LitmusTest],
    reference: &(dyn Architecture + Sync),
    iterations: u64,
    seed: u64,
) -> Result<CampaignSummary, CandidateError> {
    campaign_with_workers(machine, tests, reference, iterations, seed, default_workers(tests.len()))
}

/// [`campaign`] with an explicit worker count (the worker-count
/// independence tests pin that any count yields the same summary).
///
/// # Errors
///
/// Propagates candidate-enumeration failures.
pub fn campaign_with_workers(
    machine: &Machine,
    tests: &[LitmusTest],
    reference: &(dyn Architecture + Sync),
    iterations: u64,
    seed: u64,
    workers: usize,
) -> Result<CampaignSummary, CandidateError> {
    campaign_impl(machine, None, 1, tests, reference, iterations, seed, workers)
}

/// Runs a campaign on a [`FlakyMachine`]: each test gets up to
/// `max_attempts` reseeded attempts ([`run_test_retry`]); tests that
/// exhaust the budget land in [`CampaignSummary::lost`] instead of
/// failing the campaign.
///
/// # Errors
///
/// Propagates candidate-enumeration failures.
pub fn campaign_flaky(
    flaky: &FlakyMachine,
    tests: &[LitmusTest],
    reference: &(dyn Architecture + Sync),
    iterations: u64,
    seed: u64,
    max_attempts: u32,
    workers: usize,
) -> Result<CampaignSummary, CandidateError> {
    campaign_impl(
        flaky.machine(),
        Some(flaky),
        max_attempts,
        tests,
        reference,
        iterations,
        seed,
        workers,
    )
}

fn default_workers(tests: usize) -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get()).min(tests).max(1)
}

#[allow(clippy::too_many_arguments)]
fn campaign_impl(
    machine: &Machine,
    flaky: Option<&FlakyMachine>,
    max_attempts: u32,
    tests: &[LitmusTest],
    reference: &(dyn Architecture + Sync),
    iterations: u64,
    seed: u64,
    workers: usize,
) -> Result<CampaignSummary, CandidateError> {
    let (_, results) = sched::execute_units(
        tests.len(),
        workers.max(1),
        |_| (),
        |_| {},
        |(), i| -> Result<Option<(TestReport, Vec<String>)>, CandidateError> {
            let run = match flaky {
                None => {
                    let mut rng = test_rng(seed, i);
                    run_test(machine, &tests[i], iterations, &mut rng)?
                }
                Some(f) => {
                    match run_test_retry(f, &tests[i], iterations, seed, i, max_attempts)?.outcome {
                        Some(run) => run,
                        None => return Ok(None), // retry budget exhausted
                    }
                }
            };
            campaign_test(machine, &tests[i], reference, run).map(Some)
        },
    );
    let mut reports = Vec::with_capacity(tests.len());
    let mut lost = Vec::new();
    let mut classification: BTreeMap<String, usize> = BTreeMap::new();
    for (i, result) in results.into_iter().enumerate() {
        match result {
            UnitResult::Done(Ok(Some((report, labels)))) => {
                for label in labels {
                    *classification.entry(label).or_insert(0) += 1;
                }
                reports.push(report);
            }
            UnitResult::Done(Ok(None)) => lost.push(LostTest {
                name: tests[i].name.clone(),
                reason: format!("retry budget ({max_attempts}) exhausted"),
            }),
            UnitResult::Done(Err(e)) => return Err(e),
            UnitResult::Poisoned { payload } => lost.push(LostTest {
                name: tests[i].name.clone(),
                reason: format!("judging unit panicked: {payload}"),
            }),
        }
    }
    let invalid = reports.iter().filter(|r| r.is_invalid()).count();
    let unseen = reports.iter().filter(|r| r.has_unseen()).count();
    Ok(CampaignSummary {
        machine: machine.name.to_owned(),
        model: reference.name().to_owned(),
        tests: tests.len(),
        invalid,
        unseen,
        classification,
        reports,
        lost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silicon::{arm_machines, power_machines};
    use herd_core::arch::{Arm, ArmVariant, Power};
    use herd_litmus::corpus;

    fn power_tests() -> Vec<LitmusTest> {
        corpus::power_corpus().into_iter().map(|e| e.test).collect()
    }

    fn arm_tests() -> Vec<LitmusTest> {
        corpus::arm_corpus().into_iter().map(|e| e.test).collect()
    }

    #[test]
    fn power_campaign_has_unseen_but_no_invalid() {
        let machine = &power_machines()[1]; // Power7
        let summary = campaign(machine, &power_tests(), &Power::new(), 1_000_000_000, 42).unwrap();
        assert_eq!(summary.invalid, 0, "our Power model is not invalidated by Power hardware");
        assert!(summary.unseen > 0, "lb behaviours stay unseen");
    }

    #[test]
    fn arm_campaign_against_power_arm_model_shows_invalid_tests() {
        let machine = &arm_machines()
            .iter()
            .find(|m| m.name == "APQ8060")
            .map(|m| Machine {
                name: m.name,
                silicon: dyn_clone_silicon(m),
                clean: Box::new(Arm::new(ArmVariant::Proposed)),
            })
            .unwrap();
        let reference = Arm::new(ArmVariant::PowerArm);
        let summary = campaign(machine, &arm_tests(), &reference, 10_000_000_000, 7).unwrap();
        assert!(summary.invalid > 0, "Power-ARM is invalidated by the ARM machines (Tab V)");
        assert!(
            summary.classification.keys().any(|k| k.contains('S') || k.contains('O')),
            "Tab VIII: SC-PER-LOCATION / OBSERVATION violations appear: {:?}",
            summary.classification
        );
    }

    // Machines hold Box<dyn Architecture>; rebuild the APQ silicon for the
    // test (Machine is not Clone because of the trait objects).
    fn dyn_clone_silicon(m: &Machine) -> Box<dyn herd_core::model::Architecture + Send + Sync> {
        use crate::silicon::{ArmErrata, ArmSilicon};
        let _ = m;
        Box::new(ArmSilicon::new(
            "APQ8060",
            ArmErrata { load_load_hazards: true, early_commit: true, ..Default::default() },
        ))
    }

    /// The streamed reference/silicon judging must reproduce the
    /// pre-refactor owned enumerate-then-check path exactly: same
    /// model-allowed state sets, same per-state violation labels, on the
    /// full ARM corpus.
    #[test]
    fn streamed_judging_matches_owned_checks() {
        use herd_core::model::check;
        use herd_litmus::candidates::enumerate;
        let machine = &arm_machines()[0]; // Tegra2: llh silicon
        let reference = Arm::new(ArmVariant::PowerArm);
        for entry in corpus::arm_corpus() {
            let test = entry.test;
            let cands = enumerate(&test, &EnumOptions::default()).unwrap();
            let mut owned_allowed = BTreeSet::new();
            let mut owned_labels: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            for c in &cands {
                let state = render_full_state(c);
                let v = check(&reference, &c.exec);
                if v.allowed() {
                    owned_allowed.insert(state.clone());
                }
                if check(machine.silicon.as_ref(), &c.exec).allowed() && !v.allowed() {
                    owned_labels.entry(state).or_default().insert(v.violation_label());
                }
            }
            let mut s_allowed = BTreeSet::new();
            let mut s_labels: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            let archs: [&dyn Architecture; 2] = [&reference, machine.silicon.as_ref()];
            candidates::stream_multi_verdicts(&test, &EnumOptions::default(), &archs, &mut |mc| {
                let state = render_full_state_parts(mc.final_regs, mc.final_mem);
                if mc.verdicts[0].allowed() {
                    s_allowed.insert(state);
                } else if mc.verdicts[1].allowed() {
                    s_labels.entry(state).or_default().insert(mc.verdicts[0].violation_label());
                }
            })
            .unwrap();
            assert_eq!(s_allowed, owned_allowed, "{}: model_allowed diverged", test.name);
            assert_eq!(s_labels, owned_labels, "{}: violation labels diverged", test.name);
        }
    }

    // Everything that should be identical across equivalent campaigns,
    // in one comparable blob (the structs don't derive `PartialEq`).
    fn fingerprint(s: &CampaignSummary) -> String {
        format!("{:?}", (s.tests, s.invalid, s.unseen, &s.classification, &s.reports, &s.lost))
    }

    #[test]
    fn clean_flaky_schedule_matches_plain_campaign_exactly() {
        let machine = &arm_machines()[0];
        let tests = arm_tests();
        let reference = Arm::new(ArmVariant::Proposed);
        let plain = campaign(machine, &tests, &reference, 1_000_000, 9).unwrap();
        // Attempt 0 reseeds to the plain RNG, so a never-flaky wrapper is
        // indistinguishable from no wrapper at all.
        let flaky = FlakyMachine::new(machine, 123).with_schedule(0, 0);
        let wrapped = campaign_flaky(&flaky, &tests, &reference, 1_000_000, 9, 3, 2).unwrap();
        assert_eq!(fingerprint(&plain), fingerprint(&wrapped));
    }

    #[test]
    fn flaky_campaign_recovers_and_is_worker_count_independent() {
        let machine = &arm_machines()[0];
        let tests = arm_tests();
        let reference = Arm::new(ArmVariant::Proposed);
        let flaky = FlakyMachine::new(machine, 42);
        assert!(
            tests.iter().any(|t| flaky.flake(&t.name, 0).is_some()),
            "the schedule actually selects corpus tests"
        );
        let budget = flaky.attempts_to_recover();
        let runs: Vec<CampaignSummary> = [1usize, 2, 5]
            .into_iter()
            .map(|w| campaign_flaky(&flaky, &tests, &reference, 1_000_000, 42, budget, w).unwrap())
            .collect();
        assert!(runs[0].is_complete(), "a sufficient budget recovers every flaky test");
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[1]));
        assert_eq!(fingerprint(&runs[0]), fingerprint(&runs[2]));
    }

    #[test]
    fn exhausted_retries_degrade_to_lost_tests() {
        let machine = &arm_machines()[0];
        let tests = arm_tests();
        let reference = Arm::new(ArmVariant::Proposed);
        // Fails 3 attempts per selected test, budget of 2: selected tests
        // are lost, the rest of the campaign survives.
        let flaky = FlakyMachine::new(machine, 42).with_schedule(2, 3);
        let summary = campaign_flaky(&flaky, &tests, &reference, 1_000_000, 42, 2, 3).unwrap();
        assert!(!summary.is_complete(), "some tests exhaust the budget");
        assert_eq!(summary.reports.len() + summary.lost.len(), tests.len());
        for lost in &summary.lost {
            assert!(lost.reason.contains("retry budget"), "{}", lost.reason);
            assert_eq!(flaky.flake(&lost.name, 0).is_some(), true, "only scheduled tests are lost");
        }
        assert!(!summary.reports.is_empty(), "unselected tests still report");
    }

    #[test]
    fn retry_attempts_consume_the_schedule_in_order() {
        let machine = &arm_machines()[0];
        let tests = arm_tests();
        let flaky = FlakyMachine::new(machine, 42);
        let (i, flaky_test) = tests
            .iter()
            .enumerate()
            .find(|(_, t)| flaky.flake(&t.name, 0).is_some())
            .expect("schedule selects a corpus test");
        let run = run_test_retry(&flaky, flaky_test, 1_000_000, 42, i, 5).unwrap();
        assert_eq!(run.flakes.len() as u32, flaky.attempts_to_recover() - 1);
        assert_eq!(run.attempts, flaky.attempts_to_recover());
        let outcome = run.outcome.expect("recovers within budget");
        assert!(!outcome.states.is_empty());
    }

    #[test]
    fn bug_only_observations_are_rare() {
        let machine = &arm_machines()[0]; // Tegra2 (llh)
        let mut rng = StdRng::seed_from_u64(1);
        let corr = corpus::co_rr(herd_litmus::isa::Isa::Arm);
        let run = run_test(machine, &corr, 10_000_000_000, &mut rng).unwrap();
        // The llh state is observed, but orders of magnitude more rarely
        // than the SC outcomes (Tab VI shape).
        let total: u64 = run.states.values().sum();
        let max: u64 = *run.states.values().max().unwrap();
        let min: u64 = *run.states.values().min().unwrap();
        assert!(run.states.len() >= 3, "{:?}", run.states);
        assert!(min > 0 && min < max / 1000, "rare anomaly: {min} of {total}");
    }
}
