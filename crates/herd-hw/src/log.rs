//! Litmus logs and log comparison (the diy suite's `mcompare` step).
//!
//! Hardware campaigns and model simulations both produce *logs*: per test,
//! a histogram of observed final states. The paper's methodology compares
//! such logs — model vs hardware — to find the *invalid* and *unseen*
//! discrepancies of Tab V (the online material at `diy.inria.fr/cats` is
//! exactly these logs). The format here follows litmus7's:
//!
//! ```text
//! Test mp Allowed
//! Histogram (3 states)
//! 4999999:>1:r1=0; 1:r2=0;
//! 4999998:>1:r1=1; 1:r2=1;
//! 153:>1:r1=1; 1:r2=0;
//! Ok
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One test's entry in a log: state → count (0 for model logs, which list
/// allowed states without frequencies).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogEntry {
    /// Test name.
    pub name: String,
    /// Observed (or allowed) states with counts.
    pub states: BTreeMap<String, u64>,
}

/// A whole log: many tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Log {
    /// Entries by test name.
    pub entries: BTreeMap<String, LogEntry>,
}

impl Log {
    /// Adds one test's states.
    pub fn insert(&mut self, name: &str, states: BTreeMap<String, u64>) {
        self.entries.insert(name.to_owned(), LogEntry { name: name.to_owned(), states });
    }

    /// Renders in litmus7-style text.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in self.entries.values() {
            s.push_str(&format!("Test {} Allowed\n", e.name));
            s.push_str(&format!("Histogram ({} states)\n", e.states.len()));
            for (state, count) in &e.states {
                s.push_str(&format!("{count}:>{state}\n"));
            }
            s.push('\n');
        }
        s
    }

    /// Parses the textual format back.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Log, String> {
        let mut log = Log::default();
        let mut current: Option<LogEntry> = None;
        for (lno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("Test ") {
                if let Some(e) = current.take() {
                    log.entries.insert(e.name.clone(), e);
                }
                let name = rest.split_whitespace().next().unwrap_or("").to_owned();
                if name.is_empty() {
                    return Err(format!("line {}: empty test name", lno + 1));
                }
                current = Some(LogEntry { name, states: BTreeMap::new() });
            } else if line.starts_with("Histogram") || line == "Ok" || line == "No" {
                // Informational lines.
            } else if let Some((count, state)) = line.split_once(":>") {
                let Some(entry) = current.as_mut() else {
                    return Err(format!("line {}: state before any Test header", lno + 1));
                };
                let count: u64 = count
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {}: bad count '{count}'", lno + 1))?;
                entry.states.insert(state.trim().to_owned(), count);
            } else {
                return Err(format!("line {}: unrecognised '{line}'", lno + 1));
            }
        }
        if let Some(e) = current.take() {
            log.entries.insert(e.name.clone(), e);
        }
        Ok(log)
    }
}

impl fmt::Display for Log {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Per-test discrepancies between a model log and a hardware log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Comparison {
    /// Tests with hardware states the model does not list (Tab V
    /// "invalid").
    pub invalid: BTreeMap<String, BTreeSet<String>>,
    /// Tests with model states the hardware never showed (Tab V
    /// "unseen").
    pub unseen: BTreeMap<String, BTreeSet<String>>,
    /// Tests present in only one log.
    pub missing: BTreeSet<String>,
}

impl Comparison {
    /// Tab V summary counts: `(tests compared, invalid, unseen)`.
    pub fn summary(&self) -> (usize, usize, usize) {
        (
            self.invalid.len().max(self.unseen.len()),
            self.invalid.values().filter(|s| !s.is_empty()).count(),
            self.unseen.values().filter(|s| !s.is_empty()).count(),
        )
    }
}

/// Compares a model log (allowed states) against a hardware log (observed
/// states) — `mcompare`.
pub fn compare(model: &Log, hardware: &Log) -> Comparison {
    let mut out = Comparison::default();
    for (name, hw) in &hardware.entries {
        let Some(m) = model.entries.get(name) else {
            out.missing.insert(name.clone());
            continue;
        };
        let invalid: BTreeSet<String> =
            hw.states.keys().filter(|s| !m.states.contains_key(*s)).cloned().collect();
        let unseen: BTreeSet<String> =
            m.states.keys().filter(|s| !hw.states.contains_key(*s)).cloned().collect();
        if !invalid.is_empty() {
            out.invalid.insert(name.clone(), invalid);
        }
        if !unseen.is_empty() {
            out.unseen.insert(name.clone(), unseen);
        }
    }
    for name in model.entries.keys() {
        if !hardware.entries.contains_key(name) {
            out.missing.insert(name.clone());
        }
    }
    out
}

/// Builds the model-side log for a set of tests under a model: per test,
/// the full states of the allowed candidate executions (count 0).
///
/// Models on the polynomial side of the tractability frontier
/// ([`herd_core::model::Tractability::Polynomial`]) and the conditional
/// models past it ([`Tractability::Conditional`], Power/ARM with their
/// ppo envelopes) are judged through the consistency backend — one
/// witness query per distinct final state instead of a full (rf, co)
/// enumeration; only [`Tractability::Frontier`] models keep the
/// enumerate-and-check path. All produce the same states.
///
/// [`Tractability::Conditional`]: herd_core::model::Tractability::Conditional
/// [`Tractability::Frontier`]: herd_core::model::Tractability::Frontier
pub fn model_log(
    tests: &[herd_litmus::program::LitmusTest],
    model: &dyn herd_core::model::Architecture,
) -> Log {
    use crate::campaign::{render_full_state, render_full_state_parts};
    use herd_core::model::Tractability;
    use herd_litmus::candidates::{enumerate, EnumOptions};
    let mut log = Log::default();
    for t in tests {
        let states: BTreeMap<String, u64> = if model.tractability() != Tractability::Frontier {
            let mut stats = herd_litmus::decide::QueryStats::default();
            let mut states = BTreeMap::new();
            herd_litmus::decide::allowed_full_outcomes(
                t,
                model,
                &EnumOptions::default(),
                &mut stats,
                &mut |regs, mem| {
                    states.insert(render_full_state_parts(regs, mem), 0);
                },
            )
            .expect("corpus tests enumerate");
            states
        } else {
            enumerate(t, &EnumOptions::default())
                .expect("corpus tests enumerate")
                .iter()
                .filter(|c| herd_core::model::check(model, &c.exec).allowed())
                .map(|c| (render_full_state(c), 0))
                .collect()
        };
        log.insert(&t.name, states);
    }
    log
}

/// The memoised variant of [`model_log`]: each `(test, model)` pair's
/// allowed-state set is looked up in (and on a miss, computed into) the
/// content-addressed `cache`, so re-judging a corpus a second time — the
/// normal shape of the Sec 11 data-mining loop — is one fingerprint and
/// one shard probe per test.
pub fn model_log_cached(
    tests: &[herd_litmus::program::LitmusTest],
    model: &dyn herd_core::model::Architecture,
    cache: &ModelLogCache,
) -> Log {
    use herd_litmus::candidates::EnumOptions;
    use herd_litmus::decide::query_fingerprint;
    let mut log = Log::default();
    for t in tests {
        let key = query_fingerprint(t, model.name(), &EnumOptions::default());
        let states = cache.get_or_insert_with(key, || {
            let one = model_log(std::slice::from_ref(t), model);
            one.entries.get(&t.name).map(|e| e.states.clone()).unwrap_or_default()
        });
        log.insert(&t.name, states);
    }
    log
}

/// A content-addressed store of model-log state sets, keyed by
/// `(test, model, opts)` fingerprints — see [`model_log_cached`].
pub type ModelLogCache = herd_cache::ShardedLru<BTreeMap<String, u64>>;

/// A content-addressed store of per-row verdicts, keyed by
/// `(test, model, opts, state row)` fingerprints — see
/// [`judge_entry_cached`].
pub type VerdictCache = herd_cache::ShardedLru<bool>;

/// Judges one log row — a full final state like `0:r1=1; x=2` — against a
/// model through the single-outcome backend: `Ok(true)` iff some
/// consistent execution of `test` produces the state. This is the
/// per-row form of the [`compare`] "invalid" set: a hardware state is
/// invalid exactly when `judge_entry` says `false`. A thin wrapper over
/// the batch machinery of [`judge_entries`] with a one-row log.
///
/// # Errors
///
/// Returns the parse error for a malformed state row, or the enumeration
/// error message for a program thread semantics rejects.
pub fn judge_entry(
    test: &herd_litmus::program::LitmusTest,
    model: &dyn herd_core::model::Architecture,
    state: &str,
) -> Result<bool, String> {
    judge_entries(test, model, std::slice::from_ref(&state)).map(|(v, _)| v[0])
}

/// Judges a whole batch of log rows against one `(test, model)` pair
/// through [`herd_litmus::decide::decide_log`]: repeated rows are
/// answered once, and distinct rows sharing a screened rf class share
/// one saturation. Returns per-row verdicts in input order plus the
/// batch accounting.
///
/// # Errors
///
/// Returns the parse error naming the first malformed state row, or the
/// enumeration error message for a program thread semantics rejects.
pub fn judge_entries<S: AsRef<str>>(
    test: &herd_litmus::program::LitmusTest,
    model: &dyn herd_core::model::Architecture,
    states: &[S],
) -> Result<(Vec<bool>, herd_litmus::decide::BatchStats), String> {
    use herd_litmus::candidates::EnumOptions;
    use herd_litmus::decide::{decide_log, Outcome};
    let rows: Vec<Outcome> = states
        .iter()
        .map(|s| Outcome::from_state_row(s.as_ref()))
        .collect::<Result<_, String>>()?;
    let batch =
        decide_log(test, model, &EnumOptions::default(), &rows).map_err(|e| e.to_string())?;
    Ok((batch.verdicts, batch.stats))
}

/// The memoised variant of [`judge_entry`]: the verdict is stored in the
/// content-addressed `cache` under the `(test, model, opts, row)`
/// fingerprint, so a warm re-query never re-runs the decision.
///
/// # Errors
///
/// As [`judge_entry`].
pub fn judge_entry_cached(
    test: &herd_litmus::program::LitmusTest,
    model: &dyn herd_core::model::Architecture,
    state: &str,
    cache: &VerdictCache,
) -> Result<bool, String> {
    use herd_litmus::candidates::EnumOptions;
    use herd_litmus::decide::{outcome_fingerprint, query_fingerprint, Outcome};
    let outcome = Outcome::from_state_row(state)?;
    let base = query_fingerprint(test, model.name(), &EnumOptions::default());
    let key = outcome_fingerprint(base, &outcome);
    if let Some(v) = cache.get(key) {
        return Ok(v);
    }
    let v = judge_entry(test, model, state)?;
    cache.insert(key, v);
    Ok(v)
}

/// The batched, memoised form of [`judge_entry`] — the Sec 11 `mcompare`
/// inner loop at full speed. The query fingerprint is computed once per
/// call (not once per row), every row is probed in the content-addressed
/// `cache`, and the misses are decided *together* through
/// [`herd_litmus::decide::decide_log`]'s class grouping before being
/// cached. A warm re-query is one parse, one row fingerprint and one
/// shard probe per row; a cold million-row log costs one saturation per
/// distinct rf class.
///
/// # Errors
///
/// As [`judge_entry`]; a parse error names the first malformed row and
/// caches nothing.
pub fn judge_log_cached<S: AsRef<str>>(
    test: &herd_litmus::program::LitmusTest,
    model: &dyn herd_core::model::Architecture,
    states: &[S],
    cache: &VerdictCache,
) -> Result<Vec<bool>, String> {
    use herd_litmus::candidates::EnumOptions;
    use herd_litmus::decide::{decide_log, outcome_fingerprint, query_fingerprint, Outcome};
    let base = query_fingerprint(test, model.name(), &EnumOptions::default());
    let mut verdicts: Vec<Option<bool>> = Vec::with_capacity(states.len());
    let mut keys = Vec::with_capacity(states.len());
    let mut missing = Vec::new();
    let mut rows = Vec::new();
    for (i, s) in states.iter().enumerate() {
        let outcome = Outcome::from_state_row(s.as_ref())?;
        let key = outcome_fingerprint(base, &outcome);
        let hit = cache.get(key);
        if hit.is_none() {
            missing.push(i);
            rows.push(outcome);
        }
        keys.push(key);
        verdicts.push(hit);
    }
    if !missing.is_empty() {
        let batch =
            decide_log(test, model, &EnumOptions::default(), &rows).map_err(|e| e.to_string())?;
        for (&i, &v) in missing.iter().zip(&batch.verdicts) {
            cache.insert(keys[i], v);
            verdicts[i] = Some(v);
        }
    }
    Ok(verdicts.into_iter().map(|v| v.expect("every row hit or was decided")).collect())
}

/// Builds the hardware-side log by running each test on a machine.
pub fn hardware_log(
    tests: &[herd_litmus::program::LitmusTest],
    machine: &crate::silicon::Machine,
    iterations: u64,
    seed: u64,
) -> Log {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut log = Log::default();
    for t in tests {
        let run =
            crate::campaign::run_test(machine, t, iterations, &mut rng).expect("corpus tests run");
        log.insert(&t.name, run.states);
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silicon::arm_machines;
    use herd_core::arch::{Arm, ArmVariant};
    use herd_litmus::corpus;

    #[test]
    fn render_parse_roundtrip() {
        let mut log = Log::default();
        log.insert(
            "mp",
            BTreeMap::from([
                ("1:r1=0; 1:r2=0;".to_owned(), 4_999_999),
                ("1:r1=1; 1:r2=0;".to_owned(), 153),
            ]),
        );
        log.insert("sb", BTreeMap::from([("0:r1=0; 1:r1=0;".to_owned(), 42)]));
        let text = log.render();
        assert_eq!(Log::parse(&text).unwrap(), log);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Log::parse("Test \n").is_err());
        assert!(Log::parse("5:>x=1;\n").is_err(), "state before header");
        assert!(Log::parse("Test t Allowed\nwat\n").is_err());
    }

    #[test]
    fn batched_and_cached_judging_match_the_plain_paths() {
        use herd_core::arch::Tso;
        use herd_litmus::corpus::Dev;
        use herd_litmus::isa::Isa;
        let test = corpus::sb(Isa::X86, Dev::Po, Dev::Po);
        let rows =
            ["0:r1=0; 1:r1=0", "0:r1=1; 1:r1=0", "0:r1=0; 1:r1=0", "0:r1=1; 1:r1=1", "x=1; y=1"];
        let (batch, stats) = judge_entries(&test, &Tso, &rows).unwrap();
        assert_eq!(stats.rows, rows.len() as u64);
        assert!(stats.reused >= 1, "the literal repeat is answered once");
        let cache = VerdictCache::new(1024);
        for (i, row) in rows.iter().enumerate() {
            let plain = judge_entry(&test, &Tso, row).unwrap();
            assert_eq!(batch[i], plain, "row {i}");
            assert_eq!(judge_entry_cached(&test, &Tso, row, &cache).unwrap(), plain);
            assert_eq!(judge_entry_cached(&test, &Tso, row, &cache).unwrap(), plain, "warm");
        }
        let s = cache.stats();
        assert!(s.hits >= rows.len() as u64 - 1, "second pass hits: {s:?}");
        assert!(judge_entry(&test, &Tso, "not a state").is_err());

        // The batched cached path: cold agrees with the batch verdicts,
        // warm is all hits and agrees again.
        let log_cache = VerdictCache::new(1024);
        let cold = judge_log_cached(&test, &Tso, &rows, &log_cache).unwrap();
        assert_eq!(cold, batch);
        let warm = judge_log_cached(&test, &Tso, &rows, &log_cache).unwrap();
        assert_eq!(warm, batch);
        let s = log_cache.stats();
        assert_eq!(s.misses, 5, "every cold probe misses (the repeat probes twice)");
        assert_eq!(s.len, 4, "four distinct rows stored");
        assert!(s.hits >= rows.len() as u64, "the warm pass never decides: {s:?}");
        assert!(judge_log_cached(&test, &Tso, &["bogus"], &log_cache).is_err());
    }

    #[test]
    fn cached_model_log_matches_and_hits_when_warm() {
        use herd_core::arch::Tso;
        let tests: Vec<_> = corpus::x86_corpus().into_iter().map(|e| e.test).take(4).collect();
        let plain = model_log(&tests, &Tso);
        let cache = ModelLogCache::new(256);
        let cold = model_log_cached(&tests, &Tso, &cache);
        assert_eq!(cold, plain);
        let warm = model_log_cached(&tests, &Tso, &cache);
        assert_eq!(warm, plain);
        let s = cache.stats();
        assert_eq!(s.misses, tests.len() as u64, "cold pass misses once per test");
        assert_eq!(s.hits, tests.len() as u64, "warm pass is all hits");
    }

    #[test]
    fn mcompare_reproduces_tab5_for_one_machine() {
        let tests: Vec<_> = corpus::arm_corpus().into_iter().map(|e| e.test).collect();
        let machines = arm_machines();
        let tegra3 = machines.iter().find(|m| m.name == "Tegra3").unwrap();
        let hw = hardware_log(&tests, tegra3, 10_000_000_000, 7);
        let model = model_log(&tests, &Arm::new(ArmVariant::PowerArm));
        let cmp = compare(&model, &hw);
        let (_, invalid, unseen) = cmp.summary();
        assert!(invalid > 0, "Tegra3 invalidates Power-ARM");
        assert!(unseen > 0, "some allowed states stay unseen");
        assert!(cmp.missing.is_empty());
        // The coRR state is among the invalid ones.
        assert!(
            cmp.invalid.keys().any(|k| k == "coRR"),
            "{:?}",
            cmp.invalid.keys().collect::<Vec<_>>()
        );
        // And the whole thing round-trips through text.
        let hw2 = Log::parse(&hw.render()).unwrap();
        assert_eq!(compare(&model, &hw2), cmp);
    }
}
