//! Silicon behaviour models: what the tested machines actually do.
//!
//! The paper validates its models by running diy-generated litmus tests on
//! Power and ARM hardware (Sec 8.1). We do not have that hardware; per the
//! substitution rule, each tested machine is modelled as an
//! [`Architecture`] describing the behaviours its silicon can produce:
//!
//! - Power 6/7 machines behave like the Power model *minus* the
//!   not-yet-implemented load-buffering relaxations (the paper's "unseen"
//!   rows: lb is architecturally allowed but never observed, Sec 8.1.1);
//! - the ARM machines all suffer the **load-load hazard** bug
//!   (acknowledged by ARM, Sec 8.1.2) — coRR-style behaviours;
//! - Qualcomm parts additionally show the **early commit** behaviours of
//!   Fig 32/33 (same-location accesses commit out of order);
//! - Tegra3 additionally shows **isb-defeating** anomalies: the
//!   OBSERVATION violations of Fig 35 (`mp+dmb+pos-ctrlisb+bis`,
//!   `mp+dmb+ctrlisb`), modelled as the control fence dropping out of the
//!   preserved program order.

use herd_core::arch::{prop_power_arm, Arm, ArmVariant, Power};
use herd_core::event::{Dir, Fence};
use herd_core::exec::Execution;
use herd_core::model::Architecture;
use herd_core::ppo::{self, PpoConfig};
use herd_core::relation::Relation;

/// A Power machine: the Power model with write-forwarding-free cores, so
/// a read never appears after a po-later write (no `lb`).
#[derive(Clone, Copy, Debug, Default)]
pub struct PowerSilicon;

impl Architecture for PowerSilicon {
    fn name(&self) -> &str {
        "Power-silicon"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        // Hardware keeps read-to-write program order (no value
        // speculation, no visible speculative stores): lb never shows.
        let rw = x.dir_restrict(x.po(), Some(Dir::R), Some(Dir::W));
        Power::new().ppo(x).union(&rw)
    }

    fn fences(&self, x: &Execution) -> Relation {
        Power::new().fences(x)
    }

    fn prop(&self, x: &Execution) -> Relation {
        prop_power_arm(x, &self.ppo(x), &self.fences(x), &x.fence(Fence::Sync))
    }
}

/// Hardware bugs an ARM part may exhibit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArmErrata {
    /// Load-load hazards: same-address reads may be satisfied out of
    /// order (the acknowledged Cortex-A9 bug; observed on every machine
    /// the paper tested).
    pub load_load_hazards: bool,
    /// Early commit of same-location accesses (Fig 32/33; desirable per
    /// the ARM designers, adopted by the proposed model).
    pub early_commit: bool,
    /// The control fence fails to order reads (Tegra3's OBSERVATION
    /// violations, Fig 35).
    pub isb_defeat: bool,
}

/// An ARM machine: the ARM skeleton with a set of errata.
#[derive(Clone, Debug)]
pub struct ArmSilicon {
    name: String,
    errata: ArmErrata,
}

impl ArmSilicon {
    /// Builds a named part with the given errata.
    pub fn new(name: impl Into<String>, errata: ArmErrata) -> Self {
        ArmSilicon { name: name.into(), errata }
    }

    /// The part's errata.
    pub fn errata(&self) -> ArmErrata {
        self.errata
    }

    fn ppo_config(&self) -> PpoConfig {
        let mut cfg = if self.errata.early_commit { PpoConfig::arm() } else { PpoConfig::power() };
        if self.errata.isb_defeat {
            cfg.ctrl_cfence_in_ci0 = false;
        }
        cfg
    }
}

impl Architecture for ArmSilicon {
    fn name(&self) -> &str {
        &self.name
    }

    fn ppo(&self, x: &Execution) -> Relation {
        // Like PowerSilicon, the cores never reorder reads before po-later
        // writes: lb stays unobserved on hardware.
        let rw = x.dir_restrict(x.po(), Some(Dir::R), Some(Dir::W));
        ppo::compute(x, &self.ppo_config()).ppo.union(&rw)
    }

    fn fences(&self, x: &Execution) -> Relation {
        Arm::new(ArmVariant::Proposed).fences(x)
    }

    fn prop(&self, x: &Execution) -> Relation {
        let arm = Arm::new(ArmVariant::Proposed);
        prop_power_arm(x, &self.ppo(x), &self.fences(x), &arm.ffence(x))
    }

    fn tolerates_load_load_hazards(&self) -> bool {
        // Routes both the default sc_per_location_po_loc and the driver's
        // generation-time pruning mode (Prune::for_arch) through the
        // erratum, so hazard candidates survive enumeration on parts that
        // exhibit them.
        self.errata.load_load_hazards
    }
}

/// How rarely a behaviour shows up on the part (per run).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rarity {
    /// SC-consistent outcomes: the overwhelming majority of runs.
    Common,
    /// Architecturally-relaxed outcomes (allowed by the clean model).
    Weak,
    /// Erratum-only outcomes (the Tab VI counts: handfuls per billions).
    BugOnly,
}

impl Rarity {
    /// Sampling weight of the class.
    pub fn weight(self) -> f64 {
        match self {
            Rarity::Common => 1.0,
            Rarity::Weak => 2e-3,
            Rarity::BugOnly => 5e-8,
        }
    }
}

/// A complete tested machine: its silicon model plus the clean reference
/// model used to classify outcome rarity.
pub struct Machine {
    /// Part name as in the paper (Tab VI).
    pub name: &'static str,
    /// What the silicon can do (`Send + Sync`: campaigns fan tests out
    /// over the work-stealing executor, which shares the machine across
    /// worker threads).
    pub silicon: Box<dyn Architecture + Send + Sync>,
    /// The clean (bug-free) model for this part's architecture, used to
    /// grade outcome rarity.
    pub clean: Box<dyn Architecture + Send + Sync>,
}

/// The Power machines of Sec 8.1.1.
pub fn power_machines() -> Vec<Machine> {
    ["Power6", "Power7"]
        .into_iter()
        .map(|name| Machine {
            name,
            silicon: Box::new(PowerSilicon),
            clean: Box::new(Power::new()),
        })
        .collect()
}

/// An x86 machine: exactly TSO (the control case — campaigns against the
/// TSO model report neither invalid nor unseen tests beyond sampling
/// noise).
pub fn x86_machines() -> Vec<Machine> {
    vec![Machine {
        name: "Xeon",
        silicon: Box::new(crate::silicon_tso::TsoSilicon),
        clean: Box::new(herd_core::arch::Tso),
    }]
}

/// The ARM machines of Sec 8.1.2 with their observed errata.
pub fn arm_machines() -> Vec<Machine> {
    let llh = ArmErrata { load_load_hazards: true, ..Default::default() };
    let qualcomm = ArmErrata { load_load_hazards: true, early_commit: true, ..Default::default() };
    let tegra3 = ArmErrata { load_load_hazards: true, isb_defeat: true, ..Default::default() };
    let parts: Vec<(&'static str, ArmErrata)> = vec![
        ("Tegra2", llh),
        ("Tegra3", tegra3),
        ("APQ8060", qualcomm),
        ("APQ8064", qualcomm),
        ("A5X", llh),
        ("Exynos4412", llh),
    ];
    parts
        .into_iter()
        .map(|(name, errata)| Machine {
            name,
            silicon: Box::new(ArmSilicon::new(name, errata)),
            clean: Box::new(Arm::new(ArmVariant::Proposed)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use herd_core::fixtures::{self, Device};
    use herd_core::model::check;

    #[test]
    fn power_silicon_never_shows_lb() {
        let lb = fixtures::lb(Device::None, Device::None);
        assert!(check(&Power::new(), &lb).allowed(), "the model allows lb");
        assert!(!check(&PowerSilicon, &lb).allowed(), "hardware does not exhibit it");
        // But mp stays observable.
        let mp = fixtures::mp(Device::None, Device::None);
        assert!(check(&PowerSilicon, &mp).allowed());
    }

    #[test]
    fn llh_parts_show_corr() {
        let t2 =
            ArmSilicon::new("Tegra2", ArmErrata { load_load_hazards: true, ..Default::default() });
        assert!(check(&t2, &fixtures::co_rr()).allowed());
        assert!(!check(&t2, &fixtures::co_ww()).allowed());
    }

    #[test]
    fn tegra3_defeats_isb() {
        let t3 = ArmSilicon::new(
            "Tegra3",
            ArmErrata { load_load_hazards: true, isb_defeat: true, ..Default::default() },
        );
        let mp = fixtures::mp(Device::Fence(Fence::Dmb), Device::CtrlCfence);
        assert!(
            check(&t3, &mp).allowed(),
            "Fig 35: Tegra3 exhibits mp+dmb+ctrlisb, violating OBSERVATION"
        );
        let clean = Arm::new(ArmVariant::Proposed);
        assert!(!check(&clean, &mp).allowed());
    }

    #[test]
    fn qualcomm_parts_show_early_commit_tegra2_does_not() {
        use herd_core::fixtures::ExecBuilder;
        // The Fig 32 witness.
        let mut b = ExecBuilder::new();
        let a = b.write(0, "x", 1);
        let w = b.write(0, "y", 1);
        let c = b.read(1, "y", 1);
        let d = b.write(1, "y", 2);
        let e = b.read(1, "y", 2);
        let f = b.read_init(1, "x");
        b.rf(w, c).rf(d, e).co(w, d).fence(Fence::Dmb, a, w).ctrl_cfence(e, f);
        let x = b.build().unwrap();
        let apq = ArmSilicon::new(
            "APQ8060",
            ArmErrata { load_load_hazards: true, early_commit: true, ..Default::default() },
        );
        let tegra2 =
            ArmSilicon::new("Tegra2", ArmErrata { load_load_hazards: true, ..Default::default() });
        assert!(check(&apq, &x).allowed(), "Qualcomm shows fri-rfi early commit");
        assert!(!check(&tegra2, &x).allowed(), "Tegra2 does not");
    }

    #[test]
    fn machine_lists() {
        assert_eq!(power_machines().len(), 2);
        assert_eq!(arm_machines().len(), 6);
        assert!(Rarity::BugOnly.weight() < Rarity::Weak.weight());
    }
}
