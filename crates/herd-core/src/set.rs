//! Dense bitsets over event identifiers.
//!
//! An [`EventSet`] represents a subset of a fixed universe of `n` events
//! (the events of one candidate execution). Litmus-scale executions have a
//! few dozen events at most, so a handful of `u64` words suffices and all
//! set operations are word-parallel.

use std::fmt;

/// A subset of a fixed universe of `n` events, stored as a bitset.
///
/// # Examples
///
/// ```
/// use herd_core::set::EventSet;
/// let mut s = EventSet::empty(70);
/// s.insert(3);
/// s.insert(69);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct EventSet {
    n: usize,
    words: Vec<u64>,
}

pub(crate) use crate::maskrow::words_for;

impl EventSet {
    /// The empty subset of a universe of `n` events.
    pub fn empty(n: usize) -> Self {
        EventSet { n, words: vec![0; words_for(n)] }
    }

    /// The full universe of `n` events.
    pub fn full(n: usize) -> Self {
        let mut s = EventSet::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Builds a set from an iterator of event indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn from_indices<I: IntoIterator<Item = usize>>(n: usize, iter: I) -> Self {
        let mut s = EventSet::empty(n);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Size of the universe (not the cardinality of the set).
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts event `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.n, "event index {i} out of universe {}", self.n);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes event `i` if present.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        if i < self.n {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Does the set contain event `i`?
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.n && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: &EventSet) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Set intersection, in place.
    pub fn intersect_with(&mut self, other: &EventSet) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Set difference, in place.
    pub fn minus_with(&mut self, other: &EventSet) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Set union, by value.
    pub fn union(&self, other: &EventSet) -> EventSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Set intersection, by value.
    pub fn intersect(&self, other: &EventSet) -> EventSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Complement within the universe.
    pub fn complement(&self) -> EventSet {
        let mut s = EventSet::full(self.n);
        s.minus_with(self);
        s
    }

    /// Iterates over member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&i| self.contains(i))
    }

    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for EventSet {
    /// Collects indices into a set whose universe is just large enough.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let n = items.iter().copied().max().map_or(0, |m| m + 1);
        EventSet::from_indices(n, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = EventSet::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = EventSet::full(10);
        assert_eq!(f.len(), 10);
        assert!(!f.is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = EventSet::empty(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn boolean_ops() {
        let a = EventSet::from_indices(8, [0, 1, 2]);
        let b = EventSet::from_indices(8, [2, 3]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![2]);
        let mut d = a.clone();
        d.minus_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn complement_is_involution() {
        let a = EventSet::from_indices(70, [0, 5, 69]);
        assert_eq!(a.complement().complement(), a);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_bounds_panics() {
        let mut s = EventSet::empty(4);
        s.insert(4);
    }
}
