//! Hierarchical work scheduling for candidate enumeration (paper, Sec 8.3).
//!
//! herd's workload is a walk of the rf×co candidate space, and its shape
//! varies wildly per test: IRIW-like tests have thousands of rf
//! configurations each carrying a handful of coherence orders, while
//! co-heavy tests (many same-location writes, few reads) have a handful of
//! rf configurations each carrying a factorial number of coherence orders.
//! The static rf-prefix sharding of earlier revisions split only the rf
//! odometer, so on a co-heavy test all but a few workers went idle.
//!
//! This module decomposes the *combined* mixed-radix odometer instead:
//!
//! * A [`WorkUnit`] is a contiguous sub-range of the enumeration space —
//!   either a range of rf-configuration linear indices, or, for rf
//!   configurations whose surviving coherence menu dwarfs the rf space, a
//!   sub-range of the coherence-menu odometer *within* a single rf
//!   configuration. The arena engine's per-digit scope structure makes a
//!   co unit cheap: it is an O(digits) seek of the rf odometer (the
//!   crate-internal `RfDriver::new_range`) plus a `Mark`-bounded replay
//!   of the rf prefix, with no work shared or repeated across units
//!   beyond that prefix.
//! * A [`WorkPlan`] is the decomposition of one skeleton's space into
//!   units, computed by [`WorkPlan::for_skeleton`]: rf-range chunks when
//!   the rf space alone offers enough parallelism, co-level splitting when
//!   it does not. Per-unit `emitted + pruned` accounting stays exact — the
//!   unit covering a configuration's menu prefix claims its
//!   generation-time prunes — so the per-unit [`CheckedStats`] summed over
//!   any plan equal [`Skeleton::candidate_count`].
//! * [`execute_units`] is the lock-light work-stealing executor: one
//!   atomic unit cursor, per-worker owned state (a [`RelArena`], an
//!   engine state, a caller sink), units handed out in plan order —
//!   priority-first ([`WorkPlan::prioritise`]), largest-first within a
//!   priority band — so urgent units start early and the tail stays
//!   short. Every parallel entry point of the workspace —
//!   [`Skeleton::check_stream_sched`] here, `simulate_sharded` /
//!   `simulate_corpus` in `herd-litmus`, the `herd-hw` campaign drivers —
//!   runs on this executor instead of hand-rolled scoped-thread loops.

use crate::arena::RelArena;
use crate::enumerate::{run_arena_range, CheckedStats, EngineCtx, EngineState, RfDriver, Skeleton};
use crate::exec::ExecFrame;
use crate::faultpoint::{self, FaultPoint};
use crate::model::{Architecture, Verdict};
use crate::thinair::ThinAirTracker;
use crate::uniproc::CoMenus;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag, shareable across threads and across
/// the whole execution stack: clone it into a [`Budget`], keep the
/// original, and [`CancelToken::cancel`] stops every enumeration checking
/// that budget at its next check point — mid-odometer, with exact
/// accounting ([`CheckedStats::remaining`]).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: every budget holding a clone observes it at its
    /// next check point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has the token been tripped?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why an enumeration stopped before exhausting its range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The [`Budget`] deadline passed.
    Deadline,
    /// The [`Budget`]'s [`CancelToken`] was tripped.
    Cancelled,
    /// The emitted-candidate budget was exhausted.
    CandidateBudget,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Deadline => f.write_str("deadline passed"),
            StopReason::Cancelled => f.write_str("cancelled"),
            StopReason::CandidateBudget => f.write_str("candidate budget exhausted"),
        }
    }
}

/// An execution budget: a wall-clock deadline, an emitted-candidate
/// bound, and/or a cooperative [`CancelToken`] — the load-shedding knobs
/// of the Sec 8.3 experimental methodology (bounded experiments on flaky
/// machines) threaded through the whole engine.
///
/// Budgets are checked on unit boundaries and inside `run_arena_range`:
/// the candidate bound and the cancel flag on every candidate (a compare
/// and a relaxed load), the deadline only on rf-configuration boundaries
/// and every 1024 emitted candidates (`Instant::now` is the expensive
/// one). A tripped budget stops enumeration mid-odometer with *exact*
/// accounting: `emitted + pruned + remaining` still equals the range's
/// candidate count, and [`CheckedStats::resume`] names the cut point.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_candidates: Option<u128>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// The no-op budget: never stops anything, costs two branch tests per
    /// candidate.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Stop (with [`StopReason::Deadline`]) once `deadline` has passed.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// [`Budget::with_deadline`], relative to now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Stop (with [`StopReason::CandidateBudget`]) after emitting at most
    /// `max` candidates.
    pub fn with_max_candidates(mut self, max: u128) -> Self {
        self.max_candidates = Some(max);
        self
    }

    /// Stop (with [`StopReason::Cancelled`]) once `token` is tripped.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Is this the no-op budget?
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_candidates.is_none() && self.cancel.is_none()
    }

    /// The cheap per-candidate check: candidate bound and cancel flag
    /// only (no clock read).
    #[inline]
    pub fn check_fast(&self, emitted: u128) -> Option<StopReason> {
        if let Some(max) = self.max_candidates {
            if emitted >= max {
                return Some(StopReason::CandidateBudget);
            }
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        None
    }

    /// The full check: [`Budget::check_fast`] plus the deadline.
    pub fn check(&self, emitted: u128) -> Option<StopReason> {
        if let Some(reason) = self.check_fast(emitted) {
            return Some(reason);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::Deadline);
            }
        }
        None
    }
}

/// One schedulable sub-range of a skeleton's rf×co enumeration space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkUnit {
    /// First rf-configuration linear index covered (inclusive).
    pub rf_start: u128,
    /// One past the last rf-configuration index covered.
    pub rf_end: u128,
    /// `Some((s, e))` restricts the unit to coherence-menu odometer
    /// indices `[s, e)` of a *single* rf configuration (then
    /// `rf_end == rf_start + 1`); `None` covers every coherence order of
    /// every configuration in the rf range.
    pub co: Option<(u128, u128)>,
    /// Estimated candidate count of the unit (drives largest-first
    /// execution order; not part of the accounting contract).
    pub weight: u128,
    /// Caller-assigned scheduling priority: higher-priority units are
    /// stolen first, with `weight` breaking ties (largest first). Plans
    /// are born with every unit at priority 0 — assign via
    /// [`WorkPlan::prioritise`]. Like `weight`, this steers execution
    /// order only; it is not part of the accounting contract.
    pub priority: u32,
}

/// Knobs for [`WorkPlan::for_skeleton`].
#[derive(Clone, Copy, Debug)]
pub struct PlanOpts {
    /// Worker threads the plan should feed.
    pub workers: usize,
    /// Target units per worker: more units → better stealing balance,
    /// more per-unit seek overhead. 4 is plenty for litmus-scale tests.
    pub units_per_worker: usize,
    /// Allow co-level splitting (sub-ranges of one rf configuration's
    /// coherence menu). Disabled, the plan degrades to rf-range chunks —
    /// the static sharding of earlier revisions, kept for comparison.
    pub co_split: bool,
}

impl PlanOpts {
    /// A plan sized for `workers` threads with default granularity.
    pub fn for_workers(workers: usize) -> Self {
        PlanOpts { workers, units_per_worker: 4, co_split: true }
    }
}

impl Default for PlanOpts {
    fn default() -> Self {
        PlanOpts::for_workers(std::thread::available_parallelism().map_or(1, |p| p.get()))
    }
}

/// The decomposition of one skeleton's enumeration space into
/// [`WorkUnit`]s, held in steal order (priority descending, then
/// largest-first) for the stealing executor.
#[derive(Clone, Debug)]
pub struct WorkPlan {
    units: Vec<WorkUnit>,
}

impl WorkPlan {
    /// Plans the decomposition of `sk`'s rf×co space for `arch` (whose
    /// pruning axes decide how much coherence work each rf configuration
    /// actually carries).
    ///
    /// When the rf space alone has at least `workers × units_per_worker`
    /// configurations, the plan is plain rf-range chunking. Otherwise the
    /// planner evaluates every rf configuration's surviving coherence
    /// menu (the same uniproc filtering and thin-air check the engine
    /// performs — the evaluation is the engine's own rf scope, so plan
    /// and execution can never disagree) and splits configurations whose
    /// menus dominate the total into co-level units.
    pub fn for_skeleton<A: Architecture + ?Sized>(
        sk: &Skeleton,
        arch: &A,
        opts: &PlanOpts,
    ) -> WorkPlan {
        Self::plan(&EngineCtx::new(sk, arch), opts)
    }

    pub(crate) fn plan(ctx: &EngineCtx, opts: &PlanOpts) -> WorkPlan {
        let parts = &ctx.parts;
        let rf_total = RfDriver::rf_total(parts);
        let target = (opts.workers.max(1) as u128)
            .saturating_mul(opts.units_per_worker.max(1) as u128)
            .max(1);
        if rf_total == 0 {
            return WorkPlan { units: Vec::new() };
        }

        let mut units: Vec<WorkUnit>;
        if !opts.co_split || rf_total >= target {
            units = rf_range_units(rf_total, target);
        } else {
            // Co-heavy: few rf configurations, so evaluating each one's
            // surviving coherence menu at plan time is cheap (it is the
            // same per-rf-scope work the engine does once anyway).
            let cfgs = rf_total as usize;
            let n = parts.base_events.len();
            let radices: Vec<usize> = parts.rf_choices.iter().map(Vec::len).collect();
            let mut tracker = ctx.thin_air.as_ref().map(|base| ThinAirTracker::new(base));
            let mut menus = CoMenus::new(&parts.loc_writes);
            let mut rf_src = vec![0usize; n];

            // Surviving coherence combinations per configuration (0 when
            // the whole configuration is doomed at generation time).
            let mut kept = vec![0u128; cfgs];
            for (i, k) in kept.iter_mut().enumerate() {
                let mut rem = i;
                let mut doomed = false;
                let mut edges = Vec::new();
                for (d, &radix) in radices.iter().enumerate() {
                    let pick = rem % radix;
                    rem /= radix;
                    let r = parts.reads[d];
                    let w = parts.rf_choices[d][pick];
                    rf_src[r] = w;
                    let external = match (parts.base_events[w].thread, parts.base_events[r].thread)
                    {
                        (Some(a), Some(b)) => a != b,
                        _ => true,
                    };
                    if external {
                        edges.push((w, r));
                    }
                }
                if let Some(t) = tracker.as_mut() {
                    doomed |= !t.check_rf(edges.iter().copied());
                }
                doomed |= !ctx.graphs.rf_only_consistent_pooled(&parts.locs, &rf_src, &mut menus);
                if !doomed {
                    ctx.graphs.co_menus_into(&parts.locs, &rf_src, &mut menus);
                    *k = menus.kept();
                }
            }

            let total_work: u128 = kept.iter().map(|&k| k.max(1)).fold(0u128, u128::saturating_add);
            let chunk = total_work.div_ceil(target).max(1);

            // Configurations worth splitting become co units; the rest
            // coalesce into contiguous rf-range units.
            units = Vec::new();
            let mut run_start: Option<u128> = None;
            let mut run_weight = 0u128;
            let flush = |units: &mut Vec<WorkUnit>, start: &mut Option<u128>, end, w: &mut u128| {
                if let Some(s) = start.take() {
                    units.push(WorkUnit {
                        rf_start: s,
                        rf_end: end,
                        co: None,
                        weight: *w,
                        priority: 0,
                    });
                    *w = 0;
                }
            };
            for (i, &k) in kept.iter().enumerate() {
                let i = i as u128;
                if k >= chunk.saturating_mul(2) {
                    flush(&mut units, &mut run_start, i, &mut run_weight);
                    let mut s = 0u128;
                    while s < k {
                        let e = (s + chunk).min(k);
                        units.push(WorkUnit {
                            rf_start: i,
                            rf_end: i + 1,
                            co: Some((s, e)),
                            weight: e - s,
                            priority: 0,
                        });
                        s = e;
                    }
                } else {
                    if run_start.is_none() {
                        run_start = Some(i);
                    }
                    run_weight = run_weight.saturating_add(k.max(1));
                }
            }
            flush(&mut units, &mut run_start, rf_total, &mut run_weight);
        }

        // Largest first (every fresh unit has priority 0): the stealing
        // executor then finishes with small units, keeping the makespan
        // tail short.
        units.sort_by(steal_order);
        WorkPlan { units }
    }

    /// Assigns each unit the priority `f` computes for it, then re-sorts
    /// into steal order: priority descending, `weight` descending within
    /// a priority band. The sort is stable, so units tied on both keys
    /// keep their current relative order — two `prioritise` calls with
    /// the same function yield the same unit sequence, and since
    /// [`execute_units`]' atomic cursor hands units out in plan order,
    /// that sequence *is* the steal order, independent of worker count.
    pub fn prioritise(&mut self, mut f: impl FnMut(&WorkUnit) -> u32) {
        for u in &mut self.units {
            u.priority = f(u);
        }
        self.units.sort_by(steal_order);
    }

    /// The planned units, in execution (steal) order: priority
    /// descending, then largest-first.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Is the plan empty (a skeleton with no candidates)?
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// How many units are co-level (sub-ranges within one rf
    /// configuration) — the hierarchy's second level.
    pub fn co_units(&self) -> usize {
        self.units.iter().filter(|u| u.co.is_some()).count()
    }
}

/// Splits `[0, total)` into at most `target` contiguous ranges of equal
/// size (the last may be shorter). Shared by the skeleton planner and the
/// litmus-level rf-configuration planner.
pub fn rf_ranges(total: u128, target: u128) -> Vec<(u128, u128)> {
    if total == 0 {
        return Vec::new();
    }
    let chunks = target.clamp(1, total);
    let chunk = total.div_ceil(chunks);
    let mut out = Vec::new();
    let mut s = 0u128;
    while s < total {
        let e = (s + chunk).min(total);
        out.push((s, e));
        s = e;
    }
    out
}

/// The executor's claim order: priority descending, then weight
/// descending. Used as a *stable* sort key, so the full order is
/// deterministic for any fixed plan.
fn steal_order(a: &WorkUnit, b: &WorkUnit) -> std::cmp::Ordering {
    b.priority.cmp(&a.priority).then(b.weight.cmp(&a.weight))
}

fn rf_range_units(total: u128, target: u128) -> Vec<WorkUnit> {
    rf_ranges(total, target)
        .into_iter()
        .map(|(s, e)| WorkUnit { rf_start: s, rf_end: e, co: None, weight: e - s, priority: 0 })
        .collect()
}

/// The outcome of one work unit under the panic-isolated executor.
#[derive(Debug)]
pub enum UnitResult<R> {
    /// The unit ran to completion.
    Done(R),
    /// The unit's `run` panicked. The worker rebuilt its state and kept
    /// stealing; every other unit's result is intact.
    Poisoned {
        /// The panic payload, stringified (`"non-string panic payload"`
        /// when the payload was neither `String` nor `&str`).
        payload: String,
    },
}

impl<R> UnitResult<R> {
    /// The completed result, if the unit was not poisoned.
    pub fn done(self) -> Option<R> {
        match self {
            UnitResult::Done(r) => Some(r),
            UnitResult::Poisoned { .. } => None,
        }
    }

    /// Borrowing twin of [`UnitResult::done`].
    pub fn as_done(&self) -> Option<&R> {
        match self {
            UnitResult::Done(r) => Some(r),
            UnitResult::Poisoned { .. } => None,
        }
    }

    /// Did the unit panic?
    pub fn is_poisoned(&self) -> bool {
        matches!(self, UnitResult::Poisoned { .. })
    }

    /// The panic payload, if the unit was poisoned.
    pub fn poison_payload(&self) -> Option<&str> {
        match self {
            UnitResult::Done(_) => None,
            UnitResult::Poisoned { payload } => Some(payload),
        }
    }
}

fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    match p.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "non-string panic payload".to_owned(),
        },
    }
}

/// The lock-light work-stealing executor behind every parallel entry
/// point: `units` indices are handed out through one atomic cursor;
/// worker `w` owns the state `init(w)` builds (arena, sinks, accumulators
/// — never shared, never locked) and runs `run(&mut state, unit)` for
/// every unit it steals.
///
/// Per-unit panic isolation: each `run` call is wrapped in
/// `catch_unwind`, so a panicking unit becomes [`UnitResult::Poisoned`]
/// instead of aborting the run — the worker calls `repair` on its state
/// (a panic can leave the *engine* part mid-mutation; accumulated results
/// must survive, so the caller, not the executor, decides what to rebuild)
/// and keeps stealing, and every completed unit's result is intact. The
/// inline (`workers <= 1`) path catches identically, so poisoning
/// behaviour is worker-count independent.
///
/// Returns the per-worker states (for the caller to merge) and the
/// per-unit results, indexed by unit. With `workers <= 1` or a single
/// unit everything runs inline on the calling thread — no spawn, same
/// results.
pub fn execute_units<S, R>(
    units: usize,
    workers: usize,
    init: impl Fn(usize) -> S + Sync,
    repair: impl Fn(&mut S) + Sync,
    run: impl Fn(&mut S, usize) -> R + Sync,
) -> (Vec<S>, Vec<UnitResult<R>>)
where
    S: Send,
    R: Send,
{
    let guarded = |s: &mut S, u: usize| -> UnitResult<R> {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            faultpoint::hit(FaultPoint::UnitClaim, u as u64);
            run(s, u)
        }));
        match attempt {
            Ok(r) => UnitResult::Done(r),
            Err(p) => UnitResult::Poisoned { payload: panic_payload(p) },
        }
    };
    if workers <= 1 || units <= 1 {
        let mut s = init(0);
        let mut out = Vec::with_capacity(units);
        for u in 0..units {
            let r = guarded(&mut s, u);
            if r.is_poisoned() {
                // The panic may have torn the engine state mid-mutation.
                repair(&mut s);
            }
            out.push(r);
        }
        return (vec![s], out);
    }
    let workers = workers.min(units);
    let next = AtomicUsize::new(0);
    let done: Vec<(S, Vec<(usize, UnitResult<R>)>)> = std::thread::scope(|scope| {
        let (next, init, repair, guarded) = (&next, &init, &repair, &guarded);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut s = init(w);
                    let mut mine = Vec::new();
                    loop {
                        let u = next.fetch_add(1, Ordering::Relaxed);
                        if u >= units {
                            break;
                        }
                        let r = guarded(&mut s, u);
                        if r.is_poisoned() {
                            repair(&mut s);
                        }
                        mine.push((u, r));
                    }
                    (s, mine)
                })
            })
            .collect();
        // Workers cannot panic out of the loop above (every unit body is
        // caught), so a join failure is a bug in the executor itself.
        handles.into_iter().map(|h| h.join().expect("executor worker panicked")).collect()
    });
    let mut states = Vec::with_capacity(workers);
    let mut slots: Vec<Option<UnitResult<R>>> = (0..units).map(|_| None).collect();
    for (s, mine) in done {
        states.push(s);
        for (u, r) in mine {
            slots[u] = Some(r);
        }
    }
    let out = slots.into_iter().map(|r| r.expect("every unit was claimed")).collect();
    (states, out)
}

/// One unit lost to a panic, as reported by
/// [`Skeleton::check_stream_sched`] and its litmus-level callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoisonedUnit {
    /// Index into [`WorkPlan::units`] of the unit that panicked.
    pub unit: usize,
    /// The stringified panic payload.
    pub payload: String,
}

/// What [`Skeleton::check_stream_sched`] returns: the merged stats, the
/// per-unit stats (plan order), and the per-worker sinks for the caller
/// to merge.
pub struct SchedOutcome<S> {
    /// Merged totals; `emitted + pruned + remaining` equals
    /// [`Skeleton::candidate_count`] — with `remaining == 0` exactly when
    /// the run completed (no budget stop, no poisoned unit).
    pub stats: CheckedStats,
    /// Per-unit stats, indexed like [`WorkPlan::units`]. A poisoned
    /// unit's entry carries its whole space as `remaining` (its own
    /// counters died with it), so the per-unit sum stays exact.
    pub unit_stats: Vec<CheckedStats>,
    /// Units lost to panics (empty on a healthy run). Their completed
    /// siblings' verdicts are all present in `sinks`.
    pub poisoned: Vec<PoisonedUnit>,
    /// One sink per worker that ran (workers that stole nothing still
    /// appear; merge them all).
    pub sinks: Vec<S>,
}

impl<S> SchedOutcome<S> {
    /// Did every unit complete with no budget stop?
    pub fn is_complete(&self) -> bool {
        self.poisoned.is_empty() && self.stats.stopped.is_none() && self.stats.remaining == 0
    }
}

/// The exact candidate space of one unit, measured without emitting
/// anything: a zero-candidate budget stops `run_arena_range` at its first
/// boundary, which classifies the unit's whole range as pruned-or-
/// remaining in O(one rf scope). Used to restore exact accounting for
/// poisoned units, whose own counters died with the panic.
fn unit_space<A: Architecture + Sync + ?Sized>(
    ctx: &EngineCtx,
    arch: &A,
    unit: &WorkUnit,
) -> CheckedStats {
    let mut arena = RelArena::new(0);
    let mut st = EngineState::new(ctx, arch, &mut arena);
    let nothing = Budget::unlimited().with_max_candidates(0);
    let mut stats = run_arena_range(
        ctx,
        arch,
        &mut arena,
        &mut st,
        unit.rf_start,
        unit.rf_end,
        unit.co,
        &nothing,
        &mut |_, _, _| {},
    );
    // The measuring budget is an artefact; the unit stopped because it
    // was poisoned, which `SchedOutcome::poisoned` already records.
    stats.stopped = None;
    stats.resume = None;
    stats
}

impl Skeleton {
    /// Runs the arena-backed checked stream over a [`WorkPlan`] on the
    /// work-stealing executor: each worker owns one [`RelArena`] plus one
    /// engine state and drains units from the shared cursor, so a
    /// co-heavy test keeps every worker busy where static rf-prefix
    /// sharding would idle all but a few.
    ///
    /// `make_sink` builds one candidate sink per worker (worker index
    /// passed in); sinks observe exactly the candidates of the units their
    /// worker stole.
    pub fn check_stream_sched<A, S>(
        &self,
        arch: &A,
        plan: &WorkPlan,
        workers: usize,
        make_sink: impl Fn(usize) -> S + Sync,
    ) -> SchedOutcome<S>
    where
        A: Architecture + Sync + ?Sized,
        S: FnMut(&ExecFrame<'_>, &RelArena, Verdict) + Send,
    {
        self.check_stream_sched_budgeted(arch, plan, workers, &Budget::unlimited(), make_sink)
    }

    /// [`Skeleton::check_stream_sched`] under a [`Budget`]: the budget is
    /// checked inside every unit (so a deadline, candidate bound or
    /// cancellation stops the run mid-odometer) and unit-by-unit (a unit
    /// claimed after the budget tripped is classified — pruned/remaining —
    /// in one rf scope without emitting anything). Poisoned units are
    /// salvaged the same way; either way the merged
    /// `emitted + pruned + remaining` equals
    /// [`Skeleton::candidate_count`] exactly.
    pub fn check_stream_sched_budgeted<A, S>(
        &self,
        arch: &A,
        plan: &WorkPlan,
        workers: usize,
        budget: &Budget,
        make_sink: impl Fn(usize) -> S + Sync,
    ) -> SchedOutcome<S>
    where
        A: Architecture + Sync + ?Sized,
        S: FnMut(&ExecFrame<'_>, &RelArena, Verdict) + Send,
    {
        let ctx = EngineCtx::new(self, arch);
        let (states, results) = execute_units(
            plan.units.len(),
            workers,
            |w| {
                let mut arena = RelArena::new(0);
                let st = EngineState::new(&ctx, arch, &mut arena);
                (arena, st, make_sink(w))
            },
            // A panic can tear the arena/engine state mid-mutation;
            // rebuild those two, but never the sink — the worker's
            // completed units' verdicts live there.
            |(arena, st, _)| {
                *st = EngineState::new(&ctx, arch, arena);
            },
            |(arena, st, sink), u| {
                let unit = &plan.units[u];
                run_arena_range(
                    &ctx,
                    arch,
                    arena,
                    st,
                    unit.rf_start,
                    unit.rf_end,
                    unit.co,
                    budget,
                    sink,
                )
            },
        );
        let mut unit_stats = Vec::with_capacity(results.len());
        let mut poisoned = Vec::new();
        for (u, r) in results.into_iter().enumerate() {
            match r {
                UnitResult::Done(s) => unit_stats.push(s),
                UnitResult::Poisoned { payload } => {
                    poisoned.push(PoisonedUnit { unit: u, payload });
                    unit_stats.push(unit_space(&ctx, arch, &plan.units[u]));
                }
            }
        }
        let mut stats = CheckedStats::default();
        for s in &unit_stats {
            stats.absorb(s);
        }
        stats.resume = None; // per-unit cut points, not a single linear one
        SchedOutcome {
            stats,
            unit_stats,
            poisoned,
            sinks: states.into_iter().map(|(_, _, s)| s).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Power;
    use crate::enumerate::SkeletonBuilder;

    /// A co-heavy skeleton: `extra + 1` cross-thread writes to one
    /// location, two rf configurations — the shape static rf sharding
    /// starves on.
    fn co_heavy(extra: usize) -> Skeleton {
        let mut b = SkeletonBuilder::new();
        b.write(0, "z", 1);
        b.read(1, "z");
        b.write(1, "x", 1);
        for i in 0..extra {
            b.write(2 + i as u16, "x", 2 + i as i64);
        }
        b.build()
    }

    /// An rf-heavy skeleton (IRIW): thousands of rf configurations.
    fn rf_heavy() -> Skeleton {
        let mut b = SkeletonBuilder::new();
        b.write(0, "x", 1);
        b.write(1, "y", 1);
        b.read(2, "y");
        b.read(2, "x");
        b.read(3, "x");
        b.read(3, "y");
        b.build()
    }

    #[test]
    fn rf_heavy_plans_stay_rf_level() {
        let plan = WorkPlan::for_skeleton(&rf_heavy(), &Power::new(), &PlanOpts::for_workers(2));
        assert!(!plan.is_empty());
        assert_eq!(plan.co_units(), 0, "enough rf configurations: no co splitting");
    }

    #[test]
    fn co_heavy_plans_split_within_one_rf_configuration() {
        let sk = co_heavy(4);
        let opts = PlanOpts::for_workers(4);
        let plan = WorkPlan::for_skeleton(&sk, &Power::new(), &opts);
        assert!(plan.co_units() >= 4, "the co odometer must be split: {:?}", plan.units());
        assert!(
            plan.len() >= opts.workers,
            "a 2-rf-config test must still yield one unit per worker"
        );
    }

    #[test]
    fn sched_matches_the_sharded_engine_exactly() {
        use crate::arena::RelArena;
        let power = Power::new();
        for sk in [co_heavy(3), rf_heavy()] {
            let mut arena = RelArena::new(0);
            let whole = sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {});
            for workers in [1usize, 3] {
                let plan = WorkPlan::for_skeleton(&sk, &power, &PlanOpts::for_workers(workers));
                let out = sk.check_stream_sched(&power, &plan, workers, |_| |_: &_, _: &_, _| {});
                assert_eq!(out.stats, whole, "{workers} workers merge exactly");
                let mut per_unit = CheckedStats::default();
                for s in &out.unit_stats {
                    per_unit.emitted += s.emitted;
                    per_unit.pruned += s.pruned;
                    per_unit.allowed += s.allowed;
                }
                assert_eq!(per_unit, whole, "per-unit stats sum exactly");
                assert_eq!(
                    whole.emitted + whole.pruned,
                    sk.candidate_count().unwrap(),
                    "accounting covers the whole space"
                );
            }
        }
    }

    #[test]
    fn executor_handles_every_unit_exactly_once() {
        let (states, results) = execute_units(
            37,
            4,
            |w| (w, 0usize),
            |_| {},
            |s, u| {
                s.1 += 1;
                u * 2
            },
        );
        assert_eq!(results.len(), 37);
        for (u, r) in results.iter().enumerate() {
            assert_eq!(r.as_done(), Some(&(u * 2)), "unit {u} completed");
        }
        let total: usize = states.iter().map(|s| s.1).sum();
        assert_eq!(total, 37, "every unit ran exactly once");
    }

    #[test]
    fn priority_drives_the_steal_order_deterministically() {
        // co_heavy plus a coRR observer: doomed rf configurations
        // coalesce into rf units, live menus split into co units.
        let mut b = SkeletonBuilder::new();
        b.write(0, "z", 1);
        b.read(1, "z");
        b.write(1, "x", 1);
        for i in 0..3 {
            b.write(2 + i, "x", 2 + i as i64);
        }
        b.read(5, "x");
        b.read(5, "x");
        let sk = b.build();
        let power = Power::new();
        let opts = PlanOpts { workers: 16, units_per_worker: 4, co_split: true };
        let mut plan = WorkPlan::for_skeleton(&sk, &power, &opts);
        assert!(plan.co_units() >= 1 && plan.co_units() < plan.len(), "mixed plan");

        // Promote co units above the (heavier) rf units.
        let promote = |u: &WorkUnit| u32::from(u.co.is_some());
        plan.prioritise(promote);
        let first = plan.units().to_vec();
        let boundary = first.iter().position(|u| u.co.is_none()).expect("an rf unit survives");
        assert!(
            first[..boundary].iter().all(|u| u.co.is_some())
                && first[boundary..].iter().all(|u| u.co.is_none()),
            "all co units precede all rf units: {first:?}"
        );
        for w in first.windows(2) {
            assert!(
                (w[0].priority, w[0].weight) >= (w[1].priority, w[1].weight),
                "priority desc, weight desc within a band: {w:?}"
            );
        }

        // Re-prioritising with the same function is a fixed point, so the
        // order is reproducible run to run.
        plan.prioritise(promote);
        assert_eq!(plan.units(), &first[..], "prioritise is deterministic");

        // Plan order is the claim order: the executor's cursor hands
        // units out in sequence (trivially visible with one worker).
        let (_, results) = execute_units(
            plan.len(),
            1,
            |_| Vec::new(),
            |_| {},
            |claimed, u| {
                claimed.push(u);
                plan.units()[u]
            },
        );
        let claimed: Vec<WorkUnit> =
            results.into_iter().map(|r| r.done().expect("unit completed")).collect();
        assert_eq!(claimed, first, "steal order equals plan order");

        // The schedule steers execution order only — verdict accounting
        // is untouched by prioritisation.
        let mut arena = RelArena::new(0);
        let whole = sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {});
        let out = sk.check_stream_sched(&power, &plan, 3, |_| |_: &_, _: &_, _| {});
        assert_eq!(out.stats, whole, "prioritised plan merges exactly");
    }

    #[test]
    fn rf_ranges_partition_exactly() {
        for (total, target) in [(10u128, 3u128), (1, 8), (7, 7), (100, 1)] {
            let ranges = rf_ranges(total, target);
            assert!(ranges.len() as u128 <= target.max(1));
            let mut pos = 0u128;
            for (s, e) in ranges {
                assert_eq!(s, pos);
                assert!(e > s);
                pos = e;
            }
            assert_eq!(pos, total);
        }
        assert!(rf_ranges(0, 4).is_empty());
    }
}
