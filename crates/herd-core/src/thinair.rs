//! Early NO THIN AIR pruning for candidate enumeration (paper, Sec 8.3).
//!
//! The second axiom of Fig 5, `acyclic(hb)` with `hb = ppo ∪ fences ∪
//! rfe`, never mentions the coherence order: once the rf/co-independent
//! part of an architecture's `ppo ∪ fences` is known (a *static base*,
//! [`crate::model::Architecture::thin_air_base`]), the axiom's fate is
//! sealed by the rf choice alone. herd's `-speedcheck` strategy exploits
//! this: as the rf odometer picks a source for each read, the external
//! read-from edges are added to the base incrementally, and the moment
//! the partial happens-before graph goes cyclic the whole rf subtree —
//! every completion of the remaining reads times every coherence
//! permutation — is skipped before a single
//! [`crate::exec::Execution`] is materialised.
//!
//! [`ThinAirTracker`] is that incremental structure: transitive
//! reachability rows over the event universe (width-generic
//! [`crate::maskrow`] rows — one word up to 64 events, more beyond, with
//! no upper cap) and one checkpoint level per chosen read, so enumeration
//! can roll back exactly to the odometer digit that changed. Universes
//! past 64 events, which previously lost this pruning axis entirely, now
//! track through multi-word rows at the same per-edge cost scaled by the
//! row width.

use crate::maskrow::{or_words, row_set, row_test, words_for};
use crate::relation::Relation;

/// One checkpoint of the incremental happens-before closure.
///
/// Level storage is pooled: [`ThinAirTracker::truncate`] only moves the
/// logical depth, and a later push at the same depth reuses the retired
/// level's mask buffer — so after the stack has once reached its maximum
/// depth (the read count), pushing and popping allocate nothing.
struct Level {
    /// The rf-odometer digit value this level was built with, used to
    /// revalidate the checkpoint stack after the odometer moves.
    tag: usize,
    /// Reachability rows after this level's edge (`n` rows of `wpr`
    /// words, row-major).
    reach: Vec<u64>,
}

/// Incremental cycle detection over `base ∪ {chosen rfe edges}`.
///
/// The *base* is a static, skeleton-invariant underapproximation of
/// `ppo ∪ fences`; levels are pushed one per read as the enumeration
/// fixes read-from sources, and popped (via [`truncate`]) when the
/// odometer carries. A rejected [`try_push`] means every candidate
/// sharing the pushed prefix violates NO THIN AIR, whatever the remaining
/// reads and coherence orders do.
///
/// [`truncate`]: ThinAirTracker::truncate
/// [`try_push`]: ThinAirTracker::try_push
pub struct ThinAirTracker {
    n: usize,
    /// Words per reachability row (`words_for(n)`).
    wpr: usize,
    /// Transitive closure of the static base, as row-major successor
    /// rows (`n * wpr` words).
    base: Vec<u64>,
    /// Whether the base alone is cyclic (every candidate doomed).
    base_cyclic: bool,
    /// Pooled level storage; only the first [`ThinAirTracker::depth`]
    /// entries are live.
    levels: Vec<Level>,
    depth: usize,
    /// One spare row for [`try_push`](ThinAirTracker::try_push)'s
    /// closure update (`reach[to] ∪ {to}`).
    add: Vec<u64>,
}

impl ThinAirTracker {
    /// Builds a tracker over the transitive closure of `base`.
    ///
    /// Construction is width-generic: any universe size works, with rows
    /// of `words_for(n)` words. (Universes past 64 events previously
    /// returned `None` here and streamed without this pruning axis.)
    pub fn new(base: &Relation) -> Self {
        let n = base.universe();
        let wpr = words_for(n);
        let closed = base.tclosure();
        let mut masks = vec![0u64; n * wpr];
        let mut base_cyclic = false;
        for (a, b) in closed.iter_pairs() {
            row_set(&mut masks[a * wpr..(a + 1) * wpr], b);
            if a == b {
                base_cyclic = true;
            }
        }
        ThinAirTracker {
            n,
            wpr,
            base: masks,
            base_cyclic,
            levels: Vec::new(),
            depth: 0,
            add: vec![0; wpr],
        }
    }

    /// Is the static base itself cyclic? Then every rf choice is doomed
    /// and the caller can prune the entire enumeration up front.
    pub fn is_base_cyclic(&self) -> bool {
        self.base_cyclic
    }

    /// Number of checkpoint levels currently pushed.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The tag `level` was pushed with (0-based from the bottom).
    pub fn level_tag(&self, level: usize) -> usize {
        assert!(level < self.depth, "level {level} beyond depth {}", self.depth);
        self.levels[level].tag
    }

    /// Pops levels until only `depth` remain (their mask buffers stay
    /// pooled for reuse — no frees, no later allocations).
    pub fn truncate(&mut self, depth: usize) {
        assert!(depth <= self.depth, "truncate cannot deepen the stack");
        self.depth = depth;
    }

    fn top(&self) -> &[u64] {
        if self.depth == 0 {
            &self.base
        } else {
            &self.levels[self.depth - 1].reach
        }
    }

    /// Makes `levels[depth]` live (reusing pooled storage when present),
    /// seeded with a copy of the current top masks and the given tag.
    fn push_level(&mut self, tag: usize) {
        if self.levels.len() == self.depth {
            let reach = self.top().to_vec();
            self.levels.push(Level { tag, reach });
        } else {
            let (live, pool) = self.levels.split_at_mut(self.depth);
            let top = if self.depth == 0 { &self.base } else { &live[self.depth - 1].reach };
            pool[0].reach.copy_from_slice(top);
            pool[0].tag = tag;
        }
        self.depth += 1;
    }

    /// Pushes one checkpoint for a read whose source was just picked.
    ///
    /// `edge` is the read's external read-from edge `(write, read)`, or
    /// `None` when the pick contributes nothing to `hb` (an internal
    /// read-from edge — `rfi ⊄ hb`). Returns `false` and leaves the stack
    /// unchanged when the edge closes a cycle: every candidate sharing
    /// the current prefix of picks then violates NO THIN AIR.
    pub fn try_push(&mut self, tag: usize, edge: Option<(usize, usize)>) -> bool {
        if self.base_cyclic {
            return false;
        }
        let Some((from, to)) = edge else {
            self.push_level(tag);
            return true;
        };
        debug_assert!(from < self.n && to < self.n, "edge out of universe");
        let wpr = self.wpr;
        if from == to || row_test(&self.top()[to * wpr..(to + 1) * wpr], from) {
            return false;
        }
        self.push_level(tag);
        let reach = &mut self.levels[self.depth - 1].reach;
        // add = reach[to] ∪ {to}: everything the new edge makes reachable.
        self.add.copy_from_slice(&reach[to * wpr..(to + 1) * wpr]);
        row_set(&mut self.add, to);
        or_words(&mut reach[from * wpr..(from + 1) * wpr], &self.add);
        for i in 0..self.n {
            if row_test(&reach[i * wpr..(i + 1) * wpr], from) {
                or_words(&mut reach[i * wpr..(i + 1) * wpr], &self.add);
            }
        }
        true
    }

    /// One-shot check of a complete rf choice: `true` iff `base ∪ edges`
    /// is acyclic. Resets the checkpoint stack; `edges` are the external
    /// read-from edges of the configuration.
    pub fn check_rf(&mut self, edges: impl IntoIterator<Item = (usize, usize)>) -> bool {
        if self.base_cyclic {
            return false;
        }
        self.depth = 0;
        for (w, r) in edges {
            if !self.try_push(0, Some((w, r))) {
                self.depth = 0;
                return false;
            }
        }
        self.depth = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_cycles_incrementally_and_rolls_back() {
        // base: 0 -> 1
        let base = Relation::from_pairs(3, [(0, 1)]);
        let mut t = ThinAirTracker::new(&base);
        assert!(!t.is_base_cyclic());
        assert!(t.try_push(0, Some((1, 2))), "1 -> 2 extends the chain");
        assert!(!t.try_push(0, Some((2, 0))), "2 -> 0 closes the cycle");
        assert_eq!(t.depth(), 1, "the rejected edge pushed nothing");
        // Roll back and take a harmless edge instead.
        t.truncate(0);
        assert!(t.try_push(1, Some((2, 0))), "without 1 -> 2 the back edge is fine");
        assert!(!t.try_push(0, Some((1, 2))), "...but now the chain closes it");
    }

    #[test]
    fn internal_picks_push_without_edges() {
        let base = Relation::from_pairs(2, [(0, 1)]);
        let mut t = ThinAirTracker::new(&base);
        assert!(t.try_push(7, None));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.level_tag(0), 7);
        assert!(!t.try_push(0, Some((1, 0))), "base edges persist through levels");
    }

    #[test]
    fn cyclic_base_dooms_everything() {
        let base = Relation::from_pairs(2, [(0, 1), (1, 0)]);
        let mut t = ThinAirTracker::new(&base);
        assert!(t.is_base_cyclic());
        assert!(!t.try_push(0, None));
        assert!(!t.check_rf([]));
    }

    #[test]
    fn check_rf_is_a_oneshot_reset() {
        let base = Relation::from_pairs(4, [(0, 1), (2, 3)]);
        let mut t = ThinAirTracker::new(&base);
        assert!(t.check_rf([(1, 2)]), "0->1->2->3 is a chain");
        assert!(!t.check_rf([(1, 2), (3, 0)]), "closing the chain is a cycle");
        assert!(t.check_rf([(3, 0)]), "the stack was reset in between");
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn wide_universes_track_across_word_boundaries() {
        // Previously `new` returned `None` past 64 events and the axis
        // was lost; a 130-event chain now tracks through 3-word rows.
        let base = Relation::from_pairs(130, [(0, 64), (64, 128)]);
        let mut t = ThinAirTracker::new(&base);
        assert!(!t.is_base_cyclic());
        assert!(t.try_push(0, Some((128, 129))), "extends the chain into word 3");
        assert!(!t.try_push(0, Some((129, 0))), "closes a 4-hop cycle spanning 3 words");
        assert_eq!(t.depth(), 1);
        t.truncate(0);
        assert!(t.try_push(1, Some((129, 0))), "without the extension the back edge is fine");
        assert!(!t.try_push(0, Some((128, 129))), "...and now the chain closes it");
    }

    #[test]
    fn wide_base_cycle_and_check_rf() {
        let mut pairs: Vec<(usize, usize)> = (0..99).map(|i| (i, i + 1)).collect();
        let chain = Relation::from_pairs(100, pairs.clone());
        let mut t = ThinAirTracker::new(&chain);
        assert!(!t.is_base_cyclic());
        assert!(t.check_rf([(99, 99)].into_iter().filter(|_| false)), "empty rf is fine");
        assert!(!t.check_rf([(99, 0)]), "closing the 100-node chain is a cycle");
        assert!(t.check_rf([(0, 99)]), "a parallel forward edge is not");
        pairs.push((99, 0));
        let cyclic = Relation::from_pairs(100, pairs);
        assert!(ThinAirTracker::new(&cyclic).is_base_cyclic());
    }
}
