//! Early NO THIN AIR pruning for candidate enumeration (paper, Sec 8.3).
//!
//! The second axiom of Fig 5, `acyclic(hb)` with `hb = ppo ∪ fences ∪
//! rfe`, never mentions the coherence order: once the rf/co-independent
//! part of an architecture's `ppo ∪ fences` is known (a *static base*,
//! [`crate::model::Architecture::thin_air_base`]), the axiom's fate is
//! sealed by the rf choice alone. herd's `-speedcheck` strategy exploits
//! this: as the rf odometer picks a source for each read, the external
//! read-from edges are added to the base incrementally, and the moment
//! the partial happens-before graph goes cyclic the whole rf subtree —
//! every completion of the remaining reads times every coherence
//! permutation — is skipped before a single
//! [`crate::exec::Execution`] is materialised.
//!
//! [`ThinAirTracker`] is that incremental structure: transitive
//! reachability masks over ≤64 events (the same representation as
//! [`crate::uniproc::LocGraphs`]) with one checkpoint level per chosen
//! read, so enumeration can roll back exactly to the odometer digit that
//! changed. Construction returns `None` beyond 64 events and callers fall
//! back to streaming without this pruning axis — the same graceful
//! degradation as the per-location masks.

use crate::relation::Relation;

/// One checkpoint of the incremental happens-before closure.
///
/// Level storage is pooled: [`ThinAirTracker::truncate`] only moves the
/// logical depth, and a later push at the same depth reuses the retired
/// level's mask buffer — so after the stack has once reached its maximum
/// depth (the read count), pushing and popping allocate nothing.
struct Level {
    /// The rf-odometer digit value this level was built with, used to
    /// revalidate the checkpoint stack after the odometer moves.
    tag: usize,
    /// Reachability masks after this level's edge.
    reach: Vec<u64>,
}

/// Incremental cycle detection over `base ∪ {chosen rfe edges}`.
///
/// The *base* is a static, skeleton-invariant underapproximation of
/// `ppo ∪ fences`; levels are pushed one per read as the enumeration
/// fixes read-from sources, and popped (via [`truncate`]) when the
/// odometer carries. A rejected [`try_push`] means every candidate
/// sharing the pushed prefix violates NO THIN AIR, whatever the remaining
/// reads and coherence orders do.
///
/// [`truncate`]: ThinAirTracker::truncate
/// [`try_push`]: ThinAirTracker::try_push
pub struct ThinAirTracker {
    n: usize,
    /// Transitive closure of the static base, as successor masks.
    base: Vec<u64>,
    /// Whether the base alone is cyclic (every candidate doomed).
    base_cyclic: bool,
    /// Pooled level storage; only the first [`ThinAirTracker::depth`]
    /// entries are live.
    levels: Vec<Level>,
    depth: usize,
}

impl ThinAirTracker {
    /// Builds a tracker over the transitive closure of `base`.
    ///
    /// Returns `None` when the universe exceeds 64 events (beyond litmus
    /// scale; the mask representation caps there) — callers then stream
    /// without thin-air pruning, which is always sound.
    pub fn new(base: &Relation) -> Option<Self> {
        let n = base.universe();
        if n > 64 {
            return None;
        }
        let closed = base.tclosure();
        let mut masks = vec![0u64; n];
        let mut base_cyclic = false;
        for (a, b) in closed.iter_pairs() {
            masks[a] |= 1 << b;
            if a == b {
                base_cyclic = true;
            }
        }
        Some(ThinAirTracker { n, base: masks, base_cyclic, levels: Vec::new(), depth: 0 })
    }

    /// Is the static base itself cyclic? Then every rf choice is doomed
    /// and the caller can prune the entire enumeration up front.
    pub fn is_base_cyclic(&self) -> bool {
        self.base_cyclic
    }

    /// Number of checkpoint levels currently pushed.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The tag `level` was pushed with (0-based from the bottom).
    pub fn level_tag(&self, level: usize) -> usize {
        assert!(level < self.depth, "level {level} beyond depth {}", self.depth);
        self.levels[level].tag
    }

    /// Pops levels until only `depth` remain (their mask buffers stay
    /// pooled for reuse — no frees, no later allocations).
    pub fn truncate(&mut self, depth: usize) {
        assert!(depth <= self.depth, "truncate cannot deepen the stack");
        self.depth = depth;
    }

    fn top(&self) -> &[u64] {
        if self.depth == 0 {
            &self.base
        } else {
            &self.levels[self.depth - 1].reach
        }
    }

    /// Makes `levels[depth]` live (reusing pooled storage when present),
    /// seeded with a copy of the current top masks and the given tag.
    fn push_level(&mut self, tag: usize) {
        if self.levels.len() == self.depth {
            let reach = self.top().to_vec();
            self.levels.push(Level { tag, reach });
        } else {
            let (live, pool) = self.levels.split_at_mut(self.depth);
            let top = if self.depth == 0 { &self.base } else { &live[self.depth - 1].reach };
            pool[0].reach.copy_from_slice(top);
            pool[0].tag = tag;
        }
        self.depth += 1;
    }

    /// Pushes one checkpoint for a read whose source was just picked.
    ///
    /// `edge` is the read's external read-from edge `(write, read)`, or
    /// `None` when the pick contributes nothing to `hb` (an internal
    /// read-from edge — `rfi ⊄ hb`). Returns `false` and leaves the stack
    /// unchanged when the edge closes a cycle: every candidate sharing
    /// the current prefix of picks then violates NO THIN AIR.
    pub fn try_push(&mut self, tag: usize, edge: Option<(usize, usize)>) -> bool {
        if self.base_cyclic {
            return false;
        }
        let Some((from, to)) = edge else {
            self.push_level(tag);
            return true;
        };
        debug_assert!(from < self.n && to < self.n, "edge out of universe");
        if from == to || self.top()[to] >> from & 1 == 1 {
            return false;
        }
        self.push_level(tag);
        let reach = &mut self.levels[self.depth - 1].reach;
        let add = reach[to] | 1 << to;
        reach[from] |= add;
        for r in reach.iter_mut() {
            if *r >> from & 1 == 1 {
                *r |= add;
            }
        }
        true
    }

    /// One-shot check of a complete rf choice: `true` iff `base ∪ edges`
    /// is acyclic. Resets the checkpoint stack; `edges` are the external
    /// read-from edges of the configuration.
    pub fn check_rf(&mut self, edges: impl IntoIterator<Item = (usize, usize)>) -> bool {
        if self.base_cyclic {
            return false;
        }
        self.depth = 0;
        for (w, r) in edges {
            if !self.try_push(0, Some((w, r))) {
                self.depth = 0;
                return false;
            }
        }
        self.depth = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_cycles_incrementally_and_rolls_back() {
        // base: 0 -> 1
        let base = Relation::from_pairs(3, [(0, 1)]);
        let mut t = ThinAirTracker::new(&base).unwrap();
        assert!(!t.is_base_cyclic());
        assert!(t.try_push(0, Some((1, 2))), "1 -> 2 extends the chain");
        assert!(!t.try_push(0, Some((2, 0))), "2 -> 0 closes the cycle");
        assert_eq!(t.depth(), 1, "the rejected edge pushed nothing");
        // Roll back and take a harmless edge instead.
        t.truncate(0);
        assert!(t.try_push(1, Some((2, 0))), "without 1 -> 2 the back edge is fine");
        assert!(!t.try_push(0, Some((1, 2))), "...but now the chain closes it");
    }

    #[test]
    fn internal_picks_push_without_edges() {
        let base = Relation::from_pairs(2, [(0, 1)]);
        let mut t = ThinAirTracker::new(&base).unwrap();
        assert!(t.try_push(7, None));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.level_tag(0), 7);
        assert!(!t.try_push(0, Some((1, 0))), "base edges persist through levels");
    }

    #[test]
    fn cyclic_base_dooms_everything() {
        let base = Relation::from_pairs(2, [(0, 1), (1, 0)]);
        let mut t = ThinAirTracker::new(&base).unwrap();
        assert!(t.is_base_cyclic());
        assert!(!t.try_push(0, None));
        assert!(!t.check_rf([]));
    }

    #[test]
    fn check_rf_is_a_oneshot_reset() {
        let base = Relation::from_pairs(4, [(0, 1), (2, 3)]);
        let mut t = ThinAirTracker::new(&base).unwrap();
        assert!(t.check_rf([(1, 2)]), "0->1->2->3 is a chain");
        assert!(!t.check_rf([(1, 2), (3, 0)]), "closing the chain is a cycle");
        assert!(t.check_rf([(3, 0)]), "the stack was reset in between");
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn more_than_64_events_fall_back() {
        assert!(ThinAirTracker::new(&Relation::empty(65)).is_none());
        assert!(ThinAirTracker::new(&Relation::empty(64)).is_some());
    }
}
