//! Memory events and their constituents.
//!
//! At the level of the axiomatic model (paper, Sec 4.1) an execution is a
//! tuple `(E, po, rf, co)` where `E` is a set of *memory events*: reads and
//! writes to shared locations, each held by a thread at some program point.
//! Fence instructions appear in the model as *relations* over memory events
//! (a pair is in the `sync` relation when a `sync` sits between the two
//! accesses in program order — paper, footnote 2), so fences are not events
//! here; the litmus front end computes the fence relations.

use std::fmt;

/// A shared memory location (interned; display names live in the front end).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub u32);

/// A machine value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Val(pub i64);

/// A thread identifier (`T0`, `T1`, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u16);

/// Direction of a memory event: write or read.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// A write (store) event.
    W,
    /// A read (load) event.
    R,
}

/// Fence flavours across the architectures modelled in the paper (Fig 17).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fence {
    /// Power full fence.
    Sync,
    /// Power lightweight fence.
    Lwsync,
    /// Power write-write barrier.
    Eieio,
    /// Power control fence (enters `ppo` via `ctrl+cfence` only).
    Isync,
    /// ARM full fence.
    Dmb,
    /// ARM full fence (at least as strong as `dmb`).
    Dsb,
    /// ARM store-store variant of `dmb`.
    DmbSt,
    /// ARM store-store variant of `dsb`.
    DsbSt,
    /// ARM control fence.
    Isb,
    /// x86/TSO full fence.
    Mfence,
}

impl Fence {
    /// All fence flavours, for building relation tables.
    pub const ALL: [Fence; 10] = [
        Fence::Sync,
        Fence::Lwsync,
        Fence::Eieio,
        Fence::Isync,
        Fence::Dmb,
        Fence::Dsb,
        Fence::DmbSt,
        Fence::DsbSt,
        Fence::Isb,
        Fence::Mfence,
    ];

    /// The conventional assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Fence::Sync => "sync",
            Fence::Lwsync => "lwsync",
            Fence::Eieio => "eieio",
            Fence::Isync => "isync",
            Fence::Dmb => "dmb",
            Fence::Dsb => "dsb",
            Fence::DmbSt => "dmb.st",
            Fence::DsbSt => "dsb.st",
            Fence::Isb => "isb",
            Fence::Mfence => "mfence",
        }
    }

    /// Is this a control fence (`isync`/`isb`), which contributes to the
    /// preserved program order rather than to propagation (paper, Sec 4.7)?
    pub fn is_control(self) -> bool {
        matches!(self, Fence::Isync | Fence::Isb)
    }
}

impl fmt::Display for Fence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One memory event of a candidate execution.
///
/// Initial-state writes (paper, Sec 3: "fictitious write events ... that we
/// do not depict") are events with `thread == None`; they are `co`-before
/// every other write to their location and never appear in `po`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// Index of this event in its execution's event vector.
    pub id: usize,
    /// Holding thread, or `None` for an initial-state write.
    pub thread: Option<ThreadId>,
    /// Position of the generating instruction within its thread
    /// (meaningless for initial writes).
    pub po_index: usize,
    /// Read or write.
    pub dir: Dir,
    /// Accessed location.
    pub loc: Loc,
    /// Value written or read.
    pub val: Val,
}

impl Event {
    /// Is this an initial-state write?
    pub fn is_init(&self) -> bool {
        self.thread.is_none()
    }

    /// Is this a write?
    pub fn is_write(&self) -> bool {
        self.dir == Dir::W
    }

    /// Is this a read?
    pub fn is_read(&self) -> bool {
        self.dir == Dir::R
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.dir {
            Dir::W => "W",
            Dir::R => "R",
        };
        match self.thread {
            Some(t) => write!(f, "{}:T{} {}l{}={}", self.id, t.0, d, self.loc.0, self.val.0),
            None => write!(f, "{}:init {}l{}={}", self.id, d, self.loc.0, self.val.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_properties() {
        assert!(Fence::Isync.is_control());
        assert!(Fence::Isb.is_control());
        assert!(!Fence::Sync.is_control());
        assert_eq!(Fence::DmbSt.mnemonic(), "dmb.st");
        assert_eq!(Fence::ALL.len(), 10);
    }

    #[test]
    fn event_predicates() {
        let w = Event { id: 0, thread: None, po_index: 0, dir: Dir::W, loc: Loc(0), val: Val(0) };
        assert!(w.is_init() && w.is_write() && !w.is_read());
        let r = Event {
            id: 1,
            thread: Some(ThreadId(1)),
            po_index: 0,
            dir: Dir::R,
            loc: Loc(0),
            val: Val(1),
        };
        assert!(!r.is_init() && r.is_read());
        assert_eq!(format!("{r}"), "1:T1 Rl0=1");
    }
}
