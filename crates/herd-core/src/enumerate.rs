//! Data-flow enumeration: from a program skeleton to all candidate
//! executions (paper, Sec 3 §Data-flow semantics).
//!
//! A [`Skeleton`] is a control-flow semantics whose write values are known
//! and whose read values are still undetermined. Enumeration chooses, for
//! every read, a same-location write to read from (`rf`), and for every
//! location a total coherence order (`co`) with the initial write first —
//! exactly the candidate-execution construction of Fig 3.
//!
//! Front ends whose write values depend on read values (genuine data flow
//! through registers) perform their own symbolic enumeration and lower to
//! concrete [`Execution`]s directly; this module covers the common case of
//! constant-valued writes, which includes every litmus family in the paper.

use crate::event::{Dir, Event, Fence, Loc, ThreadId, Val};
use crate::exec::{Deps, Execution};
use crate::relation::Relation;
use std::collections::BTreeMap;

/// One event of a skeleton: a write with a fixed value, or a read whose
/// value enumeration will determine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkeletonEvent {
    /// Holding thread (`None` for initial writes).
    pub thread: Option<ThreadId>,
    /// Program-order index within the thread.
    pub po_index: usize,
    /// Direction.
    pub dir: Dir,
    /// Location accessed.
    pub loc: Loc,
    /// Value written (ignored for reads).
    pub val: Val,
}

/// A control-flow semantics ready for data-flow enumeration.
#[derive(Clone, Debug)]
pub struct Skeleton {
    /// The events; index = event id.
    pub events: Vec<SkeletonEvent>,
    /// Program order over the events.
    pub po: Relation,
    /// Dependency relations.
    pub deps: Deps,
    /// Fence relations.
    pub fences: BTreeMap<Fence, Relation>,
}

impl Skeleton {
    /// Enumerates every candidate execution of the skeleton.
    ///
    /// # Panics
    ///
    /// Panics if the relations' universe does not match the event count
    /// (a front-end bug, not an input error).
    pub fn candidates(&self) -> Vec<Execution> {
        let n = self.events.len();
        assert_eq!(self.po.universe(), n, "po universe mismatch");

        // Group writes by location.
        let mut writes_by_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
        let mut init_by_loc: BTreeMap<Loc, usize> = BTreeMap::new();
        for (id, e) in self.events.iter().enumerate() {
            if e.dir == Dir::W {
                if e.thread.is_none() {
                    init_by_loc.insert(e.loc, id);
                } else {
                    writes_by_loc.entry(e.loc).or_default().push(id);
                }
            }
        }

        let reads: Vec<usize> = (0..n).filter(|&i| self.events[i].dir == Dir::R).collect();

        // rf choices per read: any write (incl. init) to the same location.
        let rf_choices: Vec<Vec<usize>> = reads
            .iter()
            .map(|&r| {
                let loc = self.events[r].loc;
                let mut ws: Vec<usize> = writes_by_loc.get(&loc).cloned().unwrap_or_default();
                if let Some(&init) = init_by_loc.get(&loc) {
                    ws.push(init);
                }
                ws
            })
            .collect();

        // co choices per location: all permutations of non-init writes.
        let locs: Vec<Loc> = writes_by_loc.keys().copied().collect();
        let co_choices: Vec<Vec<Vec<usize>>> =
            locs.iter().map(|l| permutations(&writes_by_loc[l])).collect();

        let mut out = Vec::new();
        let mut rf_pick = vec![0usize; reads.len()];
        let mut co_pick = vec![0usize; locs.len()];
        loop {
            // Materialise this choice.
            let mut events: Vec<Event> = self
                .events
                .iter()
                .enumerate()
                .map(|(id, e)| Event {
                    id,
                    thread: e.thread,
                    po_index: e.po_index,
                    dir: e.dir,
                    loc: e.loc,
                    val: e.val,
                })
                .collect();
            let mut rf = Relation::empty(n);
            for (k, &r) in reads.iter().enumerate() {
                let w = rf_choices[k][rf_pick[k]];
                rf.add(w, r);
                events[r].val = events[w].val;
            }
            let mut co = Relation::empty(n);
            for (li, l) in locs.iter().enumerate() {
                let order = &co_choices[li][co_pick[li]];
                if let Some(&init) = init_by_loc.get(l) {
                    for &w in order {
                        co.add(init, w);
                    }
                }
                for pair in order.windows(2) {
                    co.add(pair[0], pair[1]);
                }
            }
            let co = co.tclosure();
            let x = Execution::new(
                events,
                self.po.clone(),
                rf,
                co,
                self.deps.clone(),
                self.fences.clone(),
            )
            .expect("enumerated candidates are well-formed by construction");
            out.push(x);

            // Odometer step over (rf_pick, co_pick).
            if !bump(&mut rf_pick, &rf_choices.iter().map(Vec::len).collect::<Vec<_>>())
                && !bump(&mut co_pick, &co_choices.iter().map(Vec::len).collect::<Vec<_>>())
            {
                break;
            }
        }
        out
    }

    /// The number of candidates without materialising them.
    pub fn candidate_count(&self) -> usize {
        let mut writes_by_loc: BTreeMap<Loc, (usize, bool)> = BTreeMap::new();
        for e in &self.events {
            if e.dir == Dir::W {
                let entry = writes_by_loc.entry(e.loc).or_insert((0, false));
                if e.thread.is_none() {
                    entry.1 = true;
                } else {
                    entry.0 += 1;
                }
            }
        }
        let mut count = 1usize;
        for e in &self.events {
            if e.dir == Dir::R {
                let (w, init) = writes_by_loc.get(&e.loc).copied().unwrap_or((0, false));
                count *= w + usize::from(init);
            }
        }
        for &(w, _) in writes_by_loc.values() {
            count *= factorial(w);
        }
        count
    }
}

fn factorial(k: usize) -> usize {
    (1..=k).product::<usize>().max(1)
}

/// Advances a mixed-radix odometer; returns false on wrap-around to zero.
fn bump(digits: &mut [usize], radices: &[usize]) -> bool {
    for (d, &r) in digits.iter_mut().zip(radices) {
        if *d + 1 < r {
            *d += 1;
            return true;
        }
        *d = 0;
    }
    false
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// Convenience builder for skeletons mirroring [`crate::fixtures::ExecBuilder`]
/// but without data-flow choices.
#[derive(Clone, Debug, Default)]
pub struct SkeletonBuilder {
    events: Vec<SkeletonEvent>,
    locs: BTreeMap<String, Loc>,
    po_counters: BTreeMap<u16, usize>,
    addr: Vec<(usize, usize)>,
    data: Vec<(usize, usize)>,
    ctrl: Vec<(usize, usize)>,
    ctrl_cfence: Vec<(usize, usize)>,
    fences: Vec<(Fence, usize, usize)>,
}

impl SkeletonBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn loc(&mut self, name: &str) -> Loc {
        if let Some(&l) = self.locs.get(name) {
            return l;
        }
        let l = Loc(self.locs.len() as u32);
        self.locs.insert(name.to_owned(), l);
        self.events.push(SkeletonEvent {
            thread: None,
            po_index: 0,
            dir: Dir::W,
            loc: l,
            val: Val(0),
        });
        l
    }

    fn push(&mut self, tid: u16, dir: Dir, loc: &str, val: i64) -> usize {
        let l = self.loc(loc);
        let idx = {
            let c = self.po_counters.entry(tid).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        self.events.push(SkeletonEvent {
            thread: Some(ThreadId(tid)),
            po_index: idx,
            dir,
            loc: l,
            val: Val(val),
        });
        self.events.len() - 1
    }

    /// Appends a write of `val` to `loc` on thread `tid`.
    pub fn write(&mut self, tid: u16, loc: &str, val: i64) -> usize {
        self.push(tid, Dir::W, loc, val)
    }

    /// Appends a read from `loc` on thread `tid` (value chosen by
    /// enumeration).
    pub fn read(&mut self, tid: u16, loc: &str) -> usize {
        self.push(tid, Dir::R, loc, 0)
    }

    /// Records an address dependency.
    pub fn addr(&mut self, a: usize, b: usize) -> &mut Self {
        self.addr.push((a, b));
        self
    }

    /// Records a data dependency.
    pub fn data(&mut self, a: usize, b: usize) -> &mut Self {
        self.data.push((a, b));
        self
    }

    /// Records a control dependency.
    pub fn ctrl(&mut self, a: usize, b: usize) -> &mut Self {
        self.ctrl.push((a, b));
        self
    }

    /// Records a `ctrl+cfence` dependency (also a `ctrl` one).
    pub fn ctrl_cfence(&mut self, a: usize, b: usize) -> &mut Self {
        self.ctrl.push((a, b));
        self.ctrl_cfence.push((a, b));
        self
    }

    /// Records a fence between `a` and `b`.
    pub fn fence(&mut self, f: Fence, a: usize, b: usize) -> &mut Self {
        self.fences.push((f, a, b));
        self
    }

    /// Finalises the skeleton; `po` is derived from per-thread insertion
    /// order, and fence relations are saturated so that a fence between
    /// consecutive accesses also separates the enclosing pairs.
    pub fn build(&self) -> Skeleton {
        let n = self.events.len();
        let mut po = Relation::empty(n);
        for (a, ea) in self.events.iter().enumerate() {
            for (b, eb) in self.events.iter().enumerate() {
                if let (Some(ta), Some(tb)) = (ea.thread, eb.thread) {
                    if ta == tb && ea.po_index < eb.po_index {
                        po.add(a, b);
                    }
                }
            }
        }
        let deps = Deps {
            addr: Relation::from_pairs(n, self.addr.iter().copied()),
            data: Relation::from_pairs(n, self.data.iter().copied()),
            ctrl: Relation::from_pairs(n, self.ctrl.iter().copied()),
            ctrl_cfence: Relation::from_pairs(n, self.ctrl_cfence.iter().copied()),
        };
        let mut fences: BTreeMap<Fence, Relation> = BTreeMap::new();
        for &(f, a, b) in &self.fences {
            let rel = fences.entry(f).or_insert_with(|| Relation::empty(n));
            // Saturate: every access po-before-or-equal `a` is separated by
            // the fence from every access po-after-or-equal `b`.
            let mut before = vec![a];
            before.extend((0..n).filter(|&e| po.contains(e, a)));
            let mut after = vec![b];
            after.extend((0..n).filter(|&e| po.contains(b, e)));
            for &x in &before {
                for &y in &after {
                    rel.add(x, y);
                }
            }
        }
        Skeleton { events: self.events.clone(), po, deps, fences }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Power, Sc};
    use crate::model::check;

    fn mp_skeleton(with_fence: bool, with_addr: bool) -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let a = b.write(0, "x", 1);
        let w = b.write(0, "y", 1);
        let c = b.read(1, "y");
        let d = b.read(1, "x");
        if with_fence {
            b.fence(Fence::Lwsync, a, w);
        }
        if with_addr {
            b.addr(c, d);
        }
        b.build()
    }

    #[test]
    fn mp_has_four_candidates() {
        // Each read has 2 possible sources; 1 non-init write per location.
        let sk = mp_skeleton(false, false);
        assert_eq!(sk.candidate_count(), 4);
        assert_eq!(sk.candidates().len(), 4);
    }

    #[test]
    fn sc_rules_out_exactly_the_mp_violation() {
        let sk = mp_skeleton(false, false);
        let allowed: Vec<bool> = sk.candidates().iter().map(|x| check(&Sc, x).allowed()).collect();
        assert_eq!(allowed.iter().filter(|&&a| a).count(), 3, "Fig 3: one of four is non-SC");
    }

    #[test]
    fn power_needs_fence_and_dep_to_match_sc_on_mp() {
        let plain = mp_skeleton(false, false);
        let fenced = mp_skeleton(true, true);
        let count_allowed = |sk: &Skeleton| {
            sk.candidates().iter().filter(|x| check(&Power::new(), x).allowed()).count()
        };
        assert_eq!(count_allowed(&plain), 4);
        assert_eq!(count_allowed(&fenced), 3);
    }

    #[test]
    fn co_enumeration_orders_same_location_writes() {
        let mut b = SkeletonBuilder::new();
        b.write(0, "x", 1);
        b.write(1, "x", 2);
        let sk = b.build();
        // 2 writes, no reads: 2 candidate coherence orders.
        assert_eq!(sk.candidates().len(), 2);
    }

    #[test]
    fn fence_saturation_covers_transitive_pairs() {
        let mut b = SkeletonBuilder::new();
        let a = b.write(0, "x", 1);
        let w = b.write(0, "y", 1);
        let c = b.write(0, "z", 1);
        b.fence(Fence::Sync, a, w);
        let sk = b.build();
        let sync = &sk.fences[&Fence::Sync];
        assert!(sync.contains(a, w));
        assert!(sync.contains(a, c), "fence also separates a from z-write");
        assert!(!sync.contains(w, c), "no fence between y and z writes");
    }
}
