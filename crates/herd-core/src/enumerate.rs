//! Data-flow enumeration: from a program skeleton to all candidate
//! executions (paper, Sec 3 §Data-flow semantics).
//!
//! A [`Skeleton`] is a control-flow semantics whose write values are known
//! and whose read values are still undetermined. Enumeration chooses, for
//! every read, a same-location write to read from (`rf`), and for every
//! location a total coherence order (`co`) with the initial write first —
//! exactly the candidate-execution construction of Fig 3.
//!
//! Enumeration is *streaming*: [`Skeleton::stream`] returns a
//! [`CandidateIter`] that walks an odometer over rf picks and in-place
//! Heap's-algorithm coherence permutations, sharing one `Arc`'d
//! [`ExecCore`] (po, deps, fences and the skeleton-invariant derived
//! relations) across every candidate instead of deep-cloning per candidate.
//! [`Skeleton::stream_pruned`] additionally checks SC PER LOCATION
//! incrementally, location by location, as each coherence order is fixed —
//! the uniproc-first pruning of Sec 8.3 — so entire rf×co subtrees are
//! skipped before an [`Execution`] is ever built.
//!
//! Two further `-speedcheck` axes compose via [`StreamOpts`] (or the
//! architecture-driven [`Skeleton::stream_pruned_for`]):
//!
//! * **NO THIN AIR pruning** — with a sound static base from
//!   [`crate::model::Architecture::thin_air_base`], an incremental
//!   [`ThinAirTracker`] follows the rf odometer digit by digit and skips
//!   every rf subtree whose partial happens-before graph is already
//!   cyclic, before any coherence permutation is visited.
//! * **Sharding** — the rf odometer's linear index range splits into
//!   contiguous shards ([`StreamOpts::shard`]), so the rf×co space of a
//!   *single* test fans out across threads; per-shard
//!   [`CandidateIter::emitted`]/[`CandidateIter::pruned`] counters sum to
//!   exactly [`Skeleton::candidate_count`].
//!
//! Front ends whose write values depend on read values (genuine data flow
//! through registers) perform their own symbolic enumeration and lower to
//! concrete [`Execution`]s directly; this module covers the common case of
//! constant-valued writes, which includes every litmus family in the paper.

use crate::arena::RelArena;
use crate::event::{Dir, Event, Fence, Loc, ThreadId, Val};
use crate::exec::{Deps, ExecCore, ExecFrame, ExecRels, Execution};
use crate::faultpoint::{self, FaultPoint};
use crate::model::{Architecture, ArenaChecker, Verdict};
use crate::relation::Relation;
use crate::sched::{Budget, StopReason};
use crate::thinair::ThinAirTracker;
use crate::uniproc::{CoMenus, EventShape, LocGraphs};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One event of a skeleton: a write with a fixed value, or a read whose
/// value enumeration will determine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkeletonEvent {
    /// Holding thread (`None` for initial writes).
    pub thread: Option<ThreadId>,
    /// Program-order index within the thread.
    pub po_index: usize,
    /// Direction.
    pub dir: Dir,
    /// Location accessed.
    pub loc: Loc,
    /// Value written (ignored for reads).
    pub val: Val,
}

/// A control-flow semantics ready for data-flow enumeration.
#[derive(Clone, Debug)]
pub struct Skeleton {
    /// The events; index = event id.
    pub events: Vec<SkeletonEvent>,
    /// Program order over the events.
    pub po: Relation,
    /// Dependency relations.
    pub deps: Deps,
    /// Fence relations.
    pub fences: BTreeMap<Fence, Relation>,
}

impl Skeleton {
    /// Streams every candidate execution of the skeleton lazily.
    ///
    /// # Panics
    ///
    /// Panics if the relations' universe does not match the event count
    /// (a front-end bug, not an input error).
    pub fn stream(&self) -> CandidateIter {
        self.stream_with(StreamOpts::default())
    }

    /// Streams only the candidates satisfying SC PER LOCATION, pruning
    /// whole rf×co subtrees at generation time (paper, Sec 8.3). The
    /// discarded candidates — all of them uniproc-forbidden — are counted
    /// by [`CandidateIter::pruned`].
    pub fn stream_pruned(&self) -> CandidateIter {
        self.stream_with(StreamOpts { uniproc: true, ..StreamOpts::default() })
    }

    /// Like [`Skeleton::stream_pruned`], but tolerating load-load hazards
    /// (read-read `po-loc` pairs dropped), matching architectures whose SC
    /// PER LOCATION axiom is weakened that way (ARM-llh, Sparc RMO).
    pub fn stream_pruned_llh(&self) -> CandidateIter {
        self.stream_with(StreamOpts { uniproc: true, llh: true, ..StreamOpts::default() })
    }

    /// Streams with every generation-time pruning axis that is sound for
    /// `arch`: uniproc masks (load-load-hazard-weakened when the
    /// architecture asks for it) plus incremental NO THIN AIR pruning when
    /// [`Architecture::thin_air_base`] vouches for a static base.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch (a front-end bug).
    pub fn stream_pruned_for<A: Architecture + ?Sized>(&self, arch: &A) -> CandidateIter {
        self.stream_pruned_for_shard(arch, 0, 1)
    }

    /// One shard of [`Skeleton::stream_pruned_for`]: covers the
    /// `shard`-th of `nshards` contiguous slices of the rf odometer, so a
    /// single test's rf×co space fans out across threads. Per-shard
    /// `emitted + pruned` counters sum to exactly
    /// [`Skeleton::candidate_count`] over all shards.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch or `shard >= nshards`.
    pub fn stream_pruned_for_shard<A: Architecture + ?Sized>(
        &self,
        arch: &A,
        shard: usize,
        nshards: usize,
    ) -> CandidateIter {
        let (parts, core) = self.parts_core();
        let opts = StreamOpts {
            uniproc: true,
            llh: arch.tolerates_load_load_hazards(),
            thin_air: arch.thin_air_base(&core),
            shard: Some((shard, nshards)),
        };
        CandidateIter::new(self, parts, core, opts)
    }

    /// Streams with explicit [`StreamOpts`].
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch or an out-of-range shard index.
    pub fn stream_with(&self, opts: StreamOpts) -> CandidateIter {
        let (parts, core) = self.parts_core();
        CandidateIter::new(self, parts, core, opts)
    }

    fn parts_core(&self) -> (SkeletonParts, Arc<ExecCore>) {
        let n = self.events.len();
        assert_eq!(self.po.universe(), n, "po universe mismatch");
        let parts = SkeletonParts::new(self);
        let core = Arc::new(
            ExecCore::new(
                &parts.base_events,
                self.po.clone(),
                self.deps.clone(),
                self.fences.clone(),
            )
            .expect("skeleton relations are well-formed"),
        );
        (parts, core)
    }

    /// The arena-backed checked stream: enumerates with every pruning
    /// axis sound for `arch` (uniproc masks, llh weakening, thin air) and
    /// checks each surviving candidate against the four axioms — **zero
    /// heap allocations per candidate** once `arena` has warmed to its
    /// high-water mark.
    ///
    /// Candidates are never materialised as owned [`Execution`]s: the
    /// witness and all derived relations live in `arena` slots addressed
    /// by one [`ExecRels`], refreshed scope by scope — the rf-invariant
    /// part once per rf-odometer digit, the coherence-dependent part once
    /// per co choice — and `sink` observes each candidate as a borrowed
    /// [`ExecFrame`] plus its [`Verdict`]. The axiom temporaries are
    /// rolled back to a checkpoint after every candidate, so the arena's
    /// footprint is the high-water mark of one candidate's working set.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch (a front-end bug).
    pub fn check_stream_arena<A: Architecture + ?Sized>(
        &self,
        arch: &A,
        arena: &mut RelArena,
        sink: &mut dyn FnMut(&ExecFrame<'_>, &RelArena, Verdict),
    ) -> CheckedStats {
        self.check_stream_arena_shard(arch, arena, 0, 1, sink)
    }

    /// One shard of [`Skeleton::check_stream_arena`], covering the
    /// `shard`-th of `nshards` contiguous slices of the rf odometer (the
    /// same partition as [`Skeleton::stream_pruned_for_shard`], so
    /// per-shard `emitted + pruned` sum to [`Skeleton::candidate_count`]).
    /// Each worker thread owns its own [`RelArena`].
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch or `shard >= nshards`.
    pub fn check_stream_arena_shard<A: Architecture + ?Sized>(
        &self,
        arch: &A,
        arena: &mut RelArena,
        shard: usize,
        nshards: usize,
        sink: &mut dyn FnMut(&ExecFrame<'_>, &RelArena, Verdict),
    ) -> CheckedStats {
        let ctx = EngineCtx::new(self, arch);
        let mut st = EngineState::new(&ctx, arch, arena);
        let (start, end) = shard_range(RfDriver::rf_total(&ctx.parts), shard, nshards);
        run_arena_range(&ctx, arch, arena, &mut st, start, end, None, &Budget::unlimited(), sink)
    }

    /// [`Skeleton::check_stream_arena`] under a [`Budget`]: a deadline,
    /// candidate bound, or cooperative cancellation stops enumeration
    /// mid-odometer, and the returned stats report the cut exactly —
    /// `emitted + pruned + remaining == candidate_count`, with a
    /// [`ResumePoint`] that [`Skeleton::check_stream_arena_resume`] can
    /// complete from.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch (a front-end bug).
    pub fn check_stream_arena_budgeted<A: Architecture + ?Sized>(
        &self,
        arch: &A,
        arena: &mut RelArena,
        budget: &Budget,
        sink: &mut dyn FnMut(&ExecFrame<'_>, &RelArena, Verdict),
    ) -> CheckedStats {
        let ctx = EngineCtx::new(self, arch);
        let mut st = EngineState::new(&ctx, arch, arena);
        let end = RfDriver::rf_total(&ctx.parts);
        run_arena_range(&ctx, arch, arena, &mut st, 0, end, None, budget, sink)
    }

    /// Completes an interrupted [`Skeleton::check_stream_arena_budgeted`]
    /// run from its [`ResumePoint`]: first the unchecked tail of the cut
    /// configuration's coherence odometer, then every following rf
    /// configuration. The merged stats of the interrupted run and this one
    /// reproduce an uninterrupted run exactly — same verdict stream, same
    /// accounting.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch (a front-end bug).
    pub fn check_stream_arena_resume<A: Architecture + ?Sized>(
        &self,
        arch: &A,
        arena: &mut RelArena,
        resume: ResumePoint,
        sink: &mut dyn FnMut(&ExecFrame<'_>, &RelArena, Verdict),
    ) -> CheckedStats {
        let ctx = EngineCtx::new(self, arch);
        let mut st = EngineState::new(&ctx, arch, arena);
        let end = RfDriver::rf_total(&ctx.parts);
        let unlimited = Budget::unlimited();
        let mut stats = CheckedStats::default();
        let tail_start = if resume.co_next > 0 {
            // Finish the cut configuration's coherence tail; `u128::MAX`
            // clamps to the menu count, and a non-zero start means the
            // configuration's generation-time prunes stay with the
            // interrupted run that already claimed them.
            stats.absorb(&run_arena_range(
                &ctx,
                arch,
                arena,
                &mut st,
                resume.rf_pos,
                resume.rf_pos + 1,
                Some((resume.co_next, u128::MAX)),
                &unlimited,
                sink,
            ));
            resume.rf_pos + 1
        } else {
            resume.rf_pos
        };
        if tail_start < end {
            stats.absorb(&run_arena_range(
                &ctx, arch, arena, &mut st, tail_start, end, None, &unlimited, sink,
            ));
        }
        stats
    }

    /// Enumerates every candidate execution into a vector.
    ///
    /// Equivalent to `self.stream().collect()`; prefer [`Skeleton::stream`]
    /// when the candidates are consumed once.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch (a front-end bug).
    pub fn candidates(&self) -> Vec<Execution> {
        self.stream().collect()
    }

    /// The seed's eager generate-then-filter enumeration, kept as the
    /// baseline the streaming engine is benchmarked and property-tested
    /// against: materialises per-location permutation tables up front and
    /// deep-clones `po`/`deps`/`fences` into every candidate.
    ///
    /// # Panics
    ///
    /// Panics on a universe mismatch (a front-end bug).
    pub fn candidates_eager(&self) -> Vec<Execution> {
        let n = self.events.len();
        assert_eq!(self.po.universe(), n, "po universe mismatch");
        let parts = SkeletonParts::new(self);

        // Materialise every coherence permutation per location up front.
        let co_choices: Vec<Vec<Vec<usize>>> = parts
            .loc_writes
            .iter()
            .map(|ws| {
                let mut perms = Vec::new();
                let mut heap = HeapPerm::new(ws.clone());
                loop {
                    perms.push(heap.current().to_vec());
                    if !heap.advance() {
                        break;
                    }
                }
                perms
            })
            .collect();

        let mut out = Vec::new();
        if parts.rf_choices.iter().any(Vec::is_empty) {
            return out;
        }
        let mut rf_pick = vec![0usize; parts.reads.len()];
        let mut co_pick = vec![0usize; parts.locs.len()];
        loop {
            let mut events = parts.base_events.clone();
            let mut rf = Relation::empty(n);
            for (k, &r) in parts.reads.iter().enumerate() {
                let w = parts.rf_choices[k][rf_pick[k]];
                rf.add(w, r);
                events[r].val = events[w].val;
            }
            let mut co = Relation::empty(n);
            for (li, &init) in parts.loc_init.iter().enumerate() {
                let order = &co_choices[li][co_pick[li]];
                build_co(&mut co, init, order);
            }
            let x = Execution::new(
                events,
                self.po.clone(),
                rf,
                co,
                self.deps.clone(),
                self.fences.clone(),
            )
            .expect("enumerated candidates are well-formed by construction");
            out.push(x);

            if !bump(&mut rf_pick, &parts.rf_choices.iter().map(Vec::len).collect::<Vec<_>>())
                && !bump(&mut co_pick, &co_choices.iter().map(Vec::len).collect::<Vec<_>>())
            {
                break;
            }
        }
        out
    }

    /// The number of candidates without materialising them: the product of
    /// per-read rf choices and per-location coherence permutations,
    /// checked in `u128` — `None` when even that overflows (a skeleton no
    /// enumeration could ever finish anyway). The old `usize` arithmetic
    /// wrapped silently (debug-panicked) on large skeletons, breaking the
    /// `emitted + pruned == candidate_count` accounting.
    pub fn candidate_count(&self) -> Option<u128> {
        let mut writes_by_loc: BTreeMap<Loc, (usize, bool)> = BTreeMap::new();
        for e in &self.events {
            if e.dir == Dir::W {
                let entry = writes_by_loc.entry(e.loc).or_insert((0, false));
                if e.thread.is_none() {
                    entry.1 = true;
                } else {
                    entry.0 += 1;
                }
            }
        }
        let mut count = 1u128;
        for e in &self.events {
            if e.dir == Dir::R {
                let (w, init) = writes_by_loc.get(&e.loc).copied().unwrap_or((0, false));
                count = count.checked_mul(w as u128 + u128::from(init))?;
            }
        }
        for &(w, _) in writes_by_loc.values() {
            count = count.checked_mul(factorial_checked(w)?)?;
        }
        Some(count)
    }

    /// [`Skeleton::candidate_count`], saturating at `u128::MAX` instead of
    /// returning `None` — convenient for size guards in tests.
    pub fn candidate_count_saturating(&self) -> u128 {
        self.candidate_count().unwrap_or(u128::MAX)
    }
}

/// Options for [`Skeleton::stream_with`]: which generation-time pruning
/// axes are active, and which rf-odometer shard to cover.
#[derive(Clone, Debug, Default)]
pub struct StreamOpts {
    /// Prune SC-PER-LOCATION-violating subtrees at generation time.
    pub uniproc: bool,
    /// Tolerate load-load hazards in the uniproc graphs (drop RR `po-loc`
    /// pairs) — only meaningful with `uniproc`.
    pub llh: bool,
    /// Static `ppo ∪ fences` underapproximation enabling incremental
    /// NO THIN AIR pruning; must satisfy the
    /// [`Architecture::thin_air_base`] soundness contract. The tracker's
    /// reachability rows are width-generic, so the axis stays active at
    /// any universe size (it used to fall back past 64 events).
    pub thin_air: Option<Relation>,
    /// Restrict the iterator to one contiguous shard `(index, count)` of
    /// the rf odometer's linear index range.
    pub shard: Option<(usize, usize)>,
}

/// Skeleton-derived tables shared by the eager and streaming paths (and,
/// crate-internally, by the [`crate::sched`] planner).
pub(crate) struct SkeletonParts {
    pub(crate) base_events: Vec<Event>,
    pub(crate) reads: Vec<usize>,
    pub(crate) rf_choices: Vec<Vec<usize>>,
    pub(crate) locs: Vec<Loc>,
    /// Initial write of each `locs` entry, if any.
    pub(crate) loc_init: Vec<Option<usize>>,
    /// Non-initial writes of each `locs` entry, in event order.
    pub(crate) loc_writes: Vec<Vec<usize>>,
}

impl SkeletonParts {
    pub(crate) fn new(sk: &Skeleton) -> Self {
        let base_events: Vec<Event> = sk
            .events
            .iter()
            .enumerate()
            .map(|(id, e)| Event {
                id,
                thread: e.thread,
                po_index: e.po_index,
                dir: e.dir,
                loc: e.loc,
                val: e.val,
            })
            .collect();

        let mut writes_by_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
        let mut init_by_loc: BTreeMap<Loc, usize> = BTreeMap::new();
        for e in &base_events {
            if e.dir == Dir::W {
                if e.thread.is_none() {
                    init_by_loc.insert(e.loc, e.id);
                } else {
                    writes_by_loc.entry(e.loc).or_default().push(e.id);
                }
            }
        }

        let reads: Vec<usize> =
            base_events.iter().filter(|e| e.dir == Dir::R).map(|e| e.id).collect();
        let rf_choices: Vec<Vec<usize>> = reads
            .iter()
            .map(|&r| {
                let loc = base_events[r].loc;
                let mut ws: Vec<usize> = writes_by_loc.get(&loc).cloned().unwrap_or_default();
                if let Some(&init) = init_by_loc.get(&loc) {
                    ws.push(init);
                }
                ws
            })
            .collect();

        let locs: Vec<Loc> = writes_by_loc.keys().copied().collect();
        let loc_init: Vec<Option<usize>> =
            locs.iter().map(|l| init_by_loc.get(l).copied()).collect();
        let loc_writes: Vec<Vec<usize>> = locs.iter().map(|l| writes_by_loc[l].clone()).collect();

        SkeletonParts { base_events, reads, rf_choices, locs, loc_init, loc_writes }
    }
}

/// Statistics of one arena-backed checked stream
/// ([`Skeleton::check_stream_arena`]): `emitted + pruned + remaining`
/// equals [`Skeleton::candidate_count`] (summed over shards) — with
/// `remaining == 0` on an uninterrupted run, exactly as for
/// [`CandidateIter`] — and `allowed` counts the candidates the
/// architecture's four axioms accept.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckedStats {
    /// Candidates materialised as frames and checked.
    pub emitted: u128,
    /// Candidates pruned at generation time (uniproc + thin air).
    pub pruned: u128,
    /// Checked candidates all four axioms allow.
    pub allowed: u128,
    /// Candidates neither checked nor pruned because a [`Budget`] stopped
    /// the run first; zero on a completed run. Recovered in O(odometer
    /// digits) from the driver position at the cut, never by counting.
    pub remaining: u128,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopReason>,
    /// Where to pick the enumeration back up
    /// ([`Skeleton::check_stream_arena_resume`]); `None` when the run
    /// completed or when per-unit cut points make a single linear resume
    /// point meaningless (the scheduler path).
    pub resume: Option<ResumePoint>,
}

impl CheckedStats {
    /// Merges another shard's / unit's stats into `self`: counters add
    /// (saturating, matching the engine's u128 accounting), `stopped`
    /// keeps the first reason seen, and `resume` keeps the first cut
    /// point (meaningful only when the parts are consecutive).
    pub fn absorb(&mut self, other: &CheckedStats) {
        self.emitted = self.emitted.saturating_add(other.emitted);
        self.pruned = self.pruned.saturating_add(other.pruned);
        self.allowed = self.allowed.saturating_add(other.allowed);
        self.remaining = self.remaining.saturating_add(other.remaining);
        if self.stopped.is_none() {
            self.stopped = other.stopped;
        }
        if self.resume.is_none() {
            self.resume = other.resume;
        }
    }
}

/// An exact enumeration cut point: the rf configuration and the coherence
/// ordinal within it where a budgeted run stopped. Feeding it back to
/// [`Skeleton::check_stream_arena_resume`] completes the stream with the
/// same verdicts an uninterrupted run would have produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumePoint {
    /// Linear rf-odometer index of the configuration that was current at
    /// the cut.
    pub rf_pos: u128,
    /// Coherence-menu ordinal (within `rf_pos`) of the first unchecked
    /// candidate; `0` means the whole configuration is still pending.
    pub co_next: u128,
}

/// Skeleton-invariant context of the arena-backed checked stream, built
/// once per enumeration and shared (read-only) by every worker and every
/// [`crate::sched::WorkUnit`].
pub(crate) struct EngineCtx {
    pub(crate) parts: SkeletonParts,
    pub(crate) core: Arc<ExecCore>,
    pub(crate) graphs: LocGraphs,
    pub(crate) thin_air: Option<Relation>,
}

impl EngineCtx {
    pub(crate) fn new<A: Architecture + ?Sized>(sk: &Skeleton, arch: &A) -> Self {
        let (parts, core) = sk.parts_core();
        let shape: Vec<EventShape> = parts
            .base_events
            .iter()
            .map(|e| EventShape { dir: e.dir, loc: e.loc, init: e.thread.is_none() })
            .collect();
        let graphs = LocGraphs::new(&shape, &sk.po, arch.tolerates_load_load_hazards());
        let thin_air = arch.thin_air_base(&core);
        EngineCtx { parts, core, graphs, thin_air }
    }
}

/// Per-worker mutable state of the engine: the arena-slot addresses, the
/// checker, and the reusable menu/odometer buffers. One `EngineState` (and
/// one [`RelArena`]) per worker thread; many units run through it in turn,
/// so unit granularity costs no allocator traffic.
pub(crate) struct EngineState {
    rels: ExecRels,
    checker: ArenaChecker,
    menus: CoMenus,
    co_pick: Vec<usize>,
    events: Vec<Event>,
    rf_src: Vec<usize>,
}

impl EngineState {
    pub(crate) fn new<A: Architecture + ?Sized>(
        ctx: &EngineCtx,
        arch: &A,
        arena: &mut RelArena,
    ) -> Self {
        let n = ctx.parts.base_events.len();
        arena.reset(n);
        EngineState {
            rels: ExecRels::alloc(arena),
            checker: ArenaChecker::new(arch, &ctx.core),
            menus: CoMenus::new(&ctx.parts.loc_writes),
            co_pick: vec![0usize; ctx.parts.locs.len()],
            events: ctx.parts.base_events.clone(),
            rf_src: vec![0usize; n],
        }
    }
}

/// Runs the arena-backed checked stream over one work unit: the linear
/// rf-configuration range `[rf_start, rf_end)`, optionally restricted to
/// the coherence-menu odometer sub-range `co_range` of a *single* rf
/// configuration (then `rf_end == rf_start + 1`).
///
/// Accounting contract: a co-sub-range unit emits exactly its share of the
/// menu combinations, and only the unit whose sub-range starts at menu
/// index 0 claims the configuration's generation-time prunes (uniproc menu
/// filtering and thin-air/rf dooms), so per-unit `emitted + pruned` summed
/// over any partition produced by [`crate::sched::WorkPlan`] equals
/// [`Skeleton::candidate_count`].
///
/// Budget contract: when `budget` trips — deadline, candidate bound, or
/// cancellation — the run stops at the next check point (an rf-scope
/// boundary, or every candidate inside the coherence loop) and the
/// returned stats carry the exact `remaining` count of the unit's
/// unclassified candidates plus the [`ResumePoint`] of the cut, so
/// `emitted + pruned + remaining` still equals the unit's share of the
/// space. `remaining` comes from the driver position in O(odometer
/// digits), never from counting.
#[allow(clippy::too_many_arguments)] // engine-internal; one call site family
pub(crate) fn run_arena_range<A: Architecture + ?Sized>(
    ctx: &EngineCtx,
    arch: &A,
    arena: &mut RelArena,
    st: &mut EngineState,
    rf_start: u128,
    rf_end: u128,
    co_range: Option<(u128, u128)>,
    budget: &Budget,
    sink: &mut dyn FnMut(&ExecFrame<'_>, &RelArena, Verdict),
) -> CheckedStats {
    let parts = &ctx.parts;
    let mut driver = RfDriver::new_range(parts, ctx.thin_air.as_ref(), rf_start, rf_end);
    let accounts_prunes = co_range.is_none_or(|(s, _)| s == 0);
    let mut stats = CheckedStats::default();

    'scopes: while !driver.done {
        if !driver.sync_thinair(parts) {
            break; // range exhausted
        }
        // Unit-boundary budget check for plain rf ranges: everything from
        // the current configuration on is untouched, so `remaining` is a
        // whole-subtree product and the resume point is a clean scope.
        if co_range.is_none() {
            if let Some(reason) = budget.check(stats.emitted) {
                stats.stopped = Some(reason);
                stats.remaining = (driver.end - driver.pos).saturating_mul(driver.co_total);
                stats.resume = Some(ResumePoint { rf_pos: driver.pos, co_next: 0 });
                break 'scopes;
            }
        }
        // One rf scope: fill rf, concretise read values, filter the
        // coherence menus, derive the rf-invariant relations once.
        arena.clear(st.rels.rf);
        for (k, &r) in parts.reads.iter().enumerate() {
            let w = parts.rf_choices[k][driver.rf_pick[k]];
            arena.add(st.rels.rf, w, r);
            st.rf_src[r] = w;
            st.events[r].val = st.events[w].val;
        }
        faultpoint::hit(FaultPoint::CoMenuBuild, faultpoint::config_key(driver.pos));
        ctx.graphs.co_menus_into(&parts.locs, &st.rf_src, &mut st.menus);
        let rf_ok = ctx.graphs.rf_only_consistent_pooled(&parts.locs, &st.rf_src, &mut st.menus);
        let kept = st.menus.kept();
        if !rf_ok || kept == 0 {
            driver.prune_rf_subtree();
            driver.advance_one();
            continue;
        }
        // The coherence scope: one menu combination per candidate, over
        // the whole menu odometer or the unit's sub-range of it.
        let (co_s, co_e) = match co_range {
            None => (0, kept),
            Some((s, e)) => (s.min(kept), e.min(kept)),
        };
        // Unit-boundary budget check for co-sub-range units, *before* the
        // menu prunes are claimed: an interrupted unit classifies its
        // whole share — emitted slice and (if it owns them) menu prunes —
        // as remaining, so a resumed run can re-account them exactly.
        if co_range.is_some() {
            if let Some(reason) = budget.check(stats.emitted) {
                stats.stopped = Some(reason);
                stats.remaining = (co_e - co_s).saturating_add(if accounts_prunes {
                    driver.co_total - kept
                } else {
                    0
                });
                stats.resume = Some(ResumePoint { rf_pos: driver.pos, co_next: co_s });
                break 'scopes;
            }
        }
        driver.add_pruned(driver.co_total - kept);
        faultpoint::hit(FaultPoint::ArenaCheckpoint, faultpoint::config_key(driver.pos));
        st.rels.derive_rf(&ctx.core, arena);

        if co_s < co_e {
            // Seek the menu odometer to `co_s` (mixed radix, digit 0
            // least significant — the same layout `CoMenus::bump` walks).
            let mut rem = co_s;
            for (li, d) in st.co_pick.iter_mut().enumerate() {
                let r = st.menus.radix(li) as u128;
                *d = (rem % r) as usize;
                rem /= r;
            }
            let mut visited = co_s;
            loop {
                arena.clear(st.rels.co);
                for (li, &init) in parts.loc_init.iter().enumerate() {
                    build_co_arena(arena, st.rels.co, init, st.menus.order(li, st.co_pick[li]));
                }
                st.rels.derive_co(&ctx.core, arena);
                let fx = ExecFrame { core: &ctx.core, events: &st.events, rels: &st.rels };
                faultpoint::hit(
                    FaultPoint::CandidateCheck,
                    faultpoint::candidate_key(driver.pos, visited),
                );
                let verdict = st.checker.check(arch, &fx, arena);
                stats.emitted += 1;
                if verdict.allowed() {
                    stats.allowed += 1;
                }
                sink(&fx, arena, verdict);
                visited += 1;
                if visited >= co_e || !st.menus.bump(&mut st.co_pick) {
                    break;
                }
                // Mid-odometer budget check: the cheap compare-and-load
                // every candidate, the clock only every 1024 emits (the
                // `~2^k` cadence that keeps overhead under the perf gate).
                let hit = if stats.emitted & 1023 == 0 {
                    budget.check(stats.emitted)
                } else {
                    budget.check_fast(stats.emitted)
                };
                if let Some(reason) = hit {
                    stats.stopped = Some(reason);
                    stats.remaining = (co_e - visited).saturating_add(
                        (driver.end - driver.pos - 1).saturating_mul(driver.co_total),
                    );
                    stats.resume = Some(ResumePoint { rf_pos: driver.pos, co_next: visited });
                    break 'scopes;
                }
            }
        }
        driver.advance_one();
    }
    if accounts_prunes {
        stats.pruned = driver.pruned;
    }
    stats
}

/// Arena twin of [`build_co`]: adds one location's coherence edges to an
/// arena slot.
pub fn build_co_arena(
    arena: &mut RelArena,
    co: crate::arena::RelId,
    init: Option<usize>,
    order: &[usize],
) {
    if let Some(init) = init {
        for &w in order {
            arena.add(co, init, w);
        }
    }
    for i in 0..order.len() {
        for j in i + 1..order.len() {
            arena.add(co, order[i], order[j]);
        }
    }
}

/// Adds the (transitively closed) coherence edges of one location's order:
/// the initial write before every ordered write, and each ordered write
/// before all its successors. Shared by every enumeration front end.
pub fn build_co(co: &mut Relation, init: Option<usize>, order: &[usize]) {
    if let Some(init) = init {
        for &w in order {
            co.add(init, w);
        }
    }
    for i in 0..order.len() {
        for j in i + 1..order.len() {
            co.add(order[i], order[j]);
        }
    }
}

/// Per-location coherence enumeration state of one rf configuration.
enum CoState {
    /// In-place Heap's-algorithm generators, one per location (no pruning).
    Lazy(Vec<HeapPerm>),
    /// Uniproc-valid orders per location, filtered once per rf config,
    /// with the odometer radices precomputed.
    Menu { menus: Vec<Vec<Vec<usize>>>, pick: Vec<usize>, radices: Vec<usize> },
}

/// The rf-odometer state machine shared by [`CandidateIter`] (the owned,
/// `Execution`-materialising stream), the arena-backed checked stream
/// ([`Skeleton::check_stream_arena`]) and the [`crate::sched`] work
/// scheduler: linear-index range ownership (seek/resume in O(digits)),
/// mixed-radix digit decoding, thin-air subtree skipping and the pruned
/// accounting.
pub(crate) struct RfDriver {
    thinair: Option<ThinAirTracker>,
    pub(crate) rf_pick: Vec<usize>,
    /// Odometer radices for `rf_pick` (fixed for the whole iteration).
    rf_radices: Vec<usize>,
    /// `rf_weights[d]` = Π `rf_radices[..d]`: the number of rf
    /// configurations in one digit-`d` subtree (saturating).
    rf_weights: Vec<u128>,
    /// Linear rf-configuration index of the current pick; this driver
    /// covers `[pos, end)` of the rf odometer.
    pos: u128,
    end: u128,
    /// Total coherence combinations of one rf configuration (saturating).
    pub(crate) co_total: u128,
    pub(crate) done: bool,
    pub(crate) pruned: u128,
}

impl RfDriver {
    /// Total number of rf configurations of a skeleton (saturating) — the
    /// linear index space [`RfDriver::new_range`] addresses.
    pub(crate) fn rf_total(parts: &SkeletonParts) -> u128 {
        parts.rf_choices.iter().map(|c| c.len() as u128).fold(1u128, u128::saturating_mul)
    }

    pub(crate) fn new(
        parts: &SkeletonParts,
        thin_air: Option<&Relation>,
        shard: (usize, usize),
    ) -> Self {
        let (pos, end) = shard_range(Self::rf_total(parts), shard.0, shard.1);
        Self::new_range(parts, thin_air, pos, end)
    }

    /// A driver seeked to cover exactly the linear rf-configuration range
    /// `[start, end)`: the odometer digits are decoded from `start` in
    /// O(digits), so a [`crate::sched::WorkUnit`] can resume mid-odometer
    /// without replaying the prefix.
    pub(crate) fn new_range(
        parts: &SkeletonParts,
        thin_air: Option<&Relation>,
        start: u128,
        end: u128,
    ) -> Self {
        let thinair = thin_air.map(ThinAirTracker::new);
        let rf_radices: Vec<usize> = parts.rf_choices.iter().map(Vec::len).collect();
        let mut rf_weights = Vec::with_capacity(rf_radices.len());
        let mut rf_total: u128 = 1;
        for &r in &rf_radices {
            rf_weights.push(rf_total);
            rf_total = rf_total.saturating_mul(r as u128);
        }
        let co_total = parts
            .loc_writes
            .iter()
            .map(|ws| factorial_saturating(ws.len()))
            .fold(1u128, u128::saturating_mul);

        let pos = start.min(rf_total);
        let end = end.min(rf_total);

        let mut d = RfDriver {
            thinair,
            rf_pick: vec![0usize; rf_radices.len()],
            rf_radices,
            rf_weights,
            pos,
            end,
            co_total,
            done: pos >= end,
            pruned: 0,
        };
        if !d.done {
            d.decode_pos();
            // A cyclic static base forbids every candidate of the shard.
            if d.thinair.as_ref().is_some_and(ThinAirTracker::is_base_cyclic) {
                d.pruned = (d.end - d.pos).saturating_mul(d.co_total);
                d.pos = d.end;
                d.done = true;
            }
        }
        d
    }

    /// Rewrites `rf_pick` to the digits of the linear index `pos`.
    fn decode_pos(&mut self) {
        for (d, pick) in self.rf_pick.iter_mut().enumerate() {
            *pick = ((self.pos / self.rf_weights[d]) % self.rf_radices[d] as u128) as usize;
        }
    }

    /// Moves to the next rf configuration (sets `done` past the shard).
    fn advance_one(&mut self) {
        self.pos += 1;
        if self.pos >= self.end {
            self.done = true;
            return;
        }
        let more = bump(&mut self.rf_pick, &self.rf_radices);
        debug_assert!(more, "pos < end implies the odometer has not wrapped");
    }

    /// Accounts a whole rf configuration's coherence subtree as pruned.
    fn prune_rf_subtree(&mut self) {
        self.pruned = self.pruned.saturating_add(self.co_total);
    }

    /// Accounts `k` candidates as pruned (menu filtering).
    fn add_pruned(&mut self, k: u128) {
        self.pruned = self.pruned.saturating_add(k);
    }

    /// The external read-from edge read-digit `d` contributes to `hb`
    /// under the current pick, if any (`rfi ⊄ hb`; initial writes are
    /// external but can never sit on a cycle, so including them is fine).
    fn rfe_edge(&self, parts: &SkeletonParts, d: usize) -> Option<(usize, usize)> {
        let r = parts.reads[d];
        let w = parts.rf_choices[d][self.rf_pick[d]];
        let ev = &parts.base_events;
        match (ev[w].thread, ev[r].thread) {
            (Some(a), Some(b)) if a == b => None,
            _ => Some((w, r)),
        }
    }

    /// Aligns the thin-air tracker with the current rf configuration,
    /// skipping doomed subtrees: reads are layered from the most
    /// significant odometer digit down, so when the edge of digit `d`
    /// closes a cycle, every configuration sharing digits `d..` — a whole
    /// subtree of `rf_weights[d]` configurations × `co_total` coherence
    /// orders — is pruned in O(1) and the odometer jumps past it.
    ///
    /// Returns `true` when `pos` names a thin-air-clean configuration;
    /// `false` when the shard is exhausted (`done` is set).
    fn sync_thinair(&mut self, parts: &SkeletonParts) -> bool {
        if self.thinair.is_none() {
            return true;
        }
        let nreads = parts.reads.len();
        'retarget: loop {
            // Levels are stacked top digit first: level `l` holds the pick
            // of digit `nreads - 1 - l`. Keep the prefix that still
            // matches, then extend downwards.
            let tracker = self.thinair.as_ref().expect("checked above");
            let mut keep = 0;
            while keep < tracker.depth()
                && tracker.level_tag(keep) == self.rf_pick[nreads - 1 - keep]
            {
                keep += 1;
            }
            self.thinair.as_mut().expect("checked above").truncate(keep);
            for level in keep..nreads {
                let d = nreads - 1 - level;
                let edge = self.rfe_edge(parts, d);
                let pick = self.rf_pick[d];
                if self.thinair.as_mut().expect("checked above").try_push(pick, edge) {
                    continue;
                }
                // Cycle: skip to the next digit-d subtree boundary.
                let width = self.rf_weights[d];
                let next = ((self.pos / width) + 1).saturating_mul(width).min(self.end);
                self.pruned =
                    self.pruned.saturating_add((next - self.pos).saturating_mul(self.co_total));
                self.pos = next;
                if self.pos >= self.end {
                    self.done = true;
                    return false;
                }
                self.decode_pos();
                continue 'retarget;
            }
            return true;
        }
    }
}

/// A lazy, pruning iterator over the candidate executions of a skeleton.
///
/// Created by [`Skeleton::stream`] / [`Skeleton::stream_pruned`] /
/// [`Skeleton::stream_pruned_for`]. All yielded executions share one
/// [`ExecCore`] via `Arc`; [`pruned`] (and [`emitted`]) expose the
/// generation-time pruning statistics, with
/// `emitted + pruned == candidate_count()` once exhausted (summed over
/// all shards when sharded).
///
/// [`pruned`]: CandidateIter::pruned
/// [`emitted`]: CandidateIter::emitted
pub struct CandidateIter {
    core: Arc<ExecCore>,
    parts: SkeletonParts,
    graphs: Option<LocGraphs>,
    driver: RfDriver,

    /// Read-from source per global event id (entries only valid for reads).
    rf_src: Vec<usize>,
    cur_rf: Relation,
    co: CoState,
    fresh_rf: bool,

    emitted: u128,
}

impl CandidateIter {
    fn new(sk: &Skeleton, parts: SkeletonParts, core: Arc<ExecCore>, opts: StreamOpts) -> Self {
        let n = sk.events.len();
        let graphs = if opts.uniproc {
            let shape: Vec<EventShape> = parts
                .base_events
                .iter()
                .map(|e| EventShape { dir: e.dir, loc: e.loc, init: e.thread.is_none() })
                .collect();
            Some(LocGraphs::new(&shape, &sk.po, opts.llh))
        } else {
            None
        };
        let driver = RfDriver::new(&parts, opts.thin_air.as_ref(), opts.shard.unwrap_or((0, 1)));
        CandidateIter {
            core,
            parts,
            graphs,
            driver,
            rf_src: vec![0usize; n],
            cur_rf: Relation::empty(n),
            co: CoState::Lazy(Vec::new()),
            fresh_rf: true,
            emitted: 0,
        }
    }

    /// Candidates yielded so far.
    pub fn emitted(&self) -> u128 {
        self.emitted
    }

    /// Candidates pruned (skipped before materialisation) so far. Always 0
    /// for [`Skeleton::stream`].
    pub fn pruned(&self) -> u128 {
        self.driver.pruned
    }

    /// Prepares rf relation, sources, and the coherence state for the
    /// current rf configuration. Returns `false` when the whole rf subtree
    /// is pruned (some location has no uniproc-consistent order), after
    /// accounting its `co_total` candidates as pruned.
    fn setup_rf_config(&mut self) -> bool {
        let n = self.parts.base_events.len();
        self.cur_rf = Relation::empty(n);
        for (k, &r) in self.parts.reads.iter().enumerate() {
            let w = self.parts.rf_choices[k][self.driver.rf_pick[k]];
            self.cur_rf.add(w, r);
            self.rf_src[r] = w;
        }
        match &self.graphs {
            None => {
                self.co = CoState::Lazy(
                    self.parts.loc_writes.iter().map(|ws| HeapPerm::new(ws.clone())).collect(),
                );
                true
            }
            Some(graphs) => {
                let menus = graphs.co_menus(&self.parts.locs, &self.parts.loc_writes, &self.rf_src);
                let rf_ok = graphs.rf_only_consistent(&self.parts.locs, &self.rf_src);
                let kept = menus.iter().map(|m| m.len() as u128).fold(1u128, u128::saturating_mul);
                if !rf_ok || kept == 0 {
                    self.driver.prune_rf_subtree();
                    return false;
                }
                self.driver.add_pruned(self.driver.co_total - kept);
                let radices: Vec<usize> = menus.iter().map(Vec::len).collect();
                self.co = CoState::Menu { pick: vec![0; menus.len()], menus, radices };
                true
            }
        }
    }

    /// Materialises the current candidate.
    fn emit(&self) -> Execution {
        let n = self.parts.base_events.len();
        let mut events = self.parts.base_events.clone();
        for (k, &r) in self.parts.reads.iter().enumerate() {
            let w = self.parts.rf_choices[k][self.driver.rf_pick[k]];
            events[r].val = events[w].val;
        }
        let mut co = Relation::empty(n);
        match &self.co {
            CoState::Lazy(heaps) => {
                for (li, &init) in self.parts.loc_init.iter().enumerate() {
                    build_co(&mut co, init, heaps[li].current());
                }
            }
            CoState::Menu { menus, pick, .. } => {
                for (li, &init) in self.parts.loc_init.iter().enumerate() {
                    build_co(&mut co, init, &menus[li][pick[li]]);
                }
            }
        }
        Execution::with_core(events, Arc::clone(&self.core), self.cur_rf.clone(), co)
            .expect("enumerated candidates are well-formed by construction")
    }

    /// Advances the coherence odometer; `false` on wrap-around.
    fn advance_co(&mut self) -> bool {
        match &mut self.co {
            CoState::Lazy(heaps) => {
                for h in heaps.iter_mut() {
                    if h.advance() {
                        return true;
                    }
                }
                false
            }
            CoState::Menu { pick, radices, .. } => bump(pick, radices),
        }
    }
}

impl Iterator for CandidateIter {
    type Item = Execution;

    fn next(&mut self) -> Option<Execution> {
        loop {
            if self.driver.done {
                return None;
            }
            if self.fresh_rf {
                self.fresh_rf = false;
                if !self.driver.sync_thinair(&self.parts) {
                    continue; // shard exhausted (done set)
                }
                if !self.setup_rf_config() {
                    self.driver.advance_one();
                    self.fresh_rf = true;
                    continue;
                }
            }
            let x = self.emit();
            self.emitted += 1;
            if !self.advance_co() {
                self.driver.advance_one();
                self.fresh_rf = true;
            }
            return Some(x);
        }
    }
}

/// In-place permutation generator (Heap's algorithm, iterative form).
///
/// Visits all `n!` orders of the initial slice without allocating per
/// permutation; [`advance`](HeapPerm::advance) restores the initial order
/// and returns `false` after the last one, so the generator cycles and can
/// serve as one digit of a mixed-radix odometer.
pub struct HeapPerm {
    arr: Vec<usize>,
    initial: Vec<usize>,
    c: Vec<usize>,
    i: usize,
}

impl HeapPerm {
    /// A generator starting at `items`' given order.
    pub fn new(items: Vec<usize>) -> Self {
        let c = vec![0; items.len()];
        HeapPerm { initial: items.clone(), arr: items, c, i: 0 }
    }

    /// The current permutation.
    pub fn current(&self) -> &[usize] {
        &self.arr
    }

    /// Steps to the next permutation in place; returns `false` (and resets
    /// to the initial order) once all `n!` have been visited.
    pub fn advance(&mut self) -> bool {
        while self.i < self.arr.len() {
            if self.c[self.i] < self.i {
                if self.i % 2 == 0 {
                    self.arr.swap(0, self.i);
                } else {
                    self.arr.swap(self.c[self.i], self.i);
                }
                self.c[self.i] += 1;
                self.i = 0;
                return true;
            }
            self.c[self.i] = 0;
            self.i += 1;
        }
        self.arr.copy_from_slice(&self.initial);
        self.c.iter_mut().for_each(|x| *x = 0);
        self.i = 0;
        false
    }
}

/// The contiguous range of shard `shard` of `nshards` over a space of
/// `total` linear indices — the one place the static shard arithmetic
/// lives, shared by [`RfDriver::new`] and the checked-stream shard entry
/// points so partitions can never drift apart.
///
/// # Panics
///
/// Panics when `shard >= nshards` or `nshards == 0`.
pub(crate) fn shard_range(total: u128, shard: usize, nshards: usize) -> (u128, u128) {
    assert!(nshards > 0 && shard < nshards, "shard index out of range");
    let chunk = total.div_ceil(nshards as u128);
    let start = chunk.saturating_mul(shard as u128).min(total);
    (start, start.saturating_add(chunk).min(total))
}

/// `k!` in `u128`, `None` on overflow (first at `k = 35`). The previous
/// `usize` version overflowed silently at `k ≥ 21`.
fn factorial_checked(k: usize) -> Option<u128> {
    let mut acc = 1u128;
    for i in 2..=k as u128 {
        acc = acc.checked_mul(i)?;
    }
    Some(acc)
}

/// `k!` in `u128`, saturating at `u128::MAX`.
fn factorial_saturating(k: usize) -> u128 {
    factorial_checked(k).unwrap_or(u128::MAX)
}

/// Advances a mixed-radix odometer; returns false on wrap-around to zero.
fn bump(digits: &mut [usize], radices: &[usize]) -> bool {
    for (d, &r) in digits.iter_mut().zip(radices) {
        if *d + 1 < r {
            *d += 1;
            return true;
        }
        *d = 0;
    }
    false
}

/// Convenience builder for skeletons mirroring [`crate::fixtures::ExecBuilder`]
/// but without data-flow choices.
#[derive(Clone, Debug, Default)]
pub struct SkeletonBuilder {
    events: Vec<SkeletonEvent>,
    locs: BTreeMap<String, Loc>,
    po_counters: BTreeMap<u16, usize>,
    addr: Vec<(usize, usize)>,
    data: Vec<(usize, usize)>,
    ctrl: Vec<(usize, usize)>,
    ctrl_cfence: Vec<(usize, usize)>,
    fences: Vec<(Fence, usize, usize)>,
}

impl SkeletonBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn loc(&mut self, name: &str) -> Loc {
        if let Some(&l) = self.locs.get(name) {
            return l;
        }
        let l = Loc(self.locs.len() as u32);
        self.locs.insert(name.to_owned(), l);
        self.events.push(SkeletonEvent {
            thread: None,
            po_index: 0,
            dir: Dir::W,
            loc: l,
            val: Val(0),
        });
        l
    }

    fn push(&mut self, tid: u16, dir: Dir, loc: &str, val: i64) -> usize {
        let l = self.loc(loc);
        let idx = {
            let c = self.po_counters.entry(tid).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        self.events.push(SkeletonEvent {
            thread: Some(ThreadId(tid)),
            po_index: idx,
            dir,
            loc: l,
            val: Val(val),
        });
        self.events.len() - 1
    }

    /// Appends a write of `val` to `loc` on thread `tid`.
    pub fn write(&mut self, tid: u16, loc: &str, val: i64) -> usize {
        self.push(tid, Dir::W, loc, val)
    }

    /// Appends a read from `loc` on thread `tid` (value chosen by
    /// enumeration).
    pub fn read(&mut self, tid: u16, loc: &str) -> usize {
        self.push(tid, Dir::R, loc, 0)
    }

    /// Records an address dependency.
    pub fn addr(&mut self, a: usize, b: usize) -> &mut Self {
        self.addr.push((a, b));
        self
    }

    /// Records a data dependency.
    pub fn data(&mut self, a: usize, b: usize) -> &mut Self {
        self.data.push((a, b));
        self
    }

    /// Records a control dependency.
    pub fn ctrl(&mut self, a: usize, b: usize) -> &mut Self {
        self.ctrl.push((a, b));
        self
    }

    /// Records a `ctrl+cfence` dependency (also a `ctrl` one).
    pub fn ctrl_cfence(&mut self, a: usize, b: usize) -> &mut Self {
        self.ctrl.push((a, b));
        self.ctrl_cfence.push((a, b));
        self
    }

    /// Records a fence between `a` and `b`.
    pub fn fence(&mut self, f: Fence, a: usize, b: usize) -> &mut Self {
        self.fences.push((f, a, b));
        self
    }

    /// Finalises the skeleton; `po` is derived from per-thread insertion
    /// order, and fence relations are saturated so that a fence between
    /// consecutive accesses also separates the enclosing pairs.
    pub fn build(&self) -> Skeleton {
        let n = self.events.len();
        // po from per-thread event lists: events were pushed in program
        // order, so each thread's list is already sorted by po_index.
        let mut by_thread: BTreeMap<ThreadId, Vec<usize>> = BTreeMap::new();
        for (id, e) in self.events.iter().enumerate() {
            if let Some(t) = e.thread {
                by_thread.entry(t).or_default().push(id);
            }
        }
        let mut po = Relation::empty(n);
        for ids in by_thread.values() {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    po.add(a, b);
                }
            }
        }
        let deps = Deps {
            addr: Relation::from_pairs(n, self.addr.iter().copied()),
            data: Relation::from_pairs(n, self.data.iter().copied()),
            ctrl: Relation::from_pairs(n, self.ctrl.iter().copied()),
            ctrl_cfence: Relation::from_pairs(n, self.ctrl_cfence.iter().copied()),
        };
        let mut fences: BTreeMap<Fence, Relation> = BTreeMap::new();
        for &(f, a, b) in &self.fences {
            let rel = fences.entry(f).or_insert_with(|| Relation::empty(n));
            // Saturate: every access po-before-or-equal `a` is separated by
            // the fence from every access po-after-or-equal `b`.
            let mut before = vec![a];
            before.extend((0..n).filter(|&e| po.contains(e, a)));
            let mut after = vec![b];
            after.extend((0..n).filter(|&e| po.contains(b, e)));
            for &x in &before {
                for &y in &after {
                    rel.add(x, y);
                }
            }
        }
        Skeleton { events: self.events.clone(), po, deps, fences }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Power, Sc};
    use crate::model::{check, sc_per_location};

    fn mp_skeleton(with_fence: bool, with_addr: bool) -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let a = b.write(0, "x", 1);
        let w = b.write(0, "y", 1);
        let c = b.read(1, "y");
        let d = b.read(1, "x");
        if with_fence {
            b.fence(Fence::Lwsync, a, w);
        }
        if with_addr {
            b.addr(c, d);
        }
        b.build()
    }

    #[test]
    fn mp_has_four_candidates() {
        // Each read has 2 possible sources; 1 non-init write per location.
        let sk = mp_skeleton(false, false);
        assert_eq!(sk.candidate_count(), Some(4));
        assert_eq!(sk.candidates().len(), 4);
        assert_eq!(sk.candidates_eager().len(), 4);
    }

    #[test]
    fn candidate_count_is_overflow_safe() {
        // 40 same-location writes per location: 40!² overflows u128 (and
        // the old usize arithmetic long before). No wraparound, no panic.
        let mut b = SkeletonBuilder::new();
        for i in 0..40 {
            b.write(0, "x", i);
            b.write(1, "y", i);
        }
        let sk = b.build();
        assert_eq!(sk.candidate_count(), None, "40!^2 exceeds u128");
        assert_eq!(sk.candidate_count_saturating(), u128::MAX);
        // A merely-large skeleton still counts exactly: 21 writes at one
        // location is 21! — past the old usize-factorial overflow.
        let mut b = SkeletonBuilder::new();
        for i in 0..21 {
            b.write(0, "x", i);
        }
        let sk = b.build();
        assert_eq!(sk.candidate_count(), Some(51_090_942_171_709_440_000));
    }

    #[test]
    fn sc_rules_out_exactly_the_mp_violation() {
        let sk = mp_skeleton(false, false);
        let allowed: Vec<bool> = sk.candidates().iter().map(|x| check(&Sc, x).allowed()).collect();
        assert_eq!(allowed.iter().filter(|&&a| a).count(), 3, "Fig 3: one of four is non-SC");
    }

    #[test]
    fn power_needs_fence_and_dep_to_match_sc_on_mp() {
        let plain = mp_skeleton(false, false);
        let fenced = mp_skeleton(true, true);
        let count_allowed = |sk: &Skeleton| {
            sk.candidates().iter().filter(|x| check(&Power::new(), x).allowed()).count()
        };
        assert_eq!(count_allowed(&plain), 4);
        assert_eq!(count_allowed(&fenced), 3);
    }

    #[test]
    fn co_enumeration_orders_same_location_writes() {
        let mut b = SkeletonBuilder::new();
        b.write(0, "x", 1);
        b.write(1, "x", 2);
        let sk = b.build();
        // 2 writes, no reads: 2 candidate coherence orders.
        assert_eq!(sk.candidates().len(), 2);
    }

    #[test]
    fn streaming_matches_eager() {
        let sk = mp_skeleton(true, true);
        let key = |x: &Execution| {
            format!(
                "{:?}|{:?}|{:?}",
                x.events().iter().map(|e| e.val).collect::<Vec<_>>(),
                x.rf(),
                x.co()
            )
        };
        let mut eager: Vec<String> = sk.candidates_eager().iter().map(key).collect();
        let mut lazy: Vec<String> = sk.stream().map(|x| key(&x)).collect();
        eager.sort();
        lazy.sort();
        assert_eq!(eager, lazy);
    }

    #[test]
    fn streamed_candidates_share_one_core() {
        let sk = mp_skeleton(false, false);
        let xs: Vec<Execution> = sk.stream().collect();
        assert!(xs.windows(2).all(|w| Arc::ptr_eq(w[0].core(), w[1].core())));
    }

    #[test]
    fn pruning_keeps_exactly_the_uniproc_candidates() {
        // coWW-style skeleton: same-thread same-location writes make half
        // the coherence orders uniproc-inconsistent.
        let mut b = SkeletonBuilder::new();
        b.write(0, "x", 1);
        b.write(0, "x", 2);
        b.write(1, "x", 3);
        let r = b.read(1, "x");
        let _ = r;
        let sk = b.build();
        let total = sk.candidate_count().unwrap();
        let all: Vec<Execution> = sk.stream().collect();
        let ok_eager = all.iter().filter(|x| sc_per_location(x)).count();

        let mut it = sk.stream_pruned();
        let kept: Vec<Execution> = it.by_ref().collect();
        assert!(kept.iter().all(|x| sc_per_location(x)));
        assert_eq!(kept.len(), ok_eager, "pruning keeps exactly the uniproc-consistent ones");
        assert_eq!(it.emitted() + it.pruned(), total, "pruned + emitted == candidate_count");
        assert!(it.pruned() > 0, "this skeleton must actually prune");
    }

    /// A genuine lb+datas ring: each thread reads one location and writes
    /// the next with a data dependency, so the all-non-init rf choice
    /// forms an `hb` cycle (paper Fig 7) prunable before any co work.
    fn lb_ring(threads: usize) -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let names: Vec<String> = (0..threads).map(|i| format!("x{i}")).collect();
        let mut reads = Vec::new();
        for t in 0..threads {
            reads.push(b.read(t as u16, &names[t]));
        }
        for t in 0..threads {
            let w = b.write(t as u16, &names[(t + 1) % threads], 1);
            b.data(reads[t], w);
        }
        b.build()
    }

    #[test]
    fn thin_air_pruning_skips_the_self_justifying_subtree() {
        let sk = lb_ring(2);
        let power = Power::new();
        let total = sk.candidate_count().unwrap();

        let all: Vec<Execution> = sk.stream().collect();
        let allowed_eager = all.iter().filter(|x| check(&power, x).allowed()).count();

        let mut it = sk.stream_pruned_for(&power);
        let kept: Vec<Execution> = it.by_ref().collect();
        assert_eq!(it.emitted() + it.pruned(), total, "thin-air accounting is exact");
        assert!(it.pruned() > 0, "the cyclic rf choice must be pruned at generation");
        assert!(
            kept.iter().all(|x| check(&power, x).no_thin_air),
            "nothing thin-air-forbidden survives"
        );
        let allowed_pruned = kept.iter().filter(|x| check(&power, x).allowed()).count();
        assert_eq!(allowed_pruned, allowed_eager, "pruning is invisible to the model");
    }

    #[test]
    fn architectures_without_a_base_never_thin_air_prune() {
        /// Power's axioms but no static-base vouching (the default hook).
        struct NoHook(Power);
        impl crate::model::Architecture for NoHook {
            fn name(&self) -> &str {
                "no-hook"
            }
            fn ppo(&self, x: &Execution) -> Relation {
                self.0.ppo(x)
            }
            fn fences(&self, x: &Execution) -> Relation {
                self.0.fences(x)
            }
            fn prop(&self, x: &Execution) -> Relation {
                self.0.prop(x)
            }
        }
        let sk = lb_ring(2);
        let hookless: usize = sk.stream_pruned_for(&NoHook(Power::new())).count();
        let uniproc: usize = sk.stream_pruned().count();
        assert_eq!(hookless, uniproc, "no base ⇒ uniproc-only pruning");
        assert!(sk.stream_pruned_for(&Power::new()).count() < uniproc, "the hook does prune");
    }

    /// Contiguous rf-prefix shards must cover the stream exactly, with
    /// merged counters matching the candidate count.
    #[test]
    fn shards_partition_the_stream_exactly() {
        let key = |x: &Execution| format!("{:?}|{:?}", x.rf(), x.co());
        for sk in [mp_skeleton(true, true), lb_ring(3)] {
            let power = Power::new();
            let mut whole: Vec<String> = sk.stream_pruned_for(&power).map(|x| key(&x)).collect();
            whole.sort();
            for nshards in [1usize, 2, 3, 7] {
                let mut merged = Vec::new();
                let (mut emitted, mut pruned) = (0u128, 0u128);
                for s in 0..nshards {
                    let mut it = sk.stream_pruned_for_shard(&power, s, nshards);
                    merged.extend(it.by_ref().map(|x| key(&x)));
                    emitted += it.emitted();
                    pruned += it.pruned();
                }
                merged.sort();
                assert_eq!(merged, whole, "{nshards} shards cover exactly the stream");
                assert_eq!(
                    emitted + pruned,
                    sk.candidate_count().unwrap(),
                    "merged shard counters are exact"
                );
            }
        }
    }

    /// The arena-backed checked stream must agree with the PR 3 engine
    /// (owned `Execution`s + `check`) on counts *and* per-candidate
    /// witnesses, with identical pruning accounting.
    #[test]
    fn arena_checked_stream_matches_owned_engine() {
        use crate::arena::RelArena;
        let power = Power::new();
        for sk in [mp_skeleton(true, true), lb_ring(2), lb_ring(3)] {
            let mut it = sk.stream_pruned_for(&power);
            let mut owned_keys: Vec<String> = Vec::new();
            let mut owned_allowed = 0u128;
            for x in it.by_ref() {
                if check(&power, &x).allowed() {
                    owned_allowed += 1;
                }
                owned_keys.push(format!("{:?}|{:?}", x.rf(), x.co()));
            }
            let (owned_emitted, owned_pruned) = (it.emitted(), it.pruned());

            let mut arena = RelArena::new(0);
            let mut keys = Vec::new();
            let stats = sk.check_stream_arena(&power, &mut arena, &mut |fx, a, v| {
                assert_eq!(
                    v,
                    check(&power, &fx.to_execution(a)),
                    "frame verdict disagrees with the owned check"
                );
                keys.push(format!(
                    "{:?}|{:?}",
                    a.to_relation(fx.rels.rf),
                    a.to_relation(fx.rels.co)
                ));
            });
            owned_keys.sort();
            keys.sort();
            assert_eq!(keys, owned_keys, "same candidates in the same witness space");
            assert_eq!(stats.emitted, owned_emitted);
            assert_eq!(stats.pruned, owned_pruned);
            assert_eq!(stats.allowed, owned_allowed);
            assert_eq!(
                stats.emitted + stats.pruned,
                sk.candidate_count().unwrap(),
                "arena accounting is exact"
            );
        }
    }

    /// Arena-engine shards partition the stream exactly, like the owned
    /// iterator's shards.
    #[test]
    fn arena_shards_partition_exactly() {
        use crate::arena::RelArena;
        let power = Power::new();
        let sk = lb_ring(3);
        let mut arena = RelArena::new(0);
        let whole = sk.check_stream_arena(&power, &mut arena, &mut |_, _, _| {});
        for nshards in [2usize, 3, 5] {
            let mut merged = CheckedStats::default();
            for s in 0..nshards {
                let part =
                    sk.check_stream_arena_shard(&power, &mut arena, s, nshards, &mut |_, _, _| {});
                merged.emitted += part.emitted;
                merged.pruned += part.pruned;
                merged.allowed += part.allowed;
            }
            assert_eq!(merged, whole, "{nshards} shards merge exactly");
        }
    }

    /// After warm-up, the arena pool must stop growing: the whole point
    /// of the engine is a flat steady-state footprint.
    #[test]
    fn arena_high_water_stabilises_after_first_candidates() {
        use crate::arena::RelArena;
        let power = Power::new();
        let sk = mp_skeleton(true, true);
        let mut arena = RelArena::new(0);
        let mut waters: Vec<usize> = Vec::new();
        sk.check_stream_arena(&power, &mut arena, &mut |_, a, _| {
            waters.push(a.high_water_words());
        });
        assert!(waters.len() > 2);
        let settled = waters[0];
        assert!(
            waters.iter().skip(1).all(|&w| w == settled),
            "pool grew after the first candidate: {waters:?}"
        );
    }

    #[test]
    fn heap_perm_visits_all_orders_and_cycles() {
        let mut h = HeapPerm::new(vec![1, 2, 3]);
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(h.current().to_vec());
        while h.advance() {
            assert!(seen.insert(h.current().to_vec()), "no repeats");
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(h.current(), &[1, 2, 3], "wrap restores the initial order");
        assert!(h.advance(), "generator cycles");
    }

    #[test]
    fn fence_saturation_covers_transitive_pairs() {
        let mut b = SkeletonBuilder::new();
        let a = b.write(0, "x", 1);
        let w = b.write(0, "y", 1);
        let c = b.write(0, "z", 1);
        b.fence(Fence::Sync, a, w);
        let sk = b.build();
        let sync = &sk.fences[&Fence::Sync];
        assert!(sync.contains(a, w));
        assert!(sync.contains(a, c), "fence also separates a from z-write");
        assert!(!sync.contains(w, c), "no fence between y and z writes");
    }
}
