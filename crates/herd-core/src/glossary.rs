//! Glossary of relations and litmus names (the paper's Tabs II and III),
//! as living documentation with pointers into this crate **and into the
//! paper**: every relation row names the section or figure of *Herding
//! Cats* (Alglave, Maranget, Tautschnig, PLDI 2014) that defines it.
//!
//! # Relations (Tab II)
//!
//! | notation | name | nature | dirns | paper | where | description |
//! |---|---|---|---|---|---|---|
//! | `po` | program order | execution | any,any | §4.2, Fig 4 | [`crate::exec::Execution::po`] | instruction order lifted to events |
//! | `rf` | read-from | execution | WR | §4.2, Fig 4 | [`crate::exec::Execution::rf`] | links a write to a read taking its value |
//! | `co` | coherence | execution | WW | §4.2, Fig 4 | [`crate::exec::Execution::co`] | total order over writes to one location |
//! | `ppo` | preserved program order | architecture | any,any | §4.1; Fig 25 (Power/ARM) | [`crate::model::Architecture::ppo`] | program order the architecture maintains |
//! | `ffence` | full fence | architecture | any,any | §4.4, Fig 17 | [`crate::arch::Power::ffence`] | e.g. `sync`, `dmb`, `dsb`, `mfence` |
//! | `lwfence` | lightweight fence | architecture | any,any | §4.4, Fig 17 | [`crate::arch::Power::lwfence`] | e.g. `lwsync` (write-read pairs excluded) |
//! | `cfence` | control fence | architecture | any,any | §4.3, Fig 22 | [`crate::exec::Deps::ctrl_cfence`] | `isync`/`isb`; enters `ppo` via `ctrl+cfence` |
//! | `fences` | fences | architecture | any,any | §4.1, §4.4 | [`crate::model::Architecture::fences`] | the fence relations the architecture keeps |
//! | `prop` | propagation | architecture | WW* | §4.4, Fig 18 (Power); Fig 21 (SC/TSO) | [`crate::model::Architecture::prop`] | order in which writes propagate (the strong part may touch reads) |
//! | `po-loc` | po per location | derived | any,any | §4.2, Fig 5 (SC PER LOCATION) | [`crate::exec::Execution::po_loc`] | `po ∩ same-location` |
//! | `com` | communications | derived | any,any | §4.2 | [`crate::exec::Execution::com`] | `co ∪ rf ∪ fr` |
//! | `fr` | from-read | derived | RW | §4.2, Fig 4 | [`crate::exec::Execution::fr`] | read overtaken by a co-later write: `rf⁻¹; co` |
//! | `rfe`, `rfi` | external/internal read-from | derived | WR | §4.2 | [`crate::exec::Execution::rfe`] | `rf` split by crossing threads (`e`) or not (`i`) |
//! | `coe`, `coi` | external/internal coherence | derived | WW | §4.2 | [`crate::exec::Execution::coe`] | `co` split likewise |
//! | `fre`, `fri` | external/internal from-read | derived | RW | §4.2 | [`crate::exec::Execution::fre`] | `fr` split likewise |
//! | `hb` | happens-before | derived | any,any | §4.3, Fig 5 (NO THIN AIR) | [`crate::model::ArchRelations::hb`] | `ppo ∪ fences ∪ rfe` |
//! | `rdw` | read different writes | derived | RR | §4.5, Fig 27 | [`crate::exec::Execution::rdw`] | `po-loc ∩ (fre; rfe)` |
//! | `detour` | detour | derived | WR | §4.5, Fig 28 | [`crate::exec::Execution::detour`] | `po-loc ∩ (coe; rfe)` |
//! | `A-cumul` | A-cumulativity | derived | any,any | §4.4, Fig 18 | [`crate::arch::prop_power_arm`] | `rfe; fences` — fences order writes read before them |
//! | `prop-base` | base propagation | derived | any,any | §4.4, Fig 18 | [`crate::arch::prop_power_arm`] | `(fences ∪ A-cumul); hb*` |
//! | `ii`,`ic`,`ci`,`cc` | subevent orders | derived | any,any | §4.5, Fig 25, Tab VI | [`crate::ppo::SubeventOrders`] | init/commit orderings whose fixpoint yields `ppo` |
//!
//! # The four axioms (Fig 5)
//!
//! | axiom | statement | paper | where |
//! |---|---|---|---|
//! | SC PER LOCATION | `acyclic(po-loc ∪ com)` | §4.2, Figs 5–6 | [`crate::model::Verdict::sc_per_location`] |
//! | NO THIN AIR | `acyclic(hb)` | §4.3, Figs 5, 7 | [`crate::model::Verdict::no_thin_air`] |
//! | OBSERVATION | `irreflexive(fre; prop; hb*)` | §4.4, Figs 5, 8 | [`crate::model::Verdict::observation`] |
//! | PROPAGATION | `acyclic(co ∪ prop)` | §4.4, Figs 5, 13 | [`crate::model::Verdict::propagation`] |
//!
//! # Generation-time pruning — herd's `-speedcheck` (Sec 8.3)
//!
//! Enumeration never materialises candidates it can already refute: two
//! axiom-shaped cuts run *inside* the rf×co odometer, and the odometer
//! itself shards across threads.
//!
//! | axis | cuts on | when it fires | where |
//! |---|---|---|---|
//! | uniproc pruning | SC PER LOCATION | per location, once its rf sources and coherence order are fixed; whole rf×co subtrees die pre-materialisation | [`crate::uniproc::LocGraphs`] |
//! | thin-air pruning | NO THIN AIR | per *read*, as the rf odometer picks sources: `hb = ppo ∪ fences ∪ rfe` never mentions `co`, so a static `ppo ∪ fences` base ([`crate::model::Architecture::thin_air_base`]) plus the partial rfe edges refutes entire rf subtrees before any coherence permutation | [`crate::thinair::ThinAirTracker`] |
//! | rf-odometer sharding | — | the rf configuration index range splits into contiguous shards, one iterator per thread, per-shard `emitted`/`pruned` merging exactly to `candidate_count()` | [`crate::enumerate::StreamOpts::shard`] |
//!
//! Both pruning axes are *sound per architecture*: the llh hook
//! ([`crate::model::Architecture::tolerates_load_load_hazards`]) weakens
//! the uniproc graphs, and thin-air pruning only fires when the
//! architecture vouches for an underapproximating static base (`None`
//! disables it — e.g. for models without the NO THIN AIR axiom). The
//! base is uniformly `static ppo ∪ thin_air_fences`; keeping the static
//! *fence suffix* in it means the A-cumulativity pairs `rfe; fences`
//! (Fig 18) fall out of the tracker's closure compositionally — the
//! `rfe` prefix is the pushed edge, the suffix is already closed. Entry
//! points: [`crate::enumerate::Skeleton::stream_pruned_for`] and the
//! litmus driver's `stream_arch`/`stream_shard`/`simulate_sharded`.
//!
//! # Arena scopes — incremental candidates without allocation (Sec 8.3)
//!
//! Sec 8.3's incremental-candidate discussion observes that herd never
//! recomputes what a candidate shares with its odometer neighbour: when
//! only one coherence digit moved, everything derived from `rf` alone is
//! still valid. The arena engine ([`crate::arena::RelArena`],
//! [`crate::enumerate::Skeleton::check_stream_arena`]) turns that
//! observation into a storage discipline — each odometer layer owns an
//! arena scope, entered by overwriting a fixed set of slots and left by
//! an O(1) checkpoint rollback:
//!
//! | scope | lifetime | holds | where |
//! |---|---|---|---|
//! | enumeration | whole stream | the 13 witness/derived slots, menus, thin-air levels | [`crate::exec::ExecRels::alloc`], [`crate::uniproc::CoMenus`], [`crate::thinair::ThinAirTracker`] |
//! | rf digit | one rf configuration | `rf`, `rf⁻¹`, `rfe`, `rfi` refreshed once, shared by every coherence choice below | [`crate::exec::ExecRels::derive_rf`] |
//! | co digit | one coherence choice | `co`, `fr` (`rf⁻¹; co` reuses the scope above), `com`, `rdw`, `detour` | [`crate::exec::ExecRels::derive_co`] |
//! | candidate check | one verdict | `ppo`/`fences`/`prop`, `hb`, closures, axiom compositions — released by one [`crate::arena::Mark`] | [`crate::model::ArenaChecker::check`] |
//!
//! The steady state allocates nothing per candidate (the `herd-bench`
//! `alloc-count` smoke test asserts the zero), which is what lets
//! sharding and corpus batching scale without allocator contention.
//!
//! # Mask widths — the bit-row layer under the incremental walk (Sec 8.3)
//!
//! Every structure in the scope table above bottoms out in the same
//! primitive: a row of `u64` words, one bit per event, combined with
//! unrolled 4-word-block kernels ([`crate::maskrow`]). Sec 8.3's
//! incremental-candidate walk stays allocation-free at litmus scale
//! because each layer picks its row width once — per skeleton, per
//! location, or per relation universe — and every per-candidate step is
//! then pure word arithmetic on preallocated rows. Since PR 8 the widths
//! are generic: 64 events is a *fast path*, not a ceiling.
//!
//! | rows over | width / storage | used by | where |
//! |---|---|---|---|
//! | a relation universe | `words_for(n)` words per row in pooled arena slots | every derived relation and axiom temporary of the walk | [`crate::arena::RelArena`] |
//! | one location's members | ≤64 members: one stack word; wider: pooled multi-word rows | uniproc pruning's per-location acyclicity | [`crate::uniproc::LocGraph`], [`crate::uniproc::LocScratch`] |
//! | the event universe's reachability | `words_for(n)` words per event row, one pooled level per rf pick | thin-air pruning's tracked closure | [`crate::thinair::ThinAirTracker`] |
//! | a Kahn elimination | ≤64 nodes: stack masks ([`crate::maskrow::acyclic_masks`]); wider: grow-only scratch | acyclicity everywhere (arena, uniproc, scheduler replays) | [`crate::maskrow::KahnScratch`] |
//! | a single named mask | ≤256 bits inline, spilling to the heap past that | init/read masks, odometer bookkeeping | [`crate::maskrow::MaskRow`] |
//!
//! The dispatch discipline: the 1-word paths are bit-identical to the
//! pre-PR 8 code (same instructions, zero steady-state allocations —
//! the `alloc-count` smoke test still pins the zero), and wider rows
//! reuse pooled buffers so the walk's zero-allocation steady state
//! survives past 64 events. The `lb+68ev`/`lb+132ev` bench families
//! gate both pruning axes at 2- and 3-word widths.
//!
//! # Work units — scheduling the incremental-candidate walk (Sec 8.3)
//!
//! Sec 8.3's incremental-candidate walk is also what makes parallelism
//! awkward: the cheap step is always "advance one digit from where you
//! are", so carving the space up means choosing *which digits* a worker
//! owns. The hierarchical scheduler ([`crate::sched`]) aligns its
//! [`crate::sched::WorkUnit`] granularity with the odometer layers of
//! the scope table above:
//!
//! | unit | odometer level | seek cost | when the planner emits it |
//! |---|---|---|---|
//! | rf range | a contiguous slice of rf-configuration indices | O(digits) decode (the crate-internal `RfDriver` seek) | rf space alone ≥ workers × units/worker |
//! | co sub-range | a slice of *one* configuration's surviving coherence-menu odometer | the rf-scope replay: refill `rf`/`rf⁻¹`/`rfe`/`rfi` and the menus once, then decode the menu odometer | a configuration's menu dwarfs the rf space (co-heavy tests — `wrc+Nw`) |
//!
//! A co unit is exactly one "rf digit" scope entered once plus a
//! sub-range of its "co digit" scopes — the per-digit checkpoint
//! structure is what makes mid-odometer entry cheap. Accounting stays
//! exact over any plan: the unit whose co sub-range starts at menu index
//! 0 claims the configuration's generation-time prunes, so per-unit
//! `emitted + pruned` sums to `candidate_count()` (pinned by the
//! `sched_props` proptests). Units are drained largest-first through one
//! atomic cursor ([`crate::sched::execute_units`]) by workers owning
//! their arena and sinks — the executor behind
//! [`crate::sched::WorkPlan`]-driven checking
//! ([`crate::enumerate::Skeleton::check_stream_sched`]), the litmus
//! `simulate_sharded`/`simulate_corpus`, and the `herd-hw` campaigns.
//!
//! # The tractability frontier — single-execution consistency
//!
//! The enumeration engine answers "is this *outcome* allowed?" by
//! visiting every surviving `(rf, co)` witness. "How Hard is Weak-Memory
//! Testing?" (PAPERS.md) shows the single-execution question — rf fixed,
//! does *some* consistent coherence order exist? — is polynomial for
//! SC/TSO-class models and NP-hard past a frontier. The backend
//! ([`crate::consistency`]) implements both sides, and
//! [`crate::model::Architecture::tractability`] declares which side a
//! model sits on:
//!
//! | term | meaning | where |
//! |---|---|---|
//! | co-placement | the queried outcome fixes rf and the per-location *last* writes; deciding it means placing one coherence order around those constraints, never enumerating `Π |writes(l)|!` of them | [`crate::consistency::CoQuery`], [`crate::consistency::co_exists`] |
//! | forced order | the partial co every witness must extend: init writes first, the architecture's static po-loc on same-location write pairs (orienting co against one closes a 2-cycle in `po-loc ∪ com`), all other writes before the queried last write — transitively closed | the `forced` slot in [`crate::consistency::co_exists`] |
//! | saturation | the polynomial fixpoint: each unordered same-location write pair is hypothesised both ways against the axioms — both orientations definitively violating ⇒ forbidden, one ⇒ force the other, neither ⇒ leave free — then the forced order is completed greedily into a witness | the hypothesis loop in [`crate::consistency::co_exists`] |
//! | monotonicity | why a *partial*-co violation is definitive on the polynomial side: on SC/TSO/PSO/RMO every axiom input grows monotonically with co (`fr = rf⁻¹; co`, `prop` built from `com`), so adding edges never un-violates an axiom | [`crate::model::Tractability::Polynomial`] |
//! | tractability frontier | where monotone saturation stops being sound as-is: dynamic ppo (Power/ARM's `rdw`/`detour` react to the coherence choice) and release/acquire-style models; models with no better strategy skip saturation and take the counted fallback | [`crate::model::Tractability::Frontier`] |
//! | conditional saturation | the frontier-crossing middle ground: a *ppo envelope* — a static lower bound (rdw/rfi/detour emptied) and upper bound (the same fixpoint with them saturated to same-location/same-thread supersets) sandwiching every candidate's exact ppo — restores monotonicity per bound; a lower-bound contradiction is definitively forbidden (axioms are monotone in ppo edges too), a completed order re-checked clean under the *exact* per-candidate ppo is definitively allowed, and only genuine envelope disagreement falls back | [`crate::model::Tractability::Conditional`], [`crate::ppo::PpoEnvelope`], [`crate::consistency::ConsistencyStats::conditional_definitive`] |
//! | counted fallback | exact enumeration of the forced order's per-location linear extensions when saturation is incomplete or unsound — always visible in the stats, never silent | [`crate::consistency::ConsistencyStats::fallbacks`], [`crate::consistency::ConsistencyStats::envelope_fallbacks`] |
//!
//! The litmus layer (`herd_litmus::decide`) adds register screening (a
//! queried read value filters that read's rf menu before any coherence
//! work) and routes `simulate_decided`, `herd-machine` reachability and
//! `herd-hw` log judging through the backend; the whole stack is
//! differentially pinned against the enumeration engine by
//! `tests/consistency_differential.rs`.
//!
//! # Graceful degradation — bounded experiments (Sec 8.3)
//!
//! The paper's experimental campaigns are *bounded*: hardware runs
//! against sometimes-flaky machines under wall-clock and iteration
//! limits, and the reported tables still account for every experiment,
//! finished or not. The robustness layer gives the simulator the same
//! vocabulary — a run that hits a limit or loses a worker degrades to a
//! *partial* result whose accounting is exact, never to a crash or a
//! silent undercount:
//!
//! | term | meaning | where |
//! |---|---|---|
//! | budget | the load-shedding knobs of a bounded experiment — an optional deadline, emitted-candidate cap, and cooperative cancel token — checked per candidate (compare + relaxed load) and on unit/rf boundaries (the clock read) | [`crate::sched::Budget`], [`crate::sched::CancelToken`] |
//! | stop reason | *why* a run degraded: deadline, cancellation, or candidate budget | [`crate::sched::StopReason`], [`crate::enumerate::CheckedStats::stopped`] |
//! | partition identity | the invariant every partial result keeps: `emitted + pruned + remaining == candidate_count()`, with `remaining` recovered in O(digits) from the odometer position | [`crate::enumerate::CheckedStats::remaining`] |
//! | resume point | the cut position a stopped run names, so a later call finishes exactly the tail the budget cut off | [`crate::enumerate::ResumePoint`], [`crate::enumerate::Skeleton::check_stream_arena_resume`] |
//! | poisoned unit | a work unit whose worker panicked: the executor catches it, repairs the worker, keeps stealing — callers salvage every other unit and measure the lost sub-range as remaining | [`crate::sched::UnitResult`], [`crate::sched::SchedOutcome`] |
//! | fault point | a named seam of the engine (unit claim, arena checkpoint, co-menu build, candidate check) where the cfg-gated harness can deterministically inject a panic, delay, or spurious cancel, keyed by enumeration position so faults land on the same logical work whatever the worker count | [`crate::faultpoint`] |
//!
//! Downstream, the litmus driver folds all of this into `PartialSim`
//! (stop reason + lost units + remaining), `herd-machine` reports the
//! uncompared tail of a budget-tripped comparison, and the `herd-hw`
//! campaigns retry flaky machines under a bounded attempt budget,
//! degrading exhausted tests to named `lost` entries — the Sec 8.3
//! bounded-experiment methodology, end to end.
//!
//! # The query layer — memoising `mcompare` (Sec 11)
//!
//! Sec 11's data-mining workflow (`mcompare`) replays the same question
//! shape millions of times: "does model M allow final state s of test
//! T?" — once per logged hardware row, per model revision, per machine.
//! The query layer makes that workflow cheap by exploiting the two
//! redundancies the workflow itself creates — rows of one log repeat and
//! share screened rf classes (*batching*), and whole (test, model,
//! outcome) questions recur across runs (*memoisation*):
//!
//! | term | meaning | where |
//! |---|---|---|
//! | fingerprint | a deterministic 128-bit FNV-1a structural hash over a byte-tagged encoding; equal inputs hash equal across runs and platforms, so a fingerprint is a stable *content address* for a question | [`crate::fingerprint::Fingerprint`], [`crate::fingerprint::FpHasher`] |
//! | query fingerprint | the address of a question's invariant part — test source, model name, enumeration options — hashed once per log, not once per row | `herd_litmus::decide::query_fingerprint` |
//! | outcome fingerprint | the query fingerprint extended with one parsed outcome: the full content address of a single verdict | `herd_litmus::decide::outcome_fingerprint` |
//! | batch judging | `decide_log` parses every row up front, groups rows by their screened rf class, and answers each class with one backend walk — co placements launched once per class, not once per row | `herd_litmus::decide::decide_log`, `herd_hw::judge_entries` |
//! | batch stats | the accounting of a batch: rows in, distinct classes walked, co saturations launched, rows answered by another row's work (`reused`) | `herd_litmus::decide::BatchStats` |
//! | verdict cache | a sharded, bounded LRU keyed by outcome fingerprint; a warm `mcompare` pass over an unchanged log is pure lookups | the `herd-cache` crate, `herd_hw::judge_log_cached` |
//!
//! The same content-addressed store fronts the other expensive
//! recomputations of the workflow: model-log construction
//! (`herd_hw::model_log_cached`), reachability verification
//! (`herd_machine::verify_reachable_cached`), corpus simulation
//! (`herd_litmus::simulate_corpus_cached`), and cat-model compilation
//! (`herd_cat::compile_cached`). Every cached path is differentially
//! pinned against its fresh twin, and the `perf_pipeline` bench gates
//! the batch (≥10x over row-at-a-time) and warm-cache (≥100x over a
//! cold decide) speedups per PR.
//!
//! # Litmus names (Tab III)
//!
//! | classic | systematic | description |
//! |---|---|---|
//! | `coXY` | — | coherence test, accesses of kinds X and Y (Fig 6) |
//! | `lb` | `rw+rw` | load buffering (Fig 7) |
//! | `mp` | `ww+rr` | message passing (Fig 8) |
//! | `wrc` | `w+rw+rr` | write-to-read causality (Fig 11) |
//! | `isa2` | `ww+rw+rr` | the Power ISA test (Fig 12) |
//! | `2+2w` | `ww+ww` | two threads, two writes each (Fig 13a) |
//! | — | `w+rw+2w` | (Fig 13b) |
//! | `sb` | `wr+wr` | store buffering (Fig 14) |
//! | `rwc` | `w+rr+wr` | read-to-write causality (Fig 15) |
//! | `r` | `ww+wr` | (Fig 16) |
//! | `s` | `ww+rw` | (Fig 39) |
//! | `w+rwc` | `ww+rr+wr` | rwc prefixed by a write (Fig 19) |
//! | `iriw` | `w+rr+w+rr` | independent reads of independent writes (Fig 20) |
//!
//! Builders for every row live in [`crate::fixtures`] (witness
//! executions) and `herd_litmus::corpus` (full litmus tests); systematic
//! naming is implemented by `herd_diy::classic_name`. The cat-language
//! renditions of the models using these relations are the `models/*.cat`
//! files at the workspace root (Fig 38).

// This module is documentation-only.
