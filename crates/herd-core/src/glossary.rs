//! Glossary of relations and litmus names (the paper's Tabs II and III),
//! as living documentation with pointers into this crate.
//!
//! # Relations (Tab II)
//!
//! | notation | name | nature | dirns | where | description |
//! |---|---|---|---|---|---|
//! | `po` | program order | execution | any,any | [`crate::exec::Execution::po`] | instruction order lifted to events |
//! | `rf` | read-from | execution | WR | [`crate::exec::Execution::rf`] | links a write to a read taking its value |
//! | `co` | coherence | execution | WW | [`crate::exec::Execution::co`] | total order over writes to one location |
//! | `ppo` | preserved program order | architecture | any,any | [`crate::model::Architecture::ppo`] | program order the architecture maintains |
//! | `ffence` | full fence | architecture | any,any | e.g. `sync`, `dmb`, `dsb`, `mfence` |
//! | `lwfence` | lightweight fence | architecture | any,any | e.g. `lwsync` (write-read pairs excluded) |
//! | `cfence` | control fence | architecture | any,any | `isync`/`isb`; enters `ppo` via `ctrl+cfence` |
//! | `fences` | fences | architecture | any,any | [`crate::model::Architecture::fences`] | the fence relations the architecture keeps |
//! | `prop` | propagation | architecture | WW* | [`crate::model::Architecture::prop`] | order in which writes propagate (the strong part may touch reads) |
//! | `po-loc` | po per location | derived | any,any | [`crate::exec::Execution::po_loc`] | `po ∩ same-location` |
//! | `com` | communications | derived | any,any | [`crate::exec::Execution::com`] | `co ∪ rf ∪ fr` |
//! | `fr` | from-read | derived | RW | [`crate::exec::Execution::fr`] | read overtaken by a co-later write |
//! | `hb` | happens-before | derived | any,any | [`crate::model::ArchRelations::hb`] | `ppo ∪ fences ∪ rfe` |
//! | `rdw` | read different writes | derived | RR | [`crate::exec::Execution::rdw`] | `po-loc ∩ (fre; rfe)` (Fig 27) |
//! | `detour` | detour | derived | WR | [`crate::exec::Execution::detour`] | `po-loc ∩ (coe; rfe)` (Fig 28) |
//!
//! # Litmus names (Tab III)
//!
//! | classic | systematic | description |
//! |---|---|---|
//! | `coXY` | — | coherence test, accesses of kinds X and Y (Fig 6) |
//! | `lb` | `rw+rw` | load buffering (Fig 7) |
//! | `mp` | `ww+rr` | message passing (Fig 8) |
//! | `wrc` | `w+rw+rr` | write-to-read causality (Fig 11) |
//! | `isa2` | `ww+rw+rr` | the Power ISA test (Fig 12) |
//! | `2+2w` | `ww+ww` | two threads, two writes each (Fig 13a) |
//! | — | `w+rw+2w` | (Fig 13b) |
//! | `sb` | `wr+wr` | store buffering (Fig 14) |
//! | `rwc` | `w+rr+wr` | read-to-write causality (Fig 15) |
//! | `r` | `ww+wr` | (Fig 16) |
//! | `s` | `ww+rw` | (Fig 39) |
//! | `w+rwc` | `ww+rr+wr` | rwc prefixed by a write (Fig 19) |
//! | `iriw` | `w+rr+w+rr` | independent reads of independent writes (Fig 20) |
//!
//! Builders for every row live in [`crate::fixtures`] (witness
//! executions) and `herd_litmus::corpus` (full litmus tests); systematic
//! naming is implemented by `herd_diy::classic_name`.

// This module is documentation-only.
