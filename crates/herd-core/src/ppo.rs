//! The preserved program order of Power and ARM (paper, Fig 25 and Tab VII).
//!
//! Each memory event has an *init* and a *commit* part (Tab IV). Four
//! mutually recursive relations track how parts order one another:
//! `ii` (init before init), `ic` (init before commit), `ci` (commit before
//! init) and `cc` (commit before commit), defined as the least fixpoint of
//! the equations of Fig 25. The preserved program order is then
//! `ppo = (ii ∩ RR) ∪ (ic ∩ RW)`.

use crate::arena::{RelArena, RelId};
use crate::event::Dir;
use crate::exec::{ExecCore, ExecFrame, Execution};
use crate::relation::Relation;

/// Knobs differentiating the Power ppo from the ARM variants and the
/// "more static" ablation discussed in Sec 8.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PpoConfig {
    /// Include `po-loc` in `cc0`. True for Power; false for the proposed
    /// ARM model, which must allow the early-commit behaviours of
    /// Fig 32/33 (Sec 8.1.2).
    pub po_loc_in_cc0: bool,
    /// Include `rdw` (Fig 27) in `ii0`. The paper suggests a weaker,
    /// "more stand-alone" ppo without it (Sec 8.2).
    pub rdw_in_ii0: bool,
    /// Include `detour` (Fig 28) in `ci0`; same discussion as `rdw`.
    pub detour_in_ci0: bool,
    /// Include `ctrl+cfence` in `ci0`. Always true for real models; the
    /// simulated buggy silicon of `herd-hw` turns it off to reproduce the
    /// isb-defeating anomalies of Fig 35.
    pub ctrl_cfence_in_ci0: bool,
}

impl PpoConfig {
    /// The Power configuration of Fig 25.
    pub fn power() -> Self {
        PpoConfig {
            po_loc_in_cc0: true,
            rdw_in_ii0: true,
            detour_in_ci0: true,
            ctrl_cfence_in_ci0: true,
        }
    }

    /// The proposed ARM configuration (Tab VII): `cc0` loses `po-loc`.
    pub fn arm() -> Self {
        PpoConfig { po_loc_in_cc0: false, ..PpoConfig::power() }
    }

    /// The "static" ablation of Sec 8.2: drop the dynamic `rdw`/`detour`
    /// contributions (they depend on `rf`/`co`, not just the program).
    pub fn without_dynamic(self) -> Self {
        PpoConfig { rdw_in_ii0: false, detour_in_ci0: false, ..self }
    }
}

/// The four subevent relations at the fixpoint, plus the resulting `ppo`.
#[derive(Clone, Debug)]
pub struct SubeventOrders {
    /// init-to-init ordering.
    pub ii: Relation,
    /// init-to-commit ordering.
    pub ic: Relation,
    /// commit-to-init ordering.
    pub ci: Relation,
    /// commit-to-commit ordering.
    pub cc: Relation,
    /// `ppo = (ii ∩ RR) ∪ (ic ∩ RW)`.
    pub ppo: Relation,
}

/// Computes the Power/ARM preserved program order (Fig 25) by iterating
/// the recursive equations to their least fixpoint.
pub fn compute(x: &Execution, cfg: &PpoConfig) -> SubeventOrders {
    let n = x.len();
    let dp = x.deps().addr.union(&x.deps().data);

    let mut ii0 = dp.clone();
    if cfg.rdw_in_ii0 {
        ii0.union_with(x.rdw());
    }
    ii0.union_with(x.rfi());

    let ic0 = Relation::empty(n);

    let mut ci0 =
        if cfg.ctrl_cfence_in_ci0 { x.deps().ctrl_cfence.clone() } else { Relation::empty(n) };
    if cfg.detour_in_ci0 {
        ci0.union_with(x.detour());
    }

    let mut cc0 = dp.clone();
    if cfg.po_loc_in_cc0 {
        cc0.union_with(x.po_loc());
    }
    cc0.union_with(&x.deps().ctrl);
    cc0.union_with(&x.deps().addr.seq(x.po()));

    let (ii, ic, ci, cc) = fixpoint(&ii0, &ic0, &ci0, &cc0);

    let ppo = x.dir_restrict(&ii, Some(Dir::R), Some(Dir::R)).union(&x.dir_restrict(
        &ic,
        Some(Dir::R),
        Some(Dir::W),
    ));

    SubeventOrders { ii, ic, cc, ci, ppo }
}

/// Iterates the Fig 25 equations to their least fixpoint from the given
/// base cases; returns `(ii, ic, ci, cc)`.
fn fixpoint(
    ii0: &Relation,
    ic0: &Relation,
    ci0: &Relation,
    cc0: &Relation,
) -> (Relation, Relation, Relation, Relation) {
    let mut ii = ii0.clone();
    let mut ic = ic0.clone();
    let mut ci = ci0.clone();
    let mut cc = cc0.clone();

    loop {
        // Fig 25: ii = ii0 ∪ ci ∪ (ic; ci) ∪ (ii; ii), and so on. The
        // right-hand sides are monotone in (ii, ic, ci, cc), so iterating
        // from the base cases reaches the least fixpoint.
        let ii_next = ii0.union(&ci).union(&ic.seq(&ci)).union(&ii.seq(&ii));
        let ic_next = ic0.union(&ii).union(&cc).union(&ic.seq(&cc)).union(&ii.seq(&ic));
        let ci_next = ci0.union(&ci.seq(&ii)).union(&cc.seq(&ci));
        let cc_next = cc0.union(&ci).union(&ci.seq(&ic)).union(&cc.seq(&cc));

        let stable = ii_next == ii && ic_next == ic && ci_next == ci && cc_next == cc;
        ii = ii_next;
        ic = ic_next;
        ci = ci_next;
        cc = cc_next;
        if stable {
            break;
        }
    }
    (ii, ic, ci, cc)
}

/// Arena twin of [`compute`]: evaluates the Fig 25 fixpoint for one
/// arena-backed candidate and returns the `ppo` slot, with every
/// intermediate (`ii`/`ic`/`ci`/`cc` and their per-iteration nexts) bump
/// -allocated under the caller's mark — zero heap allocations.
pub fn compute_arena(fx: &ExecFrame<'_>, cfg: &PpoConfig, arena: &mut RelArena) -> RelId {
    let core = fx.core.as_ref();
    let deps = core.deps();

    let dp = arena.alloc_from(&deps.addr);
    arena.union_into(dp, &deps.data);

    let ii0 = arena.alloc_from(dp);
    if cfg.rdw_in_ii0 {
        arena.union_into(ii0, fx.rels.rdw);
    }
    arena.union_into(ii0, fx.rels.rfi);

    let ic0 = arena.alloc();

    let ci0 = arena.alloc();
    if cfg.ctrl_cfence_in_ci0 {
        arena.copy_into(ci0, &deps.ctrl_cfence);
    }
    if cfg.detour_in_ci0 {
        arena.union_into(ci0, fx.rels.detour);
    }

    let cc0 = arena.alloc_from(dp);
    if cfg.po_loc_in_cc0 {
        arena.union_into(cc0, core.po_loc());
    }
    arena.union_into(cc0, &deps.ctrl);
    let s = arena.alloc();
    arena.seq_into(s, &deps.addr, core.po());
    arena.union_into(cc0, s);

    // The fixpoint loop of `fixpoint`, with one reusable seq scratch and
    // a current/next slot pair per relation.
    let (ii, ic, ci, cc) = (
        arena.alloc_from(ii0),
        arena.alloc_from(ic0),
        arena.alloc_from(ci0),
        arena.alloc_from(cc0),
    );
    let (ii_n, ic_n, ci_n, cc_n) = (arena.alloc(), arena.alloc(), arena.alloc(), arena.alloc());
    loop {
        // ii' = ii0 ∪ ci ∪ (ic; ci) ∪ (ii; ii)
        arena.copy_into(ii_n, ii0);
        arena.union_into(ii_n, ci);
        arena.seq_into(s, ic, ci);
        arena.union_into(ii_n, s);
        arena.seq_into(s, ii, ii);
        arena.union_into(ii_n, s);
        // ic' = ic0 ∪ ii ∪ cc ∪ (ic; cc) ∪ (ii; ic)
        arena.copy_into(ic_n, ic0);
        arena.union_into(ic_n, ii);
        arena.union_into(ic_n, cc);
        arena.seq_into(s, ic, cc);
        arena.union_into(ic_n, s);
        arena.seq_into(s, ii, ic);
        arena.union_into(ic_n, s);
        // ci' = ci0 ∪ (ci; ii) ∪ (cc; ci)
        arena.copy_into(ci_n, ci0);
        arena.seq_into(s, ci, ii);
        arena.union_into(ci_n, s);
        arena.seq_into(s, cc, ci);
        arena.union_into(ci_n, s);
        // cc' = cc0 ∪ ci ∪ (ci; ic) ∪ (cc; cc)
        arena.copy_into(cc_n, cc0);
        arena.union_into(cc_n, ci);
        arena.seq_into(s, ci, ic);
        arena.union_into(cc_n, s);
        arena.seq_into(s, cc, cc);
        arena.union_into(cc_n, s);

        let stable =
            arena.eq(ii_n, ii) && arena.eq(ic_n, ic) && arena.eq(ci_n, ci) && arena.eq(cc_n, cc);
        arena.copy_into(ii, ii_n);
        arena.copy_into(ic, ic_n);
        arena.copy_into(ci, ci_n);
        arena.copy_into(cc, cc_n);
        if stable {
            break;
        }
    }

    // ppo = (ii ∩ RR) ∪ (ic ∩ RW).
    let ppo = arena.alloc();
    arena.restrict_into(ppo, ii, core.reads(), core.reads());
    arena.restrict_into(s, ic, core.reads(), core.writes());
    arena.union_into(ppo, s);
    ppo
}

/// The rf/co-independent part of the Fig 25 ppo: the same fixpoint with
/// the dynamic ingredients (`rdw`, `rfi`, `detour`) emptied, computed from
/// an [`ExecCore`] before any data-flow choice exists.
///
/// The fixpoint equations are monotone, so the result is contained in
/// `compute(x, cfg).ppo` for *every* candidate `x` built on `core` — the
/// underapproximation that makes generation-time NO THIN AIR pruning
/// sound ([`crate::model::Architecture::thin_air_base`]).
pub fn compute_static(core: &ExecCore, cfg: &PpoConfig) -> Relation {
    let n = core.universe();
    let dp = core.deps().addr.union(&core.deps().data);

    let ii0 = dp.clone();
    let ic0 = Relation::empty(n);
    let ci0 =
        if cfg.ctrl_cfence_in_ci0 { core.deps().ctrl_cfence.clone() } else { Relation::empty(n) };
    let mut cc0 = dp;
    if cfg.po_loc_in_cc0 {
        cc0.union_with(core.po_loc());
    }
    cc0.union_with(&core.deps().ctrl);
    cc0.union_with(&core.deps().addr.seq(core.po()));

    let (ii, ic, _, _) = fixpoint(&ii0, &ic0, &ci0, &cc0);
    ii.restrict(core.reads(), core.reads()).union(&ic.restrict(core.reads(), core.writes()))
}

/// The matching *over*approximation: the same fixpoint with the dynamic
/// ingredients saturated to static supersets that hold for every
/// candidate built on `core`:
///
/// * `rfi = rf ∩ internal` ⊆ `(same-loc ∩ internal) ∩ W×R` — rf edges are
///   same-location write→read by construction;
/// * `rdw = po-loc ∩ (fre; rfe)` ⊆ `po-loc ∩ R×R` — `fre` leaves a read
///   and `rfe` arrives at one (Fig 27);
/// * `detour = po-loc ∩ (coe; rfe)` ⊆ `po-loc ∩ W×R` (Fig 28).
///
/// Monotonicity of the Fig 25 equations lifts ingredient containment to
/// the result: `compute(x, cfg).ppo ⊆ compute_static_upper(core, cfg)`
/// for every candidate `x` on `core`. Together with [`compute_static`]
/// this sandwiches the exact ppo — the envelope behind
/// [`crate::model::Tractability::Conditional`].
pub fn compute_static_upper(core: &ExecCore, cfg: &PpoConfig) -> Relation {
    let n = core.universe();
    let dp = core.deps().addr.union(&core.deps().data);

    let mut ii0 = dp.clone();
    ii0.union_with(
        &core.same_loc().intersect(core.internal()).restrict(core.writes(), core.reads()),
    );
    if cfg.rdw_in_ii0 {
        ii0.union_with(&core.po_loc().restrict(core.reads(), core.reads()));
    }

    let ic0 = Relation::empty(n);

    let mut ci0 =
        if cfg.ctrl_cfence_in_ci0 { core.deps().ctrl_cfence.clone() } else { Relation::empty(n) };
    if cfg.detour_in_ci0 {
        ci0.union_with(&core.po_loc().restrict(core.writes(), core.reads()));
    }

    let mut cc0 = dp;
    if cfg.po_loc_in_cc0 {
        cc0.union_with(core.po_loc());
    }
    cc0.union_with(&core.deps().ctrl);
    cc0.union_with(&core.deps().addr.seq(core.po()));

    let (ii, ic, _, _) = fixpoint(&ii0, &ic0, &ci0, &cc0);
    ii.restrict(core.reads(), core.reads()).union(&ic.restrict(core.reads(), core.writes()))
}

/// A two-sided, candidate-independent bound on the Fig 25 ppo:
/// `lower ⊆ ppo(x) ⊆ upper` for every candidate `x` built on the core the
/// envelope was computed from. Computed once per program (per screened rf
/// class in `decide_log`) and reused across every coherence query on it.
///
/// The upper bound is materialised lazily: a query settled by the
/// pessimistic pass alone — every definitively *forbidden* outcome —
/// never pays the [`compute_static_upper`] fixpoint, which on small
/// programs is a sizable share of the whole envelope-path cost.
#[derive(Clone, Debug)]
pub struct PpoEnvelope {
    /// [`compute_static`]: the dynamic unknowns emptied.
    pub lower: Relation,
    /// [`compute_static_upper`], on first demand.
    upper: std::sync::OnceLock<Relation>,
    cfg: PpoConfig,
}

impl PpoEnvelope {
    /// Computes the lower bound from the rf/co-independent core; the
    /// upper bound waits for the first [`PpoEnvelope::upper`] call.
    pub fn compute(core: &ExecCore, cfg: &PpoConfig) -> Self {
        PpoEnvelope {
            lower: compute_static(core, cfg),
            upper: std::sync::OnceLock::new(),
            cfg: *cfg,
        }
    }

    /// The upper bound, computed on first use. `core` must be the core
    /// the envelope was built from.
    pub fn upper(&self, core: &ExecCore) -> &Relation {
        self.upper.get_or_init(|| compute_static_upper(core, &self.cfg))
    }

    /// True when the bounds coincide — the dynamic ingredients cannot
    /// affect ppo on this program, so the envelope is exact.
    pub fn tight(&self, core: &ExecCore) -> bool {
        self.lower == *self.upper(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, Device};

    use crate::fixtures::program_event;

    #[test]
    fn addr_dependency_orders_read_read() {
        let x = fixtures::mp(Device::None, Device::Addr);
        let orders = compute(&x, &PpoConfig::power());
        let (c, d) = (program_event(&x, 1, 0), program_event(&x, 1, 1));
        assert!(orders.ppo.contains(c, d), "T1's reads are addr-ordered");
        let (a, b) = (program_event(&x, 0, 0), program_event(&x, 0, 1));
        assert!(!orders.ppo.contains(a, b), "ppo sources are reads, not writes");
    }

    #[test]
    fn plain_po_is_not_preserved() {
        let x = fixtures::mp(Device::None, Device::None);
        let orders = compute(&x, &PpoConfig::power());
        assert!(orders.ppo.is_empty());
    }

    #[test]
    fn ctrl_orders_read_write_but_not_read_read() {
        // lb with ctrl: read -> write is preserved via cc0(ctrl) in ic.
        let x = fixtures::lb(Device::Ctrl, Device::Ctrl);
        let orders = compute(&x, &PpoConfig::power());
        let (r0, w0) = (program_event(&x, 0, 0), program_event(&x, 0, 1));
        assert!(orders.ppo.contains(r0, w0), "ctrl to a write is preserved");
        // mp with ctrl on the read side: read -> read is NOT preserved.
        let x = fixtures::mp(Device::None, Device::Ctrl);
        let orders = compute(&x, &PpoConfig::power());
        let (c, d) = (program_event(&x, 1, 0), program_event(&x, 1, 1));
        assert!(!orders.ppo.contains(c, d), "ctrl to a read needs a cfence");
    }

    #[test]
    fn ctrl_cfence_orders_read_read() {
        let x = fixtures::mp(Device::None, Device::CtrlCfence);
        let orders = compute(&x, &PpoConfig::power());
        let (c, d) = (program_event(&x, 1, 0), program_event(&x, 1, 1));
        assert!(orders.ppo.contains(c, d));
    }

    #[test]
    fn inclusions_of_fig_26() {
        for x in [
            fixtures::mp(Device::Fence(crate::event::Fence::Lwsync), Device::Addr),
            fixtures::lb(Device::Data, Device::Ctrl),
            fixtures::s(Device::None, Device::Addr),
        ] {
            let o = compute(&x, &PpoConfig::power());
            assert!(o.ci.is_subset(&o.ii), "ci ⊆ ii");
            assert!(o.ci.is_subset(&o.cc), "ci ⊆ cc");
            assert!(o.ii.is_subset(&o.ic), "ii ⊆ ic");
            assert!(o.cc.is_subset(&o.ic), "cc ⊆ ic");
        }
    }

    #[test]
    fn static_ppo_underapproximates_every_candidate() {
        for x in [
            fixtures::mp(Device::Fence(crate::event::Fence::Lwsync), Device::Addr),
            fixtures::lb(Device::Data, Device::Ctrl),
            fixtures::s(Device::None, Device::Addr),
            fixtures::co_rr(),
        ] {
            for cfg in [PpoConfig::power(), PpoConfig::arm()] {
                let full = compute(&x, &cfg).ppo;
                let fixed = compute_static(x.core(), &cfg);
                assert!(fixed.is_subset(&full), "static ppo must be ⊆ the candidate's ppo");
            }
        }
    }

    #[test]
    fn envelope_sandwiches_every_candidate() {
        for x in [
            fixtures::mp(Device::Fence(crate::event::Fence::Lwsync), Device::Addr),
            fixtures::lb(Device::Data, Device::Ctrl),
            fixtures::s(Device::None, Device::Addr),
            fixtures::co_rr(),
            fixtures::wrc(Device::Fence(crate::event::Fence::Lwsync), Device::Addr),
            fixtures::iriw(Device::Fence(crate::event::Fence::Sync), Device::Addr),
        ] {
            for cfg in [PpoConfig::power(), PpoConfig::arm()] {
                let exact = compute(&x, &cfg).ppo;
                let env = PpoEnvelope::compute(x.core(), &cfg);
                let upper = env.upper(x.core());
                assert!(env.lower.is_subset(&exact), "lower bound must be ⊆ exact ppo");
                assert!(exact.is_subset(upper), "exact ppo must be ⊆ upper bound");
                assert!(env.lower.is_subset(upper), "the envelope must be ordered");
            }
        }
    }

    #[test]
    fn arm_config_drops_po_loc_commit_ordering() {
        // In the early-commit fixture shape, po-loc pairs ordered commits
        // under Power but not under the proposed ARM model. Use a simple
        // same-location read pair: coRR-like but well-formed.
        let mut b = fixtures::ExecBuilder::new();
        let w = b.write(0, "y", 1);
        let r1 = b.read(1, "y", 1);
        let r2 = b.read(1, "y", 1);
        let w2 = b.write(1, "x", 1);
        b.rf(w, r1).rf(w, r2).ctrl(r2, w2);
        let x = b.build().unwrap();
        let power = compute(&x, &PpoConfig::power());
        let arm = compute(&x, &PpoConfig::arm());
        // Power: r1 -cc0(po-loc)-> r2 -ctrl-> w2 gives (r1, w2) ∈ ic ∩ RW.
        assert!(power.ppo.contains(r1, w2));
        assert!(!arm.ppo.contains(r1, w2), "ARM drops po-loc from cc0");
    }
}
