//! The generic axiomatic model: the four axioms of Fig 5, the
//! architecture abstraction, and verdict classification.
//!
//! An *architecture* is a triple of functions `(ppo, fences, prop)`
//! (paper, Sec 4.1 §Architectures). Given a candidate execution, the
//! generic model checks:
//!
//! 1. **SC PER LOCATION** — `acyclic(po-loc ∪ com)`
//! 2. **NO THIN AIR** — `acyclic(hb)`, `hb = ppo ∪ fences ∪ rfe`
//! 3. **OBSERVATION** — `irreflexive(fre; prop; hb*)`
//! 4. **PROPAGATION** — `acyclic(co ∪ prop)`
//!
//! Two hooks cover the paper's documented deviations: ARM-with-load-load
//! -hazards weakens `po-loc` in axiom 1 (Tab VII), and exact C++ R-A
//! weakens axiom 4 to `irreflexive(prop; co)` (Sec 4.8).

use crate::event::Dir;
use crate::exec::{ExecCore, Execution};
use crate::relation::Relation;
use std::fmt;

/// How the PROPAGATION axiom is enforced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PropagationCheck {
    /// The paper's default: `acyclic(co ∪ prop)`.
    #[default]
    Acyclic,
    /// The weakening matching C++ R-A's `HBVSMO`: `irreflexive(prop; co)`
    /// (paper, Sec 4.8).
    IrreflexivePropCo,
}

/// An instance of the generic framework.
///
/// Implementations provide the three architecture functions; the default
/// hook methods reproduce the paper's standard axioms.
pub trait Architecture {
    /// Human-readable architecture name (e.g. `"Power"`).
    fn name(&self) -> &str;

    /// The preserved program order for this execution.
    fn ppo(&self, x: &Execution) -> Relation;

    /// The ordering contributed by fences (direction-filtered; e.g. on
    /// Power `lwfence = lwsync \ WR`, Fig 17).
    fn fences(&self, x: &Execution) -> Relation;

    /// The propagation order (Fig 18 for Power/ARM, Fig 21 for SC/TSO).
    fn prop(&self, x: &Execution) -> Relation;

    /// Does this architecture tolerate load-load hazards, i.e. does its SC
    /// PER LOCATION axiom drop read-read `po-loc` pairs (Tab VII for
    /// ARM-llh, Sec 4.9 for Sparc RMO)? Drives the default
    /// [`Architecture::sc_per_location_po_loc`] and tells enumeration-time
    /// uniproc pruning which per-location graph is sound for this
    /// architecture.
    fn tolerates_load_load_hazards(&self) -> bool {
        false
    }

    /// The `po-loc` used by SC PER LOCATION. Architectures tolerating
    /// load-load hazards drop read-read pairs
    /// (`po-loc-llh = po-loc \ RR`, Tab VII).
    fn sc_per_location_po_loc(&self, x: &Execution) -> Relation {
        if self.tolerates_load_load_hazards() {
            let rr = x.dir_restrict(x.po_loc(), Some(Dir::R), Some(Dir::R));
            x.po_loc().minus(&rr)
        } else {
            x.po_loc().clone()
        }
    }

    /// Which form of the PROPAGATION axiom applies.
    fn propagation_check(&self) -> PropagationCheck {
        PropagationCheck::Acyclic
    }

    /// A skeleton-invariant underapproximation of `ppo ∪ fences`, enabling
    /// generation-time NO THIN AIR pruning (Sec 8.3, the `-speedcheck`
    /// strategy).
    ///
    /// The contract: the returned relation must be contained in
    /// `ppo(x) ∪ fences(x)` for **every** candidate execution `x` built on
    /// `core`, so that a cycle in `base ∪ rfe` implies a cycle in `hb` and
    /// the candidate is forbidden by NO THIN AIR whatever its coherence
    /// order. Architectures whose model does not enforce NO THIN AIR (or
    /// that cannot offer a sound static base) return `None` — the default
    /// — which disables this pruning axis entirely; pruning never happens
    /// unless an architecture explicitly vouches for it.
    ///
    /// Stock instances override it: SC/C++RA return `po`, TSO/PSO/RMO
    /// their static `ppo` plus fences, Power/ARM the
    /// [`crate::ppo::compute_static`] fixpoint plus their static fence
    /// relations.
    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        let _ = core;
        None
    }
}

/// The three architecture relations, computed once per candidate.
#[derive(Clone, Debug)]
pub struct ArchRelations {
    /// Preserved program order.
    pub ppo: Relation,
    /// Fence-induced ordering.
    pub fences: Relation,
    /// Propagation order.
    pub prop: Relation,
    /// Happens-before `ppo ∪ fences ∪ rfe`.
    pub hb: Relation,
    /// Transitive closure `hb+` (computed once; NO THIN AIR is its
    /// irreflexivity).
    pub hb_plus: Relation,
    /// Reflexive-transitive closure `hb*` (computed once and shared by
    /// every axiom consumer — the OBSERVATION axiom and the Power/ARM
    /// `prop` both sequence through it).
    pub hb_star: Relation,
}

impl ArchRelations {
    /// Evaluates the architecture functions on a candidate.
    pub fn compute<A: Architecture + ?Sized>(arch: &A, x: &Execution) -> Self {
        let ppo = arch.ppo(x);
        let fences = arch.fences(x);
        let prop = arch.prop(x);
        let hb = ppo.union(&fences).union(x.rfe());
        let hb_plus = hb.tclosure();
        let hb_star = hb_plus.union(&Relation::id(hb.universe()));
        ArchRelations { ppo, fences, prop, hb, hb_plus, hb_star }
    }
}

/// Per-axiom outcome for one candidate execution (`true` = axiom holds).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Verdict {
    /// SC PER LOCATION held.
    pub sc_per_location: bool,
    /// NO THIN AIR held.
    pub no_thin_air: bool,
    /// OBSERVATION held.
    pub observation: bool,
    /// PROPAGATION held.
    pub propagation: bool,
}

impl Verdict {
    /// A verdict with every axiom satisfied.
    pub const ALLOWED: Verdict =
        Verdict { sc_per_location: true, no_thin_air: true, observation: true, propagation: true };

    /// Does the model allow the candidate (all four axioms hold)?
    pub fn allowed(&self) -> bool {
        self.sc_per_location && self.no_thin_air && self.observation && self.propagation
    }

    /// The paper's Tab VIII labels the set of violated axioms with one
    /// letter each: `S` (SC PER LOCATION), `T` (NO THIN AIR),
    /// `O` (OBSERVATION), `P` (PROPAGATION). An allowed execution yields
    /// the empty string.
    pub fn violation_label(&self) -> String {
        let mut s = String::new();
        if !self.sc_per_location {
            s.push('S');
        }
        if !self.no_thin_air {
            s.push('T');
        }
        if !self.observation {
            s.push('O');
        }
        if !self.propagation {
            s.push('P');
        }
        s
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.allowed() {
            f.write_str("allowed")
        } else {
            write!(f, "forbidden({})", self.violation_label())
        }
    }
}

/// Checks the four axioms of Fig 5 on one candidate execution.
pub fn check<A: Architecture + ?Sized>(arch: &A, x: &Execution) -> Verdict {
    let rels = ArchRelations::compute(arch, x);
    check_with(arch, x, &rels)
}

/// Axiom check reusing precomputed architecture relations.
pub fn check_with<A: Architecture + ?Sized>(
    arch: &A,
    x: &Execution,
    rels: &ArchRelations,
) -> Verdict {
    let po_loc = arch.sc_per_location_po_loc(x);
    let sc_per_location = po_loc.union(x.com()).is_acyclic();

    let no_thin_air = rels.hb_plus.is_irreflexive();

    let observation = x.fre().seq(&rels.prop).seq(&rels.hb_star).is_irreflexive();

    let propagation = match arch.propagation_check() {
        PropagationCheck::Acyclic => x.co().union(&rels.prop).is_acyclic(),
        PropagationCheck::IrreflexivePropCo => rels.prop.seq(x.co()).is_irreflexive(),
    };

    Verdict { sc_per_location, no_thin_air, observation, propagation }
}

/// Checks only SC PER LOCATION with the standard `po-loc` — used on its own
/// by the coherence tests of Fig 6 and by `herd-hw` anomaly classification.
pub fn sc_per_location(x: &Execution) -> bool {
    x.po_loc().union(x.com()).is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl Architecture for Null {
        fn name(&self) -> &str {
            "null"
        }
        fn ppo(&self, x: &Execution) -> Relation {
            Relation::empty(x.len())
        }
        fn fences(&self, x: &Execution) -> Relation {
            Relation::empty(x.len())
        }
        fn prop(&self, x: &Execution) -> Relation {
            Relation::empty(x.len())
        }
    }

    #[test]
    fn verdict_labels() {
        let mut v = Verdict::ALLOWED;
        assert!(v.allowed());
        assert_eq!(v.violation_label(), "");
        v.sc_per_location = false;
        v.propagation = false;
        assert_eq!(v.violation_label(), "SP");
        assert_eq!(v.to_string(), "forbidden(SP)");
    }

    #[test]
    fn null_architecture_allows_mp() {
        let x = crate::fixtures::mp_fig4();
        let v = check(&Null, &x);
        assert!(v.allowed(), "no ppo, no fences, no prop: everything is allowed");
    }
}
