//! The generic axiomatic model: the four axioms of Fig 5, the
//! architecture abstraction, and verdict classification.
//!
//! An *architecture* is a triple of functions `(ppo, fences, prop)`
//! (paper, Sec 4.1 §Architectures). Given a candidate execution, the
//! generic model checks:
//!
//! 1. **SC PER LOCATION** — `acyclic(po-loc ∪ com)`
//! 2. **NO THIN AIR** — `acyclic(hb)`, `hb = ppo ∪ fences ∪ rfe`
//! 3. **OBSERVATION** — `irreflexive(fre; prop; hb*)`
//! 4. **PROPAGATION** — `acyclic(co ∪ prop)`
//!
//! Two hooks cover the paper's documented deviations: ARM-with-load-load
//! -hazards weakens `po-loc` in axiom 1 (Tab VII), and exact C++ R-A
//! weakens axiom 4 to `irreflexive(prop; co)` (Sec 4.8).

use crate::arena::{RelArena, RelId};
use crate::event::Dir;
use crate::exec::{ExecCore, ExecFrame, Execution};
use crate::ppo::PpoEnvelope;
use crate::relation::Relation;
use std::fmt;

/// How the PROPAGATION axiom is enforced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PropagationCheck {
    /// The paper's default: `acyclic(co ∪ prop)`.
    #[default]
    Acyclic,
    /// The weakening matching C++ R-A's `HBVSMO`: `irreflexive(prop; co)`
    /// (paper, Sec 4.8).
    IrreflexivePropCo,
}

/// Which side of the single-execution consistency tractability frontier a
/// model sits on — the complexity landscape of "How Hard is Weak-Memory
/// Testing?" applied to this framework's axioms.
///
/// [`crate::consistency`] decides "does some coherence order make this
/// (rf-fixed) execution consistent?" by saturation: it tests co
/// hypotheses against the axioms with a *partial* coherence order and
/// treats a violation as definitive. That reasoning is sound exactly when
/// every co-dependent relation the axioms consume (`fr`, `com`, `prop`,
/// `fre; prop; hb*`) is **monotone** in co — adding co edges can only add
/// derived edges, never remove a violation. The SC/TSO/PSO/RMO-class
/// instances (static `ppo`, `prop = ppo ∪ fences ∪ rf[e] ∪ fr`) qualify.
/// Power/ARM's `ppo` is *dynamic* (`rdw`/`rfi`/`detour` feed the Fig 25
/// fixpoint), but once ppo is frozen to a candidate-independent bound
/// their remaining axioms are monotone in co again — that is the
/// [`Tractability::Conditional`] mode, which saturates against a sound
/// two-sided [`crate::ppo::PpoEnvelope`] and only falls back to (counted)
/// enumeration when the bounds genuinely disagree. C++ R-A's
/// `irreflexive(prop; co)` weakening is not vouched for at all, so its
/// queries always take the fallback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Tractability {
    /// Saturation/co-placement decides single-execution consistency in
    /// polynomial time: every axiom is monotone in `co` and
    /// [`Architecture::arch_rels_arena`] accepts partial coherence
    /// orders (no materialising default that would validate totality).
    Polynomial,
    /// Conditionally polynomial: the axioms are monotone in co *given* a
    /// frozen ppo, and the architecture vouches for a sound envelope
    /// `lower ⊆ ppo(x) ⊆ upper` via [`Architecture::ppo_envelope`] plus a
    /// frozen-ppo relation hook
    /// ([`Architecture::arch_rels_arena_frozen`]). Saturation runs once
    /// per bound: a lower-bound contradiction is definitively forbidden
    /// (fewer ppo edges can only *miss* violations), an upper-bound
    /// witness that re-checks clean under the exact per-candidate ppo is
    /// definitively allowed, and only a genuine disagreement falls back —
    /// counted in [`crate::consistency::ConsistencyStats`], never silent.
    Conditional,
    /// Beyond the vouched-for frontier: single-execution queries fall
    /// back to enumerating coherence orders, and the fallback is counted
    /// in [`crate::consistency::ConsistencyStats`], never silent.
    #[default]
    Frontier,
}

/// An instance of the generic framework.
///
/// Implementations provide the three architecture functions; the default
/// hook methods reproduce the paper's standard axioms.
pub trait Architecture {
    /// Human-readable architecture name (e.g. `"Power"`).
    fn name(&self) -> &str;

    /// The preserved program order for this execution.
    fn ppo(&self, x: &Execution) -> Relation;

    /// The ordering contributed by fences (direction-filtered; e.g. on
    /// Power `lwfence = lwsync \ WR`, Fig 17).
    fn fences(&self, x: &Execution) -> Relation;

    /// The propagation order (Fig 18 for Power/ARM, Fig 21 for SC/TSO).
    fn prop(&self, x: &Execution) -> Relation;

    /// Does this architecture tolerate load-load hazards, i.e. does its SC
    /// PER LOCATION axiom drop read-read `po-loc` pairs (Tab VII for
    /// ARM-llh, Sec 4.9 for Sparc RMO)? Drives the default
    /// [`Architecture::sc_per_location_po_loc`] and tells enumeration-time
    /// uniproc pruning which per-location graph is sound for this
    /// architecture.
    fn tolerates_load_load_hazards(&self) -> bool {
        false
    }

    /// The `po-loc` used by SC PER LOCATION. Architectures tolerating
    /// load-load hazards drop read-read pairs
    /// (`po-loc-llh = po-loc \ RR`, Tab VII).
    ///
    /// The default delegates to the skeleton-invariant
    /// [`Architecture::sc_per_location_po_loc_static`] — directions and
    /// locations never depend on the witness — so overriding the static
    /// hook adjusts both the owned and the arena checking paths at once.
    fn sc_per_location_po_loc(&self, x: &Execution) -> Relation {
        self.sc_per_location_po_loc_static(x.core())
    }

    /// Skeleton-invariant twin of
    /// [`Architecture::sc_per_location_po_loc`], computed from the core
    /// before any data-flow choice. [`ArenaChecker::new`] caches it once
    /// per enumeration, so architectures customising their SC PER
    /// LOCATION `po-loc` should override *this* hook (a per-candidate
    /// override of the dynamic method alone would only affect the owned
    /// path).
    fn sc_per_location_po_loc_static(&self, core: &ExecCore) -> Relation {
        if self.tolerates_load_load_hazards() {
            let rr = core.dir_restrict(core.po_loc(), Some(Dir::R), Some(Dir::R));
            core.po_loc().minus(&rr)
        } else {
            core.po_loc().clone()
        }
    }

    /// Which form of the PROPAGATION axiom applies.
    fn propagation_check(&self) -> PropagationCheck {
        PropagationCheck::Acyclic
    }

    /// Which side of the single-execution tractability frontier this
    /// model sits on (see [`Tractability`]). Overriding to
    /// [`Tractability::Polynomial`] is a promise that every co-dependent
    /// relation the axioms consume is monotone in `co` **and** that
    /// [`Architecture::arch_rels_arena`] never materialises an owned
    /// [`Execution`] (whose validation rejects the partial coherence
    /// orders saturation probes with). The default keeps the enumeration
    /// fallback — always sound, never silent.
    fn tractability(&self) -> Tractability {
        Tractability::Frontier
    }

    /// The candidate-independent ppo envelope backing
    /// [`Tractability::Conditional`]: `lower ⊆ ppo(x) ⊆ upper` for every
    /// candidate `x` built on `core`. Architectures declaring
    /// `Conditional` **must** override this (returning `Some`); the
    /// default `None` matches the static-ppo and frontier models, for
    /// which no envelope is needed or none is sound.
    fn ppo_envelope(&self, core: &ExecCore) -> Option<PpoEnvelope> {
        let _ = core;
        None
    }

    /// [`Architecture::arch_rels_arena`] with the ppo *frozen* to a
    /// caller-supplied bound instead of the candidate's exact Fig 25
    /// fixpoint — the relation evaluator behind
    /// [`Tractability::Conditional`] saturation.
    ///
    /// The default substitutes the frozen slot and recomputes nothing
    /// else, which is exact for architectures whose `fences`/`prop` do
    /// not consume ppo. Power/ARM's `prop` sequences through `hb` (which
    /// contains ppo), so their overrides rebuild `prop` from the frozen
    /// slot — a `Conditional` architecture must guarantee every returned
    /// relation is computed from `ppo_bound`, not from the candidate's
    /// dynamic ingredients.
    fn arch_rels_arena_frozen(
        &self,
        fx: &ExecFrame<'_>,
        ppo_bound: RelId,
        arena: &mut RelArena,
    ) -> ArenaArchRels {
        let rels = self.arch_rels_arena(fx, arena);
        ArenaArchRels { ppo: ppo_bound, ..rels }
    }

    /// The skeleton-invariant part of this architecture's `fences`
    /// relation — the *static fence suffix* of the cumulativity edges.
    ///
    /// `A-cumul = rfe; fences` (Fig 18) is rf-dependent, but its `fences`
    /// suffix is not: fence placement and event directions are fixed by
    /// the skeleton. Putting this static suffix into the thin-air base
    /// makes every cumulativity composition fall out of the incremental
    /// closure for free — when the tracker pushes an rfe edge `(w, r)`
    /// and the base holds `(r, c) ∈ fences`, the closed graph contains
    /// `(w, c)` without any per-candidate work (the `rfe; fences` pair).
    /// `tests/thin_air.rs` checks both halves of the contract: the base
    /// stays under every candidate's `hb`, and the cumulativity pairs are
    /// reachable in the tracked closure.
    ///
    /// The default is empty (sound for every architecture); stock
    /// instances with fences override it and their
    /// [`Architecture::thin_air_base`] unions it into the static base.
    fn thin_air_fences(&self, core: &ExecCore) -> Relation {
        Relation::empty(core.universe())
    }

    /// A skeleton-invariant underapproximation of `ppo ∪ fences`, enabling
    /// generation-time NO THIN AIR pruning (Sec 8.3, the `-speedcheck`
    /// strategy).
    ///
    /// The contract: the returned relation must be contained in
    /// `ppo(x) ∪ fences(x)` for **every** candidate execution `x` built on
    /// `core`, so that a cycle in `base ∪ rfe` implies a cycle in `hb` and
    /// the candidate is forbidden by NO THIN AIR whatever its coherence
    /// order. Architectures whose model does not enforce NO THIN AIR (or
    /// that cannot offer a sound static base) return `None` — the default
    /// — which disables this pruning axis entirely; pruning never happens
    /// unless an architecture explicitly vouches for it.
    ///
    /// Stock instances override it: SC/C++RA return `po`, TSO/PSO/RMO
    /// their static `ppo`, Power/ARM the [`crate::ppo::compute_static`]
    /// fixpoint — each unioned with the static fence suffix
    /// ([`Architecture::thin_air_fences`]), which also covers the
    /// cumulativity edges compositionally.
    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        let _ = core;
        None
    }

    /// Evaluates the three architecture functions for one arena-backed
    /// candidate, returning arena slots instead of owned relations.
    ///
    /// The default implementation materialises an owned [`Execution`]
    /// from the frame and copies `ppo`/`fences`/`prop` into the arena —
    /// always correct, but it allocates; every stock architecture
    /// overrides it with a pure-arena computation so the hot checking
    /// path performs zero heap allocations in the steady state.
    ///
    /// Slots are allocated under the caller's current mark; the caller
    /// (normally [`ArenaChecker::check`]) releases them after the axioms
    /// are evaluated.
    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        let x = fx.to_execution(arena);
        ArenaArchRels {
            ppo: arena.alloc_from(&self.ppo(&x)),
            fences: arena.alloc_from(&self.fences(&x)),
            prop: arena.alloc_from(&self.prop(&x)),
        }
    }
}

/// References delegate wholesale, preserving every override — so `&A`
/// (and in particular `&dyn Architecture`, which is `Sized`) is itself an
/// architecture. Lets unsized-generic drivers hand a trait object to
/// enum-shaped plumbing without re-monomorphising it.
impl<A: Architecture + ?Sized> Architecture for &A {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn ppo(&self, x: &Execution) -> Relation {
        (**self).ppo(x)
    }
    fn fences(&self, x: &Execution) -> Relation {
        (**self).fences(x)
    }
    fn prop(&self, x: &Execution) -> Relation {
        (**self).prop(x)
    }
    fn tolerates_load_load_hazards(&self) -> bool {
        (**self).tolerates_load_load_hazards()
    }
    fn sc_per_location_po_loc(&self, x: &Execution) -> Relation {
        (**self).sc_per_location_po_loc(x)
    }
    fn sc_per_location_po_loc_static(&self, core: &ExecCore) -> Relation {
        (**self).sc_per_location_po_loc_static(core)
    }
    fn propagation_check(&self) -> PropagationCheck {
        (**self).propagation_check()
    }
    fn tractability(&self) -> Tractability {
        (**self).tractability()
    }
    fn ppo_envelope(&self, core: &ExecCore) -> Option<PpoEnvelope> {
        (**self).ppo_envelope(core)
    }
    fn arch_rels_arena_frozen(
        &self,
        fx: &ExecFrame<'_>,
        ppo_bound: RelId,
        arena: &mut RelArena,
    ) -> ArenaArchRels {
        (**self).arch_rels_arena_frozen(fx, ppo_bound, arena)
    }
    fn thin_air_fences(&self, core: &ExecCore) -> Relation {
        (**self).thin_air_fences(core)
    }
    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        (**self).thin_air_base(core)
    }
    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        (**self).arch_rels_arena(fx, arena)
    }
}

/// The three architecture relations of one arena-backed candidate, as
/// slots of the checking arena — the [`ArchRelations`] twin produced by
/// [`Architecture::arch_rels_arena`].
#[derive(Clone, Copy, Debug)]
pub struct ArenaArchRels {
    /// Preserved program order.
    pub ppo: RelId,
    /// Fence-induced ordering.
    pub fences: RelId,
    /// Propagation order.
    pub prop: RelId,
}

/// The three architecture relations, computed once per candidate.
#[derive(Clone, Debug)]
pub struct ArchRelations {
    /// Preserved program order.
    pub ppo: Relation,
    /// Fence-induced ordering.
    pub fences: Relation,
    /// Propagation order.
    pub prop: Relation,
    /// Happens-before `ppo ∪ fences ∪ rfe`.
    pub hb: Relation,
    /// Transitive closure `hb+` (computed once; NO THIN AIR is its
    /// irreflexivity).
    pub hb_plus: Relation,
    /// Reflexive-transitive closure `hb*` (computed once and shared by
    /// every axiom consumer — the OBSERVATION axiom and the Power/ARM
    /// `prop` both sequence through it).
    pub hb_star: Relation,
}

impl ArchRelations {
    /// Evaluates the architecture functions on a candidate.
    pub fn compute<A: Architecture + ?Sized>(arch: &A, x: &Execution) -> Self {
        let ppo = arch.ppo(x);
        let fences = arch.fences(x);
        let prop = arch.prop(x);
        let hb = ppo.union(&fences).union(x.rfe());
        let hb_plus = hb.tclosure();
        let hb_star = hb_plus.union(&Relation::id(hb.universe()));
        ArchRelations { ppo, fences, prop, hb, hb_plus, hb_star }
    }
}

/// Per-axiom outcome for one candidate execution (`true` = axiom holds).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Verdict {
    /// SC PER LOCATION held.
    pub sc_per_location: bool,
    /// NO THIN AIR held.
    pub no_thin_air: bool,
    /// OBSERVATION held.
    pub observation: bool,
    /// PROPAGATION held.
    pub propagation: bool,
}

impl Verdict {
    /// A verdict with every axiom satisfied.
    pub const ALLOWED: Verdict =
        Verdict { sc_per_location: true, no_thin_air: true, observation: true, propagation: true };

    /// Does the model allow the candidate (all four axioms hold)?
    pub fn allowed(&self) -> bool {
        self.sc_per_location && self.no_thin_air && self.observation && self.propagation
    }

    /// The paper's Tab VIII labels the set of violated axioms with one
    /// letter each: `S` (SC PER LOCATION), `T` (NO THIN AIR),
    /// `O` (OBSERVATION), `P` (PROPAGATION). An allowed execution yields
    /// the empty string.
    pub fn violation_label(&self) -> String {
        let mut s = String::new();
        if !self.sc_per_location {
            s.push('S');
        }
        if !self.no_thin_air {
            s.push('T');
        }
        if !self.observation {
            s.push('O');
        }
        if !self.propagation {
            s.push('P');
        }
        s
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.allowed() {
            f.write_str("allowed")
        } else {
            write!(f, "forbidden({})", self.violation_label())
        }
    }
}

/// Checks the four axioms of Fig 5 on one candidate execution.
pub fn check<A: Architecture + ?Sized>(arch: &A, x: &Execution) -> Verdict {
    let rels = ArchRelations::compute(arch, x);
    check_with(arch, x, &rels)
}

/// Axiom check reusing precomputed architecture relations.
pub fn check_with<A: Architecture + ?Sized>(
    arch: &A,
    x: &Execution,
    rels: &ArchRelations,
) -> Verdict {
    let po_loc = arch.sc_per_location_po_loc(x);
    let sc_per_location = po_loc.union(x.com()).is_acyclic();

    let no_thin_air = rels.hb_plus.is_irreflexive();

    let observation = x.fre().seq(&rels.prop).seq(&rels.hb_star).is_irreflexive();

    let propagation = match arch.propagation_check() {
        PropagationCheck::Acyclic => x.co().union(&rels.prop).is_acyclic(),
        PropagationCheck::IrreflexivePropCo => rels.prop.seq(x.co()).is_irreflexive(),
    };

    Verdict { sc_per_location, no_thin_air, observation, propagation }
}

/// Checks only SC PER LOCATION with the standard `po-loc` — used on its own
/// by the coherence tests of Fig 6 and by `herd-hw` anomaly classification.
pub fn sc_per_location(x: &Execution) -> bool {
    x.po_loc().union(x.com()).is_acyclic()
}

/// The arena-backed axiom checker: [`check_with`] without a single heap
/// allocation per candidate.
///
/// Construct once per enumeration ([`ArenaChecker::new`] precomputes the
/// skeleton-invariant `po-loc` the SC PER LOCATION axiom uses, load-load
/// -hazard-weakened when the architecture asks for it), then call
/// [`ArenaChecker::check`] per candidate frame. All per-candidate
/// temporaries — the architecture relations, `hb` and its closures, the
/// axiom compositions — live above one arena mark that is released before
/// returning, so the arena's footprint stays at its high-water mark.
///
/// Equivalence with the owned path ([`check`] / [`check_with`]) is pinned
/// down by the corpus-wide equivalence suites; architectures customising
/// SC PER LOCATION do so through
/// [`Architecture::sc_per_location_po_loc_static`], which both paths
/// consume.
pub struct ArenaChecker {
    sc_po_loc: Relation,
}

impl ArenaChecker {
    /// Precomputes the static per-architecture inputs for `core`.
    pub fn new<A: Architecture + ?Sized>(arch: &A, core: &ExecCore) -> Self {
        ArenaChecker { sc_po_loc: arch.sc_per_location_po_loc_static(core) }
    }

    /// Checks the four axioms of Fig 5 on one arena-backed candidate.
    pub fn check<A: Architecture + ?Sized>(
        &self,
        arch: &A,
        fx: &ExecFrame<'_>,
        arena: &mut RelArena,
    ) -> Verdict {
        let m = arena.mark();

        // SC PER LOCATION: acyclic(po-loc ∪ com).
        let t = arena.alloc_from(&self.sc_po_loc);
        arena.union_into(t, fx.rels.com);
        let sc_per_location = arena.is_acyclic(t);

        let ar = arch.arch_rels_arena(fx, arena);

        // hb = ppo ∪ fences ∪ rfe; NO THIN AIR is acyclic(hb).
        let hb = arena.alloc_from(ar.ppo);
        arena.union_into(hb, ar.fences);
        arena.union_into(hb, fx.rels.rfe);
        let hb_plus = arena.alloc();
        arena.tclosure_into(hb_plus, hb);
        let no_thin_air = arena.is_irreflexive(hb_plus);

        // OBSERVATION: irreflexive(fre; prop; hb*). hb* reuses hb+ (the
        // irreflexivity of hb+ was already read off above).
        arena.union_id(hb_plus);
        let t1 = arena.alloc();
        arena.seq_into(t1, fx.rels.fre, ar.prop);
        let t2 = arena.alloc();
        arena.seq_into(t2, t1, hb_plus);
        let observation = arena.is_irreflexive(t2);

        // PROPAGATION: acyclic(co ∪ prop), or the C++ R-A weakening.
        let propagation = match arch.propagation_check() {
            PropagationCheck::Acyclic => {
                let t3 = arena.alloc_from(fx.rels.co);
                arena.union_into(t3, ar.prop);
                arena.is_acyclic(t3)
            }
            PropagationCheck::IrreflexivePropCo => {
                let t3 = arena.alloc();
                arena.seq_into(t3, ar.prop, fx.rels.co);
                arena.is_irreflexive(t3)
            }
        };

        arena.release(m);
        Verdict { sc_per_location, no_thin_air, observation, propagation }
    }

    /// [`ArenaChecker::check`] with the architecture's ppo frozen to
    /// `ppo_bound` ([`Architecture::arch_rels_arena_frozen`]): the axiom
    /// evaluator conditional saturation probes co hypotheses with. The
    /// bound slot must outlive the call; everything else is released
    /// before returning, as in `check`.
    pub fn check_frozen<A: Architecture + ?Sized>(
        &self,
        arch: &A,
        fx: &ExecFrame<'_>,
        arena: &mut RelArena,
        ppo_bound: RelId,
    ) -> Verdict {
        let m = arena.mark();

        let t = arena.alloc_from(&self.sc_po_loc);
        arena.union_into(t, fx.rels.com);
        let sc_per_location = arena.is_acyclic(t);

        let ar = arch.arch_rels_arena_frozen(fx, ppo_bound, arena);

        let hb = arena.alloc_from(ar.ppo);
        arena.union_into(hb, ar.fences);
        arena.union_into(hb, fx.rels.rfe);
        let hb_plus = arena.alloc();
        arena.tclosure_into(hb_plus, hb);
        let no_thin_air = arena.is_irreflexive(hb_plus);

        arena.union_id(hb_plus);
        let t1 = arena.alloc();
        arena.seq_into(t1, fx.rels.fre, ar.prop);
        let t2 = arena.alloc();
        arena.seq_into(t2, t1, hb_plus);
        let observation = arena.is_irreflexive(t2);

        let propagation = match arch.propagation_check() {
            PropagationCheck::Acyclic => {
                let t3 = arena.alloc_from(fx.rels.co);
                arena.union_into(t3, ar.prop);
                arena.is_acyclic(t3)
            }
            PropagationCheck::IrreflexivePropCo => {
                let t3 = arena.alloc();
                arena.seq_into(t3, ar.prop, fx.rels.co);
                arena.is_irreflexive(t3)
            }
        };

        arena.release(m);
        Verdict { sc_per_location, no_thin_air, observation, propagation }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl Architecture for Null {
        fn name(&self) -> &str {
            "null"
        }
        fn ppo(&self, x: &Execution) -> Relation {
            Relation::empty(x.len())
        }
        fn fences(&self, x: &Execution) -> Relation {
            Relation::empty(x.len())
        }
        fn prop(&self, x: &Execution) -> Relation {
            Relation::empty(x.len())
        }
    }

    #[test]
    fn verdict_labels() {
        let mut v = Verdict::ALLOWED;
        assert!(v.allowed());
        assert_eq!(v.violation_label(), "");
        v.sc_per_location = false;
        v.propagation = false;
        assert_eq!(v.violation_label(), "SP");
        assert_eq!(v.to_string(), "forbidden(SP)");
    }

    #[test]
    fn null_architecture_allows_mp() {
        let x = crate::fixtures::mp_fig4();
        let v = check(&Null, &x);
        assert!(v.allowed(), "no ppo, no fences, no prop: everything is allowed");
    }

    /// The arena checker must agree with the owned path verdict-for-
    /// verdict — for the stock arena implementations *and* for the
    /// default (materialising) `arch_rels_arena` fallback.
    #[test]
    fn arena_checker_matches_owned_check() {
        use crate::arena::RelArena;
        use crate::exec::{ExecFrame, ExecRels};
        use crate::fixtures::{self, Device};

        let fixtures = [
            fixtures::mp(Device::None, Device::None),
            fixtures::mp(Device::Fence(crate::event::Fence::Lwsync), Device::Addr),
            fixtures::sb(Device::Fence(crate::event::Fence::Mfence), Device::None),
            fixtures::lb(Device::Data, Device::Ctrl),
            fixtures::iriw(Device::Fence(crate::event::Fence::Sync), Device::Addr),
            fixtures::two_plus_two_w(Device::Fence(crate::event::Fence::Lwsync), Device::None),
            fixtures::co_rr(),
            fixtures::wrc(Device::Fence(crate::event::Fence::Lwsync), Device::Addr),
        ];
        let mut arena = RelArena::new(0);
        for arch in crate::arch::all() {
            for x in &fixtures {
                arena.reset(x.len());
                let rels = ExecRels::from_execution(x, &mut arena);
                let fx = ExecFrame { core: x.core(), events: x.events(), rels: &rels };
                let checker = ArenaChecker::new(arch.as_ref(), x.core());
                let arena_v = checker.check(arch.as_ref(), &fx, &mut arena);
                let owned_v = check(arch.as_ref(), x);
                assert_eq!(arena_v, owned_v, "{} disagrees", arch.name());
            }
        }
        // The default fallback (Null overrides nothing) takes the
        // materialising path and must agree too.
        let x = fixtures::mp_fig4();
        arena.reset(x.len());
        let rels = ExecRels::from_execution(&x, &mut arena);
        let fx = ExecFrame { core: x.core(), events: x.events(), rels: &rels };
        let checker = ArenaChecker::new(&Null, x.core());
        assert_eq!(checker.check(&Null, &fx, &mut arena), check(&Null, &x));
    }
}
