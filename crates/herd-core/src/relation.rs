//! Binary relations over events, as dense boolean matrices.
//!
//! The whole *Herding Cats* framework is phrased in terms of unions,
//! intersections, sequences (`r1; r2`), transitive closures and
//! acyclicity/irreflexivity checks of relations over the events of one
//! candidate execution (paper, Sec 4.1). Candidate executions at litmus
//! scale have well under a hundred events, so a dense row-major bit matrix
//! makes every operator a short loop over machine words. This representation
//! is the reason single-event axiomatic simulation is fast (paper, Sec 8.3).

use crate::set::{words_for, EventSet};
use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

/// A binary relation over a universe of `n` events.
///
/// `(a, b) ∈ r` is stored as bit `b` of row `a`.
///
/// # Examples
///
/// ```
/// use herd_core::relation::Relation;
/// let mut po = Relation::empty(3);
/// po.add(0, 1);
/// po.add(1, 2);
/// assert!(po.tclosure().contains(0, 2));
/// assert!(po.is_acyclic());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    n: usize,
    wpr: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Self {
        let wpr = words_for(n);
        Relation { n, wpr, bits: vec![0; n * wpr] }
    }

    /// The identity relation `{(e, e)}` over `n` events.
    pub fn id(n: usize) -> Self {
        let mut r = Relation::empty(n);
        for i in 0..n {
            r.bits[i * r.wpr + i / 64] = 1u64 << (i % 64);
        }
        r
    }

    /// The full relation over `n` events.
    pub fn full(n: usize) -> Self {
        let wpr = words_for(n);
        let mut bits = vec![!0u64; n * wpr];
        if n % 64 != 0 && wpr > 0 {
            let tail = (1u64 << (n % 64)) - 1;
            for row in 0..n {
                bits[row * wpr + wpr - 1] = tail;
            }
        }
        Relation { n, wpr, bits }
    }

    /// Builds a relation from explicit pairs.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_pairs<I: IntoIterator<Item = (usize, usize)>>(n: usize, pairs: I) -> Self {
        let mut r = Relation::empty(n);
        for (a, b) in pairs {
            r.add(a, b);
        }
        r
    }

    /// Size of the event universe.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Raw row-major words (rows of `words_for(n)` words each) — the
    /// layout shared with [`crate::arena::RelArena`] slots, so arena
    /// operations can consume owned relations in place.
    #[inline]
    pub(crate) fn bits(&self) -> &[u64] {
        &self.bits
    }

    /// Builds a relation from raw row-major words (the arena layout).
    pub(crate) fn from_raw(n: usize, bits: Vec<u64>) -> Self {
        let wpr = words_for(n);
        assert_eq!(bits.len(), n * wpr, "raw word count mismatch");
        Relation { n, wpr, bits }
    }

    /// Adds the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is outside the universe.
    #[inline]
    pub fn add(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "pair ({a},{b}) out of universe {}", self.n);
        self.bits[a * self.wpr + b / 64] |= 1u64 << (b % 64);
    }

    /// Removes the pair `(a, b)` if present.
    #[inline]
    pub fn remove(&mut self, a: usize, b: usize) {
        if a < self.n && b < self.n {
            self.bits[a * self.wpr + b / 64] &= !(1u64 << (b % 64));
        }
    }

    /// Does the relation contain `(a, b)`?
    #[inline]
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && self.bits[a * self.wpr + b / 64] >> (b % 64) & 1 == 1
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    #[inline]
    fn row(&self, a: usize) -> &[u64] {
        &self.bits[a * self.wpr..(a + 1) * self.wpr]
    }

    /// Union, in place.
    pub fn union_with(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Intersection, in place.
    pub fn intersect_with(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// Difference, in place.
    pub fn minus_with(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
    }

    /// Union, by value.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut r = self.clone();
        r.union_with(other);
        r
    }

    /// Intersection, by value.
    pub fn intersect(&self, other: &Relation) -> Relation {
        let mut r = self.clone();
        r.intersect_with(other);
        r
    }

    /// Difference, by value.
    pub fn minus(&self, other: &Relation) -> Relation {
        let mut r = self.clone();
        r.minus_with(other);
        r
    }

    /// Relational composition `self; other`
    /// (`(a, c)` iff `∃b. (a, b) ∈ self ∧ (b, c) ∈ other`).
    pub fn seq(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "universe mismatch");
        let mut out = Relation::empty(self.n);
        for a in 0..self.n {
            let row_a = a * self.wpr;
            for b in 0..self.n {
                if self.bits[row_a + b / 64] >> (b % 64) & 1 == 1 {
                    let (dst, src) = (a * self.wpr, b * self.wpr);
                    for w in 0..self.wpr {
                        out.bits[dst + w] |= other.bits[src + w];
                    }
                }
            }
        }
        out
    }

    /// Converse (transpose) relation `{(b, a) | (a, b) ∈ self}`.
    pub fn transpose(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter_pairs() {
            out.add(b, a);
        }
        out
    }

    /// Transitive closure `r+`, by Warshall's algorithm over bitset rows.
    pub fn tclosure(&self) -> Relation {
        let mut c = self.clone();
        for k in 0..self.n {
            for i in 0..self.n {
                if c.contains(i, k) {
                    let (dst, src) = (i * c.wpr, k * c.wpr);
                    if dst != src {
                        for w in 0..c.wpr {
                            let v = c.bits[src + w];
                            c.bits[dst + w] |= v;
                        }
                    }
                }
            }
        }
        c
    }

    /// Reflexive-transitive closure `r*`.
    pub fn rtclosure(&self) -> Relation {
        let mut c = self.tclosure();
        c.union_with(&Relation::id(self.n));
        c
    }

    /// Is the relation irreflexive (`¬∃x. (x, x) ∈ r`)?
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.contains(i, i))
    }

    /// Is the relation acyclic (`¬∃x. (x, x) ∈ r+`)?
    pub fn is_acyclic(&self) -> bool {
        self.tclosure().is_irreflexive()
    }

    /// Restriction to pairs whose source is in `src` and target in `dst`.
    pub fn restrict(&self, src: &EventSet, dst: &EventSet) -> Relation {
        assert_eq!(self.n, src.universe());
        assert_eq!(self.n, dst.universe());
        let mut out = Relation::empty(self.n);
        let dw = dst.words();
        for a in src.iter() {
            let base = a * self.wpr;
            for (w, &mask) in dw.iter().enumerate() {
                out.bits[base + w] = self.bits[base + w] & mask;
            }
        }
        out
    }

    /// The set of events with an outgoing edge.
    pub fn domain(&self) -> EventSet {
        let mut s = EventSet::empty(self.n);
        for a in 0..self.n {
            if self.row(a).iter().any(|&w| w != 0) {
                s.insert(a);
            }
        }
        s
    }

    /// The set of events with an incoming edge.
    pub fn range(&self) -> EventSet {
        let mut s = EventSet::empty(self.n);
        for (_, b) in self.iter_pairs() {
            s.insert(b);
        }
        s
    }

    /// Successors of `a` under the relation.
    pub fn succs(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&b| self.contains(a, b))
    }

    /// Iterates over all pairs `(a, b)` of the relation.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| self.succs(a).map(move |b| (a, b)))
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &Relation) -> bool {
        assert_eq!(self.n, other.n);
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// A topological order of events consistent with the relation, or `None`
    /// if the relation is cyclic. Events not touched by the relation are
    /// included (in index order, interleaved as Kahn's algorithm emits them).
    pub fn topo_sort(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for (_, b) in self.iter_pairs() {
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(self.n);
        while let Some(a) = queue.pop() {
            out.push(a);
            for b in self.succs(a) {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    queue.push(b);
                }
            }
        }
        (out.len() == self.n).then_some(out)
    }

    /// One cycle of the relation (as a vector of events, first = last
    /// implied), or `None` if the relation is acyclic. Used for reporting
    /// *why* an axiom rejected a candidate.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        // Iterative DFS with colouring; returns the first back-edge cycle.
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut colour = vec![WHITE; self.n];
        let mut parent = vec![usize::MAX; self.n];
        for root in 0..self.n {
            if colour[root] != WHITE {
                continue;
            }
            let mut stack = vec![(root, self.succs(root).collect::<Vec<_>>().into_iter())];
            colour[root] = GREY;
            while let Some((v, iter)) = stack.last_mut() {
                let v = *v;
                match iter.next() {
                    Some(w) if colour[w] == GREY => {
                        // Found a cycle w -> ... -> v -> w.
                        let mut cycle = vec![v];
                        let mut cur = v;
                        while cur != w {
                            cur = parent[cur];
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Some(w) if colour[w] == WHITE => {
                        colour[w] = GREY;
                        parent[w] = v;
                        stack.push((w, self.succs(w).collect::<Vec<_>>().into_iter()));
                    }
                    Some(_) => {}
                    None => {
                        colour[v] = BLACK;
                        stack.pop();
                    }
                }
            }
        }
        None
    }
}

impl BitOr for &Relation {
    type Output = Relation;
    fn bitor(self, rhs: &Relation) -> Relation {
        self.union(rhs)
    }
}

impl BitAnd for &Relation {
    type Output = Relation;
    fn bitand(self, rhs: &Relation) -> Relation {
        self.intersect(rhs)
    }
}

impl Sub for &Relation {
    type Output = Relation;
    fn sub(self, rhs: &Relation) -> Relation {
        self.minus(rhs)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter_pairs()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Relation {
        Relation::from_pairs(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn add_contains_remove() {
        let mut r = Relation::empty(70);
        r.add(0, 69);
        r.add(69, 0);
        assert!(r.contains(0, 69) && r.contains(69, 0));
        r.remove(0, 69);
        assert!(!r.contains(0, 69));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn full_and_id_fill_whole_words() {
        let f = Relation::full(70);
        assert_eq!(f.len(), 70 * 70);
        assert!(f.contains(69, 69) && f.contains(0, 64));
        assert_eq!(f, Relation::from_pairs(70, (0..70).flat_map(|a| (0..70).map(move |b| (a, b)))));
        let id = Relation::id(70);
        assert_eq!(id.len(), 70);
        assert!((0..70).all(|i| id.contains(i, i)));
        assert!(!id.contains(0, 1));
    }

    #[test]
    fn seq_composes() {
        let r = chain(4);
        let rr = r.seq(&r);
        assert!(rr.contains(0, 2) && rr.contains(1, 3));
        assert!(!rr.contains(0, 1));
        assert_eq!(rr.len(), 2);
    }

    #[test]
    fn closure_of_chain() {
        let r = chain(5);
        let c = r.tclosure();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(c.contains(i, j), i < j, "({i},{j})");
            }
        }
        assert!(c.is_irreflexive());
        let rc = r.rtclosure();
        assert!(rc.contains(3, 3));
    }

    #[test]
    fn acyclicity() {
        let mut r = chain(4);
        assert!(r.is_acyclic());
        r.add(3, 0);
        assert!(!r.is_acyclic());
        assert!(r.is_irreflexive(), "cyclic but still irreflexive");
    }

    #[test]
    fn transpose_involution() {
        let r = Relation::from_pairs(6, [(0, 3), (2, 5), (5, 5)]);
        assert_eq!(r.transpose().transpose(), r);
    }

    #[test]
    fn restrict_filters_both_ends() {
        let r = Relation::full(4);
        let src = EventSet::from_indices(4, [0, 1]);
        let dst = EventSet::from_indices(4, [2]);
        let q = r.restrict(&src, &dst);
        assert_eq!(q.iter_pairs().collect::<Vec<_>>(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn topo_sort_respects_order() {
        let r = Relation::from_pairs(4, [(2, 0), (0, 1), (1, 3)]);
        let order = r.topo_sort().expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (rank, &e) in order.iter().enumerate() {
                p[e] = rank;
            }
            p
        };
        for (a, b) in r.iter_pairs() {
            assert!(pos[a] < pos[b]);
        }
        let mut cyc = r;
        cyc.add(3, 2);
        assert!(cyc.topo_sort().is_none());
    }

    #[test]
    fn find_cycle_reports_real_cycle() {
        let r = Relation::from_pairs(5, [(0, 1), (1, 2), (2, 0), (3, 4)]);
        let cycle = r.find_cycle().expect("has a cycle");
        assert!(cycle.len() >= 2);
        for w in cycle.windows(2) {
            assert!(r.contains(w[0], w[1]));
        }
        assert!(r.contains(*cycle.last().unwrap(), cycle[0]));
        assert!(chain(4).find_cycle().is_none());
    }

    #[test]
    fn domain_range() {
        let r = Relation::from_pairs(4, [(1, 2), (1, 3)]);
        assert_eq!(r.domain().iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(r.range().iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn operators() {
        let a = Relation::from_pairs(3, [(0, 1), (1, 2)]);
        let b = Relation::from_pairs(3, [(1, 2), (2, 0)]);
        assert_eq!((&a | &b).len(), 3);
        assert_eq!((&a & &b).iter_pairs().collect::<Vec<_>>(), vec![(1, 2)]);
        assert_eq!((&a - &b).iter_pairs().collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn subset() {
        let a = Relation::from_pairs(3, [(0, 1)]);
        let b = Relation::from_pairs(3, [(0, 1), (1, 2)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
    }
}
