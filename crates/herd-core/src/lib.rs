//! # herd-core — the *Herding Cats* generic weak memory framework
//!
//! This crate implements the axiomatic framework of
//! *Herding cats: modelling, simulation, testing, and data-mining for weak
//! memory* (Alglave, Maranget, Tautschnig, 2014): candidate executions as
//! relations over memory events, the four axioms of Fig 5, and the paper's
//! architecture instances — SC, TSO, C++ release-acquire, Power and ARM.
//!
//! ## Tour
//!
//! - [`relation`] / [`set`]: dense bit-matrix relational algebra (union,
//!   sequence, closures, acyclicity).
//! - [`maskrow`]: the width-generic bit-row layer under every fast path —
//!   unrolled word kernels, [`maskrow::MaskRow`] values, and the shared
//!   Kahn elimination (stack masks up to 64 nodes, pooled row-major
//!   scratch beyond).
//! - [`event`] / [`exec`]: memory events and candidate executions with all
//!   derived relations (`fr`, `com`, `rdw`, `detour`, ...).
//! - [`model`]: the generic axioms and the [`model::Architecture`] trait.
//! - [`ppo`]: the Power/ARM preserved-program-order fixpoint (Fig 25).
//! - [`arch`]: the stock architectures.
//! - [`enumerate`]: data-flow enumeration from skeletons to candidates,
//!   streaming with generation-time pruning and rf-odometer sharding.
//! - [`consistency`]: the polynomial single-execution backend — given a
//!   fixed `rf`, saturation places one coherence order (or derives a
//!   contradiction) instead of enumerating all of them, with a counted
//!   enumeration fallback past the tractability frontier.
//! - [`sched`]: the hierarchical work scheduler — [`sched::WorkPlan`]s
//!   decompose the combined rf×co odometer (co-level splitting within one
//!   rf configuration for co-heavy tests) and a work-stealing executor
//!   drives every parallel entry point of the workspace, with
//!   [`sched::Budget`]/[`sched::CancelToken`] graceful degradation and
//!   per-unit panic isolation.
//! - [`fingerprint`]: deterministic structural hashing — the stable
//!   128-bit content keys under the memoised query layer (`herd-cache`).
//! - [`faultpoint`]: the deterministic fault-injection harness behind the
//!   robustness suite — named fault points on the hot path, zero-cost
//!   unless the `fault-injection` feature is on.
//! - [`uniproc`] / [`thinair`]: the two pruning axes of herd's
//!   `-speedcheck` (Sec 8.3) — per-location SC PER LOCATION masks and the
//!   incremental NO THIN AIR happens-before tracker.
//! - [`fixtures`]: hand-built executions for every canonical pattern
//!   (mp, sb, lb, wrc, isa2, 2+2w, r, s, rwc, iriw, the coXY five, ...).
//! - [`glossary`]: the paper's Tabs II and III as living documentation —
//!   every relation name (`fr`, `ppo`, `hb`, `prop`, `rdw`, `detour`, ...)
//!   cross-referenced to its paper section/figure and its home in this
//!   crate.
//!
//! ## Example
//!
//! Check that Power forbids message passing once fenced and ordered
//! (Fig 8), but allows the bare pattern:
//!
//! ```
//! use herd_core::arch::Power;
//! use herd_core::event::Fence;
//! use herd_core::fixtures::{mp, Device};
//! use herd_core::model::check;
//!
//! let bare = mp(Device::None, Device::None);
//! assert!(check(&Power::new(), &bare).allowed());
//!
//! let fenced = mp(Device::Fence(Fence::Lwsync), Device::Addr);
//! assert!(!check(&Power::new(), &fenced).allowed());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arch;
pub mod arena;
pub mod consistency;
pub mod dot;
pub mod enumerate;
pub mod event;
pub mod exec;
pub mod faultpoint;
pub mod fingerprint;
pub mod fixtures;
pub mod glossary;
pub mod maskrow;
pub mod model;
pub mod ppo;
pub mod relation;
pub mod sched;
pub mod set;
pub mod thinair;
pub mod uniproc;

pub use event::{Dir, Event, Fence, Loc, ThreadId, Val};
pub use exec::{Deps, Execution, ExecutionError};
pub use model::{check, Architecture, Verdict};
pub use relation::Relation;
pub use set::EventSet;
