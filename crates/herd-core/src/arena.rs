//! Arena-backed relation storage: zero-allocation candidate checking.
//!
//! The streaming enumerators (paper, Sec 8.3) visit millions of candidate
//! executions, and every one of them needs a dozen derived relations
//! (`rf`, `co`, `fr`, `hb`, the axiom temporaries, ...). Owning each as a
//! fresh [`Relation`] pays one heap allocation per relation per candidate
//! — an allocator tax the paper's OCaml herd never modelled and the
//! dominant constant factor once pruning has cut the search space down.
//!
//! [`RelArena`] removes it: one bump-allocated pool of bit rows per
//! worker, sized by the universe of the current enumeration. Allocating a
//! relation is a pointer bump ([`RelArena::alloc`]); a checkpoint is an
//! offset ([`RelArena::mark`]); rolling a whole scope of temporaries back
//! is a single store ([`RelArena::release`]). After the first few
//! candidates have grown the pool to its high-water mark, the steady
//! state performs **zero** heap allocations per candidate — the property
//! the `herd-bench` allocation-counting smoke test pins down.
//!
//! Relations in the arena are addressed by copyable [`RelId`] handles and
//! read through borrowed [`RelView`]s. Every operator of the owned
//! [`Relation`] algebra has an in-arena twin (`union_into`, `seq_into`,
//! `tclosure_into`, ...), and operands are [`RelSrc`]: either another
//! arena slot or a borrowed external [`Relation`] — which is how the
//! compiled cat evaluator and the axiom checker consume [`ExecCore`]
//! builtins *in place* instead of cloning them.
//!
//! [`ExecCore`]: crate::exec::ExecCore

use crate::maskrow::{acyclic_masks, and_words, andnot_words, or_words, KahnScratch};
use crate::relation::Relation;
use crate::set::{words_for, EventSet};

/// A handle to one relation slot in a [`RelArena`].
///
/// Valid for the arena that produced it, until a [`RelArena::release`] to
/// a [`Mark`] taken before the slot's allocation (or a
/// [`RelArena::reset`]) retires it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RelId(u32);

/// A checkpoint of the arena's bump pointer; see [`RelArena::mark`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mark(u32);

/// An operand of an arena operation: a slot of the same arena, or a
/// borrowed external [`Relation`] (an [`ExecCore`] builtin, typically).
///
/// [`ExecCore`]: crate::exec::ExecCore
#[derive(Clone, Copy, Debug)]
pub enum RelSrc<'a> {
    /// A slot of the arena the operation runs on.
    Slot(RelId),
    /// A borrowed relation outside the arena (universe must match).
    Ext(&'a Relation),
}

impl From<RelId> for RelSrc<'_> {
    fn from(id: RelId) -> Self {
        RelSrc::Slot(id)
    }
}

impl<'a> From<&'a Relation> for RelSrc<'a> {
    fn from(r: &'a Relation) -> Self {
        RelSrc::Ext(r)
    }
}

/// A borrowed, read-only view of a relation (an arena slot or any
/// external row storage with the same layout as [`Relation`]).
#[derive(Clone, Copy)]
pub struct RelView<'a> {
    n: usize,
    wpr: usize,
    bits: &'a [u64],
}

impl<'a> RelView<'a> {
    /// Size of the event universe.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Does the relation contain `(a, b)`?
    #[inline]
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && self.bits[a * self.wpr + b / 64] >> (b % 64) & 1 == 1
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// One row as raw words.
    #[inline]
    pub fn row(&self, a: usize) -> &'a [u64] {
        &self.bits[a * self.wpr..(a + 1) * self.wpr]
    }

    /// Is row `a` devoid of successors?
    #[inline]
    pub fn row_is_empty(&self, a: usize) -> bool {
        self.row(a).iter().all(|&w| w == 0)
    }

    /// Iterates over all pairs `(a, b)`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + 'a {
        let (n, wpr, bits) = (self.n, self.wpr, self.bits);
        (0..n).flat_map(move |a| {
            (0..n)
                .filter(move |&b| bits[a * wpr + b / 64] >> (b % 64) & 1 == 1)
                .map(move |b| (a, b))
        })
    }

    /// Materialises an owned [`Relation`] (allocates; test/interop only).
    pub fn to_relation(&self) -> Relation {
        Relation::from_raw(self.n, self.bits.to_vec())
    }

    /// Bitwise equality against an owned relation of the same universe.
    pub fn eq_rel(&self, r: &Relation) -> bool {
        self.n == r.universe() && self.bits == r.bits()
    }
}

impl std::fmt::Debug for RelView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter_pairs()).finish()
    }
}

/// A bump-allocated pool of relation bit rows over one fixed universe.
///
/// See the [module docs](self) for the design. All slots have the same
/// shape (`n` rows of `words_for(n)` words); [`RelArena::reset`] retunes
/// the arena to a new universe while keeping the backing buffer, so one
/// arena serves a whole corpus of differently-sized tests without
/// reallocating once it has grown to the largest.
///
/// # Examples
///
/// ```
/// use herd_core::arena::RelArena;
/// use herd_core::relation::Relation;
///
/// let mut a = RelArena::new(3);
/// let base = a.mark();
/// let r = a.alloc();
/// a.add(r, 0, 1);
/// a.add(r, 1, 2);
/// let c = a.alloc();
/// a.tclosure_into(c, r);
/// assert!(a.view(c).contains(0, 2));
/// a.release(base); // both slots gone, zero frees
/// ```
pub struct RelArena {
    n: usize,
    wpr: usize,
    /// Words per slot (`n * wpr`).
    stride: usize,
    buf: Vec<u64>,
    /// Live slot count (the bump pointer, in slots).
    top: u32,
    /// Pooled row-index scratch for the blocked `seq_into` /
    /// `tclosure_into` composition loops.
    idx: Vec<u32>,
    /// Pooled Kahn scratch for `is_acyclic` beyond 64 events.
    kahn: KahnScratch,
    /// Largest `top * stride` ever reached (growth diagnostic).
    high_water: usize,
}

impl RelArena {
    /// An empty arena over a universe of `n` events.
    pub fn new(n: usize) -> Self {
        let wpr = words_for(n);
        RelArena {
            n,
            wpr,
            stride: n * wpr,
            buf: Vec::new(),
            top: 0,
            idx: Vec::new(),
            kahn: KahnScratch::new(),
            high_water: 0,
        }
    }

    /// Retunes the arena to universe `n` and drops every slot. The
    /// backing buffer is kept, so no reallocation happens unless the new
    /// workload's high-water mark exceeds every previous one.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.wpr = words_for(n);
        self.stride = n * self.wpr;
        self.top = 0;
        self.idx.clear();
    }

    /// Size of the event universe.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of live slots.
    pub fn live(&self) -> usize {
        self.top as usize
    }

    /// Largest number of words the arena has ever held live — the
    /// steady-state footprint the pool converges to.
    pub fn high_water_words(&self) -> usize {
        self.high_water
    }

    /// Checkpoints the bump pointer. Slots allocated after the mark are
    /// retired wholesale by [`RelArena::release`].
    #[inline]
    pub fn mark(&self) -> Mark {
        Mark(self.top)
    }

    /// Rolls back to `m`, retiring every slot allocated since — O(1), no
    /// frees, no zeroing (allocation re-zeroes on reuse).
    ///
    /// # Panics
    ///
    /// Panics if `m` is ahead of the current bump pointer (a stale mark
    /// from before a later release).
    #[inline]
    pub fn release(&mut self, m: Mark) {
        assert!(m.0 <= self.top, "stale arena mark");
        self.top = m.0;
    }

    /// Allocates a zeroed slot.
    pub fn alloc(&mut self) -> RelId {
        let id = RelId(self.top);
        self.top += 1;
        let end = self.top as usize * self.stride;
        if end > self.buf.len() {
            self.buf.resize(end, 0);
        }
        // Unconditional: after a cross-universe `reset` a slot can
        // straddle the old buffer length, so the resize above (which only
        // zeroes *new* words) is not enough to clear recycled storage.
        self.buf[end - self.stride..end].fill(0);
        self.high_water = self.high_water.max(end);
        id
    }

    /// Allocates a slot holding a copy of `src`.
    pub fn alloc_from<'a>(&mut self, src: impl Into<RelSrc<'a>>) -> RelId {
        let id = self.alloc();
        self.copy_into(id, src);
        id
    }

    #[inline]
    fn off(&self, id: RelId) -> usize {
        debug_assert!(id.0 < self.top, "retired arena slot used");
        id.0 as usize * self.stride
    }

    #[inline]
    fn slot(&self, id: RelId) -> &[u64] {
        let o = self.off(id);
        &self.buf[o..o + self.stride]
    }

    #[inline]
    fn slot_mut(&mut self, id: RelId) -> &mut [u64] {
        let o = self.off(id);
        &mut self.buf[o..o + self.stride]
    }

    /// Two disjoint slots: `dst` mutable, `src` shared.
    fn two_slots(&mut self, dst: RelId, src: RelId) -> (&mut [u64], &[u64]) {
        assert_ne!(dst, src, "aliasing arena operands");
        let (d0, s0, st) = (self.off(dst), self.off(src), self.stride);
        if d0 > s0 {
            let (lo, hi) = self.buf.split_at_mut(d0);
            (&mut hi[..st], &lo[s0..s0 + st])
        } else {
            let (lo, hi) = self.buf.split_at_mut(s0);
            (&mut lo[d0..d0 + st], &hi[..st])
        }
    }

    fn check_ext(&self, r: &Relation) {
        assert_eq!(r.universe(), self.n, "external operand universe mismatch");
    }

    /// A read-only view of a slot.
    #[inline]
    pub fn view(&self, id: RelId) -> RelView<'_> {
        RelView { n: self.n, wpr: self.wpr, bits: self.slot(id) }
    }

    /// Resolves any source to a view.
    pub fn view_of<'s, 'a: 's>(&'s self, src: impl Into<RelSrc<'a>>) -> RelView<'s> {
        match src.into() {
            RelSrc::Slot(id) => self.view(id),
            RelSrc::Ext(r) => {
                self.check_ext(r);
                RelView { n: self.n, wpr: self.wpr, bits: r.bits() }
            }
        }
    }

    /// Materialises a source as an owned [`Relation`] (allocates).
    pub fn to_relation<'a>(&self, src: impl Into<RelSrc<'a>>) -> Relation {
        self.view_of(src).to_relation()
    }

    /// Zeroes a slot.
    pub fn clear(&mut self, dst: RelId) {
        self.slot_mut(dst).fill(0);
    }

    /// Adds the pair `(a, b)` to a slot.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is outside the universe.
    #[inline]
    pub fn add(&mut self, dst: RelId, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "pair ({a},{b}) out of universe {}", self.n);
        let (o, wpr) = (self.off(dst), self.wpr);
        self.buf[o + a * wpr + b / 64] |= 1u64 << (b % 64);
    }

    /// Copies `src` into `dst` (`dst = src`).
    pub fn copy_into<'a>(&mut self, dst: RelId, src: impl Into<RelSrc<'a>>) {
        match src.into() {
            RelSrc::Slot(s) => {
                if s == dst {
                    return;
                }
                let (d, s) = self.two_slots(dst, s);
                d.copy_from_slice(s);
            }
            RelSrc::Ext(r) => {
                self.check_ext(r);
                self.slot_mut(dst).copy_from_slice(r.bits());
            }
        }
    }

    /// `dst |= src`.
    pub fn union_into<'a>(&mut self, dst: RelId, src: impl Into<RelSrc<'a>>) {
        match src.into() {
            RelSrc::Slot(s) => {
                if s == dst {
                    return;
                }
                let (d, s) = self.two_slots(dst, s);
                or_words(d, s);
            }
            RelSrc::Ext(r) => {
                self.check_ext(r);
                or_words(self.slot_mut(dst), r.bits());
            }
        }
    }

    /// `dst &= src`.
    pub fn intersect_into<'a>(&mut self, dst: RelId, src: impl Into<RelSrc<'a>>) {
        match src.into() {
            RelSrc::Slot(s) => {
                if s == dst {
                    return;
                }
                let (d, s) = self.two_slots(dst, s);
                and_words(d, s);
            }
            RelSrc::Ext(r) => {
                self.check_ext(r);
                and_words(self.slot_mut(dst), r.bits());
            }
        }
    }

    /// `dst \= src` (difference in place).
    pub fn minus_into<'a>(&mut self, dst: RelId, src: impl Into<RelSrc<'a>>) {
        match src.into() {
            RelSrc::Slot(s) => {
                if s == dst {
                    self.clear(dst);
                    return;
                }
                let (d, s) = self.two_slots(dst, s);
                andnot_words(d, s);
            }
            RelSrc::Ext(r) => {
                self.check_ext(r);
                andnot_words(self.slot_mut(dst), r.bits());
            }
        }
    }

    /// Adds the identity diagonal to `dst` (`dst |= id`).
    pub fn union_id(&mut self, dst: RelId) {
        let (o, wpr) = (self.off(dst), self.wpr);
        for i in 0..self.n {
            self.buf[o + i * wpr + i / 64] |= 1u64 << (i % 64);
        }
    }

    /// `dst = a; b` (relational composition). `dst` must alias neither
    /// operand slot.
    ///
    /// Blocked over [`crate::maskrow`]-style 4-word column chunks: per
    /// source row, the successors `j ∈ a(i)` are gathered once into the
    /// pooled index scratch, then each chunk of `dst`'s row accumulates
    /// the matching chunks of all `b(j)` rows in registers before a
    /// single store — one pass over `b`'s rows per chunk instead of one
    /// full-row OR per successor, which is what keeps wide universes
    /// (beyond the 64-event single-word case) in cache.
    pub fn seq_into<'a, 'b>(
        &mut self,
        dst: RelId,
        a: impl Into<RelSrc<'a>>,
        b: impl Into<RelSrc<'b>>,
    ) {
        let a = a.into();
        let b = b.into();
        for s in [&a, &b] {
            match s {
                RelSrc::Slot(id) => assert_ne!(*id, dst, "seq_into destination aliases an operand"),
                RelSrc::Ext(r) => self.check_ext(r),
            }
        }
        self.clear(dst);
        let (n, wpr) = (self.n, self.wpr);
        let d0 = self.off(dst);
        let a_off = match a {
            RelSrc::Slot(id) => Some(self.off(id)),
            RelSrc::Ext(_) => None,
        };
        let b_off = match b {
            RelSrc::Slot(id) => Some(self.off(id)),
            RelSrc::Ext(_) => None,
        };
        let mut idx = std::mem::take(&mut self.idx);
        for i in 0..n {
            // Gather the successor indices of a's row i once; the chunk
            // loop below then re-reads b freely (a and b never change —
            // both are distinct from dst).
            idx.clear();
            let arow: &[u64] = match (a_off, &a) {
                (Some(o), _) => &self.buf[o + i * wpr..o + (i + 1) * wpr],
                (None, RelSrc::Ext(r)) => &r.bits()[i * wpr..(i + 1) * wpr],
                _ => unreachable!(),
            };
            for (w, &word0) in arow.iter().enumerate() {
                let mut word = word0;
                while word != 0 {
                    idx.push((w * 64 + word.trailing_zeros() as usize) as u32);
                    word &= word - 1;
                }
            }
            if idx.is_empty() {
                continue;
            }
            let drow = d0 + i * wpr;
            let mut cb = 0;
            while cb < wpr {
                let bw = (wpr - cb).min(4);
                let mut acc = [0u64; 4];
                match (b_off, &b) {
                    (Some(o), _) => {
                        for &j in &idx {
                            let base = o + j as usize * wpr + cb;
                            for (t, a) in acc.iter_mut().enumerate().take(bw) {
                                *a |= self.buf[base + t];
                            }
                        }
                    }
                    (None, RelSrc::Ext(r)) => {
                        let bits = r.bits();
                        for &j in &idx {
                            let base = j as usize * wpr + cb;
                            for (t, a) in acc.iter_mut().enumerate().take(bw) {
                                *a |= bits[base + t];
                            }
                        }
                    }
                    _ => unreachable!(),
                }
                for (t, &a) in acc.iter().enumerate().take(bw) {
                    self.buf[drow + cb + t] |= a;
                }
                cb += 4;
            }
        }
        self.idx = idx;
    }

    /// `dst = src⁻¹` (transpose). `dst` must not alias the operand slot.
    pub fn transpose_into<'a>(&mut self, dst: RelId, src: impl Into<RelSrc<'a>>) {
        let src = src.into();
        if let RelSrc::Slot(id) = src {
            assert_ne!(id, dst, "transpose_into destination aliases the operand");
        }
        if let RelSrc::Ext(r) = src {
            self.check_ext(r);
        }
        self.clear(dst);
        let (n, wpr) = (self.n, self.wpr);
        let d0 = self.off(dst);
        let s_off = match src {
            RelSrc::Slot(id) => Some(self.off(id)),
            RelSrc::Ext(_) => None,
        };
        for i in 0..n {
            for w in 0..wpr {
                let mut word = match (s_off, &src) {
                    (Some(o), _) => self.buf[o + i * wpr + w],
                    (None, RelSrc::Ext(r)) => r.bits()[i * wpr + w],
                    _ => unreachable!(),
                };
                while word != 0 {
                    let j = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.buf[d0 + j * wpr + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
    }

    /// `dst = src⁺` (transitive closure, Warshall over bit rows in place).
    ///
    /// Blocked like [`RelArena::seq_into`]: per pivot `k`, the rows that
    /// reach `k` are gathered once — the set is fixed for the whole
    /// iteration, since row `k` itself is excluded and a row only joins
    /// by already having bit `k` — then row `k` is OR-ed into all of them
    /// one 4-word column chunk at a time, keeping the pivot row's chunk
    /// in registers across the member rows.
    pub fn tclosure_into<'a>(&mut self, dst: RelId, src: impl Into<RelSrc<'a>>) {
        self.copy_into(dst, src);
        let (n, wpr) = (self.n, self.wpr);
        let d0 = self.off(dst);
        let mut idx = std::mem::take(&mut self.idx);
        for k in 0..n {
            idx.clear();
            let (kw, kb) = (k / 64, 1u64 << (k % 64));
            for i in 0..n {
                if i != k && self.buf[d0 + i * wpr + kw] & kb != 0 {
                    idx.push(i as u32);
                }
            }
            if idx.is_empty() {
                continue;
            }
            let k0 = d0 + k * wpr;
            let mut cb = 0;
            while cb < wpr {
                let bw = (wpr - cb).min(4);
                let mut acc = [0u64; 4];
                for (t, a) in acc.iter_mut().enumerate().take(bw) {
                    *a = self.buf[k0 + cb + t];
                }
                for &i in &idx {
                    let base = d0 + i as usize * wpr + cb;
                    for (t, &a) in acc.iter().enumerate().take(bw) {
                        self.buf[base + t] |= a;
                    }
                }
                cb += 4;
            }
        }
        self.idx = idx;
    }

    /// `dst = src*` (reflexive-transitive closure).
    pub fn rtclosure_into<'a>(&mut self, dst: RelId, src: impl Into<RelSrc<'a>>) {
        self.tclosure_into(dst, src);
        self.union_id(dst);
    }

    /// `dst = src` restricted to pairs with source in `srcs` and target in
    /// `dsts` — the arena twin of [`Relation::restrict`].
    pub fn restrict_into<'a>(
        &mut self,
        dst: RelId,
        src: impl Into<RelSrc<'a>>,
        srcs: &EventSet,
        dsts: &EventSet,
    ) {
        assert_eq!(srcs.universe(), self.n, "source-set universe mismatch");
        assert_eq!(dsts.universe(), self.n, "target-set universe mismatch");
        let src = src.into();
        if let RelSrc::Ext(r) = src {
            self.check_ext(r);
        }
        self.clear(dst);
        let wpr = self.wpr;
        let d0 = self.off(dst);
        let s_off = match src {
            RelSrc::Slot(id) => {
                assert_ne!(id, dst, "restrict_into destination aliases the operand");
                Some(self.off(id))
            }
            RelSrc::Ext(_) => None,
        };
        for a in srcs.iter() {
            for w in 0..wpr {
                let mask = dsts.words()[w];
                let v = match (s_off, &src) {
                    (Some(o), _) => self.buf[o + a * wpr + w],
                    (None, RelSrc::Ext(r)) => r.bits()[a * wpr + w],
                    _ => unreachable!(),
                };
                self.buf[d0 + a * wpr + w] = v & mask;
            }
        }
    }

    /// Is the source relation empty?
    pub fn is_empty<'a>(&self, src: impl Into<RelSrc<'a>>) -> bool {
        self.view_of(src).is_empty()
    }

    /// Is the source relation irreflexive?
    pub fn is_irreflexive<'a>(&self, src: impl Into<RelSrc<'a>>) -> bool {
        let v = self.view_of(src);
        (0..self.n).all(|i| !v.contains(i, i))
    }

    /// Is the source relation acyclic?
    ///
    /// Universes of at most 64 events (every litmus-scale candidate) run
    /// a stack-only Kahn elimination over successor masks; larger ones
    /// run the same elimination over multi-word rows through the arena's
    /// pooled [`KahnScratch`] — O(rounds · n²/64) on the direct adjacency,
    /// with no transitive closure and no temporary slot.
    pub fn is_acyclic<'a>(&mut self, src: impl Into<RelSrc<'a>>) -> bool {
        let src = src.into();
        if self.n <= 64 {
            let v = self.view_of(src);
            let mut adj = [0u64; 64];
            for (i, a) in adj.iter_mut().enumerate().take(self.n) {
                *a = if self.wpr == 0 { 0 } else { v.row(i)[0] };
            }
            return acyclic_masks(&adj[..self.n]);
        }
        let mut kahn = std::mem::take(&mut self.kahn);
        let v = self.view_of(src);
        let ok = kahn.is_acyclic_rows(v.bits, v.n, v.wpr);
        self.kahn = kahn;
        ok
    }

    /// Bitwise equality of two sources.
    pub fn eq<'a, 'b>(&self, a: impl Into<RelSrc<'a>>, b: impl Into<RelSrc<'b>>) -> bool {
        self.view_of(a).bits == self.view_of(b).bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(n: usize, pairs: &[(usize, usize)]) -> Relation {
        Relation::from_pairs(n, pairs.iter().copied())
    }

    #[test]
    fn alloc_add_view_roundtrip() {
        let mut a = RelArena::new(70);
        let r = a.alloc();
        a.add(r, 0, 69);
        a.add(r, 69, 64);
        assert!(a.view(r).contains(0, 69) && a.view(r).contains(69, 64));
        assert_eq!(a.view(r).len(), 2);
        assert_eq!(a.to_relation(r), owned(70, &[(0, 69), (69, 64)]));
    }

    #[test]
    fn ops_match_owned_algebra() {
        let n = 9;
        let x = owned(n, &[(0, 1), (1, 2), (3, 4), (8, 0)]);
        let y = owned(n, &[(1, 2), (2, 3), (4, 5)]);
        let mut a = RelArena::new(n);
        let xs = a.alloc_from(&x);
        let ys = a.alloc_from(&y);

        let u = a.alloc_from(xs);
        a.union_into(u, ys);
        assert_eq!(a.to_relation(u), x.union(&y));

        let i = a.alloc_from(xs);
        a.intersect_into(i, &y);
        assert_eq!(a.to_relation(i), x.intersect(&y));

        let d = a.alloc_from(&x);
        a.minus_into(d, ys);
        assert_eq!(a.to_relation(d), x.minus(&y));

        let s = a.alloc();
        a.seq_into(s, xs, ys);
        assert_eq!(a.to_relation(s), x.seq(&y));

        let t = a.alloc();
        a.transpose_into(t, xs);
        assert_eq!(a.to_relation(t), x.transpose());

        let c = a.alloc();
        a.tclosure_into(c, xs);
        assert_eq!(a.to_relation(c), x.tclosure());

        let rc = a.alloc();
        a.rtclosure_into(rc, &x);
        assert_eq!(a.to_relation(rc), x.rtclosure());
    }

    #[test]
    fn seq_mixes_slot_and_ext_operands() {
        let n = 6;
        let x = owned(n, &[(0, 1), (2, 3)]);
        let y = owned(n, &[(1, 4), (3, 5)]);
        let mut a = RelArena::new(n);
        let xs = a.alloc_from(&x);
        let d1 = a.alloc();
        a.seq_into(d1, xs, &y);
        let d2 = a.alloc();
        a.seq_into(d2, &x, &y);
        assert_eq!(a.to_relation(d1), x.seq(&y));
        assert!(a.eq(d1, d2));
    }

    #[test]
    fn acyclicity_and_irreflexivity() {
        let mut a = RelArena::new(4);
        let r = a.alloc();
        a.add(r, 0, 1);
        a.add(r, 1, 2);
        assert!(a.is_acyclic(r));
        assert!(a.is_irreflexive(r));
        a.add(r, 2, 0);
        assert!(!a.is_acyclic(r));
        assert!(a.is_irreflexive(r), "cyclic but not reflexive");
        // Matches the owned algebra on a >64 universe (closure fallback).
        let n = 70;
        let x = owned(n, &[(0, 65), (65, 69), (69, 0), (1, 2)]);
        let mut big = RelArena::new(n);
        let xs = big.alloc_from(&x);
        assert_eq!(big.is_acyclic(xs), x.is_acyclic());
        assert!(!big.is_acyclic(xs));
    }

    #[test]
    fn restrict_matches_owned() {
        let n = 5;
        let x = Relation::full(n);
        let srcs = EventSet::from_indices(n, [0, 1]);
        let dsts = EventSet::from_indices(n, [3]);
        let mut a = RelArena::new(n);
        let d = a.alloc();
        a.restrict_into(d, &x, &srcs, &dsts);
        assert_eq!(a.to_relation(d), x.restrict(&srcs, &dsts));
    }

    #[test]
    fn mark_release_reuses_storage() {
        let mut a = RelArena::new(8);
        let keep = a.alloc();
        a.add(keep, 1, 2);
        let m = a.mark();
        for _ in 0..10 {
            let t = a.alloc();
            a.add(t, 0, 7);
        }
        let grown = a.high_water_words();
        a.release(m);
        assert_eq!(a.live(), 1);
        // Re-allocating after release must not grow the pool...
        for _ in 0..10 {
            let t = a.alloc();
            // ...and must hand back zeroed rows despite the old contents.
            assert!(a.view(t).is_empty());
        }
        assert_eq!(a.high_water_words(), grown);
        assert!(a.view(keep).contains(1, 2), "slots below the mark survive");
    }

    #[test]
    fn alloc_is_zeroed_when_a_slot_straddles_the_old_buffer_end() {
        // Warm on one universe, then retune to a stride that does not
        // divide the old buffer length: the first slot crossing the old
        // end must still come back fully zeroed (stale bits below the old
        // length would otherwise leak into the "fresh" relation).
        let mut a = RelArena::new(40);
        for _ in 0..4 {
            let r = a.alloc();
            for i in 0..40 {
                a.add(r, i, 39 - i);
            }
        }
        a.reset(30);
        for _ in 0..8 {
            let r = a.alloc();
            assert!(a.view(r).is_empty(), "stale bits leaked into a fresh slot");
            a.add(r, 29, 0);
        }
    }

    #[test]
    fn reset_keeps_capacity_across_universes() {
        let mut a = RelArena::new(64);
        for _ in 0..8 {
            a.alloc();
        }
        let hw = a.high_water_words();
        a.reset(16);
        assert_eq!(a.universe(), 16);
        assert_eq!(a.live(), 0);
        let r = a.alloc();
        a.add(r, 15, 0);
        assert!(a.view(r).contains(15, 0));
        assert_eq!(a.high_water_words(), hw, "smaller universe fits the old buffer");
    }

    #[test]
    #[should_panic(expected = "stale arena mark")]
    fn stale_mark_panics() {
        let mut a = RelArena::new(4);
        a.alloc();
        let m = a.mark();
        a.release(Mark(0));
        a.release(m);
    }
}
