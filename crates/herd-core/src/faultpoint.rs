//! Deterministic fault injection for the execution stack.
//!
//! The robustness contract of [`crate::sched`] — no wedge, no lost units,
//! no corrupted accounting under any single-point failure — is only worth
//! stating if it can be *exercised*. This module plants named fault
//! points on the hot path (unit claim, rf-scope arena refresh, co-menu
//! build, candidate check) that a test-controlled [`FaultPlan`] can trip
//! with a panic, a delay, or a spurious cancellation.
//!
//! Two properties make the harness usable:
//!
//! * **Zero cost when disabled.** Without the `fault-injection` cargo
//!   feature, [`hit`] is an empty `#[inline(always)]` function — the
//!   production engine carries no atomic loads, no locks, nothing.
//! * **Worker-count independence.** A plan triggers on the *identity* of
//!   the work (the unit index, the rf-configuration linear index, the
//!   `(configuration, coherence-ordinal)` pair — see [`config_key`] and
//!   [`candidate_key`]), never on hit order. Hit order depends on thread
//!   scheduling; identities do not, so an injected fault lands on the
//!   same logical work whether 1 or 16 workers run — which is exactly
//!   what lets the `robustness` suite pin salvage behaviour across
//!   worker counts.
//!
//! A plan fires **once** (single-point failure): after triggering it
//! disarms itself, so salvage paths that revisit the same work — e.g.
//! the scheduler re-measuring a poisoned unit's remaining space — do not
//! re-trip it.

use std::time::Duration;

/// Named instrumentation points on the execution stack's hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// A worker claimed a work unit from the stealing cursor
    /// ([`crate::sched::execute_units`]); key = unit index.
    UnitClaim,
    /// The engine is about to refresh an rf-scope's arena slots
    /// (`derive_rf`); key = [`config_key`] of the rf configuration.
    ArenaCheckpoint,
    /// The engine is about to build one rf configuration's surviving
    /// coherence menus; key = [`config_key`] of the rf configuration.
    CoMenuBuild,
    /// The engine is about to check one candidate; key =
    /// [`candidate_key`] of the `(configuration, ordinal)` pair.
    CandidateCheck,
}

/// What an armed fault does when its point and key match.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Panic with a `"faultpoint: ..."` string payload (suppressed by the
    /// quiet panic hook the install guard sets, so intentional faults do
    /// not spray backtraces over test output).
    Panic,
    /// Sleep for the given duration — a straggler, not a failure.
    Delay(Duration),
    /// Trip the given cancel token — a spurious external cancellation.
    Cancel(crate::sched::CancelToken),
}

/// One armed fault: fires once when `hit(point, key)` matches.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The instrumentation point to trip.
    pub point: FaultPoint,
    /// The deterministic work identity to trip on (see [`FaultPoint`] for
    /// each point's key derivation).
    pub key: u64,
    /// What happens on the (first) matching hit.
    pub action: FaultAction,
}

/// The key of an rf-configuration-level fault point: the configuration's
/// linear rf-odometer index, truncated to `u64` (litmus-scale rf spaces
/// fit with room to spare).
pub fn config_key(pos: u128) -> u64 {
    pos as u64
}

/// The key of a candidate-level fault point: a deterministic fold of the
/// rf configuration's linear index and the candidate's coherence-menu
/// ordinal within it.
pub fn candidate_key(pos: u128, ordinal: u128) -> u64 {
    (pos as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (ordinal as u64)
}

/// Reports a hit of `point` with deterministic identity `key`. Compiled
/// to nothing without the `fault-injection` feature; with it, triggers
/// the installed [`FaultPlan`] when point and key match (once).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn hit(_point: FaultPoint, _key: u64) {}

#[cfg(feature = "fault-injection")]
mod armed {
    use super::{FaultAction, FaultPlan, FaultPoint};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Fast-path arm flag: `hit` is one relaxed load when no plan is
    /// installed (the common case even in fault-injection builds).
    static ARMED: AtomicBool = AtomicBool::new(false);
    static PLAN: Mutex<Option<Active>> = Mutex::new(None);
    /// Serialises tests that install plans: the harness state is global,
    /// so two concurrently-installed plans would race.
    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    struct Active {
        plan: FaultPlan,
        fired: bool,
    }

    fn plan_lock() -> MutexGuard<'static, Option<Active>> {
        PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// RAII handle for an installed plan: holds the global test-exclusivity
    /// lock and disarms the harness on drop.
    pub struct FaultGuard {
        _exclusive: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            ARMED.store(false, Ordering::SeqCst);
            *plan_lock() = None;
        }
    }

    /// Installs the process-wide quiet panic hook once: injected
    /// `"faultpoint: ..."` panics are intentional, so their backtraces
    /// are suppressed; every other panic still reaches the prior hook.
    fn quiet_hook() {
        static ONCE: OnceLock<()> = OnceLock::new();
        ONCE.get_or_init(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("faultpoint:"));
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    /// Arms `plan` for the whole process until the returned guard drops.
    /// Takes the global exclusivity lock, so concurrent installs (e.g.
    /// parallel `#[test]`s) serialise instead of racing.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        let exclusive = EXCLUSIVE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        quiet_hook();
        *plan_lock() = Some(Active { plan, fired: false });
        ARMED.store(true, Ordering::SeqCst);
        FaultGuard { _exclusive: exclusive }
    }

    /// The armed implementation of [`super::hit`]: fires the installed
    /// plan's action on the first matching `(point, key)`.
    pub fn hit(point: FaultPoint, key: u64) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let action = {
            let mut guard = plan_lock();
            match guard.as_mut() {
                Some(a) if !a.fired && a.plan.point == point && a.plan.key == key => {
                    a.fired = true;
                    a.plan.action.clone()
                }
                _ => return,
            }
        };
        match action {
            FaultAction::Panic => {
                panic!("faultpoint: injected panic at {point:?} key {key}")
            }
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Cancel(token) => token.cancel(),
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{hit, install, FaultGuard};
