//! Polynomial single-execution consistency: one witness instead of all.
//!
//! The enumeration engine answers "is this outcome allowed?" by walking
//! every surviving (rf, co) witness. But with the read-from map fixed,
//! the remaining question — *does some coherence order make this
//! execution consistent?* — is polynomial for the SC/TSO-class instances
//! ("How Hard is Weak-Memory Testing?", PAPERS.md): their axioms are
//! monotone in `co`, so coherence can be *placed* by saturation instead
//! of permuted.
//!
//! [`co_exists`] implements that placement. Starting from the edges every
//! valid coherence order must contain (the initial write first, the
//! static `po-loc` write pairs of SC PER LOCATION, and any co-maximal
//! writes the queried outcome pins), it repeatedly tests each unordered
//! same-location write pair in both directions against the four axioms
//! *with the partial order so far*. Monotonicity makes a violation
//! definitive for every extension, so a violating direction forces the
//! opposite edge; both directions violating is a contradiction — the
//! query is forbidden, no enumeration needed. At the fixpoint the partial
//! order is completed greedily (a per-location topological
//! linearisation) and the full four-axiom check either certifies the
//! witness or sends the query to a **counted** fallback that enumerates
//! the remaining linear extensions — saturation is never silently wrong,
//! merely incomplete, and [`ConsistencyStats`] records every time it
//! gives up. Models beyond the vouched-for frontier
//! ([`Tractability::Frontier`]) skip saturation and go straight to the
//! counted fallback.
//!
//! [`Tractability::Conditional`] models (Power/ARM) sit in between:
//! their ppo is candidate-dependent, but *frozen* to any fixed bound the
//! remaining axioms are monotone in `co` again. Saturation therefore runs
//! against a two-sided [`PpoEnvelope`] (`lower ⊆ ppo(x) ⊆ upper` for
//! every candidate): a contradiction under the pessimistic lower bound is
//! definitively forbidden (the exact model has *more* ppo edges, so the
//! violating cycle persists), hypothesis edges forced under the lower
//! bound are constraints every exact witness obeys, and any completed
//! coherence order — found under either bound — that re-checks clean
//! under the exact per-candidate ppo is definitively allowed. Only when
//! the envelope genuinely disagrees (lower finds no contradiction, upper
//! guides to no exact-clean witness) does the query take the counted
//! fallback, recorded per query in
//! [`ConsistencyStats::envelope_fallbacks`].
//!
//! Everything runs on the arena engine: relations live in [`RelArena`]
//! slots, candidates are checked as borrowed [`ExecFrame`]s through
//! [`ArenaChecker`], and a query performs no per-hypothesis heap
//! allocation once the arena is warm.

use crate::arena::{RelArena, RelId};
use crate::enumerate::{build_co_arena, HeapPerm};
use crate::event::{Dir, Event, Loc};
use crate::exec::{ExecCore, ExecFrame, ExecRels};
use crate::model::{Architecture, ArenaChecker, Tractability};
use crate::ppo::PpoEnvelope;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Counters of one or many [`co_exists`] queries. The `fallbacks` /
/// `fallback_candidates` pair is the honesty contract: whenever
/// saturation cannot decide a query by itself, the enumeration fallback
/// is recorded here — degradation is visible, never silent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConsistencyStats {
    /// Queries answered.
    pub queries: usize,
    /// Queries decided *forbidden* during saturation: some write pair
    /// violates the axioms in both directions, so no coherence order
    /// exists (a definitive answer by monotonicity).
    pub contradictions: usize,
    /// Queries decided *allowed* by the greedy single witness.
    pub witnesses: usize,
    /// Queries the saturation fixpoint could not decide — answered
    /// exactly by enumerating the remaining linear extensions.
    pub fallbacks: usize,
    /// Coherence choices the fallback actually checked, across queries.
    pub fallback_candidates: u128,
    /// [`Tractability::Conditional`] queries the ppo envelope decided
    /// definitively (either direction) — also counted in
    /// `contradictions`/`witnesses`, never in `fallbacks`.
    pub conditional_definitive: usize,
    /// [`Tractability::Conditional`] queries where the envelope genuinely
    /// disagreed — each also counts once in `fallbacks`.
    pub envelope_fallbacks: usize,
}

impl ConsistencyStats {
    /// Folds another stats block into this one.
    pub fn absorb(&mut self, o: &ConsistencyStats) {
        self.queries += o.queries;
        self.contradictions += o.contradictions;
        self.witnesses += o.witnesses;
        self.fallbacks += o.fallbacks;
        self.fallback_candidates += o.fallback_candidates;
        self.conditional_definitive += o.conditional_definitive;
        self.envelope_fallbacks += o.envelope_fallbacks;
    }
}

/// One single-execution consistency query: a value-concretised event list
/// over a shared core, a fixed read-from map, and (optionally) the writes
/// an outcome requires to be coherence-maximal.
#[derive(Clone, Copy, Debug)]
pub struct CoQuery<'a> {
    /// The skeleton-invariant core (po, deps, fences).
    pub core: &'a Arc<ExecCore>,
    /// Events with concrete values, indexed by id.
    pub events: &'a [Event],
    /// Read-from edges `(write, read)`, one per read event.
    pub rf: &'a [(usize, usize)],
    /// Per-location co-maximal write required by the queried outcome
    /// (final memory pins the last write); empty leaves final memory
    /// unconstrained.
    pub last_writes: &'a [(Loc, usize)],
}

/// Per-location write layout of a query: the initial write (if the
/// location has one) and the thread writes, gathered once per query.
struct LocWrites {
    loc: Loc,
    init: Option<usize>,
    writes: Vec<usize>,
}

fn loc_writes(events: &[Event]) -> Vec<LocWrites> {
    let mut by_loc: BTreeMap<Loc, LocWrites> = BTreeMap::new();
    for e in events {
        if e.dir != Dir::W {
            continue;
        }
        let entry = by_loc.entry(e.loc).or_insert_with(|| LocWrites {
            loc: e.loc,
            init: None,
            writes: Vec::new(),
        });
        if e.thread.is_none() {
            entry.init = Some(e.id);
        } else {
            entry.writes.push(e.id);
        }
    }
    by_loc.into_values().collect()
}

/// Does some coherence order make this rf-fixed execution satisfy all
/// four axioms of `arch` (and respect the queried co-maximal writes)?
///
/// Decided by saturation for models vouching for
/// [`Tractability::Polynomial`], by envelope saturation plus exact
/// re-validation for [`Tractability::Conditional`] ones, and by counted
/// enumeration otherwise — all paths agree exactly; only the cost
/// differs. `arena` is scratch space reused across queries (it is reset
/// to the query's universe).
pub fn co_exists<A: Architecture + ?Sized>(
    arch: &A,
    q: &CoQuery<'_>,
    arena: &mut RelArena,
    stats: &mut ConsistencyStats,
) -> bool {
    co_exists_with_envelope(arch, q, None, arena, stats)
}

/// [`co_exists`] with a caller-supplied ppo envelope for
/// [`Tractability::Conditional`] models. The envelope depends only on
/// the query's core and the architecture, so batch drivers
/// (`herd_litmus::decide::decide_log`) compute it once per screened rf
/// class and reuse it across every query on that class; `None` computes
/// it on the fly (and is ignored entirely by non-`Conditional` models).
pub fn co_exists_with_envelope<A: Architecture + ?Sized>(
    arch: &A,
    q: &CoQuery<'_>,
    envelope: Option<&PpoEnvelope>,
    arena: &mut RelArena,
    stats: &mut ConsistencyStats,
) -> bool {
    stats.queries += 1;
    let core = q.core.as_ref();
    let n = q.events.len();
    arena.reset(n);
    let rels = ExecRels::alloc(arena);
    arena.clear(rels.rf);
    for &(w, r) in q.rf {
        arena.add(rels.rf, w, r);
    }
    rels.derive_rf(core, arena);
    let checker = ArenaChecker::new(arch, core);
    let locs = loc_writes(q.events);

    let mode = arch.tractability();
    // A `Conditional` model must vouch for an envelope; a missing one
    // (contract violation) degrades to the frontier fallback — slower,
    // never unsound.
    let owned_env = match (mode, &envelope) {
        (Tractability::Conditional, None) => arch.ppo_envelope(core),
        _ => None,
    };
    let env = match mode {
        Tractability::Conditional => envelope.or(owned_env.as_ref()),
        _ => None,
    };
    let saturating = mode == Tractability::Polynomial || env.is_some();

    // The partial coherence order every valid witness must extend,
    // kept transitively closed throughout.
    let forced = arena.alloc();
    arena.clear(forced);
    for lw in &locs {
        if let Some(init) = lw.init {
            for &w in &lw.writes {
                arena.add(forced, init, w);
            }
        }
    }
    for &(loc, last) in q.last_writes {
        if let Some(lw) = locs.iter().find(|lw| lw.loc == loc) {
            for &w in lw.writes.iter().chain(lw.init.iter()) {
                if w != last {
                    arena.add(forced, w, last);
                }
            }
        }
    }

    if saturating {
        // SC PER LOCATION forces co to agree with the architecture's
        // static po-loc on same-location write pairs: orienting co
        // against such a pair closes a 2-cycle in `po-loc ∪ com`.
        let po_loc = arch.sc_per_location_po_loc_static(core);
        for (a, b) in po_loc.iter_pairs() {
            if q.events[a].dir == Dir::W
                && q.events[b].dir == Dir::W
                && q.events[a].loc == q.events[b].loc
            {
                arena.add(forced, a, b);
            }
        }
    }
    close(arena, forced);

    if mode == Tractability::Polynomial {
        // Exact saturation: the per-candidate relations are themselves
        // monotone in co, so every probe checks the exact model.
        match saturate(arch, &checker, q, &rels, arena, forced, &locs, None) {
            SatResult::Contradiction => {
                stats.contradictions += 1;
                return false;
            }
            SatResult::Fixpoint => {}
        }
        if greedy_complete(arena, &rels, forced, &locs) {
            rels.derive_co(core, arena);
            let fx = ExecFrame { core: q.core, events: q.events, rels: &rels };
            if checker.check(arch, &fx, arena).allowed() {
                stats.witnesses += 1;
                return true;
            }
        }
        // Saturation incomplete: the greedy witness failed (independent
        // pair orientations interact) — fall back, counted.
    } else if let Some(env) = env {
        let lower = arena.alloc_from(&env.lower);

        // Pessimistic pass: with ppo frozen to the lower bound every
        // violation is definitive for the exact model too (exact ppo ⊇
        // lower only adds hb/prop edges, so the violating cycle
        // persists) — a contradiction is definitively forbidden, and the
        // forced edges are constraints every exact witness obeys.
        match saturate(arch, &checker, q, &rels, arena, forced, &locs, Some(lower)) {
            SatResult::Contradiction => {
                stats.contradictions += 1;
                stats.conditional_definitive += 1;
                return false;
            }
            SatResult::Fixpoint => {}
        }
        if greedy_complete(arena, &rels, forced, &locs) {
            rels.derive_co(core, arena);
            let fx = ExecFrame { core: q.core, events: q.events, rels: &rels };
            // A completed order is a real candidate: the *exact* check
            // decides it, bounds no longer needed.
            if checker.check(arch, &fx, arena).allowed() {
                stats.witnesses += 1;
                stats.conditional_definitive += 1;
                return true;
            }
        }

        // Optimistic pass, on a copy of the forced order (its forced
        // edges are only sound for upper-frozen witnesses, so they must
        // not leak into the fallback): saturating under the upper bound
        // steers the greedy completion toward an order passing the
        // *stricter* frozen model — and any such order passes the exact
        // model by monotonicity (exact ppo ⊆ upper). The exact re-check
        // below is what certifies the verdict either way. Only now does
        // the envelope's lazily-materialised upper fixpoint get paid —
        // queries the pessimistic pass settles never reach this line.
        let upper = arena.alloc_from(env.upper(core));
        let forced_up = arena.alloc_from(forced);
        if let SatResult::Fixpoint =
            saturate(arch, &checker, q, &rels, arena, forced_up, &locs, Some(upper))
        {
            if greedy_complete(arena, &rels, forced_up, &locs) {
                rels.derive_co(core, arena);
                let fx = ExecFrame { core: q.core, events: q.events, rels: &rels };
                if checker.check(arch, &fx, arena).allowed() {
                    stats.witnesses += 1;
                    stats.conditional_definitive += 1;
                    return true;
                }
            }
        }
        // The envelope genuinely disagreed: no lower contradiction, no
        // exact-clean witness under either bound's guidance.
        stats.envelope_fallbacks += 1;
    }

    stats.fallbacks += 1;
    fallback(arch, &checker, q, &rels, arena, forced, &locs, stats)
}

/// How one saturation pass ended.
enum SatResult {
    /// Some write pair violates in both orientations (or the seed itself
    /// violates): under the pass's (frozen or exact) relations, no total
    /// coherence order extending `forced` is consistent.
    Contradiction,
    /// The hypothesis fixpoint was reached without contradiction;
    /// `forced` has absorbed every forced orientation.
    Fixpoint,
}

/// The hypothesis loop of the polynomial side: tests every unordered
/// same-location write pair in both orientations against the axioms
/// (frozen to `frozen` when given, exact otherwise), forcing the
/// survivor of a one-sided violation, until nothing grows. Mutates
/// `forced` in place (kept transitively closed).
#[allow(clippy::too_many_arguments)] // the solver's single inner loop
fn saturate<A: Architecture + ?Sized>(
    arch: &A,
    checker: &ArenaChecker,
    q: &CoQuery<'_>,
    rels: &ExecRels,
    arena: &mut RelArena,
    forced: RelId,
    locs: &[LocWrites],
    frozen: Option<RelId>,
) -> SatResult {
    // Base check: the seed itself (plus the rf-only axioms, NO THIN
    // AIR included) may already be definitively violated.
    if violates(arch, checker, q, rels, arena, forced, frozen) {
        return SatResult::Contradiction;
    }
    loop {
        let mut grew = false;
        for lw in locs {
            for (i, &a) in lw.writes.iter().enumerate() {
                for &b in &lw.writes[i + 1..] {
                    let fv = arena.view(forced);
                    if fv.contains(a, b) || fv.contains(b, a) {
                        continue;
                    }
                    let ab_bad =
                        hypothesis_violates(arch, checker, q, rels, arena, forced, a, b, frozen);
                    let ba_bad =
                        hypothesis_violates(arch, checker, q, rels, arena, forced, b, a, frozen);
                    match (ab_bad, ba_bad) {
                        (true, true) => {
                            // Every total order contains one of the two
                            // edges and both are definitively violating.
                            return SatResult::Contradiction;
                        }
                        (true, false) => {
                            force(arena, forced, b, a);
                            grew = true;
                        }
                        (false, true) => {
                            force(arena, forced, a, b);
                            grew = true;
                        }
                        (false, false) => {}
                    }
                }
            }
        }
        if !grew {
            return SatResult::Fixpoint;
        }
        // New forced edges can combine into a definitive violation.
        if violates(arch, checker, q, rels, arena, forced, frozen) {
            return SatResult::Contradiction;
        }
    }
}

/// Greedy completion: per location, a topological linearisation of the
/// forced order (smallest event id first among the ready), built into
/// `rels.co`. False if `forced` is cyclic on some location's writes.
fn greedy_complete(
    arena: &mut RelArena,
    rels: &ExecRels,
    forced: RelId,
    locs: &[LocWrites],
) -> bool {
    arena.clear(rels.co);
    for lw in locs {
        match linearise(arena, forced, &lw.writes) {
            Some(order) => build_co_arena(arena, rels.co, lw.init, &order),
            None => return false,
        }
    }
    true
}

/// Transitively closes `rel` in place (through a scratch slot).
fn close(arena: &mut RelArena, rel: RelId) {
    let m = arena.mark();
    let t = arena.alloc_from(rel);
    arena.tclosure_into(rel, t);
    arena.release(m);
}

/// Adds `(a, b)` to the closed relation `rel`, restoring closure.
fn force(arena: &mut RelArena, rel: RelId, a: usize, b: usize) {
    arena.add(rel, a, b);
    close(arena, rel);
}

/// Do the four axioms reject this (possibly partial) coherence order?
/// With `frozen` the architecture's ppo is pinned to that bound
/// ([`ArenaChecker::check_frozen`]); either way, for relations monotone
/// in `co` a `true` here is definitive for every extension of `co_slot`
/// under the same (frozen or exact) ppo.
#[allow(clippy::too_many_arguments)] // the solver's single probe shape
fn violates<A: Architecture + ?Sized>(
    arch: &A,
    checker: &ArenaChecker,
    q: &CoQuery<'_>,
    rels: &ExecRels,
    arena: &mut RelArena,
    co_slot: RelId,
    frozen: Option<RelId>,
) -> bool {
    arena.copy_into(rels.co, co_slot);
    rels.derive_co(q.core.as_ref(), arena);
    let fx = ExecFrame { core: q.core, events: q.events, rels };
    let v = match frozen {
        None => checker.check(arch, &fx, arena),
        Some(bound) => checker.check_frozen(arch, &fx, arena, bound),
    };
    !v.allowed()
}

/// Tests the hypothesis `forced ∪ {(a, b)}` against the axioms.
#[allow(clippy::too_many_arguments)] // one hypothesis probe, one call site
fn hypothesis_violates<A: Architecture + ?Sized>(
    arch: &A,
    checker: &ArenaChecker,
    q: &CoQuery<'_>,
    rels: &ExecRels,
    arena: &mut RelArena,
    forced: RelId,
    a: usize,
    b: usize,
    frozen: Option<RelId>,
) -> bool {
    let m = arena.mark();
    let t = arena.alloc_from(forced);
    arena.add(t, a, b);
    let hyp = arena.alloc();
    arena.tclosure_into(hyp, t);
    let bad = violates(arch, checker, q, rels, arena, hyp, frozen);
    arena.release(m);
    bad
}

/// A topological linearisation of `writes` under the closed partial
/// order in `forced` (smallest id first among the ready); `None` if the
/// partial order is cyclic on these writes.
fn linearise(arena: &RelArena, forced: RelId, writes: &[usize]) -> Option<Vec<usize>> {
    let fv = arena.view(forced);
    let mut remaining: Vec<usize> = writes.to_vec();
    let mut order = Vec::with_capacity(writes.len());
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|&w| remaining.iter().all(|&v| v == w || !fv.contains(v, w)))?;
        order.push(remaining.remove(pos));
    }
    Some(order)
}

/// The exact fallback: enumerate every per-location linear extension of
/// `forced` and check each completed coherence order in full. Counted in
/// [`ConsistencyStats::fallback_candidates`].
#[allow(clippy::too_many_arguments)] // the solver's single exit path
fn fallback<A: Architecture + ?Sized>(
    arch: &A,
    checker: &ArenaChecker,
    q: &CoQuery<'_>,
    rels: &ExecRels,
    arena: &mut RelArena,
    forced: RelId,
    locs: &[LocWrites],
    stats: &mut ConsistencyStats,
) -> bool {
    // Per-location menus: the permutations consistent with `forced`.
    let mut menus: Vec<Vec<Vec<usize>>> = Vec::with_capacity(locs.len());
    for lw in locs {
        let mut menu = Vec::new();
        let mut heap = HeapPerm::new(lw.writes.clone());
        loop {
            let order = heap.current();
            let fv = arena.view(forced);
            let ok = (0..order.len())
                .all(|i| (i + 1..order.len()).all(|j| !fv.contains(order[j], order[i])));
            if ok {
                menu.push(order.to_vec());
            }
            if !heap.advance() {
                break;
            }
        }
        if menu.is_empty() {
            return false; // forced is cyclic within this location
        }
        menus.push(menu);
    }

    let radices: Vec<usize> = menus.iter().map(Vec::len).collect();
    let mut pick = vec![0usize; menus.len()];
    loop {
        arena.clear(rels.co);
        for (li, lw) in locs.iter().enumerate() {
            build_co_arena(arena, rels.co, lw.init, &menus[li][pick[li]]);
        }
        rels.derive_co(q.core.as_ref(), arena);
        let fx = ExecFrame { core: q.core, events: q.events, rels };
        stats.fallback_candidates += 1;
        if checker.check(arch, &fx, arena).allowed() {
            return true;
        }
        if !bump(&mut pick, &radices) {
            return false;
        }
    }
}

fn bump(digits: &mut [usize], radices: &[usize]) -> bool {
    for (d, &r) in digits.iter_mut().zip(radices) {
        if *d + 1 < r {
            *d += 1;
            return true;
        }
        *d = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Power, Pso, Rmo, Sc, Tso};
    use crate::exec::Execution;
    use crate::fixtures::{self, Device};
    use crate::model::check;
    use crate::relation::Relation;

    /// Ground truth by brute force: does any coherence order over the
    /// same events and rf pass `check`?
    fn co_exists_brute<A: Architecture + ?Sized>(arch: &A, x: &Execution) -> bool {
        let locs = loc_writes(x.events());
        let mut heaps: Vec<HeapPerm> =
            locs.iter().map(|lw| HeapPerm::new(lw.writes.clone())).collect();
        loop {
            let mut co = Relation::empty(x.len());
            for (li, lw) in locs.iter().enumerate() {
                crate::enumerate::build_co(&mut co, lw.init, heaps[li].current());
            }
            let cand =
                Execution::with_core(x.events().to_vec(), Arc::clone(x.core()), x.rf().clone(), co)
                    .expect("permuted coherence orders are well-formed");
            if check(arch, &cand).allowed() {
                return true;
            }
            if !heaps.iter_mut().any(|h| h.advance()) {
                return false;
            }
        }
    }

    fn query_of(x: &Execution) -> (Vec<(usize, usize)>, Vec<Event>) {
        (x.rf().iter_pairs().collect(), x.events().to_vec())
    }

    #[test]
    fn matches_brute_force_on_fixtures() {
        let archs: Vec<Box<dyn Architecture>> =
            vec![Box::new(Sc), Box::new(Tso), Box::new(Pso), Box::new(Rmo), Box::new(Power::new())];
        let fixtures: Vec<(&str, Execution)> = vec![
            ("mp", fixtures::mp(Device::None, Device::None)),
            ("sb", fixtures::sb(Device::None, Device::None)),
            ("lb", fixtures::lb(Device::None, Device::None)),
            ("wrc", fixtures::wrc(Device::None, Device::None)),
            ("iriw", fixtures::iriw(Device::None, Device::None)),
            ("2+2w", fixtures::two_plus_two_w(Device::None, Device::None)),
            ("r", fixtures::r(Device::None, Device::None)),
            ("s", fixtures::s(Device::None, Device::None)),
            ("co_ww", fixtures::co_ww()),
            ("co_rw1", fixtures::co_rw1()),
            ("co_rr", fixtures::co_rr()),
            ("co_wr", fixtures::co_wr()),
        ];
        let mut arena = RelArena::new(0);
        let mut stats = ConsistencyStats::default();
        for arch in &archs {
            for (name, x) in &fixtures {
                let (rf, events) = query_of(x);
                let q = CoQuery { core: x.core(), events: &events, rf: &rf, last_writes: &[] };
                let ours = co_exists(arch.as_ref(), &q, &mut arena, &mut stats);
                let brute = co_exists_brute(arch.as_ref(), x);
                assert_eq!(ours, brute, "{name} on {} diverged", arch.name());
            }
        }
        assert_eq!(stats.queries, archs.len() * fixtures.len());
        // Power is conditional-side: the ppo envelope decides (nearly)
        // every fixture definitively, and whatever residue remains is a
        // counted envelope fallback — never a silent one.
        assert!(stats.conditional_definitive > 0, "the envelope must decide some queries");
        assert_eq!(
            stats.fallbacks, stats.envelope_fallbacks,
            "every fallback must come from a counted envelope disagreement"
        );
        assert!(
            stats.fallbacks < fixtures.len(),
            "conditional saturation must beat one-fallback-per-query on the fixtures"
        );
    }

    #[test]
    fn last_write_constraint_pins_final_memory() {
        // co_ww: T0 writes x=1 then x=2 (po-loc). Final x=2 is the only
        // coherent completion; requiring x=1 last contradicts po-loc.
        let x = fixtures::co_ww();
        let (rf, events) = query_of(&x);
        let (w1, w2) = {
            let mut ws =
                events.iter().filter(|e| e.dir == Dir::W && e.thread.is_some()).map(|e| e.id);
            (ws.next().unwrap(), ws.next().unwrap())
        };
        let loc = events[w1].loc;
        let mut arena = RelArena::new(0);
        let mut stats = ConsistencyStats::default();
        let ok_last = [(loc, w2)];
        let q = CoQuery { core: x.core(), events: &events, rf: &rf, last_writes: &ok_last };
        assert!(co_exists(&Sc, &q, &mut arena, &mut stats));
        let bad_last = [(loc, w1)];
        let q = CoQuery { core: x.core(), events: &events, rf: &rf, last_writes: &bad_last };
        assert!(!co_exists(&Sc, &q, &mut arena, &mut stats));
        assert_eq!(stats.fallbacks, 0, "SC queries stay on the polynomial path");
    }

    #[test]
    fn polynomial_models_do_not_fall_back_on_independent_writes() {
        // A bag of unordered same-location writes: saturation forces
        // nothing, the greedy witness must succeed on its own.
        let mut b = crate::fixtures::ExecBuilder::new();
        let ws: Vec<usize> = (0..4u16).map(|t| b.write(t, "x", i64::from(t) + 1)).collect();
        for w in ws.windows(2) {
            b.co(w[0], w[1]); // build() needs a total co; the query ignores it
        }
        let x = b.build().unwrap();
        let (rf, events) = query_of(&x);
        let mut arena = RelArena::new(0);
        let mut stats = ConsistencyStats::default();
        for arch in [&Sc as &dyn Architecture, &Tso, &Pso] {
            let q = CoQuery { core: x.core(), events: &events, rf: &rf, last_writes: &[] };
            assert!(co_exists(arch, &q, &mut arena, &mut stats));
        }
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(stats.witnesses, 3);
    }
}
