//! Graphviz rendering of candidate executions, in the style of the
//! paper's execution diagrams (events per thread in columns, labelled
//! `po`/`rf`/`co`/`fr` arrows).
//!
//! herd produces such diagrams for every execution it enumerates; the
//! output here is valid DOT, one cluster per thread, communications drawn
//! across clusters.

use crate::event::Loc;
use crate::exec::Execution;
use std::fmt::Write as _;

/// Renders `x` as a DOT digraph; `loc_name` supplies display names for
/// locations (front ends know them, the core does not).
pub fn to_dot(x: &Execution, loc_name: &dyn Fn(Loc) -> String) -> String {
    let mut s = String::from(
        "digraph execution {\n  rankdir=TB;\n  node [shape=plaintext, fontsize=11];\n",
    );

    // Initial writes.
    let inits: Vec<_> = x.events().iter().filter(|e| e.is_init()).collect();
    if !inits.is_empty() {
        let _ =
            writeln!(s, "  subgraph cluster_init {{\n    label=\"initial state\"; style=dashed;");
        for e in &inits {
            let _ = writeln!(
                s,
                "    e{} [label=\"{}: W {}={}\"];",
                e.id,
                letter(e.id),
                loc_name(e.loc),
                e.val.0
            );
        }
        let _ = writeln!(s, "  }}");
    }

    // One cluster per thread, po edges chaining the column.
    let mut threads: Vec<u16> = x.events().iter().filter_map(|e| e.thread.map(|t| t.0)).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let _ = writeln!(s, "  subgraph cluster_t{t} {{\n    label=\"T{t}\";");
        let mut evs: Vec<_> =
            x.events().iter().filter(|e| e.thread.map(|x| x.0) == Some(t)).collect();
        evs.sort_by_key(|e| e.po_index);
        for e in &evs {
            let d = if e.is_write() { "W" } else { "R" };
            let _ = writeln!(
                s,
                "    e{} [label=\"{}: {d} {}={}\"];",
                e.id,
                letter(e.id),
                loc_name(e.loc),
                e.val.0
            );
        }
        for w in evs.windows(2) {
            let _ = writeln!(s, "    e{} -> e{} [label=\"po\", color=black];", w[0].id, w[1].id);
        }
        let _ = writeln!(s, "  }}");
    }

    // Communications (direct co only, to match the paper's figures).
    for (a, b) in x.rf().iter_pairs() {
        let _ = writeln!(s, "  e{a} -> e{b} [label=\"rf\", color=red];");
    }
    for (a, b) in x.co().iter_pairs() {
        // Skip transitively implied co edges for readability.
        let direct = !x.co().succs(a).any(|m| m != b && x.co().contains(m, b));
        if direct {
            let _ = writeln!(s, "  e{a} -> e{b} [label=\"co\", color=blue];");
        }
    }
    for (a, b) in x.fr().iter_pairs() {
        let _ = writeln!(s, "  e{a} -> e{b} [label=\"fr\", color=darkgreen];");
    }
    // Dependencies.
    for (a, b) in x.deps().addr.iter_pairs() {
        let _ = writeln!(s, "  e{a} -> e{b} [label=\"addr\", style=dotted];");
    }
    for (a, b) in x.deps().data.iter_pairs() {
        let _ = writeln!(s, "  e{a} -> e{b} [label=\"data\", style=dotted];");
    }
    s.push_str("}\n");
    s
}

/// Event letter in the paper's style: a, b, c, ...
fn letter(id: usize) -> String {
    let mut n = id;
    let mut s = String::new();
    loop {
        s.insert(0, (b'a' + (n % 26) as u8) as char);
        if n < 26 {
            break;
        }
        n = n / 26 - 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, Device};

    #[test]
    fn dot_contains_threads_and_communications() {
        let x = fixtures::mp(Device::None, Device::Addr);
        let dot = to_dot(&x, &|l| ["x", "y"][l.0 as usize].to_owned());
        assert!(dot.starts_with("digraph execution {"));
        assert!(dot.contains("cluster_t0") && dot.contains("cluster_t1"));
        assert!(dot.contains("label=\"rf\""));
        assert!(dot.contains("label=\"fr\""));
        assert!(dot.contains("label=\"addr\""));
        assert!(dot.contains("W x=1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn transitive_co_edges_are_elided() {
        // Three writes to one location: only two direct co arrows.
        let mut b = fixtures::ExecBuilder::new();
        let w1 = b.write(0, "x", 1);
        let w2 = b.write(0, "x", 2);
        b.co(w1, w2);
        let x = b.build().unwrap();
        let dot = to_dot(&x, &|_| "x".into());
        let co_edges = dot.matches("label=\"co\"").count();
        assert_eq!(co_edges, 2, "init->w1->w2, not init->w2:\n{dot}");
    }

    #[test]
    fn letters_roll_over() {
        assert_eq!(letter(0), "a");
        assert_eq!(letter(25), "z");
        assert_eq!(letter(26), "aa");
    }
}
