//! Hand-built candidate executions for the paper's canonical patterns.
//!
//! Each function builds exactly the execution depicted in the corresponding
//! figure of the paper (the cycle witness), parameterised by the *device*
//! maintaining order on each thread — a dependency, a fence, or nothing.
//! These fixtures let the axioms be exercised without the litmus front end,
//! and double as documentation of the patterns' shapes.

use crate::event::{Dir, Event, Fence, Loc, ThreadId, Val};
use crate::exec::{Deps, Execution};
use crate::relation::Relation;
use std::collections::BTreeMap;

/// The ordering device placed between two accesses of one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Device {
    /// No ordering: plain program order.
    None,
    /// An address dependency (`addr`).
    Addr,
    /// A data dependency (`data`).
    Data,
    /// A control dependency (`ctrl`).
    Ctrl,
    /// A control dependency sealed by a control fence (`ctrl+cfence`).
    CtrlCfence,
    /// A fence instruction of the given flavour.
    Fence(Fence),
}

/// Incremental builder for candidate executions.
///
/// Events get identifiers in insertion order; initial writes are created
/// lazily (value 0) the first time a location is used. `po` is derived from
/// per-thread insertion order; `co` edges are closed transitively and the
/// initial write of each location is put `co`-first automatically.
///
/// # Examples
///
/// ```
/// use herd_core::fixtures::ExecBuilder;
/// let mut b = ExecBuilder::new();
/// let w = b.write(0, "x", 1);
/// let r = b.read(1, "x", 1);
/// b.rf(w, r);
/// let x = b.build().unwrap();
/// assert!(x.rfe().contains(w, r));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExecBuilder {
    events: Vec<PendingEvent>,
    locs: BTreeMap<String, Loc>,
    init: BTreeMap<Loc, usize>,
    rf: Vec<(usize, usize)>,
    co: Vec<(usize, usize)>,
    addr: Vec<(usize, usize)>,
    data: Vec<(usize, usize)>,
    ctrl: Vec<(usize, usize)>,
    ctrl_cfence: Vec<(usize, usize)>,
    fences: Vec<(Fence, usize, usize)>,
}

#[derive(Clone, Debug)]
struct PendingEvent {
    thread: Option<ThreadId>,
    dir: Dir,
    loc: Loc,
    val: Val,
}

impl ExecBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn loc(&mut self, name: &str) -> Loc {
        if let Some(&l) = self.locs.get(name) {
            return l;
        }
        let l = Loc(self.locs.len() as u32);
        self.locs.insert(name.to_owned(), l);
        // Initial write, value 0.
        self.events.push(PendingEvent { thread: None, dir: Dir::W, loc: l, val: Val(0) });
        self.init.insert(l, self.events.len() - 1);
        l
    }

    /// The event id of the initial write to `name` (creating it if needed).
    pub fn init_write(&mut self, name: &str) -> usize {
        let l = self.loc(name);
        self.init[&l]
    }

    /// Appends a write of `val` to `loc` on thread `tid`; returns its id.
    pub fn write(&mut self, tid: u16, loc: &str, val: i64) -> usize {
        let l = self.loc(loc);
        self.events.push(PendingEvent {
            thread: Some(ThreadId(tid)),
            dir: Dir::W,
            loc: l,
            val: Val(val),
        });
        self.events.len() - 1
    }

    /// Appends a read of `val` from `loc` on thread `tid`; returns its id.
    /// The matching `rf` edge must be added separately (or use
    /// [`ExecBuilder::read_init`]).
    pub fn read(&mut self, tid: u16, loc: &str, val: i64) -> usize {
        let l = self.loc(loc);
        self.events.push(PendingEvent {
            thread: Some(ThreadId(tid)),
            dir: Dir::R,
            loc: l,
            val: Val(val),
        });
        self.events.len() - 1
    }

    /// Appends a read of the initial value (0) of `loc`, wiring `rf` from
    /// the initial write.
    pub fn read_init(&mut self, tid: u16, loc: &str) -> usize {
        let init = self.init_write(loc);
        let r = self.read(tid, loc, 0);
        self.rf(init, r);
        r
    }

    /// Records a read-from edge.
    pub fn rf(&mut self, w: usize, r: usize) -> &mut Self {
        self.rf.push((w, r));
        self
    }

    /// Records a coherence edge (closed transitively at build time).
    pub fn co(&mut self, w1: usize, w2: usize) -> &mut Self {
        self.co.push((w1, w2));
        self
    }

    /// Records an address dependency.
    pub fn addr(&mut self, a: usize, b: usize) -> &mut Self {
        self.addr.push((a, b));
        self
    }

    /// Records a data dependency.
    pub fn data(&mut self, a: usize, b: usize) -> &mut Self {
        self.data.push((a, b));
        self
    }

    /// Records a control dependency.
    pub fn ctrl(&mut self, a: usize, b: usize) -> &mut Self {
        self.ctrl.push((a, b));
        self
    }

    /// Records a control dependency sealed by a control fence. A
    /// `ctrl+cfence` pair is also a `ctrl` pair (Fig 22).
    pub fn ctrl_cfence(&mut self, a: usize, b: usize) -> &mut Self {
        self.ctrl.push((a, b));
        self.ctrl_cfence.push((a, b));
        self
    }

    /// Records that fence `f` separates `a` and `b` in program order.
    pub fn fence(&mut self, f: Fence, a: usize, b: usize) -> &mut Self {
        self.fences.push((f, a, b));
        self
    }

    /// Applies `device` between events `a` and `b` of the same thread.
    pub fn device(&mut self, device: Device, a: usize, b: usize) -> &mut Self {
        match device {
            Device::None => self,
            Device::Addr => self.addr(a, b),
            Device::Data => self.data(a, b),
            Device::Ctrl => self.ctrl(a, b),
            Device::CtrlCfence => self.ctrl_cfence(a, b),
            Device::Fence(f) => self.fence(f, a, b),
        }
    }

    /// Finalises the execution.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::exec::ExecutionError`] when the recorded edges do
    /// not form a well-formed candidate (e.g. a read without an `rf` source).
    pub fn build(&self) -> Result<Execution, crate::exec::ExecutionError> {
        let n = self.events.len();
        let mut po_index = BTreeMap::new();
        let events: Vec<Event> = self
            .events
            .iter()
            .enumerate()
            .map(|(id, p)| {
                let idx = match p.thread {
                    Some(t) => {
                        let c = po_index.entry(t).or_insert(0usize);
                        let i = *c;
                        *c += 1;
                        i
                    }
                    None => 0,
                };
                Event { id, thread: p.thread, po_index: idx, dir: p.dir, loc: p.loc, val: p.val }
            })
            .collect();

        let mut po = Relation::empty(n);
        for a in &events {
            for b in &events {
                if let (Some(ta), Some(tb)) = (a.thread, b.thread) {
                    if ta == tb && a.po_index < b.po_index {
                        po.add(a.id, b.id);
                    }
                }
            }
        }

        let rf = Relation::from_pairs(n, self.rf.iter().copied());

        let mut co = Relation::from_pairs(n, self.co.iter().copied());
        for e in &events {
            if e.is_write() && !e.is_init() {
                co.add(self.init[&e.loc], e.id);
            }
        }
        let co = co.tclosure();

        let deps = Deps {
            addr: Relation::from_pairs(n, self.addr.iter().copied()),
            data: Relation::from_pairs(n, self.data.iter().copied()),
            ctrl: Relation::from_pairs(n, self.ctrl.iter().copied()),
            ctrl_cfence: Relation::from_pairs(n, self.ctrl_cfence.iter().copied()),
        };

        let mut fences: BTreeMap<Fence, Relation> = BTreeMap::new();
        for &(f, a, b) in &self.fences {
            fences.entry(f).or_insert_with(|| Relation::empty(n)).add(a, b);
        }

        Execution::new(events, po, rf, co, deps, fences)
    }
}

fn build(b: &ExecBuilder) -> Execution {
    b.build().expect("fixture executions are well-formed by construction")
}

/// The id of the `k`-th program event (in program order) of thread `tid`.
///
/// Initial writes are interleaved with program events in the id space, so
/// tests should locate events with this helper rather than by raw id.
///
/// # Panics
///
/// Panics if the thread has fewer than `k + 1` events.
pub fn program_event(x: &Execution, tid: u16, k: usize) -> usize {
    x.events()
        .iter()
        .find(|e| e.thread == Some(ThreadId(tid)) && e.po_index == k)
        .unwrap_or_else(|| panic!("no event {k} on thread {tid}"))
        .id
}

/// Message passing, Fig 4/8: `T0: Wx=1; d0; Wy=1 — T1: Ry=1; d1; Rx=0`.
/// The witness has `rf(b,c)` and `fr(d,a)`.
pub fn mp(d0: Device, d1: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let w = b.write(0, "y", 1);
    let c = b.read(1, "y", 1);
    let d = b.read_init(1, "x");
    b.rf(w, c).device(d0, a, w).device(d1, c, d);
    build(&b)
}

/// Store buffering, Fig 14: `T0: Wx=1; d0; Ry=0 — T1: Wy=1; d1; Rx=0`.
pub fn sb(d0: Device, d1: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let r0 = b.read_init(0, "y");
    let c = b.write(1, "y", 1);
    let r1 = b.read_init(1, "x");
    b.device(d0, a, r0).device(d1, c, r1);
    build(&b)
}

/// Load buffering, Fig 7: `T0: Rx=1; d0; Wy=1 — T1: Ry=1; d1; Wx=1`,
/// each read satisfied by the other thread's write.
pub fn lb(d0: Device, d1: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.read(0, "x", 1);
    let w0 = b.write(0, "y", 1);
    let c = b.read(1, "y", 1);
    let w1 = b.write(1, "x", 1);
    b.rf(w1, a).rf(w0, c).device(d0, a, w0).device(d1, c, w1);
    build(&b)
}

/// Write-to-read causality, Fig 11:
/// `T0: Wx=1 — T1: Rx=1; d1; Wy=1 — T2: Ry=1; d2; Rx=0`.
pub fn wrc(d1: Device, d2: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let r1 = b.read(1, "x", 1);
    let w1 = b.write(1, "y", 1);
    let r2 = b.read(2, "y", 1);
    let r3 = b.read_init(2, "x");
    b.rf(a, r1).rf(w1, r2).device(d1, r1, w1).device(d2, r2, r3);
    build(&b)
}

/// Power ISA2, Fig 12:
/// `T0: Wx=1; d0; Wy=1 — T1: Ry=1; d1; Wz=1 — T2: Rz=1; d2; Rx=0`.
pub fn isa2(d0: Device, d1: Device, d2: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let w0 = b.write(0, "y", 1);
    let c = b.read(1, "y", 1);
    let d = b.write(1, "z", 1);
    let e = b.read(2, "z", 1);
    let f = b.read_init(2, "x");
    b.rf(w0, c).rf(d, e).device(d0, a, w0).device(d1, c, d).device(d2, e, f);
    build(&b)
}

/// 2+2w, Fig 13(a): `T0: Wx=2; d0; Wy=1 — T1: Wy=2; d1; Wx=1`,
/// with `co(Wy=1, Wy=2)` and `co(Wx=1, Wx=2)`.
pub fn two_plus_two_w(d0: Device, d1: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 2);
    let w0 = b.write(0, "y", 1);
    let c = b.write(1, "y", 2);
    let d = b.write(1, "x", 1);
    b.co(w0, c).co(d, a).device(d0, a, w0).device(d1, c, d);
    build(&b)
}

/// w+rw+2w, Fig 13(b):
/// `T0: Wx=2 — T1: Rx=2; d1; Wy=1 — T2: Wy=2; d2; Wx=1`.
pub fn w_rw_2w(d1: Device, d2: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 2);
    let r = b.read(1, "x", 2);
    let c = b.write(1, "y", 1);
    let d = b.write(2, "y", 2);
    let e = b.write(2, "x", 1);
    b.rf(a, r).co(c, d).co(e, a).device(d1, r, c).device(d2, d, e);
    build(&b)
}

/// Read-to-write causality, Fig 15:
/// `T0: Wx=1 — T1: Rx=1; d1; Ry=0 — T2: Wy=1; d2; Rx=0`.
pub fn rwc(d1: Device, d2: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let r1 = b.read(1, "x", 1);
    let r2 = b.read_init(1, "y");
    let d = b.write(2, "y", 1);
    let e = b.read_init(2, "x");
    b.rf(a, r1).device(d1, r1, r2).device(d2, d, e);
    build(&b)
}

/// The `r` pattern, Fig 16 (left):
/// `T0: Wx=1; d0; Wy=1 — T1: Wy=2; d1; Rx=0` with `co(Wy=1, Wy=2)`.
pub fn r(d0: Device, d1: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let w0 = b.write(0, "y", 1);
    let c = b.write(1, "y", 2);
    let d = b.read_init(1, "x");
    b.co(w0, c).device(d0, a, w0).device(d1, c, d);
    build(&b)
}

/// The `s` pattern, Fig 16 (right) / Fig 39:
/// `T0: Wx=2; d0; Wy=1 — T1: Ry=1; d1; Wx=1` with `co(Wx=1, Wx=2)`.
pub fn s(d0: Device, d1: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 2);
    let w0 = b.write(0, "y", 1);
    let c = b.read(1, "y", 1);
    let d = b.write(1, "x", 1);
    b.rf(w0, c).co(d, a).device(d0, a, w0).device(d1, c, d);
    build(&b)
}

/// Independent reads of independent writes, Fig 20:
/// `T0: Wx=1 — T1: Rx=1; d1; Ry=0 — T2: Wy=1 — T3: Ry=1; d3; Rx=0`.
pub fn iriw(d1: Device, d3: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let r1 = b.read(1, "x", 1);
    let r2 = b.read_init(1, "y");
    let d = b.write(2, "y", 1);
    let e = b.read(3, "y", 1);
    let f = b.read_init(3, "x");
    b.rf(a, r1).rf(d, e).device(d1, r1, r2).device(d3, e, f);
    build(&b)
}

/// w+rwc, Fig 19: `T0: Wx=1; d0; Wy=1 — T1: Ry=1; d1; Rz=0 —
/// T2: Wz=1; d2; Rx=0`.
pub fn w_rwc(d0: Device, d1: Device, d2: Device) -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let w0 = b.write(0, "y", 1);
    let c = b.read(1, "y", 1);
    let d = b.read_init(1, "z");
    let e = b.write(2, "z", 1);
    let f = b.read_init(2, "x");
    b.rf(w0, c).device(d0, a, w0).device(d1, c, d).device(d2, e, f);
    build(&b)
}

/// coWW, Fig 6: two same-location writes in program order, `co` inverted.
pub fn co_ww() -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.write(0, "x", 1);
    let w = b.write(0, "x", 2);
    b.co(w, a);
    build(&b)
}

/// coRW1, Fig 6: a read from a po-later write of the same thread.
pub fn co_rw1() -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.read(0, "x", 1);
    let w = b.write(0, "x", 1);
    b.rf(w, a);
    build(&b)
}

/// coRW2, Fig 6: `T0: Rx=2; Wx=1 — T1: Wx=2`, `co(Wx=1, Wx=2)`,
/// the read takes its value from the co-later external write.
pub fn co_rw2() -> Execution {
    let mut b = ExecBuilder::new();
    let a = b.read(0, "x", 2);
    let w1 = b.write(0, "x", 1);
    let w2 = b.write(1, "x", 2);
    b.rf(w2, a).co(w1, w2);
    build(&b)
}

/// coWR, Fig 6: `T0: Wx=1; Rx=2 — T1: Wx=2`, the read takes its value from
/// a write co-before the thread's own earlier write.
pub fn co_wr() -> Execution {
    let mut b = ExecBuilder::new();
    let w1 = b.write(0, "x", 1);
    let r = b.read(0, "x", 2);
    let w2 = b.write(1, "x", 2);
    b.rf(w2, r).co(w2, w1);
    build(&b)
}

/// coRR, Fig 6: two same-location reads in program order observing
/// coherence backwards (`Rx=1` then `Rx=0`).
pub fn co_rr() -> Execution {
    let mut b = ExecBuilder::new();
    let r1 = b.read(0, "x", 1);
    let r2 = b.read_init(0, "x");
    let w = b.write(1, "x", 1);
    b.rf(w, r1);
    let _ = r2;
    build(&b)
}

/// The message-passing execution of the paper's Fig 4 (no devices).
pub fn mp_fig4() -> Execution {
    mp(Device::None, Device::None)
}

/// One operation of a randomly generated program shape.
///
/// Shapes are ISA-agnostic skeletons for the differential test suites:
/// the litmus layer turns them into real programs, the core layer only
/// guarantees the bounds ([`ProgramShape::decode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeOp {
    /// A store of `val` to location number `loc`.
    Write {
        /// Location index, `< ProgramShape::LOCS`.
        loc: u8,
        /// Stored value, drawn from `{1, 2}`.
        val: i64,
    },
    /// A load from location number `loc`.
    Read {
        /// Location index, `< ProgramShape::LOCS`.
        loc: u8,
    },
}

/// A bounded multi-threaded program skeleton decoded from raw bytes.
///
/// The decoding is total — *any* byte slice yields a well-formed shape —
/// which makes it a drop-in target for property-testing strategies over
/// `Vec<u8>`: the strategy supplies entropy, `decode` supplies the
/// invariants (at most [`Self::MAX_THREADS`] threads of at most
/// [`Self::MAX_OPS_PER_THREAD`] operations over [`Self::LOCS`] locations,
/// write values in `{1, 2}`). Small bounds keep brute-force ground truth
/// cheap while still covering every communication pattern of up to four
/// accesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramShape {
    /// Per-thread operation lists, in program order.
    pub threads: Vec<Vec<ShapeOp>>,
}

impl ProgramShape {
    /// Upper bound on thread count.
    pub const MAX_THREADS: usize = 3;
    /// Upper bound on operations per thread.
    pub const MAX_OPS_PER_THREAD: usize = 2;
    /// Number of distinct memory locations shapes range over.
    pub const LOCS: usize = 2;

    /// Decodes a shape from raw bytes (total: never fails, never panics).
    ///
    /// An empty slice decodes to a minimal one-thread, one-write shape.
    pub fn decode(bytes: &[u8]) -> ProgramShape {
        let at = |k: usize| -> u8 {
            if bytes.is_empty() {
                k as u8
            } else {
                bytes[k % bytes.len()]
            }
        };
        let mut cursor = 0;
        let mut next = || {
            let b = at(cursor);
            cursor += 1;
            b
        };
        let nthreads = 1 + (next() as usize) % Self::MAX_THREADS;
        let mut threads = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            let nops = 1 + (next() as usize) % Self::MAX_OPS_PER_THREAD;
            let mut ops = Vec::with_capacity(nops);
            for _ in 0..nops {
                let shape = next();
                let loc = (shape >> 1) % Self::LOCS as u8;
                if shape & 1 == 0 {
                    let val = 1 + i64::from(next() % 2);
                    ops.push(ShapeOp::Write { loc, val });
                } else {
                    ops.push(ShapeOp::Read { loc });
                }
            }
            threads.push(ops);
        }
        ProgramShape { threads }
    }

    /// Total number of read operations across all threads.
    pub fn reads(&self) -> usize {
        self.threads.iter().flatten().filter(|o| matches!(o, ShapeOp::Read { .. })).count()
    }

    /// Total number of write operations across all threads.
    pub fn writes(&self) -> usize {
        self.threads.iter().flatten().filter(|o| matches!(o, ShapeOp::Write { .. })).count()
    }
}

/// Maps a raw byte to an outcome-probe value over `{0, 1, 2, 9}`.
///
/// `0` is the initial value, `{1, 2}` is the write-value domain of
/// [`ProgramShape`], and `9` is produced by no write of any shape — a
/// probe constraining a register or location to `9` is unreachable under
/// *every* interleaving, exercising the backend's forbidden path on
/// outcomes the enumeration engine never even emits.
pub fn probe_value(byte: u8) -> i64 {
    [0, 1, 2, 9][(byte % 4) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mp_shape() {
        let x = mp(Device::Fence(Fence::Lwsync), Device::Addr);
        assert_eq!(x.len(), 6); // 2 init + 4 program events
        assert_eq!(x.fence(Fence::Lwsync).len(), 1);
        assert_eq!(x.deps().addr.len(), 1);
        assert!(x.fre().len() == 1);
    }

    #[test]
    fn two_plus_two_w_coherence_cycle_exists_in_co_union_devices() {
        let x = two_plus_two_w(Device::None, Device::None);
        // a -po-> b -co-> c -po-> d -co-> a is a cycle of po ∪ co.
        assert!(!x.po().union(x.co()).is_acyclic());
        // But no axiom of the null architecture forbids it: SC PER LOCATION
        // only sees po-loc, which is empty here.
        assert!(crate::model::sc_per_location(&x));
    }

    #[test]
    fn coherence_fixtures_violate_sc_per_location() {
        for (name, x) in [
            ("coWW", co_ww()),
            ("coRW1", co_rw1()),
            ("coRW2", co_rw2()),
            ("coWR", co_wr()),
            ("coRR", co_rr()),
        ] {
            assert!(!crate::model::sc_per_location(&x), "{name} must violate SC PER LOCATION");
        }
    }

    #[test]
    fn iriw_has_two_fr_edges() {
        let x = iriw(Device::None, Device::None);
        assert_eq!(x.fre().len(), 2);
    }

    #[test]
    fn builder_read_without_rf_is_rejected() {
        let mut b = ExecBuilder::new();
        b.read(0, "x", 7);
        assert!(b.build().is_err());
    }

    #[test]
    fn shape_decoding_is_total_and_bounded() {
        // A spread of adversarial byte patterns, including the empty one.
        let patterns: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![255],
            vec![0xAB; 17],
            (0..=255).collect(),
            vec![1, 254, 3, 252, 5, 250],
        ];
        for bytes in patterns {
            let shape = ProgramShape::decode(&bytes);
            assert!(!shape.threads.is_empty());
            assert!(shape.threads.len() <= ProgramShape::MAX_THREADS);
            for ops in &shape.threads {
                assert!(!ops.is_empty());
                assert!(ops.len() <= ProgramShape::MAX_OPS_PER_THREAD);
                for op in ops {
                    match *op {
                        ShapeOp::Write { loc, val } => {
                            assert!((loc as usize) < ProgramShape::LOCS);
                            assert!(val == 1 || val == 2);
                        }
                        ShapeOp::Read { loc } => {
                            assert!((loc as usize) < ProgramShape::LOCS);
                        }
                    }
                }
            }
            assert_eq!(
                shape.reads() + shape.writes(),
                shape.threads.iter().map(Vec::len).sum::<usize>()
            );
        }
    }

    #[test]
    fn probe_values_stay_in_domain_and_nine_is_unwritable() {
        for b in 0..=255u8 {
            let v = probe_value(b);
            assert!([0, 1, 2, 9].contains(&v));
        }
        // Every byte pattern's writes stay within {1, 2}: 9 really is
        // unreachable for any decoded shape.
        for seed in 0..64u8 {
            let shape = ProgramShape::decode(&[seed, seed.wrapping_mul(37), 5]);
            for op in shape.threads.iter().flatten() {
                if let ShapeOp::Write { val, .. } = op {
                    assert_ne!(*val, 9);
                }
            }
        }
    }
}
