//! Deterministic structural fingerprints — the keys of the memoised
//! query layer.
//!
//! The paper's data-mining phase (Sec 11, `mcompare`) asks the same
//! questions over and over: *is this final state allowed for this test
//! under this model?* Memoising the answers needs a stable identity for
//! each question, and this module provides it: a 128-bit [`Fingerprint`]
//! computed by an FNV-1a-style stream hasher ([`FpHasher`]) over a
//! *structural* encoding of the inputs.
//!
//! Three properties matter more than raw speed here:
//!
//! - **Determinism.** The digest of a given structure is identical
//!   across runs, processes and platforms — no per-process seeds, no
//!   pointer values, no `HashMap` iteration order (callers feed `BTreeMap`
//!   contents, which iterate sorted).
//! - **Injectivity in practice.** Every write is framed: variable-length
//!   pieces are length-prefixed and each logical field starts with a
//!   domain-separation tag, so `("ab", "c")` and `("a", "bc")` — or a
//!   register part and a memory part — can never collide by
//!   concatenation.
//! - **No dependencies.** 128-bit FNV-1a is four lines over `u128`
//!   arithmetic; the offline build stays offline.
//!
//! The 128-bit width makes accidental collisions across a realistic
//! corpus (billions of distinct keys) vanishingly unlikely, which is what
//! lets `herd-cache` treat the fingerprint as the *whole* key — a
//! content-addressed store, not a hash table with stored keys.

/// A 128-bit content fingerprint; the key type of the `herd-cache` store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The low 64 bits — handy as a shard selector or compact display.
    #[inline]
    pub fn lo(self) -> u64 {
        self.0 as u64
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a offset basis, 128-bit variant.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a prime, 128-bit variant.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental FNV-1a-128 stream hasher with framed writes.
///
/// Every `write_*` method frames its payload (a one-byte kind tag, a
/// length prefix for variable-length data) so distinct call sequences
/// produce distinct streams. Domain separation across logical fields is
/// the caller's job via [`FpHasher::tag`].
///
/// # Examples
///
/// ```
/// use herd_core::fingerprint::FpHasher;
///
/// let mut h = FpHasher::new("query/v1");
/// h.tag("test");
/// h.write_str("SB x86");
/// h.tag("model");
/// h.write_str("TSO");
/// let a = h.finish();
///
/// // Same content, same key — across runs and processes.
/// let mut h2 = FpHasher::new("query/v1");
/// h2.tag("test");
/// h2.write_str("SB x86");
/// h2.tag("model");
/// h2.write_str("TSO");
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Debug)]
pub struct FpHasher {
    state: u128,
}

impl FpHasher {
    /// A fresh hasher seeded with a schema label (e.g. `"query/v1"`);
    /// bumping the label invalidates every key derived under it.
    pub fn new(schema: &str) -> Self {
        let mut h = FpHasher { state: FNV_OFFSET };
        h.write_str(schema);
        h
    }

    /// A hasher resuming from an existing fingerprint — how per-outcome
    /// keys extend a `(test, model, opts)` base key.
    pub fn from(base: Fingerprint) -> Self {
        FpHasher { state: base.0 }
    }

    #[inline]
    fn step(&mut self, byte: u8) {
        self.state ^= byte as u128;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Mixes raw bytes (unframed — used by the framed writers below).
    #[inline]
    fn raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.step(b);
        }
    }

    /// Starts a logical field: a domain-separation tag. Cheap insurance
    /// that reordered or omitted fields change the digest.
    pub fn tag(&mut self, name: &str) {
        self.step(T_TAG);
        self.raw(&(name.len() as u64).to_le_bytes());
        self.raw(name.as_bytes());
    }

    /// Mixes a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.step(T_BYTES);
        self.raw(&(bytes.len() as u64).to_le_bytes());
        self.raw(bytes);
    }

    /// Mixes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.step(T_STR);
        self.raw(&(s.len() as u64).to_le_bytes());
        self.raw(s.as_bytes());
    }

    /// Mixes an unsigned 64-bit integer.
    pub fn write_u64(&mut self, v: u64) {
        self.step(T_U64);
        self.raw(&v.to_le_bytes());
    }

    /// Mixes an unsigned 128-bit integer (e.g. another fingerprint).
    pub fn write_u128(&mut self, v: u128) {
        self.step(T_U128);
        self.raw(&v.to_le_bytes());
    }

    /// Mixes a signed 64-bit integer.
    pub fn write_i64(&mut self, v: i64) {
        self.step(T_I64);
        self.raw(&v.to_le_bytes());
    }

    /// Mixes a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.step(T_BOOL);
        self.step(v as u8);
    }

    /// Mixes a collection length — write it before iterating the items so
    /// `[ab]` and `[a, b]` framings cannot collide.
    pub fn write_len(&mut self, n: usize) {
        self.step(T_LEN);
        self.raw(&(n as u64).to_le_bytes());
    }

    /// The digest of everything written so far (the hasher stays usable).
    pub fn finish(&self) -> Fingerprint {
        // One final avalanche round: FNV's raw state is weak in its low
        // bits for short inputs; xor-folding the multiplied halves spreads
        // every input byte across the whole digest.
        let s = self.state;
        let folded = s ^ s.rotate_left(67) ^ s.rotate_left(113);
        Fingerprint(folded.wrapping_mul(FNV_PRIME) ^ folded >> 71)
    }
}

// Framing kind tags (arbitrary distinct bytes).
const T_TAG: u8 = 0x7a;
const T_BYTES: u8 = 0xb1;
const T_STR: u8 = 0x51;
const T_U64: u8 = 0x64;
const T_U128: u8 = 0x12;
const T_I64: u8 = 0x69;
const T_BOOL: u8 = 0xb0;
const T_LEN: u8 = 0x1e;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = FpHasher::new("t/v1");
        a.write_str("x");
        a.write_u64(7);
        let mut b = FpHasher::new("t/v1");
        b.write_str("x");
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());

        let mut c = FpHasher::new("t/v1");
        c.write_u64(7);
        c.write_str("x");
        assert_ne!(a.finish(), c.finish(), "field order is part of the identity");
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = FpHasher::new("t/v1");
        a.write_str("ab");
        a.write_str("c");
        let mut b = FpHasher::new("t/v1");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = FpHasher::new("t/v1");
        c.write_bytes(b"ab");
        let mut d = FpHasher::new("t/v1");
        d.write_str("ab");
        assert_ne!(c.finish(), d.finish(), "kind tags separate types");
    }

    #[test]
    fn schema_and_tags_separate_domains() {
        let mut a = FpHasher::new("q/v1");
        a.write_u64(1);
        let mut b = FpHasher::new("q/v2");
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = FpHasher::new("q/v1");
        c.tag("regs");
        c.write_u64(1);
        let mut d = FpHasher::new("q/v1");
        d.tag("mem");
        d.write_u64(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn resuming_extends_a_base_key() {
        let mut base = FpHasher::new("q/v1");
        base.write_str("test+model");
        let k = base.finish();
        let mut row1 = FpHasher::from(k);
        row1.write_str("0:r1=1");
        let mut row2 = FpHasher::from(k);
        row2.write_str("0:r1=0");
        assert_ne!(row1.finish(), row2.finish());
    }

    #[test]
    fn digests_spread_over_the_low_bits() {
        // Shard selection uses the low bits; make sure small inputs do
        // not collapse onto a few residues.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64u64 {
            let mut h = FpHasher::new("t/v1");
            h.write_u64(i);
            seen.insert(h.finish().lo() % 16);
        }
        assert!(seen.len() >= 12, "low bits poorly distributed: {seen:?}");
    }
}
