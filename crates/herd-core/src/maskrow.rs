//! Width-generic bit-row kernels: the mask layer under every fast path.
//!
//! The streaming engine's hot structures — arena slots
//! ([`crate::arena::RelArena`]), thin-air reachability masks
//! ([`crate::thinair::ThinAirTracker`]) and per-location uniproc graphs
//! ([`crate::uniproc::LocGraphs`]) — all reduce to *rows* of `u64` words:
//! one row per graph node, one bit per possible successor. Historically
//! each of them hard-coded a single-word row (`u64`), which capped every
//! pruning axis at 64 events exactly where pruning matters most (the
//! search space explodes with event count, Sec 8.3). This module is the
//! one place that knows how wide a row is:
//!
//! - the word kernels `or_words` / `and_words` / `andnot_words`
//!   dispatch on row width — explicit unrolled arms for 1-, 2- and 4-word
//!   rows (64 / 128 / 256 events) that the compiler keeps in SIMD
//!   registers, plus a 4-words-per-step loop for anything wider;
//! - [`MaskRow`] wraps one row as a value: up to 4 words inline (no heap)
//!   and a spill to `Vec<u64>` beyond 256 events;
//! - [`acyclic_masks`] is the single-word Kahn elimination previously
//!   duplicated (and drifting) in `arena.rs` and `uniproc.rs`;
//! - [`KahnScratch`] is its width-generic twin over row-major adjacency,
//!   with pooled buffers so steady-state checks allocate nothing.
//!
//! The 1-word path is bit-identical to the pre-refactor code: `wpr == 1`
//! callers hit the same single-`u64` operations as before, and
//! [`KahnScratch::is_acyclic_rows`] delegates 1-word graphs straight to
//! [`acyclic_masks`].

/// Words needed for a row of `n` bits.
#[inline]
pub(crate) fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// `dst |= src`, width-dispatched.
///
/// Rows of 1, 2 and 4 words (universes of 64, 128 and 256 events) take
/// explicit unrolled arms; anything else runs 4 words per step with a
/// remainder loop — which also serves the arena's whole-slot operators,
/// whose operands are `n` rows laid out contiguously.
#[inline]
pub(crate) fn or_words(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "row width mismatch");
    match dst.len() {
        0 => {}
        1 => dst[0] |= src[0],
        2 => {
            dst[0] |= src[0];
            dst[1] |= src[1];
        }
        4 => {
            dst[0] |= src[0];
            dst[1] |= src[1];
            dst[2] |= src[2];
            dst[3] |= src[3];
        }
        _ => {
            let mut d = dst.chunks_exact_mut(4);
            let mut s = src.chunks_exact(4);
            for (dc, sc) in (&mut d).zip(&mut s) {
                dc[0] |= sc[0];
                dc[1] |= sc[1];
                dc[2] |= sc[2];
                dc[3] |= sc[3];
            }
            for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
                *a |= b;
            }
        }
    }
}

/// `dst &= src`, width-dispatched like [`or_words`].
#[inline]
pub(crate) fn and_words(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "row width mismatch");
    match dst.len() {
        0 => {}
        1 => dst[0] &= src[0],
        2 => {
            dst[0] &= src[0];
            dst[1] &= src[1];
        }
        4 => {
            dst[0] &= src[0];
            dst[1] &= src[1];
            dst[2] &= src[2];
            dst[3] &= src[3];
        }
        _ => {
            let mut d = dst.chunks_exact_mut(4);
            let mut s = src.chunks_exact(4);
            for (dc, sc) in (&mut d).zip(&mut s) {
                dc[0] &= sc[0];
                dc[1] &= sc[1];
                dc[2] &= sc[2];
                dc[3] &= sc[3];
            }
            for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
                *a &= b;
            }
        }
    }
}

/// `dst &= !src`, width-dispatched like [`or_words`].
#[inline]
pub(crate) fn andnot_words(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "row width mismatch");
    match dst.len() {
        0 => {}
        1 => dst[0] &= !src[0],
        2 => {
            dst[0] &= !src[0];
            dst[1] &= !src[1];
        }
        4 => {
            dst[0] &= !src[0];
            dst[1] &= !src[1];
            dst[2] &= !src[2];
            dst[3] &= !src[3];
        }
        _ => {
            let mut d = dst.chunks_exact_mut(4);
            let mut s = src.chunks_exact(4);
            for (dc, sc) in (&mut d).zip(&mut s) {
                dc[0] &= !sc[0];
                dc[1] &= !sc[1];
                dc[2] &= !sc[2];
                dc[3] &= !sc[3];
            }
            for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
                *a &= !b;
            }
        }
    }
}

/// Does the row contain bit `b`?
#[inline]
pub(crate) fn row_test(row: &[u64], b: usize) -> bool {
    row[b / 64] >> (b % 64) & 1 == 1
}

/// Sets bit `b` in the row.
#[inline]
pub(crate) fn row_set(row: &mut [u64], b: usize) {
    row[b / 64] |= 1u64 << (b % 64);
}

/// One width-generic bit row: a successor or membership mask over a
/// universe of `n` nodes, `words_for(n)` words wide.
///
/// Rows of up to 4 words (256 nodes — every realistic litmus or scaled
/// family) live inline with no heap allocation; wider rows spill to a
/// `Vec<u64>` allocated once at construction. All operations run through
/// the width-dispatched kernels of this module, so a 1-word `MaskRow`
/// compiles to the same single-`u64` instructions the pre-refactor code
/// hard-wired.
///
/// # Examples
///
/// ```
/// use herd_core::maskrow::MaskRow;
/// let mut a = MaskRow::zero(130);
/// a.set(0);
/// a.set(129);
/// let mut b = MaskRow::zero(130);
/// b.set(129);
/// a.and(&b);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![129]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaskRow {
    /// Up to 4 words (256 nodes) stored inline; `len` is the row width in
    /// words, trailing array entries beyond it are unused and zero.
    Small {
        /// Row width in words (0..=4).
        len: u8,
        /// Inline word storage; only `words[..len]` is the row.
        words: [u64; 4],
    },
    /// Rows wider than 4 words, heap-backed.
    Wide(Vec<u64>),
}

impl MaskRow {
    /// The empty mask over a universe of `n` nodes.
    pub fn zero(n: usize) -> Self {
        let w = words_for(n);
        if w <= 4 {
            MaskRow::Small { len: w as u8, words: [0; 4] }
        } else {
            MaskRow::Wide(vec![0; w])
        }
    }

    /// The row's words, exactly `words_for(n)` of them.
    #[inline]
    pub fn words(&self) -> &[u64] {
        match self {
            MaskRow::Small { len, words } => &words[..*len as usize],
            MaskRow::Wide(v) => v,
        }
    }

    /// The row's words, mutable.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        match self {
            MaskRow::Small { len, words } => &mut words[..*len as usize],
            MaskRow::Wide(v) => v,
        }
    }

    /// Sets bit `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside the universe the row was built for.
    #[inline]
    pub fn set(&mut self, b: usize) {
        row_set(self.words_mut(), b);
    }

    /// Does the mask contain bit `b`? Out-of-universe bits read as unset.
    #[inline]
    pub fn test(&self, b: usize) -> bool {
        let words = self.words();
        b / 64 < words.len() && words[b / 64] >> (b % 64) & 1 == 1
    }

    /// `self |= other` (widths must match).
    pub fn or(&mut self, other: &MaskRow) {
        or_words(self.words_mut(), other.words());
    }

    /// `self &= other` (widths must match).
    pub fn and(&mut self, other: &MaskRow) {
        and_words(self.words_mut(), other.words());
    }

    /// `self &= !other` (widths must match).
    pub fn andnot(&mut self, other: &MaskRow) {
        andnot_words(self.words_mut(), other.words());
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the mask empty?
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Iterates over the set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let b = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(w * 64 + b)
            })
        })
    }
}

/// Kahn-style elimination over single-word successor masks of at most 64
/// nodes — the shared fast path of [`crate::arena::RelArena::is_acyclic`]
/// and [`crate::uniproc::LocGraph::is_uniproc`] (previously two private
/// copies that had already drifted in shape).
///
/// `adj[i]` is node `i`'s successor mask; the graph is acyclic iff nodes
/// with no live predecessor (other than themselves) can be removed until
/// none remain. Stack-only: no allocation whatever the outcome.
pub fn acyclic_masks(adj: &[u64]) -> bool {
    let m = adj.len();
    debug_assert!(m <= 64, "acyclic_masks caps at 64 nodes; use KahnScratch");
    let mut preds = [0u64; 64];
    for (i, &succ) in adj.iter().enumerate() {
        let mut s = succ;
        while s != 0 {
            let j = s.trailing_zeros() as usize;
            s &= s - 1;
            preds[j] |= 1 << i;
        }
    }
    let mut alive: u64 = if m == 64 { !0 } else { (1u64 << m) - 1 };
    loop {
        let mut removed = 0u64;
        let mut a = alive;
        while a != 0 {
            let i = a.trailing_zeros() as usize;
            a &= a - 1;
            if preds[i] & alive & !(1 << i) == 0 && adj[i] >> i & 1 == 0 {
                removed |= 1 << i;
            }
        }
        alive &= !removed;
        if alive == 0 {
            return true;
        }
        if removed == 0 {
            return false;
        }
    }
}

/// Pooled scratch for width-generic Kahn elimination: acyclicity of a
/// graph given as row-major successor masks (`m` rows of `wpr` words).
///
/// The buffers grow to the largest graph ever checked and are reused
/// afterwards, so steady-state checks allocate nothing — the same
/// discipline as the arena pool. One-word graphs skip the buffers
/// entirely and run [`acyclic_masks`] on the stack, keeping the ≤64-node
/// path bit-identical (and allocation-identical) to the pre-refactor
/// code.
#[derive(Debug, Default)]
pub struct KahnScratch {
    /// Row-major predecessor masks (the transpose of `adj`).
    preds: Vec<u64>,
    /// Mask of nodes not yet removed.
    alive: Vec<u64>,
    /// Mask of nodes removed this round.
    removed: Vec<u64>,
}

impl KahnScratch {
    /// Fresh scratch with empty pools.
    pub fn new() -> Self {
        KahnScratch::default()
    }

    /// Is the graph acyclic? `adj` holds `m` successor rows of `wpr`
    /// words each; bits at positions `>= m` must be zero.
    ///
    /// # Panics
    ///
    /// Panics if `adj` is shorter than `m * wpr`.
    pub fn is_acyclic_rows(&mut self, adj: &[u64], m: usize, wpr: usize) -> bool {
        assert!(adj.len() >= m * wpr, "adjacency shorter than m * wpr");
        if m == 0 {
            return true;
        }
        if wpr == 1 {
            return acyclic_masks(&adj[..m]);
        }
        self.preds.clear();
        self.preds.resize(m * wpr, 0);
        for i in 0..m {
            for w in 0..wpr {
                let mut word = adj[i * wpr + w];
                while word != 0 {
                    let j = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    debug_assert!(j < m, "successor bit beyond the node count");
                    row_set(&mut self.preds[j * wpr..(j + 1) * wpr], i);
                }
            }
        }
        self.alive.clear();
        self.alive.resize(wpr, !0u64);
        let tail = m % 64;
        if tail != 0 {
            self.alive[m / 64] = (1u64 << tail) - 1;
        }
        for w in self.alive[m.div_ceil(64)..].iter_mut() {
            *w = 0;
        }
        self.removed.clear();
        self.removed.resize(wpr, 0);
        loop {
            self.removed.fill(0);
            let mut any = false;
            for w in 0..wpr {
                let mut word = self.alive[w];
                while word != 0 {
                    let i = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if adj[i * wpr + w] >> (i % 64) & 1 == 1 {
                        continue; // self loop: never removable
                    }
                    let prow = &self.preds[i * wpr..(i + 1) * wpr];
                    let mut live_preds = false;
                    for (pw, (&p, &a)) in prow.iter().zip(&self.alive).enumerate() {
                        let mut v = p & a;
                        if pw == w {
                            v &= !(1u64 << (i % 64));
                        }
                        if v != 0 {
                            live_preds = true;
                            break;
                        }
                    }
                    if !live_preds {
                        row_set(&mut self.removed, i);
                        any = true;
                    }
                }
            }
            if !any {
                return false;
            }
            let mut empty = true;
            for (a, &r) in self.alive.iter_mut().zip(&self.removed) {
                *a &= !r;
                empty &= *a == 0;
            }
            if empty {
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    /// Owned-algebra reference: acyclic iff the transitive closure is
    /// irreflexive.
    fn acyclic_ref(n: usize, pairs: &[(usize, usize)]) -> bool {
        Relation::from_pairs(n, pairs.iter().copied()).is_acyclic()
    }

    fn rows_from(n: usize, pairs: &[(usize, usize)]) -> (Vec<u64>, usize) {
        let wpr = words_for(n);
        let mut adj = vec![0u64; n * wpr];
        for &(a, b) in pairs {
            row_set(&mut adj[a * wpr..(a + 1) * wpr], b);
        }
        (adj, wpr)
    }

    #[test]
    fn single_word_kahn_matches_fixture_cases() {
        assert!(acyclic_masks(&[0b010, 0b100, 0b000]));
        assert!(!acyclic_masks(&[0b010, 0b100, 0b001]));
        assert!(!acyclic_masks(&[0b001]), "self loop");
        assert!(acyclic_masks(&[]));
    }

    #[test]
    fn wide_kahn_agrees_with_the_single_word_path() {
        let mut k = KahnScratch::new();
        for &(n, pairs) in &[
            (3usize, &[(0, 1), (1, 2)][..]),
            (3, &[(0, 1), (1, 2), (2, 0)][..]),
            (64, &[(0, 63), (63, 1)][..]),
            (64, &[(0, 63), (63, 0)][..]),
        ] {
            let (adj, wpr) = rows_from(n, pairs);
            assert_eq!(wpr, 1);
            assert_eq!(k.is_acyclic_rows(&adj, n, wpr), acyclic_ref(n, pairs), "n={n}");
        }
    }

    #[test]
    fn chains_and_cycles_across_word_boundaries() {
        let mut k = KahnScratch::new();
        for n in [65usize, 127, 128, 129, 200, 300] {
            // A chain touching the first and last node of every word.
            let chain: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let (adj, wpr) = rows_from(n, &chain);
            assert!(wpr > 1);
            assert!(k.is_acyclic_rows(&adj, n, wpr), "n={n} chain");
            // Closing the chain makes every node cyclic.
            let mut cycle = chain.clone();
            cycle.push((n - 1, 0));
            let (adj, wpr) = rows_from(n, &cycle);
            assert!(!k.is_acyclic_rows(&adj, n, wpr), "n={n} cycle");
            // A self loop alone is a cycle, wherever the bit lands.
            let (adj, wpr) = rows_from(n, &[(n - 1, n - 1)]);
            assert!(!k.is_acyclic_rows(&adj, n, wpr), "n={n} self loop");
        }
    }

    #[test]
    fn wide_kahn_matches_owned_closure_on_pseudorandom_graphs() {
        // Deterministic LCG so the test needs no external randomness.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut k = KahnScratch::new();
        for &n in &[63usize, 64, 65, 127, 128, 129] {
            for density in 1..=3u64 {
                let mut pairs = Vec::new();
                for _ in 0..(n as u64 * density) {
                    let a = (next() % n as u64) as usize;
                    let b = (next() % n as u64) as usize;
                    if a != b {
                        pairs.push((a, b));
                    }
                }
                let (adj, wpr) = rows_from(n, &pairs);
                assert_eq!(
                    k.is_acyclic_rows(&adj, n, wpr),
                    acyclic_ref(n, &pairs),
                    "n={n} density={density}"
                );
            }
        }
    }

    #[test]
    fn kahn_scratch_buffers_are_reused_across_sizes() {
        let mut k = KahnScratch::new();
        let (big, wpr_big) = rows_from(129, &[(0, 128), (128, 64)]);
        assert!(k.is_acyclic_rows(&big, 129, wpr_big));
        // A smaller graph afterwards must not read stale pool contents.
        let (small, wpr_small) = rows_from(65, &[(64, 0), (0, 64)]);
        assert!(!k.is_acyclic_rows(&small, 65, wpr_small));
        let (small_ok, _) = rows_from(65, &[(64, 0)]);
        assert!(k.is_acyclic_rows(&small_ok, 65, wpr_small));
    }

    #[test]
    fn mask_row_ops_match_reference_sets() {
        for n in [5usize, 64, 65, 129, 300] {
            let mut a = MaskRow::zero(n);
            let mut b = MaskRow::zero(n);
            for i in (0..n).step_by(3) {
                a.set(i);
            }
            for i in (0..n).step_by(2) {
                b.set(i);
            }
            let mut and = a.clone();
            and.and(&b);
            assert!(and.iter().all(|i| i % 6 == 0), "n={n}");
            assert_eq!(and.count(), n.div_ceil(6), "n={n}");
            let mut or = a.clone();
            or.or(&b);
            assert_eq!(or.count(), (0..n).filter(|i| i % 3 == 0 || i % 2 == 0).count());
            let mut diff = a.clone();
            diff.andnot(&b);
            assert!(diff.iter().all(|i| i % 3 == 0 && i % 2 != 0));
            assert!(!diff.test(0));
            assert!(a.test(0) && !a.test(1));
            assert!(!a.test(n + 64), "out-of-universe bits read unset");
        }
    }

    #[test]
    fn mask_row_stays_inline_up_to_256_bits() {
        assert!(matches!(MaskRow::zero(256), MaskRow::Small { len: 4, .. }));
        assert!(matches!(MaskRow::zero(257), MaskRow::Wide(_)));
        assert_eq!(MaskRow::zero(0).words(), &[] as &[u64]);
    }
}
