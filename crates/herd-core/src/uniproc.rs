//! Early SC PER LOCATION pruning for candidate enumeration.
//!
//! herd is fast because it prunes candidate executions eagerly instead of
//! generating-then-filtering (paper, Sec 8.3): the first axiom of Fig 5,
//! `acyclic(po-loc ∪ com)`, only ever relates same-location events, so the
//! constraint graph decomposes into one independent subgraph per location.
//! As soon as the read-from sources of a location's reads and the coherence
//! order of its writes are fixed, that location's subgraph can be checked —
//! and if it is cyclic, every completion of the remaining locations is
//! doomed, so the whole rf×co subtree is skipped before a single
//! [`crate::exec::Execution`] is materialised.
//!
//! [`LocGraphs`] precomputes, once per skeleton, the per-location membership
//! and `po-loc` edges as ≤64-bit masks; [`LocGraph::is_uniproc`] then checks
//! one location against a candidate `(rf, co)` choice with a handful of word
//! operations and no allocation.

use crate::enumerate::HeapPerm;
use crate::event::{Dir, Loc};
use crate::relation::Relation;

/// The identity of one event, as the pruner sees it: direction, location,
/// and whether it is an initial write (co-minimal by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventShape {
    /// Read or write.
    pub dir: Dir,
    /// Location accessed.
    pub loc: Loc,
    /// Initial write (location's pre-state)?
    pub init: bool,
}

/// The per-location communication subgraphs of one skeleton.
#[derive(Clone, Debug)]
pub struct LocGraphs {
    graphs: Vec<LocGraph>,
    /// Locations with more than 64 events: beyond the bitmask width, so
    /// they stream unpruned. Surfaced (instead of silently degrading) so
    /// drivers can tell the user why a huge test suddenly stopped pruning.
    oversized: Vec<Loc>,
}

/// One location's subgraph: members, local indices and `po-loc` masks.
#[derive(Clone, Debug)]
pub struct LocGraph {
    loc: Loc,
    /// Global event ids of the members; position = local index.
    members: Vec<usize>,
    /// Local index by global event id (`NOT_LOCAL` for other locations) —
    /// O(1) lookups in the per-permutation check.
    local_of: Vec<u8>,
    /// `po-loc` successor masks, indexed by local index (RR pairs already
    /// dropped when the architecture tolerates load-load hazards).
    po_mask: Vec<u64>,
    /// Local-index mask of the location's initial writes.
    init_mask: u64,
    /// Local-index mask of the location's reads.
    read_mask: u64,
}

/// Sentinel in [`LocGraph::local_of`] for events of other locations.
const NOT_LOCAL: u8 = u8::MAX;

impl LocGraphs {
    /// Builds the per-location graphs for a skeleton.
    ///
    /// `drop_rr` removes read-read pairs from the `po-loc` edges, matching
    /// architectures that tolerate load-load hazards (ARM-llh, Sparc RMO —
    /// paper Tab VII / Sec 4.9); pruning with the weakened graph never
    /// discards a candidate such an architecture would allow.
    ///
    /// Locations with more than 64 events (beyond the bitmask width, far
    /// past litmus scale) simply get no graph: enumeration falls back to
    /// unpruned streaming for them — fewer prunes, never a crash, and the
    /// axioms still filter those candidates downstream.
    pub fn new(shape: &[EventShape], po: &Relation, drop_rr: bool) -> Self {
        assert_eq!(po.universe(), shape.len(), "po universe mismatch");
        let mut locs: Vec<Loc> = shape.iter().map(|s| s.loc).collect();
        locs.sort_unstable();
        locs.dedup();

        let mut graphs = Vec::new();
        let mut oversized = Vec::new();
        for loc in locs {
            let members: Vec<usize> = (0..shape.len()).filter(|&id| shape[id].loc == loc).collect();
            // A lone event can never close a cycle; an oversized location
            // exceeds the mask width and streams unpruned instead — and is
            // recorded, so the degradation is visible to the driver.
            if members.len() > 64 {
                oversized.push(loc);
                continue;
            }
            if members.len() < 2 {
                continue;
            }
            let mut local_of = vec![NOT_LOCAL; shape.len()];
            for (i, &gid) in members.iter().enumerate() {
                local_of[gid] = i as u8;
            }
            let local = |gid: usize| local_of[gid] as usize;
            let mut po_mask = vec![0u64; members.len()];
            let mut init_mask = 0u64;
            let mut read_mask = 0u64;
            for (i, &a) in members.iter().enumerate() {
                if shape[a].init {
                    init_mask |= 1 << i;
                }
                if shape[a].dir == Dir::R {
                    read_mask |= 1 << i;
                }
                for &b in &members {
                    if po.contains(a, b)
                        && !(drop_rr && shape[a].dir == Dir::R && shape[b].dir == Dir::R)
                    {
                        po_mask[i] |= 1 << local(b);
                    }
                }
            }
            graphs.push(LocGraph { loc, members, local_of, po_mask, init_mask, read_mask });
        }
        LocGraphs { graphs, oversized }
    }

    /// The non-trivial location graphs (locations with ≥ 2 events).
    pub fn graphs(&self) -> &[LocGraph] {
        &self.graphs
    }

    /// Locations whose event count exceeds the 64-bit mask width: these
    /// stream *unpruned* (every coherence permutation survives the menu
    /// filter), which is sound but can make a huge test look mysteriously
    /// slow. Drivers surface the count in their enumeration stats.
    pub fn oversized(&self) -> &[Loc] {
        &self.oversized
    }

    /// The graph of one location, if non-trivial.
    pub fn graph_for(&self, loc: Loc) -> Option<&LocGraph> {
        self.graphs.iter().find(|g| g.loc == loc)
    }

    /// Filters every location's coherence permutations down to the
    /// uniproc-valid ones under the current rf sources — the per-rf-config
    /// step shared by both enumeration front ends. `locs[i]` names the
    /// location whose non-initial writes are `writes[i]`; an empty menu
    /// means the whole rf subtree is doomed.
    pub fn co_menus(
        &self,
        locs: &[Loc],
        writes: &[Vec<usize>],
        rf_src: &[usize],
    ) -> Vec<Vec<Vec<usize>>> {
        locs.iter()
            .zip(writes)
            .map(|(l, ws)| {
                let graph = self.graph_for(*l);
                let mut valid = Vec::new();
                let mut heap = HeapPerm::new(ws.clone());
                loop {
                    if graph.is_none_or(|g| g.is_uniproc(heap.current(), rf_src)) {
                        valid.push(heap.current().to_vec());
                    }
                    if !heap.advance() {
                        break;
                    }
                }
                valid
            })
            .collect()
    }

    /// Refills a reusable [`CoMenus`] with the uniproc-valid coherence
    /// permutations under the current rf sources — the allocation-free
    /// twin of [`LocGraphs::co_menus`] used by the arena-backed engine.
    pub fn co_menus_into(&self, locs: &[Loc], rf_src: &[usize], menus: &mut CoMenus) {
        menus.refill(Some(self), locs, rf_src);
    }

    /// Checks the locations carrying no coherence digit (only reads beyond
    /// the initial write, so excluded from `co_locs`): their `rf`/`po-loc`
    /// edges are fixed by the rf choice alone and need checking once per
    /// rf configuration.
    pub fn rf_only_consistent(&self, co_locs: &[Loc], rf_src: &[usize]) -> bool {
        self.graphs.iter().filter(|g| !co_locs.contains(&g.loc)).all(|g| g.is_uniproc(&[], rf_src))
    }
}

/// Reusable per-rf-configuration coherence menus: the uniproc-valid
/// orders of every location, stored in buffers that survive from one rf
/// configuration to the next.
///
/// [`LocGraphs::co_menus`] allocates a fresh nested vector per rf
/// configuration; at arena-engine scale that is the last allocation left
/// in the rf scope. `CoMenus` keeps one [`HeapPerm`] generator and one
/// order pool per location, so after the first few configurations have
/// warmed the pools a [`CoMenus::refill`] allocates nothing.
pub struct CoMenus {
    per_loc: Vec<MenuLoc>,
}

struct MenuLoc {
    /// Cycling in-place permutation generator over the location's writes.
    heap: HeapPerm,
    /// Pooled storage for the valid orders; only `len` entries are live.
    orders: Vec<Vec<usize>>,
    len: usize,
}

impl CoMenus {
    /// Builds the buffers for the given per-location write lists (the
    /// same `loc_writes` tables the enumerators carry).
    pub fn new(loc_writes: &[Vec<usize>]) -> Self {
        CoMenus {
            per_loc: loc_writes
                .iter()
                .map(|ws| MenuLoc { heap: HeapPerm::new(ws.clone()), orders: Vec::new(), len: 0 })
                .collect(),
        }
    }

    /// Refills every location's menu for the current rf sources;
    /// `graphs = None` keeps every permutation (no pruning).
    pub fn refill(&mut self, graphs: Option<&LocGraphs>, locs: &[Loc], rf_src: &[usize]) {
        assert_eq!(locs.len(), self.per_loc.len(), "location count mismatch");
        for (ml, l) in self.per_loc.iter_mut().zip(locs) {
            let graph = graphs.and_then(|g| g.graph_for(*l));
            ml.len = 0;
            loop {
                if graph.is_none_or(|g| g.is_uniproc(ml.heap.current(), rf_src)) {
                    if ml.len < ml.orders.len() {
                        ml.orders[ml.len].clear();
                        ml.orders[ml.len].extend_from_slice(ml.heap.current());
                    } else {
                        ml.orders.push(ml.heap.current().to_vec());
                    }
                    ml.len += 1;
                }
                if !ml.heap.advance() {
                    break; // generator cycled back to the initial order
                }
            }
        }
    }

    /// Number of locations carrying a menu.
    pub fn loc_count(&self) -> usize {
        self.per_loc.len()
    }

    /// Number of valid orders of location `li` under the current refill.
    pub fn radix(&self, li: usize) -> usize {
        self.per_loc[li].len
    }

    /// The `k`-th valid order of location `li`.
    pub fn order(&self, li: usize, k: usize) -> &[usize] {
        assert!(k < self.per_loc[li].len, "menu index out of range");
        &self.per_loc[li].orders[k]
    }

    /// Product of all radices (saturating): the number of coherence
    /// combinations surviving this rf configuration.
    pub fn kept(&self) -> u128 {
        self.per_loc.iter().map(|m| m.len as u128).fold(1u128, u128::saturating_mul)
    }

    /// Advances a caller-held odometer over the menus; `false` on wrap.
    pub fn bump(&self, pick: &mut [usize]) -> bool {
        for (d, ml) in pick.iter_mut().zip(&self.per_loc) {
            if *d + 1 < ml.len {
                *d += 1;
                return true;
            }
            *d = 0;
        }
        false
    }
}

impl LocGraph {
    /// The location this graph covers.
    pub fn loc(&self) -> Loc {
        self.loc
    }

    /// Checks SC PER LOCATION for this location under one data-flow choice.
    ///
    /// * `co_order` — the location's non-initial writes as global event
    ///   ids, in coherence order (initial writes are co-minimal).
    /// * `rf_src` — global read-from source, indexed by global event id;
    ///   only this location's read entries are consulted.
    ///
    /// Returns `true` when `po-loc ∪ rf ∪ co ∪ fr` restricted to this
    /// location is acyclic.
    pub fn is_uniproc(&self, co_order: &[usize], rf_src: &[usize]) -> bool {
        let m = self.members.len();
        let mut adj = [0u64; 64];
        adj[..m].copy_from_slice(&self.po_mask);

        // Masks of "co-strictly-after" per order position (also recorded
        // per local index, for the fr lookup below), plus the mask of
        // every ordered write (what the initial writes precede).
        let mut order_bits = 0u64;
        let mut after = [0u64; 64];
        let mut after_of_local = [0u64; 64];
        for (k, &w) in co_order.iter().enumerate().rev() {
            let li = self.local(w);
            after[k] = order_bits;
            after_of_local[li] = order_bits;
            order_bits |= 1 << li;
        }
        // co edges: each write precedes the later ones; inits precede all.
        for (k, &w) in co_order.iter().enumerate() {
            adj[self.local(w)] |= after[k];
        }
        let mut im = self.init_mask;
        while im != 0 {
            let i = im.trailing_zeros() as usize;
            adj[i] |= order_bits;
            im &= im - 1;
        }
        // rf and fr edges per read.
        let mut rm = self.read_mask;
        while rm != 0 {
            let r = rm.trailing_zeros() as usize;
            rm &= rm - 1;
            let w = rf_src[self.members[r]];
            let lw = self.local(w);
            adj[lw] |= 1 << r;
            // fr: the read precedes every write co-after its source.
            let co_after =
                if self.init_mask >> lw & 1 == 1 { order_bits } else { after_of_local[lw] };
            adj[r] |= co_after;
        }

        acyclic_masks(&adj[..m])
    }

    #[inline]
    fn local(&self, gid: usize) -> usize {
        let li = self.local_of[gid];
        debug_assert_ne!(li, NOT_LOCAL, "event {gid} does not belong to this location");
        li as usize
    }
}

/// Kahn-style elimination over an adjacency-mask graph of ≤ 64 nodes.
fn acyclic_masks(adj: &[u64]) -> bool {
    let m = adj.len();
    let mut preds = [0u64; 64];
    for (i, &succ) in adj.iter().enumerate() {
        let mut s = succ;
        while s != 0 {
            let j = s.trailing_zeros() as usize;
            s &= s - 1;
            preds[j] |= 1 << i;
        }
    }
    let mut alive: u64 = if m == 64 { !0 } else { (1u64 << m) - 1 };
    loop {
        let mut removed = 0u64;
        let mut a = alive;
        while a != 0 {
            let i = a.trailing_zeros() as usize;
            a &= a - 1;
            if preds[i] & alive & !(1 << i) == 0 && adj[i] >> i & 1 == 0 {
                removed |= 1 << i;
            }
        }
        alive &= !removed;
        if alive == 0 {
            return true;
        }
        if removed == 0 {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// coWW at location x: T0 writes x twice (ids 1, 2), init id 0.
    fn coww_shape() -> (Vec<EventShape>, Relation) {
        let x = Loc(0);
        let shape = vec![
            EventShape { dir: Dir::W, loc: x, init: true },
            EventShape { dir: Dir::W, loc: x, init: false },
            EventShape { dir: Dir::W, loc: x, init: false },
        ];
        let po = Relation::from_pairs(3, [(1, 2)]);
        (shape, po)
    }

    #[test]
    fn co_against_po_is_cyclic() {
        let (shape, po) = coww_shape();
        let graphs = LocGraphs::new(&shape, &po, false);
        let g = graphs.graph_for(Loc(0)).unwrap();
        let rf: Vec<usize> = vec![0; 3];
        assert!(g.is_uniproc(&[1, 2], &rf), "co follows po");
        assert!(!g.is_uniproc(&[2, 1], &rf), "co against po: uniproc violation");
    }

    /// coRR: T1 reads x twice; reading new-then-old is a violation unless
    /// load-load hazards are tolerated.
    fn corr_shape() -> (Vec<EventShape>, Relation) {
        let x = Loc(0);
        let shape = vec![
            EventShape { dir: Dir::W, loc: x, init: true },
            EventShape { dir: Dir::W, loc: x, init: false },
            EventShape { dir: Dir::R, loc: x, init: false },
            EventShape { dir: Dir::R, loc: x, init: false },
        ];
        let po = Relation::from_pairs(4, [(2, 3)]);
        (shape, po)
    }

    #[test]
    fn load_load_hazard_depends_on_rr_edges() {
        let (shape, po) = corr_shape();
        // Hazard: first read sees the new write, second the initial state.
        let rf = vec![0, 0, 1, 0];
        let strict = LocGraphs::new(&shape, &po, false);
        assert!(!strict.graph_for(Loc(0)).unwrap().is_uniproc(&[1], &rf));
        let llh = LocGraphs::new(&shape, &po, true);
        assert!(llh.graph_for(Loc(0)).unwrap().is_uniproc(&[1], &rf), "llh tolerates the hazard");
        // Reading in coherence order is fine either way.
        let ok_rf = vec![0, 0, 0, 1];
        assert!(strict.graph_for(Loc(0)).unwrap().is_uniproc(&[1], &ok_rf));
    }

    #[test]
    fn trivial_locations_have_no_graph() {
        let shape = vec![
            EventShape { dir: Dir::W, loc: Loc(0), init: true },
            EventShape { dir: Dir::W, loc: Loc(1), init: true },
            EventShape { dir: Dir::W, loc: Loc(1), init: false },
        ];
        let po = Relation::empty(3);
        let graphs = LocGraphs::new(&shape, &po, false);
        assert!(graphs.graph_for(Loc(0)).is_none(), "single event: nothing to check");
        assert!(graphs.graph_for(Loc(1)).is_some());
    }

    #[test]
    fn oversized_locations_fall_back_to_unpruned() {
        // 65 writes at one location: beyond the mask width. The location
        // gets no graph (no panic), while a small sibling keeps its own.
        let mut shape: Vec<EventShape> =
            (0..65).map(|_| EventShape { dir: Dir::W, loc: Loc(0), init: false }).collect();
        shape.push(EventShape { dir: Dir::W, loc: Loc(1), init: true });
        shape.push(EventShape { dir: Dir::W, loc: Loc(1), init: false });
        let po = Relation::empty(shape.len());
        let graphs = LocGraphs::new(&shape, &po, false);
        assert!(graphs.graph_for(Loc(0)).is_none(), "oversized location streams unpruned");
        assert!(graphs.graph_for(Loc(1)).is_some(), "small locations still prune");
        assert!(graphs.rf_only_consistent(&[], &vec![0; shape.len()]));
        assert_eq!(graphs.oversized(), &[Loc(0)], "the degradation is surfaced, not silent");
    }

    #[test]
    fn acyclic_masks_detects_cycles() {
        assert!(acyclic_masks(&[0b010, 0b100, 0b000]));
        assert!(!acyclic_masks(&[0b010, 0b100, 0b001]));
        assert!(!acyclic_masks(&[0b001]), "self loop");
        assert!(acyclic_masks(&[]));
    }
}
