//! Early SC PER LOCATION pruning for candidate enumeration.
//!
//! herd is fast because it prunes candidate executions eagerly instead of
//! generating-then-filtering (paper, Sec 8.3): the first axiom of Fig 5,
//! `acyclic(po-loc ∪ com)`, only ever relates same-location events, so the
//! constraint graph decomposes into one independent subgraph per location.
//! As soon as the read-from sources of a location's reads and the coherence
//! order of its writes are fixed, that location's subgraph can be checked —
//! and if it is cyclic, every completion of the remaining locations is
//! doomed, so the whole rf×co subtree is skipped before a single
//! [`crate::exec::Execution`] is materialised.
//!
//! [`LocGraphs`] precomputes, once per skeleton, the per-location membership
//! and `po-loc` edges as width-generic bit rows ([`crate::maskrow`]);
//! [`LocGraph::is_uniproc`] then checks one location against a candidate
//! `(rf, co)` choice with a handful of word operations. Locations of up to
//! 64 events run entirely on the stack with no allocation (the layout the
//! engine's zero-allocation guarantee is pinned to); wider locations use
//! multi-word rows through a pooled [`LocScratch`]. The only remaining cap
//! is [`MAX_LOC_MEMBERS`] (local indices are `u16`), and locations past it
//! are still *counted* in [`LocGraphs::oversized`], never dropped silently.

use crate::enumerate::HeapPerm;
use crate::event::{Dir, Loc};
use crate::maskrow::{acyclic_masks, or_words, row_set, words_for, KahnScratch, MaskRow};
use crate::relation::Relation;

/// The identity of one event, as the pruner sees it: direction, location,
/// and whether it is an initial write (co-minimal by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventShape {
    /// Read or write.
    pub dir: Dir,
    /// Location accessed.
    pub loc: Loc,
    /// Initial write (location's pre-state)?
    pub init: bool,
}

/// The per-location communication subgraphs of one skeleton.
#[derive(Clone, Debug)]
pub struct LocGraphs {
    graphs: Vec<LocGraph>,
    /// Locations with more than [`MAX_LOC_MEMBERS`] events: beyond the
    /// `u16` local-index width, so they stream unpruned. Surfaced
    /// (instead of silently degrading) so drivers can tell the user why
    /// a huge test suddenly stopped pruning.
    oversized: Vec<Loc>,
}

/// One location's subgraph: members, local indices and `po-loc` rows.
#[derive(Clone, Debug)]
pub struct LocGraph {
    loc: Loc,
    /// Global event ids of the members; position = local index.
    members: Vec<usize>,
    /// Local index by global event id (`NOT_LOCAL` for other locations) —
    /// O(1) lookups in the per-permutation check.
    local_of: Vec<u16>,
    /// Words per row (`words_for(members.len())`).
    wpr: usize,
    /// `po-loc` successor rows, row-major by local index (RR pairs
    /// already dropped when the architecture tolerates load-load
    /// hazards).
    po_mask: Vec<u64>,
    /// Local-index mask of the location's initial writes.
    init_mask: MaskRow,
    /// Local-index mask of the location's reads.
    read_mask: MaskRow,
}

/// Sentinel in [`LocGraph::local_of`] for events of other locations.
const NOT_LOCAL: u16 = u16::MAX;

/// The genuine per-location member cap: local indices are `u16` with one
/// sentinel value reserved. Locations past it (nothing any realistic
/// test approaches — the old cap was 64) are counted in
/// [`LocGraphs::oversized`] and stream unpruned.
pub const MAX_LOC_MEMBERS: usize = u16::MAX as usize;

impl LocGraphs {
    /// Builds the per-location graphs for a skeleton.
    ///
    /// `drop_rr` removes read-read pairs from the `po-loc` edges, matching
    /// architectures that tolerate load-load hazards (ARM-llh, Sparc RMO —
    /// paper Tab VII / Sec 4.9); pruning with the weakened graph never
    /// discards a candidate such an architecture would allow.
    ///
    /// Locations of any width up to [`MAX_LOC_MEMBERS`] get a graph; the
    /// (purely theoretical) remainder falls back to unpruned streaming —
    /// fewer prunes, never a crash, and the axioms still filter those
    /// candidates downstream.
    pub fn new(shape: &[EventShape], po: &Relation, drop_rr: bool) -> Self {
        Self::with_member_cap(shape, po, drop_rr, MAX_LOC_MEMBERS)
    }

    /// [`LocGraphs::new`] with an explicit member cap, so the counted
    /// fallback stays testable without building a 65536-event shape.
    fn with_member_cap(shape: &[EventShape], po: &Relation, drop_rr: bool, cap: usize) -> Self {
        assert_eq!(po.universe(), shape.len(), "po universe mismatch");
        let mut locs: Vec<Loc> = shape.iter().map(|s| s.loc).collect();
        locs.sort_unstable();
        locs.dedup();

        let mut graphs = Vec::new();
        let mut oversized = Vec::new();
        for loc in locs {
            let members: Vec<usize> = (0..shape.len()).filter(|&id| shape[id].loc == loc).collect();
            // A lone event can never close a cycle; an oversized location
            // exceeds the local-index width and streams unpruned instead —
            // and is recorded, so the degradation is visible to the driver.
            if members.len() > cap {
                oversized.push(loc);
                continue;
            }
            if members.len() < 2 {
                continue;
            }
            let m = members.len();
            let wpr = words_for(m);
            let mut local_of = vec![NOT_LOCAL; shape.len()];
            for (i, &gid) in members.iter().enumerate() {
                local_of[gid] = i as u16;
            }
            let local = |gid: usize| local_of[gid] as usize;
            let mut po_mask = vec![0u64; m * wpr];
            let mut init_mask = MaskRow::zero(m);
            let mut read_mask = MaskRow::zero(m);
            for (i, &a) in members.iter().enumerate() {
                if shape[a].init {
                    init_mask.set(i);
                }
                if shape[a].dir == Dir::R {
                    read_mask.set(i);
                }
                for &b in &members {
                    if po.contains(a, b)
                        && !(drop_rr && shape[a].dir == Dir::R && shape[b].dir == Dir::R)
                    {
                        row_set(&mut po_mask[i * wpr..(i + 1) * wpr], local(b));
                    }
                }
            }
            graphs.push(LocGraph { loc, members, local_of, wpr, po_mask, init_mask, read_mask });
        }
        LocGraphs { graphs, oversized }
    }

    /// The non-trivial location graphs (locations with ≥ 2 events).
    pub fn graphs(&self) -> &[LocGraph] {
        &self.graphs
    }

    /// Locations whose event count exceeds [`MAX_LOC_MEMBERS`]: these
    /// stream *unpruned* (every coherence permutation survives the menu
    /// filter), which is sound but can make a huge test look mysteriously
    /// slow. Drivers surface the count in their enumeration stats. With
    /// width-generic rows the cap is the `u16` local-index width, not the
    /// old 64-bit mask width — empty for every realistic workload.
    pub fn oversized(&self) -> &[Loc] {
        &self.oversized
    }

    /// The graph of one location, if non-trivial.
    pub fn graph_for(&self, loc: Loc) -> Option<&LocGraph> {
        self.graphs.iter().find(|g| g.loc == loc)
    }

    /// Filters every location's coherence permutations down to the
    /// uniproc-valid ones under the current rf sources — the per-rf-config
    /// step shared by both enumeration front ends. `locs[i]` names the
    /// location whose non-initial writes are `writes[i]`; an empty menu
    /// means the whole rf subtree is doomed.
    pub fn co_menus(
        &self,
        locs: &[Loc],
        writes: &[Vec<usize>],
        rf_src: &[usize],
    ) -> Vec<Vec<Vec<usize>>> {
        let mut scratch = LocScratch::new();
        locs.iter()
            .zip(writes)
            .map(|(l, ws)| {
                let graph = self.graph_for(*l);
                let mut valid = Vec::new();
                let mut heap = HeapPerm::new(ws.clone());
                loop {
                    if graph.is_none_or(|g| g.is_uniproc_in(heap.current(), rf_src, &mut scratch)) {
                        valid.push(heap.current().to_vec());
                    }
                    if !heap.advance() {
                        break;
                    }
                }
                valid
            })
            .collect()
    }

    /// Refills a reusable [`CoMenus`] with the uniproc-valid coherence
    /// permutations under the current rf sources — the allocation-free
    /// twin of [`LocGraphs::co_menus`] used by the arena-backed engine.
    pub fn co_menus_into(&self, locs: &[Loc], rf_src: &[usize], menus: &mut CoMenus) {
        menus.refill(Some(self), locs, rf_src);
    }

    /// Checks the locations carrying no coherence digit (only reads beyond
    /// the initial write, so excluded from `co_locs`): their `rf`/`po-loc`
    /// edges are fixed by the rf choice alone and need checking once per
    /// rf configuration.
    pub fn rf_only_consistent(&self, co_locs: &[Loc], rf_src: &[usize]) -> bool {
        self.graphs.iter().filter(|g| !co_locs.contains(&g.loc)).all(|g| g.is_uniproc(&[], rf_src))
    }

    /// [`LocGraphs::rf_only_consistent`] through a [`CoMenus`]' pooled
    /// scratch — the hot-loop variant the arena engine calls once per rf
    /// configuration, so wide locations stay allocation-free there too.
    pub fn rf_only_consistent_pooled(
        &self,
        co_locs: &[Loc],
        rf_src: &[usize],
        menus: &mut CoMenus,
    ) -> bool {
        let scratch = &mut menus.scratch;
        self.graphs
            .iter()
            .filter(|g| !co_locs.contains(&g.loc))
            .all(|g| g.is_uniproc_in(&[], rf_src, scratch))
    }
}

/// Reusable per-rf-configuration coherence menus: the uniproc-valid
/// orders of every location, stored in buffers that survive from one rf
/// configuration to the next.
///
/// [`LocGraphs::co_menus`] allocates a fresh nested vector per rf
/// configuration; at arena-engine scale that is the last allocation left
/// in the rf scope. `CoMenus` keeps one [`HeapPerm`] generator and one
/// order pool per location (plus one [`LocScratch`] for wide locations),
/// so after the first few configurations have warmed the pools a
/// [`CoMenus::refill`] allocates nothing.
pub struct CoMenus {
    per_loc: Vec<MenuLoc>,
    /// Pooled row scratch for locations wider than 64 members.
    scratch: LocScratch,
}

struct MenuLoc {
    /// Cycling in-place permutation generator over the location's writes.
    heap: HeapPerm,
    /// Pooled storage for the valid orders; only `len` entries are live.
    orders: Vec<Vec<usize>>,
    len: usize,
}

impl CoMenus {
    /// Builds the buffers for the given per-location write lists (the
    /// same `loc_writes` tables the enumerators carry).
    pub fn new(loc_writes: &[Vec<usize>]) -> Self {
        CoMenus {
            per_loc: loc_writes
                .iter()
                .map(|ws| MenuLoc { heap: HeapPerm::new(ws.clone()), orders: Vec::new(), len: 0 })
                .collect(),
            scratch: LocScratch::new(),
        }
    }

    /// Refills every location's menu for the current rf sources;
    /// `graphs = None` keeps every permutation (no pruning).
    pub fn refill(&mut self, graphs: Option<&LocGraphs>, locs: &[Loc], rf_src: &[usize]) {
        assert_eq!(locs.len(), self.per_loc.len(), "location count mismatch");
        let scratch = &mut self.scratch;
        for (ml, l) in self.per_loc.iter_mut().zip(locs) {
            let graph = graphs.and_then(|g| g.graph_for(*l));
            ml.len = 0;
            loop {
                if graph.is_none_or(|g| g.is_uniproc_in(ml.heap.current(), rf_src, scratch)) {
                    if ml.len < ml.orders.len() {
                        ml.orders[ml.len].clear();
                        ml.orders[ml.len].extend_from_slice(ml.heap.current());
                    } else {
                        ml.orders.push(ml.heap.current().to_vec());
                    }
                    ml.len += 1;
                }
                if !ml.heap.advance() {
                    break; // generator cycled back to the initial order
                }
            }
        }
    }

    /// Number of locations carrying a menu.
    pub fn loc_count(&self) -> usize {
        self.per_loc.len()
    }

    /// Number of valid orders of location `li` under the current refill.
    pub fn radix(&self, li: usize) -> usize {
        self.per_loc[li].len
    }

    /// The `k`-th valid order of location `li`.
    pub fn order(&self, li: usize, k: usize) -> &[usize] {
        assert!(k < self.per_loc[li].len, "menu index out of range");
        &self.per_loc[li].orders[k]
    }

    /// Product of all radices (saturating): the number of coherence
    /// combinations surviving this rf configuration.
    pub fn kept(&self) -> u128 {
        self.per_loc.iter().map(|m| m.len as u128).fold(1u128, u128::saturating_mul)
    }

    /// Advances a caller-held odometer over the menus; `false` on wrap.
    pub fn bump(&self, pick: &mut [usize]) -> bool {
        for (d, ml) in pick.iter_mut().zip(&self.per_loc) {
            if *d + 1 < ml.len {
                *d += 1;
                return true;
            }
            *d = 0;
        }
        false
    }
}

/// Pooled scratch rows for checking locations wider than 64 members:
/// the adjacency, "co-strictly-after" and ordered-write rows of
/// [`LocGraph::is_uniproc_in`], plus a [`KahnScratch`] for the final
/// elimination. Grows to the widest location ever checked, allocates
/// nothing afterwards. Locations of ≤ 64 members never touch it.
#[derive(Debug, Default)]
pub struct LocScratch {
    adj: Vec<u64>,
    after_of_local: Vec<u64>,
    order_bits: Vec<u64>,
    kahn: KahnScratch,
}

impl LocScratch {
    /// Fresh scratch with empty pools.
    pub fn new() -> Self {
        LocScratch::default()
    }

    fn ensure(&mut self, m: usize, wpr: usize) {
        let need = m * wpr;
        if self.adj.len() < need {
            self.adj.resize(need, 0);
            self.after_of_local.resize(need, 0);
        }
        if self.order_bits.len() < wpr {
            self.order_bits.resize(wpr, 0);
        }
    }
}

impl LocGraph {
    /// The location this graph covers.
    pub fn loc(&self) -> Loc {
        self.loc
    }

    /// Checks SC PER LOCATION for this location under one data-flow choice.
    ///
    /// * `co_order` — the location's non-initial writes as global event
    ///   ids, in coherence order (initial writes are co-minimal).
    /// * `rf_src` — global read-from source, indexed by global event id;
    ///   only this location's read entries are consulted.
    ///
    /// Returns `true` when `po-loc ∪ rf ∪ co ∪ fr` restricted to this
    /// location is acyclic. Locations of ≤ 64 members run on the stack;
    /// wider ones allocate a temporary [`LocScratch`] — hot paths hold a
    /// pooled one and call [`LocGraph::is_uniproc_in`] instead.
    pub fn is_uniproc(&self, co_order: &[usize], rf_src: &[usize]) -> bool {
        if self.members.len() <= 64 {
            self.is_uniproc_narrow(co_order, rf_src)
        } else {
            self.is_uniproc_wide(co_order, rf_src, &mut LocScratch::new())
        }
    }

    /// [`LocGraph::is_uniproc`] with caller-pooled scratch: ≤64-member
    /// locations ignore it (stack masks), wider ones reuse its rows so
    /// the steady state allocates nothing at any width.
    pub fn is_uniproc_in(
        &self,
        co_order: &[usize],
        rf_src: &[usize],
        scratch: &mut LocScratch,
    ) -> bool {
        if self.members.len() <= 64 {
            self.is_uniproc_narrow(co_order, rf_src)
        } else {
            self.is_uniproc_wide(co_order, rf_src, scratch)
        }
    }

    /// The single-word fast path: stack arrays, bit-identical to the
    /// pre-width-generic implementation.
    fn is_uniproc_narrow(&self, co_order: &[usize], rf_src: &[usize]) -> bool {
        let m = self.members.len();
        debug_assert_eq!(self.wpr, 1, "narrow path requires single-word rows");
        let mut adj = [0u64; 64];
        adj[..m].copy_from_slice(&self.po_mask);
        let init_mask = self.init_mask.words()[0];
        let read_mask = self.read_mask.words()[0];

        // Masks of "co-strictly-after" per order position (also recorded
        // per local index, for the fr lookup below), plus the mask of
        // every ordered write (what the initial writes precede).
        let mut order_bits = 0u64;
        let mut after = [0u64; 64];
        let mut after_of_local = [0u64; 64];
        for (k, &w) in co_order.iter().enumerate().rev() {
            let li = self.local(w);
            after[k] = order_bits;
            after_of_local[li] = order_bits;
            order_bits |= 1 << li;
        }
        // co edges: each write precedes the later ones; inits precede all.
        for (k, &w) in co_order.iter().enumerate() {
            adj[self.local(w)] |= after[k];
        }
        let mut im = init_mask;
        while im != 0 {
            let i = im.trailing_zeros() as usize;
            adj[i] |= order_bits;
            im &= im - 1;
        }
        // rf and fr edges per read.
        let mut rm = read_mask;
        while rm != 0 {
            let r = rm.trailing_zeros() as usize;
            rm &= rm - 1;
            let w = rf_src[self.members[r]];
            let lw = self.local(w);
            adj[lw] |= 1 << r;
            // fr: the read precedes every write co-after its source.
            let co_after = if init_mask >> lw & 1 == 1 { order_bits } else { after_of_local[lw] };
            adj[r] |= co_after;
        }

        acyclic_masks(&adj[..m])
    }

    /// The multi-word path: the same graph over row-major rows in the
    /// pooled scratch. `after[k]` from the narrow path is not
    /// materialised — it always equals `after_of_local[local(co_order[k])]`.
    fn is_uniproc_wide(&self, co_order: &[usize], rf_src: &[usize], s: &mut LocScratch) -> bool {
        let m = self.members.len();
        let wpr = self.wpr;
        s.ensure(m, wpr);
        let LocScratch { adj, after_of_local, order_bits, kahn } = s;
        let adj = &mut adj[..m * wpr];
        let aol = &mut after_of_local[..m * wpr];
        let ob = &mut order_bits[..wpr];
        adj.copy_from_slice(&self.po_mask);
        aol.fill(0);
        ob.fill(0);
        for &w in co_order.iter().rev() {
            let li = self.local(w);
            aol[li * wpr..(li + 1) * wpr].copy_from_slice(ob);
            row_set(ob, li);
        }
        // co edges: each write precedes the later ones; inits precede all.
        for &w in co_order {
            let li = self.local(w);
            or_words(&mut adj[li * wpr..(li + 1) * wpr], &aol[li * wpr..(li + 1) * wpr]);
        }
        for i in self.init_mask.iter() {
            or_words(&mut adj[i * wpr..(i + 1) * wpr], ob);
        }
        // rf and fr edges per read.
        for r in self.read_mask.iter() {
            let w = rf_src[self.members[r]];
            let lw = self.local(w);
            row_set(&mut adj[lw * wpr..(lw + 1) * wpr], r);
            // fr: the read precedes every write co-after its source.
            let co_after: &[u64] =
                if self.init_mask.test(lw) { ob } else { &aol[lw * wpr..(lw + 1) * wpr] };
            or_words(&mut adj[r * wpr..(r + 1) * wpr], co_after);
        }

        kahn.is_acyclic_rows(adj, m, wpr)
    }

    #[inline]
    fn local(&self, gid: usize) -> usize {
        let li = self.local_of[gid];
        debug_assert_ne!(li, NOT_LOCAL, "event {gid} does not belong to this location");
        li as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// coWW at location x: T0 writes x twice (ids 1, 2), init id 0.
    fn coww_shape() -> (Vec<EventShape>, Relation) {
        let x = Loc(0);
        let shape = vec![
            EventShape { dir: Dir::W, loc: x, init: true },
            EventShape { dir: Dir::W, loc: x, init: false },
            EventShape { dir: Dir::W, loc: x, init: false },
        ];
        let po = Relation::from_pairs(3, [(1, 2)]);
        (shape, po)
    }

    #[test]
    fn co_against_po_is_cyclic() {
        let (shape, po) = coww_shape();
        let graphs = LocGraphs::new(&shape, &po, false);
        let g = graphs.graph_for(Loc(0)).unwrap();
        let rf: Vec<usize> = vec![0; 3];
        assert!(g.is_uniproc(&[1, 2], &rf), "co follows po");
        assert!(!g.is_uniproc(&[2, 1], &rf), "co against po: uniproc violation");
    }

    /// coRR: T1 reads x twice; reading new-then-old is a violation unless
    /// load-load hazards are tolerated.
    fn corr_shape() -> (Vec<EventShape>, Relation) {
        let x = Loc(0);
        let shape = vec![
            EventShape { dir: Dir::W, loc: x, init: true },
            EventShape { dir: Dir::W, loc: x, init: false },
            EventShape { dir: Dir::R, loc: x, init: false },
            EventShape { dir: Dir::R, loc: x, init: false },
        ];
        let po = Relation::from_pairs(4, [(2, 3)]);
        (shape, po)
    }

    #[test]
    fn load_load_hazard_depends_on_rr_edges() {
        let (shape, po) = corr_shape();
        // Hazard: first read sees the new write, second the initial state.
        let rf = vec![0, 0, 1, 0];
        let strict = LocGraphs::new(&shape, &po, false);
        assert!(!strict.graph_for(Loc(0)).unwrap().is_uniproc(&[1], &rf));
        let llh = LocGraphs::new(&shape, &po, true);
        assert!(llh.graph_for(Loc(0)).unwrap().is_uniproc(&[1], &rf), "llh tolerates the hazard");
        // Reading in coherence order is fine either way.
        let ok_rf = vec![0, 0, 0, 1];
        assert!(strict.graph_for(Loc(0)).unwrap().is_uniproc(&[1], &ok_rf));
    }

    #[test]
    fn trivial_locations_have_no_graph() {
        let shape = vec![
            EventShape { dir: Dir::W, loc: Loc(0), init: true },
            EventShape { dir: Dir::W, loc: Loc(1), init: true },
            EventShape { dir: Dir::W, loc: Loc(1), init: false },
        ];
        let po = Relation::empty(3);
        let graphs = LocGraphs::new(&shape, &po, false);
        assert!(graphs.graph_for(Loc(0)).is_none(), "single event: nothing to check");
        assert!(graphs.graph_for(Loc(1)).is_some());
    }

    /// A one-location shape of `n` non-init writes in one po chain.
    fn write_chain_shape(n: usize) -> (Vec<EventShape>, Relation) {
        let shape: Vec<EventShape> =
            (0..n).map(|_| EventShape { dir: Dir::W, loc: Loc(0), init: false }).collect();
        let po = Relation::from_pairs(n, (0..n - 1).map(|i| (i, i + 1)));
        (shape, po)
    }

    #[test]
    fn locations_past_64_members_now_prune() {
        // 65 writes at one location: beyond the old 64-bit mask width.
        // The location now gets a multi-word graph and keeps pruning.
        let (shape, po) = write_chain_shape(65);
        let graphs = LocGraphs::new(&shape, &po, false);
        assert!(graphs.oversized().is_empty(), "65 members fit the u16 local-index width");
        let g = graphs.graph_for(Loc(0)).expect("wide location has a graph");
        let rf: Vec<usize> = vec![0; shape.len()];
        let in_po: Vec<usize> = (0..65).collect();
        assert!(g.is_uniproc(&in_po, &rf), "co along po is uniproc");
        let mut against: Vec<usize> = in_po.clone();
        against.swap(0, 64); // puts the po-last write co-first
        assert!(!g.is_uniproc(&against, &rf), "co against po still caught past 64 members");
    }

    #[test]
    fn wide_locations_match_owned_acyclicity() {
        // The wide path against the owned algebra: po-loc ∪ co over 130
        // writes, co orders that respect or contradict a po edge.
        let (shape, po) = write_chain_shape(130);
        let graphs = LocGraphs::new(&shape, &po, false);
        let g = graphs.graph_for(Loc(0)).unwrap();
        let rf: Vec<usize> = vec![0; shape.len()];
        for (a, b, want) in [(129, 0, false), (0, 129, true)] {
            let mut order: Vec<usize> = (0..130).collect();
            if !want {
                order.swap(a, b);
            }
            let co = Relation::from_pairs(130, order.windows(2).map(|w| (w[0], w[1])));
            let owned_ok = po.union(&co.tclosure()).is_acyclic();
            assert_eq!(g.is_uniproc(&order, &rf), owned_ok, "({a},{b})");
            assert_eq!(owned_ok, want);
        }
    }

    #[test]
    fn member_cap_fallback_is_counted_not_silent() {
        // The genuine cap (u16 local indices) is far past anything a test
        // reaches, so exercise the counted fallback with an artificial cap.
        let (shape, po) = write_chain_shape(5);
        let graphs = LocGraphs::with_member_cap(&shape, &po, false, 4);
        assert!(graphs.graph_for(Loc(0)).is_none(), "capped location streams unpruned");
        assert!(graphs.rf_only_consistent(&[], &vec![0; shape.len()]));
        assert_eq!(graphs.oversized(), &[Loc(0)], "the degradation is surfaced, not silent");
        // At the real cap the same shape gets its graph.
        let full = LocGraphs::new(&shape, &po, false);
        assert!(full.graph_for(Loc(0)).is_some());
        assert!(full.oversized().is_empty());
    }

    #[test]
    fn pooled_scratch_matches_the_allocating_path() {
        let (shape, po) = write_chain_shape(70);
        let graphs = LocGraphs::new(&shape, &po, false);
        let g = graphs.graph_for(Loc(0)).unwrap();
        let rf: Vec<usize> = vec![0; shape.len()];
        let mut scratch = LocScratch::new();
        let in_po: Vec<usize> = (0..70).collect();
        let mut against = in_po.clone();
        against.swap(10, 69);
        // Alternate outcomes through one scratch: no stale state.
        for _ in 0..3 {
            assert!(g.is_uniproc_in(&in_po, &rf, &mut scratch));
            assert!(!g.is_uniproc_in(&against, &rf, &mut scratch));
        }
        assert_eq!(g.is_uniproc(&in_po, &rf), true);
        assert_eq!(g.is_uniproc(&against, &rf), false);
    }
}
