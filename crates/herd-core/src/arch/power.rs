//! IBM Power as an instance of the framework (Fig 17, 18, 25).
//!
//! Fences: `ffence = sync`, `lwfence = lwsync \ WR` (plus `eieio ∩ WW`,
//! Sec 4.7), `cfence = isync` (which only enters `ppo` via `ctrl+cfence`).
//! Propagation (Fig 18):
//!
//! ```text
//! hb        = ppo ∪ fences ∪ rfe
//! A-cumul   = rfe; fences
//! prop-base = (fences ∪ A-cumul); hb*
//! prop      = (prop-base ∩ WW) ∪ (com*; prop-base*; ffence; hb*)
//! ```

use crate::arena::{RelArena, RelId};
use crate::event::{Dir, Fence};
use crate::exec::{ExecCore, ExecFrame, Execution};
use crate::model::{Architecture, ArenaArchRels, Tractability};
use crate::ppo::{self, PpoConfig, PpoEnvelope};
use crate::relation::Relation;

/// The Power architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Power {
    ppo_cfg: PpoConfig,
}

impl Power {
    /// The paper's Power model.
    pub fn new() -> Self {
        Power { ppo_cfg: PpoConfig::power() }
    }

    /// The "more static" ablation of Sec 8.2: `rdw` and `detour` dropped
    /// from the preserved program order.
    pub fn without_dynamic_ppo() -> Self {
        Power { ppo_cfg: PpoConfig::power().without_dynamic() }
    }

    /// The ppo configuration in force.
    pub fn ppo_config(&self) -> &PpoConfig {
        &self.ppo_cfg
    }

    /// `ffence = sync`.
    pub fn ffence(&self, x: &Execution) -> Relation {
        x.fence(Fence::Sync)
    }

    /// `lwfence = (lwsync \ WR) ∪ (eieio ∩ WW)` (Fig 17 plus the `eieio`
    /// discussion of Sec 4.7).
    pub fn lwfence(&self, x: &Execution) -> Relation {
        let lw = x.fence(Fence::Lwsync);
        let lw_wr = x.dir_restrict(&lw, Some(Dir::W), Some(Dir::R));
        let eieio_ww = x.dir_restrict(&x.fence(Fence::Eieio), Some(Dir::W), Some(Dir::W));
        lw.minus(&lw_wr).union(&eieio_ww)
    }

    /// The fence relation computed from a core alone: directions and fence
    /// placement are skeleton-invariant, so this equals
    /// [`Power::fences`](Architecture::fences) on every candidate.
    fn fences_static(core: &ExecCore) -> Relation {
        let lw = core.fence(Fence::Lwsync);
        let lw_wr = core.dir_restrict(&lw, Some(Dir::W), Some(Dir::R));
        let eieio_ww = core.dir_restrict(&core.fence(Fence::Eieio), Some(Dir::W), Some(Dir::W));
        lw.minus(&lw_wr).union(&eieio_ww).union(&core.fence(Fence::Sync))
    }

    /// Arena twin of [`Power::fences_static`]: computes the
    /// `(fences, ffence)` slot pair for one candidate. Shared by the
    /// exact and frozen-ppo relation evaluators.
    fn fences_arena(core: &ExecCore, arena: &mut RelArena) -> (RelId, RelId) {
        let fences = arena.alloc_from(core.fence_ref(Fence::Lwsync));
        let t = arena.alloc();
        core.dir_restrict_arena(arena, t, fences, Some(Dir::W), Some(Dir::R));
        arena.minus_into(fences, t);
        core.dir_restrict_arena(arena, t, core.fence_ref(Fence::Eieio), Some(Dir::W), Some(Dir::W));
        arena.union_into(fences, t);
        arena.union_into(fences, core.fence_ref(Fence::Sync));
        let ffence = arena.alloc_from(core.fence_ref(Fence::Sync));
        (fences, ffence)
    }
}

impl Default for Power {
    fn default() -> Self {
        Power::new()
    }
}

impl Architecture for Power {
    fn name(&self) -> &str {
        if self.ppo_cfg.rdw_in_ii0 {
            "Power"
        } else {
            "Power-static-ppo"
        }
    }

    fn ppo(&self, x: &Execution) -> Relation {
        ppo::compute(x, &self.ppo_cfg).ppo
    }

    fn fences(&self, x: &Execution) -> Relation {
        self.lwfence(x).union(&self.ffence(x))
    }

    fn prop(&self, x: &Execution) -> Relation {
        prop_power_arm(x, &self.ppo(x), &self.fences(x), &self.ffence(x))
    }

    fn thin_air_fences(&self, core: &ExecCore) -> Relation {
        Power::fences_static(core)
    }

    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        // The static ppo fixpoint (rdw/rfi/detour emptied) is ⊆ ppo on
        // every candidate; the static fence suffix covers the fence part
        // of hb and, compositionally, the A-cumulativity pairs.
        Some(ppo::compute_static(core, &self.ppo_cfg).union(&self.thin_air_fences(core)))
    }

    fn tractability(&self) -> Tractability {
        Tractability::Conditional
    }

    fn ppo_envelope(&self, core: &ExecCore) -> Option<PpoEnvelope> {
        Some(PpoEnvelope::compute(core, &self.ppo_cfg))
    }

    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        let core = fx.core.as_ref();
        let ppo = ppo::compute_arena(fx, &self.ppo_cfg, arena);
        // fences = lwfence ∪ ffence = ((lwsync \ WR) ∪ (eieio ∩ WW)) ∪ sync.
        let (fences, ffence) = Power::fences_arena(core, arena);
        let prop = prop_power_arm_arena(fx, ppo, fences, ffence, arena);
        ArenaArchRels { ppo, fences, prop }
    }

    fn arch_rels_arena_frozen(
        &self,
        fx: &ExecFrame<'_>,
        ppo_bound: RelId,
        arena: &mut RelArena,
    ) -> ArenaArchRels {
        // Fences are skeleton-invariant; prop is rebuilt from the frozen
        // bound (its hb* sequences through ppo), so every returned
        // relation is independent of the candidate's rdw/rfi/detour.
        let (fences, ffence) = Power::fences_arena(fx.core.as_ref(), arena);
        let prop = prop_power_arm_arena(fx, ppo_bound, fences, ffence, arena);
        ArenaArchRels { ppo: ppo_bound, fences, prop }
    }
}

/// The shared Power/ARM propagation order of Fig 18, reused by the ARM
/// instances (and by downstream comparison models) with their own fence
/// definitions.
pub fn prop_power_arm(
    x: &Execution,
    ppo: &Relation,
    fences: &Relation,
    ffence: &Relation,
) -> Relation {
    let hb = ppo.union(fences).union(x.rfe());
    let hb_star = hb.rtclosure();
    let a_cumul = x.rfe().seq(fences);
    let prop_base = fences.union(&a_cumul).seq(&hb_star);
    let prop_base_ww = x.dir_restrict(&prop_base, Some(Dir::W), Some(Dir::W));
    let com_star = x.com().rtclosure();
    let strong = com_star.seq(&prop_base.rtclosure()).seq(ffence).seq(&hb_star);
    prop_base_ww.union(&strong)
}

/// Arena twin of [`prop_power_arm`]: computes the Fig 18 propagation
/// order for one arena-backed candidate from already-computed `ppo`,
/// `fences` and `ffence` slots. Temporaries live under the caller's mark.
pub fn prop_power_arm_arena(
    fx: &ExecFrame<'_>,
    ppo: RelId,
    fences: RelId,
    ffence: RelId,
    arena: &mut RelArena,
) -> RelId {
    let core = fx.core.as_ref();
    // hb = ppo ∪ fences ∪ rfe, and hb*.
    let hb = arena.alloc_from(ppo);
    arena.union_into(hb, fences);
    arena.union_into(hb, fx.rels.rfe);
    let hb_star = arena.alloc();
    arena.rtclosure_into(hb_star, hb);
    // prop-base = (fences ∪ A-cumul); hb*, with A-cumul = rfe; fences.
    let lhs = arena.alloc();
    arena.seq_into(lhs, fx.rels.rfe, fences);
    arena.union_into(lhs, fences);
    let prop_base = arena.alloc();
    arena.seq_into(prop_base, lhs, hb_star);
    let prop = arena.alloc();
    core.dir_restrict_arena(arena, prop, prop_base, Some(Dir::W), Some(Dir::W));
    // strong part: com*; prop-base*; ffence; hb*.
    let com_star = arena.alloc();
    arena.rtclosure_into(com_star, fx.rels.com);
    let pb_star = arena.alloc();
    arena.rtclosure_into(pb_star, prop_base);
    let t = arena.alloc();
    arena.seq_into(t, com_star, pb_star);
    let t2 = arena.alloc();
    arena.seq_into(t2, t, ffence);
    arena.seq_into(t, t2, hb_star);
    arena.union_into(prop, t);
    prop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, Device};
    use crate::model::check;

    const LWF: Device = Device::Fence(Fence::Lwsync);
    const FF: Device = Device::Fence(Fence::Sync);

    #[test]
    fn power_allows_bare_patterns() {
        for (name, x) in [
            ("mp", fixtures::mp(Device::None, Device::None)),
            ("sb", fixtures::sb(Device::None, Device::None)),
            ("lb", fixtures::lb(Device::None, Device::None)),
            ("iriw", fixtures::iriw(Device::None, Device::None)),
            ("2+2w", fixtures::two_plus_two_w(Device::None, Device::None)),
        ] {
            assert!(check(&Power::new(), &x).allowed(), "{name} bare must be allowed");
        }
    }

    #[test]
    fn fig8_mp_lwfence_ppo_forbidden() {
        let x = fixtures::mp(LWF, Device::Addr);
        let v = check(&Power::new(), &x);
        assert!(!v.allowed());
        assert!(!v.observation, "mp is the OBSERVATION archetype");
    }

    #[test]
    fn fig7_lb_ppos_forbidden() {
        let v = check(&Power::new(), &fixtures::lb(Device::Addr, Device::Addr));
        assert!(!v.no_thin_air);
    }

    #[test]
    fn fig13_2_2w_lwfences_forbidden_by_propagation() {
        let v = check(&Power::new(), &fixtures::two_plus_two_w(LWF, LWF));
        assert!(!v.propagation);
        assert!(v.observation, "no fre in 2+2w");
    }

    #[test]
    fn fig14_sb_needs_full_fences() {
        let power = Power::new();
        assert!(check(&power, &fixtures::sb(LWF, LWF)).allowed(), "lwsync too weak for sb");
        assert!(!check(&power, &fixtures::sb(FF, FF)).allowed());
    }

    #[test]
    fn fig16_r_needs_full_fences_but_s_needs_only_lwfence() {
        let power = Power::new();
        assert!(check(&power, &fixtures::r(LWF, FF)).allowed(), "r+lwsync+sync allowed");
        assert!(!check(&power, &fixtures::r(FF, FF)).allowed(), "r+ffences forbidden");
        assert!(!check(&power, &fixtures::s(LWF, Device::Addr)).allowed(), "s+lwfence+ppo");
    }

    #[test]
    fn fig19_w_rwc_eieio_allowed_because_eieio_is_ww_only() {
        let power = Power::new();
        let x = fixtures::w_rwc(Device::Fence(Fence::Eieio), Device::Addr, FF);
        assert!(check(&power, &x).allowed(), "eieio is not a full fence");
        let x_sync = fixtures::w_rwc(FF, Device::Addr, FF);
        assert!(!check(&power, &x_sync).allowed(), "sync in place of eieio forbids it");
    }

    #[test]
    fn fig20_iriw_ffences_forbidden() {
        assert!(!check(&Power::new(), &fixtures::iriw(FF, FF)).allowed());
        assert!(
            check(&Power::new(), &fixtures::iriw(LWF, LWF)).allowed(),
            "lwsync is too weak for iriw (strong A-cumulativity needs sync)"
        );
    }

    #[test]
    fn cumulativity_wrc_and_isa2() {
        let power = Power::new();
        // Fig 11: A-cumulativity of lwsync.
        assert!(!check(&power, &fixtures::wrc(LWF, Device::Addr)).allowed());
        // Fig 12: B-cumulativity of lwsync.
        assert!(!check(&power, &fixtures::isa2(LWF, Device::Addr, Device::Addr)).allowed());
        // Fig 13(b).
        assert!(!check(&power, &fixtures::w_rw_2w(LWF, LWF)).allowed());
        // Fig 15: rwc needs syncs.
        assert!(!check(&power, &fixtures::rwc(FF, FF)).allowed());
        assert!(check(&power, &fixtures::rwc(LWF, LWF)).allowed());
    }
}
