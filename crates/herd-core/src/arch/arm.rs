//! The ARM models of the paper (Sec 8.1.2, Tab VII).
//!
//! Three variants share the Power skeleton:
//!
//! - **Power-ARM**: the Power model with ARM fences (`ffence = dmb ∪ dsb`,
//!   no lightweight fence, `cfence = isb`). Invalidated by ARM hardware on
//!   the early-commit behaviours (Fig 32/33).
//! - **Proposed**: `cc0` loses `po-loc`, so same-location accesses may
//!   commit out of order (early commit), allowing Fig 32/33.
//! - **Proposed-llh**: additionally drops read-read pairs from the
//!   SC-PER-LOCATION `po-loc` (load-load hazards, the acknowledged
//!   Cortex-A9 bug), used to filter hardware logs.
//!
//! `.st` fences order write-write pairs only; the paper takes them to be
//! full fences restricted to `WW` (with the lightweight alternative kept
//! as an option, Sec 4.7).

use crate::arena::{RelArena, RelId};
use crate::event::{Dir, Fence};
use crate::exec::{ExecCore, ExecFrame, Execution};
use crate::model::{Architecture, ArenaArchRels, Tractability};
use crate::ppo::{self, PpoConfig, PpoEnvelope};
use crate::relation::Relation;

use super::power::{prop_power_arm, prop_power_arm_arena};

/// Which ARM model variant (Tab VII).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArmVariant {
    /// The Power model verbatim with ARM fences.
    PowerArm,
    /// The paper's proposed ARM model (early commit allowed).
    #[default]
    Proposed,
    /// Proposed model plus load-load hazards in SC PER LOCATION.
    ProposedLlh,
}

/// The ARM architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arm {
    variant: ArmVariant,
    /// Treat `dmb.st`/`dsb.st` as *lightweight* WW fences instead of
    /// WW-restricted full fences (the alternative of Sec 4.7).
    st_fences_lightweight: bool,
}

impl Arm {
    /// Builds the given variant with the paper's default `.st` semantics.
    pub fn new(variant: ArmVariant) -> Self {
        Arm { variant, st_fences_lightweight: false }
    }

    /// Same, but with `.st` fences as lightweight fences (would allow
    /// `w+rwc+dmb.st+addr+dmb`, Fig 19's ARM analogue).
    pub fn with_lightweight_st_fences(variant: ArmVariant) -> Self {
        Arm { variant, st_fences_lightweight: true }
    }

    /// The variant in force.
    pub fn variant(&self) -> ArmVariant {
        self.variant
    }

    fn st_ww(&self, x: &Execution) -> Relation {
        let st = x.fence(Fence::DmbSt).union(&x.fence(Fence::DsbSt));
        x.dir_restrict(&st, Some(Dir::W), Some(Dir::W))
    }

    /// `ffence = dmb ∪ dsb (∪ .st ∩ WW when .st fences are full)`.
    pub fn ffence(&self, x: &Execution) -> Relation {
        let mut ff = x.fence(Fence::Dmb).union(&x.fence(Fence::Dsb));
        if !self.st_fences_lightweight {
            ff.union_with(&self.st_ww(x));
        }
        ff
    }

    /// `lwfence = ∅`, or `.st ∩ WW` under the lightweight alternative.
    pub fn lwfence(&self, x: &Execution) -> Relation {
        if self.st_fences_lightweight {
            self.st_ww(x)
        } else {
            Relation::empty(x.len())
        }
    }

    fn ppo_config(&self) -> PpoConfig {
        match self.variant {
            ArmVariant::PowerArm => PpoConfig::power(),
            ArmVariant::Proposed | ArmVariant::ProposedLlh => PpoConfig::arm(),
        }
    }

    /// The fence relation from a core alone: directions and fence
    /// placement are skeleton-invariant, so this equals
    /// [`Arm::fences`](Architecture::fences) on every candidate.
    fn fences_static(&self, core: &ExecCore) -> Relation {
        let st = core.fence(Fence::DmbSt).union(&core.fence(Fence::DsbSt));
        let st_ww = core.dir_restrict(&st, Some(Dir::W), Some(Dir::W));
        // Full or lightweight, .st ∩ WW ends up in fences either way.
        core.fence(Fence::Dmb).union(&core.fence(Fence::Dsb)).union(&st_ww)
    }

    /// Arena `(fences, ffence)` pair for one candidate — skeleton
    /// -invariant, shared by the exact and frozen-ppo relation
    /// evaluators.
    fn fences_arena(&self, core: &ExecCore, arena: &mut RelArena) -> (RelId, RelId) {
        // st_ww = (dmb.st ∪ dsb.st) ∩ WW.
        let st_ww = arena.alloc_from(core.fence_ref(Fence::DmbSt));
        arena.union_into(st_ww, core.fence_ref(Fence::DsbSt));
        let t = arena.alloc();
        core.dir_restrict_arena(arena, t, st_ww, Some(Dir::W), Some(Dir::W));
        arena.copy_into(st_ww, t);
        // ffence = dmb ∪ dsb (∪ st_ww unless .st is lightweight);
        // fences = lwfence ∪ ffence with lwfence = st_ww when lightweight.
        let ffence = arena.alloc_from(core.fence_ref(Fence::Dmb));
        arena.union_into(ffence, core.fence_ref(Fence::Dsb));
        if !self.st_fences_lightweight {
            arena.union_into(ffence, st_ww);
        }
        let fences = arena.alloc_from(ffence);
        if self.st_fences_lightweight {
            arena.union_into(fences, st_ww);
        }
        (fences, ffence)
    }
}

impl Default for Arm {
    fn default() -> Self {
        Arm::new(ArmVariant::default())
    }
}

impl Architecture for Arm {
    fn name(&self) -> &str {
        match self.variant {
            ArmVariant::PowerArm => "Power-ARM",
            ArmVariant::Proposed => "ARM",
            ArmVariant::ProposedLlh => "ARM-llh",
        }
    }

    fn ppo(&self, x: &Execution) -> Relation {
        ppo::compute(x, &self.ppo_config()).ppo
    }

    fn fences(&self, x: &Execution) -> Relation {
        self.lwfence(x).union(&self.ffence(x))
    }

    fn prop(&self, x: &Execution) -> Relation {
        prop_power_arm(x, &self.ppo(x), &self.fences(x), &self.ffence(x))
    }

    fn tolerates_load_load_hazards(&self) -> bool {
        self.variant == ArmVariant::ProposedLlh
    }

    fn thin_air_fences(&self, core: &ExecCore) -> Relation {
        self.fences_static(core)
    }

    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        Some(ppo::compute_static(core, &self.ppo_config()).union(&self.thin_air_fences(core)))
    }

    fn tractability(&self) -> Tractability {
        Tractability::Conditional
    }

    fn ppo_envelope(&self, core: &ExecCore) -> Option<PpoEnvelope> {
        Some(PpoEnvelope::compute(core, &self.ppo_config()))
    }

    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        let ppo = ppo::compute_arena(fx, &self.ppo_config(), arena);
        let (fences, ffence) = self.fences_arena(fx.core.as_ref(), arena);
        let prop = prop_power_arm_arena(fx, ppo, fences, ffence, arena);
        ArenaArchRels { ppo, fences, prop }
    }

    fn arch_rels_arena_frozen(
        &self,
        fx: &ExecFrame<'_>,
        ppo_bound: RelId,
        arena: &mut RelArena,
    ) -> ArenaArchRels {
        // Fences are skeleton-invariant; prop is rebuilt from the frozen
        // bound so nothing depends on the candidate's rdw/rfi/detour.
        let (fences, ffence) = self.fences_arena(fx.core.as_ref(), arena);
        let prop = prop_power_arm_arena(fx, ppo_bound, fences, ffence, arena);
        ArenaArchRels { ppo: ppo_bound, fences, prop }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, Device, ExecBuilder};
    use crate::model::check;

    const DMB: Device = Device::Fence(Fence::Dmb);

    #[test]
    fn arm_forbids_mp_with_dmb_and_dep() {
        let x = fixtures::mp(DMB, Device::Addr);
        assert!(!check(&Arm::new(ArmVariant::Proposed), &x).allowed());
    }

    #[test]
    fn arm_has_no_lightweight_fence_so_dmb_does_full_work() {
        // sb needs full fences; dmb qualifies on ARM.
        let x = fixtures::sb(DMB, DMB);
        assert!(!check(&Arm::new(ArmVariant::Proposed), &x).allowed());
        // iriw+dmbs is forbidden (Fig 20, ARM documentation).
        let x = fixtures::iriw(DMB, DMB);
        assert!(!check(&Arm::new(ArmVariant::Proposed), &x).allowed());
    }

    #[test]
    fn dsb_behaves_as_dmb() {
        let x = fixtures::sb(Device::Fence(Fence::Dsb), Device::Fence(Fence::Dsb));
        assert!(!check(&Arm::new(ArmVariant::Proposed), &x).allowed());
    }

    #[test]
    fn st_fences_order_writes_only() {
        let arm = Arm::new(ArmVariant::Proposed);
        // 2+2w with dmb.st on both sides: WW pairs, so forbidden.
        let x = fixtures::two_plus_two_w(Device::Fence(Fence::DmbSt), Device::Fence(Fence::DmbSt));
        assert!(!check(&arm, &x).allowed());
        // sb with dmb.st: the fenced pairs are WR, so .st does nothing.
        let x = fixtures::sb(Device::Fence(Fence::DmbSt), Device::Fence(Fence::DmbSt));
        assert!(check(&arm, &x).allowed());
    }

    #[test]
    fn st_fence_strength_choice_shows_on_w_rwc() {
        // Fig 19's ARM analogue: w+rwc+dmb.st+addr+dmb. Full-.st forbids,
        // lightweight-.st allows.
        let x = fixtures::w_rwc(Device::Fence(Fence::DmbSt), Device::Addr, DMB);
        assert!(!check(&Arm::new(ArmVariant::Proposed), &x).allowed());
        assert!(check(&Arm::with_lightweight_st_fences(ArmVariant::Proposed), &x).allowed());
    }

    /// The early-commit execution of Fig 32 (mp+dmb+fri-rfi-ctrlisb):
    /// T0: Wx=1; dmb; Wy=1 — T1: Ry=1; Wy=2; Ry=2; ctrl+isb; Rx=0.
    fn mp_dmb_fri_rfi_ctrlisb() -> crate::exec::Execution {
        let mut b = ExecBuilder::new();
        let a = b.write(0, "x", 1);
        let w_flag = b.write(0, "y", 1);
        let c = b.read(1, "y", 1);
        let d = b.write(1, "y", 2);
        let e = b.read(1, "y", 2);
        let f = b.read_init(1, "x");
        b.rf(w_flag, c).rf(d, e).co(w_flag, d).fence(Fence::Dmb, a, w_flag).ctrl_cfence(e, f);
        b.build().unwrap()
    }

    #[test]
    fn fig32_separates_power_arm_from_proposed_arm() {
        let x = mp_dmb_fri_rfi_ctrlisb();
        assert!(
            !check(&Arm::new(ArmVariant::PowerArm), &x).allowed(),
            "Power-ARM wrongly forbids the observed behaviour"
        );
        assert!(
            check(&Arm::new(ArmVariant::Proposed), &x).allowed(),
            "the proposed ARM model allows early commit"
        );
    }

    #[test]
    fn llh_variant_tolerates_load_load_hazards() {
        let x = fixtures::co_rr();
        assert!(!check(&Arm::new(ArmVariant::Proposed), &x).allowed());
        assert!(check(&Arm::new(ArmVariant::ProposedLlh), &x).allowed());
        // But coWW stays forbidden even with llh.
        let x = fixtures::co_ww();
        assert!(!check(&Arm::new(ArmVariant::ProposedLlh), &x).allowed());
    }
}
