//! C++ restricted to release-acquire atomics (Fig 21, Sec 4.8).
//!
//! `ppo = sb` (we take sequenced-before to be `po`), no fences, and
//! `prop = hb⁺` with `hb = sb ∪ rf`. The paper's generic PROPAGATION
//! axiom (`acyclic(co ∪ prop)`) is slightly *stronger* than the standard's
//! `HBVSMO` (`irreflexive(hb⁺; mo)`); [`CppRaStrength`] selects either.

use crate::arena::RelArena;
use crate::exec::{ExecCore, ExecFrame, Execution};
use crate::model::{Architecture, ArenaArchRels, PropagationCheck};
use crate::relation::Relation;

/// Which PROPAGATION variant the instance uses (Sec 4.8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CppRaStrength {
    /// The paper's default: full `acyclic(co ∪ prop)` (written "C++ R-A ≈").
    #[default]
    PaperStrong,
    /// The exact standard: weaken PROPAGATION to `irreflexive(prop; co)`.
    StandardExact,
}

/// C++ with all atomics release/acquire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CppRa {
    strength: CppRaStrength,
}

impl CppRa {
    /// Builds the instance with the requested PROPAGATION strength.
    pub fn new(strength: CppRaStrength) -> Self {
        CppRa { strength }
    }

    /// The chosen strength.
    pub fn strength(&self) -> CppRaStrength {
        self.strength
    }
}

impl Architecture for CppRa {
    fn name(&self) -> &str {
        match self.strength {
            CppRaStrength::PaperStrong => "C++RA",
            CppRaStrength::StandardExact => "C++RA-exact",
        }
    }

    fn ppo(&self, x: &Execution) -> Relation {
        x.po().clone()
    }

    fn fences(&self, x: &Execution) -> Relation {
        Relation::empty(x.len())
    }

    fn prop(&self, x: &Execution) -> Relation {
        // prop = hb+ with hb = ppo ∪ fences ∪ rfe (rfi ⊆ sb, so including
        // it changes nothing under closure).
        self.ppo(x).union(x.rfe()).tclosure()
    }

    fn propagation_check(&self) -> PropagationCheck {
        match self.strength {
            CppRaStrength::PaperStrong => PropagationCheck::Acyclic,
            CppRaStrength::StandardExact => PropagationCheck::IrreflexivePropCo,
        }
    }

    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        // ppo = sb = po and no fences (empty static fence suffix).
        Some(core.po().union(&self.thin_air_fences(core)))
    }

    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        let core = fx.core.as_ref();
        let ppo = arena.alloc_from(core.po());
        let fences = arena.alloc();
        // prop = (ppo ∪ rfe)+.
        let t = arena.alloc_from(ppo);
        arena.union_into(t, fx.rels.rfe);
        let prop = arena.alloc();
        arena.tclosure_into(prop, t);
        ArenaArchRels { ppo, fences, prop }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, Device};
    use crate::model::check;

    #[test]
    fn cpp_ra_forbids_mp_without_any_fence() {
        // Release-acquire makes message passing just work: sb ∪ rfe is the
        // synchronisation.
        let x = fixtures::mp(Device::None, Device::None);
        assert!(!check(&CppRa::default(), &x).allowed());
    }

    #[test]
    fn cpp_ra_allows_sb_and_iriw() {
        for x in
            [fixtures::sb(Device::None, Device::None), fixtures::iriw(Device::None, Device::None)]
        {
            assert!(check(&CppRa::default(), &x).allowed());
        }
    }

    #[test]
    fn strong_and_exact_differ_exactly_on_2_plus_2w() {
        // 2+2w's cycle alternates prop and co twice: caught by
        // acyclic(co ∪ prop), missed by irreflexive(prop; co)... unless a
        // single prop; co step loops. The bare 2+2w pattern shows the gap.
        let x = fixtures::two_plus_two_w(Device::None, Device::None);
        let strong = CppRa::new(CppRaStrength::PaperStrong);
        let exact = CppRa::new(CppRaStrength::StandardExact);
        assert!(!check(&strong, &x).allowed(), "paper-strong forbids 2+2w");
        assert!(check(&exact, &x).allowed(), "standard C++ R-A allows 2+2w");
    }

    #[test]
    fn exact_still_forbids_single_step_prop_co_loops() {
        // s: a co-loop closed by one prop step (sb; rf reaches the
        // co-predecessor) is irreflexive(prop; co)-caught.
        let x = fixtures::s(Device::None, Device::None);
        assert!(!check(&CppRa::new(CppRaStrength::StandardExact), &x).allowed());
    }
}
