//! Instances of the generic framework: SC, TSO, PSO, RMO, C++ R-A
//! (Fig 21), Power (Fig 17/18/25) and the ARM variants (Tab VII).

mod arm;
mod cpp_ra;
mod power;
mod sc;
mod sparc;
mod tso;

pub use arm::{Arm, ArmVariant};
pub use cpp_ra::{CppRa, CppRaStrength};
pub use power::{prop_power_arm, Power};
pub use sc::Sc;
pub use sparc::{Pso, Rmo};
pub use tso::Tso;

use crate::model::Architecture;

/// All stock architectures, for corpus sweeps and reports.
pub fn all() -> Vec<Box<dyn Architecture>> {
    vec![
        Box::new(Sc),
        Box::new(Tso),
        Box::new(CppRa::new(CppRaStrength::PaperStrong)),
        Box::new(Power::new()),
        Box::new(Arm::new(ArmVariant::Proposed)),
    ]
}

/// Looks an architecture up by (case-insensitive) name:
/// `sc`, `tso`, `pso`, `rmo`, `cpp-ra`, `power`, `arm`, `power-arm`,
/// `arm-llh`.
pub fn by_name(name: &str) -> Option<Box<dyn Architecture>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "sc" => Box::new(Sc) as Box<dyn Architecture>,
        "tso" | "x86" | "x86-tso" => Box::new(Tso),
        "pso" => Box::new(Pso),
        "rmo" => Box::new(Rmo),
        "cpp-ra" | "c++ra" | "cpp" => Box::new(CppRa::new(CppRaStrength::PaperStrong)),
        "power" | "ppc" => Box::new(Power::new()),
        "arm" => Box::new(Arm::new(ArmVariant::Proposed)),
        "power-arm" => Box::new(Arm::new(ArmVariant::PowerArm)),
        "arm-llh" => Box::new(Arm::new(ArmVariant::ProposedLlh)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        for n in ["sc", "TSO", "cpp-ra", "Power", "arm", "power-arm", "arm-llh"] {
            assert!(by_name(n).is_some(), "{n}");
        }
        assert!(by_name("itanium").is_none());
    }

    #[test]
    fn all_architectures_have_distinct_names() {
        let archs = all();
        let mut names: Vec<&str> = archs.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), archs.len());
    }
}
