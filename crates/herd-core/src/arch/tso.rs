//! Total Store Order (Sparc TSO / x86) as an instance of the framework
//! (Fig 21): `ppo = po \ WR`, the only fence is `mfence` (full), and
//! `prop = ppo ∪ fences ∪ rfe ∪ fr`.

use crate::arena::RelArena;
use crate::event::{Dir, Fence};
use crate::exec::{ExecCore, ExecFrame, Execution};
use crate::model::{Architecture, ArenaArchRels, Tractability};
use crate::relation::Relation;

/// Sparc/x86 Total Store Order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tso;

impl Architecture for Tso {
    fn name(&self) -> &str {
        "TSO"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        // po \ WR: only write-to-read pairs may be reordered.
        let wr = x.dir_restrict(x.po(), Some(Dir::W), Some(Dir::R));
        x.po().minus(&wr)
    }

    fn fences(&self, x: &Execution) -> Relation {
        x.fence(Fence::Mfence)
    }

    fn prop(&self, x: &Execution) -> Relation {
        self.ppo(x).union(&self.fences(x)).union(x.rfe()).union(x.fr())
    }

    fn thin_air_fences(&self, core: &ExecCore) -> Relation {
        core.fence(Fence::Mfence)
    }

    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        // ppo = po \ WR and the mfence suffix are both skeleton-invariant.
        let wr = core.dir_restrict(core.po(), Some(Dir::W), Some(Dir::R));
        Some(core.po().minus(&wr).union(&self.thin_air_fences(core)))
    }

    fn tractability(&self) -> Tractability {
        // Static ppo/fences; prop adds rfe (co-independent) and fr
        // (monotone in co); arch_rels_arena is pure-arena.
        Tractability::Polynomial
    }

    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        let core = fx.core.as_ref();
        let ppo = arena.alloc_from(core.po());
        let t = arena.alloc();
        core.dir_restrict_arena(arena, t, core.po(), Some(Dir::W), Some(Dir::R));
        arena.minus_into(ppo, t);
        let fences = arena.alloc_from(core.fence_ref(Fence::Mfence));
        // prop = ppo ∪ fences ∪ rfe ∪ fr.
        let prop = arena.alloc_from(ppo);
        arena.union_into(prop, fences);
        arena.union_into(prop, fx.rels.rfe);
        arena.union_into(prop, fx.rels.fr);
        ArenaArchRels { ppo, fences, prop }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, Device};
    use crate::model::check;

    #[test]
    fn tso_allows_sb_without_fences() {
        let x = fixtures::sb(Device::None, Device::None);
        assert!(check(&Tso, &x).allowed(), "store buffering is THE tso behaviour");
    }

    #[test]
    fn tso_forbids_sb_with_mfences() {
        let x = fixtures::sb(Device::Fence(Fence::Mfence), Device::Fence(Fence::Mfence));
        assert!(!check(&Tso, &x).allowed());
    }

    #[test]
    fn tso_forbids_patterns_without_help() {
        for (name, x) in [
            ("mp", fixtures::mp(Device::None, Device::None)),
            ("wrc", fixtures::wrc(Device::None, Device::None)),
            ("isa2", fixtures::isa2(Device::None, Device::None, Device::None)),
            ("lb", fixtures::lb(Device::None, Device::None)),
            ("2+2w", fixtures::two_plus_two_w(Device::None, Device::None)),
            ("iriw", fixtures::iriw(Device::None, Device::None)),
        ] {
            assert!(!check(&Tso, &x).allowed(), "{name} must be forbidden on TSO");
        }
    }

    #[test]
    fn tso_matches_sparc_formulation_on_fixtures() {
        // Lemma 4.1 / [Alglave 2012, Def 23]: valid iff uniproc (SC PER
        // LOCATION) holds and acyclic(ppo ∪ co ∪ rfe ∪ fr ∪ fences). The
        // uniproc conjunct is separate because internal fr edges (e.g. the
        // coWR shape) never close a cycle in the global relation alone.
        for x in [
            fixtures::sb(Device::None, Device::None),
            fixtures::sb(Device::Fence(Fence::Mfence), Device::Fence(Fence::Mfence)),
            fixtures::mp(Device::None, Device::None),
            fixtures::r(Device::None, Device::None),
            fixtures::co_wr(),
        ] {
            let tso = Tso;
            let ours = check(&tso, &x).allowed();
            let global = tso
                .ppo(&x)
                .union(x.co())
                .union(x.rfe())
                .union(x.fr())
                .union(&tso.fences(&x))
                .is_acyclic();
            let sparc = crate::model::sc_per_location(&x) && global;
            assert_eq!(ours, sparc);
        }
    }
}
