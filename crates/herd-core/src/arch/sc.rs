//! Sequential Consistency as an instance of the framework (Fig 21).
//!
//! `ppo = po`, no fences, `prop = ppo ∪ fences ∪ rf ∪ fr`. Lemma 4.1 states
//! this instance is equivalent to Lamport's SC, i.e. to
//! `acyclic(po ∪ com)`; `tests/lemma_4_1.rs` checks that equivalence over
//! the corpus and under proptest.

use crate::arena::RelArena;
use crate::exec::{ExecCore, ExecFrame, Execution};
use crate::model::{Architecture, ArenaArchRels, Tractability};
use crate::relation::Relation;

/// Lamport's Sequential Consistency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sc;

impl Architecture for Sc {
    fn name(&self) -> &str {
        "SC"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        x.po().clone()
    }

    fn fences(&self, x: &Execution) -> Relation {
        Relation::empty(x.len())
    }

    fn prop(&self, x: &Execution) -> Relation {
        self.ppo(x).union(&self.fences(x)).union(x.rf()).union(x.fr())
    }

    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        // ppo = po and no fences: the whole of hb \ rfe is static (the
        // fence suffix of the default hook is empty here).
        Some(core.po().union(&self.thin_air_fences(core)))
    }

    fn tractability(&self) -> Tractability {
        // prop = po ∪ rf ∪ fr: static except fr, which is monotone in co,
        // and arch_rels_arena below never materialises an Execution.
        Tractability::Polynomial
    }

    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        let core = fx.core.as_ref();
        let ppo = arena.alloc_from(core.po());
        let fences = arena.alloc();
        // prop = ppo ∪ fences ∪ rf ∪ fr.
        let prop = arena.alloc_from(ppo);
        arena.union_into(prop, fx.rels.rf);
        arena.union_into(prop, fx.rels.fr);
        ArenaArchRels { ppo, fences, prop }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, Device};
    use crate::model::check;

    #[test]
    fn sc_forbids_all_bare_patterns() {
        for (name, x) in [
            ("mp", fixtures::mp(Device::None, Device::None)),
            ("sb", fixtures::sb(Device::None, Device::None)),
            ("lb", fixtures::lb(Device::None, Device::None)),
            ("wrc", fixtures::wrc(Device::None, Device::None)),
            ("2+2w", fixtures::two_plus_two_w(Device::None, Device::None)),
            ("r", fixtures::r(Device::None, Device::None)),
            ("s", fixtures::s(Device::None, Device::None)),
            ("iriw", fixtures::iriw(Device::None, Device::None)),
        ] {
            assert!(!check(&Sc, &x).allowed(), "{name} must be forbidden on SC");
        }
    }

    #[test]
    fn sc_matches_lamport_formulation_on_fixtures() {
        for x in [
            fixtures::mp(Device::None, Device::None),
            fixtures::sb(Device::None, Device::None),
            fixtures::lb(Device::None, Device::None),
            fixtures::co_rr(),
            fixtures::r(Device::None, Device::None),
        ] {
            let ours = check(&Sc, &x).allowed();
            let lamport = x.po().union(x.com()).is_acyclic();
            assert_eq!(ours, lamport);
        }
    }
}
