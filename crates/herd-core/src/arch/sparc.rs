//! Sparc PSO and RMO as instances of the framework (mentioned throughout
//! Sec 2 and Sec 4.9 — RMO officially allows the load-load hazards that
//! are a bug on ARM).
//!
//! - **PSO** (Partial Store Order) additionally relaxes write-write pairs
//!   over TSO: `ppo = po \ (WR ∪ WW)`.
//! - **RMO** (Relaxed Memory Order) preserves only dependencies:
//!   `ppo = addr ∪ data ∪ ctrl`, and tolerates load-load hazards in
//!   SC PER LOCATION (`po-loc \ RR`).
//!
//! Both use `mfence` (standing in for the `membar` family) as their full
//! fence and keep the TSO-style propagation `ppo ∪ fences ∪ rfe ∪ fr`.

use crate::arena::RelArena;
use crate::event::{Dir, Fence};
use crate::exec::{ExecCore, ExecFrame, Execution};
use crate::model::{Architecture, ArenaArchRels, Tractability};
use crate::relation::Relation;

/// Sparc Partial Store Order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Pso;

impl Architecture for Pso {
    fn name(&self) -> &str {
        "PSO"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        let wr = x.dir_restrict(x.po(), Some(Dir::W), Some(Dir::R));
        let ww = x.dir_restrict(x.po(), Some(Dir::W), Some(Dir::W));
        x.po().minus(&wr).minus(&ww)
    }

    fn fences(&self, x: &Execution) -> Relation {
        x.fence(Fence::Mfence)
    }

    fn prop(&self, x: &Execution) -> Relation {
        self.ppo(x).union(&self.fences(x)).union(x.rfe()).union(x.fr())
    }

    fn thin_air_fences(&self, core: &ExecCore) -> Relation {
        core.fence(Fence::Mfence)
    }

    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        // ppo = po \ (WR ∪ WW) and the mfence suffix are skeleton-invariant.
        let wr = core.dir_restrict(core.po(), Some(Dir::W), Some(Dir::R));
        let ww = core.dir_restrict(core.po(), Some(Dir::W), Some(Dir::W));
        Some(core.po().minus(&wr).minus(&ww).union(&self.thin_air_fences(core)))
    }

    fn tractability(&self) -> Tractability {
        // TSO-style prop over a static ppo: monotone in co throughout.
        Tractability::Polynomial
    }

    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        let core = fx.core.as_ref();
        let ppo = arena.alloc_from(core.po());
        let t = arena.alloc();
        core.dir_restrict_arena(arena, t, core.po(), Some(Dir::W), Some(Dir::R));
        arena.minus_into(ppo, t);
        core.dir_restrict_arena(arena, t, core.po(), Some(Dir::W), Some(Dir::W));
        arena.minus_into(ppo, t);
        let fences = arena.alloc_from(core.fence_ref(Fence::Mfence));
        let prop = arena.alloc_from(ppo);
        arena.union_into(prop, fences);
        arena.union_into(prop, fx.rels.rfe);
        arena.union_into(prop, fx.rels.fr);
        ArenaArchRels { ppo, fences, prop }
    }
}

/// Sparc Relaxed Memory Order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Rmo;

impl Architecture for Rmo {
    fn name(&self) -> &str {
        "RMO"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        x.deps().addr.union(&x.deps().data).union(&x.deps().ctrl)
    }

    fn fences(&self, x: &Execution) -> Relation {
        x.fence(Fence::Mfence)
    }

    fn prop(&self, x: &Execution) -> Relation {
        self.ppo(x).union(&self.fences(x)).union(x.rfe()).union(x.fr())
    }

    fn tolerates_load_load_hazards(&self) -> bool {
        // RMO officially allows load-load hazards (Sec 4.9).
        true
    }

    fn thin_air_fences(&self, core: &ExecCore) -> Relation {
        core.fence(Fence::Mfence)
    }

    fn thin_air_base(&self, core: &ExecCore) -> Option<Relation> {
        // ppo = addr ∪ data ∪ ctrl and the mfence suffix: all static.
        let deps = core.deps();
        Some(deps.addr.union(&deps.data).union(&deps.ctrl).union(&self.thin_air_fences(core)))
    }

    fn tractability(&self) -> Tractability {
        // Dependency-only ppo is static; prop is the TSO shape. The llh
        // weakening only shrinks the static po-loc, which saturation
        // reads through `sc_per_location_po_loc_static`.
        Tractability::Polynomial
    }

    fn arch_rels_arena(&self, fx: &ExecFrame<'_>, arena: &mut RelArena) -> ArenaArchRels {
        let core = fx.core.as_ref();
        let deps = core.deps();
        let ppo = arena.alloc_from(&deps.addr);
        arena.union_into(ppo, &deps.data);
        arena.union_into(ppo, &deps.ctrl);
        let fences = arena.alloc_from(core.fence_ref(Fence::Mfence));
        let prop = arena.alloc_from(ppo);
        arena.union_into(prop, fences);
        arena.union_into(prop, fx.rels.rfe);
        arena.union_into(prop, fx.rels.fr);
        ArenaArchRels { ppo, fences, prop }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Tso;
    use crate::fixtures::{self, Device};
    use crate::model::check;

    #[test]
    fn pso_relaxes_write_write_but_not_read_read() {
        // mp bare: the writer's WW pair is relaxed on PSO, not on TSO.
        let mp = fixtures::mp(Device::None, Device::None);
        assert!(!check(&Tso, &mp).allowed());
        assert!(check(&Pso, &mp).allowed());
        // sb stays allowed (the WR pair), lb stays forbidden (RW pairs).
        assert!(check(&Pso, &fixtures::sb(Device::None, Device::None)).allowed());
        assert!(!check(&Pso, &fixtures::lb(Device::None, Device::None)).allowed());
        // 2+2w: two WW pairs, relaxed.
        assert!(check(&Pso, &fixtures::two_plus_two_w(Device::None, Device::None)).allowed());
    }

    #[test]
    fn rmo_preserves_only_dependencies() {
        assert!(check(&Rmo, &fixtures::lb(Device::None, Device::None)).allowed());
        assert!(!check(&Rmo, &fixtures::lb(Device::Addr, Device::Addr)).allowed());
        assert!(!check(&Rmo, &fixtures::lb(Device::Ctrl, Device::Ctrl)).allowed());
        assert!(
            check(&Rmo, &fixtures::mp(Device::None, Device::Addr)).allowed(),
            "no fence on the writer: mp still observable"
        );
    }

    #[test]
    fn rmo_allows_load_load_hazards() {
        assert!(check(&Rmo, &fixtures::co_rr()).allowed());
        assert!(!check(&Pso, &fixtures::co_rr()).allowed());
        // Write-involving coherence stays forbidden on both.
        for x in [fixtures::co_ww(), fixtures::co_wr(), fixtures::co_rw1()] {
            assert!(!check(&Rmo, &x).allowed());
            assert!(!check(&Pso, &x).allowed());
        }
    }

    #[test]
    fn strength_ordering_tso_pso_rmo() {
        // Everything PSO forbids, TSO forbids; everything RMO forbids,
        // PSO forbids — on the canonical witnesses.
        for x in [
            fixtures::mp(Device::None, Device::None),
            fixtures::sb(Device::None, Device::None),
            fixtures::lb(Device::None, Device::None),
            fixtures::wrc(Device::None, Device::None),
            fixtures::r(Device::None, Device::None),
            fixtures::two_plus_two_w(Device::None, Device::None),
            fixtures::iriw(Device::None, Device::None),
        ] {
            if check(&Pso, &x).allowed() {
                assert!(check(&Rmo, &x).allowed());
            }
            if check(&Tso, &x).allowed() {
                assert!(check(&Pso, &x).allowed());
            }
        }
    }
}
